/**
 * @file
 * The paper's §6.3 case study, reproduced step by step: debugging the
 * Grayscale accelerator's buffer overflow (testbed bug D2).
 *
 * The CPU-side software notices the acceleration task hangs. The
 * developer then:
 *  1. runs FSM Monitor - the read FSM reached RD_FINISH but the write
 *     FSM is stuck in WR_DATA, so the hang is in write-side logic;
 *  2. runs Statistics Monitor - all 8 memory responses arrived but
 *     fewer pixels were written: data is lost between the response
 *     capture and the write engine;
 *  3. runs LossCheck - the reorder buffer 'rob' is named as the precise
 *     location of the loss.
 */

#include <cstdio>

#include "bugbase/testbed.hh"
#include "bugbase/workloads.hh"
#include "core/fsm_monitor.hh"
#include "core/losscheck.hh"
#include "core/stats_monitor.hh"
#include "hdl/parser.hh"
#include "hdl/printer.hh"
#include "sim/simulator.hh"

using namespace hwdbg;
using namespace hwdbg::bugs;
using namespace hwdbg::core;

namespace
{

sim::Simulator
buildSim(hdl::ModulePtr mod)
{
    hdl::Design design = hdl::parse(hdl::printModule(*mod));
    return sim::Simulator(elab::elaborate(design, "grayscale").mod);
}

} // namespace

int
main()
{
    const TestbedBug &bug = bugById("D2");
    auto elaborated = buildDesign(bug, true);

    std::printf("=== Debugging Grayscale's buffer overflow (D2) ===\n");
    {
        sim::Simulator sim(buildDesign(bug, true).mod);
        WorkloadResult result = runWorkload(bug, sim);
        std::printf("\nSymptom: the acceleration task hangs "
                    "(done never asserts; %llu of 8 pixels written)\n",
                    (unsigned long long)result.outputsProduced);
    }

    // Step 1: FSM Monitor.
    std::printf("\nStep 1: FSM Monitor\n");
    FsmMonitorResult fsm_mon = applyFsmMonitor(*elaborated.mod);
    std::printf("  detected FSMs:");
    for (const auto &var : fsm_mon.monitored)
        std::printf(" %s", var.c_str());
    std::printf("\n");
    {
        sim::Simulator sim = buildSim(fsm_mon.module);
        runWorkload(bug, sim);
        auto final_states =
            finalStates(fsmTrace(sim.log()), fsm_mon.monitored);
        for (const auto &[var, value] : final_states)
            std::printf("  %s finished in state %s\n", var.c_str(),
                        stateName(var, value,
                                  elaborated.constants).c_str());
    }
    std::printf("  -> the read side completed; the hang is in "
                "write-related logic.\n");

    // Step 2: Statistics Monitor.
    std::printf("\nStep 2: Statistics Monitor\n");
    StatsMonitorOptions stat_opts;
    for (const auto &[name, signal] : bug.monitors.statEvents)
        stat_opts.events.push_back(
            StatsEvent{name, hdl::parseExprText(signal)});
    StatsMonitorResult stat_mon =
        applyStatsMonitor(*elaborated.mod, stat_opts);
    {
        sim::Simulator sim = buildSim(stat_mon.module);
        runWorkload(bug, sim);
        for (const auto &[name, signal] : bug.monitors.statEvents)
            std::printf("  %-5s = %llu\n", name.c_str(),
                        (unsigned long long)sim.peekU64(
                            StatsMonitorResult::counterSignal(name)));
    }
    std::printf("  -> responses arrived but pixels are missing: data "
                "loss between read and write.\n");

    // Step 3: LossCheck.
    std::printf("\nStep 3: LossCheck (%s --[valid %s]--> %s)\n",
                bug.lossCheck->source.c_str(),
                bug.lossCheck->sourceValid.c_str(),
                bug.lossCheck->sink.c_str());
    auto run = [&](hdl::ModulePtr mod, bool trigger) {
        sim::Simulator sim = buildSim(mod);
        if (trigger)
            runWorkload(bug, sim);
        else
            driveGroundTruth(bug, sim);
        return sim.log();
    };
    LossCheckReport report = runLossCheck(
        *elaborated.mod, *bug.lossCheck,
        [&](hdl::ModulePtr mod) { return run(mod, false); },
        [&](hdl::ModulePtr mod) { return run(mod, true); });
    std::printf("  LossCheck generated %d lines of checking logic\n",
                report.generatedLines);
    for (const auto &reg : report.reported)
        std::printf("  -> potential data loss at register '%s'\n",
                    reg.c_str());
    std::printf("\nRoot cause: %s.\n", bug.rootCauseNote.c_str());
    return 0;
}
