/**
 * @file
 * LossCheck on the frame FIFO's buffer overflow (testbed bug D4),
 * showing the generated shadow-state Verilog the developer would
 * otherwise write by hand, and the two-phase false-positive filtering
 * flow of §4.5.3.
 */

#include <cstdio>
#include <sstream>

#include "bugbase/testbed.hh"
#include "bugbase/workloads.hh"
#include "core/losscheck.hh"
#include "hdl/parser.hh"
#include "hdl/printer.hh"
#include "sim/simulator.hh"

using namespace hwdbg;
using namespace hwdbg::bugs;
using namespace hwdbg::core;

int
main()
{
    const TestbedBug &bug = bugById("D4");
    auto elaborated = buildDesign(bug, true);

    std::printf("=== LossCheck on the frame FIFO (D4) ===\n\n");
    std::printf("Source: %s (valid: %s)   Sink: %s\n",
                bug.lossCheck->source.c_str(),
                bug.lossCheck->sourceValid.c_str(),
                bug.lossCheck->sink.c_str());

    LossCheckResult inst =
        applyLossCheck(*elaborated.mod, *bug.lossCheck);
    std::printf("Propagation path:");
    for (const auto &name : inst.onPath)
        std::printf(" %s", name.c_str());
    std::printf("\nInstrumented registers:");
    for (const auto &name : inst.instrumented)
        std::printf(" %s", name.c_str());
    std::printf("\nGenerated %d lines of Verilog; the shadow-state "
                "fragment:\n\n", inst.generatedLines);

    // Show the generated logic (everything mentioning __lc_).
    std::istringstream text(hdl::printModule(*inst.module));
    std::string line;
    int shown = 0;
    while (std::getline(text, line) && shown < 24) {
        if (line.find("__lc_") != std::string::npos) {
            std::printf("    %s\n", line.c_str());
            ++shown;
        }
    }

    // Two-phase run: ground truth filters intentional drops, then the
    // failing test localizes the real loss.
    auto simulate = [](hdl::ModulePtr mod) {
        hdl::Design design = hdl::parse(hdl::printModule(*mod));
        return sim::Simulator(
            elab::elaborate(design, "frame_fifo").mod);
    };
    LossCheckReport report = runLossCheck(
        *elaborated.mod, *bug.lossCheck,
        [&](hdl::ModulePtr mod) {
            auto sim = simulate(mod);
            driveGroundTruth(bug, sim);
            return sim.log();
        },
        [&](hdl::ModulePtr mod) {
            auto sim = simulate(mod);
            runWorkload(bug, sim);
            return sim.log();
        });

    std::printf("\nGround-truth run filtered %zu register(s); failing "
                "run reports:\n", report.filtered.size());
    for (const auto &reg : report.reported)
        std::printf("  [LossCheck] potential data loss at %s\n",
                    reg.c_str());
    std::printf("\nRoot cause: %s.\n", bug.rootCauseNote.c_str());
    return 0;
}
