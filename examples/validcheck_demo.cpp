/**
 * @file
 * ValidCheck on the paper's use-without-valid pattern (§3.3.4): an
 * accumulator that consumes its data bus regardless of the valid
 * signal, summing garbage between packets. ValidCheck statically finds
 * the unguarded use and dynamically reports the first offending cycle;
 * the paper's fix (guarding the use) is verified clean.
 */

#include <cstdio>

#include "core/validcheck.hh"
#include "elab/elaborate.hh"
#include "hdl/parser.hh"
#include "hdl/printer.hh"
#include "sim/simulator.hh"

using namespace hwdbg;

static const char *design_src = R"(
module checksum (
    input wire clk,
    input wire rst,
    input wire data_valid,
    input wire [7:0] data,
    output reg [7:0] sum
);
always @(posedge clk) begin
    if (rst)
        sum <= 8'd0;
`ifdef FIXED
    else if (data_valid)
        sum <= sum + data;
`else
    else
        sum <= sum + data;
`endif
end
endmodule
)";

static uint64_t
run(hdl::ModulePtr mod, std::vector<sim::EvalContext::LogLine> *log)
{
    hdl::Design design = hdl::parse(hdl::printModule(*mod));
    sim::Simulator sim(elab::elaborate(design, "checksum").mod);
    auto tick = [&] {
        sim.poke("clk", uint64_t(0));
        sim.eval();
        sim.poke("clk", uint64_t(1));
        sim.eval();
    };
    sim.poke("rst", uint64_t(1));
    tick();
    sim.poke("rst", uint64_t(0));
    // Two valid bytes with idle (bus-noise) gaps between them.
    uint64_t noise = 0x5a;
    for (int beat = 0; beat < 8; ++beat) {
        bool valid = beat == 2 || beat == 6;
        sim.poke("data_valid", uint64_t(valid));
        sim.poke("data", valid ? uint64_t(0x10) : noise++);
        tick();
    }
    if (log)
        *log = sim.log();
    return sim.peekU64("sum");
}

int
main()
{
    core::ValidCheckOptions opts;
    opts.pairs.push_back(core::ValidPair{"data", "data_valid"});

    for (bool fixed : {false, true}) {
        std::map<std::string, std::string> defines;
        if (fixed)
            defines["FIXED"] = "";
        hdl::Design design =
            hdl::parseWithDefines(design_src, defines, "checksum.v");
        auto elaborated = elab::elaborate(design, "checksum");
        core::ValidCheckResult inst =
            core::applyValidCheck(*elaborated.mod, opts);

        std::printf("=== %s design ===\n", fixed ? "fixed" : "buggy");
        std::printf("unguarded uses of 'data': %d\n",
                    inst.usesInstrumented.at("data"));

        std::vector<sim::EvalContext::LogLine> log;
        uint64_t sum = run(inst.module, &log);
        std::printf("checksum after 2 valid 0x10 bytes: 0x%02llx "
                    "(expected 0x20)\n",
                    (unsigned long long)sum);
        for (const auto &use : core::invalidUses(log))
            std::printf("  [cycle %llu] %s consumed without %s "
                        "(flowed into %s)\n",
                        (unsigned long long)use.cycle, use.data.c_str(),
                        "data_valid", use.target.c_str());
        std::printf("\n");
    }
    return 0;
}
