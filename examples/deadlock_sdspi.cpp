/**
 * @file
 * Debugging the SDSPI deadlock (testbed bug C1) with FSM Monitor and
 * Dependency Monitor, plus a waveform dump for comparison.
 *
 * The command engine never accepts a command. FSM Monitor shows the
 * FSM produced zero transitions; Dependency Monitor reveals the
 * circular tx_go <-> rx_go enable dependency - the paper's §3.3.1
 * deadlock pattern (both initialized to 0). As a contrast to the
 * tool-based flow, the example also dumps the VCD waveform a developer
 * would otherwise have to inspect manually.
 */

#include <cstdio>

#include "bugbase/testbed.hh"
#include "bugbase/workloads.hh"
#include "core/dep_monitor.hh"
#include "core/fsm_monitor.hh"
#include "hdl/parser.hh"
#include "hdl/printer.hh"
#include "sim/simulator.hh"
#include "trace/vcd.hh"

using namespace hwdbg;
using namespace hwdbg::bugs;
using namespace hwdbg::core;

int
main()
{
    const TestbedBug &bug = bugById("C1");
    auto elaborated = buildDesign(bug, true);

    std::printf("=== Debugging the SDSPI deadlock (C1) ===\n\n");
    {
        sim::Simulator sim(buildDesign(bug, true).mod);
        WorkloadResult result = runWorkload(bug, sim);
        std::printf("Symptom: %s\n\n", result.detail.c_str());
    }

    // FSM Monitor: the command FSM never moves.
    FsmMonitorResult fsm_mon = applyFsmMonitor(*elaborated.mod);
    {
        hdl::Design d = hdl::parse(hdl::printModule(*fsm_mon.module));
        sim::Simulator sim(elab::elaborate(d, "sdspi").mod);
        runWorkload(bug, sim);
        auto trace = fsmTrace(sim.log());
        std::printf("FSM Monitor: 'state' made %zu transitions "
                    "(stuck in C_IDLE since reset)\n", trace.size());
    }

    // Dependency Monitor: why is the enable never set?
    for (const char *var : {"tx_go", "rx_go"}) {
        DepMonitorOptions opts;
        opts.variable = var;
        opts.cycles = 2;
        DepMonitorResult mon = applyDepMonitor(*elaborated.mod, opts);
        std::printf("Dependency Monitor: %s depends on {", var);
        bool first = true;
        for (const auto &[reg, dist] : mon.chain) {
            if (reg == var)
                continue;
            std::printf("%s%s (%d cycle%s)", first ? "" : ", ",
                        reg.c_str(), dist, dist == 1 ? "" : "s");
            first = false;
        }
        std::printf("}\n");
    }
    std::printf("-> tx_go waits on rx_go and rx_go waits on tx_go: a "
                "circular dependency with both reset to 0.\n");

    // The old way: a waveform.
    {
        sim::Simulator sim(buildDesign(bug, true).mod);
        trace::VcdRecorder vcd(sim);
        sim.poke("rst", uint64_t(1));
        uint64_t t = 0;
        auto tick = [&] {
            sim.poke("clk", uint64_t(0));
            sim.eval();
            vcd.sample(t++);
            sim.poke("clk", uint64_t(1));
            sim.eval();
            vcd.sample(t++);
        };
        tick();
        sim.poke("rst", uint64_t(0));
        sim.poke("cmd_valid", uint64_t(1));
        for (int i = 0; i < 20; ++i)
            tick();
        vcd.writeFile("sdspi_deadlock.vcd");
        std::printf("\nFor comparison, the raw waveform was written to "
                    "sdspi_deadlock.vcd (%llu samples) - the manual "
                    "alternative to the tool flow above.\n",
                    (unsigned long long)t);
    }

    std::printf("\nFix: initialize one side of the cycle at reset "
                "(tx_go <= 1).\n");
    return 0;
}
