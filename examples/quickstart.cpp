/**
 * @file
 * Quickstart: the end-to-end hwdbg flow on a tiny design.
 *
 *  1. Parse a Verilog module containing $display debugging statements.
 *  2. Elaborate and simulate it with a C++ testbench ($display works
 *     natively in simulation).
 *  3. Apply SignalCat to turn the same statements into an on-FPGA
 *     recording IP, re-simulate the instrumented design, and
 *     reconstruct an identical log from the recorder - the unified
 *     sim/on-FPGA debugging interface of the paper's §4.1.
 */

#include <cstdio>

#include "core/signalcat.hh"
#include "elab/elaborate.hh"
#include "hdl/parser.hh"
#include "hdl/printer.hh"
#include "sim/simulator.hh"

using namespace hwdbg;

static const char *design_src = R"(
module blinker (
    input wire clk,
    input wire enable,
    output reg [7:0] count,
    output reg led
);
always @(posedge clk) begin
    if (enable) begin
        count <= count + 1;
        if (count[2:0] == 3'd7) begin
            led <= !led;
            $display("led toggled to %d at count %d", !led, count);
        end
    end
end
endmodule
)";

static void
runWorkload(sim::Simulator &sim)
{
    sim.poke("enable", uint64_t(1));
    for (int i = 0; i < 40; ++i) {
        sim.poke("clk", uint64_t(0));
        sim.eval();
        sim.poke("clk", uint64_t(1));
        sim.eval();
    }
}

int
main()
{
    // 1. Parse and elaborate.
    hdl::Design design = hdl::parse(design_src, "blinker.v");
    auto elaborated = elab::elaborate(design, "blinker");

    // 2. Simulate: $display executes natively.
    std::printf("--- simulation mode ---\n");
    sim::Simulator sim(elaborated.mod);
    runWorkload(sim);
    for (const auto &line : sim.log())
        std::printf("[cycle %3llu] %s\n",
                    (unsigned long long)line.cycle, line.text.c_str());

    // 3. SignalCat: same statements, on-FPGA recording IP.
    core::SignalCatOptions opts;
    opts.bufferDepth = 64;
    core::SignalCatResult cat =
        core::applySignalCat(*elaborated.mod, opts);
    std::printf("\nSignalCat generated %d lines of Verilog "
                "(recorder entry width: %u bits)\n",
                cat.generatedLines, cat.plan.entryWidth);

    // The instrumented module is real Verilog: print, re-parse, run.
    hdl::Design fpga_design = hdl::parse(hdl::printModule(*cat.module));
    sim::Simulator fpga(elab::elaborate(fpga_design, "blinker").mod);
    runWorkload(fpga);

    std::printf("\n--- on-FPGA mode (reconstructed from the recording "
                "IP) ---\n");
    auto *recorder = dynamic_cast<sim::SignalRecorder *>(
        fpga.primitive(cat.plan.recorderInstance));
    for (const auto &line : core::reconstructLog(*recorder, cat.plan))
        std::printf("[cycle %3llu] %s\n",
                    (unsigned long long)line.cycle, line.text.c_str());

    std::printf("\nThe two logs are identical: one debugging code "
                "base, both execution contexts.\n");
    return 0;
}
