/**
 * @file
 * Tests for the dependency graph and the propagation-relation table.
 */

#include <gtest/gtest.h>

#include "analysis/relations.hh"
#include "elab/elaborate.hh"
#include "elab/ip_models.hh"
#include "hdl/parser.hh"
#include "hdl/printer.hh"

using namespace hwdbg;
using namespace hwdbg::hdl;
using namespace hwdbg::analysis;

namespace
{

ModulePtr
flat(const std::string &src, const std::string &top = "m")
{
    return elab::elaborate(parse(src), top).mod;
}

} // namespace

TEST(DepGraphTest, DataAndControlEdges)
{
    auto mod = flat(
        "module m(input wire clk, input wire en, input wire [3:0] d);\n"
        "reg [3:0] q;\n"
        "always @(posedge clk) if (en) q <= d;\nendmodule");
    DepGraph graph(*mod);
    bool data_edge = false, ctrl_edge = false;
    for (const auto &edge : graph.edges()) {
        if (edge.src == "d" && edge.dst == "q" && edge.isData &&
            edge.kind == DepKind::Seq)
            data_edge = true;
        if (edge.src == "en" && edge.dst == "q" && !edge.isData)
            ctrl_edge = true;
    }
    EXPECT_TRUE(data_edge);
    EXPECT_TRUE(ctrl_edge);
}

TEST(DepGraphTest, StatefulClassification)
{
    auto mod = flat(
        "module m(input wire clk, input wire [3:0] d);\n"
        "reg [3:0] q;\nwire [3:0] w;\n"
        "assign w = d + 1;\n"
        "always @(posedge clk) q <= w;\nendmodule");
    DepGraph graph(*mod);
    EXPECT_TRUE(graph.isReg("q"));
    EXPECT_TRUE(graph.isInput("d"));
    EXPECT_FALSE(graph.isStateful("w"));
    auto sources = graph.statefulSources("w");
    EXPECT_EQ(sources, std::set<std::string>{"d"});
}

TEST(DepGraphTest, StatefulSourcesThroughWireChain)
{
    auto mod = flat(
        "module m(input wire clk, input wire [3:0] a);\n"
        "reg [3:0] r1, r2;\nwire [3:0] w1, w2;\n"
        "assign w1 = r1 ^ a;\nassign w2 = w1 + 1;\n"
        "always @(posedge clk) begin r1 <= a; r2 <= w2; end\nendmodule");
    DepGraph graph(*mod);
    auto sources = graph.statefulSources("w2");
    EXPECT_TRUE(sources.count("r1"));
    EXPECT_TRUE(sources.count("a"));
    EXPECT_FALSE(sources.count("w1"));
}

TEST(DepGraphTest, BackwardSliceRespectsCycleBudget)
{
    // r3 <- r2 <- r1 <- a : three sequential stages.
    auto mod = flat(
        "module m(input wire clk, input wire [3:0] a);\n"
        "reg [3:0] r1, r2, r3;\n"
        "always @(posedge clk) begin\n"
        "  r1 <= a;\n  r2 <= r1;\n  r3 <= r2;\nend\nendmodule");
    DepGraph graph(*mod);
    auto one = graph.backwardSlice("r3", 1, true, true);
    EXPECT_TRUE(one.count("r3"));
    EXPECT_TRUE(one.count("r2"));
    EXPECT_FALSE(one.count("r1"));
    auto two = graph.backwardSlice("r3", 2, true, true);
    EXPECT_TRUE(two.count("r1"));
    EXPECT_EQ(two.at("r1"), 2);
    EXPECT_EQ(two.at("r3"), 0);
}

TEST(DepGraphTest, ControlOnlySliceExcludesDataDeps)
{
    auto mod = flat(
        "module m(input wire clk, input wire en, input wire [3:0] d);\n"
        "reg [3:0] q;\nreg e1;\n"
        "always @(posedge clk) begin\n"
        "  e1 <= en;\n  if (e1) q <= d;\nend\nendmodule");
    DepGraph graph(*mod);
    auto ctrl = graph.backwardSlice("q", 2, false, true);
    EXPECT_TRUE(ctrl.count("e1"));
    auto data = graph.backwardSlice("q", 2, true, false);
    EXPECT_FALSE(data.count("e1"));
}

TEST(DepGraphTest, IpModelEdges)
{
    auto mod = flat(
        "module m(input wire clk, input wire push, input wire pop,\n"
        "         input wire [7:0] din);\n"
        "wire [7:0] q;\nwire empty, full;\n"
        "scfifo #(.WIDTH(8), .DEPTH(4)) u_f (.clock(clk), .data(din),\n"
        "  .wrreq(push), .rdreq(pop), .q(q), .empty(empty),\n"
        "  .full(full));\nendmodule");
    DepGraph graph(*mod);
    EXPECT_TRUE(graph.isIpOutput("q"));
    EXPECT_TRUE(graph.isIpOutput("empty"));
    bool data_edge = false;
    for (const auto &edge : graph.edges())
        if (edge.src == "din" && edge.dst == "q" && edge.viaIp &&
            edge.isData)
            data_edge = true;
    EXPECT_TRUE(data_edge);
}

TEST(RelationsTest, SimpleChain)
{
    // The paper's running example (§4.5.1): in -> b -> out.
    auto mod = flat(
        "module m(input wire clk, input wire cond_a, input wire cond_b,\n"
        "         input wire in_valid, input wire [7:0] in,\n"
        "         input wire [7:0] a, output reg [7:0] out);\n"
        "reg [7:0] b;\n"
        "always @(posedge clk) begin\n"
        "  if (cond_a) out <= a;\n"
        "  else if (cond_b) out <= b;\n"
        "  if (in_valid) b <= in;\nend\nendmodule");
    RelationTable table(*mod);

    // Expected relations: a ~>[cond_a] out, b ~>[!cond_a && cond_b] out,
    // in ~>[in_valid] b.
    bool a_out = false, b_out = false, in_b = false;
    for (const auto &rel : table.relations()) {
        std::string cond = printExpr(rel.cond);
        if (rel.src == "a" && rel.dst == "out" && cond == "cond_a")
            a_out = true;
        if (rel.src == "b" && rel.dst == "out" &&
            cond == "!cond_a && cond_b")
            b_out = true;
        if (rel.src == "in" && rel.dst == "b" && cond == "in_valid")
            in_b = true;
    }
    EXPECT_TRUE(a_out);
    EXPECT_TRUE(b_out);
    EXPECT_TRUE(in_b);

    auto path = table.propagationPath("in", "out");
    EXPECT_EQ(path, (std::set<std::string>{"in", "b", "out"}));
    EXPECT_TRUE(table.propagationPath("out", "in").empty());
}

TEST(RelationsTest, WiresCollapsedToStatefulSources)
{
    auto mod = flat(
        "module m(input wire clk, input wire [7:0] in,\n"
        "         output reg [7:0] out);\n"
        "reg [7:0] mid;\nwire [7:0] w;\n"
        "assign w = mid + 1;\n"
        "always @(posedge clk) begin mid <= in; out <= w; end\n"
        "endmodule");
    RelationTable table(*mod);
    bool mid_out = false;
    for (const auto &rel : table.relations())
        if (rel.src == "mid" && rel.dst == "out")
            mid_out = true;
    EXPECT_TRUE(mid_out);
    auto path = table.propagationPath("in", "out");
    EXPECT_TRUE(path.count("mid"));
}

TEST(RelationsTest, FifoRelationsCarryBackpressureCondition)
{
    auto mod = flat(
        "module m(input wire clk, input wire push, input wire pop,\n"
        "         input wire [7:0] in, output reg [7:0] out);\n"
        "reg [7:0] staged;\nwire [7:0] q;\nwire empty, full;\n"
        "scfifo #(.WIDTH(8), .DEPTH(4)) u_f (.clock(clk), .data(staged),\n"
        "  .wrreq(push), .rdreq(pop), .q(q), .empty(empty),\n"
        "  .full(full));\n"
        "always @(posedge clk) begin\n"
        "  staged <= in;\n  out <= q;\nend\nendmodule");
    RelationTable table(*mod);
    bool fifo_rel = false;
    for (const auto &rel : table.relations()) {
        if (rel.src == "staged" && rel.dst == "q" && rel.viaIp) {
            fifo_rel = true;
            std::string cond = printExpr(rel.cond);
            EXPECT_NE(cond.find("push"), std::string::npos);
            EXPECT_NE(cond.find("!full"), std::string::npos);
        }
    }
    EXPECT_TRUE(fifo_rel);
    auto path = table.propagationPath("in", "out");
    EXPECT_TRUE(path.count("staged"));
    EXPECT_TRUE(path.count("q"));
}

TEST(IpModelTest, BuiltinsRegistered)
{
    using hwdbg::elab::lookupIpModel;
    ASSERT_NE(lookupIpModel("scfifo"), nullptr);
    ASSERT_NE(lookupIpModel("dcfifo"), nullptr);
    ASSERT_NE(lookupIpModel("altsyncram"), nullptr);
    ASSERT_NE(lookupIpModel("signal_recorder"), nullptr);
    EXPECT_EQ(lookupIpModel("nonexistent_ip"), nullptr);
    EXPECT_TRUE(lookupIpModel("scfifo")->simulatable);
    EXPECT_TRUE(lookupIpModel("scfifo")->outputs.count("q"));
}

TEST(IpModelTest, UserRegisteredModelDrivesAnalysis)
{
    // §4.3: developers provide models for their own closed-source IPs
    // and reuse them across projects. Register a model for a fictional
    // delay-line IP and check both Dependency Monitor's graph and
    // LossCheck's relation table honor it.
    hwdbg::elab::IpModel model;
    model.name = "vendor_delayline";
    model.outputs = {"dout"};
    model.clockPorts = {"clk"};
    model.deps.push_back(
        hwdbg::elab::IpPortDep{"dout", "din", true});
    model.deps.push_back(
        hwdbg::elab::IpPortDep{"dout", "en", false});
    model.dataPaths.push_back(
        hwdbg::elab::IpDataPath{"din", "dout", {{"en", false}}});
    hwdbg::elab::registerIpModel(model);
    EXPECT_TRUE(hwdbg::elab::isPrimitive("vendor_delayline"));

    auto mod = flat(
        "module m(input wire clk, input wire en,\n"
        "         input wire [7:0] in, output reg [7:0] out);\n"
        "reg [7:0] staged;\n"
        "wire [7:0] delayed;\n"
        "vendor_delayline u_dl (.clk(clk), .en(en), .din(staged),\n"
        "  .dout(delayed));\n"
        "always @(posedge clk) begin\n"
        "  staged <= in;\n  out <= delayed;\nend\nendmodule");

    DepGraph graph(*mod);
    EXPECT_TRUE(graph.isIpOutput("delayed"));
    bool data_edge = false, ctrl_edge = false;
    for (const auto &edge : graph.edges()) {
        if (edge.src == "staged" && edge.dst == "delayed" &&
            edge.viaIp && edge.isData)
            data_edge = true;
        if (edge.src == "en" && edge.dst == "delayed" && !edge.isData)
            ctrl_edge = true;
    }
    EXPECT_TRUE(data_edge);
    EXPECT_TRUE(ctrl_edge);

    RelationTable table(*mod);
    bool rel = false;
    for (const auto &r : table.relations())
        if (r.src == "staged" && r.dst == "delayed" && r.viaIp) {
            rel = true;
            EXPECT_EQ(hwdbg::hdl::printExpr(r.cond), "en");
        }
    EXPECT_TRUE(rel);

    auto path = table.propagationPath("in", "out");
    EXPECT_TRUE(path.count("staged"));
    EXPECT_TRUE(path.count("delayed"));
}

TEST(DepGraphTest, CombCycles)
{
    auto mod = flat(
        "module m(input wire clk, input wire d, output wire y);\n"
        "wire a;\nwire b;\nreg q;\n"
        "assign a = b & d;\nassign b = a;\nassign y = a;\n"
        "always @(posedge clk) q <= y;\nendmodule");
    DepGraph graph(*mod);
    auto cycles = graph.combCycles();
    ASSERT_EQ(cycles.size(), 1u);
    EXPECT_EQ(cycles[0], (std::vector<std::string>{"a", "b"}));
}

TEST(DepGraphTest, CombCyclesSelfLoopAndSeqFreedom)
{
    // A register feeding itself through a clocked process is NOT a
    // combinational loop; a wire feeding itself is.
    auto mod = flat(
        "module m(input wire clk, input wire d, output wire y);\n"
        "wire a;\nreg q;\n"
        "assign a = a | d;\n"
        "always @(posedge clk) q <= q ^ d;\n"
        "assign y = a & q;\nendmodule");
    DepGraph graph(*mod);
    auto cycles = graph.combCycles();
    ASSERT_EQ(cycles.size(), 1u);
    EXPECT_EQ(cycles[0], (std::vector<std::string>{"a"}));
}

TEST(DepGraphTest, CombCyclesEmptyOnAcyclicDesign)
{
    auto mod = flat(
        "module m(input wire clk, input wire d, output wire y);\n"
        "wire a;\nassign a = d;\nassign y = a;\nendmodule");
    DepGraph graph(*mod);
    EXPECT_TRUE(graph.combCycles().empty());
}
