/**
 * @file
 * Tests for path-constraint extraction and wire inlining.
 */

#include <gtest/gtest.h>

#include "analysis/exprutil.hh"
#include "analysis/guards.hh"
#include "elab/elaborate.hh"
#include "hdl/parser.hh"
#include "hdl/printer.hh"

using namespace hwdbg;
using namespace hwdbg::hdl;
using namespace hwdbg::analysis;

namespace
{

ModulePtr
flat(const std::string &src, const std::string &top = "m")
{
    return elab::elaborate(parse(src), top).mod;
}

const GuardedAssign *
assignTo(const std::vector<GuardedAssign> &assigns,
         const std::string &target)
{
    for (const auto &ga : assigns)
        if (ga.lhs->kind == ExprKind::Id &&
            ga.lhs->as<IdExpr>()->name == target)
            return &ga;
    return nullptr;
}

} // namespace

TEST(GuardsTest, UnconditionalAssignHasTrueGuard)
{
    auto mod = flat("module m(input wire clk);\nreg [3:0] x;\n"
                    "always @(posedge clk) x <= x;\nendmodule");
    auto assigns = collectAssigns(*mod);
    const auto *ga = assignTo(assigns, "x");
    ASSERT_NE(ga, nullptr);
    EXPECT_EQ(printExpr(ga->guard), "1'h1");
    EXPECT_TRUE(ga->sequential);
    EXPECT_EQ(ga->clock, "clk");
}

TEST(GuardsTest, NestedIfGuards)
{
    auto mod = flat(
        "module m(input wire clk, input wire a, input wire b);\n"
        "reg x, y;\n"
        "always @(posedge clk) begin\n"
        "  if (a) begin\n"
        "    if (b) x <= 1'b1;\n"
        "    else y <= 1'b1;\n"
        "  end\nend\nendmodule");
    auto assigns = collectAssigns(*mod);
    EXPECT_EQ(printExpr(assignTo(assigns, "x")->guard), "a && b");
    EXPECT_EQ(printExpr(assignTo(assigns, "y")->guard), "a && !b");
}

TEST(GuardsTest, CaseGuardsWithPriority)
{
    auto mod = flat(
        "module m(input wire clk, input wire [1:0] s);\n"
        "reg a, b, c;\n"
        "always @(posedge clk)\ncase (s)\n"
        "  2'd0: a <= 1'b1;\n"
        "  2'd1: b <= 1'b1;\n"
        "  default: c <= 1'b1;\nendcase\nendmodule");
    auto assigns = collectAssigns(*mod);
    EXPECT_EQ(printExpr(assignTo(assigns, "a")->guard), "s == 2'h0");
    // Later items carry the negation of earlier label matches.
    EXPECT_NE(printExpr(assignTo(assigns, "b")->guard).find("s == 2'h1"),
              std::string::npos);
    std::string c_guard = printExpr(assignTo(assigns, "c")->guard);
    EXPECT_NE(c_guard.find("!"), std::string::npos);
}

TEST(GuardsTest, ContinuousAssignCollected)
{
    auto mod = flat("module m(input wire a, output wire b);\n"
                    "assign b = !a;\nendmodule");
    auto assigns = collectAssigns(*mod);
    const auto *ga = assignTo(assigns, "b");
    ASSERT_NE(ga, nullptr);
    EXPECT_FALSE(ga->sequential);
    EXPECT_NE(ga->cont, nullptr);
}

TEST(GuardsTest, BlockingAssignNotSequential)
{
    auto mod = flat("module m(input wire clk);\nreg x;\n"
                    "always @(posedge clk) x = 1'b1;\nendmodule");
    auto assigns = collectAssigns(*mod);
    EXPECT_FALSE(assignTo(assigns, "x")->sequential);
}

TEST(GuardsTest, DisplayGuards)
{
    auto mod = flat(
        "module m(input wire clk, input wire err);\n"
        "always @(posedge clk) if (err) $display(\"bad\");\nendmodule");
    auto displays = collectDisplays(*mod);
    ASSERT_EQ(displays.size(), 1u);
    EXPECT_EQ(printExpr(displays[0].guard), "err");
    EXPECT_EQ(displays[0].clock, "clk");
    EXPECT_EQ(displays[0].stmt->format, "bad");
}

TEST(ExprUtilTest, CollectSignals)
{
    auto mod = flat(
        "module m(input wire [3:0] a, input wire [3:0] b,\n"
        "         output wire [3:0] x);\nwire [3:0] t;\n"
        "assign t = a & b;\nassign x = t + a;\nendmodule");
    auto assigns = collectAssigns(*mod);
    const auto *ga = assignTo(assigns, "x");
    auto sigs = collectSignals(ga->rhs);
    EXPECT_TRUE(sigs.count("t"));
    EXPECT_TRUE(sigs.count("a"));
    EXPECT_FALSE(sigs.count("b"));
}

TEST(ExprUtilTest, LValueTargets)
{
    auto mod = flat(
        "module m(input wire clk);\nreg c;\nreg [7:0] s;\n"
        "reg [7:0] mem [0:3];\nreg [1:0] i;\n"
        "always @(posedge clk) begin\n"
        "  {c, s} <= 9'd0;\n  mem[i] <= 8'd0;\nend\nendmodule");
    auto assigns = collectAssigns(*mod);
    std::set<std::string> all;
    for (const auto &ga : assigns)
        for (const auto &target : lvalueTargets(ga.lhs))
            all.insert(target);
    EXPECT_TRUE(all.count("c"));
    EXPECT_TRUE(all.count("s"));
    EXPECT_TRUE(all.count("mem"));
}

TEST(ExprUtilTest, InlineWiresExpandsChains)
{
    auto mod = flat(
        "module m(input wire [3:0] a, input wire [3:0] b,\n"
        "         output wire [3:0] x);\n"
        "wire [3:0] t, u;\n"
        "assign t = a & b;\nassign u = t | a;\nassign x = u;\nendmodule");
    auto defs = wireDefinitions(*mod);
    ExprPtr inlined = inlineWires(mkId("x"), defs);
    auto sigs = collectSignals(inlined);
    EXPECT_TRUE(sigs.count("a"));
    EXPECT_TRUE(sigs.count("b"));
    EXPECT_FALSE(sigs.count("t"));
    EXPECT_FALSE(sigs.count("u"));
    EXPECT_FALSE(sigs.count("x"));
}

TEST(ExprUtilTest, InlineWiresStopsOnCycle)
{
    // Combinational loop: inlining must terminate.
    auto mod = flat(
        "module m(input wire a, output wire x);\nwire y;\n"
        "assign x = y & a;\nassign y = x;\nendmodule");
    auto defs = wireDefinitions(*mod);
    ExprPtr inlined = inlineWires(mkId("x"), defs);
    EXPECT_NE(inlined, nullptr);
}

TEST(GuardsTest, NestedCaseDefaultComposesNegations)
{
    // A case inside another case's default arm: the inner item's guard
    // must carry the outer no-earlier-match negations AND the inner
    // label match.
    auto mod = flat(
        "module m(input wire clk, input wire [1:0] s,\n"
        "         input wire [1:0] t);\n"
        "reg a, b;\n"
        "always @(posedge clk)\ncase (s)\n"
        "  2'd0: a <= 1'b1;\n"
        "  default: case (t)\n"
        "    2'd3: b <= 1'b1;\n"
        "  endcase\nendcase\nendmodule");
    auto assigns = collectAssigns(*mod);
    const auto *gb = assignTo(assigns, "b");
    ASSERT_NE(gb, nullptr);
    std::string guard = printExpr(gb->guard);
    EXPECT_NE(guard.find("s == 2'h0"), std::string::npos);
    EXPECT_NE(guard.find("!"), std::string::npos);
    EXPECT_NE(guard.find("t == 2'h3"), std::string::npos);
}

TEST(GuardsTest, DefaultOnlyCaseIsUnconditional)
{
    // With no labeled items, no_earlier stays literal true and the
    // default's guard collapses back to the enclosing guard.
    auto mod = flat(
        "module m(input wire clk, input wire [1:0] s);\nreg a;\n"
        "always @(posedge clk)\ncase (s)\n"
        "  default: a <= 1'b1;\nendcase\nendmodule");
    auto assigns = collectAssigns(*mod);
    EXPECT_EQ(printExpr(assignTo(assigns, "a")->guard), "1'h1");
}

TEST(GuardsTest, EmptyElseArmCollectsNothing)
{
    // `else ;` is a Null statement: it must neither crash the walker
    // nor contribute a phantom assignment.
    auto mod = flat(
        "module m(input wire clk, input wire c);\nreg x;\n"
        "always @(posedge clk) begin\n"
        "  if (c) x <= 1'b1; else ;\n"
        "  if (!c) begin end else x <= 1'b0;\nend\nendmodule");
    auto assigns = collectAssigns(*mod);
    ASSERT_EQ(assigns.size(), 2u);
    EXPECT_EQ(printExpr(assigns[0].guard), "c");
    // mkNot collapses the double negation of the else-arm guard.
    EXPECT_EQ(printExpr(assigns[1].guard), "c");
}

TEST(GuardsTest, ConstantGuardCollapse)
{
    // Literal conditions collapse through the mkAnd/mkNot smart
    // constructors instead of accreting 1'h1 && ... noise.
    auto mod = flat(
        "module m(input wire clk, input wire a);\n"
        "reg x, y, z;\n"
        "always @(posedge clk) begin\n"
        "  if (1'b1) if (a) x <= 1'b1;\n"
        "  if (1'b0) y <= 1'b1; else z <= 1'b1;\nend\nendmodule");
    auto assigns = collectAssigns(*mod);
    EXPECT_EQ(printExpr(assignTo(assigns, "x")->guard), "a");
    // The then-arm of a constant-false condition is dead on its face.
    EXPECT_EQ(printExpr(assignTo(assigns, "y")->guard), "1'h0");
    // ... and the else-arm is unconditional.
    EXPECT_EQ(printExpr(assignTo(assigns, "z")->guard), "1'h1");
}
