/**
 * @file
 * Tests for the register-level propagation relations (relations.cc):
 * wire-traced sources, propagation conditions, memory indices, IP
 * relations, and the propagation-path query LossCheck builds on.
 */

#include <gtest/gtest.h>

#include "analysis/relations.hh"
#include "elab/elaborate.hh"
#include "hdl/parser.hh"
#include "hdl/printer.hh"

using namespace hwdbg;
using namespace hwdbg::hdl;
using namespace hwdbg::analysis;

namespace
{

ModulePtr
flat(const std::string &src, const std::string &top = "m")
{
    return elab::elaborate(parse(src), top).mod;
}

const PropRelation *
relation(const RelationTable &table, const std::string &src,
         const std::string &dst)
{
    for (const auto &rel : table.relations())
        if (rel.src == src && rel.dst == dst)
            return &rel;
    return nullptr;
}

} // namespace

TEST(RelationsTest, DirectRegisterToRegister)
{
    auto mod = flat("module m(input wire clk, input wire [3:0] d);\n"
                    "reg [3:0] a; reg [3:0] b;\n"
                    "always @(posedge clk) a <= d;\n"
                    "always @(posedge clk) b <= a;\nendmodule");
    RelationTable table(*mod);
    const auto *rel = relation(table, "a", "b");
    ASSERT_NE(rel, nullptr);
    EXPECT_EQ(rel->clock, "clk");
    EXPECT_FALSE(rel->viaIp);
    EXPECT_EQ(printExpr(rel->cond), "1'h1");
}

TEST(RelationsTest, WireMediatedSourceIsTracedBack)
{
    // b <= w where w = a ^ k: the stateful source behind the wire is a.
    auto mod = flat("module m(input wire clk, input wire [3:0] k);\n"
                    "reg [3:0] a; reg [3:0] b;\nwire [3:0] w;\n"
                    "assign w = a ^ k;\n"
                    "always @(posedge clk) a <= k;\n"
                    "always @(posedge clk) b <= w;\nendmodule");
    RelationTable table(*mod);
    EXPECT_NE(relation(table, "a", "b"), nullptr);
    EXPECT_EQ(relation(table, "w", "b"), nullptr);
}

TEST(RelationsTest, ConditionCarriesTheGuard)
{
    auto mod = flat("module m(input wire clk, input wire en);\n"
                    "reg a; reg b;\n"
                    "always @(posedge clk) begin\n"
                    "  a <= en;\n  if (en) b <= a;\nend\nendmodule");
    RelationTable table(*mod);
    const auto *rel = relation(table, "a", "b");
    ASSERT_NE(rel, nullptr);
    EXPECT_EQ(printExpr(rel->cond), "en");
}

TEST(RelationsTest, MemoryIndicesRecorded)
{
    auto mod = flat("module m(input wire clk, input wire [1:0] wa,\n"
                    "         input wire [1:0] ra,\n"
                    "         input wire [7:0] d);\n"
                    "reg [7:0] mem [0:3];\nreg [7:0] q; reg [7:0] s;\n"
                    "always @(posedge clk) begin\n"
                    "  s <= d;\n  mem[wa] <= s;\n  q <= mem[ra];\nend\n"
                    "endmodule");
    RelationTable table(*mod);
    EXPECT_TRUE(table.isMemory("mem"));
    EXPECT_FALSE(table.isMemory("q"));
    EXPECT_EQ(table.memorySize("mem"), 4u);
    const auto *in = relation(table, "s", "mem");
    ASSERT_NE(in, nullptr);
    ASSERT_NE(in->dstIndex, nullptr);
    EXPECT_EQ(printExpr(in->dstIndex), "wa");
    const auto *out = relation(table, "mem", "q");
    ASSERT_NE(out, nullptr);
    ASSERT_NE(out->srcIndex, nullptr);
    EXPECT_EQ(printExpr(out->srcIndex), "ra");
}

TEST(RelationsTest, IntoAndOutOfFilter)
{
    auto mod = flat("module m(input wire clk, input wire d);\n"
                    "reg a; reg b; reg c;\n"
                    "always @(posedge clk) begin\n"
                    "  a <= d;\n  b <= a;\n  c <= a;\nend\nendmodule");
    RelationTable table(*mod);
    EXPECT_EQ(table.outOf("a").size(), 2u);
    EXPECT_EQ(table.into("b").size(), 1u);
    // Top-level inputs are stateful sources too: the testbench holds
    // their values across the clock edge.
    auto intoA = table.into("a");
    ASSERT_EQ(intoA.size(), 1u);
    EXPECT_EQ(intoA[0]->src, "d");
}

TEST(RelationsTest, PropagationPathAndUnreachable)
{
    auto mod = flat("module m(input wire clk, input wire d);\n"
                    "reg a; reg b; reg c; reg lone;\n"
                    "always @(posedge clk) begin\n"
                    "  a <= d;\n  b <= a;\n  c <= b;\n"
                    "  lone <= d;\nend\nendmodule");
    RelationTable table(*mod);
    auto path = table.propagationPath("a", "c");
    EXPECT_TRUE(path.count("a"));
    EXPECT_TRUE(path.count("b"));
    EXPECT_TRUE(path.count("c"));
    EXPECT_FALSE(path.count("lone"));
    EXPECT_TRUE(table.propagationPath("c", "lone").empty());
}

TEST(RelationsTest, FifoIpRelationIsConditional)
{
    auto mod = flat(
        "module m(input wire clk, input wire [7:0] d,\n"
        "         input wire wr, input wire rd);\n"
        "reg [7:0] src;\nwire [7:0] q;\nwire full;\nwire empty;\n"
        "reg [7:0] dst;\n"
        "always @(posedge clk) src <= d;\n"
        "scfifo #(.lpm_width(8), .lpm_numwords(4))\n"
        "  f(.clock(clk), .data(src), .wrreq(wr), .rdreq(rd),\n"
        "    .q(q), .full(full), .empty(empty));\n"
        "always @(posedge clk) dst <= q;\nendmodule");
    RelationTable table(*mod);
    bool found = false;
    for (const auto &rel : table.relations())
        if (rel.viaIp && rel.src == "src") {
            found = true;
            ASSERT_NE(rel.cond, nullptr);
            // The IP model's push condition gates the propagation.
            EXPECT_NE(printExpr(rel.cond).find("wr"),
                      std::string::npos);
        }
    EXPECT_TRUE(found);
}
