/**
 * @file
 * Tests for FSM detection heuristics (FSM Monitor, §4.2).
 */

#include <gtest/gtest.h>

#include "analysis/fsm_detect.hh"
#include "elab/elaborate.hh"
#include "hdl/parser.hh"

using namespace hwdbg;
using namespace hwdbg::hdl;
using namespace hwdbg::analysis;

namespace
{

std::vector<FsmInfo>
detect(const std::string &src, const std::string &top = "m")
{
    return detectFsms(*elab::elaborate(parse(src), top).mod);
}

const FsmInfo *
byVar(const std::vector<FsmInfo> &fsms, const std::string &name)
{
    for (const auto &fsm : fsms)
        if (fsm.stateVar == name)
            return &fsm;
    return nullptr;
}

// The paper's Listing 1 FSM, written with localparams.
const char *listing1 =
    "module m(input wire clk, input wire request_valid,\n"
    "         input wire work_done);\n"
    "localparam IDLE = 2'd0, WORK = 2'd1, FINISH = 2'd2;\n"
    "reg [1:0] state;\n"
    "always @(posedge clk)\n"
    "case (state)\n"
    "  IDLE: if (request_valid) state <= WORK;\n"
    "  WORK: if (work_done) state <= FINISH;\n"
    "  FINISH: state <= IDLE;\nendcase\nendmodule";

} // namespace

TEST(FsmDetectTest, DetectsListing1Fsm)
{
    auto fsms = detect(listing1);
    ASSERT_EQ(fsms.size(), 1u);
    const FsmInfo &fsm = fsms[0];
    EXPECT_EQ(fsm.stateVar, "state");
    EXPECT_EQ(fsm.clock, "clk");
    EXPECT_EQ(fsm.states.size(), 3u);
    ASSERT_EQ(fsm.transitions.size(), 3u);
    // IDLE -> WORK transition exists with from=0, to=1.
    bool idle_to_work = false;
    for (const auto &trans : fsm.transitions)
        if (trans.fromState && trans.fromState->toU64() == 0 &&
            trans.toState.toU64() == 1)
            idle_to_work = true;
    EXPECT_TRUE(idle_to_work);
}

TEST(FsmDetectTest, IfStyleFsmDetected)
{
    auto fsms = detect(
        "module m(input wire clk, input wire go);\n"
        "reg [1:0] st;\n"
        "always @(posedge clk) begin\n"
        "  if (st == 2'd0 && go) st <= 2'd1;\n"
        "  if (st == 2'd1) st <= 2'd0;\nend\nendmodule");
    EXPECT_NE(byVar(fsms, "st"), nullptr);
}

TEST(FsmDetectTest, CounterNotDetected)
{
    // Arithmetic on the register excludes it.
    auto fsms = detect(
        "module m(input wire clk);\nreg [7:0] count;\n"
        "always @(posedge clk)\n"
        "  if (count == 8'd10) count <= 8'd0;\n"
        "  else count <= count + 8'd1;\nendmodule");
    EXPECT_EQ(byVar(fsms, "count"), nullptr);
}

TEST(FsmDetectTest, BitSelectedRegisterNotDetected)
{
    auto fsms = detect(
        "module m(input wire clk, output wire low);\n"
        "reg [1:0] mode;\n"
        "assign low = mode[0];\n"
        "always @(posedge clk)\n"
        "  if (mode == 2'd0) mode <= 2'd1;\n"
        "  else if (mode == 2'd1) mode <= 2'd0;\nendmodule");
    EXPECT_EQ(byVar(fsms, "mode"), nullptr);
}

TEST(FsmDetectTest, DataRegisterNotDetected)
{
    // Assigned from a non-constant: not an FSM.
    auto fsms = detect(
        "module m(input wire clk, input wire [1:0] d);\nreg [1:0] r;\n"
        "always @(posedge clk) if (r == 2'd0) r <= d;\nendmodule");
    EXPECT_EQ(byVar(fsms, "r"), nullptr);
}

TEST(FsmDetectTest, FlagToggleWithoutSelfTestNotDetected)
{
    // Constant assignments whose guards never inspect the register: a
    // mode flag, not a state machine.
    auto fsms = detect(
        "module m(input wire clk, input wire a, input wire b);\nreg f;\n"
        "always @(posedge clk) begin\n"
        "  if (a) f <= 1'b1;\n  if (b) f <= 1'b0;\nend\nendmodule");
    EXPECT_EQ(byVar(fsms, "f"), nullptr);
}

TEST(FsmDetectTest, TwoProcessStyleIsAKnownFalseNegative)
{
    // Next-state comes through a wire: the heuristics miss it, matching
    // the paper's reported false negatives.
    auto fsms = detect(
        "module m(input wire clk, input wire go);\n"
        "reg [1:0] st;\nreg [1:0] next;\n"
        "always @* begin\n"
        "  next = st;\n"
        "  if (st == 2'd0 && go) next = 2'd1;\n"
        "  if (st == 2'd1) next = 2'd0;\nend\n"
        "always @(posedge clk) st <= next;\nendmodule");
    EXPECT_EQ(byVar(fsms, "st"), nullptr);
}

TEST(FsmDetectTest, MultipleFsmsInOneModule)
{
    auto fsms = detect(
        "module m(input wire clk, input wire a, input wire b);\n"
        "reg [1:0] rd_state;\nreg [1:0] wr_state;\n"
        "always @(posedge clk) begin\n"
        "  case (rd_state)\n"
        "    2'd0: if (a) rd_state <= 2'd1;\n"
        "    2'd1: rd_state <= 2'd0;\n"
        "  endcase\n"
        "  case (wr_state)\n"
        "    2'd0: if (b) wr_state <= 2'd2;\n"
        "    2'd2: wr_state <= 2'd0;\n"
        "  endcase\nend\nendmodule");
    EXPECT_NE(byVar(fsms, "rd_state"), nullptr);
    EXPECT_NE(byVar(fsms, "wr_state"), nullptr);
}

TEST(FsmDetectTest, ResetOnlyConstantRegNotDetected)
{
    // One state value only: not a machine.
    auto fsms = detect(
        "module m(input wire clk, input wire rst);\nreg [1:0] r;\n"
        "always @(posedge clk) if (rst && r == 2'd0) r <= 2'd0;\n"
        "endmodule");
    EXPECT_EQ(byVar(fsms, "r"), nullptr);
}

TEST(FsmDetectTest, FlattenedSubmoduleFsmDetected)
{
    std::string src =
        "module child(input wire clk, input wire go);\n"
        "reg [1:0] cs;\n"
        "always @(posedge clk)\ncase (cs)\n"
        "  2'd0: if (go) cs <= 2'd1;\n  2'd1: cs <= 2'd0;\nendcase\n"
        "endmodule\n"
        "module m(input wire clk, input wire go);\n"
        "child u_c (.clk(clk), .go(go));\nendmodule";
    auto fsms = detect(src);
    EXPECT_NE(byVar(fsms, "u_c__cs"), nullptr);
}
