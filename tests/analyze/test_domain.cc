/**
 * @file
 * Tests for the known-bits domain: the lattice, the abstract expression
 * evaluator against the simulator's width rules, three-valued guards,
 * the must-assign dataflow, and the whole-design constant fixpoint.
 */

#include <gtest/gtest.h>

#include "analyze/cfg.hh"
#include "analyze/domain.hh"
#include "analyze/fixpoint.hh"
#include "analyze/solver.hh"
#include "elab/elaborate.hh"
#include "hdl/parser.hh"

using namespace hwdbg;
using namespace hwdbg::hdl;
using namespace hwdbg::analyze;

namespace
{

ModulePtr
flat(const std::string &src)
{
    return elab::elaborate(parse(src), "m").mod;
}

/** Parse "module m; wire [w-1:0] t; assign t = <expr>; ..." and
 *  abstractly evaluate the expression under an empty environment. */
std::optional<KnownBits>
evalExpr(const std::string &decls, const std::string &expr,
         uint32_t width, const Env &env = {})
{
    auto mod = flat("module m(input wire clk);\n" + decls +
                    "wire [" + std::to_string(width - 1) +
                    ":0] t__;\nassign t__ = " + expr +
                    ";\nendmodule");
    SignalTable sigs(*mod);
    for (const auto &item : mod->items)
        if (item->kind == ItemKind::ContAssign) {
            const auto *ca = item->as<ContAssignItem>();
            if (ca->lhs->kind == ExprKind::Id &&
                ca->lhs->as<IdExpr>()->name == "t__")
                return kbEval(ca->rhs, width, sigs, env);
        }
    ADD_FAILURE() << "assign to t__ not found";
    return std::nullopt;
}

} // namespace

TEST(KnownBitsTest, ConstantAndUnknownBasics)
{
    KnownBits c = KnownBits::constant(4, 0xA);
    EXPECT_TRUE(c.fullyKnown());
    EXPECT_TRUE(c.knownNonzero());
    EXPECT_FALSE(c.knownZero());
    EXPECT_EQ(c.value, 0xAu);

    KnownBits u = KnownBits::unknown(4);
    EXPECT_FALSE(u.fullyKnown());
    EXPECT_FALSE(u.anyKnown());
    EXPECT_FALSE(u.knownZero());
    EXPECT_FALSE(u.knownNonzero());

    KnownBits z = KnownBits::constant(64, 0);
    EXPECT_TRUE(z.knownZero());
    EXPECT_EQ(KnownBits::maskOf(64), ~0ULL);
}

TEST(KnownBitsTest, JoinKeepsAgreedBitsOnly)
{
    KnownBits a = KnownBits::constant(4, 0b1010);
    KnownBits b = KnownBits::constant(4, 0b1001);
    KnownBits j = joinKnown(a, b);
    // Bits 3 (1==1) and 2 (0==0) agree; bits 1 and 0 differ.
    EXPECT_EQ(j.known, 0b1100u);
    EXPECT_EQ(j.value & j.known, 0b1000u);

    KnownBits ju = joinKnown(a, KnownBits::unknown(4));
    EXPECT_FALSE(ju.anyKnown());
}

TEST(KnownBitsTest, ResizeZeroExtendsAndTruncates)
{
    KnownBits c = KnownBits::constant(4, 0xF);
    KnownBits wide = c.resized(8);
    // Zero-extension makes the new high bits known-zero.
    EXPECT_TRUE(wide.fullyKnown());
    EXPECT_EQ(wide.value, 0xFu);
    KnownBits narrow = c.resized(2);
    EXPECT_TRUE(narrow.fullyKnown());
    EXPECT_EQ(narrow.value, 0x3u);
}

TEST(DomainTest, ConstEvalFoldsPureConstants)
{
    auto mod = flat("module m(input wire clk, input wire [3:0] x);\n"
                    "wire [7:0] a;\nwire [7:0] b;\n"
                    "assign a = 8'd3 + 8'd4;\nassign b = x + 8'd1;\n"
                    "endmodule");
    for (const auto &item : mod->items) {
        if (item->kind != ItemKind::ContAssign)
            continue;
        const auto *ca = item->as<ContAssignItem>();
        std::string name = ca->lhs->as<IdExpr>()->name;
        auto v = constEval(ca->rhs);
        if (name == "a") {
            ASSERT_TRUE(v.has_value());
            EXPECT_EQ(*v, 7u);
        } else if (name == "b") {
            EXPECT_FALSE(v.has_value());
        }
    }
}

TEST(DomainTest, KbEvalFoldsOperatorsLikeTheSimulator)
{
    // Arithmetic at context width wraps like the simulator.
    auto v = evalExpr("", "4'd9 + 4'd8", 4);
    ASSERT_TRUE(v.has_value());
    EXPECT_TRUE(v->fullyKnown());
    EXPECT_EQ(v->value, 1u); // 17 mod 16

    // Comparison is 1-bit and zero-extends into the context.
    v = evalExpr("", "4'd3 < 4'd5", 4);
    ASSERT_TRUE(v.has_value());
    EXPECT_TRUE(v->fullyKnown());
    EXPECT_EQ(v->value, 1u);

    // Unknown operand: AND with known-zero still proves zero bits.
    Env env;
    env["u"] = KnownBits::unknown(4);
    v = evalExpr("wire [3:0] u;\nassign u = 4'd0;\n", "u & 4'd0", 4,
                 env);
    ASSERT_TRUE(v.has_value());
    EXPECT_TRUE(v->knownZero());

    // OR with known-ones proves one bits even when the other side is
    // unknown.
    v = evalExpr("wire [3:0] u;\nassign u = 4'd0;\n", "u | 4'hF", 4,
                 env);
    ASSERT_TRUE(v.has_value());
    EXPECT_TRUE(v->fullyKnown());
    EXPECT_EQ(v->value, 0xFu);
}

TEST(DomainTest, KbEvalBottomPropagates)
{
    // A signal whose env entry is std::nullopt is bottom and poisons
    // the whole expression — the optimistic fixpoint depends on the
    // difference. A signal absent from the env is merely unknown.
    Env env;
    env["u"] = std::nullopt;
    auto v = evalExpr("wire [3:0] u;\nassign u = 4'd0;\n", "u + 4'd1",
                      4, env);
    EXPECT_FALSE(v.has_value());
    auto u = evalExpr("wire [3:0] u;\nassign u = 4'd0;\n", "u + 4'd1",
                      4, Env{});
    ASSERT_TRUE(u.has_value());
    EXPECT_FALSE(u->anyKnown());
}

TEST(DomainTest, TriEvalThreeValues)
{
    auto mod = flat("module m(input wire clk, input wire c);\n"
                    "wire t;\nassign t = c;\nendmodule");
    SignalTable sigs(*mod);
    Env env;
    env["c"] = KnownBits::unknown(1);
    for (const auto &item : mod->items) {
        if (item->kind != ItemKind::ContAssign)
            continue;
        const auto *ca = item->as<ContAssignItem>();
        auto t = triEval(ca->rhs, sigs, env);
        ASSERT_TRUE(t.has_value());
        EXPECT_EQ(*t, Tri::Unknown);
        env["c"] = KnownBits::constant(1, 0);
        EXPECT_EQ(*triEval(ca->rhs, sigs, env), Tri::False);
        env["c"] = KnownBits::constant(1, 1);
        EXPECT_EQ(*triEval(ca->rhs, sigs, env), Tri::True);
    }
}

TEST(DomainTest, SignalTableWidthsKindsAndParams)
{
    auto mod = flat("module m(input wire clk, input wire [7:0] d,\n"
                    "         output reg [3:0] q);\n"
                    "parameter W = 5;\n"
                    "wire [W-1:0] w;\nreg [1:0] mem [0:3];\n"
                    "assign w = 5'd0;\n"
                    "always @(posedge clk) q <= d[3:0];\n"
                    "endmodule");
    SignalTable sigs(*mod);
    const auto *d = sigs.find("d");
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->width, 8u);
    EXPECT_FALSE(d->isReg);
    EXPECT_EQ(d->dir, PortDir::Input);
    const auto *q = sigs.find("q");
    ASSERT_NE(q, nullptr);
    EXPECT_TRUE(q->isReg);
    EXPECT_EQ(q->dir, PortDir::Output);
    const auto *mem = sigs.find("mem");
    ASSERT_NE(mem, nullptr);
    EXPECT_TRUE(mem->isArray);
    EXPECT_EQ(sigs.find("nosuch"), nullptr);
}

TEST(MustAssignTest, IntersectionAcrossBranches)
{
    auto mod = flat("module m(input wire clk, input wire c);\n"
                    "reg [3:0] a; reg [3:0] b; reg [3:0] d;\n"
                    "always @* begin\n"
                    "  a = 4'd0;\n"
                    "  if (c) begin b = 4'd1; d = 4'd1; end\n"
                    "  else b = 4'd2;\nend\nendmodule");
    const AlwaysItem *proc = nullptr;
    for (const auto &item : mod->items)
        if (item->kind == ItemKind::Always)
            proc = item->as<AlwaysItem>();
    ASSERT_NE(proc, nullptr);
    auto must = mustAssignAtExit(*proc);
    // a and b are assigned on every path; d only when c holds.
    EXPECT_TRUE(must.count("a"));
    EXPECT_TRUE(must.count("b"));
    EXPECT_FALSE(must.count("d"));
}

TEST(MustAssignTest, CaseWithoutDefaultGuaranteesNothing)
{
    auto mod = flat("module m(input wire clk, input wire [1:0] s);\n"
                    "reg [3:0] a;\n"
                    "always @* begin\n"
                    "  case (s)\n"
                    "    2'd0: a = 4'd1;\n"
                    "    2'd1: a = 4'd2;\n"
                    "  endcase\nend\nendmodule");
    const AlwaysItem *proc = nullptr;
    for (const auto &item : mod->items)
        if (item->kind == ItemKind::Always)
            proc = item->as<AlwaysItem>();
    auto must = mustAssignAtExit(*proc);
    EXPECT_FALSE(must.count("a"));
}

TEST(FixpointTest, ProvesConstantsThroughWiresAndRegs)
{
    auto mod = flat("module m(input wire clk, input wire [3:0] x,\n"
                    "         output wire [3:0] y);\n"
                    "wire [3:0] k;\nreg [3:0] r;\n"
                    "assign k = 4'd5;\n"
                    "always @(posedge clk) r <= k;\n"
                    "assign y = r;\nendmodule");
    SignalTable sigs(*mod);
    auto fix = solveConstants(*mod, sigs);
    // r joins its reset value 0 with k=5: only the agreeing bits
    // survive (0b0101 vs 0b0000 -> bits 3 and 1 known zero).
    KnownBits r = fix.factOf("r", sigs);
    EXPECT_FALSE(r.fullyKnown());
    EXPECT_EQ(r.known & 0b1010u, 0b1010u);
    KnownBits k = fix.factOf("k", sigs);
    EXPECT_TRUE(k.fullyKnown());
    EXPECT_EQ(k.value, 5u);
    // The free input stays unknown.
    EXPECT_FALSE(fix.factOf("x", sigs).anyKnown());
}

TEST(FixpointTest, DeadGuardDetected)
{
    auto mod = flat("module m(input wire clk, output reg [3:0] q);\n"
                    "wire en;\nassign en = 1'b0;\n"
                    "always @(posedge clk) begin\n"
                    "  q <= 4'd0;\n"
                    "  if (en) q <= 4'd9;\nend\nendmodule");
    SignalTable sigs(*mod);
    auto fix = solveConstants(*mod, sigs);
    size_t dead = 0;
    for (size_t i = 0; i < fix.assigns.size(); ++i)
        dead += fix.deadGuard[i];
    EXPECT_EQ(dead, 1u);
    // With the guarded store dead, q is proven stuck at zero.
    EXPECT_TRUE(fix.factOf("q", sigs).knownZero());
}

TEST(FixpointTest, PrimitiveConnectionsForceUnknown)
{
    auto mod = flat("module m(input wire clk);\n"
                    "wire [7:0] q;\nwire full;\nwire empty;\n"
                    "wire [7:0] d;\nassign d = 8'd0;\n"
                    "scfifo #(.lpm_width(8), .lpm_numwords(4))\n"
                    "  f(.clock(clk), .data(d), .wrreq(1'b1),\n"
                    "    .rdreq(1'b1), .q(q), .full(full),\n"
                    "    .empty(empty));\nendmodule");
    SignalTable sigs(*mod);
    auto fix = solveConstants(*mod, sigs);
    EXPECT_TRUE(fix.primConnected.count("q"));
    // Even though nothing in the module assigns q, the IP may: no
    // constant claim is allowed.
    EXPECT_FALSE(fix.factOf("q", sigs).anyKnown());
}

TEST(SolverTest, UnreachableNodesKeepBottom)
{
    // Hand-build a CFG with an orphan node the entry never reaches.
    Cfg cfg;
    cfg.nodes.resize(4);
    cfg.nodes[0].kind = CfgNode::Kind::Entry;
    cfg.nodes[1].kind = CfgNode::Kind::Exit;
    cfg.nodes[2].kind = CfgNode::Kind::Stmt;
    cfg.nodes[3].kind = CfgNode::Kind::Stmt; // orphan
    cfg.nodes[0].succs = {2};
    cfg.nodes[2].preds = {0};
    cfg.nodes[2].succs = {1};
    cfg.nodes[1].preds = {2};
    MustAssignDomain dom;
    auto res = solveForward(cfg, dom);
    EXPECT_TRUE(res.in[0].has_value());
    EXPECT_TRUE(res.in[1].has_value());
    EXPECT_FALSE(res.in[3].has_value());
    EXPECT_FALSE(res.out[3].has_value());
}
