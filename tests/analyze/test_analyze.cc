/**
 * @file
 * Tests for the analyze pass framework: the registry, one firing and
 * one clean fixture per rule, pass selection, determinism, the
 * versioned JSON report with its obscheck validator, and the shared
 * comb-loop emitter that keeps lint and analyze findings identical.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "analyze/analyze.hh"
#include "elab/elaborate.hh"
#include "hdl/parser.hh"
#include "lint/lint.hh"

using namespace hwdbg;
using namespace hwdbg::analyze;

namespace
{

std::vector<lint::Diagnostic>
analyzeSrc(const std::string &src, const std::string &pass = "",
           const std::string &top = "m")
{
    auto mod = elab::elaborate(hdl::parse(src), top).mod;
    AnalyzeOptions opts;
    if (!pass.empty())
        opts.passes.insert(pass);
    return runAnalyze(*mod, opts);
}

bool
fires(const std::vector<lint::Diagnostic> &diags,
      const std::string &rule)
{
    return std::any_of(diags.begin(), diags.end(),
                       [&](const lint::Diagnostic &d) {
                           return d.rule == rule;
                       });
}

} // namespace

TEST(AnalyzeRegistryTest, PassesAreRegisteredAndUnique)
{
    const auto &passes = analyzePasses();
    ASSERT_EQ(passes.size(), 5u);
    std::set<std::string> ids;
    for (const auto &pass : passes) {
        EXPECT_TRUE(ids.insert(pass.id).second);
        EXPECT_FALSE(pass.description.empty()) << pass.id;
        EXPECT_NE(pass.run, nullptr) << pass.id;
        EXPECT_EQ(passById(pass.id), &pass);
    }
    EXPECT_TRUE(ids.count("const"));
    EXPECT_TRUE(ids.count("xinit"));
    EXPECT_TRUE(ids.count("race"));
    EXPECT_TRUE(ids.count("cdc"));
    EXPECT_TRUE(ids.count("loop"));
    EXPECT_EQ(passById("no-such-pass"), nullptr);
}

TEST(AnalyzeConstTest, DeadGuardFiresAndCleans)
{
    std::string buggy = "module m(input wire clk, output reg q);\n"
                        "wire en;\nassign en = 1'b0;\n"
                        "always @(posedge clk) begin\n"
                        "  q <= 1'b0;\n  if (en) q <= 1'b1;\nend\n"
                        "endmodule";
    auto diags = analyzeSrc(buggy, "const");
    EXPECT_TRUE(fires(diags, "dead-guard"));
    EXPECT_TRUE(fires(diags, "stuck-output"));

    std::string clean = "module m(input wire clk, input wire en,\n"
                        "         output reg q);\n"
                        "always @(posedge clk) begin\n"
                        "  q <= 1'b0;\n  if (en) q <= 1'b1;\nend\n"
                        "endmodule";
    auto cleanDiags = analyzeSrc(clean, "const");
    EXPECT_FALSE(fires(cleanDiags, "dead-guard"));
    EXPECT_FALSE(fires(cleanDiags, "stuck-output"));
}

TEST(AnalyzeConstTest, StuckBitOnPartialConstant)
{
    // The concat pins the top bit to zero while the low bits move.
    std::string src = "module m(input wire clk, input wire [2:0] d,\n"
                      "         output reg [3:0] q);\n"
                      "always @(posedge clk) q <= {1'b0, d};\n"
                      "endmodule";
    auto diags = analyzeSrc(src, "const");
    EXPECT_TRUE(fires(diags, "stuck-bit"));
    EXPECT_FALSE(fires(diags, "stuck-output"));
}

TEST(AnalyzeConstTest, DeadSignalNeverReachesASink)
{
    std::string src = "module m(input wire clk, input wire [3:0] d,\n"
                      "         output reg [3:0] q);\n"
                      "reg [3:0] scratch;\nreg [3:0] fed;\n"
                      "always @(posedge clk) begin\n"
                      "  scratch <= d;\n  fed <= scratch;\n"
                      "  q <= d;\nend\nendmodule";
    auto diags = analyzeSrc(src, "const");
    // scratch is read (into fed) but fed reaches nothing observable.
    EXPECT_TRUE(fires(diags, "dead-signal"));
}

TEST(AnalyzeXinitTest, CombReadBeforeWrite)
{
    std::string buggy = "module m(input wire clk, input wire [3:0] d,\n"
                        "         output wire [3:0] y);\n"
                        "reg [3:0] a; reg [3:0] b;\n"
                        "always @* begin\n"
                        "  b = a + 4'd1;\n  a = d;\nend\n"
                        "assign y = b;\nendmodule";
    auto diags = analyzeSrc(buggy, "xinit");
    EXPECT_TRUE(fires(diags, "comb-read-before-write"));

    std::string clean = "module m(input wire clk, input wire [3:0] d,\n"
                        "         output wire [3:0] y);\n"
                        "reg [3:0] a; reg [3:0] b;\n"
                        "always @* begin\n"
                        "  a = d;\n  b = a + 4'd1;\nend\n"
                        "assign y = b;\nendmodule";
    EXPECT_FALSE(fires(analyzeSrc(clean, "xinit"),
                       "comb-read-before-write"));
}

TEST(AnalyzeXinitTest, ReadUninitializedWhenNoAssignReachable)
{
    std::string src = "module m(input wire clk, output reg [3:0] q);\n"
                      "reg [3:0] never;\nwire en;\nassign en = 1'b0;\n"
                      "always @(posedge clk) begin\n"
                      "  if (en) never <= 4'd5;\n"
                      "  q <= never;\nend\nendmodule";
    auto diags = analyzeSrc(src, "xinit");
    EXPECT_TRUE(fires(diags, "read-uninitialized"));
}

TEST(AnalyzeRaceTest, BlockingRaceAcrossSiblingProcesses)
{
    std::string buggy = "module m(input wire clk, input wire [3:0] d,\n"
                        "         output reg [3:0] q);\n"
                        "reg [3:0] x;\n"
                        "always @(posedge clk) x = d;\n"
                        "always @(posedge clk) q <= x;\nendmodule";
    auto diags = analyzeSrc(buggy, "race");
    EXPECT_TRUE(fires(diags, "blocking-race"));
    EXPECT_TRUE(lint::hasErrors(diags));

    // The NBA version of the same design is order-independent.
    std::string clean = "module m(input wire clk, input wire [3:0] d,\n"
                        "         output reg [3:0] q);\n"
                        "reg [3:0] x;\n"
                        "always @(posedge clk) x <= d;\n"
                        "always @(posedge clk) q <= x;\nendmodule";
    EXPECT_FALSE(fires(analyzeSrc(clean, "race"), "blocking-race"));
}

TEST(AnalyzeRaceTest, LocalBlockingTempIsNotARace)
{
    // Blocking writes consumed only inside the same process are the
    // idiomatic temporary, not a race.
    std::string src = "module m(input wire clk, input wire [3:0] d,\n"
                      "         output reg [3:0] q);\n"
                      "reg [3:0] t;\n"
                      "always @(posedge clk) begin\n"
                      "  t = d + 4'd1;\n  q <= t;\nend\nendmodule";
    auto diags = analyzeSrc(src, "race");
    EXPECT_FALSE(fires(diags, "blocking-race"));
}

TEST(AnalyzeRaceTest, MixedAndMultiDrivers)
{
    std::string mixed = "module m(input wire clk, input wire [3:0] d,\n"
                        "         output reg [3:0] q);\n"
                        "always @(posedge clk)\n"
                        "  if (d[0]) q = d; else q <= 4'd0;\n"
                        "endmodule";
    EXPECT_TRUE(fires(analyzeSrc(mixed, "race"), "nba-blocking-mix"));

    std::string multi = "module m(input wire clk, input wire [3:0] d,\n"
                        "         output reg [3:0] q);\n"
                        "always @(posedge clk) q <= d;\n"
                        "always @(posedge clk) q <= d + 4'd1;\n"
                        "endmodule";
    EXPECT_TRUE(fires(analyzeSrc(multi, "race"), "multi-driver-nba"));
}

TEST(AnalyzeCdcTest, MultiClockRegAndUnsyncCrossing)
{
    std::string multi = "module m(input wire clk, input wire clkb,\n"
                        "         input wire [3:0] d,\n"
                        "         output reg [3:0] q);\n"
                        "always @(posedge clk) q <= d;\n"
                        "always @(posedge clkb) q <= d + 4'd1;\n"
                        "endmodule";
    auto diags = analyzeSrc(multi, "cdc");
    EXPECT_TRUE(fires(diags, "multi-clock-reg"));

    std::string crossing =
        "module m(input wire clk, input wire clkb,\n"
        "         input wire [3:0] d, output reg [3:0] q);\n"
        "reg [3:0] src;\n"
        "always @(posedge clkb) src <= d;\n"
        "always @(posedge clk) q <= src + 4'd1;\nendmodule";
    EXPECT_TRUE(fires(analyzeSrc(crossing, "cdc"), "cdc-unsync"));

    // A plain two-stage synchronizer is the sanctioned pattern.
    std::string synced =
        "module m(input wire clk, input wire clkb,\n"
        "         input wire d, output reg q);\n"
        "reg src; reg s1;\n"
        "always @(posedge clkb) src <= d;\n"
        "always @(posedge clk) s1 <= src;\n"
        "always @(posedge clk) q <= s1;\nendmodule";
    EXPECT_FALSE(fires(analyzeSrc(synced, "cdc"), "cdc-unsync"));
}

TEST(AnalyzeCdcTest, SingleClockDesignIsClean)
{
    std::string src = "module m(input wire clk, input wire [3:0] d,\n"
                      "         output reg [3:0] q);\n"
                      "reg [3:0] a;\n"
                      "always @(posedge clk) a <= d;\n"
                      "always @(posedge clk) q <= a;\nendmodule";
    auto diags = analyzeSrc(src, "cdc");
    EXPECT_TRUE(diags.empty());
}

TEST(AnalyzeLoopTest, IdenticalToLintAndDedupable)
{
    std::string src = "module m(input wire clk, input wire [3:0] a,\n"
                      "         output wire [3:0] y);\n"
                      "wire [3:0] p;\nwire [3:0] q;\n"
                      "assign p = q + a;\nassign q = p ^ 4'h3;\n"
                      "assign y = q;\nendmodule";
    auto mod = elab::elaborate(hdl::parse(src), "m").mod;
    auto fromAnalyze = analyzeSrc(src, "loop");
    ASSERT_TRUE(fires(fromAnalyze, "comb-loop"));

    lint::LintOptions lopts;
    lopts.rules.insert("comb-loop");
    auto fromLint = lint::runLint(*mod, lopts);
    ASSERT_EQ(fromLint.size(), fromAnalyze.size());
    for (size_t i = 0; i < fromLint.size(); ++i) {
        EXPECT_EQ(fromLint[i].message, fromAnalyze[i].message);
        EXPECT_EQ(fromLint[i].rule, fromAnalyze[i].rule);
        EXPECT_EQ(fromLint[i].loc.line, fromAnalyze[i].loc.line);
        EXPECT_EQ(fromLint[i].signals, fromAnalyze[i].signals);
    }

    // Combining the two reports collapses the duplicates.
    std::vector<lint::Diagnostic> both = fromLint;
    both.insert(both.end(), fromAnalyze.begin(), fromAnalyze.end());
    auto deduped = lint::dedupeDiagnostics(both);
    EXPECT_EQ(deduped.size(), fromLint.size());
}

TEST(AnalyzeTest, PassSelectionLimitsRules)
{
    // A design that trips const, race, and cdc at once.
    std::string src = "module m(input wire clk, input wire clkb,\n"
                      "         input wire [3:0] d,\n"
                      "         output reg [3:0] q);\n"
                      "wire en;\nassign en = 1'b0;\n"
                      "reg [3:0] x; reg [3:0] src2;\n"
                      "always @(posedge clkb) src2 <= d;\n"
                      "always @(posedge clk) x = src2 + 4'd1;\n"
                      "always @(posedge clk) begin\n"
                      "  q <= x;\n  if (en) q <= 4'd0;\nend\n"
                      "endmodule";
    auto raceOnly = analyzeSrc(src, "race");
    EXPECT_TRUE(fires(raceOnly, "blocking-race"));
    EXPECT_FALSE(fires(raceOnly, "dead-guard"));
    EXPECT_FALSE(fires(raceOnly, "cdc-unsync"));

    auto all = analyzeSrc(src);
    EXPECT_TRUE(fires(all, "blocking-race"));
    EXPECT_TRUE(fires(all, "dead-guard"));
    EXPECT_TRUE(fires(all, "cdc-unsync"));
}

TEST(AnalyzeTest, DeterministicAcrossRuns)
{
    std::string src = "module m(input wire clk, input wire [3:0] d,\n"
                      "         output reg [3:0] q);\n"
                      "reg [3:0] x;\n"
                      "always @(posedge clk) x = d;\n"
                      "always @(posedge clk) q <= x;\nendmodule";
    auto a = analyzeSrc(src);
    auto b = analyzeSrc(src);
    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(lint::renderJson(a), lint::renderJson(b));
    // Sorted by (location, rule): presentation order is stable.
    for (size_t i = 1; i < a.size(); ++i) {
        bool ordered =
            a[i - 1].loc.line < a[i].loc.line ||
            (a[i - 1].loc.line == a[i].loc.line &&
             (a[i - 1].loc.col < a[i].loc.col ||
              (a[i - 1].loc.col == a[i].loc.col &&
               a[i - 1].rule <= a[i].rule)));
        EXPECT_TRUE(ordered) << "diagnostics out of order at " << i;
    }
}

TEST(AnalyzeJsonTest, ReportRoundTripsThroughChecker)
{
    std::string src = "module m(input wire clk, input wire [3:0] d,\n"
                      "         output reg [3:0] q);\n"
                      "reg [3:0] x;\n"
                      "always @(posedge clk) x = d;\n"
                      "always @(posedge clk) q <= x;\nendmodule";
    auto diags = analyzeSrc(src);
    std::vector<std::string> passes;
    for (const auto &pass : analyzePasses())
        passes.push_back(pass.id);
    std::string json = renderAnalyzeJson(passes, diags);
    EXPECT_EQ(checkAnalyzeJson(json), "");
    // Byte-identical across renders of the same diagnostics.
    EXPECT_EQ(json, renderAnalyzeJson(passes, diags));
    // The empty report is also valid.
    EXPECT_EQ(checkAnalyzeJson(renderAnalyzeJson(passes, {})), "");
}

TEST(AnalyzeJsonTest, CheckerRejectsCorruptReports)
{
    auto diags = analyzeSrc("module m(input wire clk);\nendmodule");
    std::vector<std::string> passes = {"const"};
    std::string json = renderAnalyzeJson(passes, diags);

    EXPECT_NE(checkAnalyzeJson("not json"), "");
    EXPECT_NE(checkAnalyzeJson("{}"), "");

    // Wrong format marker.
    std::string wrong = json;
    auto pos = wrong.find("hwdbg-analyze");
    ASSERT_NE(pos, std::string::npos);
    wrong.replace(pos, 13, "hwdbg-analyse");
    EXPECT_NE(checkAnalyzeJson(wrong), "");

    // Unknown pass id.
    EXPECT_NE(checkAnalyzeJson(renderAnalyzeJson({"nosuch"}, diags)),
              "");

    // Version bump must be rejected until the checker learns it.
    std::string bumped = json;
    pos = bumped.find("\"version\": 1");
    ASSERT_NE(pos, std::string::npos);
    bumped.replace(pos, 12, "\"version\": 2");
    EXPECT_NE(checkAnalyzeJson(bumped), "");
}
