/**
 * @file
 * Tests for the per-process CFG builder and its reverse post-order.
 */

#include <gtest/gtest.h>

#include <set>

#include "analyze/cfg.hh"
#include "elab/elaborate.hh"
#include "hdl/parser.hh"

using namespace hwdbg;
using namespace hwdbg::hdl;
using namespace hwdbg::analyze;

namespace
{

const AlwaysItem *
firstProc(const Module &mod)
{
    for (const auto &item : mod.items)
        if (item->kind == ItemKind::Always)
            return item->as<AlwaysItem>();
    return nullptr;
}

ModulePtr
flat(const std::string &src)
{
    return elab::elaborate(parse(src), "m").mod;
}

size_t
countKind(const Cfg &cfg, CfgNode::Kind kind)
{
    size_t n = 0;
    for (const auto &node : cfg.nodes)
        n += node.kind == kind;
    return n;
}

/** Every (pred, succ) pair must be mirrored and in range. */
void
checkEdgesConsistent(const Cfg &cfg)
{
    for (uint32_t n = 0; n < cfg.nodes.size(); ++n) {
        for (uint32_t s : cfg.nodes[n].succs) {
            ASSERT_LT(s, cfg.nodes.size());
            const auto &preds = cfg.nodes[s].preds;
            EXPECT_NE(std::find(preds.begin(), preds.end(), n),
                      preds.end())
                << "edge " << n << "->" << s << " not mirrored";
        }
        for (uint32_t p : cfg.nodes[n].preds) {
            ASSERT_LT(p, cfg.nodes.size());
            const auto &succs = cfg.nodes[p].succs;
            EXPECT_NE(std::find(succs.begin(), succs.end(), n),
                      succs.end());
        }
    }
}

} // namespace

TEST(CfgTest, StraightLineIsAChain)
{
    auto mod = flat("module m(input wire clk);\n"
                    "reg [3:0] a; reg [3:0] b;\n"
                    "always @(posedge clk) begin\n"
                    "  a <= 4'd1;\n  b <= a;\nend\nendmodule");
    const auto *proc = firstProc(*mod);
    ASSERT_NE(proc, nullptr);
    Cfg cfg = buildCfg(*proc);
    EXPECT_EQ(cfg.proc, proc);
    EXPECT_EQ(cfg.nodes[cfg.entry].kind, CfgNode::Kind::Entry);
    EXPECT_EQ(cfg.nodes[cfg.exit].kind, CfgNode::Kind::Exit);
    EXPECT_EQ(countKind(cfg, CfgNode::Kind::Stmt), 2u);
    EXPECT_EQ(countKind(cfg, CfgNode::Kind::Branch), 0u);
    checkEdgesConsistent(cfg);
    // entry -> a -> b -> exit: a single path.
    EXPECT_EQ(cfg.nodes[cfg.entry].succs.size(), 1u);
    EXPECT_EQ(cfg.nodes[cfg.exit].preds.size(), 1u);
}

TEST(CfgTest, IfElseBranchesAndRejoins)
{
    auto mod = flat("module m(input wire clk, input wire c);\n"
                    "reg [3:0] a;\n"
                    "always @(posedge clk) begin\n"
                    "  if (c) a <= 4'd1; else a <= 4'd2;\nend\n"
                    "endmodule");
    Cfg cfg = buildCfg(*firstProc(*mod));
    EXPECT_EQ(countKind(cfg, CfgNode::Kind::Branch), 1u);
    EXPECT_EQ(countKind(cfg, CfgNode::Kind::Join), 1u);
    EXPECT_EQ(countKind(cfg, CfgNode::Kind::Stmt), 2u);
    checkEdgesConsistent(cfg);
    for (const auto &node : cfg.nodes) {
        if (node.kind == CfgNode::Kind::Branch) {
            ASSERT_NE(node.stmt, nullptr);
            EXPECT_EQ(node.stmt->kind, StmtKind::If);
            EXPECT_EQ(node.succs.size(), 2u);
        }
        if (node.kind == CfgNode::Kind::Join) {
            EXPECT_EQ(node.preds.size(), 2u);
        }
    }
}

TEST(CfgTest, IfWithoutElseHasFallthroughEdge)
{
    auto mod = flat("module m(input wire clk, input wire c);\n"
                    "reg [3:0] a;\n"
                    "always @(posedge clk) if (c) a <= 4'd1;\n"
                    "endmodule");
    Cfg cfg = buildCfg(*firstProc(*mod));
    checkEdgesConsistent(cfg);
    // The branch must reach the join both through the arm and directly.
    for (const auto &node : cfg.nodes) {
        if (node.kind == CfgNode::Kind::Branch) {
            EXPECT_EQ(node.succs.size(), 2u);
        }
        if (node.kind == CfgNode::Kind::Join) {
            EXPECT_EQ(node.preds.size(), 2u);
        }
    }
}

TEST(CfgTest, CaseFansOutPerItemPlusDefault)
{
    auto mod = flat("module m(input wire clk, input wire [1:0] s);\n"
                    "reg [3:0] a;\n"
                    "always @(posedge clk) begin\n"
                    "  case (s)\n"
                    "    2'd0: a <= 4'd1;\n"
                    "    2'd1: a <= 4'd2;\n"
                    "    default: a <= 4'd3;\n"
                    "  endcase\nend\nendmodule");
    Cfg cfg = buildCfg(*firstProc(*mod));
    checkEdgesConsistent(cfg);
    for (const auto &node : cfg.nodes) {
        if (node.kind == CfgNode::Kind::Branch) {
            EXPECT_EQ(node.stmt->kind, StmtKind::Case);
            EXPECT_EQ(node.succs.size(), 3u);
        }
    }
}

TEST(CfgTest, CaseWithoutDefaultCanSkipEveryArm)
{
    auto mod = flat("module m(input wire clk, input wire [1:0] s);\n"
                    "reg [3:0] a;\n"
                    "always @(posedge clk)\n"
                    "  case (s)\n"
                    "    2'd0: a <= 4'd1;\n"
                    "  endcase\nendmodule");
    Cfg cfg = buildCfg(*firstProc(*mod));
    checkEdgesConsistent(cfg);
    // One labeled arm plus the implicit no-match edge.
    for (const auto &node : cfg.nodes) {
        if (node.kind == CfgNode::Kind::Branch) {
            EXPECT_EQ(node.succs.size(), 2u);
        }
    }
}

TEST(CfgTest, RpoVisitsPredecessorsFirst)
{
    auto mod = flat("module m(input wire clk, input wire c,\n"
                    "         input wire [1:0] s);\n"
                    "reg [3:0] a; reg [3:0] b;\n"
                    "always @(posedge clk) begin\n"
                    "  if (c) begin\n"
                    "    case (s)\n"
                    "      2'd0: a <= 4'd1;\n"
                    "      default: a <= 4'd2;\n"
                    "    endcase\n"
                    "  end else a <= 4'd3;\n"
                    "  b <= a;\nend\nendmodule");
    Cfg cfg = buildCfg(*firstProc(*mod));
    checkEdgesConsistent(cfg);
    auto order = rpoOrder(cfg);
    ASSERT_EQ(order.size(), cfg.nodes.size());
    std::vector<size_t> rank(cfg.nodes.size());
    std::set<uint32_t> seen;
    for (size_t i = 0; i < order.size(); ++i) {
        rank[order[i]] = i;
        EXPECT_TRUE(seen.insert(order[i]).second)
            << "node appears twice in RPO";
    }
    EXPECT_EQ(order.front(), cfg.entry);
    for (uint32_t n = 0; n < cfg.nodes.size(); ++n)
        for (uint32_t s : cfg.nodes[n].succs)
            EXPECT_LT(rank[n], rank[s])
                << "edge " << n << "->" << s << " violates RPO";
}

TEST(CfgTest, BareStatementCfg)
{
    auto mod = flat("module m(input wire clk);\nreg [3:0] a;\n"
                    "always @(posedge clk) a <= 4'd1;\nendmodule");
    const auto *proc = firstProc(*mod);
    Cfg cfg = buildCfg(proc->body);
    EXPECT_EQ(cfg.proc, nullptr);
    EXPECT_EQ(countKind(cfg, CfgNode::Kind::Stmt), 1u);
    checkEdgesConsistent(cfg);
}
