# Golden tests for the `hwdbg fuzz` CLI: exit codes, the JSON report
# schema, and byte-determinism of --replay across runs and job counts.

# A short clean campaign exits 0 and says so in the report.
execute_process(COMMAND ${HWDBG} fuzz --seeds 20 --jobs 2
                RESULT_VARIABLE rc OUTPUT_VARIABLE text_out
                ERROR_QUIET)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "hwdbg fuzz --seeds 20 failed (rc=${rc})")
endif()
if(NOT text_out MATCHES "result: PASS \\(20 seed\\(s\\) clean\\)")
    message(FATAL_ERROR "clean campaign report is wrong: ${text_out}")
endif()

# The JSON report carries the campaign configuration and verdict.
execute_process(COMMAND ${HWDBG} fuzz --seeds 20 --format json
                RESULT_VARIABLE rc OUTPUT_VARIABLE json_out
                ERROR_QUIET)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "hwdbg fuzz --format json failed (rc=${rc})")
endif()
foreach(key
        "\"mode\": \"fuzz\""
        "\"seeds\": 20"
        "\"cycles\": 24"
        "\"oracles\": "
        "\"failures\": "
        "\"ok\": true")
    if(NOT json_out MATCHES "${key}")
        message(FATAL_ERROR
                "fuzz JSON report is missing ${key}: ${json_out}")
    endif()
endforeach()

# --oracle restricts the oracle list in the report.
execute_process(COMMAND ${HWDBG} fuzz --seeds 5 --oracle roundtrip
                --format json
                RESULT_VARIABLE rc OUTPUT_VARIABLE one_oracle
                ERROR_QUIET)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "hwdbg fuzz --oracle roundtrip failed")
endif()
if(NOT one_oracle MATCHES "\"oracles\": \\[\"roundtrip\"\\]")
    message(FATAL_ERROR "--oracle selection not reflected: ${one_oracle}")
endif()
if(one_oracle MATCHES "differential")
    message(FATAL_ERROR "--oracle roundtrip still ran differential")
endif()

# An unknown oracle name is a usage error, not a crash.
execute_process(COMMAND ${HWDBG} fuzz --oracle bogus
                RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(rc EQUAL 0)
    message(FATAL_ERROR "hwdbg fuzz --oracle bogus should fail")
endif()

# --replay of one seed is byte-deterministic: the report is identical
# run-to-run (timing goes to stderr, never into the report).
execute_process(COMMAND ${HWDBG} fuzz --replay 7 --format json
                RESULT_VARIABLE rc OUTPUT_VARIABLE replay_a
                ERROR_QUIET)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "hwdbg fuzz --replay 7 failed (rc=${rc})")
endif()
execute_process(COMMAND ${HWDBG} fuzz --replay 7 --format json
                RESULT_VARIABLE rc OUTPUT_VARIABLE replay_b
                ERROR_QUIET)
if(NOT replay_a STREQUAL replay_b)
    message(FATAL_ERROR "fuzz --replay 7 is not deterministic")
endif()

# The full report of a fixed range must also be independent of the
# worker count (results are sorted by seed before rendering).
execute_process(COMMAND ${HWDBG} fuzz --seeds 12 --jobs 1 --format json
                RESULT_VARIABLE rc OUTPUT_VARIABLE jobs1 ERROR_QUIET)
execute_process(COMMAND ${HWDBG} fuzz --seeds 12 --jobs 4 --format json
                RESULT_VARIABLE rc OUTPUT_VARIABLE jobs4 ERROR_QUIET)
if(NOT jobs1 STREQUAL jobs4)
    message(FATAL_ERROR "fuzz report depends on --jobs")
endif()
