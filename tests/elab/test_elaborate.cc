/**
 * @file
 * Tests for elaboration: parameter resolution, flattening, port binding.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "elab/elaborate.hh"
#include "hdl/parser.hh"
#include "hdl/printer.hh"
#include "sim/design.hh"

using namespace hwdbg;
using namespace hwdbg::hdl;
using namespace hwdbg::elab;

TEST(EvalConstTest, Arithmetic)
{
    Design d = parse("module m();\nlocalparam X = 3 + 4 * 2;\nendmodule");
    ElabResult result = elaborate(d, "m");
    EXPECT_EQ(result.constants.at("X").toU64(), 11u);
}

TEST(EvalConstTest, ParamsReferenceEarlierParams)
{
    Design d = parse(
        "module m();\nparameter W = 8;\nlocalparam D = W * 2;\n"
        "localparam E = D - 1;\nendmodule");
    ElabResult result = elaborate(d, "m");
    EXPECT_EQ(result.constants.at("D").toU64(), 16u);
    EXPECT_EQ(result.constants.at("E").toU64(), 15u);
}

TEST(EvalConstTest, TernaryAndComparison)
{
    Design d = parse(
        "module m();\nparameter W = 8;\n"
        "localparam X = W > 4 ? 100 : 200;\nendmodule");
    EXPECT_EQ(elaborate(d, "m").constants.at("X").toU64(), 100u);
}

TEST(EvalConstTest, NonConstantThrows)
{
    Design d = parse(
        "module m();\nwire w;\nlocalparam X = w + 1;\nendmodule");
    EXPECT_THROW(elaborate(d, "m"), HdlError);
}

TEST(ElaborateTest, TopParamOverride)
{
    Design d = parse(
        "module m #(parameter W = 4)(input wire [W-1:0] a);\nendmodule");
    ElabResult result = elaborate(d, "m", {{"W", Bits(32, 16)}});
    NetItem *a = result.mod->findNet("a");
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(sim::constU64(a->range->msb), 15u);
}

TEST(ElaborateTest, LocalparamIgnoresOverride)
{
    Design d = parse("module m();\nlocalparam W = 4;\nendmodule");
    ElabResult result = elaborate(d, "m", {{"W", Bits(32, 99)}});
    EXPECT_EQ(result.constants.at("W").toU64(), 4u);
}

TEST(ElaborateTest, RangesFoldedToConstants)
{
    Design d = parse(
        "module m #(parameter W = 8)();\nreg [W-1:0] mem [0:W*2-1];\n"
        "endmodule");
    ElabResult result = elaborate(d, "m");
    NetItem *mem = result.mod->findNet("mem");
    EXPECT_EQ(sim::constU64(mem->range->msb), 7u);
    EXPECT_EQ(sim::constU64(mem->array->msb), 15u);
}

TEST(ElaborateTest, InstanceFlattening)
{
    Design d = parse(
        "module child(input wire a, output wire b);\n"
        "assign b = !a;\nendmodule\n"
        "module top(input wire x, output wire y);\n"
        "child u_c (.a(x), .b(y));\nendmodule");
    ElabResult result = elaborate(d, "top");
    // Child nets are prefixed; no Instance items remain.
    EXPECT_NE(result.mod->findNet("u_c__a"), nullptr);
    EXPECT_NE(result.mod->findNet("u_c__b"), nullptr);
    for (const auto &item : result.mod->items)
        EXPECT_NE(item->kind, ItemKind::Instance);
    // Top ports preserved.
    ASSERT_EQ(result.mod->ports.size(), 2u);
    EXPECT_EQ(result.mod->findNet("x")->dir, PortDir::Input);
}

TEST(ElaborateTest, NestedInstancePrefixes)
{
    Design d = parse(
        "module leaf(input wire i, output wire o);\nassign o = i;\n"
        "endmodule\n"
        "module mid(input wire i, output wire o);\n"
        "leaf u_l (.i(i), .o(o));\nendmodule\n"
        "module top(input wire i, output wire o);\n"
        "mid u_m (.i(i), .o(o));\nendmodule");
    ElabResult result = elaborate(d, "top");
    EXPECT_NE(result.mod->findNet("u_m__u_l__i"), nullptr);
}

TEST(ElaborateTest, ParamOverrideAtInstance)
{
    Design d = parse(
        "module child #(parameter W = 2)(output wire [W-1:0] o);\n"
        "assign o = {W{1'b1}};\nendmodule\n"
        "module top(output wire [7:0] y);\n"
        "child #(.W(8)) u_c (.o(y));\nendmodule");
    ElabResult result = elaborate(d, "top");
    NetItem *o = result.mod->findNet("u_c__o");
    ASSERT_NE(o, nullptr);
    EXPECT_EQ(sim::constU64(o->range->msb), 7u);
}

TEST(ElaborateTest, PositionalConnections)
{
    Design d = parse(
        "module child(input wire a, output wire b);\nassign b = a;\n"
        "endmodule\n"
        "module top(input wire x, output wire y);\n"
        "child u_c (x, y);\nendmodule");
    ElabResult result = elaborate(d, "top");
    EXPECT_NE(result.mod->findNet("u_c__a"), nullptr);
}

TEST(ElaborateTest, PrimitiveRetainedWithFoldedParams)
{
    Design d = parse(
        "module top #(parameter D = 8)(input wire clk);\n"
        "wire [7:0] q;\nwire e, f;\nreg w, r;\nreg [7:0] din;\n"
        "scfifo #(.WIDTH(4 * 2), .DEPTH(D)) u_f (.clock(clk), .data(din),"
        " .wrreq(w), .rdreq(r), .q(q), .empty(e), .full(f));\nendmodule");
    ElabResult result = elaborate(d, "top");
    const InstanceItem *prim = nullptr;
    for (const auto &item : result.mod->items)
        if (item->kind == ItemKind::Instance)
            prim = item->as<InstanceItem>();
    ASSERT_NE(prim, nullptr);
    EXPECT_EQ(prim->instName, "u_f");
    for (const auto &[name, value] : prim->paramOverrides) {
        if (name == "WIDTH") {
            EXPECT_EQ(sim::constU64(value), 8u);
        }
        if (name == "DEPTH") {
            EXPECT_EQ(sim::constU64(value), 8u);
        }
    }
}

TEST(ElaborateTest, UnknownModuleThrows)
{
    Design d = parse("module top();\nmissing u_m ();\nendmodule");
    EXPECT_THROW(elaborate(d, "top"), HdlError);
}

TEST(ElaborateTest, UnknownTopThrows)
{
    Design d = parse("module top(); endmodule");
    EXPECT_THROW(elaborate(d, "nope"), HdlError);
}

TEST(ElaborateTest, RecursionDetected)
{
    Design d = parse("module a();\na u ();\nendmodule");
    EXPECT_THROW(elaborate(d, "a"), HdlError);
}

TEST(ElaborateTest, UnknownPortThrows)
{
    Design d = parse(
        "module child(input wire a);\nendmodule\n"
        "module top(input wire x);\nchild u (.nope(x));\nendmodule");
    EXPECT_THROW(elaborate(d, "top"), HdlError);
}

TEST(ElaborateTest, OutputToNonLValueThrows)
{
    Design d = parse(
        "module child(output wire b);\nassign b = 1'b1;\nendmodule\n"
        "module top(input wire x, input wire y);\n"
        "child u (.b(x + y));\nendmodule");
    EXPECT_THROW(elaborate(d, "top"), HdlError);
}

TEST(ElaborateTest, FlatModuleIsReparseable)
{
    Design d = parse(
        "module child #(parameter W = 4)(input wire clk,\n"
        "    input wire [W-1:0] a, output reg [W-1:0] b);\n"
        "always @(posedge clk) b <= a + 1;\nendmodule\n"
        "module top(input wire clk, input wire [7:0] i,\n"
        "    output wire [7:0] o);\n"
        "child #(.W(8)) u_c (.clk(clk), .a(i), .b(o));\nendmodule");
    ElabResult result = elaborate(d, "top");
    std::string printed = printModule(*result.mod);
    Design reparsed = parse(printed);
    ASSERT_EQ(reparsed.modules.size(), 1u);
    std::string again = printModule(*elaborate(reparsed, "top").mod);
    EXPECT_EQ(printed, again);
}
