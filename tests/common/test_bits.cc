/**
 * @file
 * Unit and property tests for the Bits arbitrary-width vector.
 */

#include <gtest/gtest.h>

#include <random>

#include "common/bits.hh"
#include "common/logging.hh"

using hwdbg::Bits;
using hwdbg::HdlError;

TEST(BitsTest, ConstructTruncates)
{
    Bits b(4, 0x1f);
    EXPECT_EQ(b.toU64(), 0xfu);
    EXPECT_EQ(b.width(), 4u);
}

TEST(BitsTest, ZeroWidthClampedToOne)
{
    Bits b(0, 1);
    EXPECT_EQ(b.width(), 1u);
}

TEST(BitsTest, ParseHexLiteral)
{
    bool sized = false;
    Bits b = Bits::parseVerilog("8'hff", &sized);
    EXPECT_TRUE(sized);
    EXPECT_EQ(b.width(), 8u);
    EXPECT_EQ(b.toU64(), 0xffu);
}

TEST(BitsTest, ParseBinaryLiteral)
{
    Bits b = Bits::parseVerilog("4'b1010");
    EXPECT_EQ(b.toU64(), 0xau);
}

TEST(BitsTest, ParseDecimalSized)
{
    Bits b = Bits::parseVerilog("12'd129");
    EXPECT_EQ(b.width(), 12u);
    EXPECT_EQ(b.toU64(), 129u);
}

TEST(BitsTest, ParseUnsizedDecimal)
{
    bool sized = true;
    Bits b = Bits::parseVerilog("42", &sized);
    EXPECT_FALSE(sized);
    EXPECT_EQ(b.width(), 32u);
    EXPECT_EQ(b.toU64(), 42u);
}

TEST(BitsTest, ParseUnderscoresIgnored)
{
    Bits b = Bits::parseVerilog("16'hab_cd");
    EXPECT_EQ(b.toU64(), 0xabcdu);
}

TEST(BitsTest, ParseLiteralTruncatesToWidth)
{
    Bits b = Bits::parseVerilog("4'hff");
    EXPECT_EQ(b.toU64(), 0xfu);
}

TEST(BitsTest, ParseWideHex)
{
    Bits b = Bits::parseVerilog("128'hdeadbeefdeadbeefdeadbeefdeadbeef");
    EXPECT_EQ(b.width(), 128u);
    EXPECT_EQ(b.slice(63, 0).toU64(), 0xdeadbeefdeadbeefull);
    EXPECT_EQ(b.slice(127, 64).toU64(), 0xdeadbeefdeadbeefull);
}

TEST(BitsTest, ParseBadLiteralThrows)
{
    EXPECT_THROW(Bits::parseVerilog("8'q12"), HdlError);
    EXPECT_THROW(Bits::parseVerilog("8'h"), HdlError);
    EXPECT_THROW(Bits::parseVerilog("xyz"), HdlError);
}

TEST(BitsTest, AddWrapsAtWidth)
{
    Bits a(8, 0xf0);
    Bits b(8, 0x20);
    EXPECT_EQ(a.add(b).toU64(), 0x10u);
}

TEST(BitsTest, AddCarriesAcrossWords)
{
    Bits a(128, ~uint64_t(0));
    Bits one(128, 1);
    Bits sum = a.add(one);
    EXPECT_EQ(sum.slice(63, 0).toU64(), 0u);
    EXPECT_EQ(sum.slice(127, 64).toU64(), 1u);
}

TEST(BitsTest, SubModular)
{
    Bits a(8, 5);
    Bits b(8, 10);
    EXPECT_EQ(a.sub(b).toU64(), 0xfbu); // -5 mod 256
}

TEST(BitsTest, MulWide)
{
    Bits a(64, 0xffffffffull);
    Bits b(64, 0xffffffffull);
    EXPECT_EQ(a.mul(b).toU64(), 0xfffffffe00000001ull);
}

TEST(BitsTest, DivAndMod)
{
    Bits a(16, 1000);
    Bits b(16, 7);
    EXPECT_EQ(a.divu(b).toU64(), 142u);
    EXPECT_EQ(a.modu(b).toU64(), 6u);
}

TEST(BitsTest, DivByZeroIsAllOnes)
{
    Bits a(8, 10);
    EXPECT_TRUE(a.divu(Bits(8, 0)).isAllOnes());
    EXPECT_TRUE(a.modu(Bits(8, 0)).isAllOnes());
}

TEST(BitsTest, ShiftBeyondWidthIsZero)
{
    Bits a(8, 0xff);
    EXPECT_TRUE(a.shl(8).isZero());
    EXPECT_TRUE(a.shr(9).isZero());
}

TEST(BitsTest, SliceAndSetSlice)
{
    Bits a(16, 0xabcd);
    EXPECT_EQ(a.slice(15, 8).toU64(), 0xabu);
    a.setSlice(15, 8, Bits(8, 0x12));
    EXPECT_EQ(a.toU64(), 0x12cdu);
}

TEST(BitsTest, OutOfRangeBitReadsZero)
{
    Bits a = Bits::allOnes(8);
    EXPECT_FALSE(a.bit(8));
    EXPECT_FALSE(a.bit(1000));
}

TEST(BitsTest, ConcatOrdering)
{
    Bits hi(8, 0xab);
    Bits lo(4, 0x5);
    Bits cat = hi.concat(lo);
    EXPECT_EQ(cat.width(), 12u);
    EXPECT_EQ(cat.toU64(), 0xab5u);
}

TEST(BitsTest, Replicate)
{
    Bits b(4, 0xa);
    EXPECT_EQ(b.replicate(3).toU64(), 0xaaau);
    EXPECT_EQ(b.replicate(3).width(), 12u);
}

TEST(BitsTest, Reductions)
{
    EXPECT_TRUE(Bits::allOnes(5).redAnd());
    EXPECT_FALSE(Bits(5, 0x1e).redAnd());
    EXPECT_TRUE(Bits(5, 2).redOr());
    EXPECT_FALSE(Bits(5, 0).redOr());
    EXPECT_TRUE(Bits(8, 0x7).redXor());
    EXPECT_FALSE(Bits(8, 0x3).redXor());
}

TEST(BitsTest, CompareDifferentWidths)
{
    EXPECT_EQ(Bits(4, 9).compare(Bits(16, 9)), 0);
    EXPECT_LT(Bits(4, 9).compare(Bits(16, 100)), 0);
    EXPECT_GT(Bits(64, 1u << 20).compare(Bits(4, 15)), 0);
}

TEST(BitsTest, DecStringWide)
{
    // 2^80 = 1208925819614629174706176
    Bits b(81, 0);
    b.setBit(80, true);
    EXPECT_EQ(b.toDecString(), "1208925819614629174706176");
}

TEST(BitsTest, HexBinStrings)
{
    Bits b(12, 0xa5f);
    EXPECT_EQ(b.toHexString(), "a5f");
    EXPECT_EQ(b.toBinString(), "101001011111");
    EXPECT_EQ(b.toVerilog(), "12'ha5f");
}

TEST(BitsTest, NegateTwosComplement)
{
    Bits b(8, 1);
    EXPECT_EQ(b.negate().toU64(), 0xffu);
    EXPECT_TRUE(Bits(8, 0).negate().isZero());
}

// ---------------------------------------------------------------------
// Property tests: wide ops agree with native 64-bit arithmetic when the
// width and the operands fit in a word.
// ---------------------------------------------------------------------

struct ArithCase
{
    uint32_t width;
    uint64_t a;
    uint64_t b;
};

class BitsArithProperty : public ::testing::TestWithParam<ArithCase>
{
};

TEST_P(BitsArithProperty, MatchesNativeModularArithmetic)
{
    const auto &[w, av, bv] = GetParam();
    uint64_t mask = w >= 64 ? ~uint64_t(0) : ((uint64_t(1) << w) - 1);
    Bits a(w, av);
    Bits b(w, bv);
    uint64_t am = av & mask, bm = bv & mask;

    EXPECT_EQ(a.add(b).toU64(), (am + bm) & mask);
    EXPECT_EQ(a.sub(b).toU64(), (am - bm) & mask);
    EXPECT_EQ(a.mul(b).toU64(), (am * bm) & mask);
    if (bm != 0) {
        EXPECT_EQ(a.divu(b).toU64(), (am / bm) & mask);
        EXPECT_EQ(a.modu(b).toU64(), (am % bm) & mask);
    }
    EXPECT_EQ(a.bitAnd(b).toU64(), am & bm);
    EXPECT_EQ(a.bitOr(b).toU64(), am | bm);
    EXPECT_EQ(a.bitXor(b).toU64(), am ^ bm);
    EXPECT_EQ(a.bitNot().toU64(), ~am & mask);
    EXPECT_EQ(a.compare(b), am < bm ? -1 : (am > bm ? 1 : 0));
    for (uint32_t shift : {0u, 1u, 3u, w - 1}) {
        EXPECT_EQ(a.shl(shift).toU64(), (am << shift) & mask);
        EXPECT_EQ(a.shr(shift).toU64(), (am & mask) >> shift);
    }
}

static std::vector<ArithCase>
arithCases()
{
    std::vector<ArithCase> cases;
    std::mt19937_64 rng(12345);
    for (uint32_t w : {1u, 3u, 8u, 13u, 16u, 31u, 32u, 47u, 63u, 64u}) {
        for (int i = 0; i < 8; ++i)
            cases.push_back(ArithCase{w, rng(), rng()});
        cases.push_back(ArithCase{w, 0, 0});
        cases.push_back(ArithCase{w, ~uint64_t(0), 1});
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(Random, BitsArithProperty,
                         ::testing::ValuesIn(arithCases()));

// Round-trip property: slices reassemble to the original value.
class BitsSliceProperty : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(BitsSliceProperty, SplitConcatRoundTrip)
{
    uint32_t width = GetParam();
    std::mt19937_64 rng(width * 977);
    Bits value(width, 0);
    for (uint32_t i = 0; i < width; ++i)
        value.setBit(i, rng() & 1);

    for (uint32_t split = 1; split < width; split += 3) {
        Bits hi = value.slice(width - 1, split);
        Bits lo = value.slice(split - 1, 0);
        EXPECT_EQ(hi.concat(lo), value) << "width=" << width
                                        << " split=" << split;
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, BitsSliceProperty,
                         ::testing::Values(2u, 5u, 8u, 17u, 64u, 65u,
                                           100u, 128u, 200u));
