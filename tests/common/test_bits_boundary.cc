/**
 * @file
 * Bits arithmetic at machine-word width boundaries.
 *
 * The big-int layer stores values in 64-bit words; the interesting
 * widths are therefore 1 (degenerate), 63/64 (just inside / exactly
 * one word), 65 (first carry into a second word) and 128 (two full
 * words). Each case here pins carry/borrow propagation, shifts across
 * the word seam, ordering, and truncating resizes at those widths.
 */

#include <gtest/gtest.h>

#include "common/bits.hh"

namespace hwdbg
{
namespace
{

TEST(BitsBoundary, AddCarryWrapsAtEachWidth)
{
    for (uint32_t w : {1u, 63u, 64u, 65u, 128u}) {
        Bits ones = Bits::allOnes(w);
        Bits sum = ones.add(Bits(w, 1));
        EXPECT_TRUE(sum.isZero()) << "width " << w;
        EXPECT_EQ(sum.width(), w);
    }
}

TEST(BitsBoundary, AddCarryCrossesTheWordSeam)
{
    // 2^64 - 1 + 1 = 2^64: representable from width 65 up.
    Bits low64 = Bits::allOnes(64).resized(65);
    Bits sum = low64.add(Bits(65, 1));
    EXPECT_FALSE(sum.isZero());
    EXPECT_TRUE(sum.bit(64));
    for (uint32_t i = 0; i < 64; ++i)
        EXPECT_FALSE(sum.bit(i)) << "bit " << i;

    Bits wide = Bits::allOnes(64).resized(128);
    Bits wsum = wide.add(Bits(128, 1));
    EXPECT_TRUE(wsum.bit(64));
    EXPECT_EQ(wsum.slice(63, 0), Bits(64, 0));
}

TEST(BitsBoundary, SubBorrowsAcrossTheWordSeam)
{
    // 2^64 - 1 at width 65/128: borrow must ripple into word 1.
    Bits big(65, 0);
    big.setBit(64, true);
    Bits diff = big.sub(Bits(65, 1));
    EXPECT_EQ(diff, Bits::allOnes(64).resized(65));

    Bits big128(128, 0);
    big128.setBit(64, true);
    EXPECT_EQ(big128.sub(Bits(128, 1)),
              Bits::allOnes(64).resized(128));

    // 0 - 1 wraps to all ones at every boundary width.
    for (uint32_t w : {1u, 63u, 64u, 65u, 128u})
        EXPECT_EQ(Bits(w, 0).sub(Bits(w, 1)), Bits::allOnes(w))
            << "width " << w;
}

TEST(BitsBoundary, ShiftsAtAmounts63To65)
{
    Bits one128(128, 1);
    EXPECT_TRUE(one128.shl(63).bit(63));
    EXPECT_TRUE(one128.shl(64).bit(64));
    EXPECT_TRUE(one128.shl(65).bit(65));
    EXPECT_EQ(one128.shl(63).shr(63), one128);
    EXPECT_EQ(one128.shl(65).shr(65), one128);

    // Shifting a width-64 value left by its width clears it.
    EXPECT_TRUE(Bits(64, 1).shl(64).isZero());
    EXPECT_TRUE(Bits(63, 1).shl(63).isZero());

    // Right shift across the seam pulls word-1 bits into word 0.
    Bits top(128, 0);
    top.setBit(64, true);
    EXPECT_EQ(top.shr(64), Bits(128, 1));
    EXPECT_EQ(top.shr(1).toU64(), uint64_t(1) << 63);

    // Shift amounts at/above the width never leave residue.
    for (uint32_t w : {1u, 63u, 64u, 65u, 128u}) {
        EXPECT_TRUE(Bits::allOnes(w).shl(w).isZero()) << "width " << w;
        EXPECT_TRUE(Bits::allOnes(w).shr(w).isZero()) << "width " << w;
    }
}

TEST(BitsBoundary, CompareIsNumericAcrossWidths)
{
    // A high bit in word 1 dominates anything in word 0.
    Bits high(65, 0);
    high.setBit(64, true);
    EXPECT_GT(high.compare(Bits::allOnes(64).resized(65)), 0);
    EXPECT_LT(Bits::allOnes(64).resized(65).compare(high), 0);

    // Zero-extension does not change the value.
    EXPECT_EQ(Bits(63, 42).compare(Bits(128, 42)), 0);
    EXPECT_EQ(Bits(1, 1).compare(Bits(65, 1)), 0);
    EXPECT_LT(Bits(64, 7).compare(Bits(65, 8)), 0);
}

TEST(BitsBoundary, TruncatingResizeMasksHighWords)
{
    Bits wide = Bits::allOnes(128);
    EXPECT_EQ(wide.resized(65), Bits::allOnes(65));
    EXPECT_EQ(wide.resized(64), Bits::allOnes(64));
    EXPECT_EQ(wide.resized(63), Bits::allOnes(63));
    EXPECT_EQ(wide.resized(1), Bits(1, 1));

    // Truncation then extension zeroes everything above the cut.
    Bits cut = wide.resized(65).resized(128);
    EXPECT_TRUE(cut.bit(64));
    for (uint32_t i = 65; i < 128; ++i)
        EXPECT_FALSE(cut.bit(i)) << "bit " << i;

    // A 64-bit truncating assign of a 65-bit carry drops the carry.
    Bits sum = Bits::allOnes(64).resized(65).add(Bits(65, 1));
    EXPECT_TRUE(sum.resized(64).isZero());
}

} // namespace
} // namespace hwdbg
