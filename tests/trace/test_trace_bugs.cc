/**
 * @file
 * Backend-equality smoke over the full testbed: every bug's trigger
 * workload recorded on the interpreter and on the compiled bytecode
 * backend must produce byte-identical hwdbg-trace JSON and VCD (the
 * fuzz xtrace oracle's claim, asserted on the curated bugs).
 */

#include <gtest/gtest.h>

#include "bugbase/testbed.hh"
#include "compile/backend.hh"
#include "trace/json.hh"
#include "trace/run.hh"
#include "trace/vcd.hh"

using namespace hwdbg;
using namespace hwdbg::trace;

TEST(TraceBugsTest, InterpAndBytecodeDumpsAreByteIdentical)
{
    TraceConfig cfg;
    cfg.budgetBytes = 1 << 16;
    for (const auto &bug : bugs::testbedBugs()) {
        SCOPED_TRACE(bug.id);

        TraceDump interp = traceBugWorkload(bug, true, cfg);
        TraceDump bytecode = traceBugWorkload(
            bug, true, cfg, compile::makeBytecodeBackend());
        EXPECT_EQ(interp.backend, "interp");
        EXPECT_EQ(bytecode.backend, "bytecode");

        // The backend label is the one legitimate difference.
        interp.backend = bytecode.backend = "x";
        EXPECT_EQ(toJson(interp), toJson(bytecode));
        EXPECT_EQ(renderVcd(interp), renderVcd(bytecode));

        EXPECT_GT(interp.samples, 0u);
        EXPECT_EQ(checkTraceDumpJson(toJson(interp)), "");
    }
}
