/**
 * @file
 * TraceRecorder semantics: glob resolution over scalars and memory
 * words, the budget-derived ring geometry, trigger edge/change
 * outcomes (never fires, fires on the first eval, re-fires ignored),
 * the budget-smaller-than-one-row corner, and the snapshot/restore
 * frontier guarantee (time travel neither fabricates nor drops rows).
 */

#include <gtest/gtest.h>

#include <memory>

#include "common/logging.hh"
#include "elab/elaborate.hh"
#include "hdl/parser.hh"
#include "sim/simulator.hh"
#include "trace/json.hh"
#include "trace/trace.hh"

using namespace hwdbg;
using namespace hwdbg::trace;

namespace
{

const char *kCounter =
    "module m(input wire clk, input wire rst,\n"
    "         output reg [7:0] count);\n"
    "always @(posedge clk)\n"
    "  if (rst) count <= 0; else count <= count + 1;\nendmodule";

std::unique_ptr<sim::Simulator>
makeSim(const std::string &src, const std::string &top = "m")
{
    hdl::Design design = hdl::parse(src);
    return std::make_unique<sim::Simulator>(
        elab::elaborate(design, top).mod);
}

void
tick(sim::Simulator &sim, int n = 1)
{
    for (int i = 0; i < n; ++i) {
        sim.poke("clk", uint64_t(0));
        sim.eval();
        sim.poke("clk", uint64_t(1));
        sim.eval();
    }
}

/** Run @p cycles with reset held for the first two. */
void
runCounter(sim::Simulator &sim, int cycles)
{
    for (int t = 0; t < cycles; ++t) {
        sim.poke("rst", uint64_t(t < 2 ? 1 : 0));
        tick(sim);
    }
}

} // namespace

TEST(TraceGlobTest, MatchGlob)
{
    EXPECT_TRUE(matchGlob("*", "anything"));
    EXPECT_TRUE(matchGlob("state", "state"));
    EXPECT_FALSE(matchGlob("state", "state2"));
    EXPECT_TRUE(matchGlob("*valid*", "in_valid_q"));
    EXPECT_TRUE(matchGlob("mem[?]", "mem[3]"));
    EXPECT_FALSE(matchGlob("mem[?]", "mem[12]"));
    EXPECT_TRUE(matchGlob("a*b*c", "a_x_b_y_c"));
    EXPECT_FALSE(matchGlob("a*b*c", "a_x_c_y_b"));
    EXPECT_FALSE(matchGlob("", "x"));
    EXPECT_TRUE(matchGlob("**", "x"));
}

TEST(TraceGlobTest, ResolveSignalsExpandsMemories)
{
    auto sim = makeSim(
        "module m(input wire clk, output reg [7:0] n);\n"
        "reg [7:0] mem [0:3];\n"
        "always @(posedge clk) n <= n + 1;\nendmodule");

    TraceConfig all; // empty globs: everything
    auto everything = resolveSignals(sim->design(), all);
    bool sawWord = false;
    for (const auto &sig : everything)
        if (sig.name == "mem[2]")
            sawWord = true;
    EXPECT_TRUE(sawWord);

    TraceConfig bare;
    bare.signals = {"mem"};
    EXPECT_EQ(resolveSignals(sim->design(), bare).size(), 4u);

    TraceConfig one;
    one.signals = {"mem[1]"};
    auto words = resolveSignals(sim->design(), one);
    ASSERT_EQ(words.size(), 1u);
    EXPECT_EQ(words[0].name, "mem[1]");
    EXPECT_EQ(words[0].element, 1);

    TraceConfig miss;
    miss.signals = {"no_such_signal"};
    EXPECT_THROW(resolveSignals(sim->design(), miss), HdlError);
}

TEST(TraceRecorderTest, RollingRingKeepsTheLastRows)
{
    auto sim = makeSim(kCounter);
    TraceConfig cfg;
    cfg.signals = {"count"};
    // Row = 16 header + 1 value byte = 17; budget 68 -> depth 4.
    cfg.budgetBytes = 68;
    TraceRecorder rec(*sim, cfg);
    EXPECT_EQ(rec.rowBytes(), 17u);
    EXPECT_EQ(rec.depth(), 4u);

    rec.attach();
    runCounter(*sim, 20);
    rec.detach();

    TraceDump dump = rec.dump("unit");
    EXPECT_FALSE(dump.armed);
    ASSERT_EQ(dump.rows.size(), 4u);
    // The window holds the newest change rows; older ones were dropped.
    EXPECT_EQ(dump.samples, dump.rows.size() + dump.drops);
    EXPECT_GT(dump.drops, 0u);
    for (size_t i = 1; i < dump.rows.size(); ++i)
        EXPECT_LT(dump.rows[i - 1].seq, dump.rows[i].seq);
    EXPECT_EQ(dump.rows.back().values[0].toU64(), sim->peek("count").toU64());
}

TEST(TraceRecorderTest, TriggerThatNeverFiresKeepsArmedRing)
{
    auto sim = makeSim(kCounter);
    TraceConfig cfg;
    cfg.signals = {"count"};
    cfg.trigger = "count == 8'hff"; // 20 cycles never reach 0xff
    cfg.budgetBytes = 170;          // depth 10, pre 5 / post 5
    TraceRecorder rec(*sim, cfg);
    rec.attach();
    runCounter(*sim, 20);
    rec.detach();

    TraceDump dump = rec.dump("unit");
    EXPECT_TRUE(dump.armed);
    EXPECT_FALSE(dump.fired);
    EXPECT_EQ(dump.triggerFires, 0u);
    // Only the pre-trigger ring holds rows, bounded by preDepth.
    EXPECT_EQ(dump.preDepth, 5u);
    EXPECT_EQ(dump.rows.size(), 5u);
}

TEST(TraceRecorderTest, TriggerFiresOnTheFirstPosedge)
{
    auto sim = makeSim(kCounter);
    TraceConfig cfg;
    cfg.signals = {"count"};
    cfg.trigger = "clk"; // rises on the very first posedge
    cfg.budgetBytes = 170;
    TraceRecorder rec(*sim, cfg);
    rec.attach();
    runCounter(*sim, 20);
    rec.detach();

    TraceDump dump = rec.dump("unit");
    EXPECT_TRUE(dump.fired);
    // The cycle counter increments on the posedge, so the earliest
    // possible trigger cycle is 1; eval 1 is the low phase, eval 2
    // the firing posedge.
    EXPECT_EQ(dump.triggerCycle, 1u);
    EXPECT_EQ(dump.triggerSeq, 2u);
    EXPECT_GE(dump.triggerFires, 1u);
    // The window: the single pre-trigger row (the anchor row from
    // eval 1 — the ring never filled) plus the full post window.
    ASSERT_FALSE(dump.rows.empty());
    EXPECT_EQ(dump.rows.front().seq, 1u);
    EXPECT_EQ(dump.rows.size(), 1u + dump.postDepth);
    // Changes past the filled window were dropped.
    EXPECT_GT(dump.drops, 0u);
}

TEST(TraceRecorderTest, ConditionTrueAtAttachNeedsARisingEdge)
{
    // Edge semantics anchor at attach: the baseline is evaluated when
    // the recorder hooks the simulator, so a condition that is already
    // true then (and never goes false and true again) never fires.
    auto sim = makeSim(kCounter);
    TraceConfig cfg;
    cfg.signals = {"count"};
    cfg.trigger = "count < 8'h10"; // true at attach, false from 0x10 on
    cfg.budgetBytes = 170;
    TraceRecorder rec(*sim, cfg);
    rec.attach();
    runCounter(*sim, 20);
    rec.detach();
    EXPECT_FALSE(rec.triggered());
    EXPECT_EQ(rec.triggerFires(), 0u);
}

TEST(TraceRecorderTest, ChangeTriggerFiresOnEveryValueChange)
{
    auto sim = makeSim(kCounter);
    TraceConfig cfg;
    cfg.signals = {"count"};
    cfg.trigger = "change:count[1:0]";
    cfg.budgetBytes = 1 << 12;
    TraceRecorder rec(*sim, cfg);
    rec.attach();
    runCounter(*sim, 10);
    rec.detach();
    // count changes on 9 of 10 posedges (reset holds it at 0 once);
    // every change of the low bits is a fire.
    EXPECT_TRUE(rec.triggered());
    EXPECT_GT(rec.triggerFires(), 1u);
}

TEST(TraceRecorderTest, BudgetSmallerThanOneRowRecordsNothing)
{
    auto sim = makeSim(kCounter);
    TraceConfig cfg;
    cfg.signals = {"count"};
    cfg.budgetBytes = 16; // rowBytes is 17
    TraceRecorder rec(*sim, cfg);
    EXPECT_EQ(rec.depth(), 0u);
    rec.attach();
    runCounter(*sim, 10);
    rec.detach();

    TraceDump dump = rec.dump("unit");
    EXPECT_TRUE(dump.rows.empty());
    EXPECT_GT(dump.drops, 0u);
    EXPECT_EQ(dump.samples, dump.drops);
    // The empty capture still renders and validates.
    EXPECT_EQ(checkTraceDumpJson(toJson(dump)), "");
}

TEST(TraceRecorderTest, TimeTravelNeverFabricatesNorDropsRows)
{
    // Reference capture: straight-line run, no travel.
    auto simA = makeSim(kCounter);
    TraceConfig cfg;
    cfg.signals = {"count"};
    cfg.budgetBytes = 1 << 12;
    TraceRecorder recA(*simA, cfg);
    recA.attach();
    runCounter(*simA, 12);
    recA.detach();

    // Travelled capture: identical stimulus, but snapshot at cycle 6
    // and replay the tail twice. The frontier protocol must skip the
    // replayed evals, so the dump matches the straight-line one.
    auto simB = makeSim(kCounter);
    TraceRecorder recB(*simB, cfg);
    recB.attach();
    for (int t = 0; t < 6; ++t) {
        simB->poke("rst", uint64_t(t < 2 ? 1 : 0));
        tick(*simB);
    }
    sim::SimSnapshot snap = simB->saveState();
    for (int t = 6; t < 12; ++t) {
        simB->poke("rst", uint64_t(0));
        tick(*simB);
    }
    simB->restoreState(snap);
    for (int t = 6; t < 12; ++t) {
        simB->poke("rst", uint64_t(0));
        tick(*simB);
    }
    recB.detach();

    TraceDump a = recA.dump("unit");
    TraceDump b = recB.dump("unit");
    EXPECT_EQ(toJson(a), toJson(b));
}
