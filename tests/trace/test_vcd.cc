/**
 * @file
 * Tests for the trace VCD emitter (the seed VcdWriter's successor):
 * vector declarations, memory words, X-state initialization, and the
 * live-sampling recorder.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <sstream>

#include "common/logging.hh"
#include "elab/elaborate.hh"
#include "hdl/parser.hh"
#include "sim/simulator.hh"
#include "trace/vcd.hh"

using namespace hwdbg;
using namespace hwdbg::hdl;
using namespace hwdbg::sim;
using hwdbg::trace::VcdBuilder;
using hwdbg::trace::VcdRecorder;

namespace
{

std::unique_ptr<Simulator>
makeSim(const std::string &src)
{
    Design design = parse(src);
    return std::make_unique<Simulator>(elab::elaborate(design, "m").mod);
}

/** Body lines after the initial $dumpvars … $end block. */
std::vector<std::string>
bodyLines(const std::string &vcd)
{
    std::vector<std::string> out;
    std::istringstream lines(vcd);
    std::string line;
    bool in_dump = false, in_body = false;
    while (std::getline(lines, line)) {
        if (line == "$dumpvars") {
            in_dump = true;
            continue;
        }
        if (in_dump && line == "$end") {
            in_dump = false;
            in_body = true;
            continue;
        }
        if (in_body)
            out.push_back(line);
    }
    return out;
}

} // namespace

TEST(VcdTest, HeaderDeclaresVectorsAndMemoryWords)
{
    auto sim = makeSim(
        "module m(input wire clk, output reg [7:0] n);\n"
        "reg [7:0] mem [0:3];\n"
        "always @(posedge clk) n <= n + 1;\nendmodule");
    VcdRecorder vcd(*sim);
    vcd.sample(0);
    std::string out = vcd.render();
    EXPECT_NE(out.find("$timescale"), std::string::npos);
    EXPECT_NE(out.find("$scope module m $end"), std::string::npos);
    EXPECT_NE(out.find("$var wire 1 ! clk $end"), std::string::npos);
    EXPECT_NE(out.find(" n $end"), std::string::npos);
    // The seed writer skipped memories; words are first-class now.
    EXPECT_NE(out.find(" mem[0] $end"), std::string::npos);
    EXPECT_NE(out.find(" mem[3] $end"), std::string::npos);
    EXPECT_NE(out.find("$var wire 8"), std::string::npos);
    EXPECT_NE(out.find("$enddefinitions $end"), std::string::npos);
}

TEST(VcdTest, StartsAllSignalsAsX)
{
    VcdBuilder vcd;
    size_t flag = vcd.addSignal("flag", 1);
    size_t bus = vcd.addSignal("bus", 8);
    vcd.change(flag, 5, Bits(1, 1));
    vcd.change(bus, 5, Bits(8, 0xab));
    std::string out = vcd.render();
    // The window does not begin at time zero: scalars dump as x and
    // vectors as bx until their first recorded change.
    size_t dump = out.find("$dumpvars\nx!\nbx \"\n$end\n");
    ASSERT_NE(dump, std::string::npos) << out;
    EXPECT_NE(out.find("#5\n1!\nb10101011 \""), std::string::npos)
        << out;
}

TEST(VcdTest, RecordsOnlyChanges)
{
    auto sim = makeSim(
        "module m(input wire clk, output reg [3:0] n);\n"
        "always @(posedge clk) n <= n + 1;\nendmodule");
    VcdRecorder vcd(*sim);
    uint64_t t = 0;
    auto tick = [&] {
        sim->poke("clk", uint64_t(0));
        sim->eval();
        vcd.sample(t++);
        sim->poke("clk", uint64_t(1));
        sim->eval();
        vcd.sample(t++);
    };
    tick();
    tick();

    // Count the timestamps and the 4-bit vector changes of n.
    int times = 0, n_changes = 0;
    for (const auto &line : bodyLines(vcd.render())) {
        if (!line.empty() && line[0] == '#')
            ++times;
        if (!line.empty() && line[0] == 'b')
            ++n_changes;
    }
    EXPECT_EQ(times, 4);
    // n changes after each posedge sample: initial dump + 2 increments.
    EXPECT_EQ(n_changes, 3);
}

TEST(VcdTest, RejectsTimeGoingBackwards)
{
    VcdBuilder vcd;
    size_t sig = vcd.addSignal("s", 1);
    vcd.change(sig, 10, Bits(1, 1));
    EXPECT_THROW(vcd.change(sig, 9, Bits(1, 0)), HdlError);
}

TEST(VcdTest, FileWriting)
{
    auto sim = makeSim(
        "module m(input wire clk);\nreg x;\n"
        "always @(posedge clk) x <= !x;\nendmodule");
    VcdRecorder vcd(*sim);
    vcd.sample(0);
    std::string path = "/tmp/hwdbg_test_vcd_out.vcd";
    vcd.writeFile(path);
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::ostringstream contents;
    contents << in.rdbuf();
    EXPECT_EQ(contents.str(), vcd.render());
}
