/**
 * @file
 * hwdbg-trace JSON v1: byte-stable round-trip through
 * toJson/parseTraceDump, and rejection of the corruptions obscheck
 * exists to catch — wrong format tag, inconsistent window geometry,
 * non-monotonic row sequence numbers, row/signal arity mismatch, and
 * hex values wider than the declared signal.
 */

#include <gtest/gtest.h>

#include <memory>

#include "elab/elaborate.hh"
#include "hdl/parser.hh"
#include "sim/simulator.hh"
#include "trace/json.hh"
#include "trace/trace.hh"

using namespace hwdbg;
using namespace hwdbg::trace;

namespace
{

/** A small real capture: counter, a dozen change rows. */
TraceDump
makeDump()
{
    hdl::Design design = hdl::parse(
        "module m(input wire clk, input wire rst,\n"
        "         output reg [7:0] count);\n"
        "always @(posedge clk)\n"
        "  if (rst) count <= 0; else count <= count + 1;\nendmodule");
    sim::Simulator sim(elab::elaborate(design, "m").mod);

    TraceConfig cfg;
    cfg.signals = {"count"};
    cfg.trigger = "count == 8'h4";
    cfg.budgetBytes = 1 << 10;
    TraceRecorder rec(sim, cfg);
    rec.attach();
    for (int t = 0; t < 16; ++t) {
        sim.poke("rst", uint64_t(t < 2 ? 1 : 0));
        sim.poke("clk", uint64_t(0));
        sim.eval();
        sim.poke("clk", uint64_t(1));
        sim.eval();
    }
    rec.detach();
    return rec.dump("unit");
}

/** The serialized form after one struct-level corruption. */
std::string
corrupt(const TraceDump &dump, void (*mutate)(TraceDump &))
{
    TraceDump copy = dump;
    mutate(copy);
    return toJson(copy);
}

} // namespace

TEST(TraceJsonTest, RoundTripIsByteStable)
{
    TraceDump dump = makeDump();
    ASSERT_TRUE(dump.fired);
    ASSERT_GT(dump.rows.size(), 2u);

    std::string text = toJson(dump);
    EXPECT_EQ(checkTraceDumpJson(text), "");

    TraceDump parsed;
    std::string error;
    ASSERT_TRUE(parseTraceDump(text, &parsed, &error)) << error;
    EXPECT_EQ(parsed.rows.size(), dump.rows.size());
    EXPECT_EQ(parsed.triggerSeq, dump.triggerSeq);
    EXPECT_EQ(toJson(parsed), text);
}

TEST(TraceJsonTest, RejectsWrongFormatTag)
{
    std::string text = toJson(makeDump());
    size_t at = text.find("hwdbg-trace");
    ASSERT_NE(at, std::string::npos);
    text.replace(at, 11, "hwdbg-cover");
    EXPECT_NE(checkTraceDumpJson(text), "");
}

TEST(TraceJsonTest, RejectsInconsistentWindowGeometry)
{
    TraceDump dump = makeDump();
    // pre + post must equal depth.
    EXPECT_NE(checkTraceDumpJson(
                  corrupt(dump, [](TraceDump &d) { d.preDepth += 1; })),
              "");
    // fired without armed is impossible.
    EXPECT_NE(checkTraceDumpJson(
                  corrupt(dump, [](TraceDump &d) { d.armed = false; })),
              "");
    // More rows than the window can hold.
    EXPECT_NE(checkTraceDumpJson(corrupt(dump,
                                         [](TraceDump &d) {
                                             d.depth = 1;
                                             d.preDepth = 0;
                                             d.postDepth = 1;
                                         })),
              "");
}

TEST(TraceJsonTest, RejectsNonIncreasingRowSeq)
{
    TraceDump dump = makeDump();
    EXPECT_NE(checkTraceDumpJson(corrupt(dump,
                                         [](TraceDump &d) {
                                             d.rows[1].seq =
                                                 d.rows[0].seq;
                                         })),
              "");
}

TEST(TraceJsonTest, RejectsRowValueArityMismatch)
{
    TraceDump dump = makeDump();
    EXPECT_NE(checkTraceDumpJson(corrupt(dump,
                                         [](TraceDump &d) {
                                             d.rows[0].values.clear();
                                         })),
              "");
}

TEST(TraceJsonTest, RejectsOverwideHexValue)
{
    // Text-level corruption: an 8-bit signal serializes as exactly two
    // nibbles; widen one value and the fixed-width rule must trip.
    std::string text = toJson(makeDump());
    size_t at = text.find("\"values\": [\"0x");
    ASSERT_NE(at, std::string::npos);
    text.insert(at + 14, "f");
    EXPECT_NE(checkTraceDumpJson(text), "");
}
