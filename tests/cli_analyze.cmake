# Golden tests for the `hwdbg analyze` CLI: byte-determinism of the
# text and JSON reports across double runs, the --out artifact path
# validated by obscheck, pass selection, the buggy-vs-fixed contrast on
# testbed bugs the dataflow passes catch, and the order oracle's
# surface in `hwdbg fuzz`.

set(work ${CMAKE_CURRENT_BINARY_DIR}/cli_analyze_work)
file(MAKE_DIRECTORY ${work})

# Reports are byte-deterministic: same bug, two runs, identical bytes.
foreach(bug C1 D2 D3 D4)
    execute_process(COMMAND ${HWDBG} analyze --bug ${bug}
                    RESULT_VARIABLE rc OUTPUT_VARIABLE run_a ERROR_QUIET)
    execute_process(COMMAND ${HWDBG} analyze --bug ${bug}
                    RESULT_VARIABLE rc2 OUTPUT_VARIABLE run_b ERROR_QUIET)
    if(NOT run_a STREQUAL run_b)
        message(FATAL_ERROR "analyze --bug ${bug} is not deterministic")
    endif()
    execute_process(COMMAND ${HWDBG} analyze --bug ${bug} --format json
                    RESULT_VARIABLE rc OUTPUT_VARIABLE json_a ERROR_QUIET)
    execute_process(COMMAND ${HWDBG} analyze --bug ${bug} --format json
                    RESULT_VARIABLE rc OUTPUT_VARIABLE json_b ERROR_QUIET)
    if(NOT json_a STREQUAL json_b)
        message(FATAL_ERROR "analyze --bug ${bug} JSON is not deterministic")
    endif()
endforeach()

# The dataflow catches fire on the buggy variant and stay quiet on the
# fix: C1's dead reset cascade, D3's stuck ready outputs, D2's stuck
# tag bit, D4's dead occupancy counter.
execute_process(COMMAND ${HWDBG} analyze --bug C1
                RESULT_VARIABLE rc OUTPUT_VARIABLE buggy ERROR_QUIET)
if(NOT buggy MATCHES "dead-guard" OR NOT buggy MATCHES "read-uninitialized")
    message(FATAL_ERROR "analyze missed C1's dead logic: ${buggy}")
endif()
execute_process(COMMAND ${HWDBG} analyze --bug C1 --fixed
                RESULT_VARIABLE rc OUTPUT_VARIABLE fixed ERROR_QUIET)
if(fixed MATCHES "dead-guard")
    message(FATAL_ERROR "analyze flags the fixed C1: ${fixed}")
endif()
execute_process(COMMAND ${HWDBG} analyze --bug D3
                RESULT_VARIABLE rc OUTPUT_VARIABLE d3 ERROR_QUIET)
if(NOT d3 MATCHES "stuck-output")
    message(FATAL_ERROR "analyze missed D3's stuck outputs: ${d3}")
endif()
execute_process(COMMAND ${HWDBG} analyze --bug D2
                RESULT_VARIABLE rc OUTPUT_VARIABLE d2 ERROR_QUIET)
if(NOT d2 MATCHES "stuck-bit")
    message(FATAL_ERROR "analyze missed D2's stuck tag bit: ${d2}")
endif()

# Pass selection runs only the named passes.
execute_process(COMMAND ${HWDBG} analyze --bug C1 --pass race,cdc
                RESULT_VARIABLE rc OUTPUT_VARIABLE selected ERROR_QUIET)
if(selected MATCHES "dead-guard")
    message(FATAL_ERROR "--pass race,cdc still ran the const pass")
endif()
execute_process(COMMAND ${HWDBG} analyze --bug C1 --pass nosuch
                RESULT_VARIABLE rc OUTPUT_QUIET ERROR_VARIABLE err)
if(rc EQUAL 0 OR NOT err MATCHES "unknown analyze pass")
    message(FATAL_ERROR "unknown pass was not rejected: ${err}")
endif()

# --out writes the versioned JSON artifact and obscheck validates it.
execute_process(COMMAND ${HWDBG} analyze --bug C1 --format json
                --out ${work}/c1.analyze.json
                RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(NOT EXISTS ${work}/c1.analyze.json)
    message(FATAL_ERROR "analyze --out did not write the artifact")
endif()
execute_process(COMMAND ${HWDBG} obscheck ${work}/c1.analyze.json
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_QUIET)
if(NOT rc EQUAL 0 OR NOT out MATCHES "ok \\(analyze report\\)")
    message(FATAL_ERROR "obscheck rejected the analyze artifact: ${out}")
endif()
file(READ ${work}/c1.analyze.json report)
if(NOT report MATCHES "\"format\": \"hwdbg-analyze\"")
    message(FATAL_ERROR "analyze JSON is missing the format marker")
endif()
if(NOT report MATCHES "\"build\"")
    message(FATAL_ERROR "analyze JSON is missing the build stamp")
endif()

# A corrupted report is rejected.
file(READ ${work}/c1.analyze.json good)
string(REPLACE "\"version\": 1" "\"version\": 99" bad "${good}")
file(WRITE ${work}/c1.bad.json "${bad}")
execute_process(COMMAND ${HWDBG} obscheck ${work}/c1.bad.json
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_QUIET)
if(rc EQUAL 0 OR NOT out MATCHES "INVALID")
    message(FATAL_ERROR "obscheck accepted a corrupted analyze report")
endif()

# The order oracle: a short campaign with the race template must pass
# (no unflagged divergence) and report the verdict tally; both formats
# are deterministic.
execute_process(COMMAND ${HWDBG} fuzz --seeds 25 --oracle order
                --race-chance 50
                RESULT_VARIABLE rc OUTPUT_VARIABLE order_a ERROR_QUIET)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "order-oracle campaign failed: ${order_a}")
endif()
if(NOT order_a MATCHES "order oracle: [0-9]+ design")
    message(FATAL_ERROR "order tally missing from the report: ${order_a}")
endif()
execute_process(COMMAND ${HWDBG} fuzz --seeds 25 --oracle order
                --race-chance 50
                RESULT_VARIABLE rc OUTPUT_VARIABLE order_b ERROR_QUIET)
if(NOT order_a STREQUAL order_b)
    message(FATAL_ERROR "order-oracle report is not deterministic")
endif()

# The default-mask fuzz report must not mention the opt-in oracle.
execute_process(COMMAND ${HWDBG} fuzz --seeds 5
                RESULT_VARIABLE rc OUTPUT_VARIABLE plain ERROR_QUIET)
if(plain MATCHES "order oracle")
    message(FATAL_ERROR "default fuzz report leaked the order tally")
endif()

message(STATUS "cli_analyze checks passed")
