# End-to-end CLI smoke test: emit a testbed design, then run the
# analysis commands over the emitted file.
set(work ${CMAKE_CURRENT_BINARY_DIR}/cli_smoke_d4.v)
execute_process(COMMAND ${HWDBG} testbed emit D4
                OUTPUT_FILE ${work} RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "testbed emit failed")
endif()
foreach(cmd "fsm" "resources" "timing")
    execute_process(COMMAND ${HWDBG} ${cmd} ${work}
                    RESULT_VARIABLE rc OUTPUT_QUIET)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "hwdbg ${cmd} failed")
    endif()
endforeach()
execute_process(COMMAND ${HWDBG} losscheck ${work}
                --source s_data --valid s_valid --sink m_data
                RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "hwdbg losscheck failed")
endif()
execute_process(COMMAND ${HWDBG} deps ${work} --var m_len
                RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "hwdbg deps failed")
endif()

# Lint: the buggy D4 drops frames silently and leaves dead logic
# behind, which the unused-signal rule reports (warnings only, so the
# exit status stays 0); the fixed form must be completely clean.
execute_process(COMMAND ${HWDBG} lint ${work}
                RESULT_VARIABLE rc OUTPUT_VARIABLE lint_out
                ERROR_QUIET)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "hwdbg lint failed on buggy D4 (rc=${rc})")
endif()
if(NOT lint_out MATCHES "unused-signal")
    message(FATAL_ERROR "lint missed the dead logic in buggy D4")
endif()
execute_process(COMMAND ${HWDBG} lint ${work} --format json
                RESULT_VARIABLE rc OUTPUT_VARIABLE lint_json
                ERROR_QUIET)
if(NOT rc EQUAL 0 OR NOT lint_json MATCHES "\"rule\": \"unused-signal\"")
    message(FATAL_ERROR "lint --format json output is wrong")
endif()
execute_process(COMMAND ${HWDBG} lint ${work} --rule sticky-flag
                RESULT_VARIABLE rc OUTPUT_VARIABLE lint_one
                ERROR_QUIET)
if(NOT rc EQUAL 0 OR lint_one MATCHES "unused-signal")
    message(FATAL_ERROR "lint --rule selection is wrong")
endif()

set(fixed ${CMAKE_CURRENT_BINARY_DIR}/cli_smoke_d4_fixed.v)
execute_process(COMMAND ${HWDBG} testbed emit D4 --fixed
                OUTPUT_FILE ${fixed} RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "testbed emit --fixed failed")
endif()
execute_process(COMMAND ${HWDBG} lint ${fixed}
                RESULT_VARIABLE rc OUTPUT_VARIABLE lint_fixed
                ERROR_QUIET)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "hwdbg lint failed on fixed D4 (rc=${rc})")
endif()
if(NOT lint_fixed STREQUAL "")
    message(FATAL_ERROR
            "lint reported diagnostics on fixed D4: ${lint_fixed}")
endif()
