# End-to-end CLI smoke test: emit a testbed design, then run the
# analysis commands over the emitted file.
set(work ${CMAKE_CURRENT_BINARY_DIR}/cli_smoke_d4.v)
execute_process(COMMAND ${HWDBG} testbed emit D4
                OUTPUT_FILE ${work} RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "testbed emit failed")
endif()
foreach(cmd "fsm" "resources" "timing")
    execute_process(COMMAND ${HWDBG} ${cmd} ${work}
                    RESULT_VARIABLE rc OUTPUT_QUIET)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "hwdbg ${cmd} failed")
    endif()
endforeach()
execute_process(COMMAND ${HWDBG} losscheck ${work}
                --source s_data --valid s_valid --sink m_data
                RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "hwdbg losscheck failed")
endif()
execute_process(COMMAND ${HWDBG} deps ${work} --var m_len
                RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "hwdbg deps failed")
endif()
