# Golden tests for `hwdbg debug`: on three testbed bugs, a scripted
# machine session breaks on the paper-tool event nearest the root
# cause, travels backwards past it, and backtraces the offending
# register — and two runs of the same script produce byte-identical
# transcripts that pass `hwdbg obscheck`.

set(work ${CMAKE_CURRENT_BINARY_DIR}/cli_debug_work)
file(MAKE_DIRECTORY ${work})
set(scripts ${CMAKE_CURRENT_LIST_DIR}/debug/scripts)

function(run_debug_session bug script outvar)
    execute_process(COMMAND ${HWDBG} debug --bug ${bug} --machine
                    --script ${script}
                    RESULT_VARIABLE rc OUTPUT_VARIABLE out
                    ERROR_VARIABLE err)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR
                "debug --bug ${bug} failed (rc=${rc}): ${out}${err}")
    endif()
    set(${outvar} "${out}" PARENT_SCOPE)
endfunction()

# bug id -> (event key, backtraced register) per the Table 2 root
# causes; a matching regex list asserts each session's content.
foreach(spec "D3;fsm:bus_state;req_data" "D4;loss:memd;memd"
        "D7;dep:sum;sum")
    list(GET spec 0 bug)
    list(GET spec 1 event)
    list(GET spec 2 reg)
    string(TOLOWER ${bug} lbug)
    set(script ${scripts}/${lbug}.txt)

    run_debug_session(${bug} ${script} first)
    run_debug_session(${bug} ${script} second)
    if(NOT first STREQUAL second)
        message(FATAL_ERROR
                "debug --bug ${bug} machine transcripts differ between "
                "two runs of the same script:\n--- a\n${first}\n"
                "--- b\n${second}")
    endif()

    foreach(pattern
            "^{\"proto\":\"hwdbg-debug\",\"version\":1,"
            "\"stop\":\"breakpoint\""
            "\"key\":\"${event}\""
            "\"cmd\":\"backtrace\""
            "\"reg\":\"${reg}\""
            "\"distance\":0"
            "\"cmd\":\"quit\"")
        if(NOT first MATCHES "${pattern}")
            message(FATAL_ERROR
                    "debug --bug ${bug} transcript is missing "
                    "'${pattern}':\n${first}")
        endif()
    endforeach()

    # The schema checker accepts the transcript byte-for-byte.
    file(WRITE ${work}/${lbug}.jsonl "${first}")
    execute_process(COMMAND ${HWDBG} obscheck ${work}/${lbug}.jsonl
                    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_QUIET)
    if(NOT rc EQUAL 0 OR NOT out MATCHES "ok \\(debug transcript\\)")
        message(FATAL_ERROR
                "obscheck rejected the ${bug} transcript: ${out}")
    endif()
endforeach()

# The same script drives a human-mode session (echoed); spot-check the
# rendered forms of the break, the backtrace, and the travel.
execute_process(COMMAND ${HWDBG} debug --bug D7
                --script ${scripts}/d7.txt
                RESULT_VARIABLE rc OUTPUT_VARIABLE human ERROR_QUIET)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "human-mode debug session failed: ${human}")
endif()
foreach(pattern
        "hwdbg debug: fadd,"
        "breakpoint 1: event dep:sum"
        "breakpoint 1: event dep:sum, cycle"
        "\\[-0\\] sum ="
        "event dep:sum")
    if(NOT human MATCHES "${pattern}")
        message(FATAL_ERROR
                "human transcript is missing '${pattern}':\n${human}")
    endif()
endforeach()

# A failing command inside a script surfaces as a non-zero exit (the
# CI smoke step relies on this to catch schema or session breakage).
file(WRITE ${work}/bad.txt "print no_such_signal\nquit\n")
execute_process(COMMAND ${HWDBG} debug --bug D7 --machine
                --script ${work}/bad.txt
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_QUIET)
if(rc EQUAL 0)
    message(FATAL_ERROR
            "a script with a failing command exited 0:\n${out}")
endif()
if(NOT out MATCHES "\"ok\":false,\"error\":")
    message(FATAL_ERROR
            "failed command did not produce an error response:\n${out}")
endif()

# --stimulus replays a vector file instead of a recorded workload.
execute_process(COMMAND ${HWDBG} testbed emit D7
                RESULT_VARIABLE rc OUTPUT_VARIABLE design ERROR_QUIET)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "testbed emit D7 failed (rc=${rc})")
endif()
file(WRITE ${work}/d7.v "${design}")
file(WRITE ${work}/stim.txt "# four ticks\nclk=0\nclk=1\nclk=0\nclk=1
clk=0\nclk=1\nclk=0\nclk=1\n")
file(WRITE ${work}/steps.txt "run\nquit\n")
execute_process(COMMAND ${HWDBG} debug ${work}/d7.v
                --stimulus ${work}/stim.txt --machine
                --script ${work}/steps.txt
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_QUIET)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "--stimulus session failed (rc=${rc}): ${out}")
endif()
if(NOT out MATCHES "\"steps\":8," OR
   NOT out MATCHES "\"stop\":\"end-of-tape\"")
    message(FATAL_ERROR "--stimulus session output is wrong:\n${out}")
endif()

message(STATUS "cli_debug golden checks passed")
