/**
 * @file
 * Machine-protocol unit tests: request parsing (JSON and bare text),
 * ordered JSON rendering, and transcript schema validation.
 */

#include <gtest/gtest.h>

#include "debug/protocol.hh"

using namespace hwdbg::debug;

TEST(ProtocolTest, ParsesBareCommandLines)
{
    Request req = parseRequestLine("break count == 3");
    EXPECT_TRUE(req.error.empty());
    EXPECT_FALSE(req.hasId);
    EXPECT_EQ(req.cmd, "break");
    ASSERT_EQ(req.args.size(), 3u);
    EXPECT_EQ(req.args[0], "count");
    EXPECT_EQ(req.args[2], "3");
}

TEST(ProtocolTest, ParsesJsonRequests)
{
    Request req = parseRequestLine(
        "{\"id\":7,\"cmd\":\"break\",\"args\":[\"count == 3\"]}");
    EXPECT_TRUE(req.error.empty());
    EXPECT_TRUE(req.hasId);
    EXPECT_EQ(req.id, 7);
    EXPECT_EQ(req.cmd, "break");
    // Multi-word argument strings re-tokenize to the bare-line stream.
    ASSERT_EQ(req.args.size(), 3u);
    EXPECT_EQ(req.args[1], "==");
}

TEST(ProtocolTest, SkipsCommentsAndBlanks)
{
    EXPECT_TRUE(parseRequestLine("").cmd.empty());
    EXPECT_TRUE(parseRequestLine("   \t").cmd.empty());
    EXPECT_TRUE(parseRequestLine("# a comment").cmd.empty());
    EXPECT_TRUE(parseRequestLine("# a comment").error.empty());
}

TEST(ProtocolTest, RejectsMalformedRequests)
{
    EXPECT_FALSE(parseRequestLine("{not json").error.empty());
    EXPECT_FALSE(parseRequestLine("{\"id\":1}").error.empty());
    EXPECT_FALSE(
        parseRequestLine("{\"cmd\":\"run\",\"args\":\"x\"}").error.empty());
    EXPECT_FALSE(
        parseRequestLine("{\"cmd\":\"run\",\"args\":[1]}").error.empty());
}

TEST(ProtocolTest, JsonObjectPreservesFieldOrderAndEscapes)
{
    JsonObject obj;
    obj.field("id", int64_t(3))
        .field("ok", true)
        .field("cmd", std::string("print"))
        .raw("payload", "{\"x\":1}")
        .field("note", std::string("a\"b\nc"));
    EXPECT_EQ(obj.str(),
              "{\"id\":3,\"ok\":true,\"cmd\":\"print\","
              "\"payload\":{\"x\":1},\"note\":\"a\\\"b\\nc\"}");
    EXPECT_EQ(jsonArray({}), "[]");
    EXPECT_EQ(jsonArray({"1", "\"a\""}), "[1,\"a\"]");
}

namespace
{

const char *kHello =
    "{\"proto\":\"hwdbg-debug\",\"version\":1,\"design\":\"m\","
    "\"steps\":4,\"signals\":2}\n";

std::string
goodResponse()
{
    return "{\"id\":1,\"ok\":true,\"cmd\":\"run\","
           "\"state\":{\"cycle\":4,\"step\":8,\"finished\":false,"
           "\"end\":true}}\n";
}

} // namespace

TEST(ProtocolTest, AcceptsWellFormedTranscript)
{
    std::string text = std::string(kHello) + goodResponse() +
                       "{\"id\":null,\"ok\":false,\"error\":\"no\","
                       "\"cmd\":\"print\",\"state\":{\"cycle\":4,"
                       "\"step\":8,\"finished\":false,\"end\":true}}\n";
    EXPECT_EQ(checkDebugTranscript(text), "");
}

TEST(ProtocolTest, RejectsBadTranscripts)
{
    EXPECT_NE(checkDebugTranscript(""), "");
    // Missing hello.
    EXPECT_NE(checkDebugTranscript(goodResponse()), "");
    // ok:true carrying an error field.
    std::string bad = std::string(kHello) +
                      "{\"id\":1,\"ok\":true,\"error\":\"x\","
                      "\"cmd\":\"run\",\"state\":{\"cycle\":0,"
                      "\"step\":0,\"finished\":false,\"end\":false}}\n";
    EXPECT_NE(checkDebugTranscript(bad), "");
    // ok:false without an error field.
    bad = std::string(kHello) +
          "{\"id\":1,\"ok\":false,\"cmd\":\"run\",\"state\":{"
          "\"cycle\":0,\"step\":0,\"finished\":false,\"end\":false}}\n";
    EXPECT_NE(checkDebugTranscript(bad), "");
    // Wrong field order (cmd before ok).
    bad = std::string(kHello) +
          "{\"id\":1,\"cmd\":\"run\",\"ok\":true,\"state\":{"
          "\"cycle\":0,\"step\":0,\"finished\":false,\"end\":false}}\n";
    EXPECT_NE(checkDebugTranscript(bad), "");
    // Incomplete state object.
    bad = std::string(kHello) +
          "{\"id\":1,\"ok\":true,\"cmd\":\"run\",\"state\":{"
          "\"cycle\":0,\"step\":0}}\n";
    EXPECT_NE(checkDebugTranscript(bad), "");
    // Trailing field after state.
    bad = std::string(kHello) +
          "{\"id\":1,\"ok\":true,\"cmd\":\"run\",\"state\":{"
          "\"cycle\":0,\"step\":0,\"finished\":false,\"end\":false},"
          "\"extra\":1}\n";
    EXPECT_NE(checkDebugTranscript(bad), "");
}
