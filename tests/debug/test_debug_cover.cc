/**
 * @file
 * Live coverage inside the debugger: the engine's always-on collector,
 * monotone totals across time travel (replay re-marks idempotently,
 * restores fabricate nothing), the coverageSummary delta, and the
 * `cover` REPL/protocol command.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "debug/engine.hh"
#include "debug/repl.hh"
#include "elab/elaborate.hh"
#include "hdl/parser.hh"

using namespace hwdbg;
using namespace hwdbg::debug;

namespace
{

const char *kCounter =
    "module m(input wire clk, output reg [7:0] count);\n"
    "always @(posedge clk) count <= count + 1;\nendmodule";

sim::StimulusTape
clockTape(int cycles)
{
    sim::StimulusTape tape;
    for (int i = 0; i < cycles; ++i) {
        sim::StimulusStep low, high;
        low.pokes.emplace_back("clk", Bits(1, 0));
        high.pokes.emplace_back("clk", Bits(1, 1));
        tape.steps.push_back(low);
        tape.steps.push_back(high);
    }
    return tape;
}

std::unique_ptr<Engine>
makeCounterEngine(int cycles)
{
    hdl::Design design = hdl::parse(kCounter);
    return std::make_unique<Engine>(elab::elaborate(design, "m").mod,
                                    clockTape(cycles));
}

} // namespace

TEST(DebugCoverTest, CoverageGrowsWithExecution)
{
    auto engine = makeCounterEngine(40);
    auto first = engine->coverageSummary();
    EXPECT_GT(first.totals.total(), 0u);

    engine->stepCycles(10);
    auto after = engine->coverageSummary();
    EXPECT_GT(after.totals.covered(), first.totals.covered());
    EXPECT_EQ(after.newlyCovered,
              after.totals.covered() - first.totals.covered());

    // No new execution: the delta resets to zero.
    auto again = engine->coverageSummary();
    EXPECT_EQ(again.newlyCovered, 0u);
    EXPECT_EQ(again.totals.covered(), after.totals.covered());
}

TEST(DebugCoverTest, TimeTravelIsMonotoneAndDeterministic)
{
    auto engine = makeCounterEngine(40);
    engine->stepCycles(20);
    uint64_t covered = engine->coverageSummary().totals.covered();

    // Travel backwards and replay: marks are idempotent, so nothing
    // is lost and nothing new is fabricated.
    engine->gotoCycle(5);
    engine->gotoCycle(20);
    EXPECT_EQ(engine->coverageSummary().totals.covered(), covered);

    // A second engine over the same tape lands on identical totals.
    auto other = makeCounterEngine(40);
    other->stepCycles(20);
    EXPECT_EQ(other->coverageSummary().totals.covered(), covered);
    EXPECT_EQ(engine->coverageItems().fingerprint(),
              other->coverageItems().fingerprint());
}

TEST(DebugCoverTest, CoverCommandHumanAndMachine)
{
    {
        auto engine = makeCounterEngine(20);
        std::istringstream in("step 5\ncover\nquit\n");
        std::ostringstream out;
        SessionOptions opts;
        EXPECT_EQ(runSession(*engine, in, out, opts), 0);
        EXPECT_NE(out.str().find("coverage: "), std::string::npos);
        EXPECT_NE(out.str().find("statements "), std::string::npos);
    }
    {
        auto engine = makeCounterEngine(20);
        std::istringstream in("cover\nquit\n");
        std::ostringstream out;
        SessionOptions opts;
        opts.machine = true;
        EXPECT_EQ(runSession(*engine, in, out, opts), 0);
        const std::string text = out.str();
        // Hello carries the build stamp; the payload carries totals.
        EXPECT_NE(text.find("\"build\":{\"tool\":\"hwdbg\""),
                  std::string::npos);
        EXPECT_NE(text.find("\"cmd\":\"cover\""), std::string::npos);
        EXPECT_NE(text.find("\"covered\":"), std::string::npos);
        EXPECT_NE(text.find("\"pct\":"), std::string::npos);
    }
}
