/**
 * @file
 * Engine-level time travel: goto-cycle across checkpoint boundaries
 * (including evicted ones), reverse-step, run-until, paper-tool events
 * on an instrumented testbed bug, and backtrace over the depgraph.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>

#include "bugbase/testbed.hh"
#include "bugbase/workloads.hh"
#include "common/logging.hh"
#include "debug/engine.hh"
#include "elab/elaborate.hh"
#include "hdl/parser.hh"

using namespace hwdbg;
using namespace hwdbg::debug;

namespace
{

const char *kCounter =
    "module m(input wire clk, output reg [7:0] count);\n"
    "always @(posedge clk) count <= count + 1;\nendmodule";

sim::StimulusTape
clockTape(int cycles)
{
    sim::StimulusTape tape;
    for (int i = 0; i < cycles; ++i) {
        sim::StimulusStep low, high;
        low.pokes.emplace_back("clk", Bits(1, 0));
        high.pokes.emplace_back("clk", Bits(1, 1));
        tape.steps.push_back(low);
        tape.steps.push_back(high);
    }
    return tape;
}

std::unique_ptr<Engine>
makeCounterEngine(int cycles, EngineOptions opts = {})
{
    hdl::Design design = hdl::parse(kCounter);
    return std::make_unique<Engine>(elab::elaborate(design, "m").mod,
                                    clockTape(cycles), opts);
}

/** Engine over an instrumented testbed bug with its recorded trigger
 *  workload — the same wiring the CLI's --bug path does. */
std::unique_ptr<Engine>
makeBugEngine(const std::string &bug_id, EngineOptions opts = {})
{
    const auto &bug = bugs::bugById(bug_id);
    auto elaborated = bugs::buildDesign(bug, true);

    InstrumentConfig icfg;
    icfg.fsm = bug.monitors.fsm;
    icfg.depVariable = bug.monitors.depVariable;
    icfg.depCycles = bug.monitors.depCycles;
    icfg.lossCheck = bug.lossCheck;
    icfg.constants = elaborated.constants;
    InstrumentResult instr = instrumentForDebug(*elaborated.mod, icfg);

    sim::StimulusTape tape;
    {
        sim::Simulator recorder(instr.module);
        recorder.recordStimulus(&tape);
        bugs::runWorkload(bug, recorder);
        recorder.recordStimulus(nullptr);
    }
    opts.constants = elaborated.constants;
    return std::make_unique<Engine>(instr.module, std::move(tape), opts);
}

} // namespace

TEST(EngineTest, StepAndRunAdvanceTheCycleCounter)
{
    auto eng = makeCounterEngine(12);
    auto stop = eng->stepCycles(3);
    EXPECT_EQ(stop.reason, Engine::StopReason::None);
    EXPECT_EQ(eng->cycle(), 3u);
    EXPECT_EQ(eng->evalNow("count").toU64(), 3u);

    stop = eng->run();
    EXPECT_EQ(stop.reason, Engine::StopReason::EndOfTape);
    EXPECT_EQ(eng->cycle(), 12u);
    EXPECT_TRUE(eng->atEnd());
}

TEST(EngineTest, RunUntilStopsWhenExpressionTurnsTrue)
{
    auto eng = makeCounterEngine(12);
    auto stop = eng->runUntil("count == 7");
    ASSERT_EQ(stop.reason, Engine::StopReason::UntilTrue);
    EXPECT_EQ(eng->evalNow("count").toU64(), 7u);
    // Malformed expressions surface as HdlError, not silent misses.
    EXPECT_THROW(eng->runUntil("nonexistent_wire == 1"), HdlError);
}

TEST(EngineTest, GotoCycleAcrossCheckpointBoundaries)
{
    // Interval of 4 steps with capacity 2 forces evictions: early
    // targets must fall back to the pinned initial snapshot + replay.
    EngineOptions opts;
    opts.checkpointInterval = 4;
    opts.checkpointCapacity = 2;
    auto eng = makeCounterEngine(32, opts);
    eng->run();
    ASSERT_EQ(eng->cycle(), 32u);
    EXPECT_LE(eng->checkpoints().count(), 3u); // pinned initial + 2

    // Record the state on a first visit, revisit it after travelling
    // away, and require bit-identical values both times.
    auto stop = eng->gotoCycle(13);
    EXPECT_EQ(stop.reason, Engine::StopReason::None);
    EXPECT_EQ(eng->cycle(), 13u);
    auto valuesAt13 = eng->sim().context().values;
    EXPECT_EQ(eng->evalNow("count").toU64(), 13u);

    stop = eng->gotoCycle(2); // before every surviving checkpoint
    EXPECT_EQ(stop.reason, Engine::StopReason::None);
    EXPECT_EQ(eng->cycle(), 2u);
    EXPECT_EQ(eng->evalNow("count").toU64(), 2u);

    stop = eng->gotoCycle(13);
    EXPECT_EQ(eng->cycle(), 13u);
    EXPECT_EQ(eng->sim().context().values, valuesAt13);
    EXPECT_GT(eng->replayedSteps(), 0u);

    // Forward past the frontier is a quiet advance.
    stop = eng->gotoCycle(20);
    EXPECT_EQ(stop.reason, Engine::StopReason::None);
    EXPECT_EQ(eng->evalNow("count").toU64(), 20u);
}

TEST(EngineTest, ReverseStepWalksBackwardsAndClampsAtZero)
{
    auto eng = makeCounterEngine(10);
    eng->stepCycles(8);
    auto stop = eng->reverseStep(3);
    EXPECT_EQ(stop.reason, Engine::StopReason::None);
    EXPECT_EQ(eng->cycle(), 5u);
    EXPECT_EQ(eng->evalNow("count").toU64(), 5u);

    stop = eng->reverseStep(100);
    EXPECT_EQ(eng->cycle(), 0u);
    EXPECT_EQ(eng->evalNow("count").toU64(), 0u);
}

TEST(EngineTest, InstrumentedBugSurfacesDependencyEvents)
{
    // D7 (fadd) carries a Dependency Monitor on `sum`; its update
    // events must be breakable and survive time travel.
    auto eng = makeBugEngine("D7");
    ASSERT_GT(eng->tapeSize(), 0u);

    eng->breakpoints().add(Breakpoint::Kind::Event, "dep:sum", nullptr,
                           eng->sim().context());
    auto stop = eng->run();
    ASSERT_EQ(stop.reason, Engine::StopReason::Breakpoint);
    ASSERT_FALSE(stop.events.empty());
    EXPECT_EQ(stop.events[0].key, "dep:sum");
    uint64_t hitCycle = eng->cycle();
    EXPECT_GT(hitCycle, 0u);

    // Time-travel backwards past the event, then the full-log event
    // listing must shrink to the prefix...
    eng->gotoCycle(hitCycle - 1);
    for (const auto &ev : eng->allEvents())
        EXPECT_LT(ev.cycle, hitCycle);

    // ...and re-running rediscovers the same event deterministically.
    auto again = eng->run();
    ASSERT_EQ(again.reason, Engine::StopReason::Breakpoint);
    EXPECT_EQ(eng->cycle(), hitCycle);
    EXPECT_EQ(again.events[0].key, "dep:sum");
}

TEST(EngineTest, BacktraceReportsDependencyChainWithValues)
{
    auto eng = makeBugEngine("D7");
    eng->run();
    auto chain = eng->backtrace("sum", 2);
    ASSERT_FALSE(chain.empty());
    EXPECT_EQ(chain.front().reg, "sum");
    EXPECT_EQ(chain.front().distance, 0);
    for (size_t i = 1; i < chain.size(); ++i)
        EXPECT_GE(chain[i].distance, chain[i - 1].distance);
    // Values are the live ones: the root entry matches evalNow.
    EXPECT_EQ(chain.front().value, eng->evalNow("sum"));
    EXPECT_THROW(eng->backtrace("no_such_reg", 2), HdlError);
}

TEST(EngineTest, StimulusFileRoundTrips)
{
    std::string path = testing::TempDir() + "/hwdbg_stim.txt";
    {
        std::ofstream out(path);
        out << "# two ticks of a counter clock\n";
        out << "clk=0\nclk=1\n";
        out << "-\n";
        out << "clk=0 count=8'hff\n";
    }
    sim::StimulusTape tape = loadStimulusFile(path);
    ASSERT_EQ(tape.steps.size(), 4u);
    EXPECT_EQ(tape.steps[0].pokes.size(), 1u);
    EXPECT_TRUE(tape.steps[2].pokes.empty());
    ASSERT_EQ(tape.steps[3].pokes.size(), 2u);
    EXPECT_EQ(tape.steps[3].pokes[1].first, "count");
    EXPECT_EQ(tape.steps[3].pokes[1].second.toU64(), 0xffu);
    std::remove(path.c_str());

    EXPECT_THROW(loadStimulusFile("/nonexistent/stim.txt"), HdlError);
}
