/**
 * @file
 * hgdb-style virtual line breakpoints: `break at <file>:<line>`
 * resolution against elaborated source locations on every testbed bug,
 * enable-condition gating, unresolvable-location errors, and execution
 * baselines surviving time travel without fabricating hits.
 */

#include <gtest/gtest.h>

#include <memory>

#include "bugbase/testbed.hh"
#include "bugbase/workloads.hh"
#include "common/logging.hh"
#include "compile/backend.hh"
#include "debug/engine.hh"
#include "elab/elaborate.hh"
#include "hdl/parser.hh"

using namespace hwdbg;
using namespace hwdbg::debug;

namespace
{

const char *kCounter =
    "module m(input wire clk, output reg [7:0] count);\n"
    "always @(posedge clk) count <= count + 1;\nendmodule";

sim::StimulusTape
clockTape(int cycles)
{
    sim::StimulusTape tape;
    for (int i = 0; i < cycles; ++i) {
        sim::StimulusStep low, high;
        low.pokes.emplace_back("clk", Bits(1, 0));
        high.pokes.emplace_back("clk", Bits(1, 1));
        tape.steps.push_back(low);
        tape.steps.push_back(high);
    }
    return tape;
}

std::unique_ptr<Engine>
makeCounterEngine(int cycles, EngineOptions opts = {})
{
    hdl::Design design = hdl::parse(kCounter);
    return std::make_unique<Engine>(elab::elaborate(design, "m").mod,
                                    clockTape(cycles), opts);
}

std::unique_ptr<Engine>
makeBugEngine(const bugs::TestbedBug &bug, EngineOptions opts = {})
{
    auto elaborated = bugs::buildDesign(bug, true);

    InstrumentConfig icfg;
    icfg.fsm = bug.monitors.fsm;
    icfg.depVariable = bug.monitors.depVariable;
    icfg.depCycles = bug.monitors.depCycles;
    icfg.lossCheck = bug.lossCheck;
    icfg.constants = elaborated.constants;
    InstrumentResult instr = instrumentForDebug(*elaborated.mod, icfg);

    sim::StimulusTape tape;
    {
        sim::Simulator recorder(instr.module);
        recorder.recordStimulus(&tape);
        bugs::runWorkload(bug, recorder);
        recorder.recordStimulus(nullptr);
    }
    opts.constants = elaborated.constants;
    return std::make_unique<Engine>(instr.module, std::move(tape), opts);
}

/** A (file, line) of a statement the bug's workload actually executes:
 *  run a scout engine to the end of the tape and pick the first
 *  dynamically covered statement with a real source location. */
hdl::SourceLoc
coveredLineOf(const bugs::TestbedBug &bug)
{
    auto scout = makeBugEngine(bug);
    scout->run();
    const auto &items = scout->coverageItems();
    for (uint32_t id = 0; id < items.statements.size(); ++id) {
        const auto &item = items.statements[id];
        if (scout->coverage().stmtHit(id) && item.loc.line > 0 &&
            !item.loc.file.empty())
            return item.loc;
    }
    return {};
}

} // namespace

TEST(VirtualBpTest, ResolvesAndHitsOnEveryTestbedBug)
{
    for (const auto &bug : bugs::testbedBugs()) {
        SCOPED_TRACE(bug.id);
        hdl::SourceLoc loc = coveredLineOf(bug);
        ASSERT_GT(loc.line, 0) << bug.id;

        auto engine = makeBugEngine(bug);
        int id = engine->addLineBreakpoint(loc.file,
                                           uint32_t(loc.line), "");
        EXPECT_GT(id, 0);
        auto stop = engine->run();
        ASSERT_EQ(stop.reason, Engine::StopReason::Breakpoint)
            << bug.id << " never hit " << loc.file << ":" << loc.line;
        EXPECT_EQ(stop.breakpoints.size(), 1u);
        EXPECT_EQ(stop.breakpoints[0], id);
    }
}

TEST(VirtualBpTest, EnableConditionGatesTheHit)
{
    auto engine = makeCounterEngine(50);
    // Line 2 is the counter's always statement; only stop once the
    // condition holds, not on the first execution.
    int id = engine->addLineBreakpoint("<input>", 2, "count >= 3");
    auto stop = engine->run();
    ASSERT_EQ(stop.reason, Engine::StopReason::Breakpoint);
    EXPECT_EQ(stop.breakpoints[0], id);
    EXPECT_EQ(engine->evalNow("count").toU64(), 3u);
}

TEST(VirtualBpTest, BasenameRequestMatchesPathlessFiles)
{
    auto engine = makeCounterEngine(4);
    // The parsed file is "<input>"; a request with no path separator
    // must also resolve via basename comparison.
    auto ids = resolveLineStmts(engine->coverageItems(), "<input>", 2);
    EXPECT_FALSE(ids.empty());
    auto missing =
        resolveLineStmts(engine->coverageItems(), "other.v", 2);
    EXPECT_TRUE(missing.empty());
}

TEST(VirtualBpTest, UnresolvableLocationRaises)
{
    auto engine = makeCounterEngine(4);
    EXPECT_THROW(engine->addLineBreakpoint("<input>", 999, ""),
                 HdlError);
    EXPECT_THROW(engine->addLineBreakpoint("missing.v", 2, ""),
                 HdlError);
    // A malformed enable condition fails at creation, not at hit time.
    EXPECT_THROW(engine->addLineBreakpoint("<input>", 2, "count +"),
                 HdlError);
}

TEST(VirtualBpTest, RebaseAfterTimeTravelPreventsSpuriousHits)
{
    auto engine = makeCounterEngine(50);
    int id = engine->addLineBreakpoint("<input>", 2, "count == 5");
    auto stop = engine->run();
    ASSERT_EQ(stop.reason, Engine::StopReason::Breakpoint);
    uint64_t hitCycle = engine->cycle();

    // Travelling backwards re-baselines the execution counters: the
    // replay itself must not count as new executions...
    auto back = engine->gotoCycle(hitCycle - 3);
    EXPECT_TRUE(back.breakpoints.empty());
    EXPECT_EQ(engine->cycle(), hitCycle - 3);

    // ...but running forward again re-fires at the same place.
    auto again = engine->run();
    ASSERT_EQ(again.reason, Engine::StopReason::Breakpoint);
    EXPECT_EQ(again.breakpoints[0], id);
    EXPECT_EQ(engine->cycle(), hitCycle);
}

TEST(VirtualBpTest, LineBreakpointsWorkOnBothBackends)
{
    for (const char *name : {"interp", "bytecode"}) {
        SCOPED_TRACE(name);
        EngineOptions opts;
        if (std::string(name) == "bytecode")
            opts.backend = compile::makeBytecodeBackend();
        auto engine = makeCounterEngine(50, opts);
        int id = engine->addLineBreakpoint("<input>", 2, "count == 7");
        auto stop = engine->run();
        ASSERT_EQ(stop.reason, Engine::StopReason::Breakpoint);
        EXPECT_EQ(stop.breakpoints[0], id);
        EXPECT_EQ(engine->evalNow("count").toU64(), 7u);
    }
}
