/**
 * @file
 * Live recording inside a debug session: record start/stop/dump over
 * the engine, double-start rejection, and the time-travel guarantee —
 * reverse-stepping through recorded history and re-stepping forward
 * yields the same dump as a straight run (no duplicated, no dropped
 * change rows).
 */

#include <gtest/gtest.h>

#include <memory>

#include "common/logging.hh"
#include "debug/engine.hh"
#include "elab/elaborate.hh"
#include "hdl/parser.hh"
#include "trace/json.hh"

using namespace hwdbg;
using namespace hwdbg::debug;

namespace
{

const char *kCounter =
    "module m(input wire clk, output reg [7:0] count);\n"
    "always @(posedge clk) count <= count + 1;\nendmodule";

sim::StimulusTape
clockTape(int cycles)
{
    sim::StimulusTape tape;
    for (int i = 0; i < cycles; ++i) {
        sim::StimulusStep low, high;
        low.pokes.emplace_back("clk", Bits(1, 0));
        high.pokes.emplace_back("clk", Bits(1, 1));
        tape.steps.push_back(low);
        tape.steps.push_back(high);
    }
    return tape;
}

std::unique_ptr<Engine>
makeCounterEngine(int cycles, EngineOptions opts = {})
{
    hdl::Design design = hdl::parse(kCounter);
    return std::make_unique<Engine>(elab::elaborate(design, "m").mod,
                                    clockTape(cycles), opts);
}

trace::TraceConfig
countConfig()
{
    trace::TraceConfig cfg;
    cfg.signals = {"count"};
    cfg.budgetBytes = 1 << 12;
    return cfg;
}

} // namespace

TEST(RecordTest, StartStepStopDump)
{
    auto eng = makeCounterEngine(20);
    EXPECT_FALSE(eng->recording());
    eng->recordStart(countConfig());
    EXPECT_TRUE(eng->recording());

    eng->stepCycles(8);
    eng->recordStop();
    EXPECT_FALSE(eng->recording());

    trace::TraceDump dump = eng->recordDump();
    EXPECT_EQ(dump.workload, "debug:m");
    EXPECT_FALSE(dump.rows.empty());
    EXPECT_EQ(dump.rows.back().values[0].toU64(),
              eng->evalNow("count").toU64());
    // Stepping past the stop point must not extend the capture.
    size_t rows = dump.rows.size();
    eng->stepCycles(4);
    EXPECT_EQ(eng->recordDump().rows.size(), rows);
}

TEST(RecordTest, DoubleStartAndEmptyDumpAreErrors)
{
    auto eng = makeCounterEngine(10);
    EXPECT_THROW(eng->recordDump(), HdlError);
    eng->recordStart(countConfig());
    EXPECT_THROW(eng->recordStart(countConfig()), HdlError);
    eng->recordStop();
    EXPECT_THROW(eng->recordStop(), HdlError);
}

TEST(RecordTest, TimeTravelDoesNotDuplicateOrDropRows)
{
    // Straight-line reference.
    auto ref = makeCounterEngine(20);
    ref->recordStart(countConfig());
    ref->stepCycles(10);
    ref->recordStop();
    std::string want = trace::toJson(ref->recordDump());

    // Same tape, but travel backwards through recorded history and
    // forward again before stopping; replayed evals must be skipped.
    auto eng = makeCounterEngine(20);
    eng->recordStart(countConfig());
    eng->stepCycles(10);
    eng->reverseStep(5);
    EXPECT_EQ(eng->cycle(), 5u);
    eng->stepCycles(5);
    eng->recordStop();
    EXPECT_EQ(trace::toJson(eng->recordDump()), want);
}
