/**
 * @file
 * Breakpoint semantics: expression edges, watchpoints on multi-bit
 * registers, event matching, and baseline rebasing after time travel.
 */

#include <gtest/gtest.h>

#include <memory>

#include "debug/engine.hh"
#include "elab/elaborate.hh"
#include "hdl/parser.hh"

using namespace hwdbg;
using namespace hwdbg::debug;

namespace
{

const char *kCounter =
    "module m(input wire clk, output reg [7:0] count);\n"
    "always @(posedge clk) count <= count + 1;\nendmodule";

/** A tape of @p cycles clock ticks (two evals per tick). */
sim::StimulusTape
clockTape(int cycles)
{
    sim::StimulusTape tape;
    for (int i = 0; i < cycles; ++i) {
        sim::StimulusStep low, high;
        low.pokes.emplace_back("clk", Bits(1, 0));
        high.pokes.emplace_back("clk", Bits(1, 1));
        tape.steps.push_back(low);
        tape.steps.push_back(high);
    }
    return tape;
}

std::unique_ptr<Engine>
makeEngine(const std::string &src, int cycles,
           EngineOptions opts = {})
{
    hdl::Design design = hdl::parse(src);
    return std::make_unique<Engine>(elab::elaborate(design, "m").mod,
                                    clockTape(cycles), opts);
}

} // namespace

TEST(BreakpointTest, ExpressionBreakFiresOnRisingEdgeOnly)
{
    auto eng = makeEngine(kCounter, 10);
    int id = eng->breakpoints().add(Breakpoint::Kind::Expr, "count == 3",
                                    eng->parseExpr("count == 3"),
                                    eng->sim().context());
    auto stop = eng->run();
    ASSERT_EQ(stop.reason, Engine::StopReason::Breakpoint);
    EXPECT_EQ(stop.breakpoints, std::vector<int>{id});
    EXPECT_EQ(eng->evalNow("count").toU64(), 3u);
    uint64_t hitCycle = eng->cycle();

    // The condition stays true through the low phase of the next tick;
    // edge semantics must not re-trigger until it goes false and back.
    stop = eng->run();
    EXPECT_EQ(stop.reason, Engine::StopReason::EndOfTape);
    EXPECT_GT(eng->cycle(), hitCycle);
    EXPECT_EQ(eng->breakpoints().find(id)->hits, 1u);
}

TEST(BreakpointTest, StickyConditionFiresOnce)
{
    auto eng = makeEngine(kCounter, 10);
    eng->breakpoints().add(Breakpoint::Kind::Expr, "count >= 3",
                           eng->parseExpr("count >= 3"),
                           eng->sim().context());
    auto stop = eng->run();
    ASSERT_EQ(stop.reason, Engine::StopReason::Breakpoint);
    EXPECT_EQ(eng->evalNow("count").toU64(), 3u);
    // >= stays true for the rest of the run: no second stop.
    stop = eng->run();
    EXPECT_EQ(stop.reason, Engine::StopReason::EndOfTape);
}

TEST(BreakpointTest, BreakMissRunsToEnd)
{
    auto eng = makeEngine(kCounter, 5);
    eng->breakpoints().add(Breakpoint::Kind::Expr, "count == 99",
                           eng->parseExpr("count == 99"),
                           eng->sim().context());
    auto stop = eng->run();
    EXPECT_EQ(stop.reason, Engine::StopReason::EndOfTape);
    EXPECT_EQ(eng->cycle(), 5u);
}

TEST(BreakpointTest, WatchpointOnMultiBitRegister)
{
    auto eng = makeEngine(kCounter, 5);
    int id = eng->breakpoints().add(Breakpoint::Kind::Watch, "count",
                                    eng->parseExpr("count"),
                                    eng->sim().context());
    // The 8-bit register changes once per clock tick: 5 stops.
    for (uint64_t expect = 1; expect <= 5; ++expect) {
        auto stop = eng->run();
        ASSERT_EQ(stop.reason, Engine::StopReason::Breakpoint)
            << "at expected value " << expect;
        EXPECT_EQ(stop.breakpoints, std::vector<int>{id});
        EXPECT_EQ(eng->evalNow("count").toU64(), expect);
    }
    EXPECT_EQ(eng->run().reason, Engine::StopReason::EndOfTape);
    EXPECT_EQ(eng->breakpoints().find(id)->hits, 5u);
}

TEST(BreakpointTest, WatchExpressionNotJustSignals)
{
    auto eng = makeEngine(kCounter, 8);
    // Watch a derived expression: bit 2 of the counter.
    eng->breakpoints().add(Breakpoint::Kind::Watch, "count[2]",
                           eng->parseExpr("count[2]"),
                           eng->sim().context());
    auto stop = eng->run();
    ASSERT_EQ(stop.reason, Engine::StopReason::Breakpoint);
    EXPECT_EQ(eng->evalNow("count").toU64(), 4u);
}

TEST(BreakpointTest, DisabledBreakpointDoesNotFire)
{
    auto eng = makeEngine(kCounter, 6);
    int id = eng->breakpoints().add(Breakpoint::Kind::Expr, "count == 2",
                                    eng->parseExpr("count == 2"),
                                    eng->sim().context());
    ASSERT_TRUE(eng->breakpoints().setEnabled(id, false));
    EXPECT_EQ(eng->run().reason, Engine::StopReason::EndOfTape);
    EXPECT_EQ(eng->breakpoints().find(id)->hits, 0u);
    EXPECT_FALSE(eng->breakpoints().remove(id + 1));
    EXPECT_TRUE(eng->breakpoints().remove(id));
}

TEST(BreakpointTest, RebaseAfterTimeTravelPreventsSpuriousHit)
{
    auto eng = makeEngine(kCounter, 10);
    // Travel forward past count==4, then backwards before it; the
    // breakpoint must fire again on the re-approach, not on arrival.
    eng->gotoCycle(6);
    int id = eng->breakpoints().add(Breakpoint::Kind::Expr, "count == 4",
                                    eng->parseExpr("count == 4"),
                                    eng->sim().context());
    auto stop = eng->gotoCycle(2);
    EXPECT_EQ(stop.reason, Engine::StopReason::None);
    EXPECT_EQ(eng->breakpoints().find(id)->hits, 0u);
    stop = eng->run();
    ASSERT_EQ(stop.reason, Engine::StopReason::Breakpoint);
    EXPECT_EQ(stop.breakpoints, std::vector<int>{id});
    EXPECT_EQ(eng->evalNow("count").toU64(), 4u);
}

TEST(BreakpointTest, EventKeyAndCategoryMatching)
{
    sim::EvalContext *nullctx = nullptr;
    (void)nullctx;
    BreakpointSet set;
    // Event breakpoints never evaluate expressions, so a context is
    // only needed for baselines of Expr/Watch kinds; reuse a dummy
    // design-backed context via a tiny engine.
    auto eng = makeEngine(kCounter, 1);
    auto &ctx = eng->sim().context();
    int exact = set.add(Breakpoint::Kind::Event, "fsm:ctrl", nullptr, ctx);
    int cat = set.add(Breakpoint::Kind::Event, "loss", nullptr, ctx);

    std::vector<DebugEvent> events = {{"fsm:ctrl", 3, ""}};
    auto fired = set.check(ctx, events);
    EXPECT_EQ(fired, std::vector<int>{exact});

    events = {{"loss:memd", 4, ""}};
    fired = set.check(ctx, events);
    EXPECT_EQ(fired, std::vector<int>{cat});

    // "fsm:ctrl" must not match "fsm:ctrl_state" nor category "fs".
    events = {{"fsm:ctrl_state", 5, ""}};
    EXPECT_TRUE(set.check(ctx, events).empty());
    int fs = set.add(Breakpoint::Kind::Event, "fs", nullptr, ctx);
    events = {{"fsm:ctrl", 6, ""}};
    fired = set.check(ctx, events);
    EXPECT_EQ(fired, std::vector<int>{exact});
    (void)fs;
}
