/**
 * @file
 * Tests for the static lint: one firing and one clean fixture per
 * rule, the diagnostic renderers, rule selection, and the testbed
 * integration claims the lint_effectiveness bench relies on.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "bugbase/testbed.hh"
#include "common/logging.hh"
#include "elab/elaborate.hh"
#include "hdl/parser.hh"
#include "lint/lint.hh"

using namespace hwdbg;
using namespace hwdbg::lint;

namespace
{

std::vector<Diagnostic>
lintSrc(const std::string &src, const std::string &rule = "",
        const std::string &top = "m")
{
    auto mod = elab::elaborate(hdl::parse(src), top).mod;
    LintOptions opts;
    if (!rule.empty())
        opts.rules.insert(rule);
    return runLint(*mod, opts);
}

bool
fires(const std::string &src, const std::string &rule)
{
    return !lintSrc(src, rule).empty();
}

} // namespace

TEST(LintRegistryTest, RulesAreRegisteredAndUnique)
{
    const auto &rules = lintRules();
    EXPECT_GE(rules.size(), 8u);
    std::set<std::string> ids;
    for (const auto &rule : rules) {
        EXPECT_TRUE(ids.insert(rule.id).second)
            << "duplicate rule id " << rule.id;
        EXPECT_FALSE(rule.subclass.empty()) << rule.id;
        EXPECT_NE(rule.check, nullptr) << rule.id;
        EXPECT_EQ(ruleById(rule.id), &rule);
    }
    EXPECT_EQ(ruleById("no-such-rule"), nullptr);
}

TEST(LintRegistryTest, UnknownRuleSelectionFails)
{
    LintOptions opts;
    opts.rules.insert("no-such-rule");
    auto mod = elab::elaborate(
        hdl::parse("module m(input wire clk);\nendmodule"), "m").mod;
    EXPECT_THROW(runLint(*mod, opts), HdlError);
}

TEST(LintRuleTest, IncompleteCase)
{
    const char *pos =
        "module m(input wire [1:0] s, output reg y);\n"
        "always @* begin\n"
        "  y = 1'b0;\n"
        "  case (s)\n"
        "    2'd0: y = 1'b1;\n"
        "    2'd1: y = 1'b0;\n"
        "  endcase\nend\nendmodule";
    const char *neg =
        "module m(input wire [1:0] s, output reg y);\n"
        "always @* begin\n"
        "  case (s)\n"
        "    2'd0: y = 1'b1;\n"
        "    default: y = 1'b0;\n"
        "  endcase\nend\nendmodule";
    EXPECT_TRUE(fires(pos, "incomplete-case"));
    EXPECT_FALSE(fires(neg, "incomplete-case"));
}

TEST(LintRuleTest, IncompleteCaseFullCoverageIsClean)
{
    const char *full =
        "module m(input wire [0:0] s, output reg y);\n"
        "always @* begin\n"
        "  case (s)\n"
        "    1'd0: y = 1'b1;\n"
        "    1'd1: y = 1'b0;\n"
        "  endcase\nend\nendmodule";
    EXPECT_FALSE(fires(full, "incomplete-case"));
}

TEST(LintRuleTest, InferredLatch)
{
    const char *pos =
        "module m(input wire en, input wire d, output reg y);\n"
        "always @* if (en) y = d;\nendmodule";
    const char *neg =
        "module m(input wire en, input wire d, output reg y);\n"
        "always @* if (en) y = d; else y = 1'b0;\nendmodule";
    EXPECT_TRUE(fires(pos, "inferred-latch"));
    EXPECT_FALSE(fires(neg, "inferred-latch"));
}

TEST(LintRuleTest, BlockingInSeq)
{
    const char *pos =
        "module m(input wire clk, input wire d, output reg q);\n"
        "always @(posedge clk) q = d;\nendmodule";
    const char *neg =
        "module m(input wire clk, input wire d, output reg q);\n"
        "always @(posedge clk) q <= d;\nendmodule";
    EXPECT_TRUE(fires(pos, "blocking-in-seq"));
    EXPECT_FALSE(fires(neg, "blocking-in-seq"));
}

TEST(LintRuleTest, NonblockingInComb)
{
    const char *pos =
        "module m(input wire d, output reg y);\n"
        "always @* y <= d;\nendmodule";
    const char *neg =
        "module m(input wire d, output reg y);\n"
        "always @* y = d;\nendmodule";
    EXPECT_TRUE(fires(pos, "nonblocking-in-comb"));
    EXPECT_FALSE(fires(neg, "nonblocking-in-comb"));
}

TEST(LintRuleTest, WidthTruncation)
{
    const char *pos =
        "module m(input wire clk, input wire [7:0] d, "
        "output reg [3:0] q);\n"
        "always @(posedge clk) q <= d;\nendmodule";
    const char *neg =
        "module m(input wire clk, input wire [7:0] d, "
        "output reg [3:0] q);\n"
        "always @(posedge clk) q <= d[3:0];\nendmodule";
    EXPECT_TRUE(fires(pos, "width-trunc"));
    EXPECT_FALSE(fires(neg, "width-trunc"));
}

TEST(LintRuleTest, WidthTruncationIgnoresArithmetic)
{
    // Arithmetic is context-determined; `cnt + 1` must not be treated
    // as wider than cnt.
    const char *src =
        "module m(input wire clk, output reg [3:0] cnt);\n"
        "always @(posedge clk) cnt <= cnt + 1;\nendmodule";
    EXPECT_FALSE(fires(src, "width-trunc"));
}

TEST(LintRuleTest, MultiDriven)
{
    const char *pos =
        "module m(input wire clk, input wire a, input wire b, "
        "output reg q);\n"
        "always @(posedge clk) q <= a;\n"
        "always @(posedge clk) q <= b;\nendmodule";
    const char *neg =
        "module m(input wire clk, input wire a, output reg q);\n"
        "always @(posedge clk) q <= a;\nendmodule";
    EXPECT_TRUE(fires(pos, "multi-driven"));
    EXPECT_FALSE(fires(neg, "multi-driven"));
}

TEST(LintRuleTest, CombLoop)
{
    const char *pos =
        "module m(input wire d, output wire y);\n"
        "wire a;\nwire b;\n"
        "assign a = b & d;\nassign b = a;\nassign y = a;\nendmodule";
    const char *neg =
        "module m(input wire d, output wire y);\n"
        "wire a;\nassign a = d;\nassign y = a;\nendmodule";
    auto diags = lintSrc(pos, "comb-loop");
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].severity, Severity::Error);
    EXPECT_EQ(diags[0].signals,
              (std::vector<std::string>{"a", "b"}));
    EXPECT_FALSE(fires(neg, "comb-loop"));
}

TEST(LintRuleTest, CombSelfLoop)
{
    const char *pos =
        "module m(input wire d, output wire y);\n"
        "wire a;\nassign a = a | d;\nassign y = a;\nendmodule";
    EXPECT_TRUE(fires(pos, "comb-loop"));
}

TEST(LintRuleTest, Undriven)
{
    const char *pos =
        "module m(input wire clk, output reg q);\n"
        "wire u;\n"
        "always @(posedge clk) q <= u;\nendmodule";
    const char *neg =
        "module m(input wire clk, input wire d, output reg q);\n"
        "wire u;\nassign u = d;\n"
        "always @(posedge clk) q <= u;\nendmodule";
    EXPECT_TRUE(fires(pos, "undriven"));
    EXPECT_FALSE(fires(neg, "undriven"));
}

TEST(LintRuleTest, UndrivenOutputPort)
{
    const char *pos =
        "module m(input wire clk, output wire y);\nendmodule";
    EXPECT_TRUE(fires(pos, "undriven"));
}

TEST(LintRuleTest, UnusedSignal)
{
    const char *pos =
        "module m(input wire clk, input wire d, output wire y);\n"
        "reg x;\n"
        "always @(posedge clk) x <= d;\n"
        "assign y = d;\nendmodule";
    const char *neg =
        "module m(input wire clk, input wire d, output wire y);\n"
        "reg x;\n"
        "always @(posedge clk) x <= d;\n"
        "assign y = x;\nendmodule";
    EXPECT_TRUE(fires(pos, "unused-signal"));
    EXPECT_FALSE(fires(neg, "unused-signal"));
}

TEST(LintRuleTest, UnusedInput)
{
    const char *pos =
        "module m(input wire clk, input wire d, output reg q);\n"
        "always @(posedge clk) q <= 1'b0;\nendmodule";
    const char *neg =
        "module m(input wire clk, input wire d, output reg q);\n"
        "always @(posedge clk) q <= d;\nendmodule";
    auto diags = lintSrc(pos, "unused-input");
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].signals,
              (std::vector<std::string>{"d"})); // clk is exempt
    EXPECT_FALSE(fires(neg, "unused-input"));
}

TEST(LintRuleTest, FifoNoBackpressure)
{
    const char *tmpl =
        "module m(input wire clk, input wire rst, input wire vld,\n"
        "         input wire [7:0] d, input wire pop,\n"
        "         output wire [7:0] q, output wire e);\n"
        "wire f;\n"
        "wire push = %s;\n"
        "scfifo #(.WIDTH(8), .DEPTH(4)) u_f (\n"
        "  .clock(clk), .sclr(rst), .data(d), .wrreq(push),\n"
        "  .rdreq(pop), .q(q), .empty(e), .full(f)\n"
        ");\nendmodule";
    std::string pos = csprintf(tmpl, "vld");
    std::string neg = csprintf(tmpl, "vld && !f");
    auto diags = lintSrc(pos, "fifo-no-backpressure");
    // wrreq ignores full; rdreq(pop) also never consults empty.
    ASSERT_GE(diags.size(), 1u);
    EXPECT_EQ(diags[0].severity, Severity::Error);
    auto negDiags = lintSrc(neg, "fifo-no-backpressure");
    for (const auto &diag : negDiags)
        EXPECT_EQ(diag.message.find("'wrreq'"), std::string::npos)
            << diag.message;
}

TEST(LintRuleTest, FsmUnreachable)
{
    const char *tmpl =
        "module m(input wire clk, input wire rst, input wire go,\n"
        "         output reg [1:0] state);\n"
        "always @(posedge clk) begin\n"
        "  if (rst) state <= 2'd0;\n"
        "  else case (state)\n"
        "    2'd0: if (go) state <= 2'd1;\n"
        "    2'd1: state <= %s;\n"
        "    2'd2: state <= 2'd0;\n"
        "  endcase\nend\nendmodule";
    std::string pos = csprintf(tmpl, "2'd0"); // nothing reaches 2'd2
    std::string neg = csprintf(tmpl, "2'd2");
    auto diags = lintSrc(pos, "fsm-unreachable");
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_NE(diags[0].message.find("2'd2"), std::string::npos);
    EXPECT_FALSE(fires(neg, "fsm-unreachable"));
}

TEST(LintRuleTest, FsmNoExit)
{
    const char *tmpl =
        "module m(input wire clk, input wire rst, input wire go,\n"
        "         output reg [1:0] state);\n"
        "always @(posedge clk) begin\n"
        "  if (rst) state <= 2'd0;\n"
        "  else case (state)\n"
        "    2'd0: if (go) state <= 2'd1;\n"
        "    2'd1: state <= 2'd2;\n"
        "    2'd2: state <= %s;\n"
        "  endcase\nend\nendmodule";
    std::string pos = csprintf(tmpl, "2'd2"); // 2'd2 is a trap state
    std::string neg = csprintf(tmpl, "2'd0");
    auto diags = lintSrc(pos, "fsm-no-exit");
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_NE(diags[0].message.find("2'd2"), std::string::npos);
    EXPECT_FALSE(fires(neg, "fsm-no-exit"));
}

TEST(LintRuleTest, StickyFlag)
{
    const char *tmpl =
        "module m(input wire clk, input wire rst, input wire in,\n"
        "         input wire clr, output wire y);\n"
        "reg flag;\n"
        "always @(posedge clk) begin\n"
        "  if (rst) flag <= 1'b0;\n"
        "  else if (in) flag <= 1'b1;\n"
        "%s"
        "end\n"
        "assign y = flag;\nendmodule";
    std::string pos = csprintf(tmpl, "");
    std::string neg = csprintf(tmpl, "  else if (clr) flag <= 1'b0;\n");
    EXPECT_TRUE(fires(pos, "sticky-flag"));
    EXPECT_FALSE(fires(neg, "sticky-flag"));
}

TEST(LintRuleTest, EnableDeadlock)
{
    const char *tmpl =
        "module m(input wire clk, input wire rst, input wire go,\n"
        "         output wire y);\n"
        "reg a_go;\nreg b_go;\n"
        "always @(posedge clk) begin\n"
        "  if (rst) begin a_go <= %s; b_go <= 1'b0; end\n"
        "  else begin\n"
        "    if (go && b_go) a_go <= 1'b1;\n"
        "    if (a_go) b_go <= 1'b1;\n"
        "    if (a_go && b_go) begin a_go <= 1'b0; b_go <= 1'b0; end\n"
        "  end\nend\n"
        "assign y = a_go ^ b_go;\nendmodule";
    std::string pos = csprintf(tmpl, "1'b0");
    std::string neg = csprintf(tmpl, "1'b1"); // a_go starts asserted
    auto diags = lintSrc(pos, "enable-deadlock");
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].severity, Severity::Error);
    EXPECT_FALSE(fires(neg, "enable-deadlock"));
}

TEST(LintRuleTest, HandshakeDrop)
{
    const char *tmpl =
        "module m(input wire clk, input wire rst, input wire fire,\n"
        "         input wire m_ready, output reg m_valid);\n"
        "always @(posedge clk) begin\n"
        "  if (rst) m_valid <= 1'b0;\n"
        "  else if (fire) m_valid <= 1'b1;\n"
        "  else %sm_valid <= 1'b0;\n"
        "end\nendmodule";
    std::string pos = csprintf(tmpl, "");
    std::string neg = csprintf(tmpl, "if (m_ready) ");
    EXPECT_TRUE(fires(pos, "handshake-drop"));
    EXPECT_FALSE(fires(neg, "handshake-drop"));
}

TEST(LintRuleTest, HandshakeUnstable)
{
    const char *tmpl =
        "module m(input wire clk, input wire rst, input wire [7:0] d,\n"
        "         input wire m_ready, output reg m_valid,\n"
        "         output reg [7:0] m_data);\n"
        "always @(posedge clk) begin\n"
        "  if (rst) begin m_valid <= 1'b0; m_data <= 8'd0; end\n"
        "  else if (m_valid%s) m_data <= d;\n"
        "end\nendmodule";
    std::string pos = csprintf(tmpl, "");
    std::string neg = csprintf(tmpl, " && m_ready");
    EXPECT_TRUE(fires(pos, "handshake-unstable"));
    EXPECT_FALSE(fires(neg, "handshake-unstable"));
}

TEST(LintRenderTest, TextFormat)
{
    Diagnostic diag;
    diag.rule = "sticky-flag";
    diag.severity = Severity::Warning;
    diag.subclass = "Failure-to-Update";
    diag.loc = hdl::SourceLoc{"top.v", 21, 5};
    diag.message = "flag 'drop' is never cleared";
    diag.signals = {"drop"};
    std::string text = renderText({diag});
    EXPECT_EQ(text,
              "top.v:21:5: warning: flag 'drop' is never cleared "
              "[sticky-flag] {drop}\n");
}

TEST(LintRenderTest, JsonFormatAndEscaping)
{
    Diagnostic diag;
    diag.rule = "multi-driven";
    diag.severity = Severity::Error;
    diag.subclass = "Signal Asynchrony";
    diag.loc = hdl::SourceLoc{"a\"b.v", 3, 1};
    diag.message = "line1\nline2";
    diag.signals = {"x", "y"};
    std::string json = renderJson({diag});
    EXPECT_NE(json.find("\"rule\": \"multi-driven\""),
              std::string::npos);
    EXPECT_NE(json.find("\"severity\": \"error\""), std::string::npos);
    EXPECT_NE(json.find("a\\\"b.v"), std::string::npos);
    EXPECT_NE(json.find("line1\\nline2"), std::string::npos);
    EXPECT_NE(json.find("[\"x\", \"y\"]"), std::string::npos);
    // Empty list renders as a valid empty array.
    EXPECT_EQ(renderJson({}), "[\n]\n");
}

TEST(LintRenderTest, DiagnosticsAreSortedByLocation)
{
    const char *src =
        "module m(input wire clk, input wire d, output wire y);\n"
        "reg x;\nreg w;\n"
        "always @(posedge clk) begin x <= d; w <= d; end\n"
        "assign y = d;\nendmodule";
    auto diags = lintSrc(src, "unused-signal");
    ASSERT_EQ(diags.size(), 2u);
    EXPECT_LT(diags[0].loc.line, diags[1].loc.line);
}

TEST(LintRuleSelectionTest, FilterRestrictsRules)
{
    // Fixture trips both unused-signal and blocking-in-seq.
    const char *src =
        "module m(input wire clk, input wire d, output wire y);\n"
        "reg x;\n"
        "always @(posedge clk) x = d;\n"
        "assign y = d;\nendmodule";
    auto all = lintSrc(src);
    auto only = lintSrc(src, "blocking-in-seq");
    EXPECT_GT(all.size(), only.size());
    ASSERT_EQ(only.size(), 1u);
    EXPECT_EQ(only[0].rule, "blocking-in-seq");
    for (const auto &diag : all)
        EXPECT_NE(ruleById(diag.rule), nullptr);
}

namespace
{

std::multiset<std::string>
testbedRules(const char *id, bool buggy)
{
    const auto &bug = bugs::bugById(id);
    auto elaborated = bugs::buildDesign(bug, buggy);
    std::multiset<std::string> rules;
    for (const auto &diag : runLint(*elaborated.mod))
        rules.insert(diag.rule);
    return rules;
}

} // namespace

TEST(LintTestbedTest, DetectsStructuralBugsBuggyOnly)
{
    // The claims the lint_effectiveness bench and cli smoke test rest
    // on: each of these rules fires on the buggy form and not on the
    // fixed form of the same design.
    const struct { const char *id; const char *rule; } expected[] = {
        {"D3", "fifo-no-backpressure"},
        {"D4", "unused-signal"},
        {"D11", "sticky-flag"},
        {"C1", "enable-deadlock"},
        {"C3", "unused-signal"},
        {"S1", "handshake-drop"},
        {"S2", "handshake-unstable"},
        {"S3", "unused-input"},
    };
    for (const auto &claim : expected) {
        EXPECT_TRUE(testbedRules(claim.id, true).count(claim.rule))
            << claim.id << " buggy should trip " << claim.rule;
        EXPECT_FALSE(testbedRules(claim.id, false).count(claim.rule))
            << claim.id << " fixed should not trip " << claim.rule;
    }
}

TEST(LintTestbedTest, FixedFrameFifoIsClean)
{
    EXPECT_TRUE(testbedRules("D4", false).empty());
}
