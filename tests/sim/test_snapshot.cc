/**
 * @file
 * Snapshot determinism: the load-bearing guarantee for time travel.
 *
 * For every testbed bug: record the trigger workload as a stimulus
 * tape, replay to the halfway point, saveState(), continue to the end
 * capturing the final peek state / $display log / VCD tail, then
 * restoreState() and re-run the same tail — everything must be
 * bit-identical. Also unit-checks save/restore around the primitive
 * models (FIFO queues, RAM words, recorder buffers) and the pending
 * NBA queue, since those are the states a naive snapshot would miss.
 */

#include <gtest/gtest.h>

#include <memory>

#include "bugbase/testbed.hh"
#include "bugbase/workloads.hh"
#include "common/logging.hh"
#include "hdl/parser.hh"
#include "elab/elaborate.hh"
#include "sim/simulator.hh"
#include "trace/vcd.hh"

using namespace hwdbg;
using namespace hwdbg::sim;

namespace
{

std::unique_ptr<Simulator>
makeSim(const std::string &src, const std::string &top = "m")
{
    hdl::Design design = hdl::parse(src);
    return std::make_unique<Simulator>(elab::elaborate(design, top).mod);
}

void
tick(Simulator &sim, int n = 1)
{
    for (int i = 0; i < n; ++i) {
        sim.poke("clk", uint64_t(0));
        sim.eval();
        sim.poke("clk", uint64_t(1));
        sim.eval();
    }
}

/** Every externally-visible piece of simulator state. */
struct StateDump
{
    std::vector<Bits> values;
    std::vector<std::vector<Bits>> arrays;
    uint64_t cycle = 0;
    bool finished = false;
    std::vector<std::string> log;

    bool operator==(const StateDump &rhs) const
    {
        return values == rhs.values && arrays == rhs.arrays &&
               cycle == rhs.cycle && finished == rhs.finished &&
               log == rhs.log;
    }
};

StateDump
dumpState(Simulator &sim)
{
    StateDump dump;
    dump.values = sim.context().values;
    dump.arrays = sim.context().arrays;
    dump.cycle = sim.cycle();
    dump.finished = sim.finished();
    for (const auto &line : sim.log())
        dump.log.push_back(std::to_string(line.cycle) + ":" + line.text);
    return dump;
}

/** Replay tape[from, to) while sampling a VCD; returns the rendered
 *  dump of that tail. */
std::string
replayTail(Simulator &sim, const StimulusTape &tape, size_t from,
           size_t to)
{
    trace::VcdRecorder vcd(sim);
    for (size_t i = from; i < to; ++i) {
        sim.applyStep(tape.steps[i]);
        vcd.sample(i);
    }
    return vcd.render();
}

} // namespace

TEST(SnapshotTest, SaveRestoreIsDeterministicOnEveryTestbedBug)
{
    for (const auto &bug : bugs::testbedBugs()) {
        SCOPED_TRACE(bug.id);
        auto elaborated = bugs::buildDesign(bug, true);

        StimulusTape tape;
        {
            Simulator recorder(elaborated.mod);
            recorder.recordStimulus(&tape);
            bugs::runWorkload(bug, recorder);
            recorder.recordStimulus(nullptr);
        }
        ASSERT_GT(tape.steps.size(), 2u);
        size_t k = tape.steps.size() / 2;

        Simulator sim(elaborated.mod);
        for (size_t i = 0; i < k; ++i)
            sim.applyStep(tape.steps[i]);
        SimSnapshot snap = sim.saveState();
        StateDump atK = dumpState(sim);

        std::string vcdFirst =
            replayTail(sim, tape, k, tape.steps.size());
        StateDump atEndFirst = dumpState(sim);

        sim.restoreState(snap);
        EXPECT_TRUE(dumpState(sim) == atK)
            << "restore did not reproduce the state at step " << k;

        std::string vcdSecond =
            replayTail(sim, tape, k, tape.steps.size());
        StateDump atEndSecond = dumpState(sim);

        EXPECT_TRUE(atEndFirst == atEndSecond)
            << "replayed tail diverged from the original run";
        EXPECT_EQ(vcdFirst, vcdSecond)
            << "VCD tails differ after restore";
    }
}

TEST(SnapshotTest, RestoreRejectsForeignDesign)
{
    auto a = makeSim(
        "module m(input wire clk, output reg [7:0] count);\n"
        "always @(posedge clk) count <= count + 1;\nendmodule");
    auto b = makeSim(
        "module m(input wire clk, input wire [3:0] d,\n"
        "         output reg [3:0] q, output reg [3:0] r);\n"
        "always @(posedge clk) begin q <= d; r <= q; end\nendmodule");
    SimSnapshot snap = a->saveState();
    EXPECT_THROW(b->restoreState(snap), HdlError);
}

TEST(SnapshotTest, PrimitiveStateRoundTrips)
{
    // An scfifo holds queued entries that live outside the signal
    // table; a snapshot taken mid-stream must capture them.
    auto sim = makeSim(
        "module m(input wire clk, input wire [7:0] data,\n"
        "         input wire wrreq, input wire rdreq,\n"
        "         output wire [7:0] q, output wire empty,\n"
        "         output wire full);\n"
        "scfifo #(.WIDTH(8), .DEPTH(4)) u_f(\n"
        "  .clock(clk), .sclr(1'b0), .data(data), .wrreq(wrreq),\n"
        "  .rdreq(rdreq), .q(q), .empty(empty), .full(full));\n"
        "endmodule");
    sim->poke("wrreq", uint64_t(1));
    sim->poke("rdreq", uint64_t(0));
    for (uint64_t v = 1; v <= 3; ++v) {
        sim->poke("data", 0x40 + v);
        tick(*sim);
    }
    sim->poke("wrreq", uint64_t(0));
    SimSnapshot snap = sim->saveState();

    auto drain = [&](Simulator &s) {
        std::vector<uint64_t> seen;
        s.poke("rdreq", uint64_t(1));
        for (int i = 0; i < 4; ++i) {
            tick(s);
            seen.push_back(s.peekU64("q"));
        }
        seen.push_back(s.peekU64("empty"));
        return seen;
    };

    auto first = drain(*sim);
    sim->restoreState(snap);
    auto second = drain(*sim);
    EXPECT_EQ(first, second);
}

TEST(SnapshotTest, PendingNbaQueueIsCaptured)
{
    // Snapshot between poke and eval cannot exist (saveState is called
    // at eval boundaries by the engine), but nonblocking assignments
    // pending *within* the eval are committed before eval returns — so
    // a snapshot boundary never splits them. This pins down that a
    // snapshot right after an edge eval resumes identically.
    auto sim = makeSim(
        "module m(input wire clk, input wire [3:0] d,\n"
        "         output reg [3:0] q, output reg [3:0] r);\n"
        "always @(posedge clk) begin q <= d; r <= q; end\nendmodule");
    sim->poke("d", uint64_t(5));
    tick(*sim);
    SimSnapshot snap = sim->saveState();
    sim->poke("d", uint64_t(9));
    tick(*sim);
    uint64_t qAfter = sim->peekU64("q");
    uint64_t rAfter = sim->peekU64("r");

    sim->restoreState(snap);
    EXPECT_EQ(sim->peekU64("q"), 5u);
    sim->poke("d", uint64_t(9));
    tick(*sim);
    EXPECT_EQ(sim->peekU64("q"), qAfter);
    EXPECT_EQ(sim->peekU64("r"), rAfter);
}

TEST(SnapshotTest, TapeRecordsPokesPerEval)
{
    auto sim = makeSim(
        "module m(input wire clk, input wire [7:0] d,\n"
        "         output reg [7:0] q);\n"
        "always @(posedge clk) q <= d;\nendmodule");
    StimulusTape tape;
    sim->recordStimulus(&tape);
    sim->poke("d", uint64_t(7));
    tick(*sim, 2);
    sim->recordStimulus(nullptr);
    // 2 ticks = 4 evals; the first carries the d poke and a clk poke.
    ASSERT_EQ(tape.steps.size(), 4u);
    ASSERT_EQ(tape.steps[0].pokes.size(), 2u);
    EXPECT_EQ(tape.steps[0].pokes[0].first, "d");
    EXPECT_EQ(tape.steps[1].pokes.size(), 1u);
    EXPECT_EQ(tape.steps[1].pokes[0].first, "clk");
    EXPECT_GT(tape.sizeBytes(), 0u);

    // Replaying the tape on a fresh simulator reproduces the run.
    auto replayed = makeSim(
        "module m(input wire clk, input wire [7:0] d,\n"
        "         output reg [7:0] q);\n"
        "always @(posedge clk) q <= d;\nendmodule");
    for (const auto &step : tape.steps)
        replayed->applyStep(step);
    EXPECT_EQ(replayed->peekU64("q"), sim->peekU64("q"));
    EXPECT_EQ(replayed->cycle(), sim->cycle());
}
