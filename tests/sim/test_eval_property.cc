/**
 * @file
 * Property tests pitting the simulator's expression evaluation against
 * the elaborator's constant evaluator on randomly generated expression
 * trees: `assign out = <expr>;` simulated must equal evalConst(<expr>).
 * The two implementations are independent (the simulator implements
 * Verilog's context-width propagation, evalConst a self-determined
 * recursion over Bits). The semantics only coincide when every
 * operator's operands have equal self-determined widths - context
 * propagation is then the identity - so the generator zero-pads the
 * narrower operand of width-max operators. The deliberate divergence
 * on unaligned widths (a carry kept by the wider context) is pinned
 * separately in test_sim.cc.
 */

#include <gtest/gtest.h>

#include <memory>
#include <random>

#include "elab/elaborate.hh"
#include "hdl/parser.hh"
#include "hdl/printer.hh"
#include "sim/simulator.hh"

using namespace hwdbg;
using namespace hwdbg::hdl;

namespace
{

/** Self-determined width of a generated constant expression. */
uint32_t
selfWidth(const ExprPtr &expr)
{
    return elab::evalConst(expr, {}).width();
}

/** Zero-pad @p expr to @p width via {pad'h0, expr}. */
ExprPtr
padTo(ExprPtr expr, uint32_t width)
{
    uint32_t have = selfWidth(expr);
    if (have >= width)
        return expr;
    auto cat = std::make_shared<ConcatExpr>();
    cat->parts.push_back(mkNum(Bits(width - have, 0)));
    cat->parts.push_back(std::move(expr));
    return cat;
}

/** Pad the narrower of two subtrees so both have equal widths. */
void
alignWidths(ExprPtr &lhs, ExprPtr &rhs)
{
    uint32_t w = std::max(selfWidth(lhs), selfWidth(rhs));
    lhs = padTo(std::move(lhs), w);
    rhs = padTo(std::move(rhs), w);
}

/** Random width-aligned constant expression tree of bounded depth. */
ExprPtr
randomExpr(std::mt19937 &rng, int depth)
{
    auto num = [&](uint32_t max_width) {
        uint32_t width = 1 + rng() % max_width;
        Bits value(width, rng());
        return mkNum(value);
    };
    if (depth == 0)
        return num(24);

    switch (rng() % 10) {
      case 0:
        return num(24);
      case 1: {
        static const UnaryOp ops[] = {UnaryOp::Neg, UnaryOp::LogNot,
                                      UnaryOp::BitNot, UnaryOp::RedAnd,
                                      UnaryOp::RedOr, UnaryOp::RedXor};
        return mkUnary(ops[rng() % 6], randomExpr(rng, depth - 1));
      }
      case 2:
      case 3:
      case 4:
      case 5: {
        static const BinaryOp ops[] = {
            BinaryOp::Add, BinaryOp::Sub,    BinaryOp::Mul,
            BinaryOp::BitAnd, BinaryOp::BitOr, BinaryOp::BitXor,
            BinaryOp::LogAnd, BinaryOp::LogOr, BinaryOp::Eq,
            BinaryOp::Ne,  BinaryOp::Lt,     BinaryOp::Le,
            BinaryOp::Gt,  BinaryOp::Ge};
        ExprPtr lhs = randomExpr(rng, depth - 1);
        ExprPtr rhs = randomExpr(rng, depth - 1);
        alignWidths(lhs, rhs);
        return mkBinary(ops[rng() % 14], std::move(lhs),
                        std::move(rhs));
      }
      case 6: {
        // Shifts with a bounded constant amount.
        BinaryOp op = rng() % 2 ? BinaryOp::Shl : BinaryOp::Shr;
        return mkBinary(op, randomExpr(rng, depth - 1),
                        mkNum(Bits(5, rng() % 20)));
      }
      case 7: {
        ExprPtr then_e = randomExpr(rng, depth - 1);
        ExprPtr else_e = randomExpr(rng, depth - 1);
        alignWidths(then_e, else_e);
        return mkTernary(randomExpr(rng, depth - 1),
                         std::move(then_e), std::move(else_e));
      }
      case 8: {
        auto cat = std::make_shared<ConcatExpr>();
        cat->parts.push_back(randomExpr(rng, depth - 1));
        cat->parts.push_back(randomExpr(rng, depth - 1));
        return cat;
      }
      default: {
        auto rep = std::make_shared<RepeatExpr>();
        rep->count = mkNum(Bits(3, 1 + rng() % 3));
        rep->inner = randomExpr(rng, depth - 1);
        return rep;
      }
    }
}

} // namespace

class EvalAgreement : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(EvalAgreement, SimulatorMatchesConstantEvaluator)
{
    std::mt19937 rng(GetParam());
    for (int trial = 0; trial < 60; ++trial) {
        ExprPtr expr = randomExpr(rng, 4);
        Bits expected = elab::evalConst(expr, {});

        // Assign the expression (as printed Verilog) to a wide output
        // and simulate: this exercises the lexer, parser, printer,
        // elaborator, width annotation, and eval in one shot.
        uint32_t out_width = std::max<uint32_t>(expected.width(), 1);
        std::string src =
            "module m(output wire [" + std::to_string(out_width - 1) +
            ":0] out);\nassign out = " + printExpr(expr) +
            ";\nendmodule";
        hwdbg::sim::Simulator sim(
            elab::elaborate(parse(src), "m").mod);
        sim.eval();
        EXPECT_EQ(sim.peek("out"), expected.resized(out_width))
            << "expr: " << printExpr(expr);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EvalAgreement,
                         ::testing::Values(11u, 23u, 37u, 59u, 71u,
                                           97u, 131u, 433u));

// Round-trip property on random expressions: print -> parse -> print is
// a fixpoint (parenthesization and literal forms are canonical).
class ExprRoundTrip : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(ExprRoundTrip, PrintParsePrintFixpoint)
{
    std::mt19937 rng(GetParam() * 7919);
    for (int trial = 0; trial < 80; ++trial) {
        ExprPtr expr = randomExpr(rng, 4);
        std::string first = printExpr(expr);
        ExprPtr reparsed = parseExprText(first);
        EXPECT_EQ(printExpr(reparsed), first);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExprRoundTrip,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u));
