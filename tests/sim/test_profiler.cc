/**
 * @file
 * Simulator profiler: attribution of eval counts, toggle counts, and
 * settle depth to the right constructs, determinism of the eval-ranked
 * report (the golden-test mode), and the shape of both renderers.
 */

#include <gtest/gtest.h>

#include <string>

#include "elab/elaborate.hh"
#include "hdl/parser.hh"
#include "obs/jsoncheck.hh"
#include "sim/profiler.hh"

namespace hwdbg::sim
{
namespace
{

const char *kCounterSrc = R"(
module m(input clk, input rst, input in, output reg [7:0] count);
    wire gated;
    assign gated = in & ~count[7];
    always @(posedge clk) begin
        if (rst)
            count <= 8'd0;
        else if (gated)
            count <= count + 8'd1;
    end
endmodule
)";

hdl::ModulePtr
elaborate(const char *src, const std::string &top = "m")
{
    hdl::Design design = hdl::parse(src);
    return elab::elaborate(design, top).mod;
}

ProfileOptions
evalRanked(uint32_t cycles = 100)
{
    ProfileOptions opts;
    opts.cycles = cycles;
    opts.rank = ProfileOptions::Rank::Evals;
    return opts;
}

TEST(Profiler, AttributesEvalsToConstructs)
{
    ProfileReport report =
        profileDesign(elaborate(kCounterSrc), evalRanked(100));
    EXPECT_EQ(report.top, "m");
    EXPECT_EQ(report.cyclesRun, 100u);
    EXPECT_FALSE(report.finished);

    ASSERT_EQ(report.rows.size(), 2u);
    const ProfileRow *seq = nullptr;
    const ProfileRow *assign = nullptr;
    for (const auto &row : report.rows) {
        if (row.kind == "seq")
            seq = &row;
        if (row.kind == "assign")
            assign = &row;
    }
    ASSERT_NE(seq, nullptr);
    ASSERT_NE(assign, nullptr);
    // The clocked process runs once per posedge; the continuous assign
    // re-settles at least once per eval.
    EXPECT_EQ(seq->evals, 100u);
    EXPECT_GE(assign->evals, 200u);
    EXPECT_NE(seq->label.find("posedge clk"), std::string::npos);
    EXPECT_NE(seq->label.find("count"), std::string::npos);
    EXPECT_NE(seq->loc.find(":"), std::string::npos)
        << "rows must carry a source location, got '" << seq->loc
        << "'";

    EXPECT_GT(report.settleCalls, 0u);
    EXPECT_GE(report.maxSettleDepth, 1u);
}

TEST(Profiler, CountsSignalToggles)
{
    ProfileReport report =
        profileDesign(elaborate(kCounterSrc), evalRanked(200));
    uint64_t count_toggles = 0;
    for (const auto &sig : report.signals) {
        EXPECT_GT(sig.toggles, 0u) << sig.name
            << ": zero-toggle signals must be dropped";
        if (sig.name == "count")
            count_toggles = sig.toggles;
    }
    // The counter increments on roughly half the cycles (whenever the
    // random `in` is high); it cannot toggle more than once per cycle.
    EXPECT_GT(count_toggles, 20u);
    EXPECT_LE(count_toggles, 200u);
}

TEST(Profiler, EvalRankedReportIsDeterministic)
{
    ProfileOptions opts = evalRanked(150);
    ProfileReport a = profileDesign(elaborate(kCounterSrc), opts);
    ProfileReport b = profileDesign(elaborate(kCounterSrc), opts);
    ASSERT_EQ(a.rows.size(), b.rows.size());
    for (size_t i = 0; i < a.rows.size(); ++i) {
        EXPECT_EQ(a.rows[i].label, b.rows[i].label);
        EXPECT_EQ(a.rows[i].evals, b.rows[i].evals);
    }
    ASSERT_EQ(a.signals.size(), b.signals.size());
    for (size_t i = 0; i < a.signals.size(); ++i) {
        EXPECT_EQ(a.signals[i].name, b.signals[i].name);
        EXPECT_EQ(a.signals[i].toggles, b.signals[i].toggles);
    }
    EXPECT_EQ(a.settleCalls, b.settleCalls);
    EXPECT_EQ(a.maxSettleDepth, b.maxSettleDepth);
}

TEST(Profiler, SeedChangesStimulus)
{
    ProfileOptions opts_a = evalRanked(200);
    ProfileOptions opts_b = evalRanked(200);
    opts_b.seed = 99;
    ProfileReport a = profileDesign(elaborate(kCounterSrc), opts_a);
    ProfileReport b = profileDesign(elaborate(kCounterSrc), opts_b);
    uint64_t toggles_a = 0, toggles_b = 0;
    for (const auto &sig : a.signals)
        toggles_a += sig.toggles;
    for (const auto &sig : b.signals)
        toggles_b += sig.toggles;
    EXPECT_NE(toggles_a, toggles_b)
        << "different seeds should drive different input sequences";
}

TEST(Profiler, HonorsFinish)
{
    const char *src = R"(
module m(input clk, input rst);
    reg [3:0] t;
    always @(posedge clk) begin
        if (rst)
            t <= 4'd0;
        else begin
            t <= t + 4'd1;
            if (t == 4'd5)
                $finish;
        end
    end
endmodule
)";
    ProfileReport report =
        profileDesign(elaborate(src), evalRanked(1000));
    EXPECT_TRUE(report.finished);
    EXPECT_LT(report.cyclesRun, 1000u);
}

TEST(Profiler, TextReportHasRankedTable)
{
    ProfileOptions opts = evalRanked(100);
    ProfileReport report = profileDesign(elaborate(kCounterSrc), opts);
    std::string text = renderProfileText(report, opts);
    EXPECT_NE(text.find("ranked by evals"), std::string::npos);
    EXPECT_NE(text.find("always @(posedge clk)"), std::string::npos);
    EXPECT_NE(text.find("assign gated"), std::string::npos);
    EXPECT_NE(text.find("hot signals"), std::string::npos);
    EXPECT_NE(text.find("settle:"), std::string::npos);
}

TEST(Profiler, JsonReportParsesAndCarriesTheRows)
{
    ProfileOptions opts = evalRanked(100);
    ProfileReport report = profileDesign(elaborate(kCounterSrc), opts);
    std::string json = renderProfileJson(report, opts);
    std::string error;
    obs::JsonPtr root = obs::parseJson(json, &error);
    ASSERT_EQ(error, "");
    ASSERT_TRUE(root && root->isObject());
    EXPECT_EQ(root->get("top")->text, "m");
    EXPECT_DOUBLE_EQ(root->get("cycles_requested")->number, 100);
    EXPECT_DOUBLE_EQ(root->get("cycles_run")->number, 100);
    EXPECT_EQ(root->get("rank")->text, "evals");
    const obs::JsonValue *constructs = root->get("constructs");
    ASSERT_TRUE(constructs && constructs->isArray());
    EXPECT_EQ(constructs->elems.size(), report.rows.size());
    const obs::JsonValue *signals = root->get("signals");
    ASSERT_TRUE(signals && signals->isArray());
    EXPECT_EQ(signals->elems.size(), report.signals.size());
    const obs::JsonValue *settle = root->get("settle");
    ASSERT_TRUE(settle && settle->isObject());
    EXPECT_TRUE(settle->get("calls")->isNumber());
}

} // namespace
} // namespace hwdbg::sim
