/**
 * @file
 * Tests for the blackbox IP behavioral models (scfifo, dcfifo,
 * altsyncram, signal_recorder), including FIFO conservation properties.
 */

#include <gtest/gtest.h>

#include <memory>
#include <random>

#include "elab/elaborate.hh"
#include "hdl/parser.hh"
#include "sim/simulator.hh"

using namespace hwdbg;
using namespace hwdbg::hdl;
using namespace hwdbg::sim;

namespace
{

std::unique_ptr<Simulator>
makeSim(const std::string &src, const std::string &top = "m")
{
    Design design = parse(src);
    return std::make_unique<Simulator>(elab::elaborate(design, top).mod);
}

void
tick(Simulator &sim, int n = 1)
{
    for (int i = 0; i < n; ++i) {
        sim.poke("clk", uint64_t(0));
        sim.eval();
        sim.poke("clk", uint64_t(1));
        sim.eval();
    }
}

const char *scfifo_harness =
    "module m(input wire clk, input wire sclr, input wire wrreq,\n"
    "         input wire rdreq, input wire [7:0] data,\n"
    "         output wire [7:0] q, output wire empty,\n"
    "         output wire full, output wire [7:0] usedw);\n"
    "scfifo #(.WIDTH(8), .DEPTH(4)) u_fifo (.clock(clk), .sclr(sclr),\n"
    "  .data(data), .wrreq(wrreq), .rdreq(rdreq), .q(q), .empty(empty),\n"
    "  .full(full), .usedw(usedw));\nendmodule";

} // namespace

TEST(ScfifoTest, StartsEmpty)
{
    auto sim = makeSim(scfifo_harness);
    sim->eval();
    EXPECT_EQ(sim->peekU64("empty"), 1u);
    EXPECT_EQ(sim->peekU64("full"), 0u);
    EXPECT_EQ(sim->peekU64("usedw"), 0u);
}

TEST(ScfifoTest, PushPopFifoOrder)
{
    auto sim = makeSim(scfifo_harness);
    sim->poke("wrreq", uint64_t(1));
    for (uint64_t v : {10, 20, 30}) {
        sim->poke("data", v);
        tick(*sim);
    }
    sim->poke("wrreq", uint64_t(0));
    EXPECT_EQ(sim->peekU64("usedw"), 3u);
    EXPECT_EQ(sim->peekU64("empty"), 0u);

    sim->poke("rdreq", uint64_t(1));
    tick(*sim);
    EXPECT_EQ(sim->peekU64("q"), 10u);
    tick(*sim);
    EXPECT_EQ(sim->peekU64("q"), 20u);
    tick(*sim);
    EXPECT_EQ(sim->peekU64("q"), 30u);
    EXPECT_EQ(sim->peekU64("empty"), 1u);
}

TEST(ScfifoTest, FullDropsWrites)
{
    auto sim = makeSim(scfifo_harness);
    sim->poke("wrreq", uint64_t(1));
    for (uint64_t v = 1; v <= 6; ++v) {
        sim->poke("data", v);
        tick(*sim);
    }
    sim->poke("wrreq", uint64_t(0));
    EXPECT_EQ(sim->peekU64("full"), 1u);
    EXPECT_EQ(sim->peekU64("usedw"), 4u);
    // Values 5 and 6 were dropped.
    sim->poke("rdreq", uint64_t(1));
    uint64_t last = 0;
    for (int i = 0; i < 4; ++i) {
        tick(*sim);
        last = sim->peekU64("q");
    }
    EXPECT_EQ(last, 4u);
    EXPECT_EQ(sim->peekU64("empty"), 1u);
}

TEST(ScfifoTest, SimultaneousReadWriteWhenFull)
{
    auto sim = makeSim(scfifo_harness);
    sim->poke("wrreq", uint64_t(1));
    for (uint64_t v = 1; v <= 4; ++v) {
        sim->poke("data", v);
        tick(*sim);
    }
    EXPECT_EQ(sim->peekU64("full"), 1u);
    // Read+write on a full FIFO: both succeed.
    sim->poke("rdreq", uint64_t(1));
    sim->poke("data", uint64_t(99));
    tick(*sim);
    EXPECT_EQ(sim->peekU64("q"), 1u);
    EXPECT_EQ(sim->peekU64("usedw"), 4u);
    sim->poke("wrreq", uint64_t(0));
    for (int i = 0; i < 4; ++i)
        tick(*sim);
    EXPECT_EQ(sim->peekU64("q"), 99u);
}

TEST(ScfifoTest, SyncClear)
{
    auto sim = makeSim(scfifo_harness);
    sim->poke("wrreq", uint64_t(1));
    sim->poke("data", uint64_t(42));
    tick(*sim, 2);
    sim->poke("wrreq", uint64_t(0));
    sim->poke("sclr", uint64_t(1));
    tick(*sim);
    EXPECT_EQ(sim->peekU64("empty"), 1u);
    EXPECT_EQ(sim->peekU64("usedw"), 0u);
}

// Conservation property: pushes == pops + occupancy, across random
// request sequences.
class ScfifoConservation : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(ScfifoConservation, PushesEqualPopsPlusOccupancy)
{
    auto sim = makeSim(scfifo_harness);
    std::mt19937 rng(GetParam());
    uint64_t pushes = 0, pops = 0;
    for (int step = 0; step < 200; ++step) {
        bool wr = rng() & 1;
        bool rd = rng() & 1;
        bool full = sim->peekU64("full") != 0;
        bool empty = sim->peekU64("empty") != 0;
        sim->poke("wrreq", uint64_t(wr));
        sim->poke("rdreq", uint64_t(rd));
        sim->poke("data", uint64_t(rng() & 0xff));
        bool pop_ok = rd && !empty;
        bool push_ok = wr && (!full || pop_ok);
        tick(*sim);
        if (push_ok)
            ++pushes;
        if (pop_ok)
            ++pops;
        EXPECT_EQ(pushes, pops + sim->peekU64("usedw"));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScfifoConservation,
                         ::testing::Values(1u, 2u, 3u, 17u, 99u));

TEST(DcfifoTest, CrossesClockDomains)
{
    auto sim = makeSim(
        "module m(input wire wclk, input wire rclk, input wire wrreq,\n"
        "         input wire rdreq, input wire [7:0] data,\n"
        "         output wire [7:0] q, output wire rdempty,\n"
        "         output wire wrfull);\n"
        "dcfifo #(.WIDTH(8), .DEPTH(4)) u_fifo (.wrclk(wclk),\n"
        "  .rdclk(rclk), .data(data), .wrreq(wrreq), .rdreq(rdreq),\n"
        "  .q(q), .rdempty(rdempty), .wrfull(wrfull));\nendmodule");
    auto wtick = [&] {
        sim->poke("wclk", uint64_t(0));
        sim->eval();
        sim->poke("wclk", uint64_t(1));
        sim->eval();
    };
    auto rtick = [&] {
        sim->poke("rclk", uint64_t(0));
        sim->eval();
        sim->poke("rclk", uint64_t(1));
        sim->eval();
    };
    sim->eval();
    EXPECT_EQ(sim->peekU64("rdempty"), 1u);
    sim->poke("wrreq", uint64_t(1));
    sim->poke("data", uint64_t(0x5a));
    wtick();
    sim->poke("wrreq", uint64_t(0));
    EXPECT_EQ(sim->peekU64("rdempty"), 0u);
    sim->poke("rdreq", uint64_t(1));
    rtick();
    EXPECT_EQ(sim->peekU64("q"), 0x5au);
    EXPECT_EQ(sim->peekU64("rdempty"), 1u);
}

TEST(AltsyncramTest, WriteThenReadLatencyOne)
{
    auto sim = makeSim(
        "module m(input wire clk, input wire wren,\n"
        "         input wire [3:0] wa, input wire [3:0] ra,\n"
        "         input wire [15:0] wd, output wire [15:0] rd);\n"
        "altsyncram #(.WIDTH(16), .NUMWORDS(16)) u_ram (.clock0(clk),\n"
        "  .wren_a(wren), .address_a(wa), .data_a(wd), .address_b(ra),\n"
        "  .q_b(rd));\nendmodule");
    sim->poke("wren", uint64_t(1));
    sim->poke("wa", uint64_t(3));
    sim->poke("wd", uint64_t(0xbeef));
    tick(*sim);
    sim->poke("wren", uint64_t(0));
    sim->poke("ra", uint64_t(3));
    tick(*sim);
    EXPECT_EQ(sim->peekU64("rd"), 0xbeefu);
}

TEST(AltsyncramTest, ReadDuringWriteReturnsOldData)
{
    auto sim = makeSim(
        "module m(input wire clk, input wire wren,\n"
        "         input wire [3:0] wa, input wire [3:0] ra,\n"
        "         input wire [15:0] wd, output wire [15:0] rd);\n"
        "altsyncram #(.WIDTH(16), .NUMWORDS(16)) u_ram (.clock0(clk),\n"
        "  .wren_a(wren), .address_a(wa), .data_a(wd), .address_b(ra),\n"
        "  .q_b(rd));\nendmodule");
    sim->poke("wren", uint64_t(1));
    sim->poke("wa", uint64_t(7));
    sim->poke("ra", uint64_t(7));
    sim->poke("wd", uint64_t(0x1111));
    tick(*sim);
    EXPECT_EQ(sim->peekU64("rd"), 0u); // old contents
    sim->poke("wd", uint64_t(0x2222));
    tick(*sim);
    EXPECT_EQ(sim->peekU64("rd"), 0x1111u);
}

TEST(RecorderTest, CapturesValidEntriesWithCycles)
{
    auto sim = makeSim(
        "module m(input wire clk, input wire v, input wire [7:0] d);\n"
        "signal_recorder #(.WIDTH(8), .DEPTH(4)) u_rec (.clk(clk),\n"
        "  .arm(1'b1), .valid(v), .data(d));\nendmodule");
    sim->poke("v", uint64_t(0));
    tick(*sim, 2);
    sim->poke("v", uint64_t(1));
    sim->poke("d", uint64_t(0x42));
    tick(*sim);
    sim->poke("v", uint64_t(0));
    tick(*sim, 2);

    auto *rec = dynamic_cast<SignalRecorder *>(sim->primitive("u_rec"));
    ASSERT_NE(rec, nullptr);
    ASSERT_EQ(rec->entries().size(), 1u);
    EXPECT_EQ(rec->entries()[0].data.toU64(), 0x42u);
    EXPECT_EQ(rec->entries()[0].cycle, 3u);
    EXPECT_FALSE(rec->overflowed());
}

TEST(RecorderTest, StopsAtDepthAndFlagsOverflow)
{
    auto sim = makeSim(
        "module m(input wire clk, input wire [7:0] d);\n"
        "signal_recorder #(.WIDTH(8), .DEPTH(3)) u_rec (.clk(clk),\n"
        "  .arm(1'b1), .valid(1'b1), .data(d));\nendmodule");
    for (uint64_t i = 1; i <= 5; ++i) {
        sim->poke("d", i);
        tick(*sim);
    }
    auto *rec = dynamic_cast<SignalRecorder *>(sim->primitive("u_rec"));
    ASSERT_EQ(rec->entries().size(), 3u);
    EXPECT_EQ(rec->entries()[0].data.toU64(), 1u);
    EXPECT_EQ(rec->entries()[2].data.toU64(), 3u);
    EXPECT_TRUE(rec->overflowed());
}

TEST(RecorderTest, ArmGatesRecording)
{
    auto sim = makeSim(
        "module m(input wire clk, input wire arm, input wire [7:0] d);\n"
        "signal_recorder #(.WIDTH(8), .DEPTH(8)) u_rec (.clk(clk),\n"
        "  .arm(arm), .valid(1'b1), .data(d));\nendmodule");
    sim->poke("arm", uint64_t(0));
    sim->poke("d", uint64_t(1));
    tick(*sim, 3);
    sim->poke("arm", uint64_t(1));
    sim->poke("d", uint64_t(2));
    tick(*sim, 2);
    auto *rec = dynamic_cast<SignalRecorder *>(sim->primitive("u_rec"));
    ASSERT_EQ(rec->entries().size(), 2u);
    EXPECT_EQ(rec->entries()[0].data.toU64(), 2u);
}

TEST(RecorderTest, RingModeKeepsMostRecentEntries)
{
    auto sim = makeSim(
        "module m(input wire clk, input wire [7:0] d);\n"
        "signal_recorder #(.WIDTH(8), .DEPTH(3), .MODE(1)) u_rec (\n"
        "  .clk(clk), .arm(1'b1), .valid(1'b1), .data(d));\nendmodule");
    for (uint64_t i = 1; i <= 7; ++i) {
        sim->poke("d", i);
        tick(*sim);
    }
    auto *rec = dynamic_cast<SignalRecorder *>(sim->primitive("u_rec"));
    ASSERT_NE(rec, nullptr);
    EXPECT_TRUE(rec->ringMode());
    auto entries = rec->entries();
    ASSERT_EQ(entries.size(), 3u);
    // Oldest-first chronological order: 5, 6, 7.
    EXPECT_EQ(entries[0].data.toU64(), 5u);
    EXPECT_EQ(entries[1].data.toU64(), 6u);
    EXPECT_EQ(entries[2].data.toU64(), 7u);
    EXPECT_LT(entries[0].cycle, entries[2].cycle);
    EXPECT_FALSE(rec->overflowed());
}

TEST(RecorderTest, StopEventFreezesTheWindow)
{
    auto sim = makeSim(
        "module m(input wire clk, input wire halt,\n"
        "         input wire [7:0] d);\n"
        "signal_recorder #(.WIDTH(8), .DEPTH(8), .MODE(1)) u_rec (\n"
        "  .clk(clk), .arm(1'b1), .valid(1'b1), .data(d),\n"
        "  .stop(halt));\nendmodule");
    for (uint64_t i = 1; i <= 4; ++i) {
        sim->poke("d", i);
        tick(*sim);
    }
    sim->poke("halt", uint64_t(1));
    tick(*sim);
    sim->poke("halt", uint64_t(0));
    for (uint64_t i = 90; i <= 95; ++i) {
        sim->poke("d", i);
        tick(*sim);
    }
    auto *rec = dynamic_cast<SignalRecorder *>(sim->primitive("u_rec"));
    EXPECT_TRUE(rec->stopped());
    auto entries = rec->entries();
    ASSERT_EQ(entries.size(), 4u);
    EXPECT_EQ(entries.back().data.toU64(), 4u);
}

TEST(RecorderTest, RingModeWithoutWrapKeepsInsertionOrder)
{
    auto sim = makeSim(
        "module m(input wire clk, input wire v, input wire [7:0] d);\n"
        "signal_recorder #(.WIDTH(8), .DEPTH(8), .MODE(1)) u_rec (\n"
        "  .clk(clk), .arm(1'b1), .valid(v), .data(d));\nendmodule");
    sim->poke("v", uint64_t(1));
    for (uint64_t i = 1; i <= 3; ++i) {
        sim->poke("d", i);
        tick(*sim);
    }
    auto *rec = dynamic_cast<SignalRecorder *>(sim->primitive("u_rec"));
    auto entries = rec->entries();
    ASSERT_EQ(entries.size(), 3u);
    EXPECT_EQ(entries[0].data.toU64(), 1u);
    EXPECT_EQ(entries[2].data.toU64(), 3u);
}
