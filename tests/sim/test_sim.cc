/**
 * @file
 * Simulator semantics tests: clocking, nonblocking assignment,
 * combinational settling, memories, overflow semantics, and $display.
 */

#include <gtest/gtest.h>

#include <memory>

#include "common/logging.hh"
#include "elab/elaborate.hh"
#include "hdl/parser.hh"
#include "sim/simulator.hh"

using namespace hwdbg;
using namespace hwdbg::hdl;
using namespace hwdbg::sim;

namespace
{

std::unique_ptr<Simulator>
makeSim(const std::string &src, const std::string &top = "m")
{
    Design design = parse(src);
    return std::make_unique<Simulator>(
        elab::elaborate(design, top).mod);
}

void
tick(Simulator &sim, int n = 1)
{
    for (int i = 0; i < n; ++i) {
        sim.poke("clk", uint64_t(0));
        sim.eval();
        sim.poke("clk", uint64_t(1));
        sim.eval();
    }
}

} // namespace

TEST(SimTest, CounterIncrements)
{
    auto sim = makeSim(
        "module m(input wire clk, output reg [7:0] count);\n"
        "always @(posedge clk) count <= count + 1;\nendmodule");
    EXPECT_EQ(sim->peekU64("count"), 0u);
    tick(*sim, 5);
    EXPECT_EQ(sim->peekU64("count"), 5u);
    EXPECT_EQ(sim->cycle(), 5u);
}

TEST(SimTest, NoEdgeNoChange)
{
    auto sim = makeSim(
        "module m(input wire clk, output reg [7:0] count);\n"
        "always @(posedge clk) count <= count + 1;\nendmodule");
    sim->poke("clk", uint64_t(1));
    sim->eval();
    EXPECT_EQ(sim->peekU64("count"), 1u);
    // Holding the clock high must not retrigger.
    sim->eval();
    sim->eval();
    EXPECT_EQ(sim->peekU64("count"), 1u);
}

TEST(SimTest, NonblockingSwap)
{
    auto sim = makeSim(
        "module m(input wire clk, input wire load,\n"
        "         output reg [3:0] a, output reg [3:0] b);\n"
        "always @(posedge clk) begin\n"
        "  if (load) begin a <= 4'd3; b <= 4'd7; end\n"
        "  else begin a <= b; b <= a; end\nend\nendmodule");
    sim->poke("load", uint64_t(1));
    tick(*sim);
    EXPECT_EQ(sim->peekU64("a"), 3u);
    EXPECT_EQ(sim->peekU64("b"), 7u);
    sim->poke("load", uint64_t(0));
    tick(*sim);
    EXPECT_EQ(sim->peekU64("a"), 7u);
    EXPECT_EQ(sim->peekU64("b"), 3u);
}

TEST(SimTest, LastNonblockingWriteWins)
{
    auto sim = makeSim(
        "module m(input wire clk, output reg [3:0] x);\n"
        "always @(posedge clk) begin\n"
        "  x <= 4'd1;\n  x <= 4'd2;\nend\nendmodule");
    tick(*sim);
    EXPECT_EQ(sim->peekU64("x"), 2u);
}

TEST(SimTest, BlockingVisibleWithinProcess)
{
    auto sim = makeSim(
        "module m(input wire clk, output reg [7:0] y);\n"
        "reg [7:0] t;\n"
        "always @(posedge clk) begin\n"
        "  t = 8'd5;\n  y <= t + 8'd1;\nend\nendmodule");
    tick(*sim);
    EXPECT_EQ(sim->peekU64("y"), 6u);
}

TEST(SimTest, CombChainSettles)
{
    auto sim = makeSim(
        "module m(input wire [7:0] a, output wire [7:0] d);\n"
        "wire [7:0] b, c;\n"
        // Deliberately out of dependency order.
        "assign d = c + 1;\nassign c = b + 1;\nassign b = a + 1;\n"
        "endmodule");
    sim->poke("a", uint64_t(10));
    sim->eval();
    EXPECT_EQ(sim->peekU64("d"), 13u);
}

TEST(SimTest, CombAlwaysBlock)
{
    auto sim = makeSim(
        "module m(input wire [3:0] a, input wire [3:0] b,\n"
        "         output reg [3:0] max);\n"
        "always @* begin\n"
        "  if (a > b) max = a;\n  else max = b;\nend\nendmodule");
    sim->poke("a", uint64_t(3));
    sim->poke("b", uint64_t(9));
    sim->eval();
    EXPECT_EQ(sim->peekU64("max"), 9u);
    sim->poke("a", uint64_t(12));
    sim->eval();
    EXPECT_EQ(sim->peekU64("max"), 12u);
}

TEST(SimTest, CombinationalLoopDetected)
{
    auto sim_src =
        "module m(input wire a, output wire x);\n"
        "wire y;\nassign x = y ^ a;\nassign y = x;\nendmodule";
    auto sim = makeSim(sim_src);
    sim->poke("a", uint64_t(1));
    EXPECT_THROW(sim->eval(), HdlError);
}

TEST(SimTest, CaseSelectsAndDefault)
{
    auto sim = makeSim(
        "module m(input wire clk, input wire [1:0] s,\n"
        "         output reg [7:0] y);\n"
        "always @(posedge clk)\n"
        "case (s)\n"
        "  2'd0: y <= 8'd10;\n"
        "  2'd1, 2'd2: y <= 8'd20;\n"
        "  default: y <= 8'd30;\nendcase\nendmodule");
    sim->poke("s", uint64_t(0));
    tick(*sim);
    EXPECT_EQ(sim->peekU64("y"), 10u);
    sim->poke("s", uint64_t(2));
    tick(*sim);
    EXPECT_EQ(sim->peekU64("y"), 20u);
    sim->poke("s", uint64_t(3));
    tick(*sim);
    EXPECT_EQ(sim->peekU64("y"), 30u);
}

TEST(SimTest, MemoryReadWrite)
{
    auto sim = makeSim(
        "module m(input wire clk, input wire [3:0] waddr,\n"
        "         input wire [3:0] raddr, input wire [7:0] din,\n"
        "         input wire we, output reg [7:0] dout);\n"
        "reg [7:0] mem [0:15];\n"
        "always @(posedge clk) begin\n"
        "  if (we) mem[waddr] <= din;\n  dout <= mem[raddr];\nend\n"
        "endmodule");
    sim->poke("we", uint64_t(1));
    sim->poke("waddr", uint64_t(5));
    sim->poke("din", uint64_t(0xab));
    tick(*sim);
    EXPECT_EQ(sim->peekArray("mem", 5).toU64(), 0xabu);
    sim->poke("we", uint64_t(0));
    sim->poke("raddr", uint64_t(5));
    tick(*sim);
    EXPECT_EQ(sim->peekU64("dout"), 0xabu);
}

TEST(SimTest, BufferOverflowPowerOfTwoWraps)
{
    // 8-entry buffer with a 4-bit index: index 9 wraps to 1 when the
    // memory size is a power of two (address truncation).
    auto sim = makeSim(
        "module m(input wire clk, input wire [4:0] idx,\n"
        "         input wire [7:0] din);\n"
        "reg [7:0] buf0 [0:7];\n"
        "always @(posedge clk) buf0[idx] <= din;\nendmodule");
    sim->poke("idx", uint64_t(9));
    sim->poke("din", uint64_t(0x77));
    tick(*sim);
    EXPECT_EQ(sim->peekArray("buf0", 1).toU64(), 0x77u);
}

TEST(SimTest, BufferOverflowNonPowerOfTwoDrops)
{
    // 6-entry buffer: effective index 6 or 7 is beyond the memory, so the
    // assignment is ignored.
    auto sim = makeSim(
        "module m(input wire clk, input wire [3:0] idx,\n"
        "         input wire [7:0] din);\n"
        "reg [7:0] buf0 [0:5];\n"
        "always @(posedge clk) buf0[idx] <= din;\nendmodule");
    sim->poke("din", uint64_t(0x55));
    sim->poke("idx", uint64_t(6));
    tick(*sim);
    for (int i = 0; i < 6; ++i)
        EXPECT_TRUE(sim->peekArray("buf0", i).isZero());
    // Index 14 truncates to 6 (3 address bits) and is still dropped.
    sim->poke("idx", uint64_t(14));
    tick(*sim);
    for (int i = 0; i < 6; ++i)
        EXPECT_TRUE(sim->peekArray("buf0", i).isZero());
    // Index 13 truncates to 5: stored.
    sim->poke("idx", uint64_t(13));
    tick(*sim);
    EXPECT_EQ(sim->peekArray("buf0", 5).toU64(), 0x55u);
}

TEST(SimTest, OutOfRangeBitSelectWriteIgnored)
{
    auto sim = makeSim(
        "module m(input wire clk, input wire [3:0] idx,\n"
        "         output reg [7:0] x);\n"
        "always @(posedge clk) x[idx] <= 1'b1;\nendmodule");
    sim->poke("idx", uint64_t(12));
    tick(*sim);
    EXPECT_EQ(sim->peekU64("x"), 0u);
    sim->poke("idx", uint64_t(3));
    tick(*sim);
    EXPECT_EQ(sim->peekU64("x"), 8u);
}

TEST(SimTest, PartSelectWrite)
{
    auto sim = makeSim(
        "module m(input wire clk, output reg [15:0] x);\n"
        "always @(posedge clk) begin\n"
        "  x[7:0] <= 8'hcd;\n  x[15:8] <= 8'hab;\nend\nendmodule");
    tick(*sim);
    EXPECT_EQ(sim->peekU64("x"), 0xabcdu);
}

TEST(SimTest, ConcatLValueCapturesCarry)
{
    // {c, s} <= a + b: the add must be evaluated at 9 bits (context
    // width), capturing the carry.
    auto sim = makeSim(
        "module m(input wire clk, input wire [7:0] a,\n"
        "         input wire [7:0] b, output reg c,\n"
        "         output reg [7:0] s);\n"
        "always @(posedge clk) {c, s} <= a + b;\nendmodule");
    sim->poke("a", uint64_t(0xf0));
    sim->poke("b", uint64_t(0x20));
    tick(*sim);
    EXPECT_EQ(sim->peekU64("c"), 1u);
    EXPECT_EQ(sim->peekU64("s"), 0x10u);
}

TEST(SimTest, SelfDeterminedAddTruncatesIntoComparison)
{
    // Inside a comparison the add stays at 8 bits, so 0xf0+0x20 == 0x10.
    auto sim = makeSim(
        "module m(input wire [7:0] a, input wire [7:0] b,\n"
        "         output wire eq);\n"
        "assign eq = a + b == 8'h10;\nendmodule");
    sim->poke("a", uint64_t(0xf0));
    sim->poke("b", uint64_t(0x20));
    sim->eval();
    EXPECT_EQ(sim->peekU64("eq"), 1u);
}

TEST(SimTest, BitTruncationOnNarrowAssign)
{
    // The paper's §3.2.2 pattern: assigning a shifted wide value into a
    // narrow register truncates high bits.
    auto sim = makeSim(
        "module m(input wire clk, input wire [63:0] wide,\n"
        "         output reg [41:0] narrow);\n"
        "always @(posedge clk) narrow <= wide >> 6;\nendmodule");
    sim->poke("wide", Bits(64, 0xffffffffffffull << 6));
    tick(*sim);
    // Bits [47:42] of the shifted value are truncated.
    EXPECT_EQ(sim->peekU64("narrow"), 0x3ffffffffffull);
}

TEST(SimTest, DisplayLogsWithCycle)
{
    auto sim = makeSim(
        "module m(input wire clk, output reg [7:0] n);\n"
        "always @(posedge clk) begin\n"
        "  n <= n + 1;\n"
        "  $display(\"n=%d hex=%h\", n, n);\nend\nendmodule");
    tick(*sim, 3);
    ASSERT_EQ(sim->log().size(), 3u);
    EXPECT_EQ(sim->log()[0].text, "n=0 hex=00");
    EXPECT_EQ(sim->log()[2].text, "n=2 hex=02");
    EXPECT_EQ(sim->log()[0].cycle, 1u);
    EXPECT_EQ(sim->log()[2].cycle, 3u);
}

TEST(SimTest, DisplayGuardedByPath)
{
    auto sim = makeSim(
        "module m(input wire clk, input wire fire);\n"
        "always @(posedge clk) if (fire) $display(\"fired\");\n"
        "endmodule");
    tick(*sim, 2);
    EXPECT_TRUE(sim->log().empty());
    sim->poke("fire", uint64_t(1));
    tick(*sim);
    ASSERT_EQ(sim->log().size(), 1u);
    EXPECT_EQ(sim->log()[0].text, "fired");
}

TEST(SimTest, FinishSetsFlag)
{
    auto sim = makeSim(
        "module m(input wire clk, input wire stop);\n"
        "always @(posedge clk) if (stop) $finish;\nendmodule");
    tick(*sim);
    EXPECT_FALSE(sim->finished());
    sim->poke("stop", uint64_t(1));
    tick(*sim);
    EXPECT_TRUE(sim->finished());
}

TEST(SimTest, NegedgeProcess)
{
    auto sim = makeSim(
        "module m(input wire clk, output reg [3:0] n);\n"
        "always @(negedge clk) n <= n + 1;\nendmodule");
    sim->poke("clk", uint64_t(1));
    sim->eval();
    EXPECT_EQ(sim->peekU64("n"), 0u);
    sim->poke("clk", uint64_t(0));
    sim->eval();
    EXPECT_EQ(sim->peekU64("n"), 1u);
}

TEST(SimTest, PokeNonInputThrows)
{
    auto sim = makeSim(
        "module m(input wire clk, output reg [3:0] n);\n"
        "always @(posedge clk) n <= n + 1;\nendmodule");
    EXPECT_THROW(sim->poke("n", uint64_t(3)), HdlError);
    EXPECT_THROW(sim->poke("nothere", uint64_t(3)), HdlError);
}

TEST(SimTest, ShiftByDynamicAmount)
{
    auto sim = makeSim(
        "module m(input wire [7:0] a, input wire [2:0] s,\n"
        "         output wire [7:0] l, output wire [7:0] r);\n"
        "assign l = a << s;\nassign r = a >> s;\nendmodule");
    sim->poke("a", uint64_t(0x81));
    sim->poke("s", uint64_t(3));
    sim->eval();
    EXPECT_EQ(sim->peekU64("l"), 0x08u);
    EXPECT_EQ(sim->peekU64("r"), 0x10u);
}

TEST(SimTest, ReductionAndLogicalOps)
{
    auto sim = makeSim(
        "module m(input wire [3:0] a, output wire rand_, \n"
        "         output wire ror_, output wire rxor_,\n"
        "         output wire land_, output wire lnot_);\n"
        "assign rand_ = &a;\nassign ror_ = |a;\nassign rxor_ = ^a;\n"
        "assign land_ = a && 1'b1;\nassign lnot_ = !a;\nendmodule");
    sim->poke("a", uint64_t(0xf));
    sim->eval();
    EXPECT_EQ(sim->peekU64("rand_"), 1u);
    EXPECT_EQ(sim->peekU64("rxor_"), 0u);
    sim->poke("a", uint64_t(0x1));
    sim->eval();
    EXPECT_EQ(sim->peekU64("rand_"), 0u);
    EXPECT_EQ(sim->peekU64("ror_"), 1u);
    EXPECT_EQ(sim->peekU64("rxor_"), 1u);
    EXPECT_EQ(sim->peekU64("land_"), 1u);
    EXPECT_EQ(sim->peekU64("lnot_"), 0u);
}

TEST(SimTest, HierarchicalDesignSimulates)
{
    auto sim = makeSim(
        "module adder(input wire [7:0] x, input wire [7:0] y,\n"
        "             output wire [7:0] s);\n"
        "assign s = x + y;\nendmodule\n"
        "module m(input wire clk, input wire [7:0] a,\n"
        "         output reg [7:0] acc);\n"
        "wire [7:0] next;\n"
        "adder u_add (.x(acc), .y(a), .s(next));\n"
        "always @(posedge clk) acc <= next;\nendmodule");
    sim->poke("a", uint64_t(5));
    tick(*sim, 4);
    EXPECT_EQ(sim->peekU64("acc"), 20u);
}

// Regression (found by fuzzing): a comb process that assigns a default
// and then conditionally overrides it changes the net's value inside
// every settling pass; the pass is stable when its END state matches
// its START state, not when no assignment executed.
TEST(SimTest, DefaultThenOverrideCombSettles)
{
    auto sim = makeSim(
        "module m(input wire clk, input wire c,\n"
        "         output reg r, output reg q);\n"
        "always @* begin\n"
        "  r = 0;\n"
        "  if (c) r = 1;\n"
        "end\n"
        "always @(posedge clk) q <= r;\nendmodule");
    sim->poke("c", uint64_t(1));
    tick(*sim);
    EXPECT_EQ(sim->peekU64("r"), 1u);
    EXPECT_EQ(sim->peekU64("q"), 1u);
    sim->poke("c", uint64_t(0));
    sim->eval();
    EXPECT_EQ(sim->peekU64("r"), 0u);
}

// Regression (found by fuzzing): case labels compare at the max of the
// selector and label widths. A wider label with high bits set must not
// alias the narrow label below it.
TEST(SimTest, CaseLabelsCompareAtMaxWidth)
{
    auto sim = makeSim(
        "module m(input wire clk, input wire [1:0] s,\n"
        "         output reg [7:0] y);\n"
        "always @(posedge clk) begin\n"
        "  case (s)\n"
        "    4'b0101: y <= 8'h11;\n"
        "    2'b01:   y <= 8'h22;\n"
        "    default: y <= 8'h33;\n"
        "  endcase\nend\nendmodule");
    sim->poke("s", uint64_t(1));
    tick(*sim);
    EXPECT_EQ(sim->peekU64("y"), 0x22u);
    sim->poke("s", uint64_t(3));
    tick(*sim);
    EXPECT_EQ(sim->peekU64("y"), 0x33u);
}

// Regression (found by fuzzing): a primitive clocked by ~clk used to
// see a phantom rising edge on the very first eval because the
// previous-clock baseline defaulted to 0 while ~clk evaluated to 1.
// The baseline must be seeded from the settled initial values.
TEST(SimTest, NoPhantomEdgeOnInvertedClocks)
{
    auto sim = makeSim(
        "module m(input wire clk, input wire [3:0] a,\n"
        "         output reg [3:0] q);\n"
        "always @(negedge clk) q <= a;\nendmodule");
    sim->poke("a", uint64_t(9));
    sim->eval();
    EXPECT_EQ(sim->peekU64("q"), 0u) << "phantom negedge at startup";
    sim->poke("clk", uint64_t(1));
    sim->eval();
    EXPECT_EQ(sim->peekU64("q"), 0u);
    sim->poke("clk", uint64_t(0));
    sim->eval();
    EXPECT_EQ(sim->peekU64("q"), 9u);
}
