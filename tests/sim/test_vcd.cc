/**
 * @file
 * Tests for the VCD waveform writer.
 */

#include <gtest/gtest.h>

#include <memory>
#include <fstream>
#include <sstream>

#include "elab/elaborate.hh"
#include "hdl/parser.hh"
#include "sim/simulator.hh"
#include "sim/vcd.hh"

using namespace hwdbg;
using namespace hwdbg::hdl;
using namespace hwdbg::sim;

namespace
{

std::unique_ptr<Simulator>
makeSim(const std::string &src)
{
    Design design = parse(src);
    return std::make_unique<Simulator>(elab::elaborate(design, "m").mod);
}

} // namespace

TEST(VcdTest, HeaderDeclaresScalarSignals)
{
    auto sim = makeSim(
        "module m(input wire clk, output reg [7:0] n);\n"
        "reg [7:0] mem [0:3];\n"
        "always @(posedge clk) n <= n + 1;\nendmodule");
    VcdWriter vcd(*sim);
    vcd.sample(0);
    std::string out = vcd.render();
    EXPECT_NE(out.find("$timescale"), std::string::npos);
    EXPECT_NE(out.find("$scope module m $end"), std::string::npos);
    EXPECT_NE(out.find("$var wire 1 ! clk $end"), std::string::npos);
    EXPECT_NE(out.find(" n $end"), std::string::npos);
    // Memories are not dumped.
    EXPECT_EQ(out.find(" mem $end"), std::string::npos);
    EXPECT_NE(out.find("$enddefinitions $end"), std::string::npos);
}

TEST(VcdTest, RecordsOnlyChanges)
{
    auto sim = makeSim(
        "module m(input wire clk, output reg [3:0] n);\n"
        "always @(posedge clk) n <= n + 1;\nendmodule");
    VcdWriter vcd(*sim);
    uint64_t t = 0;
    auto tick = [&] {
        sim->poke("clk", uint64_t(0));
        sim->eval();
        vcd.sample(t++);
        sim->poke("clk", uint64_t(1));
        sim->eval();
        vcd.sample(t++);
    };
    tick();
    tick();
    std::string out = vcd.render();

    // Count the timestamps and the 4-bit vector changes of n.
    int times = 0, n_changes = 0;
    std::istringstream lines(out);
    std::string line;
    bool in_body = false;
    while (std::getline(lines, line)) {
        if (line.rfind("$enddefinitions", 0) == 0) {
            in_body = true;
            continue;
        }
        if (!in_body)
            continue;
        if (!line.empty() && line[0] == '#')
            ++times;
        if (!line.empty() && line[0] == 'b')
            ++n_changes;
    }
    EXPECT_EQ(times, 4);
    // n changes after each posedge sample: initial dump + 2 increments.
    EXPECT_EQ(n_changes, 3);
}

TEST(VcdTest, FileWriting)
{
    auto sim = makeSim(
        "module m(input wire clk);\nreg x;\n"
        "always @(posedge clk) x <= !x;\nendmodule");
    VcdWriter vcd(*sim);
    vcd.sample(0);
    std::string path = "/tmp/hwdbg_test_vcd_out.vcd";
    vcd.writeFile(path);
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::ostringstream contents;
    contents << in.rdbuf();
    EXPECT_EQ(contents.str(), vcd.render());
}
