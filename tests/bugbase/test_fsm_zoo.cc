/**
 * @file
 * Tests for the FSM-detection accuracy corpus.
 */

#include <gtest/gtest.h>

#include <set>

#include "analysis/fsm_detect.hh"
#include "bugbase/fsm_zoo.hh"
#include "elab/elaborate.hh"
#include "sim/simulator.hh"
#include "hdl/parser.hh"

using namespace hwdbg;
using namespace hwdbg::bugs;

namespace
{

std::set<std::string>
detectZoo(const analysis::FsmDetectOptions &opts = {})
{
    const FsmZoo &zoo = fsmZoo();
    hdl::Design design =
        hdl::parseWithDefines(zoo.source, {}, "fsm_zoo.v");
    auto mod = elab::elaborate(design, "fsm_zoo").mod;
    std::set<std::string> found;
    for (const auto &fsm : analysis::detectFsms(*mod, opts))
        found.insert(fsm.stateVar);
    return found;
}

} // namespace

TEST(FsmZooTest, CorpusShape)
{
    const FsmZoo &zoo = fsmZoo();
    EXPECT_EQ(zoo.labeledFsms.size(), 26u);
    EXPECT_EQ(zoo.hardStyles.size(), 5u);
    EXPECT_FALSE(zoo.decoys.empty());
    // Hard styles are labeled FSMs.
    std::set<std::string> labeled(zoo.labeledFsms.begin(),
                                  zoo.labeledFsms.end());
    for (const auto &var : zoo.hardStyles)
        EXPECT_TRUE(labeled.count(var)) << var;
    // Decoys are not.
    for (const auto &var : zoo.decoys)
        EXPECT_FALSE(labeled.count(var)) << var;
}

TEST(FsmZooTest, SourceParsesAndSimLowers)
{
    const FsmZoo &zoo = fsmZoo();
    hdl::Design design =
        hdl::parseWithDefines(zoo.source, {}, "fsm_zoo.v");
    auto elaborated = elab::elaborate(design, "fsm_zoo");
    sim::Simulator sim(elaborated.mod);
    sim.poke("clk", uint64_t(0));
    sim.eval();
    sim.poke("clk", uint64_t(1));
    sim.eval(); // simulates cleanly
    SUCCEED();
}

TEST(FsmZooTest, ExactlyTheHardStylesAreMissed)
{
    const FsmZoo &zoo = fsmZoo();
    auto found = detectZoo();
    std::set<std::string> missed;
    for (const auto &var : zoo.labeledFsms)
        if (!found.count(var))
            missed.insert(var);
    EXPECT_EQ(missed, std::set<std::string>(zoo.hardStyles.begin(),
                                            zoo.hardStyles.end()));
}

TEST(FsmZooTest, NoDecoyIsDetected)
{
    const FsmZoo &zoo = fsmZoo();
    auto found = detectZoo();
    for (const auto &decoy : zoo.decoys)
        EXPECT_FALSE(found.count(decoy)) << decoy;
}

TEST(FsmZooTest, DisablingWidthRuleAdmitsFlags)
{
    analysis::FsmDetectOptions opts;
    opts.minWidthTwo = false;
    auto with_rule = detectZoo();
    auto without_rule = detectZoo(opts);
    // The relaxed detector can only find more, never fewer.
    for (const auto &var : with_rule)
        EXPECT_TRUE(without_rule.count(var)) << var;
    EXPECT_GE(without_rule.size(), with_rule.size());
}
