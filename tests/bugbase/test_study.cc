/**
 * @file
 * Tests for the Table 1 bug-study database.
 */

#include <gtest/gtest.h>

#include "bugbase/study.hh"

using namespace hwdbg::bugs;

TEST(StudyTest, SixtyEightBugsTotal)
{
    EXPECT_EQ(studyBugs().size(), 68u);
}

TEST(StudyTest, SubclassCountsMatchTable1)
{
    auto table = bugStudyTable();
    ASSERT_EQ(table.size(), 13u);
    std::map<std::string, int> counts;
    for (const auto &row : table)
        counts[row.subclass] = row.count;

    EXPECT_EQ(counts["Buffer Overflow"], 5);
    EXPECT_EQ(counts["Bit Truncation"], 12);
    EXPECT_EQ(counts["Misindexing"], 5);
    EXPECT_EQ(counts["Endianness Mismatch"], 1);
    EXPECT_EQ(counts["Failure-to-Update"], 5);
    EXPECT_EQ(counts["Deadlock"], 3);
    EXPECT_EQ(counts["Producer-Consumer Mismatch"], 3);
    EXPECT_EQ(counts["Signal Asynchrony"], 10);
    EXPECT_EQ(counts["Use-Without-Valid"], 1);
    EXPECT_EQ(counts["Protocol Violation"], 3);
    EXPECT_EQ(counts["API Misuse"], 3);
    EXPECT_EQ(counts["Incomplete Implementation"], 7);
    EXPECT_EQ(counts["Erroneous Expression"], 10);
}

TEST(StudyTest, ClassTotals)
{
    int data = 0, comm = 0, sem = 0;
    for (const auto &bug : studyBugs()) {
        switch (bug.bugClass) {
          case BugClass::DataMisAccess: ++data; break;
          case BugClass::Communication: ++comm; break;
          case BugClass::Semantic: ++sem; break;
        }
    }
    EXPECT_EQ(data, 28);
    EXPECT_EQ(comm, 17);
    EXPECT_EQ(sem, 23);
}

TEST(StudyTest, SymptomColumnsMatchTable1)
{
    for (const auto &row : bugStudyTable()) {
        if (row.subclass == "Buffer Overflow") {
            EXPECT_TRUE(row.commonSymptoms.count(Symptom::DataLoss));
        }
        if (row.subclass == "Deadlock") {
            EXPECT_TRUE(row.commonSymptoms.count(Symptom::Stuck));
            EXPECT_EQ(row.commonSymptoms.size(), 1u);
        }
        if (row.subclass == "Bit Truncation") {
            EXPECT_TRUE(
                row.commonSymptoms.count(Symptom::IncorrectOutput));
            EXPECT_TRUE(
                row.commonSymptoms.count(Symptom::ExternalError));
        }
        if (row.subclass == "Erroneous Expression") {
            EXPECT_TRUE(
                row.commonSymptoms.count(Symptom::IncorrectOutput));
        }
        if (row.subclass == "Producer-Consumer Mismatch") {
            EXPECT_TRUE(row.commonSymptoms.count(Symptom::Stuck));
            EXPECT_TRUE(row.commonSymptoms.count(Symptom::DataLoss));
        }
    }
}

TEST(StudyTest, EveryBugHasProjectAndNote)
{
    for (const auto &bug : studyBugs()) {
        EXPECT_FALSE(bug.project.empty());
        EXPECT_FALSE(bug.note.empty());
        EXPECT_FALSE(bug.symptoms.empty());
    }
}

TEST(StudyTest, TestbedSubclassesAppearInStudy)
{
    // Every testbed subclass is one of the 13 studied subclasses.
    std::set<std::string> names;
    for (const auto &row : bugStudyTable())
        names.insert(row.subclass);
    for (const auto &bug : testbedBugs())
        EXPECT_TRUE(names.count(bug.subclass)) << bug.subclass;
}
