/**
 * @file
 * End-to-end tool effectiveness on the testbed (§6.3): every "helpful
 * tool" tick in Table 2 is backed here by running the tool on the buggy
 * design and checking that its output localizes the root cause.
 */

#include <gtest/gtest.h>

#include <memory>

#include "bugbase/testbed.hh"
#include "bugbase/workloads.hh"
#include "common/logging.hh"
#include "core/dep_monitor.hh"
#include "core/fsm_monitor.hh"
#include "core/losscheck.hh"
#include "core/signalcat.hh"
#include "core/stats_monitor.hh"
#include "hdl/parser.hh"
#include "hdl/printer.hh"
#include "sim/simulator.hh"

using namespace hwdbg;
using namespace hwdbg::bugs;
using namespace hwdbg::core;

namespace
{

/** Round-trip an instrumented module through the printer and build a
 *  simulator, proving the generated Verilog is legal. */
std::unique_ptr<sim::Simulator>
simulate(hdl::ModulePtr mod)
{
    hdl::Design design = hdl::parse(hdl::printModule(*mod));
    return std::make_unique<sim::Simulator>(
        elab::elaborate(design, design.modules[0]->name).mod);
}

std::vector<sim::EvalContext::LogLine>
runInstrumented(const TestbedBug &bug, hdl::ModulePtr mod)
{
    auto sim = simulate(mod);
    runWorkload(bug, *sim);
    return sim->log();
}

LossCheckReport
lossCheckBug(const TestbedBug &bug)
{
    auto elaborated = buildDesign(bug, true);
    auto run_trigger = [&](hdl::ModulePtr mod) {
        auto sim = simulate(mod);
        runWorkload(bug, *sim);
        return sim->log();
    };
    auto run_gt = [&](hdl::ModulePtr mod) {
        auto sim = simulate(mod);
        driveGroundTruth(bug, *sim);
        return sim->log();
    };
    return runLossCheck(*elaborated.mod, *bug.lossCheck, run_gt,
                        run_trigger);
}

} // namespace

// ---------------------------------------------------------------------
// LossCheck (Table 2 "LC" column; §6.3 LossCheck paragraph)
// ---------------------------------------------------------------------

TEST(LossCheckOnBugs, D1LocalizesBufferWithOneFalsePositive)
{
    const TestbedBug &bug = bugById("D1");
    LossCheckReport report = lossCheckBug(bug);
    // The overflowed symbol buffer is found; the intentionally
    // overwritten debug mirror is the paper's single false positive
    // (the developer test never exercises its drop).
    EXPECT_TRUE(report.reported.count("buf0"));
    EXPECT_TRUE(report.reported.count("mirror"));
    EXPECT_EQ(report.reported.size(), 2u);
}

TEST(LossCheckOnBugs, D2LocalizesReorderBuffer)
{
    LossCheckReport report = lossCheckBug(bugById("D2"));
    EXPECT_EQ(report.reported, (std::set<std::string>{"rob"}));
}

TEST(LossCheckOnBugs, D3LocalizesQueueInput)
{
    LossCheckReport report = lossCheckBug(bugById("D3"));
    EXPECT_EQ(report.reported, (std::set<std::string>{"vm0_stage"}));
}

TEST(LossCheckOnBugs, D4LocalizesFrameMemoryWithoutFiltering)
{
    const TestbedBug &bug = bugById("D4");
    LossCheckReport report = lossCheckBug(bug);
    EXPECT_EQ(report.reported, (std::set<std::string>{"memd"}));
    // §6.3: D4 is localized without needing the filtering technique.
    EXPECT_TRUE(report.filtered.empty());
}

TEST(LossCheckOnBugs, C2LocalizesLostResponse)
{
    LossCheckReport report = lossCheckBug(bugById("C2"));
    EXPECT_EQ(report.reported, (std::set<std::string>{"resp1_stage"}));
}

TEST(LossCheckOnBugs, C4LocalizesSkidBufferWithoutFiltering)
{
    LossCheckReport report = lossCheckBug(bugById("C4"));
    EXPECT_EQ(report.reported, (std::set<std::string>{"skid_data"}));
    EXPECT_TRUE(report.filtered.empty());
}

TEST(LossCheckOnBugs, D11IsTheDocumentedFalseNegative)
{
    // §4.5.4/§6.3: the D11 loss shares a register with an intentional
    // drop, so filtering hides it.
    LossCheckReport report = lossCheckBug(bugById("D11"));
    EXPECT_TRUE(report.reported.empty());
    EXPECT_TRUE(report.filtered.count("memd"));
}

TEST(LossCheckOnBugs, GeneratedCodeVolumeIsSubstantial)
{
    // §6.3: LossCheck generates 522-19,462 lines across the bugs; at
    // the scale of our simplified designs it must still be significant
    // and much larger than the monitors' output.
    for (const char *id : {"D1", "D2", "D4", "C2", "C4"}) {
        const TestbedBug &bug = bugById(id);
        auto elaborated = buildDesign(bug, true);
        LossCheckResult inst =
            applyLossCheck(*elaborated.mod, *bug.lossCheck);
        EXPECT_GT(inst.generatedLines, 10) << id;
    }
}

// ---------------------------------------------------------------------
// FSM Monitor (the §6.3 case study flow)
// ---------------------------------------------------------------------

TEST(FsmMonitorOnBugs, D2CaseStudyReadFinishedWriteStuck)
{
    const TestbedBug &bug = bugById("D2");
    auto elaborated = buildDesign(bug, true);
    FsmMonitorResult mon = applyFsmMonitor(*elaborated.mod);

    // Both FSMs of the case study are detected automatically.
    std::set<std::string> monitored(mon.monitored.begin(),
                                    mon.monitored.end());
    EXPECT_TRUE(monitored.count("rd_state"));
    EXPECT_TRUE(monitored.count("wr_state"));

    auto log = runInstrumented(bug, mon.module);
    auto final_states = finalStates(fsmTrace(log), mon.monitored);

    // "The read FSM is in RD_FINISH ... the write FSM is in WR_DATA."
    EXPECT_EQ(stateName("rd_state", final_states.at("rd_state"),
                        elaborated.constants),
              "RD_FINISH");
    EXPECT_EQ(stateName("wr_state", final_states.at("wr_state"),
                        elaborated.constants),
              "WR_DATA");
}

TEST(FsmMonitorOnBugs, D1DecoderLoopsBetweenCheckAndDone)
{
    const TestbedBug &bug = bugById("D1");
    auto elaborated = buildDesign(bug, true);
    FsmMonitorResult mon = applyFsmMonitor(*elaborated.mod);
    auto log = runInstrumented(bug, mon.module);
    auto trace = fsmTrace(log);
    // The decoder endlessly rescans: many CHECK<->DONE transitions.
    int check_done_loops = 0;
    for (const auto &entry : trace)
        if (entry.fromState == 2 && entry.toState == 1)
            ++check_done_loops;
    EXPECT_GT(check_done_loops, 2);
}

TEST(FsmMonitorOnBugs, C1DeadlockedFsmNeverLeavesIdle)
{
    const TestbedBug &bug = bugById("C1");
    auto elaborated = buildDesign(bug, true);
    FsmMonitorResult mon = applyFsmMonitor(*elaborated.mod);
    std::set<std::string> monitored(mon.monitored.begin(),
                                    mon.monitored.end());
    ASSERT_TRUE(monitored.count("state"));
    auto log = runInstrumented(bug, mon.module);
    // No transition at all: stuck in C_IDLE from reset.
    EXPECT_TRUE(fsmTrace(log).empty());
    // On the fixed design the same workload produces transitions.
    auto fixed = buildDesign(bug, false);
    FsmMonitorResult mon_fixed = applyFsmMonitor(*fixed.mod);
    auto log_fixed = runInstrumented(bug, mon_fixed.module);
    EXPECT_FALSE(fsmTrace(log_fixed).empty());
}

TEST(FsmMonitorOnBugs, DetectsFsmsInAllFsmBugs)
{
    for (const auto &bug : testbedBugs()) {
        if (!bug.monitors.fsm)
            continue;
        auto elaborated = buildDesign(bug, true);
        FsmMonitorResult mon = applyFsmMonitor(*elaborated.mod);
        EXPECT_FALSE(mon.monitored.empty()) << bug.id;
        EXPECT_GT(mon.generatedLines, 0) << bug.id;
    }
}

// ---------------------------------------------------------------------
// Statistics Monitor (Takeaway #2: input/output counter mismatches)
// ---------------------------------------------------------------------

namespace
{

std::map<std::string, uint64_t>
statRun(const TestbedBug &bug, bool buggy)
{
    auto elaborated = buildDesign(bug, buggy);
    StatsMonitorOptions opts;
    for (const auto &[name, signal] : bug.monitors.statEvents)
        opts.events.push_back(
            StatsEvent{name, hdl::parseExprText(signal)});
    StatsMonitorResult mon = applyStatsMonitor(*elaborated.mod, opts);
    auto sim = simulate(mon.module);
    runWorkload(bug, *sim);
    std::map<std::string, uint64_t> counts;
    for (const auto &[name, signal] : bug.monitors.statEvents)
        counts[name] = sim->peekU64(
            StatsMonitorResult::counterSignal(name));
    return counts;
}

} // namespace

TEST(StatsMonitorOnBugs, D1InputsExceedOutputs)
{
    auto buggy = statRun(bugById("D1"), true);
    EXPECT_GT(buggy["in"], uint64_t(8));
    EXPECT_EQ(buggy["out"], uint64_t(0));
    auto fixed = statRun(bugById("D1"), false);
    EXPECT_EQ(fixed["out"], uint64_t(1));
}

TEST(StatsMonitorOnBugs, D3RequestsOutnumberDeliveries)
{
    auto buggy = statRun(bugById("D3"), true);
    EXPECT_GT(buggy["vm0"], buggy["req"]);
    auto fixed = statRun(bugById("D3"), false);
    EXPECT_EQ(fixed["vm0"], fixed["req"]);
}

TEST(StatsMonitorOnBugs, C2ResponseCountersExposeTheLoss)
{
    auto buggy = statRun(bugById("C2"), true);
    EXPECT_EQ(buggy["resp0"] + buggy["resp1"], uint64_t(4));
    EXPECT_EQ(buggy["resp_out"], uint64_t(2));
    auto fixed = statRun(bugById("C2"), false);
    EXPECT_EQ(fixed["resp_out"], uint64_t(4));
}

TEST(StatsMonitorOnBugs, C4BeatCountersExposeTheLoss)
{
    auto buggy = statRun(bugById("C4"), true);
    EXPECT_GT(buggy["in"], buggy["out"]);
}

TEST(StatsMonitorOnBugs, D11FramesInButNoFramesOut)
{
    auto buggy = statRun(bugById("D11"), true);
    EXPECT_GT(buggy["in_last"], buggy["frames"]);
    auto fixed = statRun(bugById("D11"), false);
    // Fixed: the oversized frame is (intentionally) dropped, the two
    // good frames come out.
    EXPECT_EQ(fixed["frames"], uint64_t(2));
}

// ---------------------------------------------------------------------
// Dependency Monitor
// ---------------------------------------------------------------------

TEST(DepMonitorOnBugs, ChainsContainTheRootCauseRegisters)
{
    struct Expectation
    {
        const char *bugId;
        const char *mustContain;
    };
    const Expectation expectations[] = {
        {"D5", "tbits"},      // truncated length register
        {"D6", "prod_re"},    // truncated product
        {"D9", "byte_cnt"},   // byte ordering control
        {"D10", "acc"},       // unreset accumulator
        {"D13", "cnt"},       // unreset counter
        {"C1", "rx_go"},      // circular partner of tx_go
        {"C3", "sum_buf"},    // extra buffering stage
        {"S3", "hi_last"},    // last-beat bookkeeping
        {"D3", "q0"},         // queue IP output feeding req_data
        {"C2", "stage"},      // the single shared staging register
    };
    for (const auto &expectation : expectations) {
        const TestbedBug &bug = bugById(expectation.bugId);
        ASSERT_FALSE(bug.monitors.depVariable.empty())
            << expectation.bugId;
        auto elaborated = buildDesign(bug, true);
        DepMonitorOptions opts;
        opts.variable = bug.monitors.depVariable;
        opts.cycles = bug.monitors.depCycles;
        DepMonitorResult mon = applyDepMonitor(*elaborated.mod, opts);
        EXPECT_TRUE(mon.chain.count(expectation.mustContain))
            << expectation.bugId << ": chain of "
            << bug.monitors.depVariable << " is missing "
            << expectation.mustContain;
    }
}

TEST(DepMonitorOnBugs, C1ChainShowsTheCircularDependency)
{
    const TestbedBug &bug = bugById("C1");
    auto elaborated = buildDesign(bug, true);
    // tx_go depends on rx_go...
    DepMonitorOptions opts;
    opts.variable = "tx_go";
    opts.cycles = 2;
    DepMonitorResult mon_tx = applyDepMonitor(*elaborated.mod, opts);
    EXPECT_TRUE(mon_tx.chain.count("rx_go"));
    // ...and rx_go depends on tx_go: a cycle.
    opts.variable = "rx_go";
    DepMonitorResult mon_rx = applyDepMonitor(*elaborated.mod, opts);
    EXPECT_TRUE(mon_rx.chain.count("tx_go"));
}

TEST(DepMonitorOnBugs, UpdateLogsFlowDuringTheWorkload)
{
    const TestbedBug &bug = bugById("D10");
    auto elaborated = buildDesign(bug, true);
    DepMonitorOptions opts;
    opts.variable = bug.monitors.depVariable;
    opts.cycles = bug.monitors.depCycles;
    DepMonitorResult mon = applyDepMonitor(*elaborated.mod, opts);
    auto log = runInstrumented(bug, mon.module);
    auto updates = depUpdates(log);
    bool saw_acc = false;
    for (const auto &update : updates)
        if (update.variable == "acc")
            saw_acc = true;
    EXPECT_TRUE(saw_acc);
}

// ---------------------------------------------------------------------
// SignalCat unification over monitor instrumentation
// ---------------------------------------------------------------------

TEST(SignalCatOnBugs, MonitorLogsSurviveTheFpgaRecorderPath)
{
    const TestbedBug &bug = bugById("D2");
    auto elaborated = buildDesign(bug, true);

    // Instrument with FSM Monitor + Statistics Monitor.
    FsmMonitorResult fsm_mon = applyFsmMonitor(*elaborated.mod);
    StatsMonitorOptions stat_opts;
    for (const auto &[name, signal] : bug.monitors.statEvents)
        stat_opts.events.push_back(
            StatsEvent{name, hdl::parseExprText(signal)});
    StatsMonitorResult stat_mon =
        applyStatsMonitor(*fsm_mon.module, stat_opts);

    // Simulation mode: native $display.
    auto sim_log = runInstrumented(bug, stat_mon.module);
    ASSERT_FALSE(sim_log.empty());

    // FPGA mode: SignalCat converts every monitor $display into the
    // recording IP; the reconstructed log must match exactly.
    SignalCatOptions cat_opts;
    cat_opts.bufferDepth = 8192;
    SignalCatResult cat = applySignalCat(*stat_mon.module, cat_opts);
    auto sim = simulate(cat.module);
    runWorkload(bug, *sim);
    EXPECT_TRUE(sim->log().empty());
    auto *recorder = dynamic_cast<sim::SignalRecorder *>(
        sim->primitive(cat.plan.recorderInstance));
    ASSERT_NE(recorder, nullptr);
    auto reconstructed = reconstructLog(*recorder, cat.plan);
    ASSERT_EQ(reconstructed.size(), sim_log.size());
    for (size_t i = 0; i < sim_log.size(); ++i) {
        EXPECT_EQ(reconstructed[i].text, sim_log[i].text);
        EXPECT_EQ(reconstructed[i].cycle, sim_log[i].cycle);
    }
}

TEST(SignalCatOnBugs, MonitorInstrumentationAveragesTensOfLines)
{
    // §6.3: SignalCat and the monitors generate and insert on the
    // order of 72 lines of Verilog per bug.
    int total = 0;
    int count = 0;
    for (const auto &bug : testbedBugs()) {
        auto elaborated = buildDesign(bug, true);
        hdl::ModulePtr mod = elaborated.mod;
        int lines = 0;
        if (bug.monitors.fsm) {
            FsmMonitorResult mon = applyFsmMonitor(*mod);
            lines += mon.generatedLines;
            mod = mon.module;
        }
        if (!bug.monitors.statEvents.empty()) {
            StatsMonitorOptions opts;
            for (const auto &[name, signal] : bug.monitors.statEvents)
                opts.events.push_back(
                    StatsEvent{name, hdl::parseExprText(signal)});
            StatsMonitorResult mon = applyStatsMonitor(*mod, opts);
            lines += mon.generatedLines;
            mod = mon.module;
        }
        if (!bug.monitors.depVariable.empty()) {
            DepMonitorOptions opts;
            opts.variable = bug.monitors.depVariable;
            opts.cycles = bug.monitors.depCycles;
            DepMonitorResult mon = applyDepMonitor(*mod, opts);
            lines += mon.generatedLines;
            mod = mon.module;
        }
        SignalCatResult cat = applySignalCat(*mod);
        lines += cat.generatedLines;
        EXPECT_GT(lines, 0) << bug.id;
        total += lines;
        ++count;
    }
    int average = total / count;
    EXPECT_GT(average, 20);
    EXPECT_LT(average, 200);
}
