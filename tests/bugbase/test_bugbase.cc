/**
 * @file
 * Push-button bug reproduction (Appendix A.5): every testbed bug's
 * buggy variant exhibits its Table 2 symptoms under the trigger
 * workload, and the fixed variant passes the same workload.
 */

#include <gtest/gtest.h>

#include <memory>

#include "bugbase/testbed.hh"
#include "bugbase/workloads.hh"
#include "common/logging.hh"
#include "sim/simulator.hh"

using namespace hwdbg;
using namespace hwdbg::bugs;

namespace
{

std::string
symptomsStr(const std::set<Symptom> &symptoms)
{
    std::string out;
    for (Symptom symptom : symptoms) {
        if (!out.empty())
            out += ", ";
        out += symptomName(symptom);
    }
    return out.empty() ? "(none)" : out;
}

class TestbedReproduction
    : public ::testing::TestWithParam<const char *>
{
};

} // namespace

TEST_P(TestbedReproduction, FixedVariantPasses)
{
    const TestbedBug &bug = bugById(GetParam());
    sim::Simulator sim(buildDesign(bug, false).mod);
    WorkloadResult result = runWorkload(bug, sim);
    EXPECT_TRUE(result.passed)
        << bug.id << " fixed variant failed: " << result.detail
        << " observed: " << symptomsStr(result.observed);
    EXPECT_TRUE(result.observed.empty())
        << "unexpected symptoms: " << symptomsStr(result.observed);
}

TEST_P(TestbedReproduction, BuggyVariantShowsTableSymptoms)
{
    const TestbedBug &bug = bugById(GetParam());
    sim::Simulator sim(buildDesign(bug, true).mod);
    WorkloadResult result = runWorkload(bug, sim);
    EXPECT_FALSE(result.passed) << bug.id << " buggy variant passed";
    EXPECT_EQ(result.observed, bug.symptoms)
        << bug.id << ": observed " << symptomsStr(result.observed)
        << " but Table 2 lists " << symptomsStr(bug.symptoms);
}

static std::vector<const char *>
allBugIds()
{
    std::vector<const char *> ids;
    for (const auto &bug : testbedBugs())
        ids.push_back(bug.id.c_str());
    return ids;
}

INSTANTIATE_TEST_SUITE_P(AllBugs, TestbedReproduction,
                         ::testing::ValuesIn(allBugIds()),
                         [](const auto &info) {
                             return std::string(info.param);
                         });

TEST(TestbedTest, TwentyBugsAcrossThreeClasses)
{
    const auto &bugs = testbedBugs();
    EXPECT_EQ(bugs.size(), 20u);
    int data = 0, comm = 0, sem = 0;
    for (const auto &bug : bugs) {
        switch (bug.bugClass) {
          case BugClass::DataMisAccess: ++data; break;
          case BugClass::Communication: ++comm; break;
          case BugClass::Semantic: ++sem; break;
        }
    }
    EXPECT_EQ(data, 13);
    EXPECT_EQ(comm, 4);
    EXPECT_EQ(sem, 3);
}

TEST(TestbedTest, SevenDataLossBugs)
{
    int loss = 0;
    for (const auto &bug : testbedBugs())
        if (bug.symptoms.count(Symptom::DataLoss))
            ++loss;
    EXPECT_EQ(loss, 7); // §4.5.4: 7 data loss bugs in the testbed
}

TEST(TestbedTest, SignalCatHelpsEverywhereMonitorsHelpAtLeastFour)
{
    int fsm = 0, stat = 0, dep = 0, lc = 0;
    for (const auto &bug : testbedBugs()) {
        EXPECT_TRUE(bug.helpfulTools.count("SC")) << bug.id;
        fsm += bug.helpfulTools.count("FSM");
        stat += bug.helpfulTools.count("Stat");
        dep += bug.helpfulTools.count("Dep");
        lc += bug.helpfulTools.count("LC");
    }
    EXPECT_GE(fsm, 4);
    EXPECT_GE(stat, 4);
    EXPECT_GE(dep, 4);
    EXPECT_EQ(lc, 6); // LossCheck localizes 6 of the 7 loss bugs
}

TEST(TestbedTest, PlatformsMatchApplications)
{
    for (const auto &bug : testbedBugs()) {
        if (bug.application == "Optimus" ||
            bug.application == "SHA512" || bug.application == "RSD" ||
            bug.application == "Grayscale") {
            EXPECT_EQ(bug.platform, "HARP") << bug.id;
        }
    }
    EXPECT_EQ(bugById("S1").platform, "Xilinx");
    EXPECT_EQ(bugById("S2").platform, "Xilinx");
}

TEST(TestbedTest, TargetFrequencies)
{
    // §6.4: Optimus and SHA512 target 400 MHz; the rest target 200.
    for (const auto &bug : testbedBugs()) {
        if (bug.designName == "optimus" || bug.designName == "sha512")
            EXPECT_EQ(bug.targetMhz, 400) << bug.id;
        else
            EXPECT_EQ(bug.targetMhz, 200) << bug.id;
    }
}

TEST(TestbedTest, UnknownBugIdThrows)
{
    EXPECT_THROW(bugById("Z9"), HdlError);
}
