/**
 * @file
 * Printer/parser round-trip over every testbed design.
 *
 * The fuzzer's round-trip oracle (DESIGN.md §9) checks generated
 * designs; this is the same property pinned on the hand-written bug
 * testbed: parse -> print -> parse must reach a structural fixpoint,
 * in the buggy AND the fixed `ifdef variant of every design. A printer
 * that loses parentheses, literal widths, or statement structure shows
 * up here as a structural diff or as churn between two print passes.
 */

#include <gtest/gtest.h>

#include "bugbase/designs.hh"
#include "bugbase/testbed.hh"
#include "hdl/parser.hh"
#include "hdl/preproc.hh"
#include "hdl/printer.hh"

namespace hwdbg
{
namespace
{

using bugs::testbedBugs;

class RoundtripTest
    : public ::testing::TestWithParam<std::tuple<std::string, bool>>
{
};

TEST_P(RoundtripTest, ParsePrintParseIsFixpoint)
{
    const auto &[bug_id, buggy] = GetParam();
    const auto &bug = bugs::bugById(bug_id);
    std::map<std::string, std::string> defines;
    if (buggy)
        defines[bug.bugDefine] = "1";
    std::string text = hdl::preprocess(
        bugs::designSource(bug.designName), defines, bug.designName);

    hdl::Design first = hdl::parse(text, bug.designName);
    std::string printed = hdl::printDesign(first);
    hdl::Design second = hdl::parse(printed, bug.designName + ".2");
    EXPECT_TRUE(hdl::designEquals(first, second))
        << bug.id << (buggy ? " buggy" : " fixed")
        << ": reparse of printed text differs structurally";

    // Printing the reparsed design must reproduce the text verbatim.
    EXPECT_EQ(printed, hdl::printDesign(second))
        << bug.id << (buggy ? " buggy" : " fixed")
        << ": printed text is not a fixpoint";
}

std::vector<std::tuple<std::string, bool>>
allVariants()
{
    std::vector<std::tuple<std::string, bool>> out;
    for (const auto &bug : testbedBugs()) {
        out.emplace_back(bug.id, true);
        out.emplace_back(bug.id, false);
    }
    return out;
}

INSTANTIATE_TEST_SUITE_P(
    AllBugs, RoundtripTest, ::testing::ValuesIn(allVariants()),
    [](const ::testing::TestParamInfo<std::tuple<std::string, bool>>
           &info) {
        return std::get<0>(info.param) +
               (std::get<1>(info.param) ? "_buggy" : "_fixed");
    });

} // namespace
} // namespace hwdbg
