# Golden tests for the `hwdbg cover` CLI: byte-determinism of reports
# across runs, the JSON artifact path (--out + obscheck), file-level
# merge semantics, and the version/provenance surface.

set(work ${CMAKE_CURRENT_BINARY_DIR}/cli_cover_work)
file(MAKE_DIRECTORY ${work})

# Reports are byte-deterministic: the same bug workload rendered twice
# must match exactly, for text and JSON alike.
foreach(bug D3 D4 D7)
    execute_process(COMMAND ${HWDBG} cover --bug ${bug}
                    RESULT_VARIABLE rc OUTPUT_VARIABLE run_a ERROR_QUIET)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "hwdbg cover --bug ${bug} failed (rc=${rc})")
    endif()
    execute_process(COMMAND ${HWDBG} cover --bug ${bug}
                    RESULT_VARIABLE rc OUTPUT_VARIABLE run_b ERROR_QUIET)
    if(NOT run_a STREQUAL run_b)
        message(FATAL_ERROR "cover --bug ${bug} is not deterministic")
    endif()
    if(NOT run_a MATCHES "overall")
        message(FATAL_ERROR "cover --bug ${bug} report is wrong: ${run_a}")
    endif()
    execute_process(COMMAND ${HWDBG} cover --bug ${bug} --format json
                    RESULT_VARIABLE rc OUTPUT_VARIABLE json_a ERROR_QUIET)
    execute_process(COMMAND ${HWDBG} cover --bug ${bug} --format json
                    RESULT_VARIABLE rc OUTPUT_VARIABLE json_b ERROR_QUIET)
    if(NOT json_a STREQUAL json_b)
        message(FATAL_ERROR "cover --bug ${bug} JSON is not deterministic")
    endif()
endforeach()

# --out writes the JSON artifact, and obscheck validates it.
execute_process(COMMAND ${HWDBG} cover --bug D3 --format json
                --out ${work}/d3.cover.json
                RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(NOT rc EQUAL 0 OR NOT EXISTS ${work}/d3.cover.json)
    message(FATAL_ERROR "cover --out did not write the artifact")
endif()
execute_process(COMMAND ${HWDBG} obscheck ${work}/d3.cover.json
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_QUIET)
if(NOT rc EQUAL 0 OR NOT out MATCHES "ok \\(coverage\\)")
    message(FATAL_ERROR "obscheck rejected the coverage artifact: ${out}")
endif()

# Merging a file with itself is a no-op (idempotence at the file level).
execute_process(COMMAND ${HWDBG} cover merge ${work}/d3.cover.json
                ${work}/d3.cover.json --out ${work}/d3.merged.json
                RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "cover merge failed (rc=${rc})")
endif()
file(READ ${work}/d3.cover.json before)
file(READ ${work}/d3.merged.json after)
if(NOT before STREQUAL after)
    message(FATAL_ERROR "self-merge changed the coverage file")
endif()

# Merging across different designs is refused, loudly.
execute_process(COMMAND ${HWDBG} cover --bug D4 --format json
                --out ${work}/d4.cover.json
                RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
execute_process(COMMAND ${HWDBG} cover merge ${work}/d3.cover.json
                ${work}/d4.cover.json
                RESULT_VARIABLE rc OUTPUT_QUIET ERROR_VARIABLE err)
if(rc EQUAL 0)
    message(FATAL_ERROR "cross-design merge should fail")
endif()
if(NOT err MATCHES "fingerprint")
    message(FATAL_ERROR "cross-design merge error is unhelpful: ${err}")
endif()

# The coverage artifact carries build provenance, and `hwdbg version`
# prints the same stamp.
if(NOT before MATCHES "\"build\"")
    message(FATAL_ERROR "coverage JSON is missing the build stamp")
endif()
execute_process(COMMAND ${HWDBG} version
                RESULT_VARIABLE rc OUTPUT_VARIABLE ver ERROR_QUIET)
if(NOT rc EQUAL 0 OR NOT ver MATCHES "^hwdbg [0-9]")
    message(FATAL_ERROR "hwdbg version output is wrong: ${ver}")
endif()
execute_process(COMMAND ${HWDBG} --version
                RESULT_VARIABLE rc OUTPUT_VARIABLE ver2 ERROR_QUIET)
if(NOT ver STREQUAL ver2)
    message(FATAL_ERROR "--version and version disagree")
endif()

message(STATUS "cli_cover checks passed")
