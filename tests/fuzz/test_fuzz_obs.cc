/**
 * @file
 * Observability under the fuzz worker pool: metric snapshots must be
 * byte-identical whatever --jobs was (metrics record work, never
 * timing), and a traced multi-job campaign must produce a valid event
 * stream with one named track per worker.
 */

#include <gtest/gtest.h>

#include <string>

#include "fuzz/runner.hh"
#include "obs/jsoncheck.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace hwdbg::fuzz
{
namespace
{

FuzzConfig
smallCampaign(uint32_t jobs)
{
    FuzzConfig config;
    config.seeds = 8;
    config.cycles = 12;
    config.jobs = jobs;
    return config;
}

TEST(FuzzObs, MetricTotalsIndependentOfJobs)
{
    obs::resetMetrics();
    obs::enableMetrics(true);
    (void)runFuzz(smallCampaign(1));
    std::string jobs1 = obs::metricsJson();

    obs::resetMetrics();
    (void)runFuzz(smallCampaign(4));
    std::string jobs4 = obs::metricsJson();
    obs::enableMetrics(false);
    obs::resetMetrics();

    EXPECT_EQ(obs::checkMetricsJson(jobs1), "");
    EXPECT_EQ(jobs1, jobs4)
        << "metrics depend on the worker count; some instrument is "
           "recording timing or interleaving";
}

TEST(FuzzObs, SeedCountersMatchTheCampaign)
{
    obs::resetMetrics();
    obs::enableMetrics(true);
    FuzzReport report = runFuzz(smallCampaign(2));
    uint64_t seeds = obs::counterValue("fuzz.seeds");
    uint64_t verdicts =
        obs::counterValue("fuzz.oracle.roundtrip.pass") +
        obs::counterValue("fuzz.oracle.roundtrip.fail");
    obs::enableMetrics(false);
    obs::resetMetrics();

    EXPECT_EQ(seeds, report.seedsRun);
    EXPECT_EQ(verdicts, report.seedsRun)
        << "every seed must produce exactly one roundtrip verdict";
    EXPECT_EQ(report.seedLatenciesMs.size(), report.seedsRun);
}

TEST(FuzzObs, TracedCampaignHasPerWorkerTracks)
{
    obs::startTrace();
    (void)runFuzz(smallCampaign(4));
    std::string json = obs::stopTrace();

    // Per-tid balance + timestamp order is the corruption check.
    EXPECT_EQ(obs::checkTraceJson(json), "");
    for (int t = 0; t < 4; ++t)
        EXPECT_NE(json.find("fuzz-worker-" + std::to_string(t)),
                  std::string::npos)
            << "missing track name for worker " << t;
    EXPECT_NE(json.find("seed 0"), std::string::npos);
    EXPECT_NE(json.find("oracle.roundtrip"), std::string::npos);
    EXPECT_NE(json.find("oracle.differential"), std::string::npos);
}

} // namespace
} // namespace hwdbg::fuzz
