/**
 * @file
 * fuzz --cover: signature keys are design-independent and
 * deterministic, coverage folding is independent of the worker count,
 * plateau detection fires, and — critically — enabling coverage never
 * changes the oracle verdicts.
 */

#include <gtest/gtest.h>

#include "cover/run.hh"
#include "cover/signature.hh"
#include "elab/elaborate.hh"
#include "fuzz/generator.hh"
#include "fuzz/runner.hh"

using namespace hwdbg;
using namespace hwdbg::fuzz;

namespace
{

FuzzConfig
smallCampaign()
{
    FuzzConfig config;
    config.seeds = 8;
    config.start = 0;
    config.cycles = 24;
    config.cover = true;
    return config;
}

} // namespace

TEST(FuzzCoverTest, SignatureKeysAreDeterministic)
{
    GeneratedDesign gd = generateDesign(3);
    auto snapA = cover::coverRandom(
        elab::elaborate(gd.design, gd.top).mod, "seed:3", 3, 24);
    GeneratedDesign gd2 = generateDesign(3);
    auto snapB = cover::coverRandom(
        elab::elaborate(gd2.design, gd2.top).mod, "seed:3", 3, 24);
    auto keysA = cover::signatureKeys(snapA);
    EXPECT_FALSE(keysA.empty());
    EXPECT_EQ(keysA, cover::signatureKeys(snapB));
}

TEST(FuzzCoverTest, ReportIsIndependentOfJobs)
{
    FuzzConfig one = smallCampaign();
    one.jobs = 1;
    FuzzConfig four = smallCampaign();
    four.jobs = 4;

    FuzzReport ra = runFuzz(one);
    FuzzReport rb = runFuzz(four);
    // Rendered reports (text and JSON) must be byte-identical.
    EXPECT_EQ(renderReport(ra, one), renderReport(rb, four));
    one.json = four.json = true;
    EXPECT_EQ(renderReport(ra, one), renderReport(rb, four));
}

TEST(FuzzCoverTest, CoverageDoesNotChangeVerdicts)
{
    FuzzConfig with = smallCampaign();
    FuzzConfig without = smallCampaign();
    without.cover = false;

    FuzzReport rw = runFuzz(with);
    FuzzReport ro = runFuzz(without);
    EXPECT_EQ(reportOk(rw), reportOk(ro));
    ASSERT_EQ(rw.failures.size(), ro.failures.size());
    for (size_t i = 0; i < rw.failures.size(); ++i) {
        EXPECT_EQ(rw.failures[i].seed, ro.failures[i].seed);
        EXPECT_EQ(rw.failures[i].oracle, ro.failures[i].oracle);
        EXPECT_EQ(rw.failures[i].detail, ro.failures[i].detail);
    }
}

TEST(FuzzCoverTest, NoveltyFoldsInSeedOrder)
{
    FuzzReport report = runFuzz(smallCampaign());
    ASSERT_EQ(report.coverage.size(), 8u);
    EXPECT_EQ(report.coverage[0].seed, 0u);
    // The first seed's keys are all new by definition.
    EXPECT_EQ(report.coverage[0].newKeys, report.coverage[0].keys);
    EXPECT_GT(report.coverKeys, 0u);
    // The union is at least the best single seed.
    for (const auto &sc : report.coverage)
        EXPECT_LE(sc.keys, report.coverKeys);
}

TEST(FuzzCoverTest, PlateauFiresAfterWindowDrySeeds)
{
    FuzzConfig config = smallCampaign();
    config.coverPlateau = 1;
    FuzzReport report = runFuzz(config);
    // With a window of one, any zero-novelty seed declares a plateau;
    // eight consecutive seeds all finding fresh keys would mean the
    // deliberately finite key space is not saturating as designed.
    EXPECT_TRUE(report.coverPlateaued);
    EXPECT_GT(report.coverPlateauSeed, 0u);

    // Disabled coverage produces no coverage records at all.
    config.cover = false;
    FuzzReport off = runFuzz(config);
    EXPECT_TRUE(off.coverage.empty());
    EXPECT_FALSE(off.coverPlateaued);
}
