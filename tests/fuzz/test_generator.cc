/**
 * @file
 * Properties of the random design generator (DESIGN.md §9).
 *
 * Every oracle depends on three generator guarantees: the same seed
 * reproduces the identical design (replay/shrinking), every design is
 * well-formed (elaborates and simulates), and the seed space actually
 * covers the template zoo (FSMs, FIFOs, memories, submodules,
 * displays) rather than collapsing onto one shape.
 */

#include <gtest/gtest.h>

#include "elab/elaborate.hh"
#include "fuzz/generator.hh"
#include "hdl/ast.hh"
#include "hdl/printer.hh"
#include "sim/simulator.hh"

namespace hwdbg::fuzz
{
namespace
{

TEST(FuzzGenerator, SameSeedSameDesign)
{
    for (uint64_t seed : {0ull, 7ull, 1234ull, 0xdeadbeefull}) {
        GeneratedDesign a = generateDesign(seed);
        GeneratedDesign b = generateDesign(seed);
        EXPECT_TRUE(hdl::designEquals(a.design, b.design))
            << "seed " << seed;
        EXPECT_EQ(hdl::printDesign(a.design),
                  hdl::printDesign(b.design))
            << "seed " << seed;
        EXPECT_EQ(a.top, b.top);
        EXPECT_EQ(a.fsmStateVar, b.fsmStateVar);
        EXPECT_EQ(a.eventSignals, b.eventSignals);
    }
}

TEST(FuzzGenerator, DifferentSeedsDifferentDesigns)
{
    GeneratedDesign a = generateDesign(1);
    GeneratedDesign b = generateDesign(2);
    EXPECT_NE(hdl::printDesign(a.design), hdl::printDesign(b.design));
}

TEST(FuzzGenerator, EverySeedElaboratesAndSimulates)
{
    for (uint64_t seed = 0; seed < 30; ++seed) {
        GeneratedDesign gd = generateDesign(seed);
        hdl::ModulePtr flat;
        ASSERT_NO_THROW(flat = elab::elaborate(gd.design, gd.top).mod)
            << "seed " << seed;
        ASSERT_NO_THROW(sim::Simulator sim(flat)) << "seed " << seed;
    }
}

TEST(FuzzGenerator, MetadataNamesRealPorts)
{
    for (uint64_t seed = 0; seed < 20; ++seed) {
        GeneratedDesign gd = generateDesign(seed);
        const hdl::ModulePtr *top = nullptr;
        for (const auto &mod : gd.design.modules)
            if (mod->name == gd.top)
                top = &mod;
        ASSERT_NE(top, nullptr) << "seed " << seed;
        for (const auto &in : gd.inputs)
            EXPECT_NE((*top)->findNet(in.name), nullptr)
                << "seed " << seed << " input " << in.name;
        for (const auto &out : gd.outputs)
            EXPECT_NE((*top)->findNet(out), nullptr)
                << "seed " << seed << " output " << out;
        if (!gd.fsmStateVar.empty()) {
            EXPECT_NE((*top)->findNet(gd.fsmStateVar), nullptr)
                << "seed " << seed;
        }
        for (const auto &ev : gd.eventSignals)
            EXPECT_NE((*top)->findNet(ev), nullptr)
                << "seed " << seed << " event " << ev;
    }
}

TEST(FuzzGenerator, SeedSpaceCoversTheTemplateZoo)
{
    bool fsm = false, display = false, submodule = false, mem = false;
    for (uint64_t seed = 0; seed < 60; ++seed) {
        GeneratedDesign gd = generateDesign(seed);
        fsm |= !gd.fsmStateVar.empty();
        submodule |= gd.design.modules.size() > 1;
        std::string text = hdl::printDesign(gd.design);
        display |= text.find("$display") != std::string::npos;
        mem |= text.find("[") != std::string::npos &&
               text.find("];") != std::string::npos;
    }
    EXPECT_TRUE(fsm) << "no seed in 0..59 produced an FSM";
    EXPECT_TRUE(display) << "no seed in 0..59 produced a $display";
    EXPECT_TRUE(submodule) << "no seed in 0..59 produced a submodule";
    EXPECT_TRUE(mem) << "no seed in 0..59 produced a memory";
}

} // namespace
} // namespace hwdbg::fuzz
