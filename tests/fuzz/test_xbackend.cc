/**
 * @file
 * The cross-backend fuzz oracle: generated designs must run identically
 * on the interpreter and the compiled bytecode backend, and the oracle
 * must actually catch a backend that diverges.
 */

#include <gtest/gtest.h>

#include "common/testhooks.hh"
#include "compile/backend.hh"
#include "elab/elaborate.hh"
#include "fuzz/generator.hh"
#include "fuzz/oracles.hh"
#include "hdl/parser.hh"
#include "sim/simulator.hh"

using namespace hwdbg;
using namespace hwdbg::fuzz;

TEST(XbackendOracleTest, CleanSweepOverGeneratedDesigns)
{
    // A miniature campaign; the CI fuzz-smoke step and the long-label
    // fuzz_xbackend_500 test run the full-size ones.
    for (uint64_t seed = 1; seed <= 40; ++seed) {
        GeneratedDesign gd = generateDesign(seed, {});
        auto failure = runXbackend(gd, seed, 24);
        ASSERT_FALSE(failure.has_value())
            << "seed " << seed << ": " << failure->detail;
    }
}

TEST(XbackendOracleTest, RegistrationAndNaming)
{
    EXPECT_STREQ(oracleName(Oracle::Xbackend), "xbackend");
    Oracle parsed;
    ASSERT_TRUE(oracleFromName("xbackend", &parsed));
    EXPECT_EQ(parsed, Oracle::Xbackend);
    // Opt-in: the default mask excludes it.
    EXPECT_EQ(OracleOptions().mask & oracleBit(Oracle::Xbackend), 0u);

    OracleOptions opts;
    opts.mask = oracleBit(Oracle::Xbackend);
    GeneratedDesign gd = generateDesign(7, {});
    EXPECT_TRUE(runOracles(gd, 7, opts).empty());
}

TEST(XbackendOracleTest, ComparisonHasTeeth)
{
    // A correct interpreter and a correct lowering can only disagree
    // through stale folding: constants baked in under unmutated
    // semantics survive a mutation armed afterwards, while the
    // interpreter applies the mutation live. Construct exactly that
    // divergence and check the comparison the oracle relies on sees it
    // — guarding both the oracle's sensitivity and the rule that
    // lowering must re-run when a mutation arms.
    hdl::Design design = hdl::parse(
        "module m(input wire clk, output wire [7:0] k);\n"
        "assign k = 8'd3 + 8'd4;\n"
        "endmodule");
    auto mod = elab::elaborate(design, "m").mod;
    sim::Simulator interp(mod);
    sim::Simulator bytecode(mod);
    bytecode.setBackend(compile::makeBytecodeBackend()); // folds k = 7

    activeMutation = MUT_SIM_ADD_AS_SUB;
    interp.eval();   // live mutation: 3 - 4 = 0xFF
    bytecode.eval(); // folded constant survives: still 7
    Bits ki = interp.peek("k");
    Bits kb = bytecode.peek("k");
    activeMutation = MUT_NONE;

    EXPECT_EQ(ki.toU64(), 0xFFu);
    EXPECT_EQ(kb.toU64(), 0x7u);
    EXPECT_NE(ki.toU64(), kb.toU64())
        << "planted divergence was not observable";
}
