/**
 * @file
 * The Order oracle and the simulator's process-permutation hook.
 *
 * The oracle's contract: a divergence between declaration-order and
 * reversed-order execution is a Failure unless the analyze race pass
 * statically flagged the design, and every "confirmed" stat is such a
 * flagged design that really diverged. These tests pin the hook's
 * semantics (blocking visibility follows execution order, NBAs do
 * not), then drive the oracle over hand-written racy and race-free
 * designs and a seed sweep.
 */

#include <gtest/gtest.h>

#include <memory>

#include "common/logging.hh"
#include "elab/elaborate.hh"
#include "fuzz/generator.hh"
#include "fuzz/oracles.hh"
#include "fuzz/runner.hh"
#include "hdl/parser.hh"
#include "sim/simulator.hh"

namespace hwdbg::fuzz
{
namespace
{

std::unique_ptr<sim::Simulator>
makeSim(const std::string &src, const std::string &top = "m")
{
    return std::make_unique<sim::Simulator>(
        elab::elaborate(hdl::parse(src), top).mod);
}

void
tick(sim::Simulator &sim)
{
    sim.poke("clk", uint64_t(0));
    sim.eval();
    sim.poke("clk", uint64_t(1));
    sim.eval();
}

/** Two clocked processes with a blocking-write race: the reader sees
 *  d's new value only when the writer runs first. */
const char *kRacySrc =
    "module m(input wire clk, input wire [3:0] d,\n"
    "         output reg [3:0] q);\n"
    "reg [3:0] x;\n"
    "always @(posedge clk) x = d;\n"
    "always @(posedge clk) q <= x;\nendmodule";

GeneratedDesign
fromSource(const char *src, std::vector<StimulusPort> inputs,
           std::vector<std::string> outputs)
{
    GeneratedDesign gd;
    gd.design = hdl::parse(src, "<order-test>");
    gd.top = "m";
    gd.inputs = std::move(inputs);
    gd.outputs = std::move(outputs);
    return gd;
}

} // namespace

TEST(ProcessOrderTest, ReversedOrderChangesBlockingVisibility)
{
    // Declaration order: x = d runs before q <= x, so q tracks d with
    // no delay. Reversed: q samples the previous x.
    auto sim = makeSim(kRacySrc);
    sim->poke("d", uint64_t(7));
    tick(*sim);
    EXPECT_EQ(sim->peekU64("q"), 7u);

    auto rev = makeSim(kRacySrc);
    rev->setProcessOrder({1, 0});
    rev->poke("d", uint64_t(7));
    tick(*rev);
    EXPECT_EQ(rev->peekU64("q"), 0u);
    tick(*rev);
    EXPECT_EQ(rev->peekU64("q"), 7u);
}

TEST(ProcessOrderTest, EmptyOrderRestoresDeclarationOrder)
{
    auto sim = makeSim(kRacySrc);
    sim->setProcessOrder({1, 0});
    sim->setProcessOrder({});
    sim->poke("d", uint64_t(9));
    tick(*sim);
    EXPECT_EQ(sim->peekU64("q"), 9u);
}

TEST(ProcessOrderTest, NbaOnlyDesignIsOrderIndependent)
{
    const char *src =
        "module m(input wire clk, input wire [3:0] d,\n"
        "         output reg [3:0] q);\n"
        "reg [3:0] x;\n"
        "always @(posedge clk) x <= d;\n"
        "always @(posedge clk) q <= x;\nendmodule";
    auto a = makeSim(src);
    auto b = makeSim(src);
    b->setProcessOrder({1, 0});
    for (uint64_t v : {3u, 12u, 5u, 0u, 15u}) {
        a->poke("d", v);
        b->poke("d", v);
        tick(*a);
        tick(*b);
        EXPECT_EQ(a->peekU64("q"), b->peekU64("q"));
        EXPECT_EQ(a->peekU64("x"), b->peekU64("x"));
    }
}

TEST(ProcessOrderTest, InvalidPermutationIsFatal)
{
    auto sim = makeSim(kRacySrc);
    EXPECT_THROW(sim->setProcessOrder({0}), HdlError);
    EXPECT_THROW(sim->setProcessOrder({0, 0}), HdlError);
    EXPECT_THROW(sim->setProcessOrder({0, 2}), HdlError);
}

TEST(OrderOracleTest, RacyDesignIsFlaggedAndConfirmed)
{
    auto gd = fromSource(kRacySrc, {{"d", 4}}, {"q"});
    OrderStats stats;
    auto failure = runOrder(gd, 1, 24, &stats);
    // The race pass flags the design, so the divergence is a confirmed
    // verdict, not a soundness failure.
    EXPECT_FALSE(failure.has_value())
        << (failure ? failure->detail : "");
    EXPECT_EQ(stats.flagged, 1u);
    EXPECT_EQ(stats.confirmed, 1u);
    EXPECT_EQ(stats.unrefuted, 0u);
}

TEST(OrderOracleTest, CleanDesignAddsNoStats)
{
    const char *src =
        "module m(input wire clk, input wire [3:0] d,\n"
        "         output reg [3:0] q);\n"
        "reg [3:0] x;\n"
        "always @(posedge clk) x <= d;\n"
        "always @(posedge clk) q <= x;\nendmodule";
    auto gd = fromSource(src, {{"d", 4}}, {"q"});
    OrderStats stats;
    auto failure = runOrder(gd, 1, 24, &stats);
    EXPECT_FALSE(failure.has_value())
        << (failure ? failure->detail : "");
    EXPECT_EQ(stats.flagged, 0u);
    EXPECT_EQ(stats.confirmed, 0u);
    EXPECT_EQ(stats.unrefuted, 0u);
}

TEST(OrderOracleTest, SingleProcessDesignIsTriviallyClean)
{
    const char *src =
        "module m(input wire clk, input wire [3:0] d,\n"
        "         output reg [3:0] q);\n"
        "always @(posedge clk) q <= d;\nendmodule";
    auto gd = fromSource(src, {{"d", 4}}, {"q"});
    OrderStats stats;
    EXPECT_FALSE(runOrder(gd, 1, 24, &stats).has_value());
    EXPECT_EQ(stats.confirmed, 0u);
}

TEST(OrderOracleTest, GeneratedSeedsUpholdTheSoundnessContract)
{
    // Sweep generated designs with the race template enabled; any
    // divergence the race pass missed comes back as a Failure and
    // fails the test. The invariant flagged == confirmed + unrefuted
    // must hold at every step.
    GeneratorOptions gopts;
    gopts.raceChance = 60;
    OrderStats stats;
    for (uint64_t seed = 0; seed < 40; ++seed) {
        auto gd = generateDesign(seed, gopts);
        auto failure = runOrder(gd, seed, 24, &stats);
        EXPECT_FALSE(failure.has_value())
            << "seed " << seed << ": "
            << (failure ? failure->detail : "");
        EXPECT_EQ(stats.flagged, stats.confirmed + stats.unrefuted);
    }
    // With the template at 60%, the sweep must actually exercise the
    // confirmation path.
    EXPECT_GT(stats.flagged, 0u);
    EXPECT_GT(stats.confirmed, 0u);
}

TEST(OrderOracleTest, DefaultOptionDesignsUnchangedByRaceKnob)
{
    // raceChance = 0 must not disturb the RNG stream: the generated
    // design is byte-identical to the option-free generator's.
    for (uint64_t seed = 0; seed < 8; ++seed) {
        GeneratorOptions zero;
        zero.raceChance = 0;
        auto a = generateDesign(seed);
        auto b = generateDesign(seed, zero);
        EXPECT_TRUE(hdl::designEquals(a.design, b.design))
            << "seed " << seed;
    }
}

TEST(OrderCampaignTest, RunnerFoldsStatsDeterministically)
{
    FuzzConfig config;
    config.seeds = 30;
    config.cycles = 24;
    config.raceChance = 50;
    config.mask = oracleBit(Oracle::Order);
    config.jobs = 1;
    FuzzReport one = runFuzz(config);
    EXPECT_TRUE(reportOk(one));
    EXPECT_EQ(one.order.flagged,
              one.order.confirmed + one.order.unrefuted);
    EXPECT_GT(one.order.flagged, 0u);

    // Worker count must not change the tally or the report bytes.
    config.jobs = 4;
    FuzzReport four = runFuzz(config);
    EXPECT_EQ(one.order.flagged, four.order.flagged);
    EXPECT_EQ(one.order.confirmed, four.order.confirmed);
    EXPECT_EQ(renderReport(one, config), renderReport(four, config));
}

TEST(OrderCampaignTest, DefaultMaskReportHasNoOrderLines)
{
    FuzzConfig config;
    config.seeds = 3;
    config.cycles = 8;
    FuzzReport report = runFuzz(config);
    std::string text = renderReport(report, config);
    EXPECT_EQ(text.find("order oracle"), std::string::npos);
    config.json = true;
    std::string json = renderReport(report, config);
    EXPECT_EQ(json.find("\"order\""), std::string::npos);
}

} // namespace hwdbg::fuzz
