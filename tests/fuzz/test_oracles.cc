/**
 * @file
 * The fuzz oracles: clean on HEAD, sharp against injected mutations,
 * and regressions for the bugs the first campaigns actually found.
 *
 * Three layers:
 *  - a HEAD sweep (a small fixed seed range must report zero failures
 *    — the tree the tests run on is the tree the fuzzer blesses),
 *  - mutation catches (one representative mutation per oracle flipped
 *    via activeMutation must be caught within a bounded seed budget),
 *  - hand-written reproducers for real bugs the fuzzer surfaced:
 *    negedge-$display recording, blocking-write/$display races being
 *    scoped out of SignalCat, and monitor sampling order around
 *    blocking-assigned event registers.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/testhooks.hh"
#include "core/signalcat.hh"
#include "elab/elaborate.hh"
#include "fuzz/oracles.hh"
#include "hdl/parser.hh"

namespace hwdbg::fuzz
{
namespace
{

/** Flips a mutation on for one scope; never leaks into other tests. */
struct MutationGuard
{
    explicit MutationGuard(int id) { activeMutation = id; }
    ~MutationGuard() { activeMutation = MUT_NONE; }
};

GeneratedDesign
fromSource(const char *src, std::vector<StimulusPort> inputs,
           std::vector<std::string> outputs,
           std::vector<std::string> events = {})
{
    GeneratedDesign gd;
    gd.design = hdl::parse(src, "<oracle-test>");
    gd.top = "t";
    gd.inputs = std::move(inputs);
    gd.outputs = std::move(outputs);
    gd.eventSignals = std::move(events);
    return gd;
}

TEST(FuzzOracles, HeadSeedsAreClean)
{
    OracleOptions opts;
    for (uint64_t seed = 0; seed < 10; ++seed) {
        std::vector<Failure> fails =
            runOracles(generateDesign(seed), seed, opts);
        for (const auto &f : fails)
            ADD_FAILURE() << "seed " << seed << " "
                          << oracleName(f.oracle) << ": " << f.detail;
    }
}

TEST(FuzzOracles, EachOracleCatchesItsRepresentativeMutation)
{
    struct Probe
    {
        int mutation;
        Oracle expected;
    };
    const Probe probes[] = {
        {MUT_SIM_ADD_AS_SUB, Oracle::Differential},
        {MUT_PRINT_SHL_AS_SHR, Oracle::Roundtrip},
        {MUT_LINT_UNUSED_PARITY, Oracle::Lint},
        {MUT_INSTR_FSM_SWAP, Oracle::Instrument},
    };
    OracleOptions opts;
    for (const Probe &probe : probes) {
        MutationGuard guard(probe.mutation);
        bool caught = false;
        for (uint64_t seed = 0; seed < 64 && !caught; ++seed) {
            for (const auto &f :
                 runOracles(generateDesign(seed), seed, opts))
                caught |= f.oracle == probe.expected;
        }
        EXPECT_TRUE(caught)
            << "mutation " << probe.mutation << " escaped "
            << oracleName(probe.expected) << " over seeds 0..63";
    }
}

TEST(FuzzOracles, OracleMaskDisablesOracles)
{
    MutationGuard guard(MUT_SIM_ADD_AS_SUB);
    OracleOptions all;
    uint64_t hit = 0;
    bool caught = false;
    for (uint64_t seed = 0; seed < 64 && !caught; ++seed) {
        hit = seed;
        caught = !runOracles(generateDesign(seed), seed, all).empty();
    }
    ASSERT_TRUE(caught);

    // The same seed with the differential oracle masked off is silent:
    // the arithmetic mutation is invisible to the static oracles.
    OracleOptions masked;
    masked.mask = oracleBit(Oracle::Roundtrip) | oracleBit(Oracle::Lint);
    EXPECT_TRUE(
        runOracles(generateDesign(hit), hit, masked).empty());
}

// Regression: fuzzing found that negedge-clocked $display groups were
// recorded on the wrong phase (the recorder primitive only triggers on
// rising edges, so it must be fed the inverted clock) and that the
// simulator saw a phantom first rising edge on such inverted clocks.
TEST(FuzzOracles, NegedgeDisplaysSurviveAllOracles)
{
    GeneratedDesign gd = fromSource(
        "module t(input wire clk, input wire [3:0] a,\n"
        "         output reg [3:0] q);\n"
        "always @(negedge clk) begin\n"
        "  q <= a;\n"
        "  $display(\"q=%d a=%d\", q, a);\n"
        "end\nendmodule",
        {{"a", 4}}, {"q"});
    OracleOptions opts;
    for (const auto &f : runOracles(gd, 11, opts))
        ADD_FAILURE() << oracleName(f.oracle) << ": " << f.detail;
}

// Regression: a $display that reads a variable a blocking assignment
// updated earlier in the same edge cannot be reproduced by a net-tap
// recorder. SignalCat must refuse such modules (and the instrument
// oracle skips them) instead of recording wrong values.
TEST(FuzzOracles, BlockingWriteDisplayRaceIsOutsideSignalCatScope)
{
    auto flatten = [](const char *src) {
        return elab::elaborate(hdl::parse(src, "<t>"), "t").mod;
    };

    auto racy = flatten(
        "module t(input wire clk, input wire [3:0] a,\n"
        "         output reg [3:0] q);\n"
        "always @(posedge clk) begin\n"
        "  q = a;\n"
        "  $display(\"q=%d\", q);\n"
        "end\nendmodule");
    EXPECT_FALSE(core::signalCatSupported(*racy));
    EXPECT_THROW(core::applySignalCat(*racy), HdlError);

    // The same shape with a nonblocking assignment is recordable.
    auto clean = flatten(
        "module t(input wire clk, input wire [3:0] a,\n"
        "         output reg [3:0] q);\n"
        "always @(posedge clk) begin\n"
        "  q <= a;\n"
        "  $display(\"q=%d\", q);\n"
        "end\nendmodule");
    EXPECT_TRUE(core::signalCatSupported(*clean));

    // Displays split across both clock edges need two sampling clocks;
    // the single-recorder plan cannot express that.
    auto mixed = flatten(
        "module t(input wire clk, output reg [3:0] n);\n"
        "always @(posedge clk) begin\n"
        "  n <= n + 1;\n"
        "  $display(\"p=%d\", n);\n"
        "end\n"
        "always @(negedge clk) $display(\"m=%d\", n);\n"
        "endmodule");
    EXPECT_FALSE(core::signalCatSupported(*mixed));
    EXPECT_THROW(core::applySignalCat(*mixed), HdlError);
}

// Regression: generated monitor processes used to be appended after
// the user's clocked processes, so they read post-edge values of
// blocking-assigned registers and over/under-counted events by the
// edge's own update. Monitors must sample the pre-edge view.
TEST(FuzzOracles, StatsMonitorSamplesBlockingEventsPreEdge)
{
    GeneratedDesign gd = fromSource(
        "module t(input wire clk, input wire [3:0] a,\n"
        "         output reg [3:0] q, output reg ev0);\n"
        "always @(posedge clk) begin\n"
        "  ev0 = a[0] ^ q[0];\n"
        "  q <= q + a;\n"
        "end\nendmodule",
        {{"a", 4}}, {"q", "ev0"}, {"ev0"});
    OracleOptions opts;
    for (const auto &f : runOracles(gd, 26, opts))
        ADD_FAILURE() << oracleName(f.oracle) << ": " << f.detail;
}

} // namespace
} // namespace hwdbg::fuzz
