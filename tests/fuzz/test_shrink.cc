/**
 * @file
 * The delta-debugging shrinker: failure-preserving, monotone, and
 * deterministic.
 *
 * Each case flips a mutation on, sweeps seeds until an oracle fails,
 * shrinks the failing design, and checks the contract from
 * fuzz/shrink.hh: the shrunk design still fails the SAME oracle kind,
 * it is never larger than the original, the interface (ports) is
 * intact so the stimulus still replays, and a second run reproduces
 * the identical reproducer.
 */

#include <gtest/gtest.h>

#include "common/testhooks.hh"
#include "fuzz/oracles.hh"
#include "fuzz/shrink.hh"
#include "hdl/printer.hh"

namespace hwdbg::fuzz
{
namespace
{

struct MutationGuard
{
    explicit MutationGuard(int id) { activeMutation = id; }
    ~MutationGuard() { activeMutation = MUT_NONE; }
};

struct Found
{
    GeneratedDesign gd;
    uint64_t seed = 0;
    Oracle oracle = Oracle::Roundtrip;
};

/** First seed in [0, 64) where any oracle fails under @p mutation. */
std::optional<Found>
firstFailure(int mutation, const OracleOptions &opts)
{
    MutationGuard guard(mutation);
    for (uint64_t seed = 0; seed < 64; ++seed) {
        GeneratedDesign gd = generateDesign(seed);
        std::vector<Failure> fails = runOracles(gd, seed, opts);
        if (!fails.empty())
            return Found{std::move(gd), seed, fails.front().oracle};
    }
    return std::nullopt;
}

void
checkShrinkContract(int mutation)
{
    OracleOptions opts;
    std::optional<Found> found = firstFailure(mutation, opts);
    ASSERT_TRUE(found) << "mutation " << mutation
                       << " never failed over seeds 0..63";

    MutationGuard guard(mutation);
    ShrinkResult res =
        shrinkDesign(found->gd, found->seed, found->oracle, opts);

    EXPECT_LE(res.itemsAfter, res.itemsBefore);
    EXPECT_GT(res.itemsBefore, 0u);

    // Still failing, and failing the same way.
    std::vector<Failure> fails =
        runOracles(res.design, found->seed, opts);
    bool same = false;
    for (const auto &f : fails)
        same |= f.oracle == found->oracle;
    EXPECT_TRUE(same) << "shrunk design no longer fails the "
                      << oracleName(found->oracle) << " oracle";

    // The interface survives: stimulus ports still exist by name.
    EXPECT_EQ(res.design.inputs.size(), found->gd.inputs.size());
    EXPECT_EQ(res.design.outputs.size(), found->gd.outputs.size());

    // Byte-determinism: a second shrink reproduces the reproducer.
    ShrinkResult again =
        shrinkDesign(found->gd, found->seed, found->oracle, opts);
    EXPECT_EQ(hdl::printDesign(res.design.design),
              hdl::printDesign(again.design.design));
    EXPECT_EQ(res.attempts, again.attempts);
}

TEST(FuzzShrink, PreservesDifferentialFailures)
{
    checkShrinkContract(MUT_SIM_ADD_AS_SUB);
}

TEST(FuzzShrink, PreservesRoundtripFailures)
{
    checkShrinkContract(MUT_PRINT_SHL_AS_SHR);
}

TEST(FuzzShrink, PreservesInstrumentFailures)
{
    checkShrinkContract(MUT_INSTR_FSM_SWAP);
}

TEST(FuzzShrink, AttemptBudgetIsRespected)
{
    OracleOptions opts;
    std::optional<Found> found =
        firstFailure(MUT_SIM_ADD_AS_SUB, opts);
    ASSERT_TRUE(found);

    MutationGuard guard(MUT_SIM_ADD_AS_SUB);
    ShrinkResult res = shrinkDesign(found->gd, found->seed,
                                    found->oracle, opts, 10);
    EXPECT_LE(res.attempts, 10u);
    // Even a starved shrink must hand back a failing design.
    EXPECT_FALSE(runOracles(res.design, found->seed, opts).empty());
}

} // namespace
} // namespace hwdbg::fuzz
