/**
 * @file
 * The reference evaluator against the cycle simulator on micro designs.
 *
 * RefEval is the differential oracle's independent model: a direct
 * AST-walking interpreter sharing no evaluation code with sim/. These
 * cases pin both engines to the same answers on the semantics corners
 * the fuzzer leans on - reset, nonblocking swap ordering, blocking
 * updates, default-then-override combinational processes, wide
 * arithmetic, and case label width rules.
 */

#include <gtest/gtest.h>

#include "elab/elaborate.hh"
#include "fuzz/refeval.hh"
#include "hdl/parser.hh"
#include "sim/simulator.hh"

namespace hwdbg::fuzz
{
namespace
{

struct Pair
{
    sim::Simulator sim;
    RefEval ref;

    explicit Pair(const char *src)
        : sim(elab::elaborate(hdl::parse(src, "<t>"), "t").mod),
          ref(elab::elaborate(hdl::parse(src, "<t>"), "t").mod)
    {
    }

    void poke(const std::string &name, uint64_t v, uint32_t w = 1)
    {
        sim.poke(name, Bits(w, v));
        ref.poke(name, Bits(w, v));
    }

    void tick()
    {
        poke("clk", 0);
        sim.eval();
        ref.eval();
        poke("clk", 1);
        sim.eval();
        ref.eval();
    }

    void expectSame(const std::string &name, const char *ctx)
    {
        Bits s = sim.peek(name);
        Bits r = ref.peek(name);
        EXPECT_EQ(s.width(), r.width()) << ctx << ": " << name;
        EXPECT_EQ(s, r) << ctx << ": " << name << " sim=0x"
                        << s.toHexString() << " ref=0x"
                        << r.toHexString();
    }
};

TEST(RefEval, CounterWithReset)
{
    Pair p("module t(input wire clk, input wire rst,\n"
           "         output reg [7:0] n);\n"
           "always @(posedge clk) begin\n"
           "  if (rst) n <= 0; else n <= n + 1;\n"
           "end\nendmodule");
    p.poke("rst", 1);
    p.tick();
    p.poke("rst", 0);
    for (int i = 0; i < 5; ++i)
        p.tick();
    p.expectSame("n", "counter");
    EXPECT_EQ(p.ref.peek("n").toU64(), 5u);
}

TEST(RefEval, NonblockingSwap)
{
    Pair p("module t(input wire clk, output reg [3:0] a,\n"
           "         output reg [3:0] b);\n"
           "always @(posedge clk) begin\n"
           "  a <= b;\n  b <= a;\nend\nendmodule");
    p.tick();
    p.tick();
    p.expectSame("a", "swap");
    p.expectSame("b", "swap");
}

TEST(RefEval, BlockingSeesIntermediateValue)
{
    Pair p("module t(input wire clk, input wire [3:0] x,\n"
           "         output reg [3:0] y);\n"
           "always @(posedge clk) begin\n"
           "  y = x;\n  y = y + 1;\nend\nendmodule");
    p.poke("x", 6, 4);
    p.tick();
    p.expectSame("y", "blocking");
    EXPECT_EQ(p.ref.peek("y").toU64(), 7u);
}

TEST(RefEval, DefaultThenOverrideCombSettles)
{
    // Regression for the settle-loop fix: a comb process that writes a
    // default and then conditionally overrides it toggles values
    // transiently inside every pass; both engines must treat the pass
    // as stable when its end state matches its start state.
    Pair p("module t(input wire clk, input wire c,\n"
           "         output reg r, output reg q);\n"
           "always @* begin\n"
           "  r = 0;\n  if (c) r = 1;\nend\n"
           "always @(posedge clk) q <= r;\nendmodule");
    p.poke("c", 1);
    p.tick();
    p.expectSame("r", "override");
    p.expectSame("q", "override");
    EXPECT_EQ(p.ref.peek("q").toU64(), 1u);
    p.poke("c", 0);
    p.tick();
    EXPECT_EQ(p.ref.peek("q").toU64(), 0u);
}

TEST(RefEval, CaseLabelsMatchAtMaxWidth)
{
    // An over-wide label with set high bits must never match; the
    // exact-width label below it must.
    Pair p("module t(input wire clk, input wire [1:0] s,\n"
           "         output reg [7:0] y);\n"
           "always @(posedge clk) begin\n"
           "  case (s)\n"
           "    4'b0101: y <= 8'h11;\n"
           "    2'b01:   y <= 8'h22;\n"
           "    default: y <= 8'h33;\n"
           "  endcase\nend\nendmodule");
    p.poke("s", 1, 2);
    p.tick();
    p.expectSame("y", "case");
    EXPECT_EQ(p.ref.peek("y").toU64(), 0x22u);
    p.poke("s", 2, 2);
    p.tick();
    EXPECT_EQ(p.ref.peek("y").toU64(), 0x33u);
}

TEST(RefEval, WideArithmeticCarries)
{
    Pair p("module t(input wire clk, input wire [64:0] a,\n"
           "         input wire [64:0] b, output wire [64:0] s);\n"
           "assign s = a + b;\nendmodule");
    p.sim.poke("a", Bits::allOnes(64).resized(65));
    p.ref.poke("a", Bits::allOnes(64).resized(65));
    p.poke("b", 1, 65);
    p.tick();
    p.expectSame("s", "carry");
    EXPECT_TRUE(p.ref.peek("s").bit(64));
}

TEST(RefEval, NegedgeProcessesFireOnFallingEdges)
{
    Pair p("module t(input wire clk, input wire [3:0] x,\n"
           "         output reg [3:0] y);\n"
           "always @(negedge clk) y <= x;\nendmodule");
    p.poke("x", 9, 4);
    p.poke("clk", 1);
    p.sim.eval();
    p.ref.eval();
    p.expectSame("y", "before negedge");
    EXPECT_EQ(p.ref.peek("y").toU64(), 0u);
    p.poke("clk", 0);
    p.sim.eval();
    p.ref.eval();
    p.expectSame("y", "after negedge");
    EXPECT_EQ(p.ref.peek("y").toU64(), 9u);
}

TEST(RefEval, DisplayLogsMatch)
{
    Pair p("module t(input wire clk, output reg [3:0] n);\n"
           "always @(posedge clk) begin\n"
           "  n <= n + 1;\n  $display(\"n=%d\", n);\nend\nendmodule");
    for (int i = 0; i < 3; ++i)
        p.tick();
    const auto &slog = p.sim.log();
    const auto &rlog = p.ref.log();
    ASSERT_EQ(slog.size(), rlog.size());
    for (size_t i = 0; i < slog.size(); ++i) {
        EXPECT_EQ(slog[i].text, rlog[i].text) << "line " << i;
        EXPECT_EQ(slog[i].cycle, rlog[i].cycle) << "line " << i;
    }
}

} // namespace
} // namespace hwdbg::fuzz
