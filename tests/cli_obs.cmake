# Golden tests for the observability CLI surface: `hwdbg profile`,
# the global --trace/--metrics/--quiet options, `hwdbg obscheck`, and
# the cross---jobs byte-determinism of metrics snapshots.

set(work ${CMAKE_CURRENT_BINARY_DIR}/cli_obs_work)
file(MAKE_DIRECTORY ${work})

# ---- hwdbg profile on a bugbase design ------------------------------

execute_process(COMMAND ${HWDBG} testbed emit D1
                RESULT_VARIABLE rc OUTPUT_VARIABLE design
                ERROR_QUIET)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "testbed emit D1 failed (rc=${rc})")
endif()
file(WRITE ${work}/d1.v "${design}")

# --rank evals is the deterministic mode: eval counts are a pure
# function of the stimulus, so two runs must agree on every ranked row.
execute_process(COMMAND ${HWDBG} profile ${work}/d1.v
                --cycles 300 --rank evals
                RESULT_VARIABLE rc OUTPUT_VARIABLE prof_a ERROR_QUIET)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "hwdbg profile failed (rc=${rc}): ${prof_a}")
endif()
foreach(pattern
        "profile: top=rsd cycles=300/300 seed=1"
        "hot constructs \\(ranked by evals\\):"
        "rank kind"
        "seq"
        "always @\\(posedge clk\\)"
        "d1.v:[0-9]+:[0-9]+"
        "hot signals \\(by toggle count\\):"
        "settle: [0-9]+ calls")
    if(NOT prof_a MATCHES "${pattern}")
        message(FATAL_ERROR
                "profile output is missing '${pattern}': ${prof_a}")
    endif()
endforeach()

execute_process(COMMAND ${HWDBG} profile ${work}/d1.v
                --cycles 300 --rank evals
                RESULT_VARIABLE rc OUTPUT_VARIABLE prof_b ERROR_QUIET)
# Wall time varies run to run; everything else must not. Strip the
# time columns ("0.736  63.2%") and the wall= field, then collapse
# whitespace runs — the table's column padding depends on the widths
# of the (stripped) time values, so raw spacing is nondeterministic.
string(REGEX REPLACE "wall=[0-9.]+ ms" "wall=X" prof_a_n "${prof_a}")
string(REGEX REPLACE "wall=[0-9.]+ ms" "wall=X" prof_b_n "${prof_b}")
string(REGEX REPLACE "[0-9]+\\.[0-9]+ +[0-9]+\\.[0-9]+%" "T P"
       prof_a_n "${prof_a_n}")
string(REGEX REPLACE "[0-9]+\\.[0-9]+ +[0-9]+\\.[0-9]+%" "T P"
       prof_b_n "${prof_b_n}")
string(REGEX REPLACE "  +" " " prof_a_n "${prof_a_n}")
string(REGEX REPLACE "  +" " " prof_b_n "${prof_b_n}")
if(NOT prof_a_n STREQUAL prof_b_n)
    message(FATAL_ERROR
            "profile --rank evals is not deterministic:\n--- a\n"
            "${prof_a_n}\n--- b\n${prof_b_n}")
endif()

# JSON mode parses and carries the same report.
execute_process(COMMAND ${HWDBG} profile ${work}/d1.v
                --cycles 100 --format json
                RESULT_VARIABLE rc OUTPUT_VARIABLE prof_json ERROR_QUIET)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "hwdbg profile --format json failed")
endif()
foreach(key "\"top\": \"rsd\"" "\"constructs\": " "\"signals\": "
        "\"settle\": ")
    if(NOT prof_json MATCHES "${key}")
        message(FATAL_ERROR "profile JSON missing ${key}: ${prof_json}")
    endif()
endforeach()

# ---- --trace / --metrics / obscheck ---------------------------------

execute_process(COMMAND ${HWDBG} lint ${work}/d1.v
                --trace ${work}/t.json --metrics ${work}/m.json
                RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(NOT EXISTS ${work}/t.json OR NOT EXISTS ${work}/m.json)
    message(FATAL_ERROR "--trace/--metrics produced no files")
endif()
execute_process(COMMAND ${HWDBG} obscheck ${work}/t.json ${work}/m.json
                RESULT_VARIABLE rc OUTPUT_VARIABLE check_out)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "obscheck rejected our own output: ${check_out}")
endif()
if(NOT check_out MATCHES "t.json: ok \\(trace\\)")
    message(FATAL_ERROR "obscheck did not classify the trace: ${check_out}")
endif()
if(NOT check_out MATCHES "m.json: ok \\(metrics\\)")
    message(FATAL_ERROR "obscheck did not classify metrics: ${check_out}")
endif()

# The trace of a lint run names the pipeline phases.
file(READ ${work}/t.json trace_text)
foreach(span "parse" "elaborate" "lint")
    if(NOT trace_text MATCHES "\"${span}\"")
        message(FATAL_ERROR "trace is missing the ${span} span")
    endif()
endforeach()

# obscheck rejects corrupted files and exits 1.
file(WRITE ${work}/broken.json "{\"traceEvents\": [{\"ph\": \"E\", "
     "\"ts\": 1, \"pid\": 1, \"tid\": 1}]}")
execute_process(COMMAND ${HWDBG} obscheck ${work}/broken.json
                RESULT_VARIABLE rc OUTPUT_VARIABLE broken_out)
if(rc EQUAL 0)
    message(FATAL_ERROR "obscheck accepted an unbalanced trace")
endif()
if(NOT broken_out MATCHES "INVALID")
    message(FATAL_ERROR "obscheck verdict missing: ${broken_out}")
endif()

# ---- metrics byte-determinism across --jobs -------------------------

execute_process(COMMAND ${HWDBG} fuzz --seeds 16 --jobs 1
                --metrics ${work}/m_jobs1.json
                RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "fuzz --jobs 1 --metrics failed")
endif()
execute_process(COMMAND ${HWDBG} fuzz --seeds 16 --jobs 4
                --metrics ${work}/m_jobs4.json
                RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "fuzz --jobs 4 --metrics failed")
endif()
file(READ ${work}/m_jobs1.json m1)
file(READ ${work}/m_jobs4.json m4)
if(NOT m1 STREQUAL m4)
    message(FATAL_ERROR
            "metrics snapshot depends on --jobs:\n--- jobs=1\n${m1}"
            "\n--- jobs=4\n${m4}")
endif()

# A traced multi-job fuzz run carries one named track per worker.
execute_process(COMMAND ${HWDBG} fuzz --seeds 8 --jobs 3
                --trace ${work}/fuzz_trace.json
                RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
execute_process(COMMAND ${HWDBG} obscheck ${work}/fuzz_trace.json
                RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "fuzz trace failed obscheck")
endif()
file(READ ${work}/fuzz_trace.json fuzz_trace)
foreach(worker 0 1 2)
    if(NOT fuzz_trace MATCHES "fuzz-worker-${worker}")
        message(FATAL_ERROR
                "fuzz trace missing the fuzz-worker-${worker} track")
    endif()
endforeach()

# ---- --quiet --------------------------------------------------------

# A design with no clk makes the profiler warn; --quiet must drop it.
file(WRITE ${work}/noclk.v
     "module m(input a, output w);\n    assign w = ~a;\nendmodule\n")
execute_process(COMMAND ${HWDBG} profile ${work}/noclk.v --cycles 5
                RESULT_VARIABLE rc OUTPUT_QUIET
                ERROR_VARIABLE loud_err)
if(NOT loud_err MATCHES "warn: profile: design has no 'clk' input")
    message(FATAL_ERROR "expected a warning without --quiet: ${loud_err}")
endif()
execute_process(COMMAND ${HWDBG} profile ${work}/noclk.v --cycles 5
                --quiet
                RESULT_VARIABLE rc OUTPUT_QUIET
                ERROR_VARIABLE quiet_err)
if(quiet_err MATCHES "warn:")
    message(FATAL_ERROR "--quiet did not silence warn(): ${quiet_err}")
endif()
