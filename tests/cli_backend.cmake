# Golden cross-backend test for `hwdbg debug --backend bytecode`: on
# three testbed bugs, the same scripted machine session runs once on
# the interpreter and once on the compiled bytecode backend, and the
# transcripts must be byte-identical — the debugger cannot tell which
# engine executes the design. Also spot-checks that `cover` snapshots
# and the deterministic half of `profile` agree across backends, and
# that an unknown backend name is rejected.

set(work ${CMAKE_CURRENT_BINARY_DIR}/cli_backend_work)
file(MAKE_DIRECTORY ${work})
set(scripts ${CMAKE_CURRENT_LIST_DIR}/debug/scripts)

function(run_debug_session bug script backend outvar)
    execute_process(COMMAND ${HWDBG} debug --bug ${bug} --machine
                    --backend ${backend} --script ${script}
                    RESULT_VARIABLE rc OUTPUT_VARIABLE out
                    ERROR_VARIABLE err)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR
                "debug --bug ${bug} --backend ${backend} failed "
                "(rc=${rc}): ${out}${err}")
    endif()
    set(${outvar} "${out}" PARENT_SCOPE)
endfunction()

foreach(bug D3 D4 D7)
    string(TOLOWER ${bug} lbug)
    set(script ${scripts}/${lbug}.txt)

    run_debug_session(${bug} ${script} interp interp_out)
    run_debug_session(${bug} ${script} bytecode bytecode_out)
    if(NOT interp_out STREQUAL bytecode_out)
        message(FATAL_ERROR
                "debug --bug ${bug} transcripts differ between "
                "backends:\n--- interp\n${interp_out}\n"
                "--- bytecode\n${bytecode_out}")
    endif()

    # The bytecode transcript is still a valid machine transcript.
    file(WRITE ${work}/${lbug}.jsonl "${bytecode_out}")
    execute_process(COMMAND ${HWDBG} obscheck ${work}/${lbug}.jsonl
                    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_QUIET)
    if(NOT rc EQUAL 0 OR NOT out MATCHES "ok \\(debug transcript\\)")
        message(FATAL_ERROR
                "obscheck rejected the ${bug} bytecode transcript: "
                "${out}")
    endif()
endforeach()

# Coverage snapshots are backend-independent (modulo the volatile
# elapsed-ms field, which runs of the *same* backend don't share
# either — compare through the text report instead, which drops it).
foreach(bug D3 D7)
    execute_process(COMMAND ${HWDBG} cover --bug ${bug}
                    RESULT_VARIABLE rc1 OUTPUT_VARIABLE interp_cov
                    ERROR_QUIET)
    execute_process(COMMAND ${HWDBG} cover --bug ${bug}
                    --backend bytecode
                    RESULT_VARIABLE rc2 OUTPUT_VARIABLE bytecode_cov
                    ERROR_QUIET)
    if(NOT rc1 EQUAL 0 OR NOT rc2 EQUAL 0)
        message(FATAL_ERROR "cover --bug ${bug} failed on a backend")
    endif()
    if(NOT interp_cov STREQUAL bytecode_cov)
        message(FATAL_ERROR
                "cover --bug ${bug} reports differ between backends:\n"
                "--- interp\n${interp_cov}\n"
                "--- bytecode\n${bytecode_cov}")
    endif()
endforeach()

# The deterministic profile ranking (eval counts) matches too.
execute_process(COMMAND ${HWDBG} testbed emit D7
                RESULT_VARIABLE rc OUTPUT_VARIABLE design ERROR_QUIET)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "testbed emit D7 failed (rc=${rc})")
endif()
file(WRITE ${work}/d7.v "${design}")
foreach(backend interp bytecode)
    execute_process(COMMAND ${HWDBG} profile ${work}/d7.v --cycles 200
                    --rank evals --backend ${backend}
                    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_QUIET)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR
                "profile --backend ${backend} failed (rc=${rc})")
    endif()
    # Strip the wall-time columns (ms and %) and the column padding
    # that varies with their digit count; eval counts, construct
    # labels, and toggle ranks must survive untouched.
    string(REGEX REPLACE "[0-9]+\\.[0-9]+" "_" out "${out}")
    string(REGEX REPLACE " +" " " out "${out}")
    set(profile_${backend} "${out}")
endforeach()
if(NOT profile_interp STREQUAL profile_bytecode)
    message(FATAL_ERROR
            "profile eval ranking differs between backends:\n"
            "--- interp\n${profile_interp}\n"
            "--- bytecode\n${profile_bytecode}")
endif()

# Unknown backend names fail fast on every command that accepts one.
foreach(cmdline "debug;--bug;D7" "profile;${work}/d7.v"
        "cover;--bug;D7" "fuzz;--seeds;1")
    execute_process(COMMAND ${HWDBG} ${cmdline} --backend turbo
                    RESULT_VARIABLE rc OUTPUT_VARIABLE out
                    ERROR_VARIABLE err)
    if(rc EQUAL 0)
        message(FATAL_ERROR
                "'${cmdline} --backend turbo' was accepted:\n${out}")
    endif()
    if(NOT err MATCHES "unknown backend 'turbo'")
        message(FATAL_ERROR
                "'${cmdline} --backend turbo' missing diagnostic: "
                "${err}")
    endif()
endforeach()

message(STATUS "cli_backend golden checks passed")
