/**
 * @file
 * The hwdbg-cover JSON format: serialize/parse roundtrip, the schema
 * check behind `hwdbg obscheck`, and the merge algebra the format
 * promises — associative, commutative, idempotent, and refused across
 * differing design fingerprints.
 */

#include <gtest/gtest.h>

#include "cover/run.hh"
#include "cover/snapshot.hh"
#include "elab/elaborate.hh"
#include "hdl/parser.hh"

using namespace hwdbg;
using namespace hwdbg::cover;

namespace
{

const char *kDesign =
    "module m(input wire clk, input wire rst, input wire [3:0] a,\n"
    "         output reg [3:0] q);\n"
    "always @(posedge clk) begin\n"
    "  if (rst) q <= 0;\n"
    "  else if (a[0]) q <= q + a;\n"
    "  else q <= q ^ a;\n"
    "end\n"
    "endmodule\n";

const char *kOtherDesign =
    "module m(input wire clk, output reg [7:0] n);\n"
    "always @(posedge clk) n <= n + 1;\nendmodule\n";

Snapshot
snapFor(const char *src, uint64_t seed, uint32_t cycles = 40)
{
    hdl::Design design = hdl::parse(src);
    return coverRandom(elab::elaborate(design, "m").mod,
                       "seed:" + std::to_string(seed), seed, cycles);
}

std::string
merged(Snapshot a, const Snapshot &b)
{
    EXPECT_EQ(mergeInto(a, b), "");
    return toJson(a);
}

} // namespace

TEST(CoverJsonTest, RoundtripIsByteStable)
{
    Snapshot snap = snapFor(kDesign, 1);
    std::string json = toJson(snap);

    Snapshot parsed;
    std::string error;
    ASSERT_TRUE(parseSnapshot(json, &parsed, &error)) << error;
    EXPECT_EQ(toJson(parsed), json);
    EXPECT_EQ(parsed.fingerprint, snap.fingerprint);
    EXPECT_EQ(parsed.totals().covered(), snap.totals().covered());
}

TEST(CoverJsonTest, SchemaCheckAcceptsValidAndRejectsCorrupt)
{
    Snapshot snap = snapFor(kDesign, 1);
    std::string json = toJson(snap);
    EXPECT_EQ(checkCoverageJson(json), "");

    EXPECT_NE(checkCoverageJson(""), "");
    EXPECT_NE(checkCoverageJson("{}"), "");
    EXPECT_NE(checkCoverageJson(json.substr(0, json.size() / 2)), "");

    // Wrong version number is refused, not guessed at.
    std::string wrong = json;
    auto pos = wrong.find("\"version\": 1,");
    ASSERT_NE(pos, std::string::npos);
    wrong.replace(pos, 13, "\"version\": 9,");
    EXPECT_NE(checkCoverageJson(wrong), "");
}

TEST(CoverMergeTest, Idempotent)
{
    Snapshot a = snapFor(kDesign, 1);
    EXPECT_EQ(merged(a, a), toJson(a));
}

TEST(CoverMergeTest, Commutative)
{
    Snapshot a = snapFor(kDesign, 1);
    Snapshot b = snapFor(kDesign, 2);
    EXPECT_EQ(merged(a, b), merged(b, a));
}

TEST(CoverMergeTest, Associative)
{
    Snapshot a = snapFor(kDesign, 1);
    Snapshot b = snapFor(kDesign, 2);
    Snapshot c = snapFor(kDesign, 3);

    Snapshot ab = a;
    ASSERT_EQ(mergeInto(ab, b), "");
    Snapshot bc = b;
    ASSERT_EQ(mergeInto(bc, c), "");
    EXPECT_EQ(merged(ab, c), merged(a, bc));
}

TEST(CoverMergeTest, UnionsWorkloadsAndNeverLosesCoverage)
{
    Snapshot a = snapFor(kDesign, 1);
    Snapshot b = snapFor(kDesign, 2);
    Snapshot ab = a;
    ASSERT_EQ(mergeInto(ab, b), "");

    ASSERT_EQ(ab.workloads.size(), 2u);
    EXPECT_EQ(ab.workloads[0], "seed:1");
    EXPECT_EQ(ab.workloads[1], "seed:2");
    EXPECT_GE(ab.totals().covered(), a.totals().covered());
    EXPECT_GE(ab.totals().covered(), b.totals().covered());
    EXPECT_EQ(ab.totals().total(), a.totals().total());
}

TEST(CoverMergeTest, RefusesDifferentDesigns)
{
    Snapshot a = snapFor(kDesign, 1);
    Snapshot other = snapFor(kOtherDesign, 1);
    ASSERT_NE(a.fingerprint, other.fingerprint);
    std::string error = mergeInto(a, other);
    EXPECT_NE(error, "");
    EXPECT_NE(error.find("fingerprint"), std::string::npos);
}
