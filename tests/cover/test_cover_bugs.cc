/**
 * @file
 * Push-button coverage over the whole testbed: every Table-2 bug's
 * trigger workload must produce a coverage file that `hwdbg obscheck`
 * validates, with a sane shape and non-trivial coverage (the ISSUE's
 * acceptance bar for the 20-bug sweep).
 */

#include <gtest/gtest.h>

#include "bugbase/testbed.hh"
#include "cover/run.hh"
#include "cover/snapshot.hh"

using namespace hwdbg;
using namespace hwdbg::cover;

TEST(CoverBugsTest, EveryBugWorkloadYieldsValidCoverage)
{
    for (const auto &bug : bugs::testbedBugs()) {
        SCOPED_TRACE(bug.id);
        Snapshot snap = coverBugWorkload(bug, true);

        EXPECT_FALSE(snap.top.empty());
        EXPECT_NE(snap.fingerprint, 0u);
        ASSERT_EQ(snap.workloads.size(), 1u);
        EXPECT_EQ(snap.workloads[0], "bug:" + bug.id);
        EXPECT_FALSE(snap.statements.empty());

        // A trigger workload that exercises nothing would mean the
        // collector is dead, not that the design is idle.
        EXPECT_GT(snap.totals().covered(), 0u);
        EXPECT_GT(snap.totals().stmtHit, 0u);

        EXPECT_EQ(checkCoverageJson(toJson(snap)), "");
    }
}

TEST(CoverBugsTest, BuggyAndFixedShareAFingerprintOnlyIfSameShape)
{
    // The buggy and fixed variants are different elaborated designs
    // whenever the fix changes structure; merging across them must be
    // refused rather than silently blended. D3's fix changes the
    // design, so its fingerprints differ.
    const auto &bug = bugs::bugById("D3");
    Snapshot buggy = coverBugWorkload(bug, true);
    Snapshot fixed = coverBugWorkload(bug, false);
    if (buggy.fingerprint != fixed.fingerprint) {
        EXPECT_NE(mergeInto(buggy, fixed), "");
    }
}

TEST(CoverBugsTest, SameWorkloadTwiceIsByteIdentical)
{
    const auto &bug = bugs::bugById("D4");
    std::string a = toJson(coverBugWorkload(bug, true));
    std::string b = toJson(coverBugWorkload(bug, true));
    EXPECT_EQ(a, b);
}
