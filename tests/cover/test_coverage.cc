/**
 * @file
 * Sim-layer coverage semantics on a hand-built design: deterministic
 * enumeration, statement/arm/toggle marking, mark idempotence, FSM
 * state/transition sampling, and resync after a snapshot restore (time
 * travel must not fabricate transitions).
 */

#include <gtest/gtest.h>

#include <memory>

#include "common/logging.hh"
#include "elab/elaborate.hh"
#include "hdl/parser.hh"
#include "sim/coverage.hh"
#include "sim/simulator.hh"

using namespace hwdbg;
using namespace hwdbg::sim;

namespace
{

const char *kDesign =
    "module m(input wire clk, input wire rst, input wire [1:0] sel,\n"
    "         output reg [3:0] q);\n"
    "reg [1:0] st;\n"
    "always @(posedge clk) begin\n"
    "  if (rst) begin\n"
    "    q <= 0;\n"
    "    st <= 0;\n"
    "  end else begin\n"
    "    case (sel)\n"
    "      2'd0: q <= q + 1;\n"
    "      2'd1: q <= q - 1;\n"
    "      default: q <= q;\n"
    "    endcase\n"
    "    st <= st + 1;\n"
    "  end\n"
    "end\n"
    "endmodule\n";

std::unique_ptr<Simulator>
makeSim()
{
    hdl::Design design = hdl::parse(kDesign);
    return std::make_unique<Simulator>(
        elab::elaborate(design, "m").mod);
}

FsmCoverSpec
stSpec()
{
    FsmCoverSpec spec;
    spec.stateVar = "st";
    spec.states = {0, 1, 2, 3};
    for (uint64_t s = 0; s < 4; ++s) {
        FsmCoverSpec::Transition t;
        t.hasFrom = true;
        t.from = s;
        t.to = (s + 1) % 4;
        spec.transitions.push_back(t);
    }
    return spec;
}

void
tick(Simulator &sim)
{
    sim.poke("clk", Bits(1, 0));
    sim.eval();
    sim.poke("clk", Bits(1, 1));
    sim.eval();
}

/** Index of the first statement of @p kind, or -1. */
int
findStmt(const CoverageItems &items, hdl::StmtKind kind)
{
    for (size_t i = 0; i < items.statements.size(); ++i)
        if (items.statements[i].kind == kind)
            return static_cast<int>(i);
    return -1;
}

const CoverageItems::SignalItem &
findSignal(const CoverageItems &items, const std::string &name)
{
    for (const auto &sig : items.signals)
        if (sig.name == name)
            return sig;
    throw HdlError("no signal " + name);
}

} // namespace

TEST(CoverageItemsTest, EnumerationIsDeterministic)
{
    auto a = makeSim();
    auto b = makeSim();
    CoverageItems ia = buildCoverageItems(a->design(), {stSpec()});
    CoverageItems ib = buildCoverageItems(b->design(), {stSpec()});
    EXPECT_EQ(ia.fingerprint(), ib.fingerprint());
    EXPECT_EQ(ia.statements.size(), ib.statements.size());
    EXPECT_EQ(ia.arms.size(), ib.arms.size());
    EXPECT_EQ(ia.toggleBits, ib.toggleBits);
    ASSERT_FALSE(ia.statements.empty());
    // Ids are the statement's position in the table.
    for (size_t i = 0; i < ia.statements.size(); ++i)
        EXPECT_EQ(ia.statements[i].stmt->coverId,
                  static_cast<int32_t>(i));
}

TEST(CoverageItemsTest, ArmShapes)
{
    auto sim = makeSim();
    CoverageItems items = buildCoverageItems(sim->design());

    int ifId = findStmt(items, hdl::StmtKind::If);
    ASSERT_GE(ifId, 0);
    const auto &ifStmt = items.statements[ifId];
    ASSERT_EQ(ifStmt.armCount, 2u);
    EXPECT_EQ(items.arms[ifStmt.armBase].label, "then");
    EXPECT_EQ(items.arms[ifStmt.armBase + 1].label, "else");

    int caseId = findStmt(items, hdl::StmtKind::Case);
    ASSERT_GE(caseId, 0);
    const auto &caseStmt = items.statements[caseId];
    // Three items including default: no trailing implicit arm.
    ASSERT_EQ(caseStmt.armCount, 3u);
    EXPECT_EQ(items.arms[caseStmt.armBase + 2].label, "default");
}

TEST(CoverageCollectorTest, MarksStatementsArmsAndToggles)
{
    auto sim = makeSim();
    CoverageItems items = buildCoverageItems(sim->design());
    CoverageCollector collector(items);
    sim->enableCoverage(&collector);

    sim->poke("rst", Bits(1, 1));
    sim->poke("sel", Bits(2, 0));
    tick(*sim);

    int ifId = findStmt(items, hdl::StmtKind::If);
    int caseId = findStmt(items, hdl::StmtKind::Case);
    const auto &ifStmt = items.statements[ifId];
    const auto &caseStmt = items.statements[caseId];

    // Under reset only the then-arm runs; the case never executes.
    EXPECT_TRUE(collector.stmtHit(ifId));
    EXPECT_TRUE(collector.armTaken(ifStmt.armBase));
    EXPECT_FALSE(collector.armTaken(ifStmt.armBase + 1));
    EXPECT_FALSE(collector.stmtHit(caseId));

    sim->poke("rst", Bits(1, 0));
    tick(*sim); // case arm 0: q 0 -> 1
    EXPECT_TRUE(collector.armTaken(ifStmt.armBase + 1));
    EXPECT_TRUE(collector.stmtHit(caseId));
    EXPECT_TRUE(collector.armTaken(caseStmt.armBase));
    EXPECT_FALSE(collector.armTaken(caseStmt.armBase + 1));

    const auto &q = findSignal(items, "q");
    EXPECT_TRUE(collector.bitRose(q.bitOffset));
    EXPECT_FALSE(collector.bitFell(q.bitOffset));
    tick(*sim); // q 1 -> 2: bit 0 falls, bit 1 rises
    EXPECT_TRUE(collector.bitFell(q.bitOffset));
    EXPECT_TRUE(collector.bitRose(q.bitOffset + 1));

    // default arm via sel=3
    sim->poke("sel", Bits(2, 3));
    tick(*sim);
    EXPECT_TRUE(collector.armTaken(caseStmt.armBase + 2));
}

TEST(CoverageCollectorTest, PokeCountsAsToggle)
{
    auto sim = makeSim();
    CoverageItems items = buildCoverageItems(sim->design());
    CoverageCollector collector(items);
    sim->enableCoverage(&collector);

    const auto &sel = findSignal(items, "sel");
    EXPECT_FALSE(collector.bitRose(sel.bitOffset + 1));
    sim->poke("sel", Bits(2, 2));
    EXPECT_TRUE(collector.bitRose(sel.bitOffset + 1));
}

TEST(CoverageCollectorTest, DetachedSimulationDoesNotMark)
{
    auto sim = makeSim();
    CoverageItems items = buildCoverageItems(sim->design());
    CoverageCollector collector(items);

    // Never attached: simulate freely, nothing is marked.
    sim->poke("rst", Bits(1, 1));
    tick(*sim);
    EXPECT_EQ(collector.events(), 0u);
    EXPECT_EQ(collector.totals().covered(), 0u);

    // Attach, mark, detach: further simulation adds nothing.
    sim->enableCoverage(&collector);
    sim->poke("rst", Bits(1, 0));
    tick(*sim);
    uint64_t covered = collector.totals().covered();
    EXPECT_GT(covered, 0u);
    sim->enableCoverage(nullptr);
    tick(*sim);
    tick(*sim);
    EXPECT_EQ(collector.totals().covered(), covered);
}

TEST(CoverageCollectorTest, MarksAreIdempotent)
{
    auto sim = makeSim();
    CoverageItems items = buildCoverageItems(sim->design(), {stSpec()});
    CoverageCollector collector(items);
    sim->enableCoverage(&collector);

    sim->poke("rst", Bits(1, 1));
    tick(*sim);
    sim->poke("rst", Bits(1, 0));
    sim->poke("sel", Bits(2, 0));
    // q is a 4-bit counter (period 16) and st a 2-bit one: 40 cycles
    // saturate everything this fixed stimulus can ever reach, so the
    // next 16 cycles re-mark already-set goals and add nothing.
    for (int i = 0; i < 40; ++i)
        tick(*sim);
    CoverageTotals before = collector.totals();
    uint64_t events = collector.events();
    for (int i = 0; i < 16; ++i)
        tick(*sim);
    CoverageTotals after = collector.totals();
    EXPECT_EQ(before.covered(), after.covered());
    EXPECT_GT(collector.events(), events); // hooks did keep firing
}

TEST(CoverageCollectorTest, FsmStatesAndTransitions)
{
    auto sim = makeSim();
    CoverageItems items = buildCoverageItems(sim->design(), {stSpec()});
    ASSERT_EQ(items.fsms.size(), 1u);
    CoverageCollector collector(items);
    sim->enableCoverage(&collector);

    sim->poke("rst", Bits(1, 1));
    tick(*sim);
    sim->poke("rst", Bits(1, 0));
    tick(*sim); // st 0 -> 1
    tick(*sim); // st 1 -> 2

    const auto &fsm = collector.fsmState(0);
    EXPECT_TRUE(fsm.stateSeen[0]);
    EXPECT_TRUE(fsm.stateSeen[1]);
    EXPECT_TRUE(fsm.stateSeen[2]);
    EXPECT_FALSE(fsm.stateSeen[3]);
    EXPECT_TRUE(fsm.transSeen[0]);  // 0 -> 1
    EXPECT_TRUE(fsm.transSeen[1]);  // 1 -> 2
    EXPECT_FALSE(fsm.transSeen[2]); // 2 -> 3
    EXPECT_TRUE(fsm.unexpectedStates.empty());
    EXPECT_TRUE(fsm.unexpectedTransitions.empty());

    CoverageTotals totals = collector.totals();
    EXPECT_EQ(totals.fsmStateTotal, 4u);
    EXPECT_EQ(totals.fsmStateHit, 3u);
    EXPECT_EQ(totals.fsmTransTotal, 4u);
    EXPECT_EQ(totals.fsmTransHit, 2u);
}

TEST(CoverageCollectorTest, RestoreResyncsWithoutFabricating)
{
    auto sim = makeSim();
    CoverageItems items = buildCoverageItems(sim->design(), {stSpec()});
    CoverageCollector collector(items);
    sim->enableCoverage(&collector);

    sim->poke("rst", Bits(1, 1));
    tick(*sim);
    sim->poke("rst", Bits(1, 0));
    tick(*sim); // st = 1
    SimSnapshot snap = sim->saveState();
    tick(*sim); // st = 2
    tick(*sim); // st = 3

    // Jump back from st=3 to st=1. resync() re-seeds the last-state
    // tracker, so neither a declared arc (3 -> 0) nor an unexpected
    // 3 -> 1 observation may appear.
    sim->restoreState(snap);
    tick(*sim); // st 1 -> 2 (again; already marked)

    const auto &fsm = collector.fsmState(0);
    EXPECT_FALSE(fsm.transSeen[3]); // 3 -> 0 never actually happened
    EXPECT_TRUE(fsm.unexpectedTransitions.empty());
}
