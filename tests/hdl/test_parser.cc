/**
 * @file
 * Tests for the Verilog parser.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "hdl/parser.hh"

using namespace hwdbg::hdl;
using hwdbg::HdlError;

namespace
{

ModulePtr
parseOne(const std::string &src)
{
    Design design = parse(src);
    EXPECT_EQ(design.modules.size(), 1u);
    return design.modules[0];
}

} // namespace

TEST(ParserTest, EmptyModule)
{
    auto mod = parseOne("module m();\nendmodule\n");
    EXPECT_EQ(mod->name, "m");
    EXPECT_TRUE(mod->ports.empty());
}

TEST(ParserTest, AnsiPorts)
{
    auto mod = parseOne(
        "module m(input wire clk, input wire [7:0] a, output reg [3:0] b);"
        "endmodule");
    ASSERT_EQ(mod->ports.size(), 3u);
    EXPECT_EQ(mod->ports[0], "clk");
    NetItem *a = mod->findNet("a");
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(a->dir, PortDir::Input);
    EXPECT_EQ(a->net, NetKind::Wire);
    ASSERT_TRUE(a->range.has_value());
    NetItem *b = mod->findNet("b");
    EXPECT_EQ(b->dir, PortDir::Output);
    EXPECT_EQ(b->net, NetKind::Reg);
}

TEST(ParserTest, PortDirectionCarriesOver)
{
    auto mod = parseOne("module m(input wire a, b, output wire c);"
                        "endmodule");
    EXPECT_EQ(mod->findNet("b")->dir, PortDir::Input);
    EXPECT_EQ(mod->findNet("c")->dir, PortDir::Output);
}

TEST(ParserTest, ParameterHeader)
{
    auto mod = parseOne(
        "module m #(parameter W = 8, parameter D = 16)(input wire clk);"
        "endmodule");
    int headers = 0;
    for (const auto &item : mod->items)
        if (item->kind == ItemKind::Param &&
            item->as<ParamItem>()->inHeader)
            ++headers;
    EXPECT_EQ(headers, 2);
}

TEST(ParserTest, BodyParamsAndLocalparams)
{
    auto mod = parseOne(
        "module m();\n"
        "parameter W = 4;\n"
        "localparam IDLE = 2'd0, WORK = 2'd1;\n"
        "endmodule");
    int params = 0, locals = 0;
    for (const auto &item : mod->items) {
        if (item->kind != ItemKind::Param)
            continue;
        if (item->as<ParamItem>()->isLocal)
            ++locals;
        else
            ++params;
    }
    EXPECT_EQ(params, 1);
    EXPECT_EQ(locals, 2);
}

TEST(ParserTest, NetDeclarations)
{
    auto mod = parseOne(
        "module m();\n"
        "wire [7:0] w1, w2;\n"
        "reg r;\n"
        "reg [31:0] mem [0:63];\n"
        "integer i;\n"
        "endmodule");
    EXPECT_EQ(mod->findNet("w1")->net, NetKind::Wire);
    EXPECT_NE(mod->findNet("w2"), nullptr);
    EXPECT_FALSE(mod->findNet("r")->range.has_value());
    ASSERT_TRUE(mod->findNet("mem")->array.has_value());
    ASSERT_TRUE(mod->findNet("i")->range.has_value());
    EXPECT_EQ(mod->findNet("i")->net, NetKind::Reg);
}

TEST(ParserTest, AlwaysPosedge)
{
    auto mod = parseOne(
        "module m(input wire clk);\n"
        "reg [3:0] x;\n"
        "always @(posedge clk) x <= x + 1;\n"
        "endmodule");
    const AlwaysItem *always = nullptr;
    for (const auto &item : mod->items)
        if (item->kind == ItemKind::Always)
            always = item->as<AlwaysItem>();
    ASSERT_NE(always, nullptr);
    EXPECT_FALSE(always->isComb);
    ASSERT_EQ(always->sens.size(), 1u);
    EXPECT_EQ(always->sens[0].signal, "clk");
    EXPECT_EQ(always->sens[0].edge, EdgeKind::Posedge);
    ASSERT_EQ(always->body->kind, StmtKind::Assign);
    EXPECT_TRUE(always->body->as<AssignStmt>()->nonblocking);
}

TEST(ParserTest, AlwaysCombStar)
{
    auto mod = parseOne(
        "module m();\nreg a, b;\nalways @* a = b;\n"
        "always @(*) b = a;\nendmodule");
    int comb = 0;
    for (const auto &item : mod->items)
        if (item->kind == ItemKind::Always &&
            item->as<AlwaysItem>()->isComb)
            ++comb;
    EXPECT_EQ(comb, 2);
}

TEST(ParserTest, CaseStatement)
{
    auto mod = parseOne(
        "module m(input wire clk);\n"
        "reg [1:0] state;\n"
        "always @(posedge clk)\n"
        "  case (state)\n"
        "    2'd0: state <= 2'd1;\n"
        "    2'd1, 2'd2: state <= 2'd0;\n"
        "    default: state <= 2'd0;\n"
        "  endcase\n"
        "endmodule");
    const AlwaysItem *always = nullptr;
    for (const auto &item : mod->items)
        if (item->kind == ItemKind::Always)
            always = item->as<AlwaysItem>();
    ASSERT_EQ(always->body->kind, StmtKind::Case);
    const auto *sel = always->body->as<CaseStmt>();
    ASSERT_EQ(sel->items.size(), 3u);
    EXPECT_EQ(sel->items[1].labels.size(), 2u);
    EXPECT_TRUE(sel->items[2].labels.empty());
}

TEST(ParserTest, OperatorPrecedence)
{
    auto mod = parseOne(
        "module m();\nwire [7:0] a, b, c, x;\n"
        "assign x = a + b * c;\nendmodule");
    const ContAssignItem *assign = nullptr;
    for (const auto &item : mod->items)
        if (item->kind == ItemKind::ContAssign)
            assign = item->as<ContAssignItem>();
    ASSERT_EQ(assign->rhs->kind, ExprKind::Binary);
    const auto *add = assign->rhs->as<BinaryExpr>();
    EXPECT_EQ(add->op, BinaryOp::Add);
    EXPECT_EQ(add->rhs->kind, ExprKind::Binary);
    EXPECT_EQ(add->rhs->as<BinaryExpr>()->op, BinaryOp::Mul);
}

TEST(ParserTest, TernaryRightAssociative)
{
    auto mod = parseOne(
        "module m();\nwire a, b, x, y, z, out;\n"
        "assign out = a ? x : b ? y : z;\nendmodule");
    const ContAssignItem *assign = nullptr;
    for (const auto &item : mod->items)
        if (item->kind == ItemKind::ContAssign)
            assign = item->as<ContAssignItem>();
    ASSERT_EQ(assign->rhs->kind, ExprKind::Ternary);
    EXPECT_EQ(assign->rhs->as<TernaryExpr>()->elseExpr->kind,
              ExprKind::Ternary);
}

TEST(ParserTest, ConcatAndReplication)
{
    auto mod = parseOne(
        "module m();\nwire [15:0] x;\nwire [7:0] a;\n"
        "assign x = {a, {2{4'ha}}};\nendmodule");
    const ContAssignItem *assign = nullptr;
    for (const auto &item : mod->items)
        if (item->kind == ItemKind::ContAssign)
            assign = item->as<ContAssignItem>();
    ASSERT_EQ(assign->rhs->kind, ExprKind::Concat);
    const auto *cat = assign->rhs->as<ConcatExpr>();
    ASSERT_EQ(cat->parts.size(), 2u);
    EXPECT_EQ(cat->parts[1]->kind, ExprKind::Repeat);
}

TEST(ParserTest, BitAndPartSelect)
{
    auto mod = parseOne(
        "module m();\nwire [7:0] a;\nwire b;\nwire [3:0] c;\n"
        "assign b = a[3];\nassign c = a[7:4];\nendmodule");
    std::vector<const ContAssignItem *> assigns;
    for (const auto &item : mod->items)
        if (item->kind == ItemKind::ContAssign)
            assigns.push_back(item->as<ContAssignItem>());
    ASSERT_EQ(assigns.size(), 2u);
    EXPECT_EQ(assigns[0]->rhs->kind, ExprKind::Index);
    EXPECT_EQ(assigns[1]->rhs->kind, ExprKind::Range);
    EXPECT_EQ(assigns[1]->rhs->as<RangeExpr>()->base, "a");
}

TEST(ParserTest, InstanceNamedConnections)
{
    auto mod = parseOne(
        "module m();\nwire a, b;\n"
        "sub #(.W(8)) u_sub (.x(a), .y(b), .z());\nendmodule");
    const InstanceItem *inst = nullptr;
    for (const auto &item : mod->items)
        if (item->kind == ItemKind::Instance)
            inst = item->as<InstanceItem>();
    ASSERT_NE(inst, nullptr);
    EXPECT_EQ(inst->moduleName, "sub");
    EXPECT_EQ(inst->instName, "u_sub");
    ASSERT_EQ(inst->paramOverrides.size(), 1u);
    EXPECT_EQ(inst->paramOverrides[0].first, "W");
    ASSERT_EQ(inst->conns.size(), 3u);
    EXPECT_EQ(inst->conns[2].actual, nullptr);
}

TEST(ParserTest, DisplayAndFinish)
{
    auto mod = parseOne(
        "module m(input wire clk);\nreg [7:0] x;\n"
        "always @(posedge clk) begin\n"
        "  $display(\"x=%d y=%h\", x, x + 1);\n"
        "  $finish;\n"
        "end\nendmodule");
    const AlwaysItem *always = nullptr;
    for (const auto &item : mod->items)
        if (item->kind == ItemKind::Always)
            always = item->as<AlwaysItem>();
    const auto *block = always->body->as<BlockStmt>();
    ASSERT_EQ(block->stmts.size(), 2u);
    ASSERT_EQ(block->stmts[0]->kind, StmtKind::Display);
    const auto *disp = block->stmts[0]->as<DisplayStmt>();
    EXPECT_EQ(disp->format, "x=%d y=%h");
    EXPECT_EQ(disp->args.size(), 2u);
    EXPECT_EQ(block->stmts[1]->kind, StmtKind::Finish);
}

TEST(ParserTest, LValueConcat)
{
    auto mod = parseOne(
        "module m(input wire clk);\nreg c;\nreg [7:0] s;\n"
        "always @(posedge clk) {c, s} <= s + 1;\nendmodule");
    const AlwaysItem *always = nullptr;
    for (const auto &item : mod->items)
        if (item->kind == ItemKind::Always)
            always = item->as<AlwaysItem>();
    EXPECT_EQ(always->body->as<AssignStmt>()->lhs->kind, ExprKind::Concat);
}

TEST(ParserTest, MultipleModules)
{
    Design design = parse("module a(); endmodule\nmodule b(); endmodule");
    EXPECT_EQ(design.modules.size(), 2u);
    EXPECT_NE(design.findModule("a"), nullptr);
    EXPECT_NE(design.findModule("b"), nullptr);
    EXPECT_EQ(design.findModule("c"), nullptr);
}

TEST(ParserTest, ParseWithDefinesSwitchesVariant)
{
    std::string src =
        "module m(input wire clk);\nreg [3:0] x;\n"
        "always @(posedge clk)\n"
        "`ifdef BUG\n  x <= 4'd1;\n`else\n  x <= 4'd2;\n`endif\n"
        "endmodule";
    Design buggy = parseWithDefines(src, {{"BUG", ""}});
    Design fixed = parseWithDefines(src, {});
    EXPECT_EQ(buggy.modules.size(), 1u);
    EXPECT_EQ(fixed.modules.size(), 1u);
}

TEST(ParserTest, ErrorsCarryLocations)
{
    try {
        parse("module m();\nwire w = ;\nendmodule", "bad.v");
        FAIL() << "expected HdlError";
    } catch (const HdlError &err) {
        EXPECT_NE(std::string(err.what()).find("bad.v:2"),
                  std::string::npos)
            << err.what();
    }
}

TEST(ParserTest, RejectsNonAnsiPorts)
{
    EXPECT_THROW(parse("module m(a);\ninput a;\nendmodule"), HdlError);
}

TEST(ParserTest, RejectsInout)
{
    EXPECT_THROW(parse("module m(inout wire a);\nendmodule"), HdlError);
}

TEST(ParserTest, RejectsUnsupportedSystemTask)
{
    EXPECT_THROW(parse("module m(input wire clk);\n"
                       "always @(posedge clk) $stop;\nendmodule"),
                 HdlError);
}
