/**
 * @file
 * Tests for the Verilog code generator, including the round-trip
 * property: print(parse(print(x))) == print(x).
 */

#include <gtest/gtest.h>

#include "hdl/parser.hh"
#include "hdl/printer.hh"

using namespace hwdbg::hdl;

namespace
{

std::string
roundTrip(const std::string &src)
{
    Design design = parse(src);
    return printDesign(design);
}

} // namespace

TEST(PrinterTest, ExprPrecedenceParens)
{
    // (a + b) * c must keep its parentheses.
    auto mod = parse("module m();\nwire [7:0] a, b, c, x;\n"
                     "assign x = (a + b) * c;\nendmodule").modules[0];
    const ContAssignItem *assign = nullptr;
    for (const auto &item : mod->items)
        if (item->kind == ItemKind::ContAssign)
            assign = item->as<ContAssignItem>();
    EXPECT_EQ(printExpr(assign->rhs), "(a + b) * c");
}

TEST(PrinterTest, NoRedundantParens)
{
    auto mod = parse("module m();\nwire [7:0] a, b, c, x;\n"
                     "assign x = a + b * c;\nendmodule").modules[0];
    const ContAssignItem *assign = nullptr;
    for (const auto &item : mod->items)
        if (item->kind == ItemKind::ContAssign)
            assign = item->as<ContAssignItem>();
    EXPECT_EQ(printExpr(assign->rhs), "a + b * c");
}

TEST(PrinterTest, CountCodeLines)
{
    EXPECT_EQ(countCodeLines("a\n\nb\n   \nc\n"), 3);
    EXPECT_EQ(countCodeLines(""), 0);
}

struct RoundTripCase
{
    const char *name;
    const char *src;
};

class PrinterRoundTrip : public ::testing::TestWithParam<RoundTripCase>
{
};

TEST_P(PrinterRoundTrip, PrintParsePrintFixpoint)
{
    std::string first = roundTrip(GetParam().src);
    std::string second = printDesign(parse(first));
    EXPECT_EQ(first, second);
}

static const RoundTripCase round_trip_cases[] = {
    {"empty", "module m(); endmodule"},
    {"ports",
     "module m(input wire clk, input wire [7:0] a, output reg [3:0] b);"
     "endmodule"},
    {"params",
     "module m #(parameter W = 8)(input wire clk);\n"
     "localparam D = W * 2;\nwire [W-1:0] x;\nassign x = D;\nendmodule"},
    {"always",
     "module m(input wire clk, input wire rst);\nreg [3:0] x;\n"
     "always @(posedge clk) begin\n"
     "  if (rst) x <= 4'd0;\n  else x <= x + 4'd1;\nend\nendmodule"},
    {"case",
     "module m(input wire clk);\nreg [1:0] s;\n"
     "always @(posedge clk)\ncase (s)\n 2'd0: s <= 2'd1;\n"
     " 2'd1, 2'd2: s <= 2'd0;\n default: s <= 2'd0;\nendcase\nendmodule"},
    {"memory",
     "module m(input wire clk, input wire [5:0] addr,\n"
     "         input wire [7:0] din, output reg [7:0] dout);\n"
     "reg [7:0] mem [0:63];\n"
     "always @(posedge clk) begin\n"
     "  mem[addr] <= din;\n  dout <= mem[addr];\nend\nendmodule"},
    {"selects",
     "module m();\nwire [15:0] a;\nwire b;\nwire [7:0] c;\n"
     "assign b = a[3];\nassign c = a[15:8];\nendmodule"},
    {"concat",
     "module m(input wire clk);\nreg c;\nreg [7:0] s, t;\n"
     "always @(posedge clk) {c, s} <= {1'h0, t} + 9'h1;\nendmodule"},
    {"ternary",
     "module m();\nwire s;\nwire [7:0] a, b, x;\n"
     "assign x = s ? a : b;\nendmodule"},
    {"unary",
     "module m();\nwire [7:0] a;\nwire x, y, z;\n"
     "assign x = &a;\nassign y = !(|a);\nassign z = ^~a;\nendmodule"},
    {"display",
     "module m(input wire clk);\nreg [7:0] x;\n"
     "always @(posedge clk) begin\n"
     "  $display(\"x=%d at %h\\n\", x, x);\n  $finish;\nend\nendmodule"},
    {"instance",
     "module sub(input wire a, output wire b);\nassign b = a;\n"
     "endmodule\n"
     "module m();\nwire p, q;\nsub u0 (.a(p), .b(q));\nendmodule"},
    {"prim",
     "module m(input wire clk);\nwire [7:0] q;\nwire e, f;\nreg w, r;\n"
     "reg [7:0] d;\n"
     "scfifo #(.WIDTH(8), .DEPTH(16)) u_f (.clock(clk), .data(d),\n"
     "  .wrreq(w), .rdreq(r), .q(q), .empty(e), .full(f));\nendmodule"},
    {"negedge",
     "module m(input wire clk, input wire rst_n);\nreg x;\n"
     "always @(posedge clk or negedge rst_n) x <= 1'h1;\nendmodule"},
};

INSTANTIATE_TEST_SUITE_P(Cases, PrinterRoundTrip,
                         ::testing::ValuesIn(round_trip_cases),
                         [](const auto &info) {
                             return std::string(info.param.name);
                         });
