/**
 * @file
 * Tests for the Verilog preprocessor.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "hdl/preproc.hh"

using hwdbg::HdlError;
using hwdbg::hdl::preprocess;

TEST(PreprocTest, PassThrough)
{
    std::string src = "module m();\nendmodule\n";
    EXPECT_EQ(preprocess(src, {}), "module m();\nendmodule\n");
}

TEST(PreprocTest, IfdefTakenWhenDefined)
{
    std::string src = "`ifdef BUG\nbuggy\n`else\nfixed\n`endif\n";
    std::string with_bug = preprocess(src, {{"BUG", ""}});
    EXPECT_NE(with_bug.find("buggy"), std::string::npos);
    EXPECT_EQ(with_bug.find("fixed"), std::string::npos);

    std::string without = preprocess(src, {});
    EXPECT_EQ(without.find("buggy"), std::string::npos);
    EXPECT_NE(without.find("fixed"), std::string::npos);
}

TEST(PreprocTest, IfndefInverts)
{
    std::string src = "`ifndef BUG\nclean\n`endif\n";
    EXPECT_NE(preprocess(src, {}).find("clean"), std::string::npos);
    EXPECT_EQ(preprocess(src, {{"BUG", ""}}).find("clean"),
              std::string::npos);
}

TEST(PreprocTest, NestedIfdef)
{
    std::string src =
        "`ifdef A\n`ifdef B\nboth\n`endif\nonly_a\n`endif\n";
    std::string both = preprocess(src, {{"A", ""}, {"B", ""}});
    EXPECT_NE(both.find("both"), std::string::npos);
    std::string only_a = preprocess(src, {{"A", ""}});
    EXPECT_EQ(only_a.find("both"), std::string::npos);
    EXPECT_NE(only_a.find("only_a"), std::string::npos);
    std::string neither = preprocess(src, {});
    EXPECT_EQ(neither.find("only_a"), std::string::npos);
}

TEST(PreprocTest, DefineSubstitution)
{
    std::string src = "`define WIDTH 8\nreg [`WIDTH-1:0] x;\n";
    std::string out = preprocess(src, {});
    EXPECT_NE(out.find("reg [8-1:0] x;"), std::string::npos);
}

TEST(PreprocTest, DefineInsideInactiveBlockIgnored)
{
    std::string src =
        "`ifdef NOPE\n`define W 4\n`endif\n`ifdef W\nyes\n`endif\n";
    EXPECT_EQ(preprocess(src, {}).find("yes"), std::string::npos);
}

TEST(PreprocTest, MacroInStringNotExpanded)
{
    std::string src = "`define X 1\n$display(\"`X\");\n";
    std::string out = preprocess(src, {});
    EXPECT_NE(out.find("\"`X\""), std::string::npos);
}

TEST(PreprocTest, UndefinedMacroThrows)
{
    EXPECT_THROW(preprocess("wire w = `NOPE;\n", {}), HdlError);
}

TEST(PreprocTest, UnbalancedEndifThrows)
{
    EXPECT_THROW(preprocess("`endif\n", {}), HdlError);
    EXPECT_THROW(preprocess("`ifdef A\n", {}), HdlError);
    EXPECT_THROW(preprocess("`else\n", {}), HdlError);
}

TEST(PreprocTest, TimescaleDiscarded)
{
    std::string out = preprocess("`timescale 1ns/1ps\nwire w;\n", {});
    EXPECT_EQ(out.find("timescale"), std::string::npos);
    EXPECT_NE(out.find("wire w;"), std::string::npos);
}

TEST(PreprocTest, LineNumbersPreserved)
{
    std::string src = "line1\n`ifdef X\nhidden\n`endif\nline5\n";
    std::string out = preprocess(src, {});
    // line5 must still be on line 5.
    size_t pos = out.find("line5");
    ASSERT_NE(pos, std::string::npos);
    int newlines = 0;
    for (size_t i = 0; i < pos; ++i)
        if (out[i] == '\n')
            ++newlines;
    EXPECT_EQ(newlines, 4);
}
