/**
 * @file
 * Tests for the Verilog lexer.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "hdl/lexer.hh"

using namespace hwdbg::hdl;
using hwdbg::HdlError;

namespace
{

std::vector<TokKind>
kinds(const std::string &src)
{
    std::vector<TokKind> out;
    for (const auto &tok : tokenize(src))
        out.push_back(tok.kind);
    return out;
}

} // namespace

TEST(LexerTest, Keywords)
{
    auto toks = kinds("module endmodule wire reg always begin end");
    std::vector<TokKind> expected = {
        TokKind::KwModule, TokKind::KwEndmodule, TokKind::KwWire,
        TokKind::KwReg, TokKind::KwAlways, TokKind::KwBegin,
        TokKind::KwEnd, TokKind::Eof};
    EXPECT_EQ(toks, expected);
}

TEST(LexerTest, IdentifiersVsKeywords)
{
    auto toks = tokenize("module1 wirex my_reg _x");
    EXPECT_EQ(toks[0].kind, TokKind::Ident);
    EXPECT_EQ(toks[0].text, "module1");
    EXPECT_EQ(toks[1].kind, TokKind::Ident);
    EXPECT_EQ(toks[2].kind, TokKind::Ident);
    EXPECT_EQ(toks[3].kind, TokKind::Ident);
}

TEST(LexerTest, Numbers)
{
    auto toks = tokenize("42 8'hff 4'b1010 12'd99 16'habc_d");
    EXPECT_EQ(toks[0].text, "42");
    EXPECT_EQ(toks[1].text, "8'hff");
    EXPECT_EQ(toks[2].text, "4'b1010");
    EXPECT_EQ(toks[3].text, "12'd99");
    EXPECT_EQ(toks[4].text, "16'habc_d");
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(toks[i].kind, TokKind::Number);
}

TEST(LexerTest, TwoCharOperators)
{
    auto toks = kinds("<= >= == != && || << >>");
    std::vector<TokKind> expected = {
        TokKind::LtEq, TokKind::GtEq, TokKind::EqEq, TokKind::BangEq,
        TokKind::AmpAmp, TokKind::PipePipe, TokKind::LtLt, TokKind::GtGt,
        TokKind::Eof};
    EXPECT_EQ(toks, expected);
}

TEST(LexerTest, LineCommentsSkipped)
{
    auto toks = kinds("wire // comment with module keyword\nreg");
    std::vector<TokKind> expected = {TokKind::KwWire, TokKind::KwReg,
                                     TokKind::Eof};
    EXPECT_EQ(toks, expected);
}

TEST(LexerTest, BlockCommentsSkipped)
{
    auto toks = kinds("wire /* multi\nline\ncomment */ reg");
    std::vector<TokKind> expected = {TokKind::KwWire, TokKind::KwReg,
                                     TokKind::Eof};
    EXPECT_EQ(toks, expected);
}

TEST(LexerTest, StringsWithEscapes)
{
    auto toks = tokenize(R"("hello\nworld \"x\"")");
    ASSERT_EQ(toks[0].kind, TokKind::String);
    EXPECT_EQ(toks[0].text, "hello\nworld \"x\"");
}

TEST(LexerTest, SystemNames)
{
    auto toks = tokenize("$display $finish");
    EXPECT_EQ(toks[0].kind, TokKind::SysName);
    EXPECT_EQ(toks[0].text, "$display");
    EXPECT_EQ(toks[1].text, "$finish");
}

TEST(LexerTest, SourceLocations)
{
    auto toks = tokenize("wire\n  reg", "f.v");
    EXPECT_EQ(toks[0].loc.line, 1);
    EXPECT_EQ(toks[0].loc.col, 1);
    EXPECT_EQ(toks[1].loc.line, 2);
    EXPECT_EQ(toks[1].loc.col, 3);
    EXPECT_EQ(toks[1].loc.file, "f.v");
}

TEST(LexerTest, UnterminatedStringThrows)
{
    EXPECT_THROW(tokenize("\"abc"), HdlError);
}

TEST(LexerTest, UnterminatedBlockCommentThrows)
{
    EXPECT_THROW(tokenize("/* abc"), HdlError);
}

TEST(LexerTest, BadCharacterThrows)
{
    EXPECT_THROW(tokenize("wire \x01"), HdlError);
}
