/**
 * @file
 * Tests for the resource estimator and timing model.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "elab/elaborate.hh"
#include "hdl/parser.hh"
#include "synth/resources.hh"
#include "synth/timing.hh"

using namespace hwdbg;
using namespace hwdbg::hdl;
using namespace hwdbg::synth;

namespace
{

ModulePtr
flat(const std::string &src, const std::string &top = "m")
{
    return elab::elaborate(parse(src), top).mod;
}

} // namespace

TEST(ResourceTest, ScalarRegsCountFlipFlops)
{
    auto mod = flat("module m(input wire clk);\n"
                    "reg [7:0] a;\nreg b;\nreg [31:0] c;\n"
                    "always @(posedge clk) begin a <= a; b <= b;"
                    " c <= c; end\nendmodule");
    ResourceUsage usage = estimateResources(*mod);
    EXPECT_EQ(usage.registers, 41u);
    EXPECT_EQ(usage.bramBits, 0.0);
}

TEST(ResourceTest, LargeMemoryMapsToBram)
{
    auto mod = flat("module m();\nreg [31:0] mem [0:1023];\nendmodule");
    ResourceUsage usage = estimateResources(*mod);
    EXPECT_EQ(usage.bramBits, 32.0 * 1024);
    EXPECT_EQ(usage.registers, 0u);
}

TEST(ResourceTest, SmallMemoryMapsToRegisters)
{
    auto mod = flat("module m();\nreg [7:0] mem [0:3];\nendmodule");
    ResourceUsage usage = estimateResources(*mod);
    EXPECT_EQ(usage.bramBits, 0.0);
    EXPECT_EQ(usage.registers, 32u);
}

TEST(ResourceTest, WiderAdderCostsMoreLogic)
{
    auto narrow = flat("module m(input wire [7:0] a, input wire [7:0] b,"
                       " output wire [7:0] s);\nassign s = a + b;\n"
                       "endmodule");
    auto wide = flat("module m(input wire [63:0] a, input wire [63:0] b,"
                     " output wire [63:0] s);\nassign s = a + b;\n"
                     "endmodule");
    EXPECT_LT(estimateResources(*narrow).logic,
              estimateResources(*wide).logic);
}

TEST(ResourceTest, RecorderBramScalesLinearlyWithDepth)
{
    auto make = [&](int depth) {
        return flat(csprintf(
            "module m(input wire clk, input wire v,\n"
            "         input wire [63:0] d);\n"
            "signal_recorder #(.WIDTH(64), .DEPTH(%d)) u_r (.clk(clk),\n"
            "  .arm(1'b1), .valid(v), .data(d));\nendmodule", depth));
    };
    double bram_1k = estimateResources(*make(1024)).bramBits;
    double bram_2k = estimateResources(*make(2048)).bramBits;
    double bram_8k = estimateResources(*make(8192)).bramBits;
    EXPECT_DOUBLE_EQ(bram_2k, 2 * bram_1k);
    EXPECT_DOUBLE_EQ(bram_8k, 8 * bram_1k);

    // Register/logic cost must stay (nearly) flat with depth: only the
    // write pointer grows, logarithmically.
    auto regs_1k = estimateResources(*make(1024)).registers;
    auto regs_8k = estimateResources(*make(8192)).registers;
    EXPECT_LE(regs_8k - regs_1k, 4u);
}

TEST(ResourceTest, OverheadVsBaseline)
{
    ResourceUsage base{100.0, 50, 20};
    ResourceUsage inst{300.0, 80, 25};
    ResourceUsage overhead = inst.overheadVs(base);
    EXPECT_DOUBLE_EQ(overhead.bramBits, 200.0);
    EXPECT_EQ(overhead.registers, 30u);
    EXPECT_EQ(overhead.logic, 5u);
    // Clamping.
    ResourceUsage negative = base.overheadVs(inst);
    EXPECT_DOUBLE_EQ(negative.bramBits, 0.0);
}

TEST(ResourceTest, NormalizationAgainstPlatforms)
{
    ResourceUsage usage{harpPlatform().bramBits / 2,
                        harpPlatform().registers / 4,
                        harpPlatform().logic / 10};
    NormalizedUsage pct = normalize(usage, harpPlatform());
    EXPECT_NEAR(pct.bramPct, 50.0, 1e-9);
    EXPECT_NEAR(pct.registersPct, 25.0, 1e-9);
    EXPECT_NEAR(pct.logicPct, 10.0, 1e-9);
}

TEST(PlatformTest, Lookup)
{
    EXPECT_EQ(platformByName("HARP").name, "HARP");
    EXPECT_EQ(platformByName("Xilinx").name, "KC705");
    EXPECT_EQ(platformByName("Generic").name, "KC705");
    EXPECT_THROW(platformByName("nope"), HdlError);
    EXPECT_GT(harpPlatform().bramBits, kc705Platform().bramBits);
}

TEST(TimingTest, DeeperLogicIsSlower)
{
    auto shallow = flat(
        "module m(input wire clk, input wire [7:0] a,\n"
        "         output reg [7:0] r);\n"
        "always @(posedge clk) r <= a;\nendmodule");
    auto deep = flat(
        "module m(input wire clk, input wire [31:0] a,\n"
        "         output reg [31:0] r);\n"
        "wire [31:0] t1, t2, t3;\n"
        "assign t1 = a * a;\nassign t2 = t1 * a;\n"
        "assign t3 = t2 * t1;\n"
        "always @(posedge clk) r <= t3;\nendmodule");
    TimingReport fast = estimateTiming(*shallow);
    TimingReport slow = estimateTiming(*deep);
    EXPECT_GT(fast.fmaxMhz, slow.fmaxMhz);
    // The critical path ends at the t3 -> r stage.
    EXPECT_TRUE(slow.criticalSignal == "r" || slow.criticalSignal == "t3")
        << slow.criticalSignal;
}

TEST(TimingTest, SimpleRegisterChainMeets400MHz)
{
    auto mod = flat(
        "module m(input wire clk, input wire [7:0] a,\n"
        "         output reg [7:0] r);\n"
        "always @(posedge clk) r <= a;\nendmodule");
    TimingReport report = estimateTiming(*mod);
    EXPECT_TRUE(meetsTarget(report, 400.0));
}

TEST(TimingTest, LongMultiplyChainFails400MHz)
{
    auto mod = flat(
        "module m(input wire clk, input wire [63:0] a,\n"
        "         output reg [63:0] r);\n"
        "wire [63:0] t1, t2;\n"
        "assign t1 = a * a;\nassign t2 = t1 * t1;\n"
        "always @(posedge clk) r <= t2;\nendmodule");
    TimingReport report = estimateTiming(*mod);
    EXPECT_FALSE(meetsTarget(report, 400.0));
}

TEST(TimingTest, WireChainDelaysAccumulate)
{
    auto one = flat(
        "module m(input wire clk, input wire [31:0] a,\n"
        "         output reg [31:0] r);\n"
        "wire [31:0] t1;\nassign t1 = a + 1;\n"
        "always @(posedge clk) r <= t1;\nendmodule");
    auto three = flat(
        "module m(input wire clk, input wire [31:0] a,\n"
        "         output reg [31:0] r);\n"
        "wire [31:0] t1, t2, t3;\n"
        "assign t1 = a + 1;\nassign t2 = t1 + 1;\nassign t3 = t2 + 1;\n"
        "always @(posedge clk) r <= t3;\nendmodule");
    EXPECT_GT(estimateTiming(*three).criticalPathNs,
              estimateTiming(*one).criticalPathNs);
}
