# CLI help surface: the top-level usage lists every command in the
# dispatch table, `hwdbg help <command>` prints each command's detail,
# and unknown names fail loudly. Keyed to the same table that drives
# dispatch, so a new command cannot ship without help text.

set(all_commands parse lint analyze fsm deps signalcat losscheck
    resources timing testbed fuzz profile cover trace obscheck debug
    serve version help)

# hwdbg with no arguments prints the usage listing and exits 2.
execute_process(COMMAND ${HWDBG}
                RESULT_VARIABLE rc OUTPUT_VARIABLE out
                ERROR_VARIABLE err)
set(usage "${out}${err}")
if(rc EQUAL 0)
    message(FATAL_ERROR "bare hwdbg should exit non-zero")
endif()
foreach(cmd ${all_commands})
    if(NOT usage MATCHES "\n  ${cmd} ")
        message(FATAL_ERROR
                "usage() does not list command '${cmd}':\n${usage}")
    endif()
endforeach()
if(NOT usage MATCHES "--trace FILE")
    message(FATAL_ERROR "usage() lost the common options:\n${usage}")
endif()

# Every command has non-empty `hwdbg help <cmd>` output carrying its
# synopsis line.
foreach(cmd ${all_commands})
    execute_process(COMMAND ${HWDBG} help ${cmd}
                    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_QUIET)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "hwdbg help ${cmd} failed (rc=${rc})")
    endif()
    if(NOT out MATCHES "usage: hwdbg ${cmd}")
        message(FATAL_ERROR
                "help ${cmd} is missing its synopsis:\n${out}")
    endif()
endforeach()

# Spot-check that the debug command documents its core options.
execute_process(COMMAND ${HWDBG} help debug
                OUTPUT_VARIABLE out ERROR_QUIET)
foreach(pattern "--bug ID" "--machine" "--script FILE" "--stimulus FILE"
        "--checkpoint-interval")
    if(NOT out MATCHES "${pattern}")
        message(FATAL_ERROR
                "help debug is missing '${pattern}':\n${out}")
    endif()
endforeach()

# Spot-check that serve documents its telemetry surface: the server
# flags, the introspection commands, and the client-side monitor.
execute_process(COMMAND ${HWDBG} help serve
                OUTPUT_VARIABLE out ERROR_QUIET)
foreach(pattern "--slow-us" "--reqlog" "--no-telemetry" "--monitor"
        "--interval" "--iterations" "stats" "health" "slow")
    if(NOT out MATCHES "${pattern}")
        message(FATAL_ERROR
                "help serve is missing '${pattern}':\n${out}")
    endif()
endforeach()

# Unknown names fail, both as a command and as a help topic.
execute_process(COMMAND ${HWDBG} no-such-command
                RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(rc EQUAL 0)
    message(FATAL_ERROR "unknown command should exit non-zero")
endif()
execute_process(COMMAND ${HWDBG} help no-such-command
                RESULT_VARIABLE rc OUTPUT_QUIET ERROR_VARIABLE err)
if(rc EQUAL 0 OR NOT err MATCHES "unknown command")
    message(FATAL_ERROR "help for an unknown command should fail: ${err}")
endif()

message(STATUS "cli_help checks passed")
