/**
 * @file
 * Serve telemetry: the hwdbg-serve-stats v1 document validates and
 * reconciles, deterministic fields survive a double run byte-identical
 * under concurrent TCP load, stats requests never observe themselves,
 * the slow ring and JSON-lines spill capture what they claim, and a
 * loaded server emits one named Perfetto track per session.
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.hh"
#include "obs/jsoncheck.hh"
#include "obs/trace.hh"
#include "serve/server.hh"
#include "serve/stats.hh"

using namespace hwdbg;
using namespace hwdbg::serve;

namespace
{

/** A slow threshold no test machine will ever cross. */
constexpr uint64_t kNeverSlowUs = 600000000;

ServerOptions
quietOptions()
{
    ServerOptions opts;
    opts.slowThresholdUs = kNeverSlowUs;
    return opts;
}

std::string
runScript(Server &server, const std::string &script)
{
    std::istringstream in(script);
    std::ostringstream out;
    server.runChannel(in, out);
    return out.str();
}

bool
readLine(int fd, std::string *out)
{
    out->clear();
    char ch;
    while (true) {
        ssize_t n = ::read(fd, &ch, 1);
        if (n <= 0)
            return !out->empty();
        if (ch == '\n')
            return true;
        out->push_back(ch);
    }
}

bool
writeAll(int fd, const std::string &text)
{
    size_t off = 0;
    while (off < text.size()) {
        ssize_t n = ::write(fd, text.data() + off, text.size() - off);
        if (n <= 0)
            return false;
        off += static_cast<size_t>(n);
    }
    return true;
}

int
connectLoopback(uint16_t port)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

double
docNumber(const obs::JsonValue &root, const char *section,
          const char *key)
{
    const auto *obj = root.get(section);
    if (!obj)
        return -1;
    const auto *v = obj->get(key);
    return v && v->isNumber() ? v->number : -1;
}

/**
 * Drive one server through a fixed concurrent-TCP workload and return
 * its stats document after full quiesce. Opens are serialized so the
 * cache hit/miss attribution in the sessions rows is deterministic;
 * the command phase runs fully concurrently. Returns "" on socket
 * failure (caller skips).
 */
std::string
loadedServerStats(Server &server, int clients, int steps)
{
    uint16_t port = 0;
    try {
        port = server.listenTcp(0);
    } catch (const HdlError &) {
        return "";
    }
    std::thread acceptor([&server] { server.acceptLoop(); });

    std::vector<int> fds;
    std::vector<int64_t> sids;
    for (int c = 0; c < clients; ++c) {
        int fd = connectLoopback(port);
        if (fd < 0)
            break;
        std::string line;
        readLine(fd, &line); // hello
        writeAll(fd, "open debug bug=D4\n");
        readLine(fd, &line);
        std::string error;
        auto root = obs::parseJson(line, &error);
        const obs::JsonValue *payload =
            root ? root->get("payload") : nullptr;
        const obs::JsonValue *sid =
            payload ? payload->get("session") : nullptr;
        if (!sid) {
            ::close(fd);
            break;
        }
        fds.push_back(fd);
        sids.push_back(static_cast<int64_t>(sid->number));
    }

    std::vector<std::thread> workers;
    std::atomic<int> failures{0};
    for (size_t c = 0; c < fds.size(); ++c)
        workers.emplace_back([&, c] {
            std::string at = "@" + std::to_string(sids[c]) + " ";
            std::string line;
            for (int i = 0; i < steps; ++i) {
                if (!writeAll(fds[c], at + "step 2\n") ||
                    !readLine(fds[c], &line)) {
                    ++failures;
                    return;
                }
            }
            if (!writeAll(fds[c], at + "info checkpoints\n") ||
                !readLine(fds[c], &line))
                ++failures;
        });
    for (auto &worker : workers)
        worker.join();
    for (int fd : fds)
        ::close(fd);

    // Sessions stay open (their rows must appear in the stats doc);
    // a control client stops the accept loop, and joining it means
    // every channel worker has retired too.
    int ctl = connectLoopback(port);
    if (ctl >= 0) {
        std::string line;
        readLine(ctl, &line);
        writeAll(ctl, "shutdown\n");
        readLine(ctl, &line);
        ::close(ctl);
    } else {
        server.shutdown();
    }
    acceptor.join();
    if (failures.load() || fds.size() != static_cast<size_t>(clients))
        return "";
    return server.statsJson();
}

} // namespace

TEST(ServeTelemetryTest, StatsDocumentValidatesAndCountsRequests)
{
    Server server(quietOptions());
    std::string transcript = runScript(server,
                                       "open debug bug=D4\n"
                                       "open cover bug=D4\n"
                                       "@1 step 3\n"
                                       "@1 info breakpoints\n"
                                       "bogus\n"
                                       "quit\n");
    EXPECT_EQ(checkServeTranscript(transcript), "");

    std::string doc = server.statsJson();
    EXPECT_EQ(checkServeStatsJson(doc), "") << doc;

    std::string error;
    auto root = obs::parseJson(doc, &error);
    ASSERT_TRUE(root) << error;
    EXPECT_EQ(docNumber(*root, "server", "requests"), 6);
    EXPECT_EQ(docNumber(*root, "server", "errors"), 1); // bogus
    EXPECT_EQ(docNumber(*root, "server", "slow"), 0);
    EXPECT_EQ(docNumber(*root, "server", "opened"), 2);
    EXPECT_EQ(docNumber(*root, "server", "dispatched"), 2);
    EXPECT_EQ(docNumber(*root, "cache", "builds"), 1);
    EXPECT_EQ(docNumber(*root, "cache", "hits"), 1);

    // Per-command rows exist for everything that ran, including the
    // failed command under its "?"-free name.
    const auto *cmds = root->get("commands");
    ASSERT_TRUE(cmds && cmds->isArray());
    bool sawOpen = false, sawStep = false, sawBogus = false;
    for (const auto &entry : cmds->elems) {
        const std::string &name = entry->get("cmd")->text;
        if (name == "open") {
            sawOpen = true;
            EXPECT_EQ(entry->get("count")->number, 2);
        }
        if (name == "step")
            sawStep = true;
        if (name == "bogus") {
            sawBogus = true;
            EXPECT_EQ(entry->get("errors")->number, 1);
        }
    }
    EXPECT_TRUE(sawOpen);
    EXPECT_TRUE(sawStep);
    EXPECT_TRUE(sawBogus);

    // Satellite: build provenance is embedded in the stats document.
    const auto *build = root->get("build");
    ASSERT_TRUE(build && build->isObject());
    EXPECT_TRUE(build->get("version"));
}

TEST(ServeTelemetryTest, StatsRequestDoesNotObserveItself)
{
    Server server(quietOptions());
    std::string transcript = runScript(server, "stats\nquit\n");
    EXPECT_EQ(checkServeTranscript(transcript), "");
    // The first stats document of the run must show an untouched
    // server: zero requests, no command rows (recording happens only
    // after the response is rendered).
    EXPECT_NE(transcript.find("\"requests\":0"), std::string::npos)
        << transcript;
    EXPECT_NE(transcript.find("\"commands\":[]"), std::string::npos);
    // ...but the log itself did record both the stats and the quit.
    EXPECT_EQ(server.requestLog().requests(), 2u);
}

TEST(ServeTelemetryTest, TotalsReconcileAcrossRetiredSessions)
{
    Server server(quietOptions());
    std::string transcript = runScript(server,
                                       "open debug bug=D4\n"
                                       "open debug bug=D4\n"
                                       "@1 step 2\n"
                                       "@2 step 5\n"
                                       "@2 step 1\n"
                                       "@1 quit\n"
                                       "quit\n");
    EXPECT_EQ(checkServeTranscript(transcript), "");

    std::string doc = server.statsJson();
    EXPECT_EQ(checkServeStatsJson(doc), "") << doc;
    std::string error;
    auto root = obs::parseJson(doc, &error);
    ASSERT_TRUE(root) << error;

    // Session 1 retired via routed quit; its dispatch counts must have
    // folded into the retired totals so the global invariant holds:
    // sum(live session cmds) + retired == dispatched.
    double retired = docNumber(*root, "server", "retired_cmds");
    double dispatched = docNumber(*root, "server", "dispatched");
    EXPECT_EQ(retired, 2);    // @1 step + @1 quit
    EXPECT_EQ(dispatched, 4); // all routed commands
    const auto *sessions = root->get("sessions");
    ASSERT_TRUE(sessions && sessions->isArray());
    ASSERT_EQ(sessions->elems.size(), 1u); // only session 2 lives
    double live = sessions->elems[0]->get("cmds")->number;
    EXPECT_EQ(live + retired, dispatched);
}

TEST(ServeTelemetryTest, LoadedStatsAreByteDeterministicAndReconcile)
{
    constexpr int kClients = 4;
    constexpr int kSteps = 5;

    Server serverA(quietOptions());
    std::string docA = loadedServerStats(serverA, kClients, kSteps);
    if (docA.empty())
        GTEST_SKIP() << "no loopback TCP in this environment";
    Server serverB(quietOptions());
    std::string docB = loadedServerStats(serverB, kClients, kSteps);
    ASSERT_FALSE(docB.empty());

    EXPECT_EQ(checkServeStatsJson(docA), "") << docA;
    // Identical workloads must agree on every deterministic field;
    // only wall-clock `_us` values may differ between the runs.
    EXPECT_EQ(scrubServeTimings(docA), scrubServeTimings(docB));

    std::string error;
    auto root = obs::parseJson(docA, &error);
    ASSERT_TRUE(root) << error;
    // 4 opens + 4*(steps+1) routed + 1 shutdown, across 5 channels.
    EXPECT_EQ(docNumber(*root, "server", "requests"),
              kClients * (kSteps + 2) + 1);
    EXPECT_EQ(docNumber(*root, "server", "channels"), kClients + 1);
    EXPECT_EQ(docNumber(*root, "server", "channels_active"), 0);
    EXPECT_EQ(docNumber(*root, "server", "errors"), 0);
    EXPECT_EQ(docNumber(*root, "cache", "builds"), 1);

    // Totals reconcile: no session was closed, so the live per-session
    // counts alone must sum to the dispatch total.
    const auto *sessions = root->get("sessions");
    ASSERT_TRUE(sessions && sessions->isArray());
    ASSERT_EQ(sessions->elems.size(), size_t(kClients));
    double liveSum = 0;
    for (const auto &entry : sessions->elems)
        liveSum += entry->get("cmds")->number;
    EXPECT_EQ(liveSum + docNumber(*root, "server", "retired_cmds"),
              docNumber(*root, "server", "dispatched"));
}

TEST(ServeTelemetryTest, SlowRingAndHealthAndSlowCommands)
{
    ServerOptions opts;
    opts.slowThresholdUs = 0; // everything is slow, deterministically
    Server server(opts);
    std::string transcript = runScript(server,
                                       "open cover bug=D4\n"
                                       "sessions\n"
                                       "health\n"
                                       "slow\n"
                                       "quit\n");
    EXPECT_EQ(checkServeTranscript(transcript), "");
    // health is a cheap liveness probe with its own fields.
    EXPECT_NE(transcript.find("\"status\":\"ok\""), std::string::npos);
    // The slow response was rendered before recording itself, so it
    // reported the three prior requests.
    EXPECT_NE(transcript.find("\"threshold_us\":0"), std::string::npos);
    EXPECT_NE(transcript.find("\"count\":3"), std::string::npos)
        << transcript;
    EXPECT_NE(transcript.find("\"cmd\": \"open\""), std::string::npos);
    // After the full run all five requests crossed the 0 threshold.
    EXPECT_EQ(server.requestLog().slowCount(), 5u);
    ASSERT_EQ(server.requestLog().slow().size(), 5u);
    EXPECT_EQ(server.requestLog().slow().back().cmd, "quit");
}

TEST(ServeTelemetryTest, ReqlogSpillWritesJsonLines)
{
    std::string path = ::testing::TempDir() + "hwdbg_reqlog_spill.jsonl";
    std::remove(path.c_str());
    {
        ServerOptions opts;
        opts.slowThresholdUs = kNeverSlowUs;
        opts.reqlogPath = path;
        Server server(opts);
        runScript(server, "open cover bug=D4\nsessions\nquit\n");
    } // destructor flushes + closes the spill

    std::ifstream in(path);
    ASSERT_TRUE(in) << "spill file missing: " << path;
    std::string line;
    std::vector<std::string> cmds;
    while (std::getline(in, line)) {
        std::string error;
        auto root = obs::parseJson(line, &error);
        ASSERT_TRUE(root && root->isObject())
            << error << " in: " << line;
        ASSERT_TRUE(root->get("request"));
        ASSERT_TRUE(root->get("latency_us"));
        cmds.push_back(root->get("cmd")->text);
    }
    ASSERT_EQ(cmds.size(), 3u);
    EXPECT_EQ(cmds[0], "open");
    EXPECT_EQ(cmds[1], "sessions");
    EXPECT_EQ(cmds[2], "quit");
    std::remove(path.c_str());
}

TEST(ServeTelemetryTest, TelemetryCanBeDisabled)
{
    ServerOptions opts;
    opts.telemetry = false;
    Server server(opts);
    std::string transcript =
        runScript(server, "open cover bug=D4\nsessions\nquit\n");
    EXPECT_EQ(checkServeTranscript(transcript), "");
    // No events recorded, but the stats document stays well-formed.
    EXPECT_EQ(server.requestLog().requests(), 0u);
    EXPECT_TRUE(server.requestLog().commands().empty());
    EXPECT_EQ(checkServeStatsJson(server.statsJson()), "");
}

TEST(ServeTelemetryTest, SessionsGetNamedPerfettoTracks)
{
    obs::startTrace();
    {
        Server server(quietOptions());
        std::string transcript = runScript(server,
                                           "open debug bug=D4\n"
                                           "open cover bug=D4\n"
                                           "@1 step 3\n"
                                           "@1 info breakpoints\n"
                                           "quit\n");
        EXPECT_EQ(checkServeTranscript(transcript), "");
    }
    std::string json = obs::stopTrace();
    EXPECT_EQ(obs::checkTraceJson(json), "");
    // One named track per session, carrying the attach span and every
    // routed command span; the snapshot store contributes its own
    // spans from whatever thread interned.
    EXPECT_NE(json.find("serve.session.1:debug:D4"), std::string::npos)
        << json.substr(0, 512);
    EXPECT_NE(json.find("serve.session.2:cover:D4"), std::string::npos);
    EXPECT_NE(json.find("serve.attach:debug:D4"), std::string::npos);
    EXPECT_NE(json.find("debug.cmd:step"), std::string::npos);
    EXPECT_NE(json.find("serve.snapshot.intern"), std::string::npos);
}

TEST(ServeTelemetryTest, CheckerRejectsMalformedStatsDocuments)
{
    // Real documents pass (covered above); surgical violations of the
    // schema's ordering and monotonicity rules must each be caught.
    auto doc = [](const std::string &version,
                  const std::string &commands,
                  const std::string &sessions) {
        std::string out = "{\"format\":\"hwdbg-serve-stats\","
                          "\"version\":";
        out += version;
        out += ",\"build\":{},\"server\":{\"sessions\":0,"
               "\"opened\":0,\"channels\":0,\"channels_active\":0,"
               "\"requests\":0,\"errors\":0,\"slow\":0,"
               "\"slow_threshold_us\":0,\"dispatched\":0,"
               "\"retired_cmds\":0,\"uptime_us\":0},\"cache\":{"
               "\"entries\":0,\"hits\":0,\"misses\":0,\"builds\":0,"
               "\"build_us\":0},\"snapshots\":{\"stored\":0,"
               "\"stored_bytes\":0,\"dedup_hits\":0,\"dedup_bytes\":0,"
               "\"dedup_ratio_pct\":0},\"commands\":";
        out += commands;
        out += ",\"sessions\":";
        out += sessions;
        out += "}";
        return out;
    };
    auto cmdRow = [](const char *cmd, int p50, int p95, int p99,
                     int max) {
        std::string out = "{\"cmd\":\"";
        out += cmd;
        out += "\",\"count\":1,\"errors\":0,\"p50_us\":";
        out += std::to_string(p50);
        out += ",\"p95_us\":";
        out += std::to_string(p95);
        out += ",\"p99_us\":";
        out += std::to_string(p99);
        out += ",\"max_us\":";
        out += std::to_string(max);
        out += "}";
        return out;
    };

    EXPECT_EQ(checkServeStatsJson(doc("1", "[]", "[]")), "");
    EXPECT_NE(checkServeStatsJson(doc("2", "[]", "[]")), "");
    EXPECT_NE(checkServeStatsJson("{\"version\":1}"), "");

    // Quantiles must be monotone p50 <= p95 <= p99 <= max.
    std::string bad = doc("1", "[" + cmdRow("run", 9, 5, 9, 9) + "]",
                          "[]");
    EXPECT_NE(checkServeStatsJson(bad).find("not monotone"),
              std::string::npos);

    // Command rows must be strictly sorted by name.
    std::string unsorted =
        doc("1",
            "[" + cmdRow("run", 1, 1, 1, 1) + "," +
                cmdRow("open", 1, 1, 1, 1) + "]",
            "[]");
    EXPECT_NE(checkServeStatsJson(unsorted).find("not sorted"),
              std::string::npos);

    // Session rows must carry a hit/miss cache attribution.
    std::string badSession =
        doc("1", "[]",
            "[{\"session\":1,\"kind\":\"debug\",\"design\":\"D4\","
            "\"cache\":\"warm\",\"cmds\":0,\"errors\":0,"
            "\"uptime_us\":0}]");
    EXPECT_NE(checkServeStatsJson(badSession).find("hit"),
              std::string::npos);
}

TEST(ServeTelemetryTest, ScrubZeroesOnlyTimingFields)
{
    EXPECT_EQ(scrubServeTimings("{\"p50_us\":123,\"count\":123,"
                                "\"uptime_us\": 9,\"max_us\":0}"),
              "{\"p50_us\":0,\"count\":123,"
              "\"uptime_us\": 0,\"max_us\":0}");
    // Idempotent and inert on timing-free text.
    EXPECT_EQ(scrubServeTimings("{\"requests\":42}"),
              "{\"requests\":42}");
    EXPECT_EQ(scrubServeTimings(scrubServeTimings("\"build_us\":77")),
              "\"build_us\":0");
}
