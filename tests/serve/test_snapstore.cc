/**
 * @file
 * Content-addressed snapshot interning: identical simulator states
 * dedupe to one shared SimSnapshot, different states store separately,
 * and entries expire once no checkpoint ring references them.
 */

#include <gtest/gtest.h>

#include "elab/elaborate.hh"
#include "hdl/parser.hh"
#include "serve/snapstore.hh"
#include "sim/simulator.hh"

using namespace hwdbg;
using namespace hwdbg::serve;

namespace
{

const char *kCounter =
    "module m(input wire clk, output reg [7:0] count);\n"
    "always @(posedge clk) count <= count + 1;\nendmodule";

sim::Simulator
makeSim()
{
    hdl::Design design = hdl::parse(kCounter);
    return sim::Simulator(elab::elaborate(design, "m").mod);
}

} // namespace

TEST(SnapshotStoreTest, IdenticalStatesIntern)
{
    auto sim = makeSim();
    SnapshotStore store;

    auto a = store.intern(sim.saveState());
    auto b = store.intern(sim.saveState());
    EXPECT_EQ(a.get(), b.get());

    auto stats = store.stats();
    EXPECT_EQ(stats.stored, 1u);
    EXPECT_EQ(stats.dedupHits, 1u);
    EXPECT_GT(stats.dedupBytes, 0u);
    EXPECT_EQ(stats.dedupBytes, stats.storedBytes);
}

TEST(SnapshotStoreTest, DifferentStatesStoreSeparately)
{
    auto sim = makeSim();
    SnapshotStore store;

    auto a = store.intern(sim.saveState());
    sim.poke("clk", 0);
    sim.eval();
    sim.poke("clk", 1);
    sim.eval();
    auto b = store.intern(sim.saveState());

    EXPECT_NE(a.get(), b.get());
    auto stats = store.stats();
    EXPECT_EQ(stats.stored, 2u);
    EXPECT_EQ(stats.dedupHits, 0u);
}

TEST(SnapshotStoreTest, UnreferencedEntriesExpire)
{
    auto sim = makeSim();
    SnapshotStore store;

    auto a = store.intern(sim.saveState());
    EXPECT_EQ(store.size(), 1u);
    a.reset();
    EXPECT_EQ(store.size(), 0u);

    // A fresh intern of the same state is a store, not a hit: nothing
    // references the old copy, so there is nothing to share.
    auto b = store.intern(sim.saveState());
    EXPECT_EQ(store.stats().stored, 2u);
    EXPECT_NE(b.get(), nullptr);
}

TEST(SnapshotStoreTest, FingerprintCoversLogAndCycle)
{
    auto sim = makeSim();
    auto snapA = sim.saveState();
    auto snapB = sim.saveState();
    EXPECT_EQ(sim::snapshotFingerprint(snapA),
              sim::snapshotFingerprint(snapB));

    snapB.cycle += 1;
    EXPECT_NE(sim::snapshotFingerprint(snapA),
              sim::snapshotFingerprint(snapB));
}
