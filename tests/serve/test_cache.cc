/**
 * @file
 * The serve design cache's build-once guarantee: one builder run per
 * key even under concurrent attaches, negatively-cached failures, and
 * independent keys building independently.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/logging.hh"
#include "serve/cache.hh"

using namespace hwdbg;
using namespace hwdbg::serve;

namespace
{

CachedDesign
trivialDesign(const std::string &name)
{
    CachedDesign built;
    built.name = name;
    built.tape = std::make_shared<sim::StimulusTape>();
    return built;
}

} // namespace

TEST(DesignCacheTest, SecondAttachIsAHit)
{
    DesignCache cache;
    int builds = 0;
    auto builder = [&] {
        ++builds;
        return trivialDesign("d");
    };

    auto first = cache.getOrBuild("k", builder);
    auto second = cache.getOrBuild("k", builder);
    EXPECT_FALSE(first.hit);
    EXPECT_TRUE(second.hit);
    EXPECT_EQ(first.design.get(), second.design.get());
    EXPECT_EQ(builds, 1);

    auto stats = cache.stats();
    EXPECT_EQ(stats.builds, 1u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.hits, 1u);
}

TEST(DesignCacheTest, ConcurrentAttachesBuildExactlyOnce)
{
    DesignCache cache;
    std::atomic<int> builds{0};
    auto builder = [&] {
        ++builds;
        // Widen the race window so waiters really block on the
        // in-flight build instead of finding it already done.
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        return trivialDesign("d");
    };

    constexpr int kThreads = 8;
    std::vector<std::thread> threads;
    std::vector<const CachedDesign *> got(kThreads, nullptr);
    std::atomic<int> hits{0};
    for (int i = 0; i < kThreads; ++i) {
        threads.emplace_back([&, i] {
            auto attach = cache.getOrBuild("k", builder);
            got[i] = attach.design.get();
            if (attach.hit)
                ++hits;
        });
    }
    for (auto &thread : threads)
        thread.join();

    EXPECT_EQ(builds.load(), 1);
    EXPECT_EQ(hits.load(), kThreads - 1);
    for (int i = 1; i < kThreads; ++i)
        EXPECT_EQ(got[i], got[0]);
    EXPECT_EQ(cache.stats().builds, 1u);
}

TEST(DesignCacheTest, FailuresAreNegativelyCached)
{
    DesignCache cache;
    int builds = 0;
    auto builder = [&]() -> CachedDesign {
        ++builds;
        fatal("no such design");
    };

    EXPECT_THROW(cache.getOrBuild("bad", builder), HdlError);
    try {
        cache.getOrBuild("bad", builder);
        FAIL() << "second attach should replay the failure";
    } catch (const HdlError &e) {
        EXPECT_STREQ(e.what(), "no such design");
    }
    // The failing builder ran exactly once; the replay was cached.
    EXPECT_EQ(builds, 1);
}

TEST(DesignCacheTest, DistinctKeysBuildIndependently)
{
    DesignCache cache;
    int builds = 0;
    auto builder = [&] {
        ++builds;
        return trivialDesign("d");
    };

    auto a = cache.getOrBuild("a", builder);
    auto b = cache.getOrBuild("b", builder);
    EXPECT_EQ(builds, 2);
    EXPECT_NE(a.design.get(), b.design.get());
    EXPECT_EQ(cache.size(), 2u);
}
