/**
 * @file
 * The serve server: scripted channels are byte-deterministic, many
 * concurrent sessions share one design build and dedupe checkpoint
 * snapshots, per-session response streams are byte-identical under
 * both stdio multiplexing and concurrent TCP clients, and routing
 * errors surface as protocol errors rather than channel death.
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.hh"
#include "obs/jsoncheck.hh"
#include "serve/server.hh"
#include "serve/stats.hh"

using namespace hwdbg;
using namespace hwdbg::serve;

namespace
{

std::string
runScript(Server &server, const std::string &script)
{
    std::istringstream in(script);
    std::ostringstream out;
    server.runChannel(in, out);
    return out.str();
}

/** Split a transcript into lines (no trailing empty line). */
std::vector<std::string>
lines(const std::string &text)
{
    std::vector<std::string> out;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line))
        out.push_back(line);
    return out;
}

/** Bucket routed response lines by session id, stripped of the
 *  `{"session":N,` prefix so streams can be compared byte-for-byte. */
void
routedStreams(const std::string &transcript,
              std::map<int64_t, std::vector<std::string>> *buckets)
{
    for (const auto &line : lines(transcript)) {
        std::string error;
        auto root = obs::parseJson(line, &error);
        if (!root || !root->isObject() || root->members.empty() ||
            root->members[0].first != "session")
            continue;
        auto sid =
            static_cast<int64_t>(root->members[0].second->number);
        if (sid == 0)
            continue;
        auto comma = line.find(',');
        ASSERT_NE(comma, std::string::npos);
        (*buckets)[sid].push_back(line.substr(comma + 1));
    }
}

// readLine/writeAll: minimal line framing over a test client socket.
bool
readLine(int fd, std::string *out)
{
    out->clear();
    char ch;
    while (true) {
        ssize_t n = ::read(fd, &ch, 1);
        if (n <= 0)
            return !out->empty();
        if (ch == '\n')
            return true;
        out->push_back(ch);
    }
}

void
writeAll(int fd, const std::string &text)
{
    size_t off = 0;
    while (off < text.size()) {
        ssize_t n = ::write(fd, text.data() + off, text.size() - off);
        ASSERT_GT(n, 0);
        off += static_cast<size_t>(n);
    }
}

int
connectLoopback(uint16_t port)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

} // namespace

TEST(ServeServerTest, ScriptedChannelIsByteDeterministic)
{
    const std::string script = "open debug bug=D4\n"
                               "open cover bug=D4\n"
                               "@1 step 3\n"
                               "@1 cover\n"
                               "sessions\n"
                               "stats\n"
                               "quit\n";
    // A huge slow threshold keeps the stats "slow" counter at 0 no
    // matter how slow the machine is; the remaining wall-clock fields
    // all carry the `_us` suffix and scrub to zero.
    ServerOptions opts;
    opts.slowThresholdUs = 600000000;
    Server serverA(opts), serverB(opts);
    std::string runA = runScript(serverA, script);
    std::string runB = runScript(serverB, script);
    EXPECT_EQ(scrubServeTimings(runA), scrubServeTimings(runB));
    EXPECT_EQ(checkServeTranscript(runA), "");
}

TEST(ServeServerTest, EightSessionsShareOneBuildAndDedup)
{
    std::string script;
    for (int i = 0; i < 8; ++i)
        script += "open debug bug=D4\n";
    for (int sid = 1; sid <= 8; ++sid) {
        script += "@" + std::to_string(sid) + " step 2\n";
        script += "@" + std::to_string(sid) + " info breakpoints\n";
        script += "@" + std::to_string(sid) + " cover\n";
    }
    script += "quit\n";

    Server server;
    std::string transcript = runScript(server, script);
    EXPECT_EQ(checkServeTranscript(transcript), "");

    // One real build; the seven other attaches were cache hits.
    auto cache = server.cache().stats();
    EXPECT_EQ(cache.builds, 1u);
    EXPECT_EQ(cache.hits, 7u);

    // The eight initial checkpoints are one interned snapshot.
    auto snaps = server.snapshots().stats();
    EXPECT_GE(snaps.dedupHits, 7u);
    EXPECT_GT(snaps.dedupBytes, 0u);

    // Identical command streams on identical designs produce
    // byte-identical per-session response streams.
    std::map<int64_t, std::vector<std::string>> buckets;
    routedStreams(transcript, &buckets);
    ASSERT_EQ(buckets.size(), 8u);
    for (int sid = 2; sid <= 8; ++sid)
        EXPECT_EQ(buckets.at(sid), buckets.at(1)) << "session " << sid;
}

TEST(ServeServerTest, RoutingErrorsAreProtocolErrors)
{
    const std::string script = "open cover bug=D4\n"
                               "@99 step\n"
                               "@1 step\n"
                               "@x step\n"
                               "bogus\n"
                               "quit\n";
    Server server;
    std::string transcript = runScript(server, script);
    EXPECT_EQ(checkServeTranscript(transcript), "");
    auto all = lines(transcript);
    ASSERT_EQ(all.size(), 7u); // hello + 6 responses
    EXPECT_NE(all[2].find("no session 99"), std::string::npos);
    EXPECT_NE(all[3].find("not interactive"), std::string::npos);
    EXPECT_NE(all[4].find("bad session prefix"), std::string::npos);
    EXPECT_NE(all[5].find("unknown server command"), std::string::npos);
}

TEST(ServeServerTest, RoutedQuitRetiresTheSessionNotTheChannel)
{
    const std::string script = "open debug bug=D4\n"
                               "@1 quit\n"
                               "sessions\n"
                               "quit\n";
    Server server;
    std::string transcript = runScript(server, script);
    EXPECT_EQ(checkServeTranscript(transcript), "");
    EXPECT_NE(transcript.find("\"count\":0"), std::string::npos);
    EXPECT_EQ(server.sessions().count(), 0u);
}

TEST(ServeServerTest, ConcurrentTcpClientsGetByteIdenticalSessions)
{
    Server server;
    uint16_t port = 0;
    try {
        port = server.listenTcp(0);
    } catch (const HdlError &e) {
        GTEST_SKIP() << "no loopback TCP in this environment: "
                     << e.what();
    }
    std::thread acceptor([&server] { server.acceptLoop(); });

    constexpr int kClients = 8;
    std::vector<std::thread> clients;
    std::vector<std::vector<std::string>> streams(kClients);
    std::atomic<int> failures{0};
    for (int c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            int fd = connectLoopback(port);
            if (fd < 0) {
                ++failures;
                return;
            }
            std::string line;
            readLine(fd, &line); // hello
            writeAll(fd, "open debug bug=D4\n");
            readLine(fd, &line);
            std::string error;
            auto root = obs::parseJson(line, &error);
            if (!root || !root->get("payload") ||
                !root->get("payload")->get("session")) {
                ++failures;
                ::close(fd);
                return;
            }
            auto sid = static_cast<int64_t>(
                root->get("payload")->get("session")->number);
            std::string at = "@" + std::to_string(sid) + " ";
            for (const char *cmd :
                 {"step 3", "info checkpoints", "cover", "step 2"}) {
                writeAll(fd, at + cmd + "\n");
                readLine(fd, &line);
                // Strip the `{"session":N,` prefix: the rest must be
                // byte-identical across every client.
                auto comma = line.find(',');
                streams[c].push_back(line.substr(comma + 1));
            }
            writeAll(fd, "quit\n");
            readLine(fd, &line);
            ::close(fd);
        });
    }
    for (auto &client : clients)
        client.join();
    ASSERT_EQ(failures.load(), 0);
    for (int c = 1; c < kClients; ++c)
        EXPECT_EQ(streams[c], streams[0]) << "client " << c;

    // Shared-state accounting across all eight concurrent attaches.
    EXPECT_EQ(server.cache().stats().builds, 1u);
    EXPECT_GE(server.snapshots().stats().dedupHits, 7u);

    int fd = connectLoopback(port);
    ASSERT_GE(fd, 0);
    std::string line;
    readLine(fd, &line);
    writeAll(fd, "shutdown\n");
    readLine(fd, &line);
    ::close(fd);
    acceptor.join();
}
