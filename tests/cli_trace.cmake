# Golden tests for the `hwdbg trace` CLI: byte-determinism of the
# capture summary and JSON across runs, the artifact path (--out +
# obscheck, --vcd), and loud failure on a glob that matches nothing.

set(work ${CMAKE_CURRENT_BINARY_DIR}/cli_trace_work)
file(MAKE_DIRECTORY ${work})

# Captures are byte-deterministic: the same bug workload recorded twice
# must match exactly, for the text summary and the JSON dump alike.
foreach(bug D3 D4 D7)
    execute_process(COMMAND ${HWDBG} trace --bug ${bug}
                    RESULT_VARIABLE rc OUTPUT_VARIABLE run_a ERROR_QUIET)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "hwdbg trace --bug ${bug} failed (rc=${rc})")
    endif()
    execute_process(COMMAND ${HWDBG} trace --bug ${bug}
                    RESULT_VARIABLE rc OUTPUT_VARIABLE run_b ERROR_QUIET)
    if(NOT run_a STREQUAL run_b)
        message(FATAL_ERROR "trace --bug ${bug} is not deterministic")
    endif()
    if(NOT run_a MATCHES "capture")
        message(FATAL_ERROR "trace --bug ${bug} summary is wrong: ${run_a}")
    endif()
    execute_process(COMMAND ${HWDBG} trace --bug ${bug} --format json
                    RESULT_VARIABLE rc OUTPUT_VARIABLE json_a ERROR_QUIET)
    execute_process(COMMAND ${HWDBG} trace --bug ${bug} --format json
                    RESULT_VARIABLE rc OUTPUT_VARIABLE json_b ERROR_QUIET)
    if(NOT json_a STREQUAL json_b)
        message(FATAL_ERROR "trace --bug ${bug} JSON is not deterministic")
    endif()
endforeach()

# --out writes the JSON artifact and obscheck validates it; --vcd
# writes a waveform next to it.
execute_process(COMMAND ${HWDBG} trace --bug D3
                --out ${work}/d3.trace.json --vcd ${work}/d3.vcd
                RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(NOT rc EQUAL 0 OR NOT EXISTS ${work}/d3.trace.json)
    message(FATAL_ERROR "trace --out did not write the artifact")
endif()
execute_process(COMMAND ${HWDBG} obscheck ${work}/d3.trace.json
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_QUIET)
if(NOT rc EQUAL 0 OR NOT out MATCHES "ok \\(signal trace\\)")
    message(FATAL_ERROR "obscheck rejected the trace artifact: ${out}")
endif()
if(NOT EXISTS ${work}/d3.vcd)
    message(FATAL_ERROR "trace --vcd did not write the waveform")
endif()
file(READ ${work}/d3.vcd vcd)
if(NOT vcd MATCHES "^\\$timescale")
    message(FATAL_ERROR "trace --vcd output is not VCD: ${vcd}")
endif()

# A trigger narrows the window: the armed capture still validates.
execute_process(COMMAND ${HWDBG} trace --bug C1 --trigger cmd_valid
                --budget 2048 --out ${work}/c1.trace.json
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_QUIET)
if(NOT rc EQUAL 0 OR NOT out MATCHES "fired at cycle")
    message(FATAL_ERROR "triggered trace on C1 failed: ${out}")
endif()
execute_process(COMMAND ${HWDBG} obscheck ${work}/c1.trace.json
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_QUIET)
if(NOT rc EQUAL 0 OR NOT out MATCHES "ok \\(signal trace\\)")
    message(FATAL_ERROR "obscheck rejected the triggered capture: ${out}")
endif()

# A glob matching no signal is a user error, reported loudly.
execute_process(COMMAND ${HWDBG} trace --bug D3 --signals nosuchsignal
                RESULT_VARIABLE rc OUTPUT_QUIET ERROR_VARIABLE err)
if(rc EQUAL 0)
    message(FATAL_ERROR "trace with a bad glob should fail")
endif()
if(NOT err MATCHES "nosuchsignal")
    message(FATAL_ERROR "bad-glob error is unhelpful: ${err}")
endif()

message(STATUS "cli_trace checks passed")
