/**
 * @file
 * Bytecode backend unit tests: the corner cases of the lowering and the
 * dispatch loop, each pinned against the interpreter on the same design
 * and stimulus (the interpreter is the semantics reference — sim/eval.cc).
 *
 * Covered: width-mixing arithmetic, division/modulo by zero, shift
 * amounts at and beyond the operand width, case statements with and
 * without defaults, concatenation lvalues, nonblocking swap ordering,
 * $display logs and $finish, non-power-of-two memories (index masking
 * plus out-of-range drops), the read/write asymmetry of scalar bit
 * indexing, and the known-bits folding statistics.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "compile/backend.hh"
#include "compile/bytecode.hh"
#include "elab/elaborate.hh"
#include "hdl/parser.hh"
#include "sim/simulator.hh"

using namespace hwdbg;
using namespace hwdbg::sim;

namespace
{

/** The same design on both backends, driven in lockstep; every eval
 *  asserts full-state equality. */
struct Pair
{
    std::unique_ptr<Simulator> interp;
    std::unique_ptr<Simulator> bytecode;

    explicit Pair(const std::string &src, const std::string &top = "m")
    {
        hdl::Design design = hdl::parse(src);
        auto mod = elab::elaborate(design, top).mod;
        interp = std::make_unique<Simulator>(mod);
        bytecode = std::make_unique<Simulator>(mod);
        bytecode->setBackend(compile::makeBytecodeBackend());
        check();
    }

    void poke(const std::string &name, const Bits &value)
    {
        interp->poke(name, value);
        bytecode->poke(name, value);
    }

    void poke(const std::string &name, uint64_t value)
    {
        interp->poke(name, value);
        bytecode->poke(name, value);
    }

    void eval()
    {
        interp->eval();
        bytecode->eval();
        check();
    }

    void tick(int n = 1)
    {
        for (int i = 0; i < n; ++i) {
            poke("clk", uint64_t(0));
            eval();
            poke("clk", uint64_t(1));
            eval();
        }
    }

    /** Peek on both; asserts agreement, returns the value. */
    Bits peek(const std::string &name)
    {
        Bits a = interp->peek(name);
        Bits b = bytecode->peek(name);
        EXPECT_EQ(a.width(), b.width()) << name;
        EXPECT_EQ(a.toHexString(), b.toHexString()) << name;
        return a;
    }

    void check()
    {
        const EvalContext &ca = interp->context();
        const EvalContext &cb = bytecode->context();
        ASSERT_EQ(ca.values.size(), cb.values.size());
        for (size_t i = 0; i < ca.values.size(); ++i) {
            EXPECT_EQ(ca.values[i].width(), cb.values[i].width())
                << interp->design().info((int)i).name;
            EXPECT_EQ(ca.values[i].toHexString(),
                      cb.values[i].toHexString())
                << interp->design().info((int)i).name;
        }
        ASSERT_EQ(ca.arrays.size(), cb.arrays.size());
        for (size_t i = 0; i < ca.arrays.size(); ++i)
            for (size_t e = 0; e < ca.arrays[i].size(); ++e)
                EXPECT_EQ(ca.arrays[i][e].toHexString(),
                          cb.arrays[i][e].toHexString())
                    << interp->design().info((int)i).name << "[" << e
                    << "]";
        EXPECT_EQ(interp->cycle(), bytecode->cycle());
        EXPECT_EQ(interp->finished(), bytecode->finished());
        ASSERT_EQ(interp->log().size(), bytecode->log().size());
        for (size_t i = 0; i < interp->log().size(); ++i) {
            EXPECT_EQ(interp->log()[i].cycle, bytecode->log()[i].cycle);
            EXPECT_EQ(interp->log()[i].text, bytecode->log()[i].text);
        }
    }
};

compile::Program
lower(const std::string &src, bool fold, const std::string &top = "m")
{
    hdl::Design design = hdl::parse(src);
    LoweredDesign lowered(elab::elaborate(design, top).mod);
    return compile::lowerProgram(lowered, fold);
}

} // namespace

TEST(BytecodeTest, WideArithmeticAndDivisionByZero)
{
    Pair p("module m(input wire [95:0] a, input wire [95:0] b,\n"
           "         output wire [95:0] sum, output wire [95:0] dif,\n"
           "         output wire [95:0] prd, output wire [95:0] quo,\n"
           "         output wire [95:0] rem, output wire [47:0] nar);\n"
           "assign sum = a + b;\n"
           "assign dif = a - b;\n"
           "assign prd = a * b;\n"
           "assign quo = a / b;\n"
           "assign rem = a % b;\n"
           "assign nar = a + b;\n" // context narrower than operands
           "endmodule");
    Bits a = Bits(96, 0xDEADBEEFCAFEF00DULL)
                 .shl(32)
                 .bitOr(Bits(96, 0x12345678));
    p.poke("a", a);
    p.poke("b", Bits(96, 0xFFFFFFFFFFFFFFFFULL));
    p.eval();
    p.poke("b", Bits(96, 0));
    p.eval();
    // Division by zero yields all-ones at the result width.
    EXPECT_EQ(p.peek("quo"), Bits::allOnes(96));
    EXPECT_EQ(p.peek("rem"), Bits::allOnes(96));

    // 64-bit fast path: divide small values too.
    p.poke("a", Bits(96, 1000));
    p.poke("b", Bits(96, 7));
    p.eval();
    EXPECT_EQ(p.peek("quo").toU64(), 142u);
    EXPECT_EQ(p.peek("rem").toU64(), 6u);
}

TEST(BytecodeTest, ShiftAmountsAtAndBeyondWidth)
{
    Pair p("module m(input wire [70:0] a, input wire [7:0] s,\n"
           "         output wire [70:0] l, output wire [70:0] r);\n"
           "assign l = a << s;\n"
           "assign r = a >> s;\n"
           "endmodule");
    Bits a = Bits::allOnes(71);
    p.poke("a", a);
    for (uint64_t s : {0u, 1u, 63u, 64u, 65u, 70u, 71u, 72u, 255u}) {
        p.poke("s", s);
        p.eval();
        if (s >= 71) {
            EXPECT_EQ(p.peek("l"), Bits(71, 0)) << "s=" << s;
            EXPECT_EQ(p.peek("r"), Bits(71, 0)) << "s=" << s;
        }
    }
}

TEST(BytecodeTest, ComparisonsAndBooleanOps)
{
    Pair p("module m(input wire [66:0] a, input wire [31:0] b,\n"
           "         output wire eq, output wire ne, output wire lt,\n"
           "         output wire le, output wire gt, output wire ge,\n"
           "         output wire la, output wire lo, output wire ln,\n"
           "         output wire ra, output wire ro, output wire rx);\n"
           "assign eq = a == b;\n"
           "assign ne = a != b;\n"
           "assign lt = a < b;\n"
           "assign le = a <= b;\n"
           "assign gt = a > b;\n"
           "assign ge = a >= b;\n"
           "assign la = a && b;\n"
           "assign lo = a || b;\n"
           "assign ln = !a;\n"
           "assign ra = &a;\n"
           "assign ro = |a;\n"
           "assign rx = ^a;\n"
           "endmodule");
    for (uint64_t av : {0ull, 5ull, 0xFFFFFFFFull, 0x1FFFFFFFFull}) {
        for (uint64_t bv : {0ull, 5ull, 0xFFFFFFFFull}) {
            p.poke("a", Bits(67, av));
            p.poke("b", Bits(32, bv));
            p.eval();
        }
    }
    p.poke("a", Bits::allOnes(67));
    p.eval();
    EXPECT_EQ(p.peek("ra").toU64(), 1u);
    EXPECT_EQ(p.peek("rx").toU64(), 1u); // 67 ones: odd parity
}

TEST(BytecodeTest, CaseWithAndWithoutDefault)
{
    Pair p("module m(input wire clk, input wire [2:0] sel,\n"
           "         output reg [7:0] q, output reg [7:0] r);\n"
           "always @(posedge clk) begin\n"
           "  case (sel)\n"
           "    3'd0: q <= 8'h10;\n"
           "    3'd1: q <= 8'h20;\n"
           "    default: q <= 8'hFF;\n"
           "  endcase\n"
           "  case (sel)\n" // no default: no-match leaves r alone
           "    3'd2: r <= 8'hA2;\n"
           "    3'd3: r <= 8'hA3;\n"
           "  endcase\n"
           "end\nendmodule");
    for (uint64_t s = 0; s < 8; ++s) {
        p.poke("sel", s);
        p.tick();
    }
    EXPECT_EQ(p.peek("q").toU64(), 0xFFu);
    EXPECT_EQ(p.peek("r").toU64(), 0xA3u);
}

TEST(BytecodeTest, ConcatRepeatAndSliceExpressions)
{
    Pair p("module m(input wire [7:0] a, input wire [3:0] b,\n"
           "         output wire [11:0] cat, output wire [15:0] rep,\n"
           "         output wire [4:0] sl, output wire [2:0] tern);\n"
           "assign cat = {a, b};\n"
           "assign rep = {4{b}};\n"
           "assign sl = a[6:2];\n"
           "assign tern = b[0] ? a[2:0] : 3'd5;\n"
           "endmodule");
    p.poke("a", uint64_t(0xC5));
    p.poke("b", uint64_t(0x9));
    p.eval();
    EXPECT_EQ(p.peek("cat").toU64(), 0xC59u);
    EXPECT_EQ(p.peek("rep").toU64(), 0x9999u);
    EXPECT_EQ(p.peek("sl").toU64(), 0x11u);
    EXPECT_EQ(p.peek("tern").toU64(), 5u);
    p.poke("b", uint64_t(0x8));
    p.eval();
}

TEST(BytecodeTest, ConcatLvaluesSplitTheValue)
{
    Pair p("module m(input wire clk, input wire [11:0] d,\n"
           "         output reg [7:0] hi, output reg [3:0] lo,\n"
           "         output reg [7:0] nhi, output reg [3:0] nlo);\n"
           "always @(posedge clk) begin\n"
           "  {hi, lo} = d;\n"
           "  {nhi, nlo} <= d + 12'd1;\n"
           "end\nendmodule");
    p.poke("d", uint64_t(0xABC));
    p.tick();
    EXPECT_EQ(p.peek("hi").toU64(), 0xABu);
    EXPECT_EQ(p.peek("lo").toU64(), 0xCu);
    EXPECT_EQ(p.peek("nhi").toU64(), 0xABu);
    EXPECT_EQ(p.peek("nlo").toU64(), 0xDu);
}

TEST(BytecodeTest, NonblockingSwapCommitsOldValues)
{
    Pair p("module m(input wire clk, input wire [7:0] d,\n"
           "         input wire ld, output reg [7:0] x,\n"
           "         output reg [7:0] y);\n"
           "always @(posedge clk) begin\n"
           "  if (ld) begin x <= d; y <= ~d; end\n"
           "  else begin x <= y; y <= x; end\n"
           "end\nendmodule");
    p.poke("ld", uint64_t(1));
    p.poke("d", uint64_t(0x42));
    p.tick();
    p.poke("ld", uint64_t(0));
    p.tick();
    EXPECT_EQ(p.peek("x").toU64(), 0xBDu);
    EXPECT_EQ(p.peek("y").toU64(), 0x42u);
    p.tick();
    EXPECT_EQ(p.peek("x").toU64(), 0x42u);
}

TEST(BytecodeTest, DisplayAndFinishMatch)
{
    Pair p("module m(input wire clk, output reg [3:0] n);\n"
           "always @(posedge clk) begin\n"
           "  n <= n + 4'd1;\n"
           "  $display(\"n=%d\", n);\n"
           "  if (n == 4'd3) $finish;\n"
           "end\nendmodule");
    for (int i = 0; i < 6 && !p.interp->finished(); ++i)
        p.tick();
    EXPECT_TRUE(p.bytecode->finished());
    EXPECT_EQ(p.interp->log().size(), p.bytecode->log().size());
    EXPECT_GE(p.interp->log().size(), 4u);
}

TEST(BytecodeTest, NonPowerOfTwoMemoryIndexing)
{
    // Size-5 memory: the interpreter masks indexes to ceil(log2(5)) = 3
    // bits, then drops anything still out of range. Index 8 wraps to 0;
    // indexes 5..7 are dropped on write and read as zero.
    Pair p("module m(input wire clk, input wire [7:0] wa,\n"
           "         input wire [7:0] ra, input wire [15:0] d,\n"
           "         input wire we, output wire [15:0] q);\n"
           "reg [15:0] mem[0:4];\n"
           "always @(posedge clk) if (we) mem[wa] <= d;\n"
           "assign q = mem[ra];\n"
           "endmodule");
    p.poke("we", uint64_t(1));
    for (uint64_t wa : {0u, 3u, 4u, 5u, 7u, 8u, 9u}) {
        p.poke("wa", wa);
        p.poke("d", 0x100 + wa);
        p.tick();
    }
    p.poke("we", uint64_t(0));
    for (uint64_t ra = 0; ra < 10; ++ra) {
        p.poke("ra", ra);
        p.eval();
    }
    p.poke("ra", uint64_t(0));
    p.eval();
    EXPECT_EQ(p.peek("q").toU64(), 0x108u); // 8 wrapped onto 0
    p.poke("ra", uint64_t(5));
    p.eval();
    EXPECT_EQ(p.peek("q").toU64(), 0u); // dropped write, OOR read
    p.poke("ra", uint64_t(9)); // masks to 1, where wa=9 wrote 0x109
    p.eval();
    EXPECT_EQ(p.peek("q").toU64(), 0x109u);
    p.poke("ra", uint64_t(4));
    p.eval();
    EXPECT_EQ(p.peek("q").toU64(), 0x104u);
}

TEST(BytecodeTest, ScalarBitIndexReadWriteAsymmetry)
{
    // Reads truncate the index to uint32 before the range check; writes
    // compare the full 64-bit index. The bytecode backend must replicate
    // both behaviors exactly.
    Pair p("module m(input wire clk, input wire [39:0] i,\n"
           "         input wire [7:0] d, output wire o,\n"
           "         output reg [7:0] w);\n"
           "assign o = d[i];\n"
           "always @(posedge clk) w[i] = 1'b1;\n"
           "endmodule");
    p.poke("d", uint64_t(0x08)); // bit 3 set
    p.poke("i", Bits(40, 0x100000003ULL));
    p.eval();
    // Read: index truncates to 3 -> bit 3 -> 1.
    EXPECT_EQ(p.peek("o").toU64(), 1u);
    // Write: full index 0x100000003 >= 8 -> dropped.
    p.tick();
    EXPECT_EQ(p.peek("w").toU64(), 0u);
    p.poke("i", Bits(40, 6));
    p.tick();
    EXPECT_EQ(p.peek("w").toU64(), 0x40u);
}

TEST(BytecodeTest, FoldingStatsAndDeadGuards)
{
    std::string src =
        "module m(input wire clk, input wire [7:0] a,\n"
        "         output reg [7:0] q);\n"
        "wire [7:0] k = 8'd3 + 8'd4;\n" // foldable
        "always @(posedge clk) begin\n"
        "  if (k == 8'd7) q <= a;\n" // provably true guard
        "  else q <= 8'hEE;\n"       // dead branch
        "end\nendmodule";
    compile::Program folded = lower(src, true);
    compile::Program plain = lower(src, false);
    EXPECT_GT(folded.foldedConsts, 0u);
    EXPECT_GT(folded.deadArms, 0u);
    EXPECT_EQ(plain.foldedConsts, 0u);
    EXPECT_EQ(plain.deadArms, 0u);
    EXPECT_LT(folded.ops.size(), plain.ops.size());

    // Folding must not change behavior.
    Pair p(src);
    p.poke("a", uint64_t(0x5A));
    p.tick();
    EXPECT_EQ(p.peek("q").toU64(), 0x5Au);
}

TEST(BytecodeTest, ProgramStateRegionLayout)
{
    compile::Program prog = lower(
        "module m(input wire clk, input wire [64:0] d,\n"
        "         output reg [64:0] q);\n"
        "reg [15:0] mem[0:2];\n"
        "always @(posedge clk) q <= d;\n"
        "endmodule",
        true);
    // Every signal has a scalar slot and every array an element block,
    // all inside the state region.
    ASSERT_EQ(prog.sigOff.size(), prog.arrOff.size());
    for (size_t i = 0; i < prog.sigOff.size(); ++i)
        EXPECT_LT(prog.sigOff[i], prog.stateWords);
    EXPECT_GT(prog.stateWords, 0u);
    EXPECT_GE(prog.slabInit.size(), prog.stateWords);
    // The state region of the initial image is all-zero (constants live
    // behind it).
    for (uint32_t w = 0; w < prog.stateWords; ++w)
        EXPECT_EQ(prog.slabInit[w], 0u) << "word " << w;
}

TEST(BytecodeTest, PokeVisibleToBytecodeAndPeekFlushes)
{
    Pair p("module m(input wire [63:0] a, output wire [63:0] b);\n"
           "assign b = a ^ 64'hFFFF0000FFFF0000;\n"
           "endmodule");
    p.poke("a", uint64_t(0x1234));
    p.eval();
    EXPECT_EQ(p.peek("b").toU64(), 0xFFFF0000FFFF1234ULL);
}
