/**
 * @file
 * Backend equivalence over the curated testbed: the compiled bytecode
 * backend must be observationally indistinguishable from the AST
 * interpreter.
 *
 * For all 20 testbed bugs, buggy and fixed variants alike, the trigger
 * workload is recorded once and replayed step-by-step on both backends;
 * after every eval the complete simulator state — every signal, every
 * memory element, cycle count, $finish, and the $display log — must be
 * byte-identical. Snapshots are exercised across the seam too: a
 * mid-run save/restore on the bytecode backend must round-trip, and a
 * snapshot taken from an interpreter run must restore into a bytecode
 * simulator (and vice versa) without perturbing the trajectory.
 *
 * The coverage and profiler cross-checks double as regression tests for
 * the Backend seam: both tools consume simulator state exclusively
 * through the facade, so their deterministic outputs cannot depend on
 * which backend ran underneath.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bugbase/testbed.hh"
#include "bugbase/workloads.hh"
#include "compile/backend.hh"
#include "cover/run.hh"
#include "cover/snapshot.hh"
#include "sim/profiler.hh"
#include "sim/simulator.hh"

using namespace hwdbg;
using namespace hwdbg::sim;

namespace
{

/** Every externally-visible piece of simulator state. */
struct StateDump
{
    std::vector<Bits> values;
    std::vector<std::vector<Bits>> arrays;
    uint64_t cycle = 0;
    bool finished = false;
    std::vector<std::string> log;

    bool operator==(const StateDump &rhs) const
    {
        return values == rhs.values && arrays == rhs.arrays &&
               cycle == rhs.cycle && finished == rhs.finished &&
               log == rhs.log;
    }
};

StateDump
dumpState(Simulator &sim)
{
    StateDump dump;
    dump.values = sim.context().values;
    dump.arrays = sim.context().arrays;
    dump.cycle = sim.cycle();
    dump.finished = sim.finished();
    for (const auto &line : sim.log())
        dump.log.push_back(std::to_string(line.cycle) + ":" +
                           line.text);
    return dump;
}

/** The bug's trigger workload as a replayable tape. */
StimulusTape
recordWorkload(const bugs::TestbedBug &bug, const hdl::ModulePtr &mod)
{
    StimulusTape tape;
    Simulator recorder(mod);
    recorder.recordStimulus(&tape);
    bugs::runWorkload(bug, recorder);
    recorder.recordStimulus(nullptr);
    return tape;
}

} // namespace

TEST(BackendEquivTest, TrajectoriesMatchOnEveryTestbedBug)
{
    for (const auto &bug : bugs::testbedBugs()) {
        for (bool buggy : {true, false}) {
            SCOPED_TRACE(bug.id + (buggy ? "/buggy" : "/fixed"));
            auto elaborated = bugs::buildDesign(bug, buggy);
            StimulusTape tape = recordWorkload(bug, elaborated.mod);
            ASSERT_GT(tape.steps.size(), 0u);

            Simulator interp(elaborated.mod);
            Simulator bytecode(elaborated.mod);
            bytecode.setBackend(compile::makeBytecodeBackend());
            ASSERT_STREQ(bytecode.backendName(), "bytecode");

            // The initial settle already ran; states must agree before
            // the first stimulus step too.
            ASSERT_TRUE(dumpState(interp) == dumpState(bytecode))
                << "initial state differs";
            for (size_t i = 0; i < tape.steps.size(); ++i) {
                interp.applyStep(tape.steps[i]);
                bytecode.applyStep(tape.steps[i]);
                ASSERT_TRUE(dumpState(interp) == dumpState(bytecode))
                    << "state diverged at step " << i << " of "
                    << tape.steps.size();
            }
        }
    }
}

TEST(BackendEquivTest, SnapshotRoundTripsMidRunOnBytecode)
{
    for (const auto &bug : bugs::testbedBugs()) {
        SCOPED_TRACE(bug.id);
        auto elaborated = bugs::buildDesign(bug, true);
        StimulusTape tape = recordWorkload(bug, elaborated.mod);
        ASSERT_GT(tape.steps.size(), 2u);
        size_t k = tape.steps.size() / 2;

        Simulator sim(elaborated.mod);
        sim.setBackend(compile::makeBytecodeBackend());
        for (size_t i = 0; i < k; ++i)
            sim.applyStep(tape.steps[i]);
        SimSnapshot snap = sim.saveState();
        StateDump atK = dumpState(sim);

        for (size_t i = k; i < tape.steps.size(); ++i)
            sim.applyStep(tape.steps[i]);
        StateDump atEndFirst = dumpState(sim);

        sim.restoreState(snap);
        EXPECT_TRUE(dumpState(sim) == atK)
            << "restore did not reproduce the state at step " << k;
        for (size_t i = k; i < tape.steps.size(); ++i)
            sim.applyStep(tape.steps[i]);
        EXPECT_TRUE(dumpState(sim) == atEndFirst)
            << "replayed tail diverged from the original run";
    }
}

TEST(BackendEquivTest, SnapshotsCrossTheBackendSeam)
{
    // A snapshot is backend-independent: interp state restores into a
    // bytecode simulator and vice versa, and the continued runs agree.
    for (const auto &bug : bugs::testbedBugs()) {
        SCOPED_TRACE(bug.id);
        auto elaborated = bugs::buildDesign(bug, true);
        StimulusTape tape = recordWorkload(bug, elaborated.mod);
        ASSERT_GT(tape.steps.size(), 2u);
        size_t k = tape.steps.size() / 2;

        Simulator interp(elaborated.mod);
        for (size_t i = 0; i < k; ++i)
            interp.applyStep(tape.steps[i]);
        SimSnapshot snap = interp.saveState();

        Simulator bytecode(elaborated.mod);
        bytecode.setBackend(compile::makeBytecodeBackend());
        bytecode.restoreState(snap);
        ASSERT_TRUE(dumpState(bytecode) == dumpState(interp))
            << "interp snapshot did not restore into bytecode";

        for (size_t i = k; i < tape.steps.size(); ++i) {
            interp.applyStep(tape.steps[i]);
            bytecode.applyStep(tape.steps[i]);
        }
        EXPECT_TRUE(dumpState(bytecode) == dumpState(interp))
            << "trajectories diverged after cross-backend restore";

        // And back: a bytecode snapshot restores into an interp sim.
        SimSnapshot snapB = bytecode.saveState();
        Simulator interp2(elaborated.mod);
        interp2.restoreState(snapB);
        EXPECT_TRUE(dumpState(interp2) == dumpState(bytecode))
            << "bytecode snapshot did not restore into interp";
    }
}

TEST(BackendEquivTest, SwappingBackendsMidRunKeepsTheTrajectory)
{
    // setBackend is legal at any eval boundary; a run that switches
    // interp -> bytecode -> interp halfway must match a pure interp run.
    for (const auto &bug : bugs::testbedBugs()) {
        SCOPED_TRACE(bug.id);
        auto elaborated = bugs::buildDesign(bug, true);
        StimulusTape tape = recordWorkload(bug, elaborated.mod);
        ASSERT_GT(tape.steps.size(), 3u);

        Simulator pure(elaborated.mod);
        Simulator swapped(elaborated.mod);
        size_t third = tape.steps.size() / 3;
        for (size_t i = 0; i < tape.steps.size(); ++i) {
            if (i == third)
                swapped.setBackend(compile::makeBytecodeBackend());
            if (i == 2 * third)
                swapped.setBackend({});
            pure.applyStep(tape.steps[i]);
            swapped.applyStep(tape.steps[i]);
            ASSERT_TRUE(dumpState(pure) == dumpState(swapped))
                << "state diverged at step " << i;
        }
    }
}

TEST(BackendEquivTest, CoverageSnapshotsAreBackendIndependent)
{
    // The collectors hang off the Simulator facade; both backends must
    // drive the same onStmt/onArm/onStore event stream, so the JSON
    // snapshot (counts included) is identical.
    for (const auto &bug : bugs::testbedBugs()) {
        SCOPED_TRACE(bug.id);
        cover::Snapshot interp = cover::coverBugWorkload(bug, true);
        cover::Snapshot bytecode = cover::coverBugWorkload(
            bug, true, compile::makeBytecodeBackend());
        EXPECT_EQ(cover::toJson(interp), cover::toJson(bytecode));
    }
}

TEST(BackendEquivTest, ProfilerCountersAreBackendIndependent)
{
    // Eval counts, toggle counts, settle depths, and cycle totals are
    // deterministic functions of the stimulus; only wall time may
    // differ between backends.
    for (const auto &bug : bugs::testbedBugs()) {
        SCOPED_TRACE(bug.id);
        auto elaborated = bugs::buildDesign(bug, true);
        ProfileOptions opts;
        opts.cycles = 200;
        opts.rank = ProfileOptions::Rank::Evals;
        ProfileReport interp = profileDesign(elaborated.mod, opts);
        opts.backend = compile::makeBytecodeBackend();
        ProfileReport bytecode = profileDesign(elaborated.mod, opts);

        EXPECT_EQ(interp.cyclesRun, bytecode.cyclesRun);
        EXPECT_EQ(interp.finished, bytecode.finished);
        EXPECT_EQ(interp.settleCalls, bytecode.settleCalls);
        EXPECT_EQ(interp.maxSettleDepth, bytecode.maxSettleDepth);
        EXPECT_EQ(interp.settleHist, bytecode.settleHist);
        ASSERT_EQ(interp.rows.size(), bytecode.rows.size());
        for (size_t i = 0; i < interp.rows.size(); ++i) {
            EXPECT_EQ(interp.rows[i].label, bytecode.rows[i].label);
            EXPECT_EQ(interp.rows[i].evals, bytecode.rows[i].evals);
        }
        ASSERT_EQ(interp.signals.size(), bytecode.signals.size());
        for (size_t i = 0; i < interp.signals.size(); ++i) {
            EXPECT_EQ(interp.signals[i].name, bytecode.signals[i].name);
            EXPECT_EQ(interp.signals[i].toggles,
                      bytecode.signals[i].toggles);
        }
    }
}
