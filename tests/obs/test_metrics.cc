/**
 * @file
 * Metrics registry semantics: counter/gauge/histogram behavior, the
 * disabled-path no-op guarantee, histogram bucket edges, and the
 * validity + determinism of rendered snapshots.
 */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "obs/jsoncheck.hh"
#include "obs/metrics.hh"

namespace hwdbg::obs
{
namespace
{

/** Every test starts from a clean, enabled registry and leaves the
 *  recording flag off so other suites see the disabled fast path. */
class MetricsTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        resetMetrics();
        enableMetrics(true);
    }
    void TearDown() override
    {
        enableMetrics(false);
        resetMetrics();
    }
};

TEST_F(MetricsTest, CounterAccumulates)
{
    counter("t.counter").inc();
    counter("t.counter").inc(41);
    EXPECT_EQ(counterValue("t.counter"), 42u);
    EXPECT_EQ(counterValue("t.never-registered"), 0u);
}

TEST_F(MetricsTest, GaugeSetMaxIsOrderIndependent)
{
    Gauge &g = gauge("t.gauge");
    g.setMax(7);
    g.setMax(3);
    g.setMax(9);
    g.setMax(9);
    EXPECT_EQ(g.value(), 9u);
}

TEST_F(MetricsTest, HistogramBucketEdges)
{
    // Bucket i counts v <= bounds[i]; the final bucket is +inf.
    Histogram &h = histogram("t.hist", {10, 20, 30});
    h.record(0);
    h.record(10); // on the edge: still bucket 0
    h.record(11); // first value past the edge: bucket 1
    h.record(20);
    h.record(30);
    h.record(31); // overflow bucket
    h.record(1000);
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(1), 2u);
    EXPECT_EQ(h.bucketCount(2), 1u);
    EXPECT_EQ(h.bucketCount(3), 2u);
    EXPECT_EQ(h.count(), 7u);
    EXPECT_EQ(h.sum(), 0u + 10 + 11 + 20 + 30 + 31 + 1000);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 1000u);
}

TEST_F(MetricsTest, HistogramQuantileEstimatesFromBuckets)
{
    Histogram &h = histogram("t.hist.quantile", {10, 20, 30});
    h.record(5);
    h.record(15);
    h.record(25);
    h.record(35);
    // rank = ceil(q * 4): q=0.25 -> rank 1 -> bucket <=10; q=0.5 ->
    // rank 2 -> bucket <=20; estimates are the bucket upper bounds.
    EXPECT_EQ(h.quantile(0.25), 10u);
    EXPECT_EQ(h.quantile(0.50), 20u);
    EXPECT_EQ(h.quantile(0.75), 30u);
    // The +inf bucket and q=1.0 report the observed max, and every
    // estimate clamps into [min(), max()].
    EXPECT_EQ(h.quantile(0.99), 35u);
    EXPECT_EQ(h.quantile(1.0), 35u);
    EXPECT_GE(h.quantile(0.0), h.min());
    EXPECT_LE(h.quantile(0.0), h.max());
}

TEST_F(MetricsTest, HistogramQuantileClampsToObservedRange)
{
    // One sample deep inside a wide bucket: the bucket upper bound
    // (65536) would wildly overstate it, so the estimate clamps to
    // the observed max.
    Histogram &h = histogram("t.hist.clamp");
    h.record(40000);
    EXPECT_EQ(h.quantile(0.5), 40000u);
    EXPECT_EQ(h.quantile(0.99), 40000u);
    // And a sample below the first bound clamps up to min().
    Histogram &low = histogram("t.hist.clamp.low", {1000});
    low.record(7);
    low.record(9);
    EXPECT_EQ(low.quantile(0.5), 9u);
}

TEST_F(MetricsTest, EmptyHistogramQuantilesRenderZero)
{
    // The never-sampled convention: p50/p95/p99 of an empty histogram
    // are 0, matching min()'s empty convention — a serve stats doc for
    // a command that never ran shows all-zero latency, not garbage.
    Histogram &h = histogram("t.hist.empty");
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.quantile(0.50), 0u);
    EXPECT_EQ(h.quantile(0.95), 0u);
    EXPECT_EQ(h.quantile(0.99), 0u);
    // ...and reset() restores the convention.
    h.record(123);
    EXPECT_NE(h.quantile(0.5), 0u);
    h.reset();
    EXPECT_EQ(h.quantile(0.5), 0u);
}

TEST_F(MetricsTest, HistogramDefaultBoundsArePowersOfTwo)
{
    Histogram &h = histogram("t.hist.default");
    ASSERT_FALSE(h.bounds().empty());
    EXPECT_EQ(h.bounds().front(), 1u);
    EXPECT_EQ(h.bounds().back(), 65536u);
    for (size_t i = 1; i < h.bounds().size(); ++i)
        EXPECT_EQ(h.bounds()[i], h.bounds()[i - 1] * 2);
}

TEST_F(MetricsTest, DisabledMacrosRecordNothing)
{
    HWDBG_STAT_INC("t.disabled", 5);
    EXPECT_EQ(counterValue("t.disabled"), 5u);
    enableMetrics(false);
    HWDBG_STAT_INC("t.disabled", 5);
    HWDBG_STAT_MAX("t.disabled.gauge", 100);
    HWDBG_STAT_HIST("t.disabled.hist", 100);
    enableMetrics(true);
    EXPECT_EQ(counterValue("t.disabled"), 5u);
    EXPECT_EQ(gauge("t.disabled.gauge").value(), 0u);
    EXPECT_EQ(histogram("t.disabled.hist").count(), 0u);
}

TEST_F(MetricsTest, ResetKeepsInstrumentReferencesValid)
{
    Counter &c = counter("t.reset");
    c.inc(3);
    resetMetrics();
    EXPECT_EQ(c.value(), 0u);
    c.inc(); // the pre-reset reference must still be the live one
    EXPECT_EQ(counterValue("t.reset"), 1u);
}

TEST_F(MetricsTest, ConcurrentIncrementsAreLossless)
{
    constexpr int kThreads = 8;
    constexpr int kPerThread = 10000;
    std::vector<std::thread> pool;
    for (int t = 0; t < kThreads; ++t)
        pool.emplace_back([] {
            for (int i = 0; i < kPerThread; ++i) {
                HWDBG_STAT_INC("t.mt.counter", 1);
                HWDBG_STAT_HIST("t.mt.hist", (uint64_t)i);
            }
        });
    for (auto &thread : pool)
        thread.join();
    EXPECT_EQ(counterValue("t.mt.counter"),
              uint64_t(kThreads) * kPerThread);
    EXPECT_EQ(histogram("t.mt.hist").count(),
              uint64_t(kThreads) * kPerThread);
}

TEST_F(MetricsTest, JsonSnapshotPassesSchemaCheckAndIsSorted)
{
    counter("b.second").inc(2);
    counter("a.first").inc(1);
    gauge("g.depth").set(4);
    histogram("h.iters", {1, 2, 4}).record(3);
    std::string json = metricsJson();
    EXPECT_EQ(checkMetricsJson(json), "");
    EXPECT_LT(json.find("a.first"), json.find("b.second"));
    // Same registry, same snapshot: rendering is a pure function.
    EXPECT_EQ(json, metricsJson());
}

TEST_F(MetricsTest, TextSnapshotMentionsEveryInstrument)
{
    counter("t.text.counter").inc(12);
    gauge("t.text.gauge").set(7);
    histogram("t.text.hist").record(5);
    std::string text = metricsText();
    EXPECT_NE(text.find("t.text.counter"), std::string::npos);
    EXPECT_NE(text.find("12"), std::string::npos);
    EXPECT_NE(text.find("t.text.gauge"), std::string::npos);
    EXPECT_NE(text.find("t.text.hist"), std::string::npos);
}

} // namespace
} // namespace hwdbg::obs
