/**
 * @file
 * RequestLog semantics: ring bounding, the slow-request ring and its
 * >= threshold rule, per-command aggregates, the JSON-lines spill,
 * id uniqueness across enable/disable, and the disabled no-op path.
 */

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/jsoncheck.hh"
#include "obs/reqlog.hh"

namespace hwdbg::obs
{
namespace
{

RequestEvent
makeEvent(uint64_t id, const std::string &cmd, bool ok,
          uint64_t latencyUs, uint64_t session = 1)
{
    RequestEvent event;
    event.id = id;
    event.session = session;
    event.cmd = cmd;
    event.ok = ok;
    event.latencyUs = latencyUs;
    return event;
}

TEST(RequestLog, DisabledRecordIsANoop)
{
    RequestLog log;
    EXPECT_FALSE(log.enabled());
    log.record(makeEvent(1, "run", true, 5));
    EXPECT_EQ(log.requests(), 0u);
    EXPECT_TRUE(log.recent().empty());
    EXPECT_TRUE(log.commands().empty());
}

TEST(RequestLog, RingIsBoundedOldestFirst)
{
    RequestLog log(/*capacity=*/3, /*slowCapacity=*/2);
    log.setEnabled(true);
    for (uint64_t i = 1; i <= 5; ++i)
        log.record(makeEvent(i, "run", true, i));
    // The ring keeps the newest 3, oldest first; totals keep counting.
    std::vector<RequestEvent> recent = log.recent();
    ASSERT_EQ(recent.size(), 3u);
    EXPECT_EQ(recent[0].id, 3u);
    EXPECT_EQ(recent[2].id, 5u);
    EXPECT_EQ(log.requests(), 5u);
}

TEST(RequestLog, SlowRingUsesInclusiveThreshold)
{
    RequestLog log;
    log.setEnabled(true);
    log.setSlowThresholdUs(100);
    log.record(makeEvent(1, "run", true, 99));
    log.record(makeEvent(2, "run", true, 100)); // >= threshold: slow
    log.record(makeEvent(3, "run", true, 250));
    EXPECT_EQ(log.slowCount(), 2u);
    std::vector<RequestEvent> slow = log.slow();
    ASSERT_EQ(slow.size(), 2u);
    EXPECT_EQ(slow[0].id, 2u);
    EXPECT_EQ(slow[1].id, 3u);
    // Threshold 0 marks everything slow (the test-determinism hook).
    log.setSlowThresholdUs(0);
    log.record(makeEvent(4, "step", true, 0));
    EXPECT_EQ(log.slowCount(), 3u);
}

TEST(RequestLog, SlowRingIsBoundedIndependently)
{
    RequestLog log(/*capacity=*/100, /*slowCapacity=*/2);
    log.setEnabled(true);
    log.setSlowThresholdUs(0);
    for (uint64_t i = 1; i <= 4; ++i)
        log.record(makeEvent(i, "run", true, i));
    EXPECT_EQ(log.slowCount(), 4u);
    EXPECT_EQ(log.recent().size(), 4u);
    std::vector<RequestEvent> slow = log.slow();
    ASSERT_EQ(slow.size(), 2u);
    EXPECT_EQ(slow[0].id, 3u);
    EXPECT_EQ(slow[1].id, 4u);
}

TEST(RequestLog, PerCommandAggregatesSortedWithQuantiles)
{
    RequestLog log;
    log.setEnabled(true);
    log.record(makeEvent(1, "run", true, 10));
    log.record(makeEvent(2, "run", false, 30));
    log.record(makeEvent(3, "peek", true, 5));
    std::vector<CommandSnapshot> cmds = log.commands();
    ASSERT_EQ(cmds.size(), 2u);
    // Sorted by command name.
    EXPECT_EQ(cmds[0].cmd, "peek");
    EXPECT_EQ(cmds[1].cmd, "run");
    EXPECT_EQ(cmds[1].count, 2u);
    EXPECT_EQ(cmds[1].errors, 1u);
    EXPECT_EQ(cmds[1].maxUs, 30u);
    // Quantiles are monotone and clamped into the observed range.
    for (const auto &cmd : cmds) {
        EXPECT_LE(cmd.p50Us, cmd.p95Us);
        EXPECT_LE(cmd.p95Us, cmd.p99Us);
        EXPECT_LE(cmd.p99Us, cmd.maxUs);
    }
    // Global error total matches.
    EXPECT_EQ(log.errors(), 1u);
}

TEST(RequestLog, SpillWritesOneJsonLinePerEvent)
{
    RequestLog log;
    log.setEnabled(true);
    std::ostringstream spill;
    log.setSpill(&spill);
    log.record(makeEvent(7, "open", true, 42, /*session=*/0));
    log.record(makeEvent(8, "run", false, 9, /*session=*/3));
    log.setSpill(nullptr);
    log.record(makeEvent(9, "run", true, 1)); // after detach: no line
    std::istringstream lines(spill.str());
    std::string line;
    int count = 0;
    while (std::getline(lines, line)) {
        ++count;
        std::string error;
        JsonPtr root = parseJson(line, &error);
        ASSERT_TRUE(root && root->isObject()) << error;
        EXPECT_TRUE(root->get("request"));
        EXPECT_TRUE(root->get("cmd"));
        EXPECT_TRUE(root->get("latency_us"));
    }
    EXPECT_EQ(count, 2);
    EXPECT_NE(spill.str().find("\"request\": 7"), std::string::npos);
    EXPECT_NE(spill.str().find("\"ok\": false"), std::string::npos);
}

TEST(RequestLog, EventJsonRendersAllFields)
{
    std::string json =
        RequestLog::eventJson(makeEvent(12, "goto-cycle", false, 345,
                                        /*session=*/2));
    EXPECT_EQ(json, "{\"request\": 12, \"session\": 2, "
                    "\"cmd\": \"goto-cycle\", \"ok\": false, "
                    "\"latency_us\": 345}");
    std::string error;
    EXPECT_TRUE(parseJson(json, &error)) << error;
}

TEST(RequestLog, IdsStayUniqueAcrossDisableAndReset)
{
    RequestLog log;
    EXPECT_EQ(log.nextRequestId(), 1u);
    EXPECT_EQ(log.nextRequestId(), 2u);
    log.setEnabled(true);
    log.record(makeEvent(log.nextRequestId(), "run", true, 1));
    log.reset(); // drops rings/aggregates but not the id counter
    EXPECT_EQ(log.requests(), 0u);
    EXPECT_EQ(log.nextRequestId(), 4u);
}

TEST(RequestLog, ConcurrentRecordersAreLossless)
{
    constexpr int kThreads = 4;
    constexpr int kPerThread = 500;
    RequestLog log(/*capacity=*/kThreads * kPerThread,
                   /*slowCapacity=*/8);
    log.setEnabled(true);
    log.setSlowThresholdUs(1u << 30);
    std::vector<std::thread> pool;
    for (int t = 0; t < kThreads; ++t)
        pool.emplace_back([&log] {
            for (int i = 0; i < kPerThread; ++i)
                log.record(makeEvent(log.nextRequestId(), "run",
                                     i % 10 != 0, uint64_t(i)));
        });
    for (auto &thread : pool)
        thread.join();
    EXPECT_EQ(log.requests(), uint64_t(kThreads) * kPerThread);
    EXPECT_EQ(log.errors(), uint64_t(kThreads) * (kPerThread / 10));
    std::vector<RequestEvent> recent = log.recent();
    ASSERT_EQ(recent.size(), size_t(kThreads) * kPerThread);
    std::set<uint64_t> ids;
    for (const auto &event : recent)
        ids.insert(event.id);
    EXPECT_EQ(ids.size(), recent.size()) << "request ids must be unique";
    std::vector<CommandSnapshot> cmds = log.commands();
    ASSERT_EQ(cmds.size(), 1u);
    EXPECT_EQ(cmds[0].count, uint64_t(kThreads) * kPerThread);
}

} // namespace
} // namespace hwdbg::obs
