/**
 * @file
 * The shared JSON escaper (the one every emitter now uses) and the
 * build-provenance stamp.
 */

#include <gtest/gtest.h>

#include "obs/json.hh"

using namespace hwdbg;

TEST(JsonEscape, PassesPlainTextThrough)
{
    EXPECT_EQ(obs::jsonEscape(""), "");
    EXPECT_EQ(obs::jsonEscape("hello world 123"), "hello world 123");
    EXPECT_EQ(obs::jsonEscape("a[3:0] <= b + 1;"), "a[3:0] <= b + 1;");
}

TEST(JsonEscape, EscapesQuotesAndBackslashes)
{
    EXPECT_EQ(obs::jsonEscape("say \"hi\""), "say \\\"hi\\\"");
    EXPECT_EQ(obs::jsonEscape("C:\\path\\file"), "C:\\\\path\\\\file");
    EXPECT_EQ(obs::jsonEscape("\\\""), "\\\\\\\"");
}

TEST(JsonEscape, ShortFormsForCommonControls)
{
    EXPECT_EQ(obs::jsonEscape("line1\nline2"), "line1\\nline2");
    EXPECT_EQ(obs::jsonEscape("col\tcol"), "col\\tcol");
    EXPECT_EQ(obs::jsonEscape("cr\rlf\n"), "cr\\rlf\\n");
}

TEST(JsonEscape, UnicodeEscapesForOtherControlBytes)
{
    EXPECT_EQ(obs::jsonEscape(std::string(1, '\x01')), "\\u0001");
    EXPECT_EQ(obs::jsonEscape(std::string(1, '\x1f')), "\\u001f");
    std::string nul(1, '\0');
    EXPECT_EQ(obs::jsonEscape(nul), "\\u0000");
}

TEST(JsonEscape, NonAsciiBytesPassThrough)
{
    // UTF-8 multibyte sequences are valid inside JSON strings; the
    // escaper must not mangle them into \u escapes byte by byte.
    std::string utf8 = "caf\xc3\xa9";
    EXPECT_EQ(obs::jsonEscape(utf8), utf8);
}

TEST(BuildInfo, FieldsAreNonEmptyAndStable)
{
    const obs::BuildInfo &info = obs::buildInfo();
    EXPECT_FALSE(info.version.empty());
    EXPECT_FALSE(info.git.empty());
    EXPECT_FALSE(info.buildType.empty());
    // Constant within one process: double-run byte-diff tests depend
    // on the stamp never changing mid-session.
    EXPECT_EQ(obs::buildInfoJson(), obs::buildInfoJson());
}

TEST(BuildInfo, JsonShape)
{
    std::string json = obs::buildInfoJson();
    EXPECT_NE(json.find("\"tool\":\"hwdbg\""), std::string::npos);
    EXPECT_NE(json.find("\"version\":"), std::string::npos);
    EXPECT_NE(json.find("\"git\":"), std::string::npos);
    EXPECT_NE(json.find("\"type\":"), std::string::npos);
}
