/**
 * @file
 * Trace span semantics: session arming, JSON validity, balanced and
 * correctly nested B/E events, named per-thread tracks, and the
 * disabled-path no-op guarantee.
 */

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "obs/jsoncheck.hh"
#include "obs/trace.hh"

namespace hwdbg::obs
{
namespace
{

/** Events of one kind, in stream order: {ph, name, tid}. */
struct Ev
{
    std::string ph;
    std::string name;
    double tid;
};

std::vector<Ev>
events(const std::string &json)
{
    std::string error;
    JsonPtr root = parseJson(json, &error);
    EXPECT_EQ(error, "");
    std::vector<Ev> out;
    if (!root)
        return out;
    const JsonValue *list = root->get("traceEvents");
    if (!list)
        return out;
    for (const auto &event : list->elems) {
        Ev ev;
        if (const JsonValue *ph = event->get("ph"))
            ev.ph = ph->text;
        if (const JsonValue *name = event->get("name"))
            ev.name = name->text;
        if (const JsonValue *tid = event->get("tid"))
            ev.tid = tid->number;
        out.push_back(std::move(ev));
    }
    return out;
}

TEST(Trace, DisabledSpansAreInvisible)
{
    EXPECT_FALSE(traceEnabled());
    {
        ObsSpan span("never-recorded");
    }
    startTrace();
    {
        ObsSpan span("recorded");
    }
    std::string json = stopTrace();
    EXPECT_EQ(json.find("never-recorded"), std::string::npos);
    EXPECT_NE(json.find("recorded"), std::string::npos);
    EXPECT_FALSE(traceEnabled());
}

TEST(Trace, NestedSpansBalanceAndOrder)
{
    startTrace();
    {
        ObsSpan outer("outer");
        {
            ObsSpan inner("inner");
        }
        {
            ObsSpan sibling("sibling");
        }
    }
    std::string json = stopTrace();
    EXPECT_EQ(checkTraceJson(json), "");

    std::vector<std::string> begins;
    int depth = 0, max_depth = 0;
    for (const auto &ev : events(json)) {
        if (ev.ph == "B") {
            begins.push_back(ev.name);
            max_depth = std::max(max_depth, ++depth);
        } else if (ev.ph == "E") {
            --depth;
        }
    }
    EXPECT_EQ(depth, 0);
    EXPECT_EQ(max_depth, 2);
    ASSERT_EQ(begins.size(), 3u);
    EXPECT_EQ(begins[0], "outer");
    EXPECT_EQ(begins[1], "inner");
    EXPECT_EQ(begins[2], "sibling");
}

TEST(Trace, SessionBoundaryDropsStaleEvents)
{
    startTrace();
    {
        ObsSpan span("first-session");
    }
    (void)stopTrace();
    startTrace();
    {
        ObsSpan span("second-session");
    }
    std::string json = stopTrace();
    EXPECT_EQ(json.find("first-session"), std::string::npos);
    EXPECT_NE(json.find("second-session"), std::string::npos);
}

TEST(Trace, OpenSpanAtStopGetsSyntheticEnd)
{
    startTrace();
    auto leaked = std::make_unique<ObsSpan>("left-open");
    std::string json = stopTrace();
    // The stream must still balance even though the span's destructor
    // has not run yet; its eventual destruction must also be a no-op.
    EXPECT_EQ(checkTraceJson(json), "");
    leaked.reset();
    // The stale destructor must not leak an E into the next session.
    startTrace();
    {
        ObsSpan span("fresh");
    }
    std::string next = stopTrace();
    EXPECT_EQ(checkTraceJson(next), "");
    EXPECT_EQ(next.find("left-open"), std::string::npos);
}

TEST(Trace, WorkerThreadsGetNamedTracks)
{
    constexpr int kThreads = 4;
    startTrace();
    {
        ObsSpan main_span("dispatch");
        std::vector<std::thread> pool;
        for (int t = 0; t < kThreads; ++t)
            pool.emplace_back([t] {
                setTraceThreadName("worker-" + std::to_string(t));
                for (int i = 0; i < 50; ++i) {
                    ObsSpan outer("unit " + std::to_string(i));
                    ObsSpan inner("step");
                }
            });
        for (auto &thread : pool)
            thread.join();
    }
    std::string json = stopTrace();
    // checkTraceJson enforces per-tid balance and timestamp order, so
    // it is the real assertion that threads never corrupt each other.
    EXPECT_EQ(checkTraceJson(json), "");
    for (int t = 0; t < kThreads; ++t)
        EXPECT_NE(json.find("worker-" + std::to_string(t)),
                  std::string::npos)
            << "missing named track for worker " << t;

    // All spans of one worker must sit on one tid, distinct per worker.
    std::vector<Ev> evs = events(json);
    std::set<double> tids;
    for (const auto &ev : evs)
        if (ev.ph == "B" && ev.name == "step")
            tids.insert(ev.tid);
    EXPECT_EQ(tids.size(), size_t(kThreads));
}

TEST(Trace, VirtualTracksCarrySpansFromAnyThread)
{
    startTrace();
    uint32_t track = traceRegisterTrack("session-42");
    ASSERT_NE(track, 0u);
    {
        ObsSpan attach("attach", track);
    }
    // A different thread records onto the same virtual track; the
    // span must land there, not on that thread's own track.
    std::thread worker([track] {
        ObsSpan span("cmd", track);
    });
    worker.join();
    {
        ObsSpan local("thread-local");
    }
    std::string json = stopTrace();
    EXPECT_EQ(checkTraceJson(json), "");
    EXPECT_NE(json.find("session-42"), std::string::npos);

    double trackTid = -1, localTid = -1;
    std::set<double> spanTids;
    for (const auto &ev : events(json)) {
        if (ev.ph == "B" && (ev.name == "attach" || ev.name == "cmd"))
            spanTids.insert(ev.tid);
        if (ev.ph == "B" && ev.name == "attach")
            trackTid = ev.tid;
        if (ev.ph == "B" && ev.name == "thread-local")
            localTid = ev.tid;
    }
    // Both spans share the virtual track's tid, distinct from the
    // calling thread's own track.
    EXPECT_EQ(spanTids.size(), 1u);
    EXPECT_NE(trackTid, localTid);
}

TEST(Trace, VirtualTrackSpansAreNoopsWhenDisabled)
{
    uint32_t track = traceRegisterTrack("idle-track");
    {
        ObsSpan span("never-recorded", track);
    }
    startTrace();
    std::string json = stopTrace();
    EXPECT_EQ(json.find("never-recorded"), std::string::npos);
    // A bogus track id must not crash; the span just goes nowhere.
    startTrace();
    {
        ObsSpan span("into-the-void", 1u << 30);
        ObsSpan real("still-recorded");
    }
    json = stopTrace();
    EXPECT_EQ(checkTraceJson(json), "");
    EXPECT_EQ(json.find("into-the-void"), std::string::npos);
    EXPECT_NE(json.find("still-recorded"), std::string::npos);
}

} // namespace
} // namespace hwdbg::obs
