/**
 * @file
 * The JSON parser and the trace/metrics schema checks that back
 * `hwdbg obscheck`. A checker that accepts garbage would turn the CI
 * validation step into a rubber stamp, so the rejection cases matter
 * as much as the acceptance ones.
 */

#include <gtest/gtest.h>

#include "obs/jsoncheck.hh"

namespace hwdbg::obs
{
namespace
{

JsonPtr
parseOk(const std::string &text)
{
    std::string error;
    JsonPtr root = parseJson(text, &error);
    EXPECT_EQ(error, "") << text;
    return root;
}

TEST(JsonCheck, ParsesScalarsAndNesting)
{
    JsonPtr root = parseOk(
        "{\"a\": [1, -2.5, 1e3], \"b\": {\"c\": true, \"d\": null}, "
        "\"s\": \"x\\n\\\"y\\\"\\u0041\"}");
    ASSERT_TRUE(root && root->isObject());
    const JsonValue *a = root->get("a");
    ASSERT_TRUE(a && a->isArray());
    ASSERT_EQ(a->elems.size(), 3u);
    EXPECT_DOUBLE_EQ(a->elems[0]->number, 1);
    EXPECT_DOUBLE_EQ(a->elems[1]->number, -2.5);
    EXPECT_DOUBLE_EQ(a->elems[2]->number, 1000);
    const JsonValue *b = root->get("b");
    ASSERT_TRUE(b && b->isObject());
    EXPECT_TRUE(b->get("c")->boolean);
    EXPECT_EQ(b->get("d")->kind, JsonValue::Kind::Null);
    EXPECT_EQ(root->get("s")->text, "x\n\"y\"A");
    EXPECT_EQ(root->get("missing"), nullptr);
}

TEST(JsonCheck, RejectsMalformedInput)
{
    for (const char *bad :
         {"", "{", "[1,]", "{\"a\":}", "{\"a\" 1}", "tru",
          "\"unterminated", "{\"a\":1} trailing", "[1 2]"}) {
        std::string error;
        EXPECT_EQ(parseJson(bad, &error), nullptr) << bad;
        EXPECT_NE(error, "") << bad;
    }
}

TEST(JsonCheck, AcceptsMinimalValidTrace)
{
    std::string good =
        "{\"traceEvents\": ["
        "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
        "\"tid\": 1, \"args\": {\"name\": \"main\"}},"
        "{\"name\": \"parse\", \"cat\": \"hwdbg\", \"ph\": \"B\", "
        "\"ts\": 10, \"pid\": 1, \"tid\": 1},"
        "{\"name\": \"\", \"ph\": \"E\", \"ts\": 20, \"pid\": 1, "
        "\"tid\": 1}"
        "]}";
    EXPECT_EQ(checkTraceJson(good), "");
}

TEST(JsonCheck, RejectsBrokenTraces)
{
    // Unbalanced: B without E.
    std::string unbalanced =
        "{\"traceEvents\": [{\"name\": \"x\", \"ph\": \"B\", "
        "\"ts\": 1, \"pid\": 1, \"tid\": 1}]}";
    EXPECT_NE(checkTraceJson(unbalanced), "");

    // E before any B on its tid.
    std::string inverted =
        "{\"traceEvents\": [{\"name\": \"\", \"ph\": \"E\", "
        "\"ts\": 1, \"pid\": 1, \"tid\": 1}]}";
    EXPECT_NE(checkTraceJson(inverted), "");

    // Timestamps running backwards on one tid.
    std::string backwards =
        "{\"traceEvents\": ["
        "{\"name\": \"a\", \"ph\": \"B\", \"ts\": 9, \"pid\": 1, "
        "\"tid\": 1},"
        "{\"name\": \"\", \"ph\": \"E\", \"ts\": 5, \"pid\": 1, "
        "\"tid\": 1}]}";
    EXPECT_NE(checkTraceJson(backwards), "");

    // Not a trace at all.
    EXPECT_NE(checkTraceJson("{}"), "");
    EXPECT_NE(checkTraceJson("{\"traceEvents\": 3}"), "");
}

TEST(JsonCheck, AcceptsMinimalValidMetrics)
{
    std::string good =
        "{\"counters\": {\"sim.cycles\": 100}, "
        "\"gauges\": {\"sim.max_settle_iters\": 3}, "
        "\"histograms\": {\"sim.settle_iters\": "
        "{\"buckets\": [[1, 2], [2, 1], [null, 0]], "
        "\"count\": 3, \"sum\": 4, \"min\": 1, \"max\": 2}}}";
    EXPECT_EQ(checkMetricsJson(good), "");
}

TEST(JsonCheck, RejectsBrokenMetrics)
{
    // Bucket counts that do not sum to the histogram count.
    std::string bad_sum =
        "{\"counters\": {}, \"gauges\": {}, \"histograms\": "
        "{\"h\": {\"buckets\": [[1, 2], [null, 0]], \"count\": 3, "
        "\"sum\": 2, \"min\": 1, \"max\": 1}}}";
    EXPECT_NE(checkMetricsJson(bad_sum), "");

    // Non-increasing bucket bounds.
    std::string bad_bounds =
        "{\"counters\": {}, \"gauges\": {}, \"histograms\": "
        "{\"h\": {\"buckets\": [[4, 1], [2, 0], [null, 0]], "
        "\"count\": 1, \"sum\": 3, \"min\": 3, \"max\": 3}}}";
    EXPECT_NE(checkMetricsJson(bad_bounds), "");

    // A counter that is not a number.
    std::string bad_counter =
        "{\"counters\": {\"x\": \"ten\"}, \"gauges\": {}, "
        "\"histograms\": {}}";
    EXPECT_NE(checkMetricsJson(bad_counter), "");

    EXPECT_NE(checkMetricsJson("[]"), "");
}

} // namespace
} // namespace hwdbg::obs
