# Golden tests for `hwdbg serve`: a scripted multi-session channel
# (debug + cover + trace + analyze on shared cached designs, virtual
# line breakpoints, session routing, stats/health/slow telemetry) is
# byte-identical across two runs once wall-clock `_us` fields are
# scrubbed, passes `hwdbg obscheck` (including the hwdbg-serve-stats
# document), shows the design cache and the content-addressed snapshot
# dedup working, spills a JSON-lines request log, and surfaces
# failures as protocol errors + non-zero exit.

set(work ${CMAKE_CURRENT_BINARY_DIR}/cli_serve_work)
file(MAKE_DIRECTORY ${work})

file(WRITE ${work}/session.txt "# multi-session serve golden
open debug bug=D3
open debug bug=D3
open cover bug=D3 out=${work}/cover.json
open trace bug=D3 signals=* budget=2048 out=${work}/trace.json
open analyze bug=D3 out=${work}/analyze.json
@1 break at optimus.v:87
@1 run
@1 info breakpoints
@2 step 5
@1 reverse-step 2
@1 run
sessions
stats
health
slow
stats out=${work}/stats.json
close 2
quit
")

function(run_serve_session script outvar)
    # The huge --slow-us keeps the stats "slow" counter at a
    # deterministic 0 on any machine.
    execute_process(COMMAND ${HWDBG} serve --script ${script}
                    --metrics ${work}/metrics.json
                    --slow-us 600000000 --reqlog ${work}/reqlog.jsonl
                    RESULT_VARIABLE rc OUTPUT_VARIABLE out
                    ERROR_VARIABLE err)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR
                "serve --script failed (rc=${rc}): ${out}${err}")
    endif()
    set(${outvar} "${out}" PARENT_SCOPE)
endfunction()

run_serve_session(${work}/session.txt first)
run_serve_session(${work}/session.txt second)
# Every wall-clock field carries a `_us` suffix by convention; zero
# them and the rest of the transcript must match byte for byte.
string(REGEX REPLACE "_us\":[0-9]+" "_us\":0" first_scrubbed "${first}")
string(REGEX REPLACE "_us\":[0-9]+" "_us\":0" second_scrubbed
       "${second}")
if(NOT first_scrubbed STREQUAL second_scrubbed)
    message(FATAL_ERROR
            "serve transcripts differ between two runs of the same "
            "script:\n--- a\n${first_scrubbed}\n--- b\n"
            "${second_scrubbed}")
endif()

# Shared-state content: the second debug attach and every one-shot
# session hit the design cache; checkpoint snapshots dedupe; the
# virtual line breakpoint resolves, fires, and re-fires after travel.
foreach(pattern
        "^{\"proto\":\"hwdbg-serve\",\"version\":1,"
        "\"cache\":\"miss\""
        "\"cache\":\"hit\""
        "\"kind\":\"line\",\"spec\":\"optimus.v:87\""
        "\"stop\":\"breakpoint\""
        "\"hits\":1"
        "\"builds\":1"
        "\"dedup_hits\":"
        "\"count\":5"
        "\"cmd\":\"close\""
        "\"format\":\"hwdbg-serve-stats\",\"version\":1"
        "\"dedup_ratio_pct\":"
        "\"p95_us\":"
        "\"status\":\"ok\""
        "\"threshold_us\":600000000,\"count\":0")
    if(NOT first MATCHES "${pattern}")
        message(FATAL_ERROR
                "serve transcript is missing '${pattern}':\n${first}")
    endif()
endforeach()
if(first MATCHES "\"dedup_hits\":0,")
    message(FATAL_ERROR
            "two sessions on one design deduped nothing:\n${first}")
endif()

# The serve.snapshot.dedup_bytes metric recorded real sharing, and the
# per-request latency histogram populated.
file(READ ${work}/metrics.json metrics)
if(NOT metrics MATCHES "serve.snapshot.dedup_bytes")
    message(FATAL_ERROR
            "metrics snapshot lost serve.snapshot.dedup_bytes:"
            "\n${metrics}")
endif()
if(metrics MATCHES "\"serve.snapshot.dedup_bytes\": 0[,\n]")
    message(FATAL_ERROR
            "serve.snapshot.dedup_bytes stayed zero:\n${metrics}")
endif()
if(NOT metrics MATCHES "serve.request_latency_us")
    message(FATAL_ERROR
            "metrics snapshot lost serve.request_latency_us:"
            "\n${metrics}")
endif()

# The --reqlog spill is one JSON line per request, with latency.
file(READ ${work}/reqlog.jsonl reqlog)
if(NOT reqlog MATCHES "\"cmd\": \"stats\"" OR
   NOT reqlog MATCHES "\"latency_us\": ")
    message(FATAL_ERROR
            "request log spill is missing events:\n${reqlog}")
endif()

# The transcript and every session artifact pass the schema checks.
file(WRITE ${work}/serve.jsonl "${first}")
execute_process(COMMAND ${HWDBG} obscheck ${work}/serve.jsonl
                ${work}/cover.json ${work}/trace.json
                ${work}/analyze.json ${work}/metrics.json
                ${work}/stats.json
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_QUIET)
if(NOT rc EQUAL 0 OR NOT out MATCHES "ok \\(serve transcript\\)" OR
   NOT out MATCHES "ok \\(serve stats\\)")
    message(FATAL_ERROR
            "obscheck rejected the serve artifacts: ${out}")
endif()

# A failing command (unknown bug) surfaces as an error response and a
# non-zero exit, without killing the channel.
file(WRITE ${work}/bad.txt "open debug bug=NOPE\nsessions\nquit\n")
execute_process(COMMAND ${HWDBG} serve --script ${work}/bad.txt
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_QUIET)
if(rc EQUAL 0)
    message(FATAL_ERROR
            "a script with a failing open exited 0:\n${out}")
endif()
if(NOT out MATCHES "\"ok\":false,\"error\":" OR
   NOT out MATCHES "\"cmd\":\"sessions\"")
    message(FATAL_ERROR
            "failed open did not keep the channel alive:\n${out}")
endif()

message(STATUS "cli_serve golden checks passed")
