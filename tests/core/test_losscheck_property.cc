/**
 * @file
 * Fault-injection property test for LossCheck: generate an N-stage
 * valid/data pipeline, break the handshake at one randomly chosen
 * stage (its forwarding ignores the downstream stall), and require
 * LossCheck to name exactly that stage's register. This is the tool's
 * core promise - precise localization - checked across many random
 * topologies.
 */

#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <sstream>

#include "common/logging.hh"
#include "core/losscheck.hh"
#include "elab/elaborate.hh"
#include "hdl/parser.hh"
#include "hdl/printer.hh"
#include "sim/simulator.hh"

using namespace hwdbg;
using namespace hwdbg::hdl;
using namespace hwdbg::sim;
using namespace hwdbg::core;

namespace
{

/**
 * An N-stage pipeline with per-stage enables. Stage i forwards its
 * register into stage i+1 when en<i> is high; the final stage drains
 * into the sink whenever en<N-1> is high. A lossy stage accepts new
 * data every valid beat even when its enable is low, overwriting the
 * unforwarded value.
 */
std::string
pipelineSource(int stages, int lossy_stage)
{
    std::ostringstream src;
    src << "module m(\n    input wire clk,\n"
           "    input wire in_valid,\n"
           "    input wire [7:0] in,\n";
    for (int i = 0; i < stages; ++i)
        src << "    input wire en" << i << ",\n";
    src << "    output reg [7:0] out\n);\n";
    for (int i = 0; i < stages; ++i) {
        src << "reg [7:0] st" << i << ";\n";
        src << "reg st" << i << "_v;\n";
    }
    src << "always @(posedge clk) begin\n";
    // Stage 0 capture.
    if (lossy_stage == 0) {
        src << "    if (in_valid) begin st0 <= in; st0_v <= 1'b1; end\n";
    } else {
        src << "    if (in_valid && !st0_v) begin st0 <= in; "
               "st0_v <= 1'b1; end\n";
    }
    src << "    if (en0 && st0_v) st0_v <= 1'b0;\n";
    for (int i = 1; i < stages; ++i) {
        // Forward from stage i-1 under en(i-1).
        if (lossy_stage == i) {
            // The broken stage accepts whenever upstream forwards,
            // regardless of its own occupancy/enable.
            src << "    if (en" << (i - 1) << " && st" << (i - 1)
                << "_v) begin st" << i << " <= st" << (i - 1)
                << "; st" << i << "_v <= 1'b1; end\n";
        } else {
            src << "    if (en" << (i - 1) << " && st" << (i - 1)
                << "_v && !st" << i << "_v) begin st" << i << " <= st"
                << (i - 1) << "; st" << i << "_v <= 1'b1; end\n";
        }
        src << "    if (en" << i << " && st" << i << "_v) st" << i
            << "_v <= 1'b0;\n";
    }
    src << "    if (en" << (stages - 1) << " && st" << (stages - 1)
        << "_v) out <= st" << (stages - 1) << ";\n";
    src << "end\nendmodule\n";
    return src.str();
}

} // namespace

class LossCheckFaultInjection
    : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(LossCheckFaultInjection, LocalizesTheInjectedStage)
{
    std::mt19937 rng(GetParam());
    for (int trial = 0; trial < 4; ++trial) {
        int stages = 3 + static_cast<int>(rng() % 4); // 3..6
        int lossy = 1 + static_cast<int>(rng() % (stages - 1));
        std::string src = pipelineSource(stages, lossy);

        auto elaborated = elab::elaborate(parse(src), "m");
        LossCheckOptions opts;
        opts.source = "in";
        opts.sourceValid = "in_valid";
        opts.sink = "out";
        LossCheckResult inst = applyLossCheck(*elaborated.mod, opts);
        ASSERT_EQ(inst.instrumented.size(),
                  static_cast<size_t>(stages))
            << src;

        // Round-trip the instrumented Verilog and drive it: all
        // enables high except the one *below* the lossy stage, which
        // pulses slowly - so the lossy stage keeps receiving data it
        // has not forwarded.
        Design design = parse(printModule(*inst.module));
        Simulator sim(elab::elaborate(design, "m").mod);
        for (int i = 0; i < stages; ++i)
            sim.poke("en" + std::to_string(i),
                     uint64_t(i != lossy));
        uint64_t value = 1;
        for (int cycle = 0; cycle < 60; ++cycle) {
            sim.poke("in_valid", uint64_t(1));
            sim.poke("in", value++ & 0xff);
            // Occasionally let the stalled stage drain one value so
            // both loss and progress occur.
            sim.poke("en" + std::to_string(lossy),
                     uint64_t(cycle % 7 == 6));
            sim.poke("clk", uint64_t(0));
            sim.eval();
            sim.poke("clk", uint64_t(1));
            sim.eval();
        }

        auto lossy_regs = lossRegisters(sim.log());
        std::string expected = "st" + std::to_string(lossy);
        EXPECT_TRUE(lossy_regs.count(expected))
            << "stages=" << stages << " lossy=" << lossy
            << " reported: "
            << [&] {
                   std::string out;
                   for (const auto &reg : lossy_regs)
                       out += reg + " ";
                   return out;
               }();
        // Precision: healthy stages must not be blamed.
        for (int i = 0; i < stages; ++i) {
            if (i != lossy) {
                EXPECT_FALSE(
                    lossy_regs.count("st" + std::to_string(i)))
                    << "stages=" << stages << " lossy=" << lossy;
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LossCheckFaultInjection,
                         ::testing::Values(3u, 9u, 21u, 55u, 144u,
                                           377u));
