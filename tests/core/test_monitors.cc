/**
 * @file
 * Tests for FSM Monitor, Dependency Monitor, and Statistics Monitor.
 */

#include <gtest/gtest.h>

#include <memory>

#include "common/logging.hh"
#include "core/dep_monitor.hh"
#include "common/logging.hh"
#include "core/fsm_monitor.hh"
#include "common/logging.hh"
#include "core/stats_monitor.hh"
#include "elab/elaborate.hh"
#include "hdl/parser.hh"
#include "hdl/printer.hh"
#include "sim/simulator.hh"

using namespace hwdbg;
using namespace hwdbg::hdl;
using namespace hwdbg::sim;
using namespace hwdbg::core;

namespace
{

elab::ElabResult
flatWithConsts(const std::string &src, const std::string &top = "m")
{
    return elab::elaborate(parse(src), top);
}

std::unique_ptr<Simulator>
simulate(ModulePtr mod)
{
    // Round-trip through the printer: instrumented modules must be
    // legal Verilog.
    Design design = parse(printModule(*mod));
    return std::make_unique<Simulator>(
        elab::elaborate(design, design.modules[0]->name).mod);
}

void
tick(Simulator &sim, int n = 1)
{
    for (int i = 0; i < n; ++i) {
        sim.poke("clk", uint64_t(0));
        sim.eval();
        sim.poke("clk", uint64_t(1));
        sim.eval();
    }
}

const char *fsm_design =
    "module m(input wire clk, input wire request_valid,\n"
    "         input wire work_done);\n"
    "localparam IDLE = 2'd0, WORK = 2'd1, FINISH = 2'd2;\n"
    "reg [1:0] state;\n"
    "always @(posedge clk)\n"
    "case (state)\n"
    "  IDLE: if (request_valid) state <= WORK;\n"
    "  WORK: if (work_done) state <= FINISH;\n"
    "  FINISH: state <= IDLE;\nendcase\nendmodule";

} // namespace

TEST(FsmMonitorTest, TracesStateTransitions)
{
    auto elaborated = flatWithConsts(fsm_design);
    FsmMonitorResult mon = applyFsmMonitor(*elaborated.mod);
    ASSERT_EQ(mon.monitored.size(), 1u);
    EXPECT_EQ(mon.monitored[0], "state");
    EXPECT_GT(mon.generatedLines, 0);

    auto sim = simulate(mon.module);
    sim->poke("request_valid", uint64_t(1));
    tick(*sim);
    sim->poke("request_valid", uint64_t(0));
    tick(*sim); // monitor reports IDLE->WORK here
    sim->poke("work_done", uint64_t(1));
    tick(*sim);
    sim->poke("work_done", uint64_t(0));
    tick(*sim, 3); // WORK->FINISH->IDLE reported

    auto trace = fsmTrace(sim->log());
    ASSERT_GE(trace.size(), 3u);
    EXPECT_EQ(trace[0].stateVar, "state");
    EXPECT_EQ(trace[0].fromState, 0u); // IDLE
    EXPECT_EQ(trace[0].toState, 1u);   // WORK
    EXPECT_EQ(trace[1].fromState, 1u);
    EXPECT_EQ(trace[1].toState, 2u);
    EXPECT_EQ(trace[2].fromState, 2u);
    EXPECT_EQ(trace[2].toState, 0u);
}

TEST(FsmMonitorTest, FinalStatesIdentifyStuckFsm)
{
    auto elaborated = flatWithConsts(fsm_design);
    FsmMonitorResult mon = applyFsmMonitor(*elaborated.mod);
    auto sim = simulate(mon.module);
    sim->poke("request_valid", uint64_t(1));
    tick(*sim);
    sim->poke("request_valid", uint64_t(0));
    // work_done never arrives: the FSM is stuck in WORK.
    tick(*sim, 10);
    auto final_states = finalStates(fsmTrace(sim->log()), mon.monitored);
    EXPECT_EQ(final_states.at("state"), 1u);
    EXPECT_EQ(stateName("state", final_states.at("state"),
                        elaborated.constants),
              "WORK");
}

TEST(FsmMonitorTest, ForceIncludeAndExclude)
{
    auto elaborated = flatWithConsts(fsm_design);
    FsmMonitorOptions opts;
    opts.exclude.insert("state");
    FsmMonitorResult mon = applyFsmMonitor(*elaborated.mod, opts);
    EXPECT_TRUE(mon.monitored.empty());

    FsmMonitorOptions opts2;
    opts2.forceInclude.insert("state");
    FsmMonitorResult mon2 = applyFsmMonitor(*elaborated.mod, opts2);
    EXPECT_EQ(mon2.monitored.size(), 1u);
}

TEST(FsmMonitorTest, StateNameFallsBackToNumber)
{
    std::map<std::string, Bits> constants;
    EXPECT_EQ(stateName("state", 7, constants), "7");
}

TEST(DepMonitorTest, ChainAndUpdateLog)
{
    auto elaborated = flatWithConsts(
        "module m(input wire clk, input wire [7:0] in,\n"
        "         output reg [7:0] out);\n"
        "reg [7:0] stage1, stage2;\n"
        "always @(posedge clk) begin\n"
        "  stage1 <= in;\n  stage2 <= stage1 + 1;\n"
        "  out <= stage2;\nend\nendmodule");
    DepMonitorOptions opts;
    opts.variable = "out";
    opts.cycles = 3;
    DepMonitorResult mon = applyDepMonitor(*elaborated.mod, opts);
    EXPECT_EQ(mon.chain.at("out"), 0);
    EXPECT_EQ(mon.chain.at("stage2"), 1);
    EXPECT_EQ(mon.chain.at("stage1"), 2);
    EXPECT_GT(mon.generatedLines, 0);

    auto sim = simulate(mon.module);
    sim->poke("in", uint64_t(0x10));
    tick(*sim, 4);
    auto updates = depUpdates(sim->log());
    ASSERT_FALSE(updates.empty());
    bool saw_stage1 = false, saw_out = false;
    for (const auto &update : updates) {
        if (update.variable == "stage1" && update.value == "10")
            saw_stage1 = true;
        if (update.variable == "out" && update.value == "11")
            saw_out = true;
    }
    EXPECT_TRUE(saw_stage1);
    EXPECT_TRUE(saw_out);
}

TEST(DepMonitorTest, CycleBudgetLimitsChain)
{
    auto elaborated = flatWithConsts(
        "module m(input wire clk, input wire [7:0] in,\n"
        "         output reg [7:0] out);\n"
        "reg [7:0] s1, s2, s3;\n"
        "always @(posedge clk) begin\n"
        "  s1 <= in;\n  s2 <= s1;\n  s3 <= s2;\n  out <= s3;\nend\n"
        "endmodule");
    DepMonitorOptions opts;
    opts.variable = "out";
    opts.cycles = 2;
    DepMonitorResult mon = applyDepMonitor(*elaborated.mod, opts);
    EXPECT_TRUE(mon.chain.count("s3"));
    EXPECT_TRUE(mon.chain.count("s2"));
    EXPECT_FALSE(mon.chain.count("s1"));
}

TEST(DepMonitorTest, UnknownVariableThrows)
{
    auto elaborated = flatWithConsts(
        "module m(input wire clk);\nreg x;\n"
        "always @(posedge clk) x <= x;\nendmodule");
    DepMonitorOptions opts;
    opts.variable = "nope";
    EXPECT_THROW(applyDepMonitor(*elaborated.mod, opts), HdlError);
}

TEST(StatsMonitorTest, CountsEvents)
{
    auto elaborated = flatWithConsts(
        "module m(input wire clk, input wire in_valid,\n"
        "         input wire out_ready);\n"
        "endmodule");
    StatsMonitorOptions opts;
    opts.events.push_back(statsEvent("inputs", "in_valid"));
    opts.events.push_back(statsEvent("outputs", "out_ready"));
    StatsMonitorResult mon = applyStatsMonitor(*elaborated.mod, opts);
    EXPECT_GT(mon.generatedLines, 0);

    auto sim = simulate(mon.module);
    sim->poke("in_valid", uint64_t(1));
    sim->poke("out_ready", uint64_t(1));
    tick(*sim, 3);
    sim->poke("out_ready", uint64_t(0));
    tick(*sim, 2);

    auto counts = statCounts(sim->log());
    EXPECT_EQ(counts.at("inputs"), 5u);
    EXPECT_EQ(counts.at("outputs"), 3u);

    // Counter registers are also directly readable (cheap mode).
    EXPECT_EQ(sim->peekU64(StatsMonitorResult::counterSignal("inputs")),
              5u);
}

TEST(StatsMonitorTest, MismatchRevealsDataLossSymptom)
{
    // Takeaway #2: comparing input/output counters reveals loss.
    auto elaborated = flatWithConsts(
        "module m(input wire clk, input wire in_valid,\n"
        "         output reg out_valid);\n"
        "reg busy;\n"
        "always @(posedge clk) begin\n"
        "  out_valid <= 1'b0;\n"
        "  if (in_valid && !busy) begin\n"
        "    busy <= 1'b1;\n"
        "  end\n"
        "  if (busy) begin\n"
        "    out_valid <= 1'b1;\n    busy <= 1'b0;\n"
        "  end\nend\nendmodule");
    StatsMonitorOptions opts;
    opts.events.push_back(statsEvent("in", "in_valid"));
    opts.events.push_back(statsEvent("out", "out_valid"));
    StatsMonitorResult mon = applyStatsMonitor(*elaborated.mod, opts);
    auto sim = simulate(mon.module);
    sim->poke("in_valid", uint64_t(1));
    tick(*sim, 10);
    sim->poke("in_valid", uint64_t(0));
    tick(*sim, 3);
    auto counts = statCounts(sim->log());
    // Every other input is dropped while busy: outputs < inputs.
    EXPECT_LT(counts.at("out"), counts.at("in"));
}

TEST(StatsMonitorTest, SilentModeKeepsCountersOnly)
{
    auto elaborated = flatWithConsts(
        "module m(input wire clk, input wire e);\nendmodule");
    StatsMonitorOptions opts;
    opts.events.push_back(statsEvent("e", "e"));
    opts.logChanges = false;
    StatsMonitorResult mon = applyStatsMonitor(*elaborated.mod, opts);
    auto sim = simulate(mon.module);
    sim->poke("e", uint64_t(1));
    tick(*sim, 4);
    EXPECT_TRUE(sim->log().empty());
    EXPECT_EQ(sim->peekU64(StatsMonitorResult::counterSignal("e")), 4u);
}

TEST(StatsMonitorTest, BlockingWrittenEventsAreSampledPreEdge)
{
    // Regression (found by fuzzing): generated monitor processes used
    // to be appended after the user's clocked processes, so a blocking
    // assignment to the event register in the same edge was counted one
    // cycle early. Monitors sample the pre-edge view of the design.
    auto elaborated = flatWithConsts(
        "module m(input wire clk, input wire x, output reg ev);\n"
        "always @(posedge clk) ev = x;\nendmodule");
    StatsMonitorOptions opts;
    opts.events.push_back(statsEvent("ev", "ev"));
    opts.logChanges = false;
    StatsMonitorResult mon = applyStatsMonitor(*elaborated.mod, opts);
    auto sim = simulate(mon.module);
    sim->poke("x", uint64_t(1));
    tick(*sim);
    // The pulse is written by a blocking assign during this edge; the
    // pre-edge view the monitor samples is still low.
    EXPECT_EQ(sim->peekU64(StatsMonitorResult::counterSignal("ev")),
              0u);
    sim->poke("x", uint64_t(0));
    tick(*sim);
    EXPECT_EQ(sim->peekU64(StatsMonitorResult::counterSignal("ev")),
              1u);
    tick(*sim, 3);
    EXPECT_EQ(sim->peekU64(StatsMonitorResult::counterSignal("ev")),
              1u);
}
