/**
 * @file
 * Tests for LossCheck: shadow-state equations, precise localization,
 * false-positive filtering, and the known false-negative mode (§4.5).
 */

#include <gtest/gtest.h>

#include <memory>

#include "common/logging.hh"
#include "core/losscheck.hh"
#include "elab/elaborate.hh"
#include "hdl/parser.hh"
#include "hdl/printer.hh"
#include "sim/simulator.hh"

using namespace hwdbg;
using namespace hwdbg::hdl;
using namespace hwdbg::sim;
using namespace hwdbg::core;

namespace
{

ModulePtr
flat(const std::string &src, const std::string &top = "m")
{
    return elab::elaborate(parse(src), top).mod;
}

std::unique_ptr<Simulator>
simulate(ModulePtr mod)
{
    Design design = parse(printModule(*mod));
    return std::make_unique<Simulator>(
        elab::elaborate(design, design.modules[0]->name).mod);
}

void
tick(Simulator &sim, int n = 1)
{
    for (int i = 0; i < n; ++i) {
        sim.poke("clk", uint64_t(0));
        sim.eval();
        sim.poke("clk", uint64_t(1));
        sim.eval();
    }
}

// The paper's running example (§4.5.1): b's value can be lost when a
// second valid input arrives before cond_b propagates b into out.
const char *paper_example =
    "module m(input wire clk, input wire cond_a, input wire cond_b,\n"
    "         input wire in_valid, input wire [7:0] in,\n"
    "         input wire [7:0] a, output reg [7:0] out);\n"
    "reg [7:0] b;\n"
    "always @(posedge clk) begin\n"
    "  if (cond_a) out <= a;\n"
    "  else if (cond_b) out <= b;\n"
    "  if (in_valid) b <= in;\nend\nendmodule";

} // namespace

TEST(LossCheckTest, PathAndInstrumentationSets)
{
    auto mod = flat(paper_example);
    LossCheckOptions opts;
    opts.source = "in";
    opts.sourceValid = "in_valid";
    opts.sink = "out";
    LossCheckResult inst = applyLossCheck(*mod, opts);
    EXPECT_EQ(inst.onPath, (std::set<std::string>{"in", "b", "out"}));
    // The sink is excluded; the source is a top-level input, so only b
    // carries shadow state.
    EXPECT_EQ(inst.instrumented, (std::set<std::string>{"b"}));
    EXPECT_GT(inst.generatedLines, 0);
}

TEST(LossCheckTest, DetectsOverwriteLoss)
{
    auto mod = flat(paper_example);
    LossCheckOptions opts;
    opts.source = "in";
    opts.sourceValid = "in_valid";
    opts.sink = "out";
    LossCheckResult inst = applyLossCheck(*mod, opts);

    auto sim = simulate(inst.module);
    // Two valid inputs back to back, no cond_b: the first value of b is
    // overwritten before it ever propagates.
    sim->poke("in_valid", uint64_t(1));
    sim->poke("in", uint64_t(0x11));
    tick(*sim);
    sim->poke("in", uint64_t(0x22));
    tick(*sim);
    sim->poke("in_valid", uint64_t(0));
    tick(*sim);

    EXPECT_EQ(lossRegisters(sim->log()),
              (std::set<std::string>{"b"}));
}

TEST(LossCheckTest, NoLossWhenDataPropagates)
{
    auto mod = flat(paper_example);
    LossCheckOptions opts;
    opts.source = "in";
    opts.sourceValid = "in_valid";
    opts.sink = "out";
    LossCheckResult inst = applyLossCheck(*mod, opts);

    auto sim = simulate(inst.module);
    // Value arrives, then propagates via cond_b before the next value.
    sim->poke("in_valid", uint64_t(1));
    sim->poke("in", uint64_t(0x11));
    tick(*sim);
    sim->poke("in_valid", uint64_t(0));
    sim->poke("cond_b", uint64_t(1));
    tick(*sim);
    sim->poke("cond_b", uint64_t(0));
    sim->poke("in_valid", uint64_t(1));
    sim->poke("in", uint64_t(0x22));
    tick(*sim);
    sim->poke("in_valid", uint64_t(0));
    sim->poke("cond_b", uint64_t(1));
    tick(*sim);

    EXPECT_TRUE(lossRegisters(sim->log()).empty());
}

TEST(LossCheckTest, OverwriteWithInvalidDataIsNotLoss)
{
    // Assigning while holding *invalid* data must not fire (N stays 0).
    auto mod = flat(paper_example);
    LossCheckOptions opts;
    opts.source = "in";
    opts.sourceValid = "in_valid";
    opts.sink = "out";
    LossCheckResult inst = applyLossCheck(*mod, opts);

    auto sim = simulate(inst.module);
    sim->poke("in_valid", uint64_t(0));
    tick(*sim, 5); // b never assigned: nothing to lose
    EXPECT_TRUE(lossRegisters(sim->log()).empty());
}

TEST(LossCheckTest, SimultaneousAssignAndPropagateIsNotLoss)
{
    // cond_b and in_valid in the same cycle: the old value propagates
    // exactly when the new one lands - no loss.
    auto mod = flat(paper_example);
    LossCheckOptions opts;
    opts.source = "in";
    opts.sourceValid = "in_valid";
    opts.sink = "out";
    LossCheckResult inst = applyLossCheck(*mod, opts);

    auto sim = simulate(inst.module);
    sim->poke("in_valid", uint64_t(1));
    sim->poke("in", uint64_t(0x11));
    tick(*sim);
    sim->poke("in", uint64_t(0x22));
    sim->poke("cond_b", uint64_t(1));
    tick(*sim);
    sim->poke("in_valid", uint64_t(0));
    sim->poke("in", uint64_t(0));
    tick(*sim);

    EXPECT_TRUE(lossRegisters(sim->log()).empty());
}

TEST(LossCheckTest, CondAMasksPropagation)
{
    // cond_a steals the mux: b's propagation guard is
    // !cond_a && cond_b, so cond_a && cond_b still loses b's data when
    // b is simultaneously rewritten.
    auto mod = flat(paper_example);
    LossCheckOptions opts;
    opts.source = "in";
    opts.sourceValid = "in_valid";
    opts.sink = "out";
    LossCheckResult inst = applyLossCheck(*mod, opts);

    auto sim = simulate(inst.module);
    sim->poke("in_valid", uint64_t(1));
    sim->poke("in", uint64_t(0x11));
    tick(*sim);
    // New data arrives while cond_a blocks b's path to out.
    sim->poke("cond_a", uint64_t(1));
    sim->poke("cond_b", uint64_t(1));
    sim->poke("in", uint64_t(0x22));
    tick(*sim);
    EXPECT_EQ(lossRegisters(sim->log()),
              (std::set<std::string>{"b"}));
}

TEST(LossCheckTest, MultiStagePipelineLocalizesTheLossyStage)
{
    // Three-stage pipeline where stage2 only forwards when fwd is set:
    // loss happens precisely at stage2.
    auto mod = flat(
        "module m(input wire clk, input wire in_valid, input wire fwd,\n"
        "         input wire [7:0] in, output reg [7:0] out);\n"
        "reg [7:0] stage1, stage2;\n"
        "reg stage1_valid;\n"
        "always @(posedge clk) begin\n"
        "  if (in_valid) begin stage1 <= in; stage1_valid <= 1'b1; end\n"
        "  else stage1_valid <= 1'b0;\n"
        "  if (stage1_valid) stage2 <= stage1;\n"
        "  if (fwd) out <= stage2;\nend\nendmodule");
    LossCheckOptions opts;
    opts.source = "in";
    opts.sourceValid = "in_valid";
    opts.sink = "out";
    LossCheckResult inst = applyLossCheck(*mod, opts);
    EXPECT_TRUE(inst.instrumented.count("stage1"));
    EXPECT_TRUE(inst.instrumented.count("stage2"));

    auto sim = simulate(inst.module);
    // Two values flow into stage2; fwd never fires, so the second
    // arrival at stage2 overwrites unpropagated valid data.
    sim->poke("in_valid", uint64_t(1));
    sim->poke("in", uint64_t(1));
    tick(*sim);
    sim->poke("in", uint64_t(2));
    tick(*sim);
    sim->poke("in_valid", uint64_t(0));
    tick(*sim, 2);

    auto lossy = lossRegisters(sim->log());
    EXPECT_TRUE(lossy.count("stage2"));
    EXPECT_FALSE(lossy.count("out"));
}

TEST(LossCheckTest, FalsePositiveFilteringSuppressesIntentionalDrops)
{
    // The design intentionally drops inputs failing a parity check
    // (paper's checksum example, §4.5.3): hold captures every input but
    // only even-parity values are forwarded; odd values are overwritten
    // on purpose. The real loss bug is downstream: fwd_reg can be
    // overwritten while waiting for send.
    const char *design =
        "module m(input wire clk, input wire in_valid,\n"
        "         input wire [7:0] in, input wire send,\n"
        "         output reg [7:0] out);\n"
        "reg [7:0] hold;\n"
        "reg hold_valid;\n"
        "reg [7:0] fwd_reg;\n"
        "always @(posedge clk) begin\n"
        "  hold_valid <= in_valid;\n"
        "  if (in_valid) hold <= in;\n"
        "  if (hold_valid && ^hold == 1'b0) fwd_reg <= hold;\n"
        "  if (send) out <= fwd_reg;\nend\nendmodule";
    auto mod = flat(design);
    LossCheckOptions opts;
    opts.source = "in";
    opts.sourceValid = "in_valid";
    opts.sink = "out";

    auto ground_truth = [&](ModulePtr inst_mod) {
        auto sim = simulate(inst_mod);
        // Passing test: an even-parity value flows all the way out, and
        // an odd-parity value is dropped on purpose at hold.
        sim->poke("in_valid", uint64_t(1));
        sim->poke("in", uint64_t(0x03)); // even parity: forwarded
        tick(*sim);
        sim->poke("in_valid", uint64_t(0));
        tick(*sim);
        sim->poke("send", uint64_t(1));
        tick(*sim);
        sim->poke("send", uint64_t(0));
        sim->poke("in_valid", uint64_t(1));
        sim->poke("in", uint64_t(0x01)); // odd parity: stuck in hold
        tick(*sim);
        sim->poke("in", uint64_t(0x03)); // overwrite: intentional drop
        tick(*sim);
        sim->poke("in_valid", uint64_t(0));
        tick(*sim, 2);
        sim->poke("send", uint64_t(1));
        tick(*sim);
        return sim->log();
    };
    auto failing = [&](ModulePtr inst_mod) {
        auto sim = simulate(inst_mod);
        // Bug trigger: two even-parity values without send, so fwd_reg
        // is overwritten while holding unsent valid data.
        sim->poke("in_valid", uint64_t(1));
        sim->poke("in", uint64_t(0x03));
        tick(*sim, 2);
        sim->poke("in", uint64_t(0x05));
        tick(*sim, 2);
        sim->poke("in_valid", uint64_t(0));
        tick(*sim, 2);
        return sim->log();
    };

    LossCheckReport report =
        runLossCheck(*mod, opts, ground_truth, failing);
    EXPECT_TRUE(report.filtered.count("hold"));
    EXPECT_EQ(report.reported, (std::set<std::string>{"fwd_reg"}));
}

TEST(LossCheckTest, FalseNegativeWhenDropAndLossShareRegister)
{
    // D11-style limitation (§4.5.4): when the unintentional loss occurs
    // at a register that also drops intentionally, filtering hides it.
    const char *design =
        "module m(input wire clk, input wire in_valid,\n"
        "         input wire [7:0] in, input wire keep,\n"
        "         input wire send, output reg [7:0] out);\n"
        "reg [7:0] hold;\n"
        "always @(posedge clk) begin\n"
        "  if (in_valid) hold <= in;\n"
        "  if (send && keep) out <= hold;\nend\nendmodule";
    auto mod = flat(design);
    LossCheckOptions opts;
    opts.source = "in";
    opts.sourceValid = "in_valid";
    opts.sink = "out";

    auto ground_truth = [&](ModulePtr inst_mod) {
        auto sim = simulate(inst_mod);
        // The passing test exercises the intentional drop: keep=0.
        sim->poke("keep", uint64_t(0));
        sim->poke("in_valid", uint64_t(1));
        sim->poke("in", uint64_t(0x11));
        tick(*sim);
        sim->poke("in", uint64_t(0x22)); // overwrite: intentional drop
        tick(*sim);
        sim->poke("in_valid", uint64_t(0));
        tick(*sim);
        return sim->log();
    };
    auto failing = [&](ModulePtr inst_mod) {
        auto sim = simulate(inst_mod);
        // keep=1 but send never arrives: real loss at hold... which is
        // exactly where the intentional drop lives.
        sim->poke("keep", uint64_t(1));
        sim->poke("in_valid", uint64_t(1));
        sim->poke("in", uint64_t(0x11));
        tick(*sim);
        sim->poke("in", uint64_t(0x22));
        tick(*sim);
        sim->poke("in_valid", uint64_t(0));
        tick(*sim);
        return sim->log();
    };

    LossCheckReport report =
        runLossCheck(*mod, opts, ground_truth, failing);
    EXPECT_TRUE(report.filtered.count("hold"));
    EXPECT_TRUE(report.reported.empty()); // the documented false negative
}

TEST(LossCheckTest, LossThroughFifoBackpressure)
{
    // Producer ignores FIFO backpressure: pushes while full lose the
    // staged register's data (C-class communication bug shape).
    const char *design =
        "module m(input wire clk, input wire in_valid,\n"
        "         input wire [7:0] in, input wire pop,\n"
        "         output reg [7:0] out);\n"
        "reg [7:0] staged;\n"
        "reg staged_valid;\n"
        "wire [7:0] q;\nwire empty, full;\n"
        "scfifo #(.WIDTH(8), .DEPTH(2)) u_f (.clock(clk),\n"
        "  .data(staged), .wrreq(staged_valid), .rdreq(pop), .q(q),\n"
        "  .empty(empty), .full(full));\n"
        "always @(posedge clk) begin\n"
        "  staged_valid <= in_valid;\n"
        "  if (in_valid) staged <= in;\n"
        "  out <= q;\nend\nendmodule";
    auto mod = flat(design);
    LossCheckOptions opts;
    opts.source = "in";
    opts.sourceValid = "in_valid";
    opts.sink = "out";
    LossCheckResult inst = applyLossCheck(*mod, opts);
    EXPECT_TRUE(inst.onPath.count("q"));
    EXPECT_TRUE(inst.instrumented.count("staged"));

    auto sim = simulate(inst.module);
    sim->poke("in_valid", uint64_t(1));
    for (uint64_t v = 1; v <= 5; ++v) {
        sim->poke("in", v);
        tick(*sim);
    }
    sim->poke("in_valid", uint64_t(0));
    tick(*sim, 2);
    // FIFO (depth 2) fills; pushes while full means staged data never
    // propagated.
    EXPECT_TRUE(lossRegisters(sim->log()).count("staged"));
}

TEST(LossCheckTest, UnreachableSinkThrows)
{
    auto mod = flat(
        "module m(input wire clk, input wire v, input wire [7:0] in,\n"
        "         output reg [7:0] out);\n"
        "reg [7:0] unrelated;\n"
        "always @(posedge clk) begin\n"
        "  if (v) unrelated <= in;\n  out <= out;\nend\nendmodule");
    LossCheckOptions opts;
    opts.source = "in";
    opts.sourceValid = "v";
    opts.sink = "out";
    EXPECT_THROW(applyLossCheck(*mod, opts), HdlError);
}

TEST(LossCheckTest, MemoryOverflowWrapDetected)
{
    // A power-of-two buffer indexed past its depth wraps and overwrites
    // an unconsumed slot: per-entry tracking flags the memory.
    const char *design =
        "module m(input wire clk, input wire in_valid,\n"
        "         input wire [7:0] in, input wire [3:0] waddr,\n"
        "         input wire rd, input wire [2:0] raddr,\n"
        "         output reg [7:0] out);\n"
        "reg [7:0] mem [0:7];\n"
        "always @(posedge clk) begin\n"
        "  if (in_valid) mem[waddr] <= in;\n"
        "  if (rd) out <= mem[raddr];\nend\nendmodule";
    auto mod = flat(design);
    LossCheckOptions opts;
    opts.source = "in";
    opts.sourceValid = "in_valid";
    opts.sink = "out";
    LossCheckResult inst = applyLossCheck(*mod, opts);
    EXPECT_TRUE(inst.instrumented.count("mem"));

    // Healthy pattern: distinct slots, read before rewrite -> no loss.
    {
        auto sim = simulate(inst.module);
        sim->poke("in_valid", uint64_t(1));
        for (uint64_t i = 0; i < 8; ++i) {
            sim->poke("waddr", i);
            sim->poke("in", i + 1);
            tick(*sim);
        }
        sim->poke("in_valid", uint64_t(0));
        sim->poke("rd", uint64_t(1));
        for (uint64_t i = 0; i < 8; ++i) {
            sim->poke("raddr", i);
            tick(*sim);
        }
        EXPECT_TRUE(lossRegisters(sim->log()).empty());
    }

    // Overflow pattern: waddr=8 wraps onto slot 0 before it is read.
    {
        auto sim = simulate(inst.module);
        sim->poke("in_valid", uint64_t(1));
        for (uint64_t i = 0; i < 9; ++i) {
            sim->poke("waddr", i); // i=8 wraps to slot 0
            sim->poke("in", i + 1);
            tick(*sim);
        }
        sim->poke("in_valid", uint64_t(0));
        tick(*sim);
        EXPECT_EQ(lossRegisters(sim->log()),
                  (std::set<std::string>{"mem"}));
    }

    // Simultaneous read+write of the same slot is not loss.
    {
        auto sim = simulate(inst.module);
        sim->poke("in_valid", uint64_t(1));
        sim->poke("waddr", uint64_t(3));
        sim->poke("in", uint64_t(0x11));
        tick(*sim);
        sim->poke("rd", uint64_t(1));
        sim->poke("raddr", uint64_t(3));
        sim->poke("in", uint64_t(0x22));
        tick(*sim);
        sim->poke("in_valid", uint64_t(0));
        sim->poke("rd", uint64_t(0));
        tick(*sim);
        EXPECT_TRUE(lossRegisters(sim->log()).empty());
    }
}
