/**
 * @file
 * Tests for ValidCheck, the use-without-valid detector built on the
 * LossCheck machinery (the paper's §3.3.4 bug subclass).
 */

#include <gtest/gtest.h>

#include <memory>

#include "common/logging.hh"
#include "core/validcheck.hh"
#include "elab/elaborate.hh"
#include "hdl/parser.hh"
#include "hdl/printer.hh"
#include "sim/simulator.hh"

using namespace hwdbg;
using namespace hwdbg::hdl;
using namespace hwdbg::sim;
using namespace hwdbg::core;

namespace
{

ModulePtr
flat(const std::string &src)
{
    return elab::elaborate(parse(src), "m").mod;
}

std::unique_ptr<Simulator>
simulate(ModulePtr mod)
{
    Design design = parse(printModule(*mod));
    return std::make_unique<Simulator>(
        elab::elaborate(design, "m").mod);
}

void
tick(Simulator &sim, int n = 1)
{
    for (int i = 0; i < n; ++i) {
        sim.poke("clk", uint64_t(0));
        sim.eval();
        sim.poke("clk", uint64_t(1));
        sim.eval();
    }
}

// The paper's §3.3.4 snippet: sum consumes data regardless of
// data_valid.
const char *buggy_accumulator =
    "module m(input wire clk, input wire data_valid,\n"
    "         input wire [7:0] data, output reg [7:0] sum);\n"
    "always @(posedge clk) sum <= sum + data;\nendmodule";

// The paper's fix: the use is guarded by the valid signal.
const char *fixed_accumulator =
    "module m(input wire clk, input wire data_valid,\n"
    "         input wire [7:0] data, output reg [7:0] sum);\n"
    "always @(posedge clk)\n"
    "    if (data_valid) sum <= sum + data;\n"
    "    else sum <= sum;\nendmodule";

ValidCheckOptions
accumulatorOptions()
{
    ValidCheckOptions opts;
    opts.pairs.push_back(ValidPair{"data", "data_valid"});
    return opts;
}

} // namespace

TEST(ValidCheckTest, FlagsThePaperPattern)
{
    auto mod = flat(buggy_accumulator);
    ValidCheckResult inst =
        applyValidCheck(*mod, accumulatorOptions());
    EXPECT_EQ(inst.usesInstrumented.at("data"), 1);
    EXPECT_GT(inst.generatedLines, 0);

    auto sim = simulate(inst.module);
    sim->poke("data_valid", uint64_t(0));
    sim->poke("data", uint64_t(0x33)); // garbage on the bus
    tick(*sim, 2);
    auto uses = invalidUses(sim->log());
    ASSERT_EQ(uses.size(), 1u);
    EXPECT_EQ(uses[0].data, "data");
    EXPECT_EQ(uses[0].target, "sum");
}

TEST(ValidCheckTest, GuardedUseIsStaticallyClean)
{
    auto mod = flat(fixed_accumulator);
    ValidCheckResult inst =
        applyValidCheck(*mod, accumulatorOptions());
    // Both branches' guards mention data_valid, so no checks are
    // inserted at all (the static analysis proves the fix).
    EXPECT_EQ(inst.usesInstrumented.at("data"), 0);

    auto sim = simulate(inst.module);
    sim->poke("data_valid", uint64_t(0));
    sim->poke("data", uint64_t(0x33));
    tick(*sim, 3);
    EXPECT_TRUE(invalidUses(sim->log()).empty());
}

TEST(ValidCheckTest, ValidUseDoesNotFire)
{
    auto mod = flat(buggy_accumulator);
    ValidCheckResult inst =
        applyValidCheck(*mod, accumulatorOptions());
    auto sim = simulate(inst.module);
    sim->poke("data_valid", uint64_t(1));
    sim->poke("data", uint64_t(5));
    tick(*sim, 3);
    // The use is unguarded, but valid was high whenever it fired.
    EXPECT_TRUE(invalidUses(sim->log()).empty());
}

TEST(ValidCheckTest, MultiplePairsAndTargets)
{
    auto mod = flat(
        "module m(input wire clk, input wire av, input wire bv,\n"
        "         input wire [7:0] a, input wire [7:0] b,\n"
        "         output reg [7:0] x, output reg [7:0] y);\n"
        "always @(posedge clk) begin\n"
        "  x <= a;\n"              // unguarded use of a
        "  if (bv) y <= b;\n"      // properly guarded use of b
        "end\nendmodule");
    ValidCheckOptions opts;
    opts.pairs.push_back(ValidPair{"a", "av"});
    opts.pairs.push_back(ValidPair{"b", "bv"});
    ValidCheckResult inst = applyValidCheck(*mod, opts);
    EXPECT_EQ(inst.usesInstrumented.at("a"), 1);
    EXPECT_EQ(inst.usesInstrumented.at("b"), 0);

    auto sim = simulate(inst.module);
    sim->poke("av", uint64_t(0));
    sim->poke("bv", uint64_t(0));
    tick(*sim, 2);
    auto uses = invalidUses(sim->log());
    ASSERT_EQ(uses.size(), 1u);
    EXPECT_EQ(uses[0].data, "a");
    EXPECT_EQ(uses[0].target, "x");
}

TEST(ValidCheckTest, UnknownSignalThrows)
{
    auto mod = flat(buggy_accumulator);
    ValidCheckOptions opts;
    opts.pairs.push_back(ValidPair{"nope", "data_valid"});
    EXPECT_THROW(applyValidCheck(*mod, opts), HdlError);
}
