/**
 * @file
 * Tests for SignalCat: the headline property is that the log
 * reconstructed from the on-FPGA recorder equals the simulation
 * $display log, for the same workload.
 */

#include <gtest/gtest.h>

#include <memory>

#include "common/logging.hh"
#include "core/signalcat.hh"
#include "elab/elaborate.hh"
#include "hdl/parser.hh"
#include "hdl/printer.hh"
#include "sim/simulator.hh"

using namespace hwdbg;
using namespace hwdbg::hdl;
using namespace hwdbg::sim;
using namespace hwdbg::core;

namespace
{

ModulePtr
flat(const std::string &src, const std::string &top = "m")
{
    return elab::elaborate(parse(src), top).mod;
}

void
tick(Simulator &sim, int n = 1)
{
    for (int i = 0; i < n; ++i) {
        sim.poke("clk", uint64_t(0));
        sim.eval();
        sim.poke("clk", uint64_t(1));
        sim.eval();
    }
}

/** Drive the same stimulus on any sim of the counter test design. */
void
counterWorkload(Simulator &sim)
{
    sim.poke("en", uint64_t(1));
    tick(sim, 3);
    sim.poke("en", uint64_t(0));
    tick(sim, 2);
    sim.poke("en", uint64_t(1));
    tick(sim, 2);
}

const char *counter_design =
    "module m(input wire clk, input wire en, output reg [7:0] n,\n"
    "         output reg [7:0] m2);\n"
    "always @(posedge clk) begin\n"
    "  if (en) begin\n"
    "    n <= n + 1;\n"
    "    $display(\"count n=%d\", n);\n"
    "  end\n"
    "  if (n == 8'd2) begin\n"
    "    m2 <= n;\n"
    "    $display(\"snapshot m2=%h n=%d\", m2, n);\n"
    "  end\nend\nendmodule";

} // namespace

TEST(SignalCatTest, ReconstructedLogMatchesSimulation)
{
    auto original = flat(counter_design);

    // Simulation-mode run: native $display.
    Simulator sim_mode(original);
    counterWorkload(sim_mode);
    ASSERT_FALSE(sim_mode.log().empty());

    // FPGA-mode run: $display converted to a recorder.
    SignalCatOptions opts;
    opts.bufferDepth = 64;
    SignalCatResult cat = applySignalCat(*original, opts);
    EXPECT_GT(cat.generatedLines, 0);

    // The instrumented module must be valid Verilog our stack accepts.
    Design reparsed = parse(printModule(*cat.module));
    Simulator fpga_mode(elab::elaborate(reparsed, "m").mod);
    counterWorkload(fpga_mode);

    // No native $display output in FPGA mode.
    EXPECT_TRUE(fpga_mode.log().empty());

    auto *recorder = dynamic_cast<SignalRecorder *>(
        fpga_mode.primitive(cat.plan.recorderInstance));
    ASSERT_NE(recorder, nullptr);
    auto reconstructed = reconstructLog(*recorder, cat.plan);

    ASSERT_EQ(reconstructed.size(), sim_mode.log().size());
    for (size_t i = 0; i < reconstructed.size(); ++i) {
        EXPECT_EQ(reconstructed[i].text, sim_mode.log()[i].text);
        EXPECT_EQ(reconstructed[i].cycle, sim_mode.log()[i].cycle);
    }
}

TEST(SignalCatTest, PlanDescribesEntryLayout)
{
    auto original = flat(counter_design);
    SignalCatResult cat = applySignalCat(*original);
    ASSERT_EQ(cat.plan.statements.size(), 2u);
    // Entry: 2 enable bits + args (8) + (8 + 8).
    EXPECT_EQ(cat.plan.entryWidth, 2u + 8u + 16u);
    EXPECT_EQ(cat.plan.statements[0].enableBit, 0u);
    EXPECT_EQ(cat.plan.statements[1].enableBit, 1u);
    EXPECT_EQ(cat.plan.statements[0].argSlices.size(), 1u);
    EXPECT_EQ(cat.plan.statements[1].argSlices.size(), 2u);
}

TEST(SignalCatTest, NoDisplaysIsIdentity)
{
    auto original = flat(
        "module m(input wire clk, output reg [3:0] x);\n"
        "always @(posedge clk) x <= x + 1;\nendmodule");
    SignalCatResult cat = applySignalCat(*original);
    EXPECT_TRUE(cat.plan.statements.empty());
    EXPECT_EQ(cat.generatedLines, 0);
}

TEST(SignalCatTest, BufferDepthBoundsCapturedEntries)
{
    auto original = flat(
        "module m(input wire clk, output reg [7:0] n);\n"
        "always @(posedge clk) begin\n"
        "  n <= n + 1;\n  $display(\"n=%d\", n);\nend\nendmodule");
    SignalCatOptions opts;
    opts.bufferDepth = 4;
    SignalCatResult cat = applySignalCat(*original, opts);
    Simulator sim(elab::elaborate(parse(printModule(*cat.module)),
                                  "m").mod);
    tick(sim, 10);
    auto *recorder = dynamic_cast<SignalRecorder *>(
        sim.primitive(cat.plan.recorderInstance));
    ASSERT_NE(recorder, nullptr);
    EXPECT_EQ(recorder->entries().size(), 4u);
    EXPECT_TRUE(recorder->overflowed());
    auto log = reconstructLog(*recorder, cat.plan);
    ASSERT_EQ(log.size(), 4u);
    EXPECT_EQ(log[0].text, "n=0");
    EXPECT_EQ(log[3].text, "n=3");
}

TEST(SignalCatTest, ArmSignalGatesRecording)
{
    auto original = flat(
        "module m(input wire clk, input wire dbg_arm,\n"
        "         output reg [7:0] n);\n"
        "always @(posedge clk) begin\n"
        "  n <= n + 1;\n  $display(\"n=%d\", n);\nend\nendmodule");
    SignalCatOptions opts;
    opts.armSignal = "dbg_arm";
    SignalCatResult cat = applySignalCat(*original, opts);
    Simulator sim(elab::elaborate(parse(printModule(*cat.module)),
                                  "m").mod);
    sim.poke("dbg_arm", uint64_t(0));
    tick(sim, 3);
    sim.poke("dbg_arm", uint64_t(1));
    tick(sim, 2);
    auto *recorder = dynamic_cast<SignalRecorder *>(
        sim.primitive(cat.plan.recorderInstance));
    auto log = reconstructLog(*recorder, cat.plan);
    ASSERT_EQ(log.size(), 2u);
    EXPECT_EQ(log[0].text, "n=3");
}

TEST(SignalCatTest, GeneratedLinesAreCounted)
{
    auto original = flat(counter_design);
    SignalCatResult cat = applySignalCat(*original);
    // Enable wires, data/valid assigns, recorder instance: a dozen-ish
    // lines, definitely more than 5.
    EXPECT_GT(cat.generatedLines, 5);
    EXPECT_LT(cat.generatedLines, 100);
}

TEST(SignalCatTest, PreTriggerWindowCapturesTheTailOfTheRun)
{
    // §4.1: the buffer can capture an interval *before* the stop event;
    // with a ring buffer, the last N records survive.
    auto original = flat(
        "module m(input wire clk, input wire fault,\n"
        "         output reg [7:0] n);\n"
        "always @(posedge clk) begin\n"
        "  n <= n + 1;\n  $display(\"n=%d\", n);\nend\nendmodule");
    SignalCatOptions opts;
    opts.bufferDepth = 4;
    opts.preTrigger = true;
    opts.stopSignal = "fault";
    SignalCatResult cat = applySignalCat(*original, opts);
    Simulator sim(elab::elaborate(parse(printModule(*cat.module)),
                                  "m").mod);
    tick(sim, 20);
    sim.poke("fault", uint64_t(1)); // the failure we were waiting for
    tick(sim);
    sim.poke("fault", uint64_t(0));
    tick(sim, 10);

    auto *recorder = dynamic_cast<SignalRecorder *>(
        sim.primitive(cat.plan.recorderInstance));
    ASSERT_NE(recorder, nullptr);
    EXPECT_TRUE(recorder->stopped());
    auto log = reconstructLog(*recorder, cat.plan);
    ASSERT_EQ(log.size(), 4u);
    // The window holds the last four records before the fault.
    EXPECT_EQ(log[0].text, "n=16");
    EXPECT_EQ(log[3].text, "n=19");
}

TEST(SignalCatTest, NegedgeDisplaysRecordOnTheFallingEdge)
{
    // Regression (found by fuzzing): the recorder primitive only
    // triggers on rising edges of its clock pin, so a negedge display
    // group must feed it the inverted clock — and the simulator must
    // not see a phantom first rising edge on that inverted clock.
    const char *src =
        "module m(input wire clk, input wire [3:0] a,\n"
        "         output reg [3:0] q);\n"
        "always @(negedge clk) begin\n"
        "  q <= a;\n"
        "  $display(\"q=%d a=%d\", q, a);\n"
        "end\nendmodule";

    Simulator base(flat(src));
    base.poke("a", uint64_t(5));
    tick(base, 3);
    base.poke("a", uint64_t(12));
    tick(base, 3);
    ASSERT_FALSE(base.log().empty());

    ASSERT_TRUE(signalCatSupported(*flat(src)));
    SignalCatResult cat = applySignalCat(*flat(src));
    Simulator sim(elab::elaborate(parse(printModule(*cat.module)),
                                  "m").mod);
    sim.poke("a", uint64_t(5));
    tick(sim, 3);
    sim.poke("a", uint64_t(12));
    tick(sim, 3);
    EXPECT_TRUE(sim.log().empty());

    auto *recorder = dynamic_cast<SignalRecorder *>(
        sim.primitive(cat.plan.recorderInstance));
    ASSERT_NE(recorder, nullptr);
    auto log = reconstructLog(*recorder, cat.plan);
    ASSERT_EQ(log.size(), base.log().size());
    for (size_t i = 0; i < log.size(); ++i) {
        EXPECT_EQ(log[i].text, base.log()[i].text) << "line " << i;
        EXPECT_EQ(log[i].cycle, base.log()[i].cycle) << "line " << i;
    }
}

TEST(SignalCatTest, RefusesMixedEdgeDisplayGroups)
{
    auto mod = flat(
        "module m(input wire clk, output reg [3:0] n);\n"
        "always @(posedge clk) begin\n"
        "  n <= n + 1;\n  $display(\"p=%d\", n);\nend\n"
        "always @(negedge clk) $display(\"m=%d\", n);\n"
        "endmodule");
    EXPECT_FALSE(signalCatSupported(*mod));
    EXPECT_THROW(applySignalCat(*mod), HdlError);
}

TEST(SignalCatTest, RefusesDisplaysRacingBlockingAssignments)
{
    // Regression (found by fuzzing): a $display that reads a variable
    // a blocking assignment updated earlier in the same edge prints the
    // post-write value; a net-tap recorder can only see pre-edge
    // values, so the module is rejected rather than mis-recorded.
    auto mod = flat(
        "module m(input wire clk, input wire [3:0] a,\n"
        "         output reg [3:0] q);\n"
        "always @(posedge clk) begin\n"
        "  q = a;\n"
        "  $display(\"q=%d\", q);\n"
        "end\nendmodule");
    EXPECT_FALSE(signalCatSupported(*mod));
    EXPECT_THROW(applySignalCat(*mod), HdlError);

    // The nonblocking form of the same module is recordable.
    auto ok = flat(
        "module m(input wire clk, input wire [3:0] a,\n"
        "         output reg [3:0] q);\n"
        "always @(posedge clk) begin\n"
        "  q <= a;\n"
        "  $display(\"q=%d\", q);\n"
        "end\nendmodule");
    EXPECT_TRUE(signalCatSupported(*ok));
}
