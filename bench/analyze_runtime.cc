/**
 * @file
 * Wall-clock budget for `hwdbg analyze`: the full pass pipeline over
 * every testbed design (buggy and fixed) and over a batch of generated
 * designs must stay interactive. The known-bits fixpoint is the only
 * super-linear piece, and its iteration budget degrades to all-unknown
 * rather than spinning, so the whole-testbed sweep is the regression
 * canary for that budget.
 *
 * Exit 1 when a single design exceeds the per-design budget or the
 * sweep exceeds the total budget (generous bounds: CI machines are
 * slow and shared; a real regression is orders of magnitude).
 */

#include <chrono>
#include <cstdio>
#include <string>

#include "analyze/analyze.hh"
#include "bench_util.hh"
#include "common/logging.hh"
#include "fuzz/generator.hh"

using namespace hwdbg;
using namespace hwdbg::bugs;

namespace
{

using Clock = std::chrono::steady_clock;

double
msSince(Clock::time_point begin)
{
    return std::chrono::duration<double, std::milli>(Clock::now() -
                                                     begin)
        .count();
}

} // namespace

int
main()
{
    constexpr double kPerDesignMs = 1000.0;
    constexpr double kTotalMs = 20000.0;

    double total = 0;
    double worst = 0;
    std::string worstName;
    size_t designs = 0;
    size_t diags = 0;

    auto record = [&](const std::string &name, double ms,
                      size_t ndiags) {
        total += ms;
        ++designs;
        diags += ndiags;
        if (ms > worst) {
            worst = ms;
            worstName = name;
        }
        if (ms > kPerDesignMs)
            std::printf("OVER BUDGET %-12s %8.2f ms\n", name.c_str(),
                        ms);
    };

    for (const auto &bug : testbedBugs()) {
        for (bool buggy : {true, false}) {
            auto elaborated = buildDesign(bug, buggy);
            auto begin = Clock::now();
            auto result = analyze::runAnalyze(*elaborated.mod);
            record(bug.id + (buggy ? "" : "-fixed"), msSince(begin),
                   result.size());
        }
    }

    // Generated designs stress wider expression trees and memories.
    for (uint64_t seed = 0; seed < 25; ++seed) {
        fuzz::GeneratorOptions gopts;
        gopts.raceChance = 30;
        auto gd = fuzz::generateDesign(seed, gopts);
        auto elaborated = elab::elaborate(gd.design, gd.top);
        auto begin = Clock::now();
        auto result = analyze::runAnalyze(*elaborated.mod);
        record("seed:" + std::to_string(seed), msSince(begin),
               result.size());
    }

    std::printf("analyze runtime: %zu designs, %zu diagnostics, "
                "%.1f ms total, worst %.2f ms (%s)\n",
                designs, diags, total, worst, worstName.c_str());
    bool ok = worst <= kPerDesignMs && total <= kTotalMs;
    std::printf("Match: %s (budget: %.0f ms/design, %.0f ms total)\n",
                ok ? "ok" : "FAIL", kPerDesignMs, kTotalMs);
    return ok ? 0 : 1;
}
