/**
 * @file
 * Reproduces Figure 3: LossCheck's register and logic overhead,
 * normalized to the platform totals, for the data-loss bugs: D1, D2,
 * D3, C2 on Intel HARP (paper: < 1.7% of total resources) and D4, C4
 * on Xilinx KC705 (paper: < 0.7%).
 */

#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "synth/platform.hh"
#include "synth/resources.hh"

using namespace hwdbg;
using namespace hwdbg::bugs;
using namespace hwdbg::core;
using namespace hwdbg::synth;

int
main()
{
    std::printf("Figure 3: LossCheck overhead normalized to platform "
                "totals\n");
    std::printf("%-4s %-9s %14s %14s %12s %12s\n", "Bug", "Platform",
                "registers", "logic", "reg %%", "logic %%");
    std::printf("%s\n", std::string(72, '-').c_str());

    bool within_bounds = true;
    for (const char *id : {"D1", "D2", "D3", "C2", "D4", "C4"}) {
        const TestbedBug &bug = bugById(id);
        const Platform &platform = platformByName(bug.platform);

        ResourceUsage base =
            estimateResources(*buildDesign(bug, true).mod);
        auto inst =
            applyLossCheck(*buildDesign(bug, true).mod, *bug.lossCheck);
        ResourceUsage overhead =
            estimateResources(*inst.module).overheadVs(base);
        NormalizedUsage pct = normalize(overhead, platform);

        std::printf("%-4s %-9s %14llu %14llu %11.4f%% %11.4f%%\n", id,
                    platform.name.c_str(),
                    (unsigned long long)overhead.registers,
                    (unsigned long long)overhead.logic,
                    pct.registersPct, pct.logicPct);

        double bound = bug.platform == "HARP" ? 1.7 : 0.7;
        if (pct.registersPct > bound || pct.logicPct > bound)
            within_bounds = false;
    }

    std::printf("%s\n", std::string(72, '-').c_str());
    std::printf("Bound check: HARP bugs < 1.7%% and KC705 bugs < 0.7%% "
                "of platform resources: %s\n",
                within_bounds ? "ok" : "FAIL");
    return within_bounds ? 0 : 1;
}
