/**
 * @file
 * Dataflow-analysis effectiveness over the Table 2 testbed: run every
 * analyze pass on the buggy and fixed form of each of the 20 bugs and
 * report which rules fire on the buggy form only (a detection), on
 * both forms (noise), and what the fixed designs draw in total.
 *
 * This is the whole-design-dataflow counterpart of the lint bench: the
 * lint catches local AST shapes (8 of 20 bugs); the analyze passes
 * prove facts across processes — stuck constants, dead guards,
 * definite assignment, scheduler races, clock-domain crossings — and
 * must independently detect at least 4 bugs from the buggy source
 * alone while staying quiet on every fix.
 */

#include <cstdio>
#include <map>
#include <set>
#include <string>

#include "analyze/analyze.hh"
#include "bench_util.hh"
#include "common/logging.hh"

using namespace hwdbg;
using namespace hwdbg::bugs;
using namespace hwdbg::bench;

namespace
{

std::multiset<std::string>
ruleHits(const TestbedBug &bug, bool buggy)
{
    auto elaborated = buildDesign(bug, buggy);
    std::multiset<std::string> hits;
    for (const auto &diag : analyze::runAnalyze(*elaborated.mod))
        hits.insert(diag.rule);
    return hits;
}

std::string
join(const std::set<std::string> &names)
{
    std::string out;
    for (const auto &name : names) {
        if (!out.empty())
            out += ", ";
        out += name;
    }
    return out.empty() ? "-" : out;
}

} // namespace

int
main()
{
    std::printf("Dataflow analysis over the 20 Table 2 testbed bugs\n");
    std::printf("%-4s %-27s %-42s %s\n", "Bug", "subclass",
                "buggy-only rules (detections)", "both-forms rules");
    std::printf("%s\n", std::string(104, '-').c_str());

    int detected = 0;
    int fixed_only = 0;
    std::map<std::string, int> perRule;

    for (const auto &bug : testbedBugs()) {
        auto buggy = ruleHits(bug, true);
        auto fixed = ruleHits(bug, false);

        std::set<std::string> buggy_only, both;
        for (const auto &rule : std::set<std::string>(buggy.begin(),
                                                      buggy.end())) {
            if (fixed.count(rule))
                both.insert(rule);
            else
                buggy_only.insert(rule);
        }
        for (const auto &rule : std::set<std::string>(fixed.begin(),
                                                      fixed.end()))
            fixed_only += !buggy.count(rule);
        if (!buggy_only.empty())
            ++detected;
        for (const auto &rule : buggy_only)
            ++perRule[rule];

        std::printf("%-4s %-27s %-42s %s\n", bug.id.c_str(),
                    bug.subclass.c_str(), join(buggy_only).c_str(),
                    join(both).c_str());
    }

    std::printf("%s\n", std::string(104, '-').c_str());
    std::printf("Detections per rule:\n");
    for (const auto &[rule, count] : perRule)
        std::printf("  %-24s %d\n", rule.c_str(), count);
    std::printf("Detected %d/20 bugs from dataflow facts alone; "
                "%d rule(s) fire on fixed designs only\n",
                detected, fixed_only);
    std::printf("Expected: the constant-provable bugs (D2's truncated "
                "tag bit, D3's stuck ready outputs, D4's dead "
                "occupancy chain, C1's unreachable reset cascade); "
                "value- and timing-dependent bugs still need the "
                "dynamic tools\n");

    // Gate: at least 4 buggy-only detections and no rule that fires
    // exclusively on a fixed design (that would be a false alarm
    // introduced by a fix).
    bool ok = detected >= 4 && fixed_only == 0;
    std::printf("Match: %s\n", ok ? "ok" : "FAIL");
    return ok ? 0 : 1;
}
