/**
 * @file
 * google-benchmark microbenchmarks for the hwdbg substrates: HDL
 * parsing, elaboration, simulation throughput, analysis passes, and
 * tool instrumentation.
 */

#include <benchmark/benchmark.h>

#include "analysis/fsm_detect.hh"
#include "analysis/relations.hh"
#include "bugbase/designs.hh"
#include "bugbase/testbed.hh"
#include "bugbase/workloads.hh"
#include "compile/backend.hh"
#include "core/losscheck.hh"
#include "core/signalcat.hh"
#include "elab/elaborate.hh"
#include "hdl/parser.hh"
#include "hdl/preproc.hh"
#include "hdl/printer.hh"
#include "sim/simulator.hh"
#include "synth/resources.hh"
#include "synth/timing.hh"

using namespace hwdbg;
using namespace hwdbg::bugs;

namespace
{

const std::string &
corpusSource()
{
    // The largest testbed design makes a reasonable parser workload.
    return designSource("optimus");
}

void
BM_Preprocess(benchmark::State &state)
{
    const std::string &src = corpusSource();
    for (auto _ : state)
        benchmark::DoNotOptimize(hdl::preprocess(src, {}));
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations() * src.size()));
}
BENCHMARK(BM_Preprocess);

void
BM_Parse(benchmark::State &state)
{
    std::string src = hdl::preprocess(corpusSource(), {});
    for (auto _ : state)
        benchmark::DoNotOptimize(hdl::parse(src));
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations() * src.size()));
}
BENCHMARK(BM_Parse);

void
BM_Elaborate(benchmark::State &state)
{
    hdl::Design design =
        hdl::parseWithDefines(corpusSource(), {}, "optimus.v");
    for (auto _ : state)
        benchmark::DoNotOptimize(elab::elaborate(design, "optimus"));
}
BENCHMARK(BM_Elaborate);

void
BM_PrintModule(benchmark::State &state)
{
    auto mod = elab::elaborate(
        hdl::parseWithDefines(corpusSource(), {}, "optimus.v"),
        "optimus").mod;
    for (auto _ : state)
        benchmark::DoNotOptimize(hdl::printModule(*mod));
}
BENCHMARK(BM_PrintModule);

void
BM_SimulatorBuild(benchmark::State &state)
{
    const TestbedBug &bug = bugById("D3");
    auto mod = buildDesign(bug, false).mod;
    for (auto _ : state)
        benchmark::DoNotOptimize(
            std::make_unique<sim::Simulator>(hdl::cloneModule(*mod)));
}
BENCHMARK(BM_SimulatorBuild);

void
BM_SimulationCycles(benchmark::State &state)
{
    auto mod = buildDesign(bugById("D3"), false).mod;
    sim::Simulator sim(mod);
    sim.poke("rst", uint64_t(1));
    uint64_t cycles = 0;
    for (auto _ : state) {
        sim.poke("clk", uint64_t(0));
        sim.eval();
        sim.poke("clk", uint64_t(1));
        sim.eval();
        ++cycles;
    }
    state.SetItemsProcessed(static_cast<int64_t>(cycles));
}
BENCHMARK(BM_SimulationCycles);

void
BM_SimulationCyclesBytecode(benchmark::State &state)
{
    // The same clock loop as BM_SimulationCycles, executed by the
    // compiled bytecode backend: the pair is the per-design speedup on
    // a real testbed module (bench/backend_speedup gates the corpus
    // geomean).
    auto mod = buildDesign(bugById("D3"), false).mod;
    sim::Simulator sim(mod);
    sim.setBackend(compile::makeBytecodeBackend());
    sim.poke("rst", uint64_t(1));
    uint64_t cycles = 0;
    for (auto _ : state) {
        sim.poke("clk", uint64_t(0));
        sim.eval();
        sim.poke("clk", uint64_t(1));
        sim.eval();
        ++cycles;
    }
    state.SetItemsProcessed(static_cast<int64_t>(cycles));
}
BENCHMARK(BM_SimulationCyclesBytecode);

void
BM_BytecodeLowering(benchmark::State &state)
{
    // Cost of installing the compiled backend (lowering + constant
    // folding + slab build) on an already-constructed simulator; the
    // one-time price a session pays for the per-cycle speedup above.
    auto mod = buildDesign(bugById("D3"), false).mod;
    for (auto _ : state) {
        sim::Simulator sim(hdl::cloneModule(*mod));
        sim.setBackend(compile::makeBytecodeBackend());
        benchmark::DoNotOptimize(sim.backendName());
    }
}
BENCHMARK(BM_BytecodeLowering);

void
BM_WorkloadEndToEnd(benchmark::State &state)
{
    const TestbedBug &bug = bugById("D2");
    for (auto _ : state) {
        sim::Simulator sim(buildDesign(bug, false).mod);
        benchmark::DoNotOptimize(runWorkload(bug, sim));
    }
}
BENCHMARK(BM_WorkloadEndToEnd);

void
BM_FsmDetection(benchmark::State &state)
{
    auto mod = buildDesign(bugById("D2"), true).mod;
    for (auto _ : state)
        benchmark::DoNotOptimize(analysis::detectFsms(*mod));
}
BENCHMARK(BM_FsmDetection);

void
BM_RelationTable(benchmark::State &state)
{
    auto mod = buildDesign(bugById("D4"), true).mod;
    for (auto _ : state)
        benchmark::DoNotOptimize(
            std::make_unique<analysis::RelationTable>(*mod));
}
BENCHMARK(BM_RelationTable);

void
BM_LossCheckInstrument(benchmark::State &state)
{
    const TestbedBug &bug = bugById("D4");
    auto mod = buildDesign(bug, true).mod;
    for (auto _ : state)
        benchmark::DoNotOptimize(
            core::applyLossCheck(*mod, *bug.lossCheck));
}
BENCHMARK(BM_LossCheckInstrument);

void
BM_SignalCatInstrument(benchmark::State &state)
{
    const TestbedBug &bug = bugById("D2");
    auto inst = core::applyLossCheck(*buildDesign(bug, true).mod,
                                     *bug.lossCheck);
    for (auto _ : state)
        benchmark::DoNotOptimize(core::applySignalCat(*inst.module));
}
BENCHMARK(BM_SignalCatInstrument);

void
BM_ResourceEstimate(benchmark::State &state)
{
    auto mod = buildDesign(bugById("D3"), true).mod;
    for (auto _ : state)
        benchmark::DoNotOptimize(synth::estimateResources(*mod));
}
BENCHMARK(BM_ResourceEstimate);

void
BM_TimingEstimate(benchmark::State &state)
{
    auto mod = buildDesign(bugById("D3"), true).mod;
    for (auto _ : state)
        benchmark::DoNotOptimize(synth::estimateTiming(*mod));
}
BENCHMARK(BM_TimingEstimate);

} // namespace

BENCHMARK_MAIN();
