/**
 * @file
 * Reproduces the §6.4 timing results: with the full debugging
 * deployment in place (monitors + LossCheck where applicable +
 * SignalCat's recording IP), 18 of the 20 instrumented designs still
 * meet their target clock frequency. The exception is Optimus: both of
 * its bugs (D3, C2) lose the 400 MHz target and the design must run at
 * its 200 MHz fallback during debugging. SHA512, which also targets
 * 400 MHz, keeps its frequency.
 */

#include <cstdio>

#include "bench_util.hh"
#include "synth/timing.hh"

using namespace hwdbg;
using namespace hwdbg::bugs;
using namespace hwdbg::bench;
using namespace hwdbg::synth;

int
main()
{
    std::printf("Timing closure with debugging instrumentation\n");
    std::printf("%-4s %-13s %7s %12s %12s  %s\n", "Bug", "Design",
                "target", "base Fmax", "inst Fmax", "verdict");
    std::printf("%s\n", std::string(66, '-').c_str());

    int kept = 0;
    bool sha_ok = true, optimus_dropped = true;
    for (const auto &bug : testbedBugs()) {
        TimingReport base =
            estimateTiming(*buildDesign(bug, true).mod);
        auto inst_mod = applyFullInstrumentation(
            bug, buildDesign(bug, true).mod, 8192, true);
        TimingReport inst = estimateTiming(*inst_mod);

        bool base_meets = meetsTarget(base, bug.targetMhz);
        bool inst_meets = meetsTarget(inst, bug.targetMhz);
        if (inst_meets)
            ++kept;

        const char *verdict = inst_meets
                                  ? "meets target"
                                  : "reduced to 200 MHz for debugging";
        std::printf("%-4s %-13s %5.0fM %9.1f MHz %9.1f MHz  %s%s\n",
                    bug.id.c_str(), bug.designName.c_str(),
                    bug.targetMhz, base.fmaxMhz, inst.fmaxMhz, verdict,
                    base_meets ? "" : " (BASELINE MISS)");

        if (bug.designName == "sha512" && !inst_meets)
            sha_ok = false;
        if (bug.designName == "optimus" && inst_meets)
            optimus_dropped = false;
        if (bug.designName == "optimus" && inst.fmaxMhz < 200)
            optimus_dropped = false; // must still run at 200
    }

    std::printf("%s\n", std::string(66, '-').c_str());
    std::printf("%d/20 instrumented designs keep their target "
                "frequency (paper: 18/20)\n", kept);
    std::printf("SHA512 keeps 400 MHz: %s; Optimus reduced 400 -> 200 "
                "MHz: %s\n", sha_ok ? "yes" : "NO",
                optimus_dropped ? "yes" : "NO");

    bool ok = kept == 18 && sha_ok && optimus_dropped;
    std::printf("Match: %s\n", ok ? "ok" : "FAIL");
    return ok ? 0 : 1;
}
