/**
 * @file
 * Reproduces the §6.3 LossCheck effectiveness results on the 7
 * data-loss bugs: precise localization for 6 of 7 (D1-D4, C2, C4),
 * one false positive on D1, no-filtering-needed localization for D4
 * and C4, and the D11 false negative caused by an intentional drop
 * sharing the lossy register.
 */

#include <cstdio>
#include <string>

#include "bench_util.hh"
#include "common/logging.hh"

using namespace hwdbg;
using namespace hwdbg::bugs;
using namespace hwdbg::bench;
using namespace hwdbg::core;

namespace
{

LossCheckReport
runOn(const TestbedBug &bug)
{
    auto elaborated = buildDesign(bug, true);
    auto run_trigger = [&](hdl::ModulePtr mod) {
        auto sim = simulateModule(mod);
        runWorkload(bug, *sim);
        return sim->log();
    };
    auto run_gt = [&](hdl::ModulePtr mod) {
        auto sim = simulateModule(mod);
        driveGroundTruth(bug, *sim);
        return sim->log();
    };
    return runLossCheck(*elaborated.mod, *bug.lossCheck, run_gt,
                        run_trigger);
}

std::string
join(const std::set<std::string> &names)
{
    std::string out;
    for (const auto &name : names) {
        if (!out.empty())
            out += ", ";
        out += name;
    }
    return out.empty() ? "-" : out;
}

} // namespace

int
main()
{
    std::printf("LossCheck effectiveness on the 7 data-loss bugs\n");
    std::printf("%-4s %-14s %-24s %-18s %s\n", "Bug", "expected site",
                "reported", "filtered (GT)", "outcome");
    std::printf("%s\n", std::string(84, '-').c_str());

    int localized = 0;
    int false_positives = 0;
    bool d11_false_negative = false;

    for (const char *id : {"D1", "D2", "D3", "D4", "D11", "C2", "C4"}) {
        const TestbedBug &bug = bugById(id);
        LossCheckReport report = runOn(bug);

        std::string outcome;
        if (bug.expectedLossSite.empty()) {
            // D11: the documented false negative.
            if (report.reported.empty()) {
                outcome = "false negative (filtered)";
                d11_false_negative = true;
            } else {
                outcome = "UNEXPECTED report";
            }
        } else if (report.reported.count(bug.expectedLossSite)) {
            ++localized;
            int extras =
                static_cast<int>(report.reported.size()) - 1;
            false_positives += extras;
            outcome = extras
                          ? csprintf("localized + %d false positive(s)",
                                     extras)
                          : "localized";
        } else {
            outcome = "MISSED";
        }

        std::printf("%-4s %-14s %-24s %-18s %s\n", id,
                    bug.expectedLossSite.empty()
                        ? "(none)" : bug.expectedLossSite.c_str(),
                    join(report.reported).c_str(),
                    join(report.filtered).c_str(), outcome.c_str());
    }

    std::printf("%s\n", std::string(84, '-').c_str());
    std::printf("Localized %d/7 data-loss bugs; %d false positive(s); "
                "D11 false negative: %s\n",
                localized, false_positives,
                d11_false_negative ? "yes" : "no");
    std::printf("Paper (§6.3): 6/7 localized, 1 false positive (D1), "
                "D11 hidden by filtering\n");

    bool ok = localized == 6 && false_positives == 1 &&
              d11_false_negative;
    std::printf("Match: %s\n", ok ? "ok" : "FAIL");
    return ok ? 0 : 1;
}
