/**
 * @file
 * Ablation: contribution of each FSM-detection heuristic (§4.2).
 *
 * The detector's accuracy (32 labeled FSMs, 0 FP / 5 FN with all
 * heuristics on) comes from a stack of exclusion rules. This bench
 * disables each rule in turn and re-scores the corpus, showing what
 * each heuristic buys: the exclusion rules suppress false positives
 * (counters, flags, status words) at the cost of a few false negatives
 * in unusual coding styles.
 */

#include <cstdio>
#include <set>
#include <string>

#include "analysis/fsm_detect.hh"
#include "bugbase/designs.hh"
#include "bugbase/fsm_zoo.hh"
#include "elab/elaborate.hh"
#include "hdl/parser.hh"

using namespace hwdbg;
using namespace hwdbg::bugs;
using namespace hwdbg::analysis;

namespace
{

struct Score
{
    int falsePos = 0;
    int falseNeg = 0;
};

Score
scoreCorpus(const FsmDetectOptions &opts)
{
    Score score;

    std::map<std::string, std::set<std::string>> labels;
    for (const auto &[design, var] : testbedFsmLabels())
        labels[design].insert(var);

    auto score_one = [&](const std::string &source,
                         const std::string &top,
                         const std::set<std::string> &truth) {
        hdl::Design design =
            hdl::parseWithDefines(source, {}, top + ".v");
        auto mod = elab::elaborate(design, top).mod;
        std::set<std::string> found;
        for (const auto &fsm : detectFsms(*mod, opts))
            found.insert(fsm.stateVar);
        for (const auto &var : found)
            if (!truth.count(var))
                ++score.falsePos;
        for (const auto &var : truth)
            if (!found.count(var))
                ++score.falseNeg;
    };

    for (const auto &name : designNames())
        score_one(designSource(name), name,
                  labels.count(name) ? labels[name]
                                     : std::set<std::string>{});
    const FsmZoo &zoo = fsmZoo();
    score_one(zoo.source, "fsm_zoo",
              {zoo.labeledFsms.begin(), zoo.labeledFsms.end()});
    return score;
}

} // namespace

int
main()
{
    struct Variant
    {
        const char *name;
        FsmDetectOptions opts;
    };
    std::vector<Variant> variants;
    variants.push_back({"all heuristics (baseline)", {}});
    {
        FsmDetectOptions opts;
        opts.excludeArithmetic = false;
        variants.push_back({"- exclude-arithmetic", opts});
    }
    {
        FsmDetectOptions opts;
        opts.excludeBitSelect = false;
        variants.push_back({"- exclude-bit-select", opts});
    }
    {
        FsmDetectOptions opts;
        opts.excludeOrderedCompare = false;
        variants.push_back({"- exclude-ordered-compare", opts});
    }
    {
        FsmDetectOptions opts;
        opts.requireSelfTest = false;
        variants.push_back({"- require-self-test", opts});
    }
    {
        FsmDetectOptions opts;
        opts.requireConstantRhs = false;
        variants.push_back({"- require-constant-rhs", opts});
    }
    {
        FsmDetectOptions opts;
        opts.minWidthTwo = false;
        variants.push_back({"- min-width-two", opts});
    }
    {
        FsmDetectOptions opts;
        opts.excludeArithmetic = false;
        opts.excludeBitSelect = false;
        opts.excludeOrderedCompare = false;
        opts.requireSelfTest = false;
        opts.requireConstantRhs = false;
        opts.minWidthTwo = false;
        variants.push_back({"no heuristics at all", opts});
    }

    std::printf("FSM-detection heuristic ablation (32 labeled FSMs)\n");
    std::printf("%-28s %6s %6s\n", "variant", "FP", "FN");
    std::printf("%s\n", std::string(44, '-').c_str());

    Score baseline;
    bool first = true;
    bool monotone = true;
    for (const auto &variant : variants) {
        Score score = scoreCorpus(variant.opts);
        std::printf("%-28s %6d %6d\n", variant.name, score.falsePos,
                    score.falseNeg);
        if (first) {
            baseline = score;
            first = false;
        } else if (score.falsePos < baseline.falsePos) {
            monotone = false; // a heuristic that only hurt precision
        }
    }

    std::printf("%s\n", std::string(44, '-').c_str());
    std::printf("Baseline matches the paper (0 FP / 5 FN); disabling "
                "any exclusion rule trades false positives for "
                "recall: %s\n",
                monotone && baseline.falsePos == 0 &&
                        baseline.falseNeg == 5
                    ? "ok" : "FAIL");
    return monotone && baseline.falsePos == 0 && baseline.falseNeg == 5
               ? 0 : 1;
}
