/**
 * @file
 * Reproduces Figure 2: the resource overhead (block RAM, registers,
 * logic) of SignalCat + the per-bug monitor set, as the recording
 * buffer size sweeps 1K/2K/4K/8K entries. HARP bugs (D1, D2, D3, D5,
 * D10, C2) are shown against the Intel platform, the rest against the
 * Xilinx KC705 platform.
 *
 * The property the figure demonstrates - BRAM grows linearly with
 * buffer depth while register/logic overhead stays flat - is checked
 * and reported at the end.
 */

#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "synth/resources.hh"

using namespace hwdbg;
using namespace hwdbg::bugs;
using namespace hwdbg::bench;
using namespace hwdbg::synth;

int
main()
{
    const std::vector<uint32_t> depths = {1024, 2048, 4096, 8192};

    bool shapes_ok = true;
    for (const char *platform : {"HARP", "KC705"}) {
        std::printf("\nFigure 2 (%s): monitor + SignalCat overhead vs "
                    "recording buffer size\n", platform);
        std::printf("%-4s | %28s | %28s | %28s\n", "",
                    "block RAM (Mbit)", "registers", "logic");
        std::printf("%-4s | %6s %6s %6s %6s | %6s %6s %6s %6s | "
                    "%6s %6s %6s %6s\n",
                    "Bug", "1K", "2K", "4K", "8K", "1K", "2K", "4K",
                    "8K", "1K", "2K", "4K", "8K");
        std::printf("%s\n", std::string(100, '-').c_str());

        for (const auto &bug : testbedBugs()) {
            bool is_harp = bug.platform == "HARP";
            if (is_harp != (std::string(platform) == "HARP"))
                continue;

            ResourceUsage base =
                estimateResources(*buildDesign(bug, true).mod);
            std::vector<ResourceUsage> overheads;
            for (uint32_t depth : depths) {
                auto mod = applyFullInstrumentation(
                    bug, buildDesign(bug, true).mod, depth);
                overheads.push_back(
                    estimateResources(*mod).overheadVs(base));
            }

            std::printf("%-4s |", bug.id.c_str());
            for (const auto &usage : overheads)
                std::printf(" %6.3f", usage.bramBits / 1e6);
            std::printf(" |");
            for (const auto &usage : overheads)
                std::printf(" %6llu",
                            (unsigned long long)usage.registers);
            std::printf(" |");
            for (const auto &usage : overheads)
                std::printf(" %6llu", (unsigned long long)usage.logic);
            std::printf("\n");

            // Shape checks: BRAM doubles with depth; registers/logic
            // stay within a few flip-flops of flat.
            for (size_t i = 1; i < overheads.size(); ++i) {
                double ratio =
                    overheads[i].bramBits / overheads[i - 1].bramBits;
                if (ratio < 1.9 || ratio > 2.1)
                    shapes_ok = false;
                if (overheads[i].registers >
                    overheads[i - 1].registers + 8)
                    shapes_ok = false;
                if (overheads[i].logic > overheads[i - 1].logic + 8)
                    shapes_ok = false;
            }
        }
    }

    std::printf("\nShape check: BRAM overhead linear in buffer size, "
                "register/logic overhead flat: %s\n",
                shapes_ok ? "ok" : "FAIL");
    return shapes_ok ? 0 : 1;
}
