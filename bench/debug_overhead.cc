/**
 * @file
 * Overhead budget check for the time-travel debug layer (DESIGN.md
 * §11), mirroring obs_overhead.cc.
 *
 * Snapshot support stays compiled into sim::Simulator for every build:
 * poke() and eval() each test one member pointer (the recording tape)
 * on their way through. The cost that matters for non-debug users is
 * that DISABLED path, so this benchmark
 *
 *  1. calibrates the ns cost of a never-taken pointer test + branch,
 *  2. measures the simulator's ns/cycle on a testbed design with
 *     recording off and counts hook executions per cycle (pokes +
 *     evals, known from the stimulus shape),
 *  3. computes the implied disabled-path overhead and FAILS (exit 1)
 *     when it exceeds 1%.
 *
 * It also reports the enabled-path numbers the debugger actually pays —
 * recording overhead, snapshot size and save/restore time, checkpoint
 * ring footprint, and replay throughput — for EXPERIMENTS.md; those are
 * informational, not asserted.
 */

#include <chrono>
#include <cstdio>
#include <memory>

#include "bugbase/designs.hh"
#include "debug/checkpoint.hh"
#include "elab/elaborate.hh"
#include "hdl/parser.hh"
#include "hdl/preproc.hh"
#include "sim/simulator.hh"

using namespace hwdbg;

namespace
{

using Clock = std::chrono::steady_clock;

double
nsSince(Clock::time_point begin)
{
    return std::chrono::duration<double, std::nano>(Clock::now() -
                                                    begin)
        .count();
}

/** ns per disabled recording hook: a load of a null tape pointer and
 *  the never-taken branch on it, the exact shape poke()/eval() pay. */
double
calibrateDisabledHook()
{
    sim::StimulusTape *volatile tape = nullptr;
    volatile uint64_t sink = 0;
    constexpr uint64_t kIters = 50'000'000;
    auto begin = Clock::now();
    for (uint64_t i = 0; i < kIters; ++i) {
        if (tape)
            sink = sink + i;
    }
    return nsSince(begin) / static_cast<double>(kIters);
}

std::unique_ptr<sim::Simulator>
makeWorkload()
{
    std::string src =
        hdl::preprocess(bugs::designSource("rsd"), {}, "rsd.v");
    hdl::Design design = hdl::parse(src, "rsd.v");
    return std::make_unique<sim::Simulator>(
        elab::elaborate(design, "rsd").mod);
}

/** ns per simulated cycle; 5 pokes + 2 evals = 7 hook hits/cycle. */
double
simNsPerCycle(sim::Simulator &sim, uint32_t cycles)
{
    auto begin = Clock::now();
    for (uint32_t t = 0; t < cycles; ++t) {
        sim.poke("rst", Bits(1, t < 2 ? 1 : 0));
        sim.poke("in_valid", Bits(1, t & 1));
        sim.poke("in_data", Bits(8, t * 7));
        sim.poke("clk", Bits(1, 0));
        sim.eval();
        sim.poke("clk", Bits(1, 1));
        sim.eval();
    }
    return nsSince(begin) / cycles;
}

constexpr double kHookHitsPerCycle = 7.0;

} // namespace

int
main()
{
    double hook_ns = calibrateDisabledHook();

    constexpr uint32_t kCycles = 20000;
    auto sim = makeWorkload();
    (void)simNsPerCycle(*sim, 2000); // warm up
    double off_ns = simNsPerCycle(*sim, kCycles);

    // Enabled path: the same workload while recording a tape.
    sim::StimulusTape tape;
    sim->recordStimulus(&tape);
    double rec_ns = simNsPerCycle(*sim, kCycles);
    sim->recordStimulus(nullptr);

    // Snapshot cost and size on the warmed-up simulator.
    constexpr int kSnaps = 200;
    sim::SimSnapshot snap;
    auto begin = Clock::now();
    for (int i = 0; i < kSnaps; ++i)
        snap = sim->saveState();
    double save_us = nsSince(begin) / kSnaps / 1e3;
    begin = Clock::now();
    for (int i = 0; i < kSnaps; ++i)
        sim->restoreState(snap);
    double restore_us = nsSince(begin) / kSnaps / 1e3;

    // Replay throughput: applyStep over the recorded tape on a fresh
    // simulator — the speed goto-cycle travels at.
    auto replayer = makeWorkload();
    begin = Clock::now();
    for (const auto &step : tape.steps)
        replayer->applyStep(step);
    double replay_ns = nsSince(begin) / tape.steps.size();
    double replay_msteps =
        1e3 / replay_ns; // steps/ns -> Msteps/s

    // Checkpoint ring footprint at the debugger's default interval.
    debug::CheckpointRing ring(128, 64);
    ring.saveInitial(*replayer);
    for (uint64_t pos = 0; pos < tape.steps.size(); ++pos)
        ring.maybeSave(pos + 1, *replayer);
    double ring_mb = ring.totalBytes() / (1024.0 * 1024.0);

    double implied_ns = kHookHitsPerCycle * hook_ns;
    double overhead_pct = 100.0 * implied_ns / off_ns;
    double rec_pct = 100.0 * (rec_ns - off_ns) / off_ns;

    std::printf("debug_overhead: snapshot-disabled budget check\n");
    std::printf("  disabled hook         : %.3f ns/hit\n", hook_ns);
    std::printf("  sim throughput (off)  : %.1f ns/cycle\n", off_ns);
    std::printf("  sim throughput (rec)  : %.1f ns/cycle (%+.2f%%)\n",
                rec_ns, rec_pct);
    std::printf("  tape                  : %zu steps, %zu bytes\n",
                tape.steps.size(), tape.sizeBytes());
    std::printf("  snapshot              : %zu bytes, save %.1f us, "
                "restore %.1f us\n",
                snap.sizeBytes(), save_us, restore_us);
    std::printf("  replay throughput     : %.1f ns/step "
                "(%.2f Msteps/s)\n",
                replay_ns, replay_msteps);
    std::printf("  checkpoint ring       : %zu snapshots, %.2f MiB "
                "(interval 128)\n",
                ring.count(), ring_mb);
    std::printf("  hook hits per cycle   : %.0f\n", kHookHitsPerCycle);
    std::printf("  implied disabled cost : %.3f ns/cycle = %.4f%%\n",
                implied_ns, overhead_pct);

    if (overhead_pct >= 1.0) {
        std::printf("FAIL: disabled-path overhead %.4f%% >= 1%%\n",
                    overhead_pct);
        return 1;
    }
    std::printf("PASS: disabled-path overhead %.4f%% < 1%%\n",
                overhead_pct);
    return 0;
}
