/**
 * @file
 * Fuzzing throughput and worker-pool scaling.
 *
 * Runs the same fixed seed range through the full oracle stack at
 * increasing --jobs counts and reports seeds/second plus the speedup
 * over one worker. Seeds are independent and results are sorted before
 * rendering, so the reports must be byte-identical across rows — the
 * bench asserts that while it measures.
 *
 * The interesting number is the parallel efficiency at the machine's
 * core count: the worker pool pulls seeds from an atomic counter with
 * no shared mutable state, so scaling should stay near-linear until
 * the cores run out (on a single-core container every row collapses to
 * the same throughput, which the report makes visible rather than
 * hiding).
 */

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "compile/backend.hh"
#include "fuzz/runner.hh"

using namespace hwdbg;
using namespace hwdbg::fuzz;

namespace
{

struct Row
{
    uint32_t jobs;
    double seconds;
    double seedsPerSec;
};

double
runOnce(uint32_t jobs, uint64_t seeds, std::string *report,
        const sim::BackendFactory &backend = {})
{
    FuzzConfig config;
    config.seeds = seeds;
    config.jobs = jobs;
    config.backend = backend;
    auto begin = std::chrono::steady_clock::now();
    FuzzReport result = runFuzz(config);
    auto end = std::chrono::steady_clock::now();
    *report = renderReport(result, config);
    return std::chrono::duration<double>(end - begin).count();
}

} // namespace

int
main(int argc, char **argv)
{
    uint64_t seeds = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                              : 200;
    uint32_t cores = std::max(1u, std::thread::hardware_concurrency());

    std::vector<uint32_t> jobCounts{1};
    for (uint32_t j = 2; j <= cores; j *= 2)
        jobCounts.push_back(j);
    if (jobCounts.back() != cores)
        jobCounts.push_back(cores);

    std::printf("Fuzz throughput: %llu seeds, all oracles, "
                "%u hardware thread(s)\n",
                static_cast<unsigned long long>(seeds), cores);
    std::printf("%-6s %-10s %-12s %-10s %s\n", "jobs", "seconds",
                "seeds/sec", "speedup", "report");

    std::vector<Row> rows;
    std::string baseline;
    for (uint32_t jobs : jobCounts) {
        std::string report;
        double secs = runOnce(jobs, seeds, &report);
        if (baseline.empty())
            baseline = report;
        Row row{jobs, secs,
                secs > 0 ? static_cast<double>(seeds) / secs : 0};
        rows.push_back(row);
        std::printf("%-6u %-10.2f %-12.1f %-10.2f %s\n", jobs, secs,
                    row.seedsPerSec,
                    rows.front().seconds > 0
                        ? rows.front().seconds / secs
                        : 0,
                    report == baseline ? "identical" : "DIVERGED");
        if (report != baseline) {
            std::fprintf(stderr,
                         "FATAL: report at jobs=%u differs from "
                         "jobs=%u\n",
                         jobs, rows.front().jobs);
            return 1;
        }
    }

    double eff = rows.back().seedsPerSec /
                 (rows.front().seedsPerSec *
                  static_cast<double>(rows.back().jobs));
    std::printf("\nparallel efficiency at jobs=%u: %.0f%%"
                " (100%% = linear scaling; 1-core containers pin every"
                " row to the same rate)\n",
                rows.back().jobs, 100.0 * eff);

    // Backend dimension: the same campaign with the simulators on the
    // compiled bytecode backend. The report must stay byte-identical —
    // fuzz results cannot depend on the execution engine — while the
    // throughput delta shows what the campaign gains from compiling.
    std::string bytecodeReport;
    double bytecodeSecs = runOnce(cores, seeds, &bytecodeReport,
                                  compile::makeBytecodeBackend());
    double bytecodeRate =
        bytecodeSecs > 0 ? static_cast<double>(seeds) / bytecodeSecs
                         : 0;
    std::printf("\nbackend=bytecode at jobs=%u: %.2fs, %.1f seeds/sec "
                "(%.2fx interp), report %s\n",
                cores, bytecodeSecs, bytecodeRate,
                rows.back().seedsPerSec > 0
                    ? bytecodeRate / rows.back().seedsPerSec
                    : 0,
                bytecodeReport == baseline ? "identical" : "DIVERGED");
    if (bytecodeReport != baseline) {
        std::fprintf(stderr, "FATAL: bytecode-backend report differs "
                             "from the interpreter's\n");
        return 1;
    }
    return 0;
}
