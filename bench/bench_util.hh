/**
 * @file
 * Shared helpers for the table/figure reproduction benches.
 */

#ifndef HWDBG_BENCH_BENCH_UTIL_HH
#define HWDBG_BENCH_BENCH_UTIL_HH

#include <memory>
#include <string>

#include "bugbase/testbed.hh"
#include "bugbase/workloads.hh"
#include "core/dep_monitor.hh"
#include "core/fsm_monitor.hh"
#include "core/losscheck.hh"
#include "core/signalcat.hh"
#include "core/stats_monitor.hh"
#include "hdl/parser.hh"
#include "hdl/printer.hh"
#include "sim/simulator.hh"

namespace hwdbg::bench
{

/** Apply the bug's configured monitors (FSM/Stat/Dep) to @p mod. */
inline hdl::ModulePtr
applyMonitors(const bugs::TestbedBug &bug, hdl::ModulePtr mod)
{
    if (bug.monitors.fsm)
        mod = core::applyFsmMonitor(*mod).module;
    if (!bug.monitors.statEvents.empty()) {
        core::StatsMonitorOptions opts;
        for (const auto &[name, signal] : bug.monitors.statEvents)
            opts.events.push_back(
                core::StatsEvent{name, hdl::parseExprText(signal)});
        mod = core::applyStatsMonitor(*mod, opts).module;
    }
    if (!bug.monitors.depVariable.empty()) {
        core::DepMonitorOptions opts;
        opts.variable = bug.monitors.depVariable;
        opts.cycles = bug.monitors.depCycles;
        mod = core::applyDepMonitor(*mod, opts).module;
    }
    return mod;
}

/**
 * The full debugging deployment for a bug: monitors, LossCheck when the
 * bug has a loss configuration, and SignalCat converting all logging to
 * the on-FPGA recorder with @p buffer_depth entries.
 */
inline hdl::ModulePtr
applyFullInstrumentation(const bugs::TestbedBug &bug, hdl::ModulePtr mod,
                         uint32_t buffer_depth,
                         bool with_losscheck = false)
{
    mod = applyMonitors(bug, mod);
    if (with_losscheck && bug.lossCheck)
        mod = core::applyLossCheck(*mod, *bug.lossCheck).module;
    core::SignalCatOptions opts;
    opts.bufferDepth = buffer_depth;
    return core::applySignalCat(*mod, opts).module;
}

/** Round-trip an instrumented module through the code generator and
 *  construct a simulator over it. */
inline std::unique_ptr<sim::Simulator>
simulateModule(hdl::ModulePtr mod)
{
    hdl::Design design = hdl::parse(hdl::printModule(*mod));
    return std::make_unique<sim::Simulator>(
        elab::elaborate(design, design.modules[0]->name).mod);
}

} // namespace hwdbg::bench

#endif // HWDBG_BENCH_BENCH_UTIL_HH
