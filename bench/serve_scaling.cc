/**
 * @file
 * Serve-layer attach scaling: the shared design cache's reason to
 * exist, measured and gated.
 *
 * For each testbed bug the bench times two attaches through the same
 * `serve::DesignCache` the server uses. The cold attach pays the full
 * builder — parse, elaborate, instrument, and a complete recording run
 * of the bug's workload to capture the stimulus tape. The warm attach
 * is what every subsequent session pays: a cache hit plus a private
 * engine (module clone + simulator + initial checkpoint) over the
 * shared tape. The gate is the geometric-mean cold/warm ratio, which
 * must stay >= 5x or the bench exits 1 — the bar ISSUE 9 sets for
 * elaborate-once-serve-many to justify the cache.
 *
 * While it measures, the bench asserts the cached design is actually
 * shared: one build per bug, every later attach a hit, and both
 * engines stopped at the same cycle after replaying the tape.
 *
 * With a path argument the per-bug table and the geomean land in a
 * BENCH_serve_scaling.json trajectory file, the perf baseline future
 * PRs diff against.
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bugbase/testbed.hh"
#include "bugbase/workloads.hh"
#include "debug/engine.hh"
#include "hdl/ast.hh"
#include "serve/cache.hh"
#include "sim/simulator.hh"

using namespace hwdbg;

namespace
{

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** The server's bug builder, verbatim in shape: full build plus a
 *  recording simulation of the bug's workload. */
serve::CachedDesign
buildBug(const bugs::TestbedBug &bug)
{
    auto elaborated = bugs::buildDesign(bug, /*buggy=*/true);
    debug::InstrumentConfig icfg;
    icfg.fsm = bug.monitors.fsm;
    icfg.depVariable = bug.monitors.depVariable;
    icfg.depCycles = bug.monitors.depCycles;
    icfg.lossCheck = bug.lossCheck;
    icfg.constants = elaborated.constants;
    auto instr = debug::instrumentForDebug(*elaborated.mod, icfg);
    auto tape = std::make_shared<sim::StimulusTape>();
    {
        sim::Simulator recorder(instr.module);
        recorder.recordStimulus(tape.get());
        bugs::runWorkload(bug, recorder);
        recorder.recordStimulus(nullptr);
    }
    serve::CachedDesign built;
    built.name = instr.module->name;
    built.module = instr.module;
    built.base = elaborated.mod;
    built.tape = tape;
    built.constants = elaborated.constants;
    return built;
}

/** One session attach against an already-resolved cache entry: clone
 *  the master and build an engine ready at cycle 0 — exactly what the
 *  server's `open debug` pays after the cache resolves. */
std::unique_ptr<debug::Engine>
attachSession(const std::shared_ptr<const serve::CachedDesign> &design)
{
    debug::EngineOptions eopts;
    eopts.constants = design->constants;
    return std::make_unique<debug::Engine>(
        hdl::cloneModule(*design->module), design->tape, eopts);
}

struct Row
{
    std::string bug;
    double coldSec;
    double warmSec;
    double ratio;
    uint64_t cycles;
};

} // namespace

int
main(int argc, char **argv)
{
    const char *jsonPath = argc > 1 ? argv[1] : nullptr;
    const double kGate = 5.0;

    std::printf("Serve attach scaling: cold build vs. warm cache hit\n");
    std::printf("%-6s %-9s %-10s %-10s %-8s\n", "bug", "cycles",
                "cold s", "warm s", "ratio");

    std::vector<Row> rows;
    double logSum = 0;
    bool broken = false;
    for (const auto &bug : bugs::testbedBugs()) {
        serve::DesignCache cache;
        auto builder = [&bug] { return buildBug(bug); };

        double t0 = now();
        auto cold = cache.getOrBuild(bug.id, builder);
        auto coldEngine = attachSession(cold.design);
        double t1 = now();
        auto warm = cache.getOrBuild(bug.id, builder);
        auto warmEngine = attachSession(warm.design);
        double t2 = now();

        // Untimed equivalence check: both sessions replay the shared
        // tape to the same stopping cycle.
        coldEngine->run();
        warmEngine->run();
        uint64_t coldCycle = coldEngine->cycle();
        uint64_t warmCycle = warmEngine->cycle();

        if (cold.hit || !warm.hit || cache.stats().builds != 1 ||
            warm.design.get() != cold.design.get() ||
            warmCycle != coldCycle) {
            std::fprintf(stderr,
                         "FATAL: %s: warm attach did not share the "
                         "cold build\n",
                         bug.id.c_str());
            broken = true;
        }

        Row row{bug.id, t1 - t0, t2 - t1,
                t2 - t1 > 0 ? (t1 - t0) / (t2 - t1) : 0, coldCycle};
        rows.push_back(row);
        logSum += std::log(row.ratio);
        std::printf("%-6s %-9llu %-10.5f %-10.5f %-8.2f\n",
                    row.bug.c_str(),
                    static_cast<unsigned long long>(row.cycles),
                    row.coldSec, row.warmSec, row.ratio);
    }

    double geomean = std::exp(logSum / static_cast<double>(rows.size()));
    std::printf("\ngeomean cold/warm: %.2fx (gate: >= %.1fx)\n", geomean,
                kGate);

    if (jsonPath) {
        FILE *f = std::fopen(jsonPath, "w");
        if (!f) {
            std::fprintf(stderr, "FATAL: cannot write %s\n", jsonPath);
            return 1;
        }
        std::fprintf(f, "{\n  \"bench\": \"serve_scaling\",\n"
                        "  \"bugs\": [\n");
        for (size_t i = 0; i < rows.size(); ++i)
            std::fprintf(f,
                         "    {\"bug\": \"%s\", \"cycles\": %llu, "
                         "\"cold_sec\": %.6f, \"warm_sec\": %.6f, "
                         "\"ratio\": %.3f}%s\n",
                         rows[i].bug.c_str(),
                         static_cast<unsigned long long>(rows[i].cycles),
                         rows[i].coldSec, rows[i].warmSec,
                         rows[i].ratio,
                         i + 1 < rows.size() ? "," : "");
        std::fprintf(f,
                     "  ],\n  \"geomean_ratio\": %.3f,\n"
                     "  \"gate\": %.1f\n}\n",
                     geomean, kGate);
        std::fclose(f);
        std::printf("trajectory written to %s\n", jsonPath);
    }

    if (broken)
        return 1;
    if (geomean < kGate) {
        std::fprintf(stderr,
                     "FATAL: geomean attach ratio %.2fx below the "
                     "%.1fx gate\n",
                     geomean, kGate);
        return 1;
    }
    return 0;
}
