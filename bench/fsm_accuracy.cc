/**
 * @file
 * Reproduces the §4.2 FSM-detection accuracy experiment: the detector
 * is scored against 32 manually-identified FSMs across the benchmark
 * suite (the 14 testbed designs plus the fsm_zoo style corpus). The
 * paper reports 0 false positives and 5 false negatives.
 */

#include <cstdio>
#include <set>
#include <string>

#include "analysis/fsm_detect.hh"
#include "bugbase/designs.hh"
#include "bugbase/fsm_zoo.hh"
#include "elab/elaborate.hh"
#include "hdl/parser.hh"

using namespace hwdbg;
using namespace hwdbg::bugs;

namespace
{

std::set<std::string>
detect(const std::string &source, const std::string &top)
{
    hdl::Design design = hdl::parseWithDefines(source, {}, top + ".v");
    auto mod = elab::elaborate(design, top).mod;
    std::set<std::string> found;
    for (const auto &fsm : analysis::detectFsms(*mod))
        found.insert(fsm.stateVar);
    return found;
}

} // namespace

int
main()
{
    int labeled = 0, detected_true = 0, false_pos = 0, false_neg = 0;

    // Testbed designs (fixed variants), hand-labeled.
    std::map<std::string, std::set<std::string>> labels;
    for (const auto &[design, var] : testbedFsmLabels())
        labels[design].insert(var);

    std::printf("FSM detection accuracy (vs hand labels)\n");
    std::printf("%-14s %8s %9s %4s %4s  %s\n", "Design", "labeled",
                "detected", "FP", "FN", "missed");
    std::printf("%s\n", std::string(70, '-').c_str());

    for (const auto &name : designNames()) {
        std::set<std::string> truth = labels.count(name)
                                          ? labels[name]
                                          : std::set<std::string>{};
        std::set<std::string> found = detect(designSource(name), name);
        int fp = 0, fn = 0;
        std::string missed;
        for (const auto &var : found)
            if (!truth.count(var))
                ++fp;
        for (const auto &var : truth)
            if (!found.count(var)) {
                ++fn;
                missed += var + " ";
            }
        labeled += static_cast<int>(truth.size());
        detected_true +=
            static_cast<int>(truth.size()) - fn;
        false_pos += fp;
        false_neg += fn;
        std::printf("%-14s %8zu %9zu %4d %4d  %s\n", name.c_str(),
                    truth.size(), found.size(), fp, fn,
                    missed.c_str());
    }

    // The style corpus.
    const FsmZoo &zoo = fsmZoo();
    std::set<std::string> truth(zoo.labeledFsms.begin(),
                                zoo.labeledFsms.end());
    std::set<std::string> found = detect(zoo.source, "fsm_zoo");
    int fp = 0, fn = 0;
    std::string missed;
    for (const auto &var : found)
        if (!truth.count(var))
            ++fp;
    for (const auto &var : truth)
        if (!found.count(var)) {
            ++fn;
            missed += var + " ";
        }
    labeled += static_cast<int>(truth.size());
    detected_true += static_cast<int>(truth.size()) - fn;
    false_pos += fp;
    false_neg += fn;
    std::printf("%-14s %8zu %9zu %4d %4d  %s\n", "fsm_zoo",
                truth.size(), found.size(), fp, fn, missed.c_str());

    std::printf("%s\n", std::string(70, '-').c_str());
    std::printf("Total: %d manually-identified FSMs, %d detected, "
                "%d false positives, %d false negatives\n",
                labeled, detected_true, false_pos, false_neg);
    std::printf("Paper (§4.2): 32 FSMs, 0 false positives, 5 false "
                "negatives\n");

    bool ok = labeled == 32 && false_pos == 0 && false_neg == 5;
    std::printf("Match: %s\n", ok ? "ok" : "FAIL");
    return ok ? 0 : 1;
}
