/**
 * @file
 * Reproduces Table 1: the classification of the 68 studied bugs into 3
 * classes and 13 subclasses with per-subclass counts and common
 * symptoms.
 */

#include <cstdio>
#include <map>

#include "bugbase/study.hh"

using namespace hwdbg::bugs;

int
main()
{
    std::printf("Table 1: bug classification (68 studied bugs)\n");
    std::printf("%-16s %-27s %5s  %-6s %-5s %-7s %-5s\n", "Class",
                "Subclass", "Bugs", "Stuck", "Loss", "Incor.", "Ext.");
    std::printf("%s\n", std::string(78, '-').c_str());

    std::map<BugClass, int> class_totals;
    for (const auto &row : bugStudyTable()) {
        class_totals[row.bugClass] += row.count;
        std::printf("%-16s %-27s %5d  %-6s %-5s %-7s %-5s\n",
                    bugClassName(row.bugClass), row.subclass.c_str(),
                    row.count,
                    row.commonSymptoms.count(Symptom::Stuck) ? "x" : "",
                    row.commonSymptoms.count(Symptom::DataLoss) ? "x"
                                                                : "",
                    row.commonSymptoms.count(Symptom::IncorrectOutput)
                        ? "x" : "",
                    row.commonSymptoms.count(Symptom::ExternalError)
                        ? "x" : "");
    }
    std::printf("%s\n", std::string(78, '-').c_str());
    std::printf("Class totals: Data Mis-Access %d, Communication %d, "
                "Semantic %d (total %zu)\n",
                class_totals[BugClass::DataMisAccess],
                class_totals[BugClass::Communication],
                class_totals[BugClass::Semantic], studyBugs().size());
    return 0;
}
