/**
 * @file
 * Interpreter vs. compiled bytecode backend: the speedup gate.
 *
 * A corpus of generated designs (the fuzz generator with every template
 * enabled, so memories, FSMs, FIFOs, and submodules are all present)
 * runs the same deterministic stimulus on both backends. Per design the
 * bench reports cycles/second on each backend and their ratio; the gate
 * is the geometric-mean speedup, which must stay >= 5x or the bench
 * exits 1 — the bar ISSUE 7 sets for the compiled backend to justify
 * its existence.
 *
 * While it measures, the bench asserts what the equivalence tests
 * assert: both runs must end in the identical architectural state
 * (every signal, every memory element, cycle count, $finish, $display
 * log). A speedup built on divergence is a bug, not a result.
 *
 * With a path argument the per-design table and the geomean land in a
 * BENCH_backend_speedup.json trajectory file, the perf baseline future
 * PRs diff against.
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "compile/backend.hh"
#include "elab/elaborate.hh"
#include "fuzz/generator.hh"
#include "sim/simulator.hh"

using namespace hwdbg;

namespace
{

/** splitmix64: one deterministic stimulus stream per seed. */
struct Rng
{
    uint64_t state;
    explicit Rng(uint64_t seed) : state(seed) {}
    uint64_t next()
    {
        uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
        z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
        return z ^ (z >> 31);
    }
};

struct FinalState
{
    std::vector<Bits> values;
    std::vector<std::vector<Bits>> arrays;
    uint64_t cycle = 0;
    bool finished = false;
    size_t logLines = 0;
    /** Seconds spent formatting the deferred $display log — work the
     *  hot loop used to pay inline and now pays at the drain. */
    double fmtSec = 0;

    bool operator==(const FinalState &rhs) const
    {
        return values == rhs.values && arrays == rhs.arrays &&
               cycle == rhs.cycle && finished == rhs.finished &&
               logLines == rhs.logLines;
    }
};

/** Clock @p cycles of seeded stimulus through @p sim; returns seconds. */
double
runStimulus(sim::Simulator &sim, const fuzz::GeneratedDesign &gd,
            uint64_t seed, uint32_t cycles, FinalState *out)
{
    Rng rng(seed ^ 0x42454E4348ULL);
    auto begin = std::chrono::steady_clock::now();
    for (uint32_t t = 0; t < cycles && !sim.finished(); ++t) {
        if (gd.hasRst)
            sim.poke("rst", uint64_t(t < 2 ? 1 : 0));
        for (const auto &port : gd.inputs)
            sim.poke(port.name, Bits(port.width, rng.next()));
        sim.poke("clk", uint64_t(0));
        sim.eval();
        sim.poke("clk", uint64_t(1));
        sim.eval();
    }
    auto end = std::chrono::steady_clock::now();
    out->values = sim.context().values;
    out->arrays = sim.context().arrays;
    out->cycle = sim.cycle();
    out->finished = sim.finished();
    // The first log() access drains and formats the deferred $display
    // entries; timing it separately shows what the hot loop no longer
    // pays.
    auto fmtBegin = std::chrono::steady_clock::now();
    out->logLines = sim.log().size();
    out->fmtSec = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - fmtBegin)
                      .count();
    return std::chrono::duration<double>(end - begin).count();
}

struct Row
{
    uint64_t seed;
    size_t signals;
    double interpSec;
    double bytecodeSec;
    double speedup;
    double interpFmtSec;
    double bytecodeFmtSec;
    bool identical;
};

} // namespace

int
main(int argc, char **argv)
{
    uint32_t cycles = argc > 1
                          ? static_cast<uint32_t>(
                                std::strtoul(argv[1], nullptr, 10))
                          : 3000;
    const char *jsonPath = argc > 2 ? argv[2] : nullptr;
    const double kGate = 5.0;

    // Every template on: the corpus leans large on purpose — the gate
    // measures the backend on designs worth compiling, and the small
    // degenerate ones are the fuzz campaign's job.
    fuzz::GeneratorOptions opts;
    opts.maxExprDepth = 4;
    opts.fsmChance = 100;
    opts.fifoChance = 100;
    opts.memChance = 100;
    opts.submoduleChance = 100;
    opts.displayChance = 30;

    std::printf("Backend speedup: interpreter vs. compiled bytecode, "
                "%u cycles/design\n",
                cycles);
    std::printf("%-6s %-8s %-11s %-13s %-9s %-9s %s\n", "seed",
                "signals", "interp s", "bytecode s", "speedup",
                "fmt s", "state");

    std::vector<Row> rows;
    double logSum = 0;
    bool diverged = false;
    for (uint64_t seed = 1; seed <= 12; ++seed) {
        fuzz::GeneratedDesign gd = fuzz::generateDesign(seed, opts);
        auto modA = elab::elaborate(gd.design, gd.top).mod;
        auto modB = elab::elaborate(gd.design, gd.top).mod;

        sim::Simulator interp(modA);
        sim::Simulator bytecode(modB);
        bytecode.setBackend(compile::makeBytecodeBackend());

        FinalState stateA, stateB;
        double secA = runStimulus(interp, gd, seed, cycles, &stateA);
        double secB = runStimulus(bytecode, gd, seed, cycles, &stateB);

        Row row{seed,
                interp.design().numSignals(),
                secA,
                secB,
                secB > 0 ? secA / secB : 0,
                stateA.fmtSec,
                stateB.fmtSec,
                stateA == stateB};
        rows.push_back(row);
        logSum += std::log(row.speedup);
        diverged = diverged || !row.identical;
        std::printf("%-6llu %-8zu %-11.4f %-13.4f %-9.2f %-9.4f %s\n",
                    static_cast<unsigned long long>(seed), row.signals,
                    secA, secB, row.speedup, stateA.fmtSec,
                    row.identical ? "identical" : "DIVERGED");
    }

    double geomean = std::exp(logSum / static_cast<double>(rows.size()));
    std::printf("\ngeomean speedup: %.2fx (gate: >= %.1fx)\n", geomean,
                kGate);

    if (jsonPath) {
        FILE *f = std::fopen(jsonPath, "w");
        if (!f) {
            std::fprintf(stderr, "FATAL: cannot write %s\n", jsonPath);
            return 1;
        }
        std::fprintf(f,
                     "{\n  \"bench\": \"backend_speedup\",\n"
                     "  \"cycles_per_design\": %u,\n  \"designs\": [\n",
                     cycles);
        for (size_t i = 0; i < rows.size(); ++i)
            std::fprintf(f,
                         "    {\"seed\": %llu, \"signals\": %zu, "
                         "\"interp_sec\": %.6f, "
                         "\"bytecode_sec\": %.6f, "
                         "\"speedup\": %.3f, "
                         "\"interp_fmt_sec\": %.6f, "
                         "\"bytecode_fmt_sec\": %.6f}%s\n",
                         static_cast<unsigned long long>(rows[i].seed),
                         rows[i].signals, rows[i].interpSec,
                         rows[i].bytecodeSec, rows[i].speedup,
                         rows[i].interpFmtSec, rows[i].bytecodeFmtSec,
                         i + 1 < rows.size() ? "," : "");
        std::fprintf(f,
                     "  ],\n  \"geomean_speedup\": %.3f,\n"
                     "  \"gate\": %.1f\n}\n",
                     geomean, kGate);
        std::fclose(f);
        std::printf("trajectory written to %s\n", jsonPath);
    }

    if (diverged) {
        std::fprintf(stderr,
                     "FATAL: backends disagreed on final state\n");
        return 1;
    }
    if (geomean < kGate) {
        std::fprintf(stderr,
                     "FATAL: geomean speedup %.2fx below the %.1fx "
                     "gate\n",
                     geomean, kGate);
        return 1;
    }
    return 0;
}
