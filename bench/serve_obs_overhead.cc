/**
 * @file
 * Overhead budget check for serve telemetry (DESIGN.md §17).
 *
 * The request log is compiled into every serve build, so two costs are
 * gated:
 *
 *  1. the DISABLED path (--no-telemetry): one id fetch plus one
 *     relaxed-load-and-branch record() per request. The bench
 *     calibrates that hook in a tight loop, measures the real ns per
 *     request on a scripted debug workload, and FAILS (exit 1) when
 *     the implied overhead reaches 1%;
 *  2. steady-state introspection: a monitor polling `stats` against a
 *     busy server (one poll per 32 requests, far above `hwdbg top`'s
 *     default 1 Hz). The wall-clock cost of the polled run over the
 *     unpolled run must stay under 5%.
 *
 * The enabled-vs-disabled telemetry delta is also reported for
 * EXPERIMENTS.md; that number is informational, not asserted. With an
 * output path argument the numbers land in
 * BENCH_serve_obs_overhead.json.
 */

#include <chrono>
#include <cstdio>
#include <sstream>
#include <string>

#include "obs/metrics.hh"
#include "obs/reqlog.hh"
#include "serve/server.hh"

using namespace hwdbg;

namespace
{

using Clock = std::chrono::steady_clock;

double
nsSince(Clock::time_point begin)
{
    return std::chrono::duration<double, std::nano>(Clock::now() -
                                                    begin)
        .count();
}

/** ns per disabled-telemetry request hook: id fetch + record() that
 *  bails on the relaxed enabled() load. */
double
calibrateDisabledHook()
{
    constexpr uint64_t kIters = 5'000'000;
    obs::RequestLog log;
    obs::RequestEvent event;
    event.cmd = "step";
    auto begin = Clock::now();
    for (uint64_t i = 0; i < kIters; ++i) {
        event.id = log.nextRequestId();
        log.record(event);
    }
    double ns = nsSince(begin) / static_cast<double>(kIters);
    if (log.requests() != 0)
        std::fprintf(stderr, "calibration log was enabled!\n");
    return ns;
}

/** The steady-state workload: routed goto-cycle commands bouncing
 *  through the recorded run (checkpoint restore + tens of cycles of
 *  real replay each — the debugger's actual steady state), with one
 *  `stats` poll per @p pollEvery requests (0 = never). 1/32 is far
 *  above `hwdbg top`'s default 1 Hz against any real server. */
std::string
workloadScript(int requests, int pollEvery)
{
    std::string script;
    for (int i = 1; i <= requests; ++i) {
        script += i & 1 ? "@1 goto-cycle 100\n" : "@1 goto-cycle 10\n";
        if (pollEvery && i % pollEvery == 0)
            script += "stats\n";
    }
    return script;
}

/** Wall-clock ns for one scripted channel run (output discarded). */
double
runChannelNs(serve::Server &server, const std::string &script)
{
    std::istringstream in(script);
    std::ostringstream out;
    auto begin = Clock::now();
    server.runChannel(in, out);
    return nsSince(begin);
}

/** Best-of-@p rounds ns/request for @p script on a warm server. */
double
bestNsPerRequest(serve::Server &server, const std::string &script,
                 int requests, int rounds = 3)
{
    double best = 0;
    for (int round = 0; round < rounds; ++round) {
        double ns = runChannelNs(server, script) / requests;
        if (!best || ns < best)
            best = ns;
    }
    return best;
}

} // namespace

int
main(int argc, char **argv)
{
    const char *jsonPath = argc > 1 ? argv[1] : nullptr;
    obs::enableMetrics(false);

    double hook_ns = calibrateDisabledHook();

    constexpr int kRequests = 300;
    constexpr int kPollEvery = 32;
    // D1 sits on the RSD decoder — the heaviest testbed design — so
    // every goto-cycle replays real simulation work.
    const std::string attach = "open debug bug=D1\n";
    const std::string plain = workloadScript(kRequests, 0);
    const std::string polled = workloadScript(kRequests, kPollEvery);

    // Telemetry disabled: the floor the 1% gate is measured against.
    serve::ServerOptions offOpts;
    offOpts.telemetry = false;
    serve::Server offServer(offOpts);
    {
        std::istringstream in(attach + workloadScript(50, 0));
        std::ostringstream out;
        offServer.runChannel(in, out); // attach + warm up
    }
    double off_ns = bestNsPerRequest(offServer, plain, kRequests);

    // Telemetry enabled: the steady-state baseline, then the same
    // workload with a stats poll interleaved every 32 requests.
    serve::ServerOptions onOpts;
    onOpts.slowThresholdUs = 600000000;
    serve::Server onServer(onOpts);
    {
        std::istringstream in(attach + workloadScript(50, 0));
        std::ostringstream out;
        onServer.runChannel(in, out);
    }
    // Alternate the plain and polled runs so machine drift hits both
    // equally; per-request cost of the polled run divides by the
    // workload count alone, so the interleaved stats requests are
    // exactly the overhead under test.
    double on_ns = 0, polled_ns = 0;
    for (int round = 0; round < 3; ++round) {
        double a = runChannelNs(onServer, plain) / kRequests;
        if (!on_ns || a < on_ns)
            on_ns = a;
        double b = runChannelNs(onServer, polled) / kRequests;
        if (!polled_ns || b < polled_ns)
            polled_ns = b;
    }

    double implied_ns = hook_ns; // exactly one hook per request
    double disabled_pct = 100.0 * implied_ns / off_ns;
    double telemetry_pct = 100.0 * (on_ns - off_ns) / off_ns;
    double polling_pct = 100.0 * (polled_ns - on_ns) / on_ns;

    std::printf("serve_obs_overhead: telemetry budget check\n");
    std::printf("  disabled hook         : %.3f ns/request\n", hook_ns);
    std::printf("  ns/request (telemetry off) : %.1f\n", off_ns);
    std::printf("  ns/request (telemetry on)  : %.1f (%+.2f%%)\n",
                on_ns, telemetry_pct);
    std::printf("  ns/request (polled 1/%d)   : %.1f (%+.2f%%)\n",
                kPollEvery, polled_ns, polling_pct);
    std::printf("  implied disabled cost : %.3f ns/request = %.4f%%\n",
                implied_ns, disabled_pct);

    if (jsonPath) {
        FILE *f = std::fopen(jsonPath, "w");
        if (!f) {
            std::fprintf(stderr, "FATAL: cannot write %s\n", jsonPath);
            return 1;
        }
        std::fprintf(f,
                     "{\n  \"bench\": \"serve_obs_overhead\",\n"
                     "  \"hook_ns\": %.4f,\n"
                     "  \"off_ns_per_request\": %.1f,\n"
                     "  \"on_ns_per_request\": %.1f,\n"
                     "  \"polled_ns_per_request\": %.1f,\n"
                     "  \"poll_every\": %d,\n"
                     "  \"implied_disabled_pct\": %.4f,\n"
                     "  \"telemetry_pct\": %.2f,\n"
                     "  \"polling_pct\": %.2f,\n"
                     "  \"gate_disabled_pct\": 1.0,\n"
                     "  \"gate_polling_pct\": 5.0\n}\n",
                     hook_ns, off_ns, on_ns, polled_ns, kPollEvery,
                     disabled_pct, telemetry_pct, polling_pct);
        std::fclose(f);
        std::printf("trajectory written to %s\n", jsonPath);
    }

    bool fail = false;
    if (disabled_pct >= 1.0) {
        std::printf("FAIL: disabled-path overhead %.4f%% >= 1%%\n",
                    disabled_pct);
        fail = true;
    }
    if (polling_pct >= 5.0) {
        std::printf("FAIL: stats polling overhead %.2f%% >= 5%%\n",
                    polling_pct);
        fail = true;
    }
    if (fail)
        return 1;
    std::printf("PASS: disabled %.4f%% < 1%%, polling %+.2f%% < 5%% "
                "(telemetry %+.2f%% informational)\n",
                disabled_pct, polling_pct, telemetry_pct);
    return 0;
}
