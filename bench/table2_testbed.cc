/**
 * @file
 * Reproduces Table 2: runs every testbed bug push-button, verifies the
 * observed symptoms against the table, and prints the per-bug helpful
 * tools. The "Repro" column confirms the buggy variant fails the
 * workload while the fixed variant passes (Appendix A.5).
 */

#include <cstdio>
#include <string>

#include "bench_util.hh"

using namespace hwdbg;
using namespace hwdbg::bugs;

namespace
{

std::string
symptomCell(const std::set<Symptom> &symptoms, Symptom which)
{
    return symptoms.count(which) ? "x" : "";
}

std::string
toolCell(const TestbedBug &bug, const char *tool)
{
    return bug.helpfulTools.count(tool) ? "x" : "";
}

} // namespace

int
main()
{
    std::printf("Table 2: testbed of reproducible bugs\n");
    std::printf("%-4s %-27s %-22s %-8s | %-5s %-4s %-6s %-4s | "
                "%-2s %-3s %-4s %-3s %-2s | %s\n",
                "ID", "Subclass", "Application", "Platform", "Stuck",
                "Loss", "Incor.", "Ext.", "SC", "FSM", "Stat", "Dep",
                "LC", "Repro");
    std::printf("%s\n", std::string(118, '-').c_str());

    int reproduced = 0;
    for (const auto &bug : testbedBugs()) {
        sim::Simulator buggy_sim(buildDesign(bug, true).mod);
        WorkloadResult buggy = runWorkload(bug, buggy_sim);
        sim::Simulator fixed_sim(buildDesign(bug, false).mod);
        WorkloadResult fixed = runWorkload(bug, fixed_sim);

        bool ok = !buggy.passed && fixed.passed &&
                  buggy.observed == bug.symptoms;
        if (ok)
            ++reproduced;

        std::printf("%-4s %-27s %-22s %-8s | %-5s %-4s %-6s %-4s | "
                    "%-2s %-3s %-4s %-3s %-2s | %s\n",
                    bug.id.c_str(), bug.subclass.c_str(),
                    bug.application.c_str(), bug.platform.c_str(),
                    symptomCell(buggy.observed, Symptom::Stuck).c_str(),
                    symptomCell(buggy.observed,
                                Symptom::DataLoss).c_str(),
                    symptomCell(buggy.observed,
                                Symptom::IncorrectOutput).c_str(),
                    symptomCell(buggy.observed,
                                Symptom::ExternalError).c_str(),
                    toolCell(bug, "SC").c_str(),
                    toolCell(bug, "FSM").c_str(),
                    toolCell(bug, "Stat").c_str(),
                    toolCell(bug, "Dep").c_str(),
                    toolCell(bug, "LC").c_str(), ok ? "ok" : "FAIL");
    }
    std::printf("%s\n", std::string(118, '-').c_str());
    std::printf("Push-button reproduction: %d/20 bugs show their Table 2 "
                "symptoms (fixed variants pass).\n",
                reproduced);
    return reproduced == 20 ? 0 : 1;
}
