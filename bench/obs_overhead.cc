/**
 * @file
 * Overhead budget check for the observability layer (DESIGN.md §10).
 *
 * Every HWDBG_STAT_* macro and ObsSpan stays compiled into the tier-1
 * build, so the cost that matters is the DISABLED path: one relaxed
 * atomic load and a branch per hit. This benchmark
 *
 *  1. calibrates the ns cost of a disabled macro and a disabled span
 *     in a tight loop,
 *  2. measures the simulator's ns/cycle on a testbed design and counts
 *     how many macro sites fire per cycle (from the counters
 *     themselves, with metrics on),
 *  3. computes the implied disabled-path overhead per simulated cycle
 *     and FAILS (exit 1) when it exceeds 1%.
 *
 * It also reports the enabled-path cost (metrics on vs off) for
 * EXPERIMENTS.md; that number is informational, not asserted.
 */

#include <chrono>
#include <cstdio>

#include "bugbase/designs.hh"
#include "elab/elaborate.hh"
#include "hdl/parser.hh"
#include "hdl/preproc.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "sim/simulator.hh"

using namespace hwdbg;

namespace
{

using Clock = std::chrono::steady_clock;

double
nsSince(Clock::time_point begin)
{
    return std::chrono::duration<double, std::nano>(Clock::now() -
                                                    begin)
        .count();
}

/** ns per disabled HWDBG_STAT_INC hit. */
double
calibrateDisabledMacro()
{
    constexpr uint64_t kIters = 20'000'000;
    auto begin = Clock::now();
    for (uint64_t i = 0; i < kIters; ++i)
        HWDBG_STAT_INC("bench.calibration", 1);
    double ns = nsSince(begin);
    if (obs::counterValue("bench.calibration") != 0)
        std::fprintf(stderr, "calibration ran with metrics enabled!\n");
    return ns / static_cast<double>(kIters);
}

/** ns per disabled ObsSpan construct+destruct. */
double
calibrateDisabledSpan()
{
    constexpr uint64_t kIters = 5'000'000;
    auto begin = Clock::now();
    for (uint64_t i = 0; i < kIters; ++i)
        obs::ObsSpan span("bench.span");
    return nsSince(begin) / static_cast<double>(kIters);
}

std::unique_ptr<sim::Simulator>
makeWorkload()
{
    // The RSD decoder testbed design: a realistic mix of clocked
    // processes, continuous assigns, and a memory.
    std::string src =
        hdl::preprocess(bugs::designSource("rsd"), {}, "rsd.v");
    hdl::Design design = hdl::parse(src, "rsd.v");
    return std::make_unique<sim::Simulator>(
        elab::elaborate(design, "rsd").mod);
}

/** ns per simulated cycle with the current metrics state. */
double
simNsPerCycle(sim::Simulator &sim, uint32_t cycles)
{
    auto begin = Clock::now();
    for (uint32_t t = 0; t < cycles; ++t) {
        sim.poke("rst", Bits(1, t < 2 ? 1 : 0));
        sim.poke("in_valid", Bits(1, t & 1));
        sim.poke("in_data", Bits(8, t * 7));
        sim.poke("clk", Bits(1, 0));
        sim.eval();
        sim.poke("clk", Bits(1, 1));
        sim.eval();
    }
    return nsSince(begin) / cycles;
}

} // namespace

int
main()
{
    obs::enableMetrics(false);
    double macro_ns = calibrateDisabledMacro();
    double span_ns = calibrateDisabledSpan();

    // Warm up, then measure the disabled-path simulator throughput.
    constexpr uint32_t kCycles = 20000;
    auto sim = makeWorkload();
    (void)simNsPerCycle(*sim, 2000);
    double off_ns = simNsPerCycle(*sim, kCycles);

    // Count macro executions per cycle from the instruments: with
    // metrics on, settle_calls and cycles count their own macro's
    // executions exactly. noteSettle() fires 4 macros per settle call;
    // eval() fires 1 per eval (process_evals) + 1 per posedge (cycles)
    // + 1 per $display record.
    obs::resetMetrics();
    obs::enableMetrics(true);
    double on_ns = simNsPerCycle(*sim, kCycles);
    obs::enableMetrics(false);
    double settle_per_cycle =
        static_cast<double>(obs::counterValue("sim.settle_calls")) /
        kCycles;
    double displays_per_cycle =
        static_cast<double>(obs::counterValue("sim.display_records")) /
        kCycles;
    // evals/cycle = 2 (clk low + clk high), posedges/cycle = 1.
    double hits_per_cycle =
        4 * settle_per_cycle + 2 + 1 + displays_per_cycle;

    double implied_ns = hits_per_cycle * macro_ns;
    double overhead_pct = 100.0 * implied_ns / off_ns;
    double enabled_pct = 100.0 * (on_ns - off_ns) / off_ns;

    std::printf("obs_overhead: disabled-path budget check\n");
    std::printf("  disabled macro        : %.3f ns/hit\n", macro_ns);
    std::printf("  disabled span         : %.3f ns/span\n", span_ns);
    std::printf("  sim throughput (off)  : %.1f ns/cycle\n", off_ns);
    std::printf("  sim throughput (on)   : %.1f ns/cycle (%+.2f%%)\n",
                on_ns, enabled_pct);
    std::printf("  macro hits per cycle  : %.2f\n", hits_per_cycle);
    std::printf("  implied disabled cost : %.2f ns/cycle = %.3f%%\n",
                implied_ns, overhead_pct);

    if (overhead_pct >= 1.0) {
        std::printf("FAIL: disabled-path overhead %.3f%% >= 1%%\n",
                    overhead_pct);
        return 1;
    }
    std::printf("PASS: disabled-path overhead %.3f%% < 1%%\n",
                overhead_pct);
    return 0;
}
