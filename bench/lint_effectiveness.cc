/**
 * @file
 * Lint effectiveness over the Table 2 testbed: run every rule on the
 * buggy and fixed form of each of the 20 bugs and report which rules
 * fire on the buggy form only (a detection), on both forms (noise),
 * and how many diagnostics the fixed designs draw in total.
 *
 * The static rules are keyed to Table 1 subclasses, so this is the
 * static-analysis counterpart of the dynamic-tool effectiveness
 * benches: it measures how far pattern matching alone gets before the
 * monitors and LossCheck have to take over.
 */

#include <cstdio>
#include <map>
#include <set>
#include <string>

#include "bench_util.hh"
#include "common/logging.hh"
#include "lint/lint.hh"

using namespace hwdbg;
using namespace hwdbg::bugs;
using namespace hwdbg::bench;

namespace
{

std::multiset<std::string>
ruleHits(const TestbedBug &bug, bool buggy)
{
    auto elaborated = buildDesign(bug, buggy);
    std::multiset<std::string> hits;
    for (const auto &diag : lint::runLint(*elaborated.mod))
        hits.insert(diag.rule);
    return hits;
}

std::string
join(const std::set<std::string> &names)
{
    std::string out;
    for (const auto &name : names) {
        if (!out.empty())
            out += ", ";
        out += name;
    }
    return out.empty() ? "-" : out;
}

} // namespace

int
main()
{
    std::printf("Static lint over the 20 Table 2 testbed bugs\n");
    std::printf("%-4s %-27s %-38s %s\n", "Bug", "subclass",
                "buggy-only rules (detections)", "both-forms rules");
    std::printf("%s\n", std::string(100, '-').c_str());

    int detected = 0;
    int fixed_diags = 0;
    std::map<std::string, int> perRule;

    for (const auto &bug : testbedBugs()) {
        auto buggy = ruleHits(bug, true);
        auto fixed = ruleHits(bug, false);
        fixed_diags += static_cast<int>(fixed.size());

        std::set<std::string> buggy_only, both;
        for (const auto &rule : std::set<std::string>(buggy.begin(),
                                                      buggy.end())) {
            if (fixed.count(rule))
                both.insert(rule);
            else
                buggy_only.insert(rule);
        }
        if (!buggy_only.empty())
            ++detected;
        for (const auto &rule : buggy_only)
            ++perRule[rule];

        std::printf("%-4s %-27s %-38s %s\n", bug.id.c_str(),
                    bug.subclass.c_str(), join(buggy_only).c_str(),
                    join(both).c_str());
    }

    std::printf("%s\n", std::string(100, '-').c_str());
    std::printf("Detections per rule:\n");
    for (const auto &[rule, count] : perRule)
        std::printf("  %-24s %d\n", rule.c_str(), count);
    std::printf("Detected %d/20 bugs from the buggy source alone; "
                "%d diagnostic(s) on the 20 fixed designs\n",
                detected, fixed_diags);
    std::printf("Expected: the 8 structural/protocol bugs (D3, D4, "
                "D11, C1, C3, S1, S2, S3); timing-, value-, and "
                "workload-dependent bugs need the dynamic tools\n");

    bool ok = detected >= 5;
    std::printf("Match: %s\n", ok ? "ok" : "FAIL");
    return ok ? 0 : 1;
}
