/**
 * @file
 * Ablation: LossCheck's false-positive filtering (§4.5.3).
 *
 * LossCheck cannot statically distinguish intentional data drops from
 * unintentional losses, so it suppresses reports at registers that also
 * fire under the design's passing ("ground truth") tests. This bench
 * runs the 7 data-loss bugs with and without the filter:
 *
 *  - without filtering, every intentional-drop register (the debug
 *    mirrors, the frame FIFO's drop path) appears as a false positive;
 *  - with filtering, those reports vanish (3 of the 4 FP registers -
 *    D1's mirror survives because the developer test never exercises
 *    its drop, the paper's one remaining false positive);
 *  - the filter's cost is the D11 false negative, where a real loss
 *    shares its register with an intentional drop.
 */

#include <cstdio>
#include <string>

#include "bench_util.hh"
#include "common/logging.hh"

using namespace hwdbg;
using namespace hwdbg::bugs;
using namespace hwdbg::bench;
using namespace hwdbg::core;

namespace
{

std::string
join(const std::set<std::string> &names)
{
    std::string out;
    for (const auto &name : names) {
        if (!out.empty())
            out += ", ";
        out += name;
    }
    return out.empty() ? "-" : out;
}

} // namespace

int
main()
{
    std::printf("LossCheck filtering ablation (7 data-loss bugs)\n");
    std::printf("%-4s %-26s %-22s %s\n", "Bug", "unfiltered report",
                "filtered report", "filter effect");
    std::printf("%s\n", std::string(86, '-').c_str());

    int fp_without = 0, fp_with = 0;
    int fp_registers_total = 0, fp_registers_filtered = 0;
    bool d11_tp_suppressed = false;

    for (const char *id : {"D1", "D2", "D3", "D4", "D11", "C2", "C4"}) {
        const TestbedBug &bug = bugById(id);
        // The register where the loss really happens. For D11 that is
        // the frame memory even though the filtered tool is expected to
        // report nothing (the documented false negative).
        std::string true_site = bug.expectedLossSite.empty()
                                    ? "memd" : bug.expectedLossSite;
        auto elaborated = buildDesign(bug, true);
        LossCheckResult inst =
            applyLossCheck(*elaborated.mod, *bug.lossCheck);

        auto run = [&](bool trigger) {
            auto sim = simulateModule(inst.module);
            if (trigger)
                runWorkload(bug, *sim);
            else
                driveGroundTruth(bug, *sim);
            return lossRegisters(sim->log());
        };
        std::set<std::string> raw = run(true);
        std::set<std::string> ground_truth = run(false);
        std::set<std::string> filtered;
        for (const auto &reg : raw)
            if (!ground_truth.count(reg))
                filtered.insert(reg);

        // Classify false positives relative to the true loss site.
        auto count_fps = [&](const std::set<std::string> &report) {
            int fps = 0;
            for (const auto &reg : report)
                if (reg != true_site)
                    ++fps;
            return fps;
        };
        int raw_fps = count_fps(raw);
        int filtered_fps = count_fps(filtered);
        fp_without += raw_fps;
        fp_with += filtered_fps;
        fp_registers_total += raw_fps;
        fp_registers_filtered += raw_fps - filtered_fps;

        std::string effect;
        if (raw.count(true_site) && !filtered.count(true_site)) {
            effect = "SUPPRESSED THE TRUE POSITIVE";
            d11_tp_suppressed = true;
        } else if (raw_fps > filtered_fps) {
            effect = csprintf("removed %d false positive(s)",
                              raw_fps - filtered_fps);
        } else if (raw_fps > 0) {
            effect = "false positive survives (GT has no drop there)";
        } else {
            effect = "no change";
        }

        std::printf("%-4s %-26s %-22s %s\n", id, join(raw).c_str(),
                    join(filtered).c_str(), effect.c_str());
    }

    std::printf("%s\n", std::string(86, '-').c_str());
    std::printf("False-positive registers: %d without filtering, %d "
                "with filtering (%d/%d filtered)\n",
                fp_without, fp_with, fp_registers_filtered,
                fp_registers_total);
    std::printf("Paper (§4.5.3): pre-existing tests filter 23/24 false "
                "positive registers; the cost is the D11 false "
                "negative.\n");

    bool ok = fp_with == 1 && fp_registers_filtered == 3 &&
              fp_registers_total == 4 && d11_tp_suppressed;
    std::printf("Shape match (most FPs filtered, one survives, one "
                "true positive lost): %s\n", ok ? "ok" : "FAIL");
    return ok ? 0 : 1;
}
