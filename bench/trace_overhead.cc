/**
 * @file
 * Overhead budget check for the per-eval trace hook (DESIGN.md §15),
 * mirroring cover_overhead.cc.
 *
 * The hook seam stays compiled into sim::Simulator for every build:
 * both exit paths of eval() test one member pointer. This benchmark
 * asserts both sides of the budget:
 *
 *  1. calibrates the ns cost of a never-taken pointer test + branch,
 *  2. measures the simulator's ns/cycle on a testbed design with no
 *     hook attached, counts evals per cycle from the eval sequence
 *     counter, and FAILS (exit 1) when the implied disabled-path
 *     overhead reaches 1%;
 *  3. measures the same workload with a TraceRecorder attached
 *     (every signal traced) and reports the enabled-path slowdown —
 *     informational: an attached recorder reads every traced signal
 *     per eval, which is the feature, not overhead.
 *
 * Throughput numbers are min-of-3 runs; with a path argument the
 * results land in a BENCH_trace_overhead.json trajectory file.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>

#include "bugbase/designs.hh"
#include "elab/elaborate.hh"
#include "hdl/parser.hh"
#include "hdl/preproc.hh"
#include "sim/simulator.hh"
#include "trace/trace.hh"

using namespace hwdbg;

namespace
{

using Clock = std::chrono::steady_clock;

double
nsSince(Clock::time_point begin)
{
    return std::chrono::duration<double, std::nano>(Clock::now() -
                                                    begin)
        .count();
}

/** ns per disabled hook test: a load of a null hook pointer and the
 *  never-taken branch on it, the exact shape eval() pays. */
double
calibrateDisabledHook()
{
    sim::EvalHook *volatile hook = nullptr;
    volatile uint64_t sink = 0;
    constexpr uint64_t kIters = 50'000'000;
    auto begin = Clock::now();
    for (uint64_t i = 0; i < kIters; ++i) {
        if (hook)
            sink = sink + i;
    }
    return nsSince(begin) / static_cast<double>(kIters);
}

std::unique_ptr<sim::Simulator>
makeWorkload()
{
    std::string src =
        hdl::preprocess(bugs::designSource("rsd"), {}, "rsd.v");
    hdl::Design design = hdl::parse(src, "rsd.v");
    return std::make_unique<sim::Simulator>(
        elab::elaborate(design, "rsd").mod);
}

double
simNsPerCycle(sim::Simulator &sim, uint32_t cycles)
{
    auto begin = Clock::now();
    for (uint32_t t = 0; t < cycles; ++t) {
        sim.poke("rst", Bits(1, t < 2 ? 1 : 0));
        sim.poke("in_valid", Bits(1, t & 1));
        sim.poke("in_data", Bits(8, t * 7));
        sim.poke("clk", Bits(1, 0));
        sim.eval();
        sim.poke("clk", Bits(1, 1));
        sim.eval();
    }
    return nsSince(begin) / cycles;
}

/** Min of three timed runs, shaving scheduler noise. */
double
bestNsPerCycle(sim::Simulator &sim, uint32_t cycles)
{
    double best = simNsPerCycle(sim, cycles);
    for (int run = 1; run < 3; ++run)
        best = std::min(best, simNsPerCycle(sim, cycles));
    return best;
}

} // namespace

int
main(int argc, char **argv)
{
    const char *jsonPath = argc > 1 ? argv[1] : nullptr;
    double hook_ns = calibrateDisabledHook();

    constexpr uint32_t kCycles = 20000;
    auto sim = makeWorkload();
    (void)simNsPerCycle(*sim, 2000); // warm up
    uint64_t seqBefore = sim->evalSeq();
    double off_ns = bestNsPerCycle(*sim, kCycles);
    // Hook sites fire once per eval; the sequence counter measures
    // evals/cycle exactly (3 timed runs of kCycles, 2 evals each).
    double evals_per_cycle =
        static_cast<double>(sim->evalSeq() - seqBefore) /
        (3.0 * kCycles);

    // Enabled path: a recorder over every signal, free-running ring.
    trace::TraceConfig cfg;
    cfg.budgetBytes = 1 << 20;
    trace::TraceRecorder recorder(*sim, cfg);
    recorder.attach();
    double on_ns = bestNsPerCycle(*sim, kCycles);
    recorder.detach();

    double implied_ns = evals_per_cycle * hook_ns;
    double disabled_pct = 100.0 * implied_ns / off_ns;
    double enabled_pct = 100.0 * (on_ns - off_ns) / off_ns;

    std::printf("trace_overhead: per-eval hook budget check\n");
    std::printf("  disabled hook         : %.3f ns/test\n", hook_ns);
    std::printf("  sim throughput (off)  : %.1f ns/cycle\n", off_ns);
    std::printf("  sim throughput (on)   : %.1f ns/cycle (%+.2f%%)\n",
                on_ns, enabled_pct);
    std::printf("  hook tests per cycle  : %.1f\n", evals_per_cycle);
    std::printf("  signals traced        : %zu (%llu change rows)\n",
                recorder.signals().size(),
                static_cast<unsigned long long>(recorder.samples()));
    std::printf("  implied disabled cost : %.3f ns/cycle = %.4f%%\n",
                implied_ns, disabled_pct);

    if (jsonPath) {
        FILE *f = std::fopen(jsonPath, "w");
        if (!f) {
            std::fprintf(stderr, "FATAL: cannot write %s\n", jsonPath);
            return 1;
        }
        std::fprintf(f,
                     "{\n  \"bench\": \"trace_overhead\",\n"
                     "  \"hook_ns\": %.4f,\n"
                     "  \"off_ns_per_cycle\": %.1f,\n"
                     "  \"on_ns_per_cycle\": %.1f,\n"
                     "  \"hook_tests_per_cycle\": %.1f,\n"
                     "  \"implied_disabled_pct\": %.4f,\n"
                     "  \"enabled_pct\": %.2f,\n"
                     "  \"gate_pct\": 1.0\n}\n",
                     hook_ns, off_ns, on_ns, evals_per_cycle,
                     disabled_pct, enabled_pct);
        std::fclose(f);
        std::printf("trajectory written to %s\n", jsonPath);
    }

    if (disabled_pct >= 1.0) {
        std::printf("FAIL: disabled-path overhead %.4f%% >= 1%%\n",
                    disabled_pct);
        return 1;
    }
    std::printf("PASS: disabled %.4f%% < 1%% (enabled %+.2f%% "
                "informational)\n",
                disabled_pct, enabled_pct);
    return 0;
}
