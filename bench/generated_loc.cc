/**
 * @file
 * Reproduces the §6.3 generated-code measurements: the lines of Verilog
 * the tools write on the developer's behalf. The paper reports that
 * SignalCat and the monitors generate and insert 72 lines on average,
 * while LossCheck generates 522-19,462 lines (the analysis code the
 * developer would otherwise write by hand). Our simplified designs are
 * far smaller than the originals, so the absolute counts scale down;
 * the bench verifies the relationship (LossCheck >> monitors) and
 * reports both.
 */

#include <cstdio>
#include <vector>

#include "bench_util.hh"

using namespace hwdbg;
using namespace hwdbg::bugs;
using namespace hwdbg::core;

int
main()
{
    std::printf("Generated instrumentation volume (lines of Verilog)\n");
    std::printf("%-4s %10s %10s %10s %14s %11s\n", "Bug", "FSM",
                "Stat", "Dep", "SignalCat", "LossCheck");
    std::printf("%s\n", std::string(66, '-').c_str());

    int monitor_total = 0;
    int monitor_count = 0;
    int lc_min = 1 << 30, lc_max = 0;

    for (const auto &bug : testbedBugs()) {
        int fsm_lines = 0, stat_lines = 0, dep_lines = 0;
        hdl::ModulePtr mod = buildDesign(bug, true).mod;
        if (bug.monitors.fsm) {
            auto result = applyFsmMonitor(*mod);
            fsm_lines = result.generatedLines;
            mod = result.module;
        }
        if (!bug.monitors.statEvents.empty()) {
            StatsMonitorOptions opts;
            for (const auto &[name, signal] : bug.monitors.statEvents)
                opts.events.push_back(
                    StatsEvent{name, hdl::parseExprText(signal)});
            auto result = applyStatsMonitor(*mod, opts);
            stat_lines = result.generatedLines;
            mod = result.module;
        }
        if (!bug.monitors.depVariable.empty()) {
            DepMonitorOptions opts;
            opts.variable = bug.monitors.depVariable;
            opts.cycles = bug.monitors.depCycles;
            auto result = applyDepMonitor(*mod, opts);
            dep_lines = result.generatedLines;
            mod = result.module;
        }
        SignalCatResult cat = applySignalCat(*mod);
        int monitor_lines =
            fsm_lines + stat_lines + dep_lines + cat.generatedLines;
        monitor_total += monitor_lines;
        ++monitor_count;

        int lc_lines = 0;
        if (bug.lossCheck) {
            auto inst = applyLossCheck(*buildDesign(bug, true).mod,
                                       *bug.lossCheck);
            SignalCatResult lc_cat = applySignalCat(*inst.module);
            lc_lines = inst.generatedLines + lc_cat.generatedLines;
            lc_min = std::min(lc_min, lc_lines);
            lc_max = std::max(lc_max, lc_lines);
        }

        std::printf("%-4s %10d %10d %10d %14d %11s\n", bug.id.c_str(),
                    fsm_lines, stat_lines, dep_lines,
                    cat.generatedLines,
                    lc_lines ? std::to_string(lc_lines).c_str() : "-");
    }

    int monitor_avg = monitor_total / monitor_count;
    std::printf("%s\n", std::string(66, '-').c_str());
    std::printf("SignalCat + monitors: %d generated lines per bug on "
                "average (paper: 72 on its full-size designs)\n",
                monitor_avg);
    std::printf("LossCheck (incl. its SignalCat logging): %d-%d lines "
                "(paper: 522-19,462 on its full-size designs)\n",
                lc_min, lc_max);

    // Shape: every tool writes nontrivial code, and LossCheck's
    // instrumentation is the largest per applicable bug.
    bool ok = monitor_avg > 10 && lc_min > 10;
    std::printf("Shape check (all tools generate substantial code): "
                "%s\n", ok ? "ok" : "FAIL");
    return ok ? 0 : 1;
}
