/**
 * @file
 * Overhead budget check for the coverage hooks (DESIGN.md §12),
 * mirroring debug_overhead.cc.
 *
 * Coverage support stays compiled into sim::Simulator for every build:
 * execStmt, the If/Case arm selection, the three value-changing store
 * paths, poke(), and eval()'s FSM sampling each test one member
 * pointer on their way through. This benchmark asserts both sides of
 * the budget:
 *
 *  1. calibrates the ns cost of a never-taken pointer test + branch,
 *  2. measures the simulator's ns/cycle on a testbed design with
 *     coverage detached, counts hook executions per cycle from an
 *     attached collector's events() counter, and FAILS (exit 1) when
 *     the implied disabled-path overhead reaches 1%;
 *  3. measures the same workload with a collector attached and FAILS
 *     when the enabled-path slowdown reaches 10%.
 *
 * Throughput numbers are min-of-3 runs: the budget is about the cost
 * the hooks add, not about scheduler noise.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>

#include "bugbase/designs.hh"
#include "elab/elaborate.hh"
#include "hdl/parser.hh"
#include "hdl/preproc.hh"
#include "sim/coverage.hh"
#include "sim/simulator.hh"

using namespace hwdbg;

namespace
{

using Clock = std::chrono::steady_clock;

double
nsSince(Clock::time_point begin)
{
    return std::chrono::duration<double, std::nano>(Clock::now() -
                                                    begin)
        .count();
}

/** ns per disabled coverage hook: a load of a null collector pointer
 *  and the never-taken branch on it, the exact shape every site pays. */
double
calibrateDisabledHook()
{
    sim::CoverageCollector *volatile collector = nullptr;
    volatile uint64_t sink = 0;
    constexpr uint64_t kIters = 50'000'000;
    auto begin = Clock::now();
    for (uint64_t i = 0; i < kIters; ++i) {
        if (collector)
            sink = sink + i;
    }
    return nsSince(begin) / static_cast<double>(kIters);
}

std::unique_ptr<sim::Simulator>
makeWorkload()
{
    std::string src =
        hdl::preprocess(bugs::designSource("rsd"), {}, "rsd.v");
    hdl::Design design = hdl::parse(src, "rsd.v");
    return std::make_unique<sim::Simulator>(
        elab::elaborate(design, "rsd").mod);
}

double
simNsPerCycle(sim::Simulator &sim, uint32_t cycles)
{
    auto begin = Clock::now();
    for (uint32_t t = 0; t < cycles; ++t) {
        sim.poke("rst", Bits(1, t < 2 ? 1 : 0));
        sim.poke("in_valid", Bits(1, t & 1));
        sim.poke("in_data", Bits(8, t * 7));
        sim.poke("clk", Bits(1, 0));
        sim.eval();
        sim.poke("clk", Bits(1, 1));
        sim.eval();
    }
    return nsSince(begin) / cycles;
}

/** Min of three timed runs, shaving scheduler noise. */
double
bestNsPerCycle(sim::Simulator &sim, uint32_t cycles)
{
    double best = simNsPerCycle(sim, cycles);
    for (int run = 1; run < 3; ++run)
        best = std::min(best, simNsPerCycle(sim, cycles));
    return best;
}

} // namespace

int
main()
{
    double hook_ns = calibrateDisabledHook();

    constexpr uint32_t kCycles = 20000;
    auto sim = makeWorkload();
    (void)simNsPerCycle(*sim, 2000); // warm up
    double off_ns = bestNsPerCycle(*sim, kCycles);

    // Enabled path: same workload with a collector attached. events()
    // counts every mark-hook execution, giving hooks/cycle for the
    // implied-disabled-cost computation below.
    sim::CoverageItems items = sim::buildCoverageItems(sim->design());
    sim::CoverageCollector collector(items);
    sim->enableCoverage(&collector);
    double on_ns = bestNsPerCycle(*sim, kCycles);
    double hits_per_cycle =
        static_cast<double>(collector.events()) / (3.0 * kCycles);
    sim->enableCoverage(nullptr);

    sim::CoverageTotals totals = collector.totals();

    double implied_ns = hits_per_cycle * hook_ns;
    double disabled_pct = 100.0 * implied_ns / off_ns;
    double enabled_pct = 100.0 * (on_ns - off_ns) / off_ns;

    std::printf("cover_overhead: coverage hook budget check\n");
    std::printf("  disabled hook         : %.3f ns/hit\n", hook_ns);
    std::printf("  sim throughput (off)  : %.1f ns/cycle\n", off_ns);
    std::printf("  sim throughput (on)   : %.1f ns/cycle (%+.2f%%)\n",
                on_ns, enabled_pct);
    std::printf("  hook hits per cycle   : %.1f\n", hits_per_cycle);
    std::printf("  goals covered         : %llu/%llu\n",
                static_cast<unsigned long long>(totals.covered()),
                static_cast<unsigned long long>(totals.total()));
    std::printf("  implied disabled cost : %.3f ns/cycle = %.4f%%\n",
                implied_ns, disabled_pct);

    bool ok = true;
    if (disabled_pct >= 1.0) {
        std::printf("FAIL: disabled-path overhead %.4f%% >= 1%%\n",
                    disabled_pct);
        ok = false;
    }
    if (enabled_pct >= 10.0) {
        std::printf("FAIL: enabled-path overhead %.2f%% >= 10%%\n",
                    enabled_pct);
        ok = false;
    }
    if (!ok)
        return 1;
    std::printf("PASS: disabled %.4f%% < 1%%, enabled %.2f%% < 10%%\n",
                disabled_pct, enabled_pct);
    return 0;
}
