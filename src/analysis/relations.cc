#include "analysis/relations.hh"

#include <functional>

#include "analysis/exprutil.hh"
#include "common/logging.hh"
#include "elab/ip_models.hh"
#include "sim/design.hh"

namespace hwdbg::analysis
{

using namespace hdl;

namespace
{

/** First memory-element read of @p mem inside @p expr (its index). */
ExprPtr
findMemoryRead(const ExprPtr &expr, const std::string &mem)
{
    ExprPtr found;
    std::function<void(const ExprPtr &)> walk =
        [&](const ExprPtr &node) {
            if (!node || found)
                return;
            switch (node->kind) {
              case ExprKind::Index: {
                const auto *idx = node->as<IndexExpr>();
                if (idx->base == mem) {
                    found = idx->index;
                    return;
                }
                walk(idx->index);
                break;
              }
              case ExprKind::Unary:
                walk(node->as<UnaryExpr>()->arg);
                break;
              case ExprKind::Binary:
                walk(node->as<BinaryExpr>()->lhs);
                walk(node->as<BinaryExpr>()->rhs);
                break;
              case ExprKind::Ternary:
                walk(node->as<TernaryExpr>()->cond);
                walk(node->as<TernaryExpr>()->thenExpr);
                walk(node->as<TernaryExpr>()->elseExpr);
                break;
              case ExprKind::Concat:
                for (const auto &part : node->as<ConcatExpr>()->parts)
                    walk(part);
                break;
              case ExprKind::Repeat:
                walk(node->as<RepeatExpr>()->inner);
                break;
              default:
                break;
            }
        };
    walk(expr);
    return found;
}

} // namespace

RelationTable::RelationTable(const Module &mod) : graph_(mod)
{
    for (const auto &item : mod.items) {
        if (item->kind != ItemKind::Net)
            continue;
        const auto *net = item->as<NetItem>();
        if (net->array)
            memories_[net->name] =
                sim::constU64(net->array->msb) + 1;
    }

    for (const auto &ga : collectAssigns(mod)) {
        if (!ga.sequential)
            continue;
        // Memory element write index, when the target is mem[i].
        ExprPtr dst_index;
        if (ga.lhs->kind == ExprKind::Index &&
            memories_.count(ga.lhs->as<IndexExpr>()->base))
            dst_index = ga.lhs->as<IndexExpr>()->index;

        for (const auto &dst : lvalueTargets(ga.lhs)) {
            std::set<std::string> srcs;
            for (const auto &sig : collectSignals(ga.rhs)) {
                auto stateful = graph_.statefulSources(sig);
                srcs.insert(stateful.begin(), stateful.end());
            }
            for (const auto &src : srcs) {
                PropRelation rel;
                rel.src = src;
                rel.dst = dst;
                rel.cond = cloneExpr(ga.guard);
                rel.clock = ga.clock;
                rel.dstIndex =
                    dst_index ? cloneExpr(dst_index) : nullptr;
                if (memories_.count(src))
                    rel.srcIndex = findMemoryRead(ga.rhs, src);
                rels_.push_back(std::move(rel));
            }
        }
    }

    for (const auto &item : mod.items)
        if (item->kind == ItemKind::Instance)
            addIpRelations(*item->as<InstanceItem>());
}

uint64_t
RelationTable::memorySize(const std::string &name) const
{
    auto it = memories_.find(name);
    return it == memories_.end() ? 0 : it->second;
}

void
RelationTable::addIpRelations(const InstanceItem &inst)
{
    std::map<std::string, ExprPtr> actuals;
    for (const auto &conn : inst.conns)
        if (conn.actual)
            actuals[conn.formal] = conn.actual;

    auto port = [&](const char *formal) -> ExprPtr {
        auto it = actuals.find(formal);
        return it == actuals.end() ? nullptr : it->second;
    };
    auto emit = [&](const char *in, const char *out, ExprPtr cond) {
        ExprPtr in_expr = port(in);
        ExprPtr out_expr = port(out);
        if (!in_expr || !out_expr)
            return;
        std::set<std::string> srcs;
        for (const auto &sig : collectSignals(in_expr)) {
            auto stateful = graph_.statefulSources(sig);
            srcs.insert(stateful.begin(), stateful.end());
        }
        for (const auto &dst : lvalueTargets(out_expr)) {
            for (const auto &src : srcs) {
                PropRelation rel;
                rel.src = src;
                rel.dst = dst;
                rel.cond = cloneExpr(cond);
                rel.viaIp = true;
                rels_.push_back(std::move(rel));
            }
        }
    };

    const elab::IpModel *model = elab::lookupIpModel(inst.moduleName);
    if (!model)
        return;
    for (const auto &path : model->dataPaths) {
        // Build the propagation condition from the connected actuals,
        // e.g. scfifo: data ~>[wrreq && !full] q (an accepted push).
        ExprPtr cond = mkTrue();
        for (const auto &term : path.condTerms) {
            ExprPtr actual = port(term.port.c_str());
            if (!actual)
                continue; // unconnected condition port: unconstrained
            cond = mkAnd(cond, term.negated
                                   ? mkNot(cloneExpr(actual))
                                   : cloneExpr(actual));
        }
        emit(path.in.c_str(), path.out.c_str(), cond);
    }
}

std::vector<const PropRelation *>
RelationTable::into(const std::string &dst) const
{
    std::vector<const PropRelation *> out;
    for (const auto &rel : rels_)
        if (rel.dst == dst)
            out.push_back(&rel);
    return out;
}

std::vector<const PropRelation *>
RelationTable::outOf(const std::string &src) const
{
    std::vector<const PropRelation *> out;
    for (const auto &rel : rels_)
        if (rel.src == src)
            out.push_back(&rel);
    return out;
}

std::set<std::string>
RelationTable::propagationPath(const std::string &src,
                               const std::string &sink) const
{
    auto reach = [&](const std::string &from, bool forward) {
        std::set<std::string> seen{from};
        std::vector<std::string> work{from};
        while (!work.empty()) {
            std::string cur = work.back();
            work.pop_back();
            auto next = forward ? outOf(cur) : into(cur);
            for (const PropRelation *rel : next) {
                const std::string &other = forward ? rel->dst : rel->src;
                if (seen.insert(other).second)
                    work.push_back(other);
            }
        }
        return seen;
    };

    std::set<std::string> fwd = reach(src, true);
    if (!fwd.count(sink))
        return {};
    std::set<std::string> bwd = reach(sink, false);
    std::set<std::string> path;
    for (const auto &name : fwd)
        if (bwd.count(name))
            path.insert(name);
    return path;
}

} // namespace hwdbg::analysis
