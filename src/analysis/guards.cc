#include "analysis/guards.hh"

#include "common/logging.hh"

namespace hwdbg::analysis
{

using namespace hdl;

std::string
processClock(const AlwaysItem &proc)
{
    for (const auto &sens : proc.sens)
        if (sens.edge == EdgeKind::Posedge)
            return sens.signal;
    return proc.sens.empty() ? std::string() : proc.sens[0].signal;
}

namespace
{

/** Equality of the case selector with one label. */
ExprPtr
labelMatch(const ExprPtr &selector, const ExprPtr &label)
{
    return mkEq(cloneExpr(selector), cloneExpr(label));
}

/** Disjunction of matches over all labels of a case item. */
ExprPtr
itemMatch(const ExprPtr &selector, const CaseItem &item)
{
    ExprPtr any = mkFalse();
    for (const auto &label : item.labels)
        any = mkOr(any, labelMatch(selector, label));
    return any;
}

template <typename OnAssign, typename OnDisplay>
void
walk(const StmtPtr &stmt, const ExprPtr &guard, const OnAssign &on_assign,
     const OnDisplay &on_display)
{
    if (!stmt)
        return;
    switch (stmt->kind) {
      case StmtKind::Block:
        for (const auto &sub : stmt->as<BlockStmt>()->stmts)
            walk(sub, guard, on_assign, on_display);
        break;
      case StmtKind::If: {
        const auto *branch = stmt->as<IfStmt>();
        walk(branch->thenStmt,
             mkAnd(cloneExpr(guard), cloneExpr(branch->cond)), on_assign,
             on_display);
        if (branch->elseStmt)
            walk(branch->elseStmt,
                 mkAnd(cloneExpr(guard), mkNot(cloneExpr(branch->cond))),
                 on_assign, on_display);
        break;
      }
      case StmtKind::Case: {
        const auto *sel = stmt->as<CaseStmt>();
        // Guard for item i: this item matches and no earlier item does.
        ExprPtr no_earlier = mkTrue();
        const CaseItem *dflt = nullptr;
        for (const auto &item : sel->items) {
            if (item.labels.empty()) {
                dflt = &item;
                continue;
            }
            ExprPtr match = itemMatch(sel->selector, item);
            walk(item.body,
                 mkAnd(mkAnd(cloneExpr(guard), cloneExpr(no_earlier)),
                       match),
                 on_assign, on_display);
            no_earlier = mkAnd(no_earlier,
                               mkNot(itemMatch(sel->selector, item)));
        }
        if (dflt)
            walk(dflt->body, mkAnd(cloneExpr(guard), no_earlier),
                 on_assign, on_display);
        break;
      }
      case StmtKind::Assign:
        on_assign(stmt->as<AssignStmt>(), guard);
        break;
      case StmtKind::Display:
        on_display(stmt->as<DisplayStmt>(), guard);
        break;
      case StmtKind::Finish:
      case StmtKind::Null:
        break;
    }
}

} // namespace

std::vector<GuardedAssign>
collectAssigns(const Module &mod)
{
    std::vector<GuardedAssign> out;
    for (const auto &item : mod.items) {
        if (item->kind == ItemKind::ContAssign) {
            const auto *cont = item->as<ContAssignItem>();
            GuardedAssign ga;
            ga.lhs = cont->lhs;
            ga.rhs = cont->rhs;
            ga.guard = mkTrue();
            ga.sequential = false;
            ga.cont = cont;
            out.push_back(std::move(ga));
            continue;
        }
        if (item->kind != ItemKind::Always)
            continue;
        const auto *proc = item->as<AlwaysItem>();
        bool clocked = !proc->isComb;
        std::string clock = clocked ? processClock(*proc) : std::string();
        walk(proc->body, mkTrue(),
             [&](const AssignStmt *stmt, const ExprPtr &guard) {
                 GuardedAssign ga;
                 ga.lhs = stmt->lhs;
                 ga.rhs = stmt->rhs;
                 ga.guard = guard;
                 ga.sequential = clocked && stmt->nonblocking;
                 ga.clock = clock;
                 ga.proc = proc;
                 ga.stmt = stmt;
                 out.push_back(std::move(ga));
             },
             [](const DisplayStmt *, const ExprPtr &) {});
    }
    return out;
}

std::vector<GuardedDisplay>
collectDisplays(const Module &mod)
{
    std::vector<GuardedDisplay> out;
    for (const auto &item : mod.items) {
        if (item->kind != ItemKind::Always)
            continue;
        const auto *proc = item->as<AlwaysItem>();
        if (proc->isComb)
            continue;
        walk(proc->body, mkTrue(),
             [](const AssignStmt *, const ExprPtr &) {},
             [&](const DisplayStmt *stmt, const ExprPtr &guard) {
                 GuardedDisplay gd;
                 gd.stmt = stmt;
                 gd.guard = guard;
                 gd.clock = processClock(*proc);
                 gd.proc = proc;
                 out.push_back(std::move(gd));
             });
    }
    return out;
}

} // namespace hwdbg::analysis
