/**
 * @file
 * Signal-level dependency graph over an elaborated module.
 *
 * Nodes are signal names; edges record data dependencies (RHS signal ->
 * assigned signal) and control dependencies (guard signal -> assigned
 * signal). Sequential edges (nonblocking assignments in clocked
 * processes) cost one cycle; combinational edges (continuous assigns and
 * always @* blocks) are free. Blackbox primitives contribute edges from
 * their developer-provided port dependency models, exactly as
 * Dependency Monitor and LossCheck require for closed-source IPs (§4.3,
 * §4.5.1).
 */

#ifndef HWDBG_ANALYSIS_DEPGRAPH_HH
#define HWDBG_ANALYSIS_DEPGRAPH_HH

#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/guards.hh"
#include "hdl/ast.hh"

namespace hwdbg::analysis
{

enum class DepKind { Comb, Seq };

struct DepEdge
{
    std::string src;
    std::string dst;
    DepKind kind = DepKind::Comb;
    /** False for control dependencies (src appears in the guard). */
    bool isData = true;
    /** Structural condition under which the dependency is active. */
    hdl::ExprPtr cond;
    /** True when contributed by a blackbox IP model. */
    bool viaIp = false;
    std::string ipInstance;
};

class DepGraph
{
  public:
    explicit DepGraph(const hdl::Module &mod);

    const std::vector<DepEdge> &edges() const { return edges_; }
    std::vector<const DepEdge *> edgesInto(const std::string &name) const;
    std::vector<const DepEdge *> edgesOutOf(const std::string &name) const;

    /** True when the signal is a register (reg declaration). */
    bool isReg(const std::string &name) const;
    /** True when the signal is a top-level input port. */
    bool isInput(const std::string &name) const;
    /** True when the signal is driven by a primitive output port. */
    bool isIpOutput(const std::string &name) const;
    /**
     * True for relation endpoints: registers, top-level inputs, and
     * primitive outputs (state-holding or externally-produced values).
     */
    bool isStateful(const std::string &name) const;

    /**
     * Stateful signals that combinationally feed @p name (following
     * comb edges backwards through wires). If @p name itself is
     * stateful, returns {name}.
     */
    std::set<std::string> statefulSources(const std::string &name) const;

    /**
     * Combinational cycles: strongly connected components of the
     * subgraph restricted to Comb edges (data and control), plus
     * single-node self-loops. Each cycle lists its members in a
     * deterministic order; the cycle list itself is sorted by first
     * member. A zero-delay loop like this oscillates or deadlocks in
     * hardware, so the linter reports every occurrence.
     */
    std::vector<std::vector<std::string>> combCycles() const;

    /**
     * Registers in the dependency chain of @p name within @p cycles
     * sequential steps, following both data and control dependencies
     * (configurable). Includes @p name itself when it is a register.
     * Result maps register name -> minimum cycle distance.
     */
    std::map<std::string, int>
    backwardSlice(const std::string &name, int cycles, bool follow_data,
                  bool follow_control) const;

  private:
    void addAssignEdges(const GuardedAssign &ga);
    void addIpEdges(const hdl::InstanceItem &inst);

    const hdl::Module &mod_;
    std::vector<DepEdge> edges_;
    std::map<std::string, std::vector<size_t>> into_;
    std::map<std::string, std::vector<size_t>> outOf_;
    std::set<std::string> regs_;
    std::set<std::string> inputs_;
    std::set<std::string> ipOutputs_;
};

} // namespace hwdbg::analysis

#endif // HWDBG_ANALYSIS_DEPGRAPH_HH
