#include "analysis/exprutil.hh"

#include "common/logging.hh"

namespace hwdbg::analysis
{

using namespace hdl;

std::set<std::string>
collectSignals(const ExprPtr &expr)
{
    std::set<std::string> out;
    forEachIdent(expr, [&](const std::string &name) { out.insert(name); });
    return out;
}

std::set<std::string>
lvalueTargets(const ExprPtr &lhs)
{
    std::set<std::string> out;
    switch (lhs->kind) {
      case ExprKind::Id:
        out.insert(lhs->as<IdExpr>()->name);
        break;
      case ExprKind::Index:
        out.insert(lhs->as<IndexExpr>()->base);
        break;
      case ExprKind::Range:
        out.insert(lhs->as<RangeExpr>()->base);
        break;
      case ExprKind::Concat:
        for (const auto &part : lhs->as<ConcatExpr>()->parts) {
            auto sub = lvalueTargets(part);
            out.insert(sub.begin(), sub.end());
        }
        break;
      default:
        break;
    }
    return out;
}

std::map<std::string, ExprPtr>
wireDefinitions(const Module &mod)
{
    std::map<std::string, ExprPtr> defs;
    std::set<std::string> multi;
    for (const auto &item : mod.items) {
        if (item->kind != ItemKind::ContAssign)
            continue;
        const auto *assign = item->as<ContAssignItem>();
        if (assign->lhs->kind != ExprKind::Id)
            continue; // partial drivers stay opaque
        const std::string &name = assign->lhs->as<IdExpr>()->name;
        if (defs.count(name) || multi.count(name)) {
            defs.erase(name);
            multi.insert(name);
            continue;
        }
        defs[name] = assign->rhs;
    }
    return defs;
}

namespace
{

ExprPtr
inlineWiresRec(const ExprPtr &expr,
               const std::map<std::string, ExprPtr> &defs,
               std::set<std::string> &expanding)
{
    if (!expr)
        return nullptr;
    if (expr->kind == ExprKind::Id) {
        const std::string &name = expr->as<IdExpr>()->name;
        auto it = defs.find(name);
        if (it == defs.end() || expanding.count(name))
            return cloneExpr(expr);
        expanding.insert(name);
        ExprPtr inlined = inlineWiresRec(it->second, defs, expanding);
        expanding.erase(name);
        return inlined;
    }

    ExprPtr copy = cloneExpr(expr);
    switch (copy->kind) {
      case ExprKind::Unary: {
        auto *un = copy->as<UnaryExpr>();
        un->arg = inlineWiresRec(un->arg, defs, expanding);
        break;
      }
      case ExprKind::Binary: {
        auto *bin = copy->as<BinaryExpr>();
        bin->lhs = inlineWiresRec(bin->lhs, defs, expanding);
        bin->rhs = inlineWiresRec(bin->rhs, defs, expanding);
        break;
      }
      case ExprKind::Ternary: {
        auto *tern = copy->as<TernaryExpr>();
        tern->cond = inlineWiresRec(tern->cond, defs, expanding);
        tern->thenExpr = inlineWiresRec(tern->thenExpr, defs, expanding);
        tern->elseExpr = inlineWiresRec(tern->elseExpr, defs, expanding);
        break;
      }
      case ExprKind::Concat: {
        auto *cat = copy->as<ConcatExpr>();
        for (auto &part : cat->parts)
            part = inlineWiresRec(part, defs, expanding);
        break;
      }
      case ExprKind::Repeat: {
        auto *rep = copy->as<RepeatExpr>();
        rep->inner = inlineWiresRec(rep->inner, defs, expanding);
        break;
      }
      case ExprKind::Index: {
        auto *idx = copy->as<IndexExpr>();
        idx->index = inlineWiresRec(idx->index, defs, expanding);
        break;
      }
      default:
        break;
    }
    return copy;
}

} // namespace

ExprPtr
inlineWires(const ExprPtr &expr, const std::map<std::string, ExprPtr> &defs)
{
    std::set<std::string> expanding;
    return inlineWiresRec(expr, defs, expanding);
}

} // namespace hwdbg::analysis
