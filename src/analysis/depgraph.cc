#include "analysis/depgraph.hh"

#include <algorithm>
#include <queue>

#include "analysis/exprutil.hh"
#include "common/logging.hh"
#include "elab/elaborate.hh"
#include "elab/ip_models.hh"

namespace hwdbg::analysis
{

using namespace hdl;

DepGraph::DepGraph(const Module &mod) : mod_(mod)
{
    for (const auto &item : mod.items) {
        if (item->kind != ItemKind::Net)
            continue;
        const auto *net = item->as<NetItem>();
        if (net->net == NetKind::Reg)
            regs_.insert(net->name);
        if (net->dir == PortDir::Input)
            inputs_.insert(net->name);
    }

    for (const auto &item : mod.items) {
        if (item->kind != ItemKind::Instance)
            continue;
        const auto *inst = item->as<InstanceItem>();
        // Primitive output ports drive their connected signals.
        const elab::IpModel *model =
            elab::lookupIpModel(inst->moduleName);
        if (!model)
            continue;
        for (const auto &conn : inst->conns) {
            if (!conn.actual || !model->outputs.count(conn.formal))
                continue;
            for (const auto &target : lvalueTargets(conn.actual))
                ipOutputs_.insert(target);
        }
    }

    for (const auto &ga : collectAssigns(mod))
        addAssignEdges(ga);
    for (const auto &item : mod.items)
        if (item->kind == ItemKind::Instance)
            addIpEdges(*item->as<InstanceItem>());

    for (size_t i = 0; i < edges_.size(); ++i) {
        into_[edges_[i].dst].push_back(i);
        outOf_[edges_[i].src].push_back(i);
    }
}

void
DepGraph::addAssignEdges(const GuardedAssign &ga)
{
    DepKind kind = ga.sequential ? DepKind::Seq : DepKind::Comb;
    std::set<std::string> data_srcs = collectSignals(ga.rhs);
    std::set<std::string> ctrl_srcs = collectSignals(ga.guard);
    // Dynamic lvalue indices are control dependencies of the target.
    if (ga.lhs->kind == ExprKind::Index) {
        auto idx_srcs = collectSignals(ga.lhs->as<IndexExpr>()->index);
        ctrl_srcs.insert(idx_srcs.begin(), idx_srcs.end());
    }
    for (const auto &dst : lvalueTargets(ga.lhs)) {
        for (const auto &src : data_srcs)
            edges_.push_back(
                DepEdge{src, dst, kind, true, ga.guard, false, ""});
        for (const auto &src : ctrl_srcs)
            edges_.push_back(
                DepEdge{src, dst, kind, false, ga.guard, false, ""});
    }
}

void
DepGraph::addIpEdges(const InstanceItem &inst)
{
    // Developer-provided IP dependency models (§4.3): which inputs each
    // output depends on, and whether the dependency carries data.
    const elab::IpModel *model = elab::lookupIpModel(inst.moduleName);
    if (!model)
        return;

    std::map<std::string, ExprPtr> actuals;
    for (const auto &conn : inst.conns)
        if (conn.actual)
            actuals[conn.formal] = conn.actual;

    for (const auto &edge : model->deps) {
        auto out_it = actuals.find(edge.out);
        auto in_it = actuals.find(edge.in);
        if (out_it == actuals.end() || in_it == actuals.end())
            continue;
        for (const auto &dst : lvalueTargets(out_it->second)) {
            for (const auto &src : collectSignals(in_it->second)) {
                edges_.push_back(DepEdge{src, dst, DepKind::Seq,
                                         edge.isData, mkTrue(), true,
                                         inst.instName});
            }
        }
    }
}

std::vector<const DepEdge *>
DepGraph::edgesInto(const std::string &name) const
{
    std::vector<const DepEdge *> out;
    auto it = into_.find(name);
    if (it != into_.end())
        for (size_t idx : it->second)
            out.push_back(&edges_[idx]);
    return out;
}

std::vector<const DepEdge *>
DepGraph::edgesOutOf(const std::string &name) const
{
    std::vector<const DepEdge *> out;
    auto it = outOf_.find(name);
    if (it != outOf_.end())
        for (size_t idx : it->second)
            out.push_back(&edges_[idx]);
    return out;
}

bool
DepGraph::isReg(const std::string &name) const
{
    return regs_.count(name) != 0;
}

bool
DepGraph::isInput(const std::string &name) const
{
    return inputs_.count(name) != 0;
}

bool
DepGraph::isIpOutput(const std::string &name) const
{
    return ipOutputs_.count(name) != 0;
}

bool
DepGraph::isStateful(const std::string &name) const
{
    return isReg(name) || isInput(name) || isIpOutput(name);
}

std::set<std::string>
DepGraph::statefulSources(const std::string &name) const
{
    if (isStateful(name))
        return {name};
    std::set<std::string> out;
    std::set<std::string> visited{name};
    std::vector<std::string> work{name};
    while (!work.empty()) {
        std::string cur = work.back();
        work.pop_back();
        for (const DepEdge *edge : edgesInto(cur)) {
            if (edge->kind != DepKind::Comb || !edge->isData)
                continue;
            if (isStateful(edge->src)) {
                out.insert(edge->src);
            } else if (visited.insert(edge->src).second) {
                work.push_back(edge->src);
            }
        }
    }
    return out;
}

std::vector<std::vector<std::string>>
DepGraph::combCycles() const
{
    // Adjacency over Comb edges only, deduplicated.
    std::map<std::string, std::set<std::string>> adj;
    std::set<std::string> selfLoops;
    for (const auto &edge : edges_) {
        if (edge.kind != DepKind::Comb)
            continue;
        if (edge.src == edge.dst)
            selfLoops.insert(edge.src);
        else
            adj[edge.src].insert(edge.dst);
    }

    // Iterative Tarjan SCC.
    struct NodeState
    {
        int index = -1;
        int lowlink = -1;
        bool onStack = false;
    };
    std::map<std::string, NodeState> state;
    std::vector<std::string> stack;
    std::vector<std::vector<std::string>> cycles;
    int counter = 0;

    struct Frame
    {
        std::string node;
        std::set<std::string>::const_iterator next, end;
    };

    auto strongconnect = [&](const std::string &root) {
        static const std::set<std::string> empty;
        std::vector<Frame> frames;
        auto open = [&](const std::string &node) {
            auto &ns = state[node];
            ns.index = ns.lowlink = counter++;
            ns.onStack = true;
            stack.push_back(node);
            auto it = adj.find(node);
            const auto &succ = it == adj.end() ? empty : it->second;
            frames.push_back(Frame{node, succ.begin(), succ.end()});
        };
        open(root);
        while (!frames.empty()) {
            Frame &frame = frames.back();
            if (frame.next != frame.end) {
                const std::string &succ = *frame.next++;
                auto it = state.find(succ);
                if (it == state.end() || it->second.index < 0) {
                    open(succ);
                } else if (it->second.onStack) {
                    auto &ns = state[frame.node];
                    ns.lowlink =
                        std::min(ns.lowlink, it->second.index);
                }
                continue;
            }
            auto &ns = state[frame.node];
            if (ns.lowlink == ns.index) {
                std::vector<std::string> scc;
                while (true) {
                    std::string member = stack.back();
                    stack.pop_back();
                    state[member].onStack = false;
                    scc.push_back(member);
                    if (member == frame.node)
                        break;
                }
                if (scc.size() > 1) {
                    std::sort(scc.begin(), scc.end());
                    cycles.push_back(std::move(scc));
                }
            }
            std::string done = frame.node;
            frames.pop_back();
            if (!frames.empty()) {
                auto &parent = state[frames.back().node];
                parent.lowlink =
                    std::min(parent.lowlink, state[done].lowlink);
            }
        }
    };

    for (const auto &[node, succ] : adj) {
        (void)succ;
        auto it = state.find(node);
        if (it == state.end() || it->second.index < 0)
            strongconnect(node);
    }
    for (const auto &node : selfLoops)
        cycles.push_back({node});

    std::sort(cycles.begin(), cycles.end());
    return cycles;
}

std::map<std::string, int>
DepGraph::backwardSlice(const std::string &name, int cycles,
                        bool follow_data, bool follow_control) const
{
    std::map<std::string, int> best; // min distance per visited signal
    std::map<std::string, int> result;
    std::queue<std::pair<std::string, int>> work;
    work.push({name, 0});
    best[name] = 0;

    while (!work.empty()) {
        auto [cur, dist] = work.front();
        work.pop();
        if (isReg(cur) || isIpOutput(cur)) {
            auto it = result.find(cur);
            if (it == result.end() || dist < it->second)
                result[cur] = dist;
        }
        for (const DepEdge *edge : edgesInto(cur)) {
            if (edge->isData && !follow_data)
                continue;
            if (!edge->isData && !follow_control)
                continue;
            int next = dist + (edge->kind == DepKind::Seq ? 1 : 0);
            if (next > cycles)
                continue;
            auto it = best.find(edge->src);
            if (it != best.end() && it->second <= next)
                continue;
            best[edge->src] = next;
            work.push({edge->src, next});
        }
    }
    return result;
}

} // namespace hwdbg::analysis
