/**
 * @file
 * Register-level propagation relations (LossCheck §4.5.1).
 *
 * A relation X ~>[cond] Y means the value stored in stateful signal X
 * propagates into stateful signal Y at the next cycle whenever cond holds
 * at the current cycle. Relations come from nonblocking assignments in
 * clocked processes (with combinational wires traced back to their
 * stateful sources) and from blackbox IP models (e.g. a FIFO's data input
 * propagates to its q output when wrreq && !full).
 */

#ifndef HWDBG_ANALYSIS_RELATIONS_HH
#define HWDBG_ANALYSIS_RELATIONS_HH

#include <set>
#include <string>
#include <vector>

#include "analysis/depgraph.hh"

namespace hwdbg::analysis
{

struct PropRelation
{
    std::string src;
    std::string dst;
    /** Condition under which the propagation happens (may reference
     *  combinational wires of the design). */
    hdl::ExprPtr cond;
    bool viaIp = false;
    std::string clock;
    /** When dst is a memory written as dst[i] <= ...: the index i. */
    hdl::ExprPtr dstIndex;
    /** When src is a memory read as src[j]: the index j. */
    hdl::ExprPtr srcIndex;
};

class RelationTable
{
  public:
    explicit RelationTable(const hdl::Module &mod);

    const std::vector<PropRelation> &relations() const { return rels_; }
    const DepGraph &graph() const { return graph_; }

    std::vector<const PropRelation *> into(const std::string &dst) const;
    std::vector<const PropRelation *> outOf(const std::string &src) const;

    /**
     * The stateful signals on any propagation sequence from @p src to
     * @p sink (inclusive). Empty when the sink is unreachable.
     */
    std::set<std::string> propagationPath(const std::string &src,
                                          const std::string &sink) const;

    /** True when the signal is a memory (reg array). */
    bool isMemory(const std::string &name) const
    {
        return memories_.count(name) != 0;
    }

    /** Number of elements of a memory. */
    uint64_t memorySize(const std::string &name) const;

  private:
    void addIpRelations(const hdl::InstanceItem &inst);

    DepGraph graph_;
    std::vector<PropRelation> rels_;
    std::map<std::string, uint64_t> memories_;
};

} // namespace hwdbg::analysis

#endif // HWDBG_ANALYSIS_RELATIONS_HH
