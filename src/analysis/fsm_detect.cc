#include "analysis/fsm_detect.hh"

#include <algorithm>
#include <map>
#include <set>

#include "analysis/exprutil.hh"
#include "common/logging.hh"
#include "sim/design.hh"

namespace hwdbg::analysis
{

using namespace hdl;

namespace
{

/** Visit every expression node in a tree. */
void
forEachExprNode(const ExprPtr &expr,
                const std::function<void(const ExprPtr &)> &fn)
{
    if (!expr)
        return;
    fn(expr);
    switch (expr->kind) {
      case ExprKind::Unary:
        forEachExprNode(expr->as<UnaryExpr>()->arg, fn);
        break;
      case ExprKind::Binary:
        forEachExprNode(expr->as<BinaryExpr>()->lhs, fn);
        forEachExprNode(expr->as<BinaryExpr>()->rhs, fn);
        break;
      case ExprKind::Ternary:
        forEachExprNode(expr->as<TernaryExpr>()->cond, fn);
        forEachExprNode(expr->as<TernaryExpr>()->thenExpr, fn);
        forEachExprNode(expr->as<TernaryExpr>()->elseExpr, fn);
        break;
      case ExprKind::Concat:
        for (const auto &part : expr->as<ConcatExpr>()->parts)
            forEachExprNode(part, fn);
        break;
      case ExprKind::Repeat:
        forEachExprNode(expr->as<RepeatExpr>()->count, fn);
        forEachExprNode(expr->as<RepeatExpr>()->inner, fn);
        break;
      case ExprKind::Index:
        forEachExprNode(expr->as<IndexExpr>()->index, fn);
        break;
      case ExprKind::Range:
        forEachExprNode(expr->as<RangeExpr>()->msb, fn);
        forEachExprNode(expr->as<RangeExpr>()->lsb, fn);
        break;
      default:
        break;
    }
}

void
forEachExprInStmt(const StmtPtr &stmt,
                  const std::function<void(const ExprPtr &)> &fn)
{
    if (!stmt)
        return;
    switch (stmt->kind) {
      case StmtKind::Block:
        for (const auto &sub : stmt->as<BlockStmt>()->stmts)
            forEachExprInStmt(sub, fn);
        break;
      case StmtKind::If:
        forEachExprNode(stmt->as<IfStmt>()->cond, fn);
        forEachExprInStmt(stmt->as<IfStmt>()->thenStmt, fn);
        forEachExprInStmt(stmt->as<IfStmt>()->elseStmt, fn);
        break;
      case StmtKind::Case:
        forEachExprNode(stmt->as<CaseStmt>()->selector, fn);
        for (const auto &item : stmt->as<CaseStmt>()->items) {
            for (const auto &label : item.labels)
                forEachExprNode(label, fn);
            forEachExprInStmt(item.body, fn);
        }
        break;
      case StmtKind::Assign:
        forEachExprNode(stmt->as<AssignStmt>()->lhs, fn);
        forEachExprNode(stmt->as<AssignStmt>()->rhs, fn);
        break;
      case StmtKind::Display:
        for (const auto &arg : stmt->as<DisplayStmt>()->args)
            forEachExprNode(arg, fn);
        break;
      default:
        break;
    }
}

void
forEachExprInModule(const Module &mod,
                    const std::function<void(const ExprPtr &)> &fn)
{
    for (const auto &item : mod.items) {
        switch (item->kind) {
          case ItemKind::ContAssign:
            forEachExprNode(item->as<ContAssignItem>()->lhs, fn);
            forEachExprNode(item->as<ContAssignItem>()->rhs, fn);
            break;
          case ItemKind::Always:
            forEachExprInStmt(item->as<AlwaysItem>()->body, fn);
            break;
          case ItemKind::Instance:
            for (const auto &conn : item->as<InstanceItem>()->conns)
                forEachExprNode(conn.actual, fn);
            break;
          default:
            break;
        }
    }
}

bool
isArithOp(BinaryOp op)
{
    switch (op) {
      case BinaryOp::Add:
      case BinaryOp::Sub:
      case BinaryOp::Mul:
      case BinaryOp::Div:
      case BinaryOp::Mod:
      case BinaryOp::Shl:
      case BinaryOp::Shr:
        return true;
      default:
        return false;
    }
}

bool
isIdOf(const ExprPtr &expr, const std::string &name)
{
    return expr && expr->kind == ExprKind::Id &&
           expr->as<IdExpr>()->name == name;
}

/** Search a conjunction tree for an (S == const) conjunct. */
std::optional<Bits>
findStateTest(const ExprPtr &guard, const std::string &state_var)
{
    if (!guard)
        return std::nullopt;
    if (guard->kind == ExprKind::Binary) {
        const auto *bin = guard->as<BinaryExpr>();
        if (bin->op == BinaryOp::LogAnd) {
            if (auto hit = findStateTest(bin->lhs, state_var))
                return hit;
            return findStateTest(bin->rhs, state_var);
        }
        if (bin->op == BinaryOp::Eq) {
            if (isIdOf(bin->lhs, state_var) &&
                bin->rhs->kind == ExprKind::Number)
                return bin->rhs->as<NumberExpr>()->value;
            if (isIdOf(bin->rhs, state_var) &&
                bin->lhs->kind == ExprKind::Number)
                return bin->lhs->as<NumberExpr>()->value;
        }
    }
    return std::nullopt;
}

/** True when @p guard references @p name anywhere. */
bool
guardMentions(const ExprPtr &guard, const std::string &name)
{
    bool found = false;
    forEachIdent(guard, [&](const std::string &id) {
        if (id == name)
            found = true;
    });
    return found;
}

struct BitsLess
{
    bool
    operator()(const Bits &a, const Bits &b) const
    {
        return a.compare(b) < 0;
    }
};

} // namespace

std::vector<FsmInfo>
detectFsms(const Module &mod, const FsmDetectOptions &opts)
{
    // Registers excluded because the design does arithmetic on them or
    // selects their bits.
    std::set<std::string> excluded;
    forEachExprInModule(mod, [&](const ExprPtr &expr) {
        if (expr->kind == ExprKind::Binary) {
            const auto *bin = expr->as<BinaryExpr>();
            if (opts.excludeArithmetic && isArithOp(bin->op)) {
                for (const auto &side : {bin->lhs, bin->rhs})
                    if (side->kind == ExprKind::Id)
                        excluded.insert(side->as<IdExpr>()->name);
            }
            // Ordered comparisons on a variable also indicate a counter
            // or magnitude, not a state encoding.
            if (opts.excludeOrderedCompare &&
                (bin->op == BinaryOp::Lt || bin->op == BinaryOp::Le ||
                 bin->op == BinaryOp::Gt || bin->op == BinaryOp::Ge)) {
                for (const auto &side : {bin->lhs, bin->rhs})
                    if (side->kind == ExprKind::Id)
                        excluded.insert(side->as<IdExpr>()->name);
            }
        }
        if (opts.excludeBitSelect) {
            if (expr->kind == ExprKind::Index)
                excluded.insert(expr->as<IndexExpr>()->base);
            if (expr->kind == ExprKind::Range)
                excluded.insert(expr->as<RangeExpr>()->base);
        }
        if (opts.excludeArithmetic && expr->kind == ExprKind::Unary &&
            expr->as<UnaryExpr>()->op == UnaryOp::Neg) {
            const auto &arg = expr->as<UnaryExpr>()->arg;
            if (arg->kind == ExprKind::Id)
                excluded.insert(arg->as<IdExpr>()->name);
        }
    });

    // Group assignments by whole-register target.
    std::map<std::string, std::vector<GuardedAssign>> by_target;
    std::set<std::string> disqualified;
    for (const auto &ga : collectAssigns(mod)) {
        auto targets = lvalueTargets(ga.lhs);
        if (ga.lhs->kind == ExprKind::Id && ga.sequential) {
            by_target[ga.lhs->as<IdExpr>()->name].push_back(ga);
        } else {
            // Partial writes, concat writes, combinational or blocking
            // writes disqualify the target(s).
            for (const auto &target : targets)
                disqualified.insert(target);
        }
    }

    // Signal widths: single-bit registers are flag/toggle idioms
    // (valid bits, phases), not state machines.
    std::map<std::string, uint32_t> widths;
    for (const auto &item : mod.items) {
        if (item->kind != ItemKind::Net)
            continue;
        const auto *net = item->as<NetItem>();
        uint32_t width = 1;
        if (net->range)
            width = static_cast<uint32_t>(
                        sim::constU64(net->range->msb)) + 1;
        widths[net->name] = width;
    }

    std::vector<FsmInfo> out;
    for (const auto &[name, assigns] : by_target) {
        if (excluded.count(name) || disqualified.count(name))
            continue;
        if (opts.minWidthTwo && widths[name] < 2)
            continue;

        bool ok = true;
        bool tests_self = false;
        for (const auto &ga : assigns) {
            bool rhs_const = ga.rhs->kind == ExprKind::Number;
            bool rhs_self = isIdOf(ga.rhs, name);
            if (opts.requireConstantRhs && !rhs_const && !rhs_self) {
                ok = false;
                break;
            }
            if (guardMentions(ga.guard, name))
                tests_self = true;
        }
        if (!ok || (opts.requireSelfTest && !tests_self))
            continue;

        FsmInfo info;
        info.stateVar = name;
        info.clock = assigns.front().clock;

        std::set<Bits, BitsLess> states;
        for (const auto &ga : assigns) {
            if (auto from = findStateTest(ga.guard, name))
                states.insert(*from);
            if (ga.rhs->kind != ExprKind::Number)
                continue;
            Bits to = ga.rhs->as<NumberExpr>()->value;
            states.insert(to);
            FsmTransition trans;
            trans.fromState = findStateTest(ga.guard, name);
            trans.toState = to;
            trans.cond = ga.guard;
            info.transitions.push_back(std::move(trans));
        }
        if (states.size() < 2)
            continue; // a single constant is not a state machine
        info.states.assign(states.begin(), states.end());
        out.push_back(std::move(info));
    }
    return out;
}

} // namespace hwdbg::analysis
