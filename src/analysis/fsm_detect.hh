/**
 * @file
 * Static FSM detection (FSM Monitor §4.2).
 *
 * A register is classified as an FSM state variable when it matches the
 * paper's code-pattern heuristics:
 *  - every assignment to it is a nonblocking assignment in a clocked
 *    process and assigns the whole register;
 *  - every assigned value is a constant (state encoding) or the register
 *    itself;
 *  - at least one assignment's path constraint tests the register
 *    (case (state) / if (state == ...));
 *  - the design never applies arithmetic to the register and never
 *    selects individual bits of it.
 *
 * The heuristics can miss FSMs (e.g. two-process styles where the next
 * state comes through a wire) and are scored against hand labels in the
 * evaluation, mirroring the paper's 0 false positives / 5 false
 * negatives on 32 FSMs.
 */

#ifndef HWDBG_ANALYSIS_FSM_DETECT_HH
#define HWDBG_ANALYSIS_FSM_DETECT_HH

#include <optional>
#include <string>
#include <vector>

#include "analysis/guards.hh"
#include "common/bits.hh"

namespace hwdbg::analysis
{

/** One detected state transition: fromState --cond--> toState. */
struct FsmTransition
{
    /** Absent when the transition applies from any state. */
    std::optional<Bits> fromState;
    Bits toState;
    hdl::ExprPtr cond;
};

struct FsmInfo
{
    std::string stateVar;
    std::string clock;
    std::vector<Bits> states;
    std::vector<FsmTransition> transitions;
};

/**
 * Heuristic switches, all on by default. The fsm_heuristics ablation
 * bench disables them one at a time to measure each one's contribution
 * to the detector's precision/recall.
 */
struct FsmDetectOptions
{
    /** Exclude registers the design does arithmetic on (counters). */
    bool excludeArithmetic = true;
    /** Exclude registers whose bits are individually selected. */
    bool excludeBitSelect = true;
    /** Exclude registers used in ordered (< <= > >=) comparisons. */
    bool excludeOrderedCompare = true;
    /** Require some assignment's guard to test the register itself. */
    bool requireSelfTest = true;
    /** Require every assigned value to be a constant (or the register
     *  itself). */
    bool requireConstantRhs = true;
    /** Exclude single-bit registers (valid/toggle flags). */
    bool minWidthTwo = true;
};

/** Detect FSM state variables in an elaborated module. */
std::vector<FsmInfo> detectFsms(const hdl::Module &mod,
                                const FsmDetectOptions &opts = {});

} // namespace hwdbg::analysis

#endif // HWDBG_ANALYSIS_FSM_DETECT_HH
