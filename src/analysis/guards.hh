/**
 * @file
 * Path-constraint (guard) extraction.
 *
 * Walks statement trees and produces, for every assignment and $display,
 * the structural path constraint under which it executes: the conjunction
 * of enclosing if-conditions and case-label matches (with earlier labels
 * negated for later items and for the default). This is the same
 * path-constraint notion SignalCat uses for debugging statements (§4.1)
 * and LossCheck uses for propagation-relation conditions (§4.5.1).
 */

#ifndef HWDBG_ANALYSIS_GUARDS_HH
#define HWDBG_ANALYSIS_GUARDS_HH

#include <string>
#include <vector>

#include "hdl/ast.hh"

namespace hwdbg::analysis
{

/** An assignment together with its structural path constraint. */
struct GuardedAssign
{
    hdl::ExprPtr lhs;
    hdl::ExprPtr rhs;
    /** Path constraint; literal 1'b1 for unconditional assignments. */
    hdl::ExprPtr guard;
    /** True for nonblocking assignments in clocked processes (the
     *  assignment takes effect at the next cycle). */
    bool sequential = false;
    /** Clock signal of the owning process (empty for combinational). */
    std::string clock;
    /** Owning process; null for continuous assignments. */
    const hdl::AlwaysItem *proc = nullptr;
    /** The statement; null for continuous assignments. */
    const hdl::AssignStmt *stmt = nullptr;
    const hdl::ContAssignItem *cont = nullptr;
};

/** A $display together with its structural path constraint. */
struct GuardedDisplay
{
    const hdl::DisplayStmt *stmt = nullptr;
    hdl::ExprPtr guard;
    std::string clock;
    const hdl::AlwaysItem *proc = nullptr;
};

/** Every assignment in the module (procedural and continuous). */
std::vector<GuardedAssign> collectAssigns(const hdl::Module &mod);

/** Every $display in a clocked process. */
std::vector<GuardedDisplay> collectDisplays(const hdl::Module &mod);

/** Clock of a clocked process (first posedge sensitivity item). */
std::string processClock(const hdl::AlwaysItem &proc);

} // namespace hwdbg::analysis

#endif // HWDBG_ANALYSIS_GUARDS_HH
