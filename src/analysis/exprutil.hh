/**
 * @file
 * Expression utilities shared by the analysis passes: signal collection,
 * wire inlining, and lvalue target extraction.
 */

#ifndef HWDBG_ANALYSIS_EXPRUTIL_HH
#define HWDBG_ANALYSIS_EXPRUTIL_HH

#include <map>
#include <set>
#include <string>

#include "hdl/ast.hh"

namespace hwdbg::analysis
{

/** All signal names referenced by @p expr. */
std::set<std::string> collectSignals(const hdl::ExprPtr &expr);

/** Base signal names written by an lvalue (Id/Index/Range/Concat). */
std::set<std::string> lvalueTargets(const hdl::ExprPtr &lhs);

/**
 * Map from wire name to its single driving expression, built from the
 * module's continuous assignments. Wires driven through part selects,
 * concat lvalues, or multiple assigns are omitted (treated as opaque).
 */
std::map<std::string, hdl::ExprPtr>
wireDefinitions(const hdl::Module &mod);

/**
 * Return a copy of @p expr with wire references replaced by their driving
 * expressions, recursively, so that only registers, memories, ports, and
 * primitive outputs remain. Cyclic definitions stop expanding (the wire
 * is left in place).
 */
hdl::ExprPtr
inlineWires(const hdl::ExprPtr &expr,
            const std::map<std::string, hdl::ExprPtr> &defs);

} // namespace hwdbg::analysis

#endif // HWDBG_ANALYSIS_EXPRUTIL_HH
