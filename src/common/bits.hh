/**
 * @file
 * Arbitrary-width two-state bit vector used throughout hwdbg.
 *
 * A Bits value models a Verilog vector of a fixed width (>= 1). Values are
 * stored little-endian in 64-bit words and are always kept canonical: bits
 * above the declared width are zero. All arithmetic is unsigned and modulo
 * 2^width, matching two-state Verilog semantics for unsigned vectors.
 */

#ifndef HWDBG_COMMON_BITS_HH
#define HWDBG_COMMON_BITS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace hwdbg
{

class Bits
{
  public:
    /** Construct a 1-bit zero. */
    Bits() : width_(1), words_(1, 0) {}

    /** Construct a vector of @p width bits holding @p value (truncated). */
    explicit Bits(uint32_t width, uint64_t value = 0);

    /** Parse a Verilog-style literal body, e.g. "8'hff", "12", "4'b1010".
     *  @param sized set to true when the literal carried an explicit width.
     */
    static Bits parseVerilog(const std::string &text, bool *sized = nullptr);

    /** A vector of @p width bits, all ones. */
    static Bits allOnes(uint32_t width);

    /**
     * Build from raw little-endian words: the first wordsFor(width)
     * entries of @p words are copied (missing words read as zero) and
     * the result is canonicalized. The bulk-transfer path between the
     * compiled backend's value slab and Bits.
     */
    static Bits fromWords(uint32_t width, const uint64_t *words,
                          size_t count);

    uint32_t width() const { return width_; }

    /** Little-endian word storage (numWords() entries, canonical). */
    const uint64_t *rawWords() const { return words_.data(); }
    /** Number of 64-bit words backing this value. */
    size_t numWords() const { return words_.size(); }

    /** Low 64 bits of the value. */
    uint64_t toU64() const { return words_[0]; }

    bool isZero() const;
    bool isAllOnes() const;

    /** Read a single bit; out-of-range reads return 0 (Verilog 2-state). */
    bool bit(uint32_t idx) const;

    /** Write a single bit; out-of-range writes are ignored. */
    void setBit(uint32_t idx, bool value);

    /** Extract bits [msb:lsb] (inclusive); out-of-range bits read as 0. */
    Bits slice(uint32_t msb, uint32_t lsb) const;

    /** Assign @p value into bits [msb:lsb]; out-of-range bits dropped. */
    void setSlice(uint32_t msb, uint32_t lsb, const Bits &value);

    /** Zero-extend or truncate to @p new_width. */
    Bits resized(uint32_t new_width) const;

    /** {this, rhs} concatenation: this becomes the high part. */
    Bits concat(const Bits &low) const;

    /** {count{this}} replication. */
    Bits replicate(uint32_t count) const;

    Bits add(const Bits &rhs) const;
    Bits sub(const Bits &rhs) const;
    Bits mul(const Bits &rhs) const;
    /** Unsigned division; division by zero yields all-ones (like x). */
    Bits divu(const Bits &rhs) const;
    /** Unsigned remainder; modulo zero yields all-ones (like x). */
    Bits modu(const Bits &rhs) const;

    Bits bitAnd(const Bits &rhs) const;
    Bits bitOr(const Bits &rhs) const;
    Bits bitXor(const Bits &rhs) const;
    Bits bitNot() const;

    /** Two's-complement negation at this width. */
    Bits negate() const;

    Bits shl(uint64_t amount) const;
    Bits shr(uint64_t amount) const;

    bool redAnd() const { return isAllOnes(); }
    bool redOr() const { return !isZero(); }
    bool redXor() const;

    /** Unsigned comparison: -1, 0, or 1. */
    int compare(const Bits &rhs) const;

    bool operator==(const Bits &rhs) const;
    bool operator!=(const Bits &rhs) const { return !(*this == rhs); }

    /** Count of set bits. */
    uint32_t popcount() const;

    std::string toHexString() const;
    std::string toBinString() const;
    std::string toDecString() const;

    /** Verilog literal form, e.g. 8'hff. */
    std::string toVerilog() const;

  private:
    void normalize();
    static uint32_t wordsFor(uint32_t width) { return (width + 63) / 64; }

    uint32_t width_;
    std::vector<uint64_t> words_;
};

} // namespace hwdbg

#endif // HWDBG_COMMON_BITS_HH
