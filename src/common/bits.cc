#include "common/bits.hh"

#include <algorithm>
#include <cctype>

#include "common/logging.hh"

namespace hwdbg
{

Bits::Bits(uint32_t width, uint64_t value)
    : width_(width ? width : 1), words_(wordsFor(width ? width : 1), 0)
{
    words_[0] = value;
    normalize();
}

void
Bits::normalize()
{
    uint32_t top_bits = width_ % 64;
    if (top_bits != 0)
        words_.back() &= (~uint64_t(0)) >> (64 - top_bits);
}

Bits
Bits::allOnes(uint32_t width)
{
    Bits result(width);
    for (auto &w : result.words_)
        w = ~uint64_t(0);
    result.normalize();
    return result;
}

Bits
Bits::fromWords(uint32_t width, const uint64_t *words, size_t count)
{
    Bits result(width);
    size_t n = std::min<size_t>(result.words_.size(), count);
    for (size_t i = 0; i < n; ++i)
        result.words_[i] = words[i];
    result.normalize();
    return result;
}

Bits
Bits::parseVerilog(const std::string &text, bool *sized)
{
    // Strip underscores.
    std::string s;
    for (char c : text)
        if (c != '_')
            s.push_back(c);

    size_t tick = s.find('\'');
    if (tick == std::string::npos) {
        // Unsized decimal literal; Verilog treats it as >= 32 bits.
        if (sized)
            *sized = false;
        uint64_t value = 0;
        for (char c : s) {
            if (!std::isdigit(static_cast<unsigned char>(c)))
                fatal("bad decimal literal '%s'", text.c_str());
            value = value * 10 + static_cast<uint64_t>(c - '0');
        }
        uint32_t width = 32;
        while (width < 64 && (value >> width) != 0)
            ++width;
        return Bits(width, value);
    }

    if (sized)
        *sized = true;
    uint32_t width = 0;
    for (size_t i = 0; i < tick; ++i) {
        char c = s[i];
        if (!std::isdigit(static_cast<unsigned char>(c)))
            fatal("bad width in literal '%s'", text.c_str());
        width = width * 10 + static_cast<uint32_t>(c - '0');
    }
    if (width == 0 || width > 65536)
        fatal("unsupported literal width in '%s'", text.c_str());
    if (tick + 1 >= s.size())
        fatal("truncated literal '%s'", text.c_str());

    char base = static_cast<char>(
        std::tolower(static_cast<unsigned char>(s[tick + 1])));
    std::string digits = s.substr(tick + 2);
    if (digits.empty())
        fatal("literal '%s' has no digits", text.c_str());

    Bits result(width);
    auto shift_in = [&](uint32_t bits_per_digit, uint64_t digit) {
        result = result.shl(bits_per_digit);
        Bits add_in(width, digit);
        result = result.bitOr(add_in);
    };

    switch (base) {
      case 'b':
        for (char c : digits) {
            if (c != '0' && c != '1')
                fatal("bad binary digit in '%s'", text.c_str());
            shift_in(1, static_cast<uint64_t>(c - '0'));
        }
        break;
      case 'h':
        for (char c : digits) {
            int v;
            if (std::isdigit(static_cast<unsigned char>(c)))
                v = c - '0';
            else if (c >= 'a' && c <= 'f')
                v = 10 + (c - 'a');
            else if (c >= 'A' && c <= 'F')
                v = 10 + (c - 'A');
            else {
                fatal("bad hex digit in '%s'", text.c_str());
            }
            shift_in(4, static_cast<uint64_t>(v));
        }
        break;
      case 'o':
        for (char c : digits) {
            if (c < '0' || c > '7')
                fatal("bad octal digit in '%s'", text.c_str());
            shift_in(3, static_cast<uint64_t>(c - '0'));
        }
        break;
      case 'd': {
        Bits ten(width, 10);
        for (char c : digits) {
            if (!std::isdigit(static_cast<unsigned char>(c)))
                fatal("bad decimal digit in '%s'", text.c_str());
            result = result.mul(ten).add(
                Bits(width, static_cast<uint64_t>(c - '0')));
        }
        break;
      }
      default:
        fatal("unknown literal base '%c' in '%s'", base, text.c_str());
    }
    return result;
}

bool
Bits::isZero() const
{
    for (uint64_t w : words_)
        if (w != 0)
            return false;
    return true;
}

bool
Bits::isAllOnes() const
{
    return *this == allOnes(width_);
}

bool
Bits::bit(uint32_t idx) const
{
    if (idx >= width_)
        return false;
    return (words_[idx / 64] >> (idx % 64)) & 1;
}

void
Bits::setBit(uint32_t idx, bool value)
{
    if (idx >= width_)
        return;
    uint64_t mask = uint64_t(1) << (idx % 64);
    if (value)
        words_[idx / 64] |= mask;
    else
        words_[idx / 64] &= ~mask;
}

Bits
Bits::slice(uint32_t msb, uint32_t lsb) const
{
    if (msb < lsb)
        std::swap(msb, lsb);
    uint32_t out_width = msb - lsb + 1;
    Bits result(out_width);
    for (uint32_t i = 0; i < out_width; ++i)
        result.setBit(i, bit(lsb + i));
    return result;
}

void
Bits::setSlice(uint32_t msb, uint32_t lsb, const Bits &value)
{
    if (msb < lsb)
        std::swap(msb, lsb);
    uint32_t span = msb - lsb + 1;
    for (uint32_t i = 0; i < span; ++i)
        setBit(lsb + i, value.bit(i));
}

Bits
Bits::resized(uint32_t new_width) const
{
    Bits result(new_width);
    uint32_t nwords = std::min(result.words_.size(), words_.size());
    for (uint32_t i = 0; i < nwords; ++i)
        result.words_[i] = words_[i];
    result.normalize();
    return result;
}

Bits
Bits::concat(const Bits &low) const
{
    Bits result(width_ + low.width_);
    for (uint32_t i = 0; i < low.width_; ++i)
        result.setBit(i, low.bit(i));
    for (uint32_t i = 0; i < width_; ++i)
        result.setBit(low.width_ + i, bit(i));
    return result;
}

Bits
Bits::replicate(uint32_t count) const
{
    if (count == 0)
        fatal("replication count must be positive");
    Bits result = *this;
    for (uint32_t i = 1; i < count; ++i)
        result = result.concat(*this);
    return result;
}

Bits
Bits::add(const Bits &rhs) const
{
    uint32_t out_width = std::max(width_, rhs.width_);
    Bits a = resized(out_width);
    Bits b = rhs.resized(out_width);
    unsigned __int128 carry = 0;
    for (size_t i = 0; i < a.words_.size(); ++i) {
        unsigned __int128 sum = carry;
        sum += a.words_[i];
        sum += b.words_[i];
        a.words_[i] = static_cast<uint64_t>(sum);
        carry = sum >> 64;
    }
    a.normalize();
    return a;
}

Bits
Bits::sub(const Bits &rhs) const
{
    uint32_t out_width = std::max(width_, rhs.width_);
    return resized(out_width).add(rhs.resized(out_width).negate());
}

Bits
Bits::negate() const
{
    return bitNot().add(Bits(width_, 1));
}

Bits
Bits::mul(const Bits &rhs) const
{
    uint32_t out_width = std::max(width_, rhs.width_);
    Bits a = resized(out_width);
    Bits b = rhs.resized(out_width);
    Bits result(out_width);
    size_t nwords = result.words_.size();
    for (size_t i = 0; i < nwords; ++i) {
        if (a.words_[i] == 0)
            continue;
        unsigned __int128 carry = 0;
        for (size_t j = 0; i + j < nwords; ++j) {
            unsigned __int128 cur = result.words_[i + j];
            cur += static_cast<unsigned __int128>(a.words_[i]) * b.words_[j];
            cur += carry;
            result.words_[i + j] = static_cast<uint64_t>(cur);
            carry = cur >> 64;
        }
    }
    result.normalize();
    return result;
}

Bits
Bits::divu(const Bits &rhs) const
{
    uint32_t out_width = std::max(width_, rhs.width_);
    if (rhs.isZero())
        return allOnes(out_width);
    // Bit-serial long division; widths here are small in practice.
    Bits dividend = resized(out_width);
    Bits divisor = rhs.resized(out_width);
    Bits quotient(out_width);
    Bits remainder(out_width);
    for (int i = static_cast<int>(out_width) - 1; i >= 0; --i) {
        remainder = remainder.shl(1);
        remainder.setBit(0, dividend.bit(static_cast<uint32_t>(i)));
        if (remainder.compare(divisor) >= 0) {
            remainder = remainder.sub(divisor);
            quotient.setBit(static_cast<uint32_t>(i), true);
        }
    }
    return quotient;
}

Bits
Bits::modu(const Bits &rhs) const
{
    uint32_t out_width = std::max(width_, rhs.width_);
    if (rhs.isZero())
        return allOnes(out_width);
    Bits dividend = resized(out_width);
    Bits divisor = rhs.resized(out_width);
    Bits remainder(out_width);
    for (int i = static_cast<int>(out_width) - 1; i >= 0; --i) {
        remainder = remainder.shl(1);
        remainder.setBit(0, dividend.bit(static_cast<uint32_t>(i)));
        if (remainder.compare(divisor) >= 0)
            remainder = remainder.sub(divisor);
    }
    return remainder;
}

Bits
Bits::bitAnd(const Bits &rhs) const
{
    uint32_t out_width = std::max(width_, rhs.width_);
    Bits a = resized(out_width);
    Bits b = rhs.resized(out_width);
    for (size_t i = 0; i < a.words_.size(); ++i)
        a.words_[i] &= b.words_[i];
    return a;
}

Bits
Bits::bitOr(const Bits &rhs) const
{
    uint32_t out_width = std::max(width_, rhs.width_);
    Bits a = resized(out_width);
    Bits b = rhs.resized(out_width);
    for (size_t i = 0; i < a.words_.size(); ++i)
        a.words_[i] |= b.words_[i];
    return a;
}

Bits
Bits::bitXor(const Bits &rhs) const
{
    uint32_t out_width = std::max(width_, rhs.width_);
    Bits a = resized(out_width);
    Bits b = rhs.resized(out_width);
    for (size_t i = 0; i < a.words_.size(); ++i)
        a.words_[i] ^= b.words_[i];
    return a;
}

Bits
Bits::bitNot() const
{
    Bits result = *this;
    for (auto &w : result.words_)
        w = ~w;
    result.normalize();
    return result;
}

Bits
Bits::shl(uint64_t amount) const
{
    Bits result(width_);
    if (amount >= width_)
        return result;
    for (uint32_t i = static_cast<uint32_t>(amount); i < width_; ++i)
        result.setBit(i, bit(i - static_cast<uint32_t>(amount)));
    return result;
}

Bits
Bits::shr(uint64_t amount) const
{
    Bits result(width_);
    if (amount >= width_)
        return result;
    for (uint32_t i = 0; i < width_ - amount; ++i)
        result.setBit(i, bit(i + static_cast<uint32_t>(amount)));
    return result;
}

bool
Bits::redXor() const
{
    return (popcount() & 1) != 0;
}

uint32_t
Bits::popcount() const
{
    uint32_t count = 0;
    for (uint64_t w : words_)
        count += static_cast<uint32_t>(__builtin_popcountll(w));
    return count;
}

int
Bits::compare(const Bits &rhs) const
{
    uint32_t out_width = std::max(width_, rhs.width_);
    Bits a = resized(out_width);
    Bits b = rhs.resized(out_width);
    for (size_t i = a.words_.size(); i-- > 0;) {
        if (a.words_[i] < b.words_[i])
            return -1;
        if (a.words_[i] > b.words_[i])
            return 1;
    }
    return 0;
}

bool
Bits::operator==(const Bits &rhs) const
{
    return compare(rhs) == 0;
}

std::string
Bits::toHexString() const
{
    static const char digits[] = "0123456789abcdef";
    uint32_t nibbles = (width_ + 3) / 4;
    std::string out;
    out.reserve(nibbles);
    for (uint32_t i = nibbles; i-- > 0;) {
        uint32_t lsb = i * 4;
        uint32_t msb = std::min(lsb + 3, width_ - 1);
        out.push_back(digits[slice(msb, lsb).toU64()]);
    }
    return out;
}

std::string
Bits::toBinString() const
{
    std::string out;
    out.reserve(width_);
    for (uint32_t i = width_; i-- > 0;)
        out.push_back(bit(i) ? '1' : '0');
    return out;
}

std::string
Bits::toDecString() const
{
    if (width_ <= 64)
        return std::to_string(toU64());
    Bits value = *this;
    Bits ten(width_, 10);
    std::string out;
    while (!value.isZero()) {
        Bits digit = value.modu(ten);
        out.push_back(static_cast<char>('0' + digit.toU64()));
        value = value.divu(ten);
    }
    if (out.empty())
        out = "0";
    std::reverse(out.begin(), out.end());
    return out;
}

std::string
Bits::toVerilog() const
{
    return std::to_string(width_) + "'h" + toHexString();
}

} // namespace hwdbg
