#include "common/testhooks.hh"

namespace hwdbg
{

int activeMutation = MUT_NONE;

const std::vector<MutationInfo> &
mutationCatalog()
{
    static const std::vector<MutationInfo> catalog = {
        {MUT_SIM_ADD_AS_SUB, "sim/eval.cc",
         "binary + evaluates as -", "differential"},
        {MUT_SIM_SHR_OFF_BY_ONE, "sim/eval.cc",
         ">> shifts one position too far", "differential"},
        {MUT_SIM_TERNARY_SWAP, "sim/eval.cc",
         "?: selects the wrong arm", "differential"},
        {MUT_SIM_XOR_AS_OR, "sim/eval.cc",
         "binary ^ evaluates as |", "differential"},
        {MUT_SIM_LT_AS_LE, "sim/eval.cc",
         "binary < evaluates as <=", "differential"},
        {MUT_SIM_CMP_CTX_WIDTH, "sim/eval.cc",
         "comparison operands widened to the context width",
         "differential"},
        {MUT_SIM_CASE_SEL_WIDTH, "sim/simulator.cc",
         "case labels truncated to the selector width", "differential"},
        {MUT_PRINT_SHL_AS_SHR, "hdl/printer.cc",
         "<< printed as >>", "roundtrip"},
        {MUT_PRINT_DROP_PARENS, "hdl/printer.cc",
         "needed parentheses dropped around same-precedence operands",
         "roundtrip"},
        {MUT_PRINT_UNSIZED_NUM, "hdl/printer.cc",
         "sized literal printed as a bare decimal", "roundtrip"},
        {MUT_LINT_UNUSED_PARITY, "lint/rules_structure.cc",
         "unused-signal skips signals with even-length names", "lint"},
        {MUT_LINT_TRUNC_INDEX, "lint/rules_style.cc",
         "width-trunc skips even-indexed assignments", "lint"},
        {MUT_INSTR_WRONG_EDGE, "core/instrument.cc",
         "generated monitor blocks sample on negedge instead of posedge",
         "instrument"},
        {MUT_INSTR_SIGNALCAT_SLICE, "core/signalcat.cc",
         "SignalCat entry slices shifted by one bit", "instrument"},
        {MUT_INSTR_FSM_SWAP, "core/fsm_monitor.cc",
         "FSM monitor logs transitions as to -> from", "instrument"},
        {MUT_INSTR_STAT_INVERT, "core/stats_monitor.cc",
         "stats monitor counts cycles where the event is low",
         "instrument"},
    };
    return catalog;
}

} // namespace hwdbg
