/**
 * @file
 * Mutation hooks for validating the fuzz harness.
 *
 * The fuzz oracles (src/fuzz) are only trustworthy if they demonstrably
 * catch bugs. `hwdbg fuzz --self-check` flips one mutation at a time and
 * reruns the oracles; a harness that misses most mutations is broken.
 *
 * Each mutation is a small, deliberate semantic change guarded by
 * mutationOn(id) at its site (simulator evaluation, printer, lint rules,
 * instrumentation passes). With activeMutation == 0 — the only value any
 * production code path ever sees — every site compiles down to a single
 * integer compare against a never-written global, so the hooks cost
 * nothing in normal operation.
 */

#ifndef HWDBG_COMMON_TESTHOOKS_HH
#define HWDBG_COMMON_TESTHOOKS_HH

#include <vector>

namespace hwdbg
{

/**
 * Identifiers for the injectable mutations. Values are stable: the
 * self-check report and the regression tests refer to them by number.
 */
enum Mutation : int
{
    MUT_NONE = 0,

    // Simulator semantics (caught by the differential oracle).
    MUT_SIM_ADD_AS_SUB = 1,        ///< a + b computes a - b
    MUT_SIM_SHR_OFF_BY_ONE = 2,    ///< a >> b computes a >> (b + 1)
    MUT_SIM_TERNARY_SWAP = 3,      ///< c ? t : e picks the wrong arm
    MUT_SIM_XOR_AS_OR = 4,         ///< a ^ b computes a | b
    MUT_SIM_LT_AS_LE = 5,          ///< a < b computes a <= b
    MUT_SIM_CMP_CTX_WIDTH = 6,     ///< comparisons at context width
    MUT_SIM_CASE_SEL_WIDTH = 7,    ///< case labels compared at selector
                                   ///  width only (truncates labels)

    // Printer (caught by the round-trip oracle's structural compare and
    // by the differential oracle, which simulates the printed text).
    MUT_PRINT_SHL_AS_SHR = 8,      ///< << printed as >>
    MUT_PRINT_DROP_PARENS = 9,     ///< equal-precedence rhs unparenthesized
    MUT_PRINT_UNSIZED_NUM = 10,    ///< sized literal printed as bare decimal

    // Lint rules (caught by the metamorphic oracle: alpha-renaming and
    // declaration reordering must not change the diagnostic set).
    MUT_LINT_UNUSED_PARITY = 11,   ///< unused-signal skips even-length names
    MUT_LINT_TRUNC_INDEX = 12,     ///< width-trunc skips even assign indices

    // Instrumentation passes (caught by the instrumentation oracle).
    MUT_INSTR_WRONG_EDGE = 13,     ///< monitors sample on negedge
    MUT_INSTR_SIGNALCAT_SLICE = 14, ///< SignalCat entry slices off by one
    MUT_INSTR_FSM_SWAP = 15,       ///< FSM monitor swaps from/to states
    MUT_INSTR_STAT_INVERT = 16,    ///< stats monitor counts event-low edges

    MUT_COUNT_SENTINEL,            ///< one past the last valid id
};

/**
 * The active mutation id, MUT_NONE in production. Written only by the
 * fuzz self-check driver (single-threaded by design: self-check runs
 * seeds sequentially while a mutation is live).
 */
extern int activeMutation;

inline bool
mutationOn(int id)
{
    return activeMutation == id;
}

/** Catalog entry describing one injectable mutation. */
struct MutationInfo
{
    int id;
    const char *site;        ///< source file holding the hook
    const char *description; ///< what the mutation breaks
    const char *oracle;      ///< oracle expected to catch it
};

/** All injectable mutations, ordered by id. */
const std::vector<MutationInfo> &mutationCatalog();

} // namespace hwdbg

#endif // HWDBG_COMMON_TESTHOOKS_HH
