#include "common/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <utility>
#include <vector>

namespace hwdbg
{

namespace
{

bool quietMode = false;

std::mutex sinkMutex;
LogSink logSink;

void
emit(LogLevel level, const std::string &msg)
{
    std::lock_guard<std::mutex> lock(sinkMutex);
    if (logSink) {
        logSink(level, msg);
        return;
    }
    std::fprintf(stderr, "%s: %s\n",
                 level == LogLevel::Warn ? "warn" : "info", msg.c_str());
}

} // namespace

std::string
vcsprintf(const char *fmt, va_list args)
{
    va_list args_copy;
    va_copy(args_copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, args_copy);
    va_end(args_copy);
    if (needed < 0)
        return std::string(fmt);
    std::vector<char> buf(static_cast<size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    return std::string(buf.data(), static_cast<size_t>(needed));
}

std::string
csprintf(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string result = vcsprintf(fmt, args);
    va_end(args);
    return result;
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vcsprintf(fmt, args);
    va_end(args);
    throw HdlError(msg);
}

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vcsprintf(fmt, args);
    va_end(args);
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

void
warn(const char *fmt, ...)
{
    if (quietMode)
        return;
    va_list args;
    va_start(args, fmt);
    std::string msg = vcsprintf(fmt, args);
    va_end(args);
    emit(LogLevel::Warn, msg);
}

void
inform(const char *fmt, ...)
{
    if (quietMode)
        return;
    va_list args;
    va_start(args, fmt);
    std::string msg = vcsprintf(fmt, args);
    va_end(args);
    emit(LogLevel::Inform, msg);
}

void
setQuiet(bool quiet)
{
    quietMode = quiet;
}

LogSink
setLogSink(LogSink sink)
{
    std::lock_guard<std::mutex> lock(sinkMutex);
    LogSink previous = std::move(logSink);
    logSink = std::move(sink);
    return previous;
}

} // namespace hwdbg
