/**
 * @file
 * Status/error reporting helpers in the gem5 spirit.
 *
 * panic()  -- an internal invariant of hwdbg itself was violated.
 * fatal()  -- the user's input (HDL source, tool configuration, workload)
 *             cannot be processed; raised as HdlError so library users can
 *             catch and report it.
 * warn()/inform() -- advisory messages on stderr.
 */

#ifndef HWDBG_COMMON_LOGGING_HH
#define HWDBG_COMMON_LOGGING_HH

#include <cstdarg>
#include <functional>
#include <stdexcept>
#include <string>

namespace hwdbg
{

/** printf-style formatting into a std::string. */
std::string csprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** vprintf-style formatting into a std::string. */
std::string vcsprintf(const char *fmt, va_list args);

/**
 * Error raised for any condition caused by the tool user: malformed HDL,
 * unknown signal names, bad tool configuration, and the like.
 */
class HdlError : public std::runtime_error
{
  public:
    explicit HdlError(const std::string &msg) : std::runtime_error(msg) {}
};

/** Raise an HdlError; never returns. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Abort with a message; used for internal hwdbg bugs. Never returns. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a warning to stderr (prefixed "warn: "). */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print an informational message to stderr (prefixed "info: "). */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Globally silence warn()/inform() (used by benchmarks). */
void setQuiet(bool quiet);

/** Severity class of a message routed through the log sink. */
enum class LogLevel { Warn, Inform };

/**
 * Destination for warn()/inform() messages. The message has no trailing
 * newline and no "warn: "/"info: " prefix; the sink chooses both. Sinks
 * may be invoked concurrently from fuzz worker threads, but calls are
 * serialized by the logging layer, so a sink needs no locking of its own.
 */
using LogSink = std::function<void(LogLevel, const std::string &)>;

/**
 * Replace the warn()/inform() destination (default: stderr). Passing an
 * empty function restores the default. Returns the previous sink (empty
 * when the default stderr sink was active). Quiet mode still suppresses
 * messages before they reach any sink.
 */
LogSink setLogSink(LogSink sink);

} // namespace hwdbg

#endif // HWDBG_COMMON_LOGGING_HH
