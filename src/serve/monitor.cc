#include "serve/monitor.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <ostream>
#include <sstream>
#include <thread>

#include "common/logging.hh"
#include "obs/jsoncheck.hh"

namespace hwdbg::serve
{

namespace
{

double
num(const obs::JsonValue *obj, const char *key)
{
    if (!obj)
        return 0;
    const auto *v = obj->get(key);
    return v && v->isNumber() ? v->number : 0;
}

std::string
str(const obs::JsonValue *obj, const char *key)
{
    if (!obj)
        return "";
    const auto *v = obj->get(key);
    return v && v->isString() ? v->text : "";
}

/** Buffered line reads over a socket fd (the monitor's only input). */
struct LineReader
{
    int fd;
    std::string pending;

    bool getline(std::string *line)
    {
        for (;;) {
            auto nl = pending.find('\n');
            if (nl != std::string::npos) {
                *line = pending.substr(0, nl);
                pending.erase(0, nl + 1);
                return true;
            }
            char buf[4096];
            ssize_t n = ::read(fd, buf, sizeof(buf));
            if (n <= 0)
                return false;
            pending.append(buf, static_cast<size_t>(n));
        }
    }
};

bool
writeAll(int fd, const std::string &text)
{
    const char *p = text.data();
    size_t len = text.size();
    while (len) {
        ssize_t n = ::write(fd, p, len);
        if (n <= 0)
            return false;
        p += n;
        len -= static_cast<size_t>(n);
    }
    return true;
}

} // namespace

std::string
renderTopFrame(const std::string &statsJson)
{
    std::string error;
    obs::JsonPtr root = obs::parseJson(statsJson, &error);
    if (!root || !root->isObject())
        return "stats: " + (error.empty() ? "not an object" : error) +
               "\n";

    const auto *server = root->get("server");
    const auto *cache = root->get("cache");
    const auto *snaps = root->get("snapshots");

    std::ostringstream out;
    char line[256];
    std::snprintf(line, sizeof line,
                  "hwdbg serve — up %.1fs | sessions %.0f (opened %.0f)"
                  " | channels %.0f/%.0f | requests %.0f err %.0f"
                  " slow %.0f\n",
                  num(server, "uptime_us") / 1e6,
                  num(server, "sessions"), num(server, "opened"),
                  num(server, "channels_active"),
                  num(server, "channels"), num(server, "requests"),
                  num(server, "errors"), num(server, "slow"));
    out << line;
    std::snprintf(line, sizeof line,
                  "cache entries %.0f hits %.0f misses %.0f "
                  "builds %.0f (%.1fms) | snapshots stored %.0f "
                  "dedup %.0f%%\n",
                  num(cache, "entries"), num(cache, "hits"),
                  num(cache, "misses"), num(cache, "builds"),
                  num(cache, "build_us") / 1e3, num(snaps, "stored"),
                  num(snaps, "dedup_ratio_pct"));
    out << line;

    const auto *cmds = root->get("commands");
    if (cmds && cmds->isArray() && !cmds->elems.empty()) {
        std::snprintf(line, sizeof line,
                      "%-14s %7s %5s %8s %8s %8s %8s\n", "COMMAND",
                      "COUNT", "ERR", "P50us", "P95us", "P99us",
                      "MAXus");
        out << line;
        for (const auto &entry : cmds->elems) {
            std::snprintf(line, sizeof line,
                          "%-14s %7.0f %5.0f %8.0f %8.0f %8.0f %8.0f\n",
                          str(entry.get(), "cmd").c_str(),
                          num(entry.get(), "count"),
                          num(entry.get(), "errors"),
                          num(entry.get(), "p50_us"),
                          num(entry.get(), "p95_us"),
                          num(entry.get(), "p99_us"),
                          num(entry.get(), "max_us"));
            out << line;
        }
    }

    const auto *sessions = root->get("sessions");
    if (sessions && sessions->isArray() && !sessions->elems.empty()) {
        std::snprintf(line, sizeof line,
                      "%4s %-8s %-16s %-5s %6s %4s %9s\n", "SID",
                      "KIND", "DESIGN", "CACHE", "CMDS", "ERR",
                      "CYCLE");
        out << line;
        for (const auto &entry : sessions->elems) {
            const auto *cycle = entry->get("cycle");
            std::string cycleText =
                cycle && cycle->isNumber()
                    ? std::to_string(
                          static_cast<uint64_t>(cycle->number))
                    : std::string("-");
            std::snprintf(line, sizeof line,
                          "%4.0f %-8s %-16s %-5s %6.0f %4.0f %9s\n",
                          num(entry.get(), "session"),
                          str(entry.get(), "kind").c_str(),
                          str(entry.get(), "design").c_str(),
                          str(entry.get(), "cache").c_str(),
                          num(entry.get(), "cmds"),
                          num(entry.get(), "errors"),
                          cycleText.c_str());
            out << line;
        }
    }
    return out.str();
}

int
runTop(uint16_t port, const TopOptions &opts, std::ostream &out)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        fatal("monitor: socket: %s", std::strerror(errno));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        int err = errno;
        ::close(fd);
        fatal("monitor: connect 127.0.0.1:%u: %s", unsigned(port),
              std::strerror(err));
    }

    LineReader reader{fd, {}};
    std::string line;
    if (!reader.getline(&line)) {
        ::close(fd);
        fatal("monitor: server closed before hello");
    }

    for (uint64_t frame = 0;
         opts.iterations == 0 || frame < opts.iterations; ++frame) {
        if (frame && opts.intervalMs)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(opts.intervalMs));
        if (!writeAll(fd, "stats\n"))
            break;
        if (!reader.getline(&line))
            break;
        // The stats document is the response's "payload" member;
        // payload is always the last field, so the document is the
        // text between `"payload":` and the response's final brace.
        std::string payload;
        std::string error;
        if (auto root = obs::parseJson(line, &error)) {
            const auto *p = root->get("payload");
            auto at = line.find("\"payload\":");
            if (p && p->isObject() && at != std::string::npos)
                payload = line.substr(at + 10, line.size() - at - 11);
        }
        if (opts.clear)
            out << "\x1b[H\x1b[2J";
        out << renderTopFrame(payload.empty() ? line : payload)
            << std::flush;
    }
    writeAll(fd, "quit\n");
    ::close(fd);
    return 0;
}

} // namespace hwdbg::serve
