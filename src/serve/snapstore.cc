#include "serve/snapstore.hh"

#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "sim/simulator.hh"

namespace hwdbg::serve
{

std::shared_ptr<const sim::SimSnapshot>
SnapshotStore::intern(sim::SimSnapshot &&snap)
{
    obs::ObsSpan span("serve.snapshot.intern");
    uint64_t hash = sim::snapshotFingerprint(snap);
    size_t bytes = snap.sizeBytes();

    std::lock_guard<std::mutex> lock(mu_);
    auto it = byHash_.find(hash);
    if (it != byHash_.end()) {
        // Guard against hash collisions with the two cheap invariants
        // a genuine duplicate must share; a mismatch stores privately.
        if (auto live = it->second.lock();
            live && live->cycle == snap.cycle &&
            live->evalSeq == snap.evalSeq &&
            live->sizeBytes() == bytes) {
            ++stats_.dedupHits;
            stats_.dedupBytes += bytes;
            HWDBG_STAT_INC("serve.snapshot.dedup_hits", 1);
            HWDBG_STAT_INC("serve.snapshot.dedup_bytes", bytes);
            return live;
        }
    }

    auto owned =
        std::make_shared<const sim::SimSnapshot>(std::move(snap));
    byHash_[hash] = owned;
    ++stats_.stored;
    stats_.storedBytes += bytes;
    HWDBG_STAT_INC("serve.snapshot.stored", 1);
    HWDBG_STAT_INC("serve.snapshot.stored_bytes", bytes);

    // Amortized prune: expired weak entries are only bookkeeping, but
    // an unbounded map would grow with every unique snapshot ever seen.
    if (++sincePrune_ >= 64) {
        sincePrune_ = 0;
        for (auto walk = byHash_.begin(); walk != byHash_.end();) {
            if (walk->second.expired())
                walk = byHash_.erase(walk);
            else
                ++walk;
        }
    }
    return owned;
}

SnapshotStore::Stats
SnapshotStore::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

size_t
SnapshotStore::size()
{
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = byHash_.begin(); it != byHash_.end();) {
        if (it->second.expired())
            it = byHash_.erase(it);
        else
            ++it;
    }
    return byHash_.size();
}

} // namespace hwdbg::serve
