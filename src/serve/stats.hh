/**
 * @file
 * The versioned `hwdbg-serve-stats` JSON v1 document.
 *
 * Server::statsJson() renders one line:
 *
 *   {"format":"hwdbg-serve-stats","version":1,"build":{...},
 *    "server":{sessions,opened,channels,channels_active,requests,
 *              errors,slow,slow_threshold_us,dispatched,retired_cmds,
 *              uptime_us},
 *    "cache":{entries,hits,misses,builds,build_us},
 *    "snapshots":{stored,stored_bytes,dedup_hits,dedup_bytes,
 *                 dedup_ratio_pct},
 *    "commands":[{cmd,count,errors,p50_us,p95_us,p99_us,max_us}...],
 *    "sessions":[{session,kind,design,cache,cmds,errors,[cycle,]
 *                 uptime_us}...]}
 *
 * Every wall-clock-derived field ends in `_us`, so one pass of
 * scrubServeTimings() zeroes exactly the nondeterministic numbers:
 * after scrubbing, a stats document is a deterministic function of the
 * request history and byte-diffs across runs (the determinism tests
 * and the cli_serve golden rely on this). checkServeStatsJson() is the
 * schema check behind `hwdbg obscheck`.
 */

#ifndef HWDBG_SERVE_STATS_HH
#define HWDBG_SERVE_STATS_HH

#include <string>

namespace hwdbg::serve
{

/**
 * Validate a hwdbg-serve-stats v1 document. Returns "" when valid,
 * else the first violation. Quantiles must be monotone
 * (p50 <= p95 <= p99 <= max) per command.
 */
std::string checkServeStatsJson(const std::string &text);

/**
 * Zero every number whose key ends in `_us` (and the values of
 * `latency_us` in spilled request lines), leaving all deterministic
 * fields untouched. Works on any JSON text, one line or many.
 */
std::string scrubServeTimings(const std::string &text);

} // namespace hwdbg::serve

#endif // HWDBG_SERVE_STATS_HH
