/**
 * @file
 * Content-addressed snapshot store shared across serve sessions.
 *
 * Debug sessions replaying the same stimulus prefix of the same cached
 * design produce byte-identical checkpoint snapshots. The store interns
 * them by sim::snapshotFingerprint() (FNV-1a over the full snapshot
 * content), so N sessions at the same checkpoint cycle share one
 * SimSnapshot instead of N copies. Entries are held weakly: a snapshot
 * lives exactly as long as some session's checkpoint ring references
 * it, so closing sessions releases their memory.
 *
 * Dedup is observable via the serve.snapshot.* metrics
 * (stored/stored_bytes/dedup_hits/dedup_bytes) that the scaling bench
 * and CI smoke assert on.
 */

#ifndef HWDBG_SERVE_SNAPSTORE_HH
#define HWDBG_SERVE_SNAPSTORE_HH

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>

#include "debug/checkpoint.hh"

namespace hwdbg::serve
{

class SnapshotStore : public debug::SnapshotInterner
{
  public:
    std::shared_ptr<const sim::SimSnapshot>
    intern(sim::SimSnapshot &&snap) override;

    struct Stats
    {
        uint64_t stored = 0;
        uint64_t storedBytes = 0;
        uint64_t dedupHits = 0;
        uint64_t dedupBytes = 0;
    };
    Stats stats() const;

    /** Live (non-expired) entries; prunes dead ones as a side effect. */
    size_t size();

  private:
    mutable std::mutex mu_;
    std::map<uint64_t, std::weak_ptr<const sim::SimSnapshot>> byHash_;
    Stats stats_;
    uint64_t sincePrune_ = 0;
};

} // namespace hwdbg::serve

#endif // HWDBG_SERVE_SNAPSTORE_HH
