/**
 * @file
 * Shared design cache: elaborate once, serve many.
 *
 * Serve sessions attach to designs through this cache, keyed by
 * (source, bug variant, backend). The cached value is everything that
 * is expensive and reusable about an attach: the parsed + elaborated +
 * instrumented module, the elaborated constants, and the recorded
 * stimulus tape (recording a bug workload is a full simulation run, so
 * sharing it is where most of the warm-attach speedup comes from).
 *
 * The build-once guarantee is strict: for a given key the builder runs
 * exactly once even under concurrent attaches — later callers block on
 * a condition variable until the first build finishes. Failed builds
 * are negatively cached (the error string is replayed to every later
 * attach) so a bad design stays deterministic and cheap.
 *
 * Cached modules are masters: sessions must simulate a
 * hdl::cloneModule() copy, never the master itself, because lowering
 * annotates the AST in place.
 */

#ifndef HWDBG_SERVE_CACHE_HH
#define HWDBG_SERVE_CACHE_HH

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/bits.hh"
#include "hdl/ast.hh"
#include "sim/simulator.hh"

namespace hwdbg::serve
{

/** One fully-prepared design, shared read-only between sessions. */
struct CachedDesign
{
    /** Cache key this entry was built under. */
    std::string key;
    /** Top module name. */
    std::string name;
    /** Instrumented, elaborated master module (clone before use). */
    hdl::ModulePtr module;
    /** Un-instrumented elaborated master (analyze sessions). */
    hdl::ModulePtr base;
    /** Recorded or loaded stimulus, shared by every session. */
    std::shared_ptr<const sim::StimulusTape> tape;
    std::map<std::string, Bits> constants;
    /** Wall-clock cost of the one real build, for serve `stats`. */
    uint64_t buildMicros = 0;
};

class DesignCache
{
  public:
    using Builder = std::function<CachedDesign()>;

    struct Attach
    {
        std::shared_ptr<const CachedDesign> design;
        /** False exactly once per key: the attach that built it. */
        bool hit = false;
    };

    /**
     * Return the cached design for @p key, building it with @p build
     * on the first attach. Concurrent attaches for the same key wait
     * for the in-flight build. Build failures (HdlError) are cached
     * and rethrown verbatim to every subsequent attach.
     */
    Attach getOrBuild(const std::string &key, const Builder &build);

    struct Stats
    {
        uint64_t hits = 0;
        uint64_t misses = 0;
        uint64_t builds = 0;
        uint64_t buildMicros = 0;
    };
    Stats stats() const;
    size_t size() const;

  private:
    struct Entry
    {
        std::shared_ptr<const CachedDesign> design;
        /** Negative cache: non-empty replays the build failure. */
        std::string error;
        bool building = false;
    };

    mutable std::mutex mu_;
    std::condition_variable built_;
    std::map<std::string, Entry> entries_;
    Stats stats_;
};

} // namespace hwdbg::serve

#endif // HWDBG_SERVE_CACHE_HH
