/**
 * @file
 * `hwdbg serve`: a long-lived multi-session debug/analysis server.
 *
 * One Server hosts many simultaneous sessions over the JSON-lines
 * protocol, multiplexed with session ids. A channel (stdio, a script
 * file, or one TCP connection) interleaves two request classes:
 *
 *   server-level   open/close/sessions/stats/help/shutdown/quit —
 *                  no session routing; responses carry "session":0
 *   session-routed JSON `"session":N` or a bare-text `@N ` prefix;
 *                  the request dispatches into session N's
 *                  ProtocolHandler and the response is the ordinary
 *                  debug response prefixed with "session":N
 *
 * Wire format (checkServeTranscript() enforces):
 *
 *   hello     {"proto":"hwdbg-serve","version":1,"build":{...}}
 *   server    {"session":0,"id":<n|null>,"ok":b,["error":...,]
 *              "cmd":...,["payload":{...}]}
 *   routed    {"session":N,<debug response fields incl. state>}
 *
 * Server commands (key=value arguments, values must be space-free):
 *
 *   open <kind> bug=ID [fixed] | file=PATH [top=NAME] [stimulus=FILE]
 *        [backend=interp|bytecode] [out=FILE] [vcd=FILE]
 *        [signals=G1,G2] [trigger=EXPR] [budget=BYTES] [passes=A,B]
 *     kind is debug | cover | trace | analyze. Debug sessions stay
 *     interactive; the one-shot kinds run at open and keep a summary.
 *   close <sid> / sessions / help / quit / shutdown
 *   stats [out=FILE]  full hwdbg-serve-stats v1 document (serve/stats.hh)
 *   health            liveness probe: status/sessions/requests/errors
 *   slow              slow-request ring (latency >= --slow-us)
 *
 * Telemetry: every request is logged into an obs::RequestLog (request
 * id, session, command, outcome, latency) with per-command latency
 * histograms behind `stats`; requests at or over the slow threshold
 * land in the `slow` ring and everything can spill as JSON lines to
 * ServerOptions::reqlogPath. A `stats` request records itself only
 * after rendering its response, so the first stats document of a
 * scripted run is deterministic. With --trace armed, every session
 * gets its own named Perfetto track carrying attach + command spans.
 *
 * Sessions attach through the shared DesignCache (elaborate + record
 * once per (source, variant, backend)) and intern checkpoints in the
 * shared SnapshotStore, so the Nth session on a design is attach-cheap
 * and checkpoint-dedup'd against its peers. Every response line is a
 * deterministic function of the request sequence on its channel, which
 * keeps serve transcripts golden-diffable like debug ones.
 */

#ifndef HWDBG_SERVE_SERVER_HH
#define HWDBG_SERVE_SERVER_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>

#include "obs/reqlog.hh"
#include "serve/cache.hh"
#include "serve/session.hh"
#include "serve/snapstore.hh"

namespace hwdbg::serve
{

struct ServerOptions
{
    /** Checkpoint cadence handed to every debug session's engine. */
    uint64_t checkpointInterval = 128;
    size_t checkpointCapacity = 64;
    /** Per-request telemetry (--no-telemetry turns it off). */
    bool telemetry = true;
    /** Requests at or over this land in the slow ring (--slow-us). */
    uint64_t slowThresholdUs = 100000;
    /** JSON-lines spill of every request event (--reqlog FILE). */
    std::string reqlogPath;
    /** Ring capacities for the request log. */
    size_t reqlogCapacity = 1024;
    size_t slowCapacity = 64;
};

class Server
{
  public:
    explicit Server(ServerOptions opts = {});
    ~Server(); // out-of-line: spill_ needs the complete ofstream

    /** The hwdbg-serve hello line (no trailing newline). */
    std::string helloJson() const;

    /**
     * Drive one JSON-lines channel until EOF or `quit`/`shutdown`.
     * Emits the hello, then one response per request line. Returns the
     * number of failed commands (0 for a clean channel). Thread-safe:
     * every TCP connection runs its own channel concurrently.
     */
    int runChannel(std::istream &in, std::ostream &out);

    /**
     * Bind + listen on 127.0.0.1:@p port (0 picks an ephemeral port)
     * and return the bound port. Call acceptLoop() to start serving.
     */
    uint16_t listenTcp(uint16_t port);

    /**
     * Accept connections on the listenTcp() socket, one concurrent
     * channel per connection, until a channel issues `shutdown` (or
     * shutdown() is called). Returns the total number of failed
     * commands across all channels.
     */
    int acceptLoop();

    /** listenTcp() + acceptLoop() in one call. */
    int serveTcp(uint16_t port, uint16_t *boundPort = nullptr);

    /** Stop the TCP accept loop (idempotent, thread-safe). */
    void shutdown();

    DesignCache &cache() { return cache_; }
    SnapshotStore &snapshots() { return snapshots_; }
    SessionRegistry &sessions() { return registry_; }
    obs::RequestLog &requestLog() { return reqlog_; }

    /**
     * The hwdbg-serve-stats v1 document, one line (see serve/stats.hh
     * for the schema). Also the payload of the `stats` command; tests
     * call it directly so the fetch itself is not logged.
     */
    std::string statsJson();

  private:
    std::string handleLine(const debug::Request &req, bool *failed,
                           bool *quitChannel);
    std::string serverCommand(const debug::Request &req, bool *failed,
                              bool *quitChannel);
    std::string routedCommand(const debug::Request &req, bool *failed);
    /** Runs `open`; returns the payload JSON. Throws HdlError. */
    std::string openSession(const std::vector<std::string> &args);
    /** Microseconds since the server was constructed. */
    uint64_t uptimeUs() const;

    ServerOptions opts_;
    DesignCache cache_;
    SnapshotStore snapshots_;
    SessionRegistry registry_;
    obs::RequestLog reqlog_;
    /** Owns the --reqlog spill stream for the process lifetime. */
    std::unique_ptr<std::ofstream> spill_;
    std::chrono::steady_clock::time_point start_;
    std::atomic<uint64_t> channels_{0};
    std::atomic<uint64_t> channelsActive_{0};
    std::atomic<bool> stopping_{false};
    std::atomic<int> listenFd_{-1};
};

/**
 * Connect to a server on 127.0.0.1:@p port and drive it from @p script
 * in lockstep (one request line, one response line), echoing the hello
 * and every response to @p out. An `@_` routing prefix substitutes the
 * id of the session this client most recently opened, so one static
 * script serves any number of concurrent clients whose ids differ.
 * Returns the number of failed responses. The CI smoke's scripted
 * concurrent clients use this.
 */
int runClient(uint16_t port, std::istream &script, std::ostream &out);

/**
 * Validate a serve transcript: the hwdbg-serve hello first, then
 * response objects whose first member is a numeric "session" followed
 * by the debug response fields (state optional: server-level responses
 * have none, routed responses always do). Returns "" when valid, else
 * "line N: reason".
 */
std::string checkServeTranscript(const std::string &text);

} // namespace hwdbg::serve

#endif // HWDBG_SERVE_SERVER_HH
