/**
 * @file
 * `hwdbg serve --connect N --monitor`: a top-style live view.
 *
 * The monitor is an ordinary client of the serve protocol: it polls
 * the `stats` command and renders each hwdbg-serve-stats document as a
 * refreshing table — global request/error/slow counters, cache and
 * snapshot-dedup totals, the per-command latency quantiles, and one
 * row per live session. Frame rendering is a pure function of the
 * stats document (renderTopFrame), so tests drive it without a socket.
 */

#ifndef HWDBG_SERVE_MONITOR_HH
#define HWDBG_SERVE_MONITOR_HH

#include <cstdint>
#include <iosfwd>
#include <string>

namespace hwdbg::serve
{

struct TopOptions
{
    /** Delay between stats polls. */
    uint64_t intervalMs = 1000;
    /** Frames to render; 0 = until the server goes away. */
    uint64_t iterations = 0;
    /** Prefix each frame with the ANSI home+clear sequence. */
    bool clear = true;
};

/**
 * Render one monitor frame from a hwdbg-serve-stats v1 document (the
 * `stats` payload). Malformed input renders as an error line rather
 * than failing — a live view should survive a flaky poll.
 */
std::string renderTopFrame(const std::string &statsJson);

/**
 * Connect to 127.0.0.1:@p port and poll `stats` per @p opts, writing
 * frames to @p out. Returns 0 on clean exit (iteration budget reached
 * or server closed), 1 when the connection could not be established.
 */
int runTop(uint16_t port, const TopOptions &opts, std::ostream &out);

} // namespace hwdbg::serve

#endif // HWDBG_SERVE_MONITOR_HH
