#include "serve/cache.hh"

#include <chrono>

#include "common/logging.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace hwdbg::serve
{

DesignCache::Attach
DesignCache::getOrBuild(const std::string &key, const Builder &build)
{
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
        auto it = entries_.find(key);
        if (it == entries_.end())
            break;
        Entry &entry = it->second;
        if (entry.building) {
            built_.wait(lock);
            continue; // re-check: the build may have failed + erased
        }
        if (!entry.error.empty()) {
            ++stats_.hits;
            HWDBG_STAT_INC("serve.cache.hits", 1);
            throw HdlError(entry.error);
        }
        ++stats_.hits;
        HWDBG_STAT_INC("serve.cache.hits", 1);
        return {entry.design, true};
    }

    // First attach for this key: claim the build slot, then run the
    // expensive builder outside the lock so other keys stay live.
    entries_[key].building = true;
    ++stats_.misses;
    HWDBG_STAT_INC("serve.cache.misses", 1);
    lock.unlock();

    CachedDesign built;
    std::string error;
    auto start = std::chrono::steady_clock::now();
    try {
        obs::ObsSpan span("serve.cache.build:" + key);
        built = build();
    } catch (const HdlError &e) {
        error = e.what();
    }
    auto micros =
        static_cast<uint64_t>(std::chrono::duration_cast<
                                  std::chrono::microseconds>(
                                  std::chrono::steady_clock::now() -
                                  start)
                                  .count());

    lock.lock();
    Entry &entry = entries_[key];
    entry.building = false;
    stats_.buildMicros += micros;
    HWDBG_STAT_HIST("serve.cache.build_us", micros);
    if (!error.empty()) {
        entry.error = error;
        ++stats_.builds;
        HWDBG_STAT_INC("serve.cache.builds", 1);
        built_.notify_all();
        throw HdlError(error);
    }
    built.key = key;
    built.buildMicros = micros;
    entry.design =
        std::make_shared<const CachedDesign>(std::move(built));
    ++stats_.builds;
    HWDBG_STAT_INC("serve.cache.builds", 1);
    built_.notify_all();
    return {entry.design, false};
}

DesignCache::Stats
DesignCache::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

size_t
DesignCache::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
}

} // namespace hwdbg::serve
