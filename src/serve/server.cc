#include "serve/server.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <istream>
#include <map>
#include <ostream>
#include <set>
#include <sstream>
#include <streambuf>
#include <thread>
#include <vector>

#include "analyze/analyze.hh"
#include "bugbase/testbed.hh"
#include "bugbase/workloads.hh"
#include "common/logging.hh"
#include "compile/backend.hh"
#include "cover/run.hh"
#include "cover/snapshot.hh"
#include "debug/protocol.hh"
#include "elab/elaborate.hh"
#include "hdl/parser.hh"
#include "lint/lint.hh"
#include "obs/json.hh"
#include "obs/jsoncheck.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "serve/stats.hh"
#include "trace/json.hh"
#include "trace/run.hh"
#include "trace/vcd.hh"

namespace hwdbg::serve
{

namespace
{

/** Minimal iostream plumbing over a connected socket fd. */
class FdBuf : public std::streambuf
{
  public:
    explicit FdBuf(int fd) : fd_(fd)
    {
        setg(ibuf_, ibuf_, ibuf_);
        setp(obuf_, obuf_ + sizeof(obuf_));
    }

  protected:
    int_type underflow() override
    {
        ssize_t n = ::read(fd_, ibuf_, sizeof(ibuf_));
        if (n <= 0)
            return traits_type::eof();
        setg(ibuf_, ibuf_, ibuf_ + n);
        return traits_type::to_int_type(ibuf_[0]);
    }

    int_type overflow(int_type ch) override
    {
        if (sync() != 0)
            return traits_type::eof();
        if (!traits_type::eq_int_type(ch, traits_type::eof())) {
            obuf_[0] = traits_type::to_char_type(ch);
            pbump(1);
        }
        return traits_type::not_eof(ch);
    }

    int sync() override
    {
        const char *p = pbase();
        size_t len = static_cast<size_t>(pptr() - pbase());
        while (len) {
            ssize_t n = ::write(fd_, p, len);
            if (n <= 0)
                return -1;
            p += n;
            len -= static_cast<size_t>(n);
        }
        setp(obuf_, obuf_ + sizeof(obuf_));
        return 0;
    }

  private:
    int fd_;
    char ibuf_[4096];
    char obuf_[4096];
};

std::string
readFileOrFatal(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("cannot open '%s'", path.c_str());
    std::ostringstream body;
    body << in.rdbuf();
    return body.str();
}

void
writeFileOrFatal(const std::string &path, const std::string &text)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        fatal("cannot write '%s'", path.c_str());
    out << text;
}

uint64_t
parseU64(const std::string &text, const char *what)
{
    char *end = nullptr;
    errno = 0;
    unsigned long long v = std::strtoull(text.c_str(), &end, 10);
    if (errno || !end || *end || end == text.c_str())
        fatal("%s: bad number '%s'", what, text.c_str());
    return v;
}

std::vector<std::string>
splitCsv(const std::string &text)
{
    std::vector<std::string> out;
    std::string item;
    std::istringstream in(text);
    while (std::getline(in, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

sim::BackendFactory
backendByName(const std::string &name)
{
    if (name == "interp")
        return {};
    if (name == "bytecode")
        return compile::makeBytecodeBackend();
    fatal("unknown backend '%s' (expected interp or bytecode)",
          name.c_str());
    return {};
}

/** key=value / bare-flag argument list for `open`. */
struct OpenArgs
{
    std::map<std::string, std::string> kv;
    std::set<std::string> flags;

    std::string opt(const std::string &key,
                    const std::string &dflt = "") const
    {
        auto it = kv.find(key);
        return it == kv.end() ? dflt : it->second;
    }
    bool flag(const std::string &name) const
    {
        return flags.count(name) != 0;
    }
};

OpenArgs
parseOpenArgs(const std::vector<std::string> &args)
{
    OpenArgs out;
    for (size_t i = 1; i < args.size(); ++i) {
        auto eq = args[i].find('=');
        if (eq == std::string::npos)
            out.flags.insert(args[i]);
        else
            out.kv[args[i].substr(0, eq)] = args[i].substr(eq + 1);
    }
    return out;
}

} // namespace

Server::Server(ServerOptions opts)
    : opts_(opts),
      reqlog_(opts.reqlogCapacity, opts.slowCapacity),
      start_(std::chrono::steady_clock::now())
{
    reqlog_.setEnabled(opts_.telemetry);
    reqlog_.setSlowThresholdUs(opts_.slowThresholdUs);
    if (!opts_.reqlogPath.empty()) {
        spill_ = std::make_unique<std::ofstream>(opts_.reqlogPath,
                                                 std::ios::binary);
        if (!*spill_)
            fatal("serve: cannot write request log '%s'",
                  opts_.reqlogPath.c_str());
        reqlog_.setSpill(spill_.get());
    }
}

Server::~Server()
{
    reqlog_.setSpill(nullptr);
}

uint64_t
Server::uptimeUs() const
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
}

std::string
Server::helloJson() const
{
    debug::JsonObject hello;
    hello.field("proto", std::string("hwdbg-serve"));
    hello.field("version", static_cast<int64_t>(1));
    hello.raw("build", obs::buildInfoJson());
    return hello.str();
}

std::string
Server::openSession(const std::vector<std::string> &args)
{
    if (args.empty())
        fatal("usage: open <debug|cover|trace|analyze> bug=ID|file=PATH "
              "[key=value...]");
    const std::string &kind = args[0];
    if (kind != "debug" && kind != "cover" && kind != "trace" &&
        kind != "analyze")
        fatal("unknown session kind '%s' "
              "(expected debug, cover, trace, or analyze)",
              kind.c_str());

    OpenArgs oa = parseOpenArgs(args);
    std::string bugId = oa.opt("bug");
    std::string file = oa.opt("file");
    std::string stimulus = oa.opt("stimulus");
    std::string backendName = oa.opt("backend", "interp");
    bool buggy = !oa.flag("fixed");
    if (bugId.empty() == file.empty())
        fatal("open needs exactly one of bug=ID or file=PATH");
    if (bugId.empty() && stimulus.empty() && kind != "analyze")
        fatal("%s sessions on file= designs need stimulus=FILE",
              kind.c_str());
    // Validate eagerly so a bad name fails before a cache slot exists.
    sim::BackendFactory backend = backendByName(backendName);

    std::string key;
    DesignCache::Builder builder;
    if (!bugId.empty()) {
        key = "bug:" + bugId + (buggy ? ":buggy" : ":fixed") + ":" +
              backendName;
        builder = [bugId, buggy]() {
            const auto &bug = bugs::bugById(bugId);
            auto elaborated = bugs::buildDesign(bug, buggy);
            debug::InstrumentConfig icfg;
            icfg.fsm = bug.monitors.fsm;
            icfg.depVariable = bug.monitors.depVariable;
            icfg.depCycles = bug.monitors.depCycles;
            icfg.lossCheck = bug.lossCheck;
            icfg.constants = elaborated.constants;
            auto instr = debug::instrumentForDebug(*elaborated.mod, icfg);
            auto tape = std::make_shared<sim::StimulusTape>();
            {
                // Recording is a full simulation run; caching it is
                // most of what makes the second attach cheap.
                sim::Simulator recorder(instr.module);
                recorder.recordStimulus(tape.get());
                bugs::runWorkload(bug, recorder);
                recorder.recordStimulus(nullptr);
            }
            CachedDesign built;
            built.name = instr.module->name;
            built.module = instr.module;
            built.base = elaborated.mod;
            built.tape = tape;
            built.constants = elaborated.constants;
            return built;
        };
    } else {
        std::string top = oa.opt("top");
        key = "file:" + file + ":top:" + top + ":stim:" + stimulus +
              ":" + backendName;
        builder = [file, top, stimulus]() {
            hdl::Design design =
                hdl::parseWithDefines(readFileOrFatal(file), {}, file);
            if (design.modules.empty())
                fatal("'%s' contains no modules", file.c_str());
            std::string topName =
                top.empty() ? design.modules.back()->name : top;
            auto elaborated = elab::elaborate(design, topName);
            debug::InstrumentConfig icfg;
            icfg.constants = elaborated.constants;
            auto instr = debug::instrumentForDebug(*elaborated.mod, icfg);
            auto tape = std::make_shared<sim::StimulusTape>();
            if (!stimulus.empty())
                *tape = debug::loadStimulusFile(stimulus);
            CachedDesign built;
            built.name = instr.module->name;
            built.module = instr.module;
            built.base = elaborated.mod;
            built.tape = tape;
            built.constants = elaborated.constants;
            return built;
        };
    }

    DesignCache::Attach attach = cache_.getOrBuild(key, builder);
    const auto &design = attach.design;
    std::string label = bugId.empty() ? file : bugId;

    auto sess = registry_.create(kind);
    sess->design = design;
    sess->cacheHit = attach.hit;
    sess->designName = design->name;
    sess->openedUs = uptimeUs();
    // One named Perfetto track per session, minted lazily so an
    // untraced long-lived server never grows the track registry.
    if (obs::traceEnabled())
        sess->track = obs::traceRegisterTrack(
            "serve.session." + std::to_string(sess->id) + ":" + kind +
            ":" + label);
    obs::ObsSpan attachSpan("serve.attach:" + kind + ":" + label,
                            sess->track);

    debug::JsonObject payload;
    payload.field("session", sess->id);
    payload.field("kind", kind);
    payload.field("design", design->name);
    payload.field("cache",
                  std::string(attach.hit ? "hit" : "miss"));

    try {
        if (kind == "debug") {
            debug::EngineOptions eopts;
            eopts.checkpointInterval = opts_.checkpointInterval;
            eopts.checkpointCapacity = opts_.checkpointCapacity;
            eopts.constants = design->constants;
            eopts.backend = backend;
            eopts.snapshots = &snapshots_;
            sess->engine = std::make_unique<debug::Engine>(
                hdl::cloneModule(*design->module), design->tape, eopts);
            sess->handler = std::make_unique<debug::ProtocolHandler>(
                *sess->engine);
            sess->handler->setTraceTrack(sess->track);
            payload.field("steps",
                          static_cast<uint64_t>(sess->engine->tapeSize()));
            payload.field(
                "signals",
                static_cast<uint64_t>(
                    sess->engine->sim().design().numSignals()));
        } else if (kind == "cover") {
            auto snap = cover::coverWithTape(
                hdl::cloneModule(*design->module), label, *design->tape,
                backend);
            auto totals = snap.totals();
            if (!oa.opt("out").empty())
                writeFileOrFatal(oa.opt("out"), cover::toJson(snap));
            debug::JsonObject summary;
            summary.field("covered", totals.covered());
            summary.field("total", totals.total());
            sess->summaryJson = summary.str();
            payload.field("covered", totals.covered());
            payload.field("total", totals.total());
        } else if (kind == "trace") {
            trace::TraceConfig cfg;
            cfg.signals = splitCsv(oa.opt("signals"));
            cfg.trigger = oa.opt("trigger");
            if (!oa.opt("budget").empty())
                cfg.budgetBytes =
                    parseU64(oa.opt("budget"), "budget=");
            auto dump = trace::traceWithTape(
                hdl::cloneModule(*design->module), label, *design->tape,
                cfg, backend);
            if (!oa.opt("out").empty())
                writeFileOrFatal(oa.opt("out"), trace::toJson(dump));
            if (!oa.opt("vcd").empty())
                writeFileOrFatal(oa.opt("vcd"), trace::renderVcd(dump));
            debug::JsonObject summary;
            summary.field("rows",
                          static_cast<uint64_t>(dump.rows.size()));
            summary.field("samples", dump.samples);
            summary.field("drops", dump.drops);
            summary.field("fired", dump.fired);
            sess->summaryJson = summary.str();
            payload.field("rows",
                          static_cast<uint64_t>(dump.rows.size()));
            payload.field("samples", dump.samples);
            payload.field("drops", dump.drops);
            payload.field("fired", dump.fired);
        } else { // analyze
            analyze::AnalyzeOptions aopts;
            for (const auto &pass : splitCsv(oa.opt("passes")))
                aopts.passes.insert(pass);
            auto base = hdl::cloneModule(*design->base);
            auto diags = analyze::runAnalyze(*base, aopts);
            std::vector<std::string> ran;
            for (const auto &pass : analyze::analyzePasses())
                if (aopts.passes.empty() || aopts.passes.count(pass.id))
                    ran.push_back(pass.id);
            if (!oa.opt("out").empty())
                writeFileOrFatal(oa.opt("out"),
                                 analyze::renderAnalyzeJson(ran, diags));
            debug::JsonObject summary;
            summary.field("passes",
                          static_cast<uint64_t>(ran.size()));
            summary.field("diagnostics",
                          static_cast<uint64_t>(diags.size()));
            summary.field("errors", lint::hasErrors(diags));
            sess->summaryJson = summary.str();
            payload.field("passes",
                          static_cast<uint64_t>(ran.size()));
            payload.field("diagnostics",
                          static_cast<uint64_t>(diags.size()));
            payload.field("errors", lint::hasErrors(diags));
        }
    } catch (const HdlError &) {
        // Failed opens must not leave a half-built session listed.
        registry_.close(sess->id);
        throw;
    }

    return payload.str();
}

std::string
Server::statsJson()
{
    auto cache = cache_.stats();
    auto snaps = snapshots_.stats();

    debug::JsonObject server;
    server.field("sessions", static_cast<uint64_t>(registry_.count()));
    server.field("opened", registry_.opened());
    server.field("channels", channels_.load(std::memory_order_relaxed));
    server.field("channels_active",
                 channelsActive_.load(std::memory_order_relaxed));
    server.field("requests", reqlog_.requests());
    server.field("errors", reqlog_.errors());
    server.field("slow", reqlog_.slowCount());
    server.field("slow_threshold_us", reqlog_.slowThresholdUs());
    server.field("dispatched", registry_.dispatched());
    server.field("retired_cmds", registry_.retiredCmds());
    server.field("uptime_us", uptimeUs());

    debug::JsonObject cacheBody;
    cacheBody.field("entries", static_cast<uint64_t>(cache_.size()));
    cacheBody.field("hits", cache.hits);
    cacheBody.field("misses", cache.misses);
    cacheBody.field("builds", cache.builds);
    cacheBody.field("build_us", cache.buildMicros);

    debug::JsonObject snapBody;
    snapBody.field("stored", snaps.stored);
    snapBody.field("stored_bytes", snaps.storedBytes);
    snapBody.field("dedup_hits", snaps.dedupHits);
    snapBody.field("dedup_bytes", snaps.dedupBytes);
    uint64_t interned = snaps.stored + snaps.dedupHits;
    snapBody.field("dedup_ratio_pct",
                   interned ? snaps.dedupHits * 100 / interned
                            : uint64_t{0});

    std::vector<std::string> cmdRows;
    for (const auto &snap : reqlog_.commands()) {
        debug::JsonObject row;
        row.field("cmd", snap.cmd);
        row.field("count", snap.count);
        row.field("errors", snap.errors);
        row.field("p50_us", snap.p50Us);
        row.field("p95_us", snap.p95Us);
        row.field("p99_us", snap.p99Us);
        row.field("max_us", snap.maxUs);
        cmdRows.push_back(row.str());
    }

    uint64_t now = uptimeUs();
    std::vector<std::string> sessRows;
    for (const auto &sess : registry_.list()) {
        debug::JsonObject row;
        row.field("session", sess->id);
        row.field("kind", sess->kind);
        row.field("design", sess->designName);
        row.field("cache",
                  std::string(sess->cacheHit ? "hit" : "miss"));
        row.field("cmds", sess->cmds.load(std::memory_order_relaxed));
        row.field("errors", sess->errs.load(std::memory_order_relaxed));
        if (sess->engine) {
            std::lock_guard<std::mutex> lock(sess->mu);
            row.field("cycle", sess->engine->sim().cycle());
        }
        row.field("uptime_us",
                  now > sess->openedUs ? now - sess->openedUs
                                       : uint64_t{0});
        sessRows.push_back(row.str());
    }

    debug::JsonObject doc;
    doc.field("format", std::string("hwdbg-serve-stats"));
    doc.field("version", static_cast<int64_t>(1));
    doc.raw("build", obs::buildInfoJson());
    doc.raw("server", server.str());
    doc.raw("cache", cacheBody.str());
    doc.raw("snapshots", snapBody.str());
    doc.raw("commands", debug::jsonArray(cmdRows));
    doc.raw("sessions", debug::jsonArray(sessRows));
    return doc.str();
}

std::string
Server::serverCommand(const debug::Request &req, bool *failed,
                      bool *quitChannel)
{
    bool ok = true;
    std::string error;
    std::string payload;

    obs::ObsSpan span("serve.cmd:" + req.cmd);
    try {
        if (req.cmd == "open") {
            payload = openSession(req.args);
        } else if (req.cmd == "close") {
            if (req.args.size() != 1)
                fatal("usage: close <session-id>");
            int64_t sid = static_cast<int64_t>(
                parseU64(req.args[0], "close"));
            if (!registry_.close(sid))
                fatal("no session %lld",
                      static_cast<long long>(sid));
            debug::JsonObject body;
            body.field("session", sid);
            payload = body.str();
        } else if (req.cmd == "sessions") {
            std::vector<std::string> rows;
            for (const auto &sess : registry_.list()) {
                debug::JsonObject row;
                row.field("session", sess->id);
                row.field("kind", sess->kind);
                row.field("design",
                          sess->design ? sess->design->name
                                       : std::string());
                row.field("cache",
                          std::string(sess->cacheHit ? "hit"
                                                     : "miss"));
                if (sess->engine) {
                    std::lock_guard<std::mutex> lock(sess->mu);
                    row.field("cycle", sess->engine->sim().cycle());
                } else if (!sess->summaryJson.empty()) {
                    row.raw("result", sess->summaryJson);
                }
                rows.push_back(row.str());
            }
            debug::JsonObject body;
            body.field("count",
                       static_cast<uint64_t>(rows.size()));
            body.raw("sessions", debug::jsonArray(rows));
            payload = body.str();
        } else if (req.cmd == "stats") {
            std::string doc = statsJson();
            // `stats out=FILE` also lands the document on disk (the CI
            // smoke uploads it as an artifact).
            for (const auto &arg : req.args) {
                if (arg.rfind("out=", 0) == 0 && arg.size() > 4)
                    writeFileOrFatal(arg.substr(4), doc + "\n");
                else
                    fatal("stats: unknown argument '%s' "
                          "(expected out=FILE)",
                          arg.c_str());
            }
            payload = doc;
        } else if (req.cmd == "health") {
            debug::JsonObject body;
            body.field("status", std::string("ok"));
            body.field("sessions",
                       static_cast<uint64_t>(registry_.count()));
            body.field("channels_active",
                       channelsActive_.load(std::memory_order_relaxed));
            body.field("requests", reqlog_.requests());
            body.field("errors", reqlog_.errors());
            body.field("uptime_us", uptimeUs());
            payload = body.str();
        } else if (req.cmd == "slow") {
            std::vector<std::string> rows;
            for (const auto &event : reqlog_.slow())
                rows.push_back(obs::RequestLog::eventJson(event));
            debug::JsonObject body;
            body.field("threshold_us", reqlog_.slowThresholdUs());
            body.field("count", static_cast<uint64_t>(rows.size()));
            body.raw("requests", debug::jsonArray(rows));
            payload = body.str();
        } else if (req.cmd == "help") {
            static const char *cmds[] = {
                "open", "close", "sessions", "stats", "health",
                "slow", "help",  "quit",     "shutdown",
            };
            std::vector<std::string> rows;
            for (const char *cmd : cmds)
                rows.push_back("\"" + std::string(cmd) + "\"");
            debug::JsonObject body;
            body.raw("commands", debug::jsonArray(rows));
            payload = body.str();
        } else if (req.cmd == "quit") {
            *quitChannel = true;
        } else if (req.cmd == "shutdown") {
            shutdown();
            *quitChannel = true;
        } else {
            fatal("unknown server command '%s' (try help, or route "
                  "with \"session\":N / @N)",
                  req.cmd.c_str());
        }
    } catch (const HdlError &e) {
        ok = false;
        error = e.what();
    }

    HWDBG_STAT_INC("serve.cmds", 1);
    if (!ok) {
        HWDBG_STAT_INC("serve.errors", 1);
        *failed = true;
    }

    debug::JsonObject resp;
    resp.field("session", static_cast<int64_t>(0));
    if (req.hasId)
        resp.field("id", req.id);
    else
        resp.raw("id", "null");
    resp.field("ok", ok);
    if (!ok)
        resp.field("error", error);
    resp.field("cmd", req.cmd);
    if (!payload.empty())
        resp.raw("payload", payload);
    return resp.str();
}

std::string
Server::routedCommand(const debug::Request &req, bool *failed)
{
    auto sess = registry_.find(req.session);
    std::string error;
    if (!sess)
        error = csprintf("no session %lld",
                         static_cast<long long>(req.session));
    else if (!sess->handler)
        error = csprintf("session %lld (%s) is not interactive",
                         static_cast<long long>(req.session),
                         sess->kind.c_str());
    if (!error.empty()) {
        HWDBG_STAT_INC("serve.cmds", 1);
        HWDBG_STAT_INC("serve.errors", 1);
        *failed = true;
        debug::JsonObject resp;
        resp.field("session", req.session);
        if (req.hasId)
            resp.field("id", req.id);
        else
            resp.raw("id", "null");
        resp.field("ok", false);
        resp.field("error", error);
        resp.field("cmd", req.cmd.empty() ? std::string("?") : req.cmd);
        return resp.str();
    }

    std::lock_guard<std::mutex> lock(sess->mu);
    debug::ProtocolHandler::Result res = sess->handler->handle(req);
    if (!res.ok)
        *failed = true;
    registry_.noteDispatch(*sess, res.ok);
    debug::JsonObject resp;
    resp.field("session", sess->id);
    sess->handler->responseFields(req, res, resp);
    // A routed `quit` retires the session, not the channel. Dispatch
    // accounting above runs first so close() folds the quit into the
    // retired totals.
    if (res.quit)
        registry_.close(sess->id);
    return resp.str();
}

std::string
Server::handleLine(const debug::Request &req, bool *failed,
                   bool *quitChannel)
{
    // One RequestEvent per line, recorded after the response is
    // rendered: a `stats` request therefore never sees itself, which
    // keeps the first stats document of a scripted run deterministic.
    obs::RequestEvent event;
    event.id = reqlog_.nextRequestId();
    event.session = req.hasSession ? static_cast<uint64_t>(req.session)
                                   : uint64_t{0};
    event.cmd = req.cmd.empty() ? std::string("?") : req.cmd;
    auto t0 = std::chrono::steady_clock::now();

    std::string resp;
    bool lineFailed = false;
    if (!req.error.empty()) {
        HWDBG_STAT_INC("serve.cmds", 1);
        HWDBG_STAT_INC("serve.errors", 1);
        lineFailed = true;
        debug::JsonObject err;
        err.field("session",
                  req.hasSession ? req.session
                                 : static_cast<int64_t>(0));
        if (req.hasId)
            err.field("id", req.id);
        else
            err.raw("id", "null");
        err.field("ok", false);
        err.field("error", req.error);
        err.field("cmd", event.cmd);
        resp = err.str();
    } else if (req.hasSession && req.session != 0) {
        resp = routedCommand(req, &lineFailed);
    } else {
        resp = serverCommand(req, &lineFailed, quitChannel);
    }

    event.ok = !lineFailed;
    event.latencyUs = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
    reqlog_.record(event);
    HWDBG_STAT_HIST("serve.request_latency_us", event.latencyUs);
    if (lineFailed)
        *failed = true;
    return resp;
}

int
Server::runChannel(std::istream &in, std::ostream &out)
{
    HWDBG_STAT_INC("serve.channels", 1);
    channels_.fetch_add(1, std::memory_order_relaxed);
    uint64_t active =
        channelsActive_.fetch_add(1, std::memory_order_relaxed) + 1;
    HWDBG_STAT_MAX("serve.channels.peak", active);
    struct ActiveGuard
    {
        std::atomic<uint64_t> &active;
        ~ActiveGuard() { active.fetch_sub(1, std::memory_order_relaxed); }
    } guard{channelsActive_};
    out << helloJson() << "\n" << std::flush;
    int failures = 0;
    std::string line;
    while (std::getline(in, line)) {
        debug::Request req = debug::parseRequestLine(line);
        if (req.cmd.empty() && req.error.empty())
            continue; // blank/comment: scripts stay commentable
        bool failed = false;
        bool quitChannel = false;
        std::string resp = handleLine(req, &failed, &quitChannel);
        if (failed)
            ++failures;
        out << resp << "\n" << std::flush;
        if (quitChannel)
            break;
    }
    return failures;
}

uint16_t
Server::listenTcp(uint16_t port)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        fatal("serve: socket: %s", std::strerror(errno));
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) < 0) {
        int err = errno;
        ::close(fd);
        fatal("serve: bind 127.0.0.1:%u: %s", unsigned(port),
              std::strerror(err));
    }
    if (::listen(fd, 64) < 0) {
        int err = errno;
        ::close(fd);
        fatal("serve: listen: %s", std::strerror(err));
    }
    socklen_t len = sizeof(addr);
    ::getsockname(fd, reinterpret_cast<sockaddr *>(&addr), &len);
    listenFd_.store(fd);
    return ntohs(addr.sin_port);
}

int
Server::acceptLoop()
{
    int fd = listenFd_.load();
    if (fd < 0)
        fatal("serve: acceptLoop without listenTcp");

    std::vector<std::thread> workers;
    std::atomic<int> failures{0};
    while (!stopping_.load()) {
        int cfd = ::accept(fd, nullptr, nullptr);
        if (cfd < 0) {
            if (errno == EINTR && !stopping_.load())
                continue;
            break;
        }
        uint64_t conn = workers.size() + 1;
        workers.emplace_back([this, cfd, conn, &failures] {
            if (obs::traceEnabled())
                obs::setTraceThreadName("serve.conn-" +
                                        std::to_string(conn));
            FdBuf buf(cfd);
            std::istream in(&buf);
            std::ostream out(&buf);
            failures += runChannel(in, out);
            out.flush();
            ::close(cfd);
        });
    }
    for (auto &worker : workers)
        worker.join();
    listenFd_.store(-1);
    ::close(fd);
    return failures.load();
}

int
Server::serveTcp(uint16_t port, uint16_t *boundPort)
{
    uint16_t bound = listenTcp(port);
    if (boundPort)
        *boundPort = bound;
    return acceptLoop();
}

void
Server::shutdown()
{
    stopping_.store(true);
    int fd = listenFd_.load();
    if (fd >= 0)
        ::shutdown(fd, SHUT_RDWR);
}

int
runClient(uint16_t port, std::istream &script, std::ostream &out)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        fatal("connect: socket: %s", std::strerror(errno));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        int err = errno;
        ::close(fd);
        fatal("connect 127.0.0.1:%u: %s", unsigned(port),
              std::strerror(err));
    }

    FdBuf buf(fd);
    std::istream rin(&buf);
    std::ostream rout(&buf);

    int failures = 0;
    std::string line;
    if (!std::getline(rin, line)) {
        ::close(fd);
        fatal("connect: server closed before hello");
    }
    out << line << "\n";

    // Lockstep: one request line, one response line. Blank/comment
    // lines draw no response, mirroring the server's skip rule. An
    // `@_` prefix routes to the session this client most recently
    // opened, so one static script serves any number of concurrent
    // clients whose ids differ.
    int64_t lastSession = -1;
    while (std::getline(script, line)) {
        if (lastSession >= 0 && line.rfind("@_", 0) == 0)
            line = "@" + std::to_string(lastSession) + line.substr(2);
        debug::Request req = debug::parseRequestLine(line);
        if (req.cmd.empty() && req.error.empty())
            continue;
        rout << line << "\n" << std::flush;
        std::string resp;
        if (!std::getline(rin, resp))
            break;
        out << resp << "\n";
        if (resp.find("\"ok\":false") != std::string::npos)
            ++failures;
        std::string perr;
        if (auto root = obs::parseJson(resp, &perr)) {
            const auto *payload = root->get("payload");
            if (payload && payload->get("session") &&
                payload->get("session")->isNumber())
                lastSession = static_cast<int64_t>(
                    payload->get("session")->number);
        }
        if (!req.hasSession &&
            (req.cmd == "quit" || req.cmd == "shutdown"))
            break;
    }
    ::close(fd);
    return failures;
}

std::string
checkServeTranscript(const std::string &text)
{
    std::istringstream in(text);
    std::string line;
    int lineno = 0;
    bool sawHello = false;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.empty())
            return csprintf("line %d: empty line", lineno);
        std::string error;
        obs::JsonPtr root = obs::parseJson(line, &error);
        if (!root)
            return csprintf("line %d: %s", lineno, error.c_str());
        if (!root->isObject())
            return csprintf("line %d: not a JSON object", lineno);
        const auto &m = root->members;
        if (!sawHello) {
            if (m.size() < 2 || m[0].first != "proto" ||
                !m[0].second->isString() ||
                m[0].second->text != "hwdbg-serve")
                return csprintf(
                    "line %d: first line must be the hwdbg-serve hello",
                    lineno);
            if (m[1].first != "version" || !m[1].second->isNumber())
                return csprintf("line %d: hello must carry a version",
                                lineno);
            if (m.size() < 3 || m[2].first != "build" ||
                !m[2].second->isObject())
                return csprintf(
                    "line %d: hello must carry build provenance",
                    lineno);
            sawHello = true;
            continue;
        }
        if (m.empty() || m[0].first != "session" ||
            !m[0].second->isNumber())
            return csprintf(
                "line %d: first field must be a numeric \"session\"",
                lineno);
        std::string err =
            debug::checkResponseMembers(*root, 1,
                                        /*stateOptional=*/true);
        if (!err.empty())
            return csprintf("line %d: %s", lineno, err.c_str());
    }
    if (!sawHello)
        return "transcript is empty";
    return "";
}

} // namespace hwdbg::serve
