#include "serve/session.hh"

#include "obs/metrics.hh"

namespace hwdbg::serve
{

std::shared_ptr<Session>
SessionRegistry::create(const std::string &kind)
{
    auto sess = std::make_shared<Session>();
    sess->kind = kind;
    std::lock_guard<std::mutex> lock(mu_);
    sess->id = nextId_++;
    sessions_[sess->id] = sess;
    ++opened_;
    HWDBG_STAT_INC("serve.sessions.opened", 1);
    HWDBG_STAT_MAX("serve.sessions.peak", sessions_.size());
    return sess;
}

std::shared_ptr<Session>
SessionRegistry::find(int64_t id) const
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(id);
    return it == sessions_.end() ? nullptr : it->second;
}

bool
SessionRegistry::close(int64_t id)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(id);
    if (it == sessions_.end())
        return false;
    // Fold the session's counters into the retired totals so
    // dispatched() still reconciles after the session is gone.
    retiredCmds_ += it->second->cmds.load(std::memory_order_relaxed);
    retiredErrs_ += it->second->errs.load(std::memory_order_relaxed);
    sessions_.erase(it);
    HWDBG_STAT_INC("serve.sessions.closed", 1);
    return true;
}

std::vector<std::shared_ptr<Session>>
SessionRegistry::list() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::shared_ptr<Session>> out;
    out.reserve(sessions_.size());
    for (const auto &[id, sess] : sessions_)
        out.push_back(sess);
    return out;
}

size_t
SessionRegistry::count() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return sessions_.size();
}

uint64_t
SessionRegistry::opened() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return opened_;
}

void
SessionRegistry::noteDispatch(Session &sess, bool ok)
{
    sess.cmds.fetch_add(1, std::memory_order_relaxed);
    if (!ok)
        sess.errs.fetch_add(1, std::memory_order_relaxed);
    dispatched_.fetch_add(1, std::memory_order_relaxed);
}

uint64_t
SessionRegistry::dispatched() const
{
    return dispatched_.load(std::memory_order_relaxed);
}

uint64_t
SessionRegistry::retiredCmds() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return retiredCmds_;
}

uint64_t
SessionRegistry::retiredErrs() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return retiredErrs_;
}

} // namespace hwdbg::serve
