/**
 * @file
 * Serve sessions: one attached client activity over a cached design.
 *
 * A `debug` session owns a live Engine + ProtocolHandler pair built on
 * a clone of the cached master module; routed requests (`"session":N`
 * or a bare `@N ` prefix) dispatch into its handler under the session
 * mutex, so two channels can safely share one session. One-shot kinds
 * (`cover`, `trace`, `analyze`) run their whole job at open time on
 * their own clone, keep the result summary, and stay listed until
 * closed so `sessions` shows what the server has done.
 */

#ifndef HWDBG_SERVE_SESSION_HH
#define HWDBG_SERVE_SESSION_HH

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "debug/engine.hh"
#include "debug/handler.hh"
#include "serve/cache.hh"

namespace hwdbg::serve
{

struct Session
{
    int64_t id = 0;
    /** debug | cover | trace | analyze */
    std::string kind;
    std::shared_ptr<const CachedDesign> design;
    /** Whether the attach was served from the design cache. */
    bool cacheHit = false;

    /** Live debugger state (kind == "debug" only). */
    std::unique_ptr<debug::Engine> engine;
    std::unique_ptr<debug::ProtocolHandler> handler;

    /** One-shot result summary, pre-rendered JSON (non-debug kinds). */
    std::string summaryJson;

    /** Serializes routed commands; channels may share a session. */
    std::mutex mu;
};

class SessionRegistry
{
  public:
    /** Allocate the next session id and register an empty session. */
    std::shared_ptr<Session> create(const std::string &kind);
    std::shared_ptr<Session> find(int64_t id) const;
    bool close(int64_t id);
    /** Sessions sorted by id (stable listing for transcripts). */
    std::vector<std::shared_ptr<Session>> list() const;
    size_t count() const;
    /** Total sessions ever opened (monotonic). */
    uint64_t opened() const;

  private:
    mutable std::mutex mu_;
    std::map<int64_t, std::shared_ptr<Session>> sessions_;
    int64_t nextId_ = 1;
    uint64_t opened_ = 0;
};

} // namespace hwdbg::serve

#endif // HWDBG_SERVE_SESSION_HH
