/**
 * @file
 * Serve sessions: one attached client activity over a cached design.
 *
 * A `debug` session owns a live Engine + ProtocolHandler pair built on
 * a clone of the cached master module; routed requests (`"session":N`
 * or a bare `@N ` prefix) dispatch into its handler under the session
 * mutex, so two channels can safely share one session. One-shot kinds
 * (`cover`, `trace`, `analyze`) run their whole job at open time on
 * their own clone, keep the result summary, and stay listed until
 * closed so `sessions` shows what the server has done.
 */

#ifndef HWDBG_SERVE_SESSION_HH
#define HWDBG_SERVE_SESSION_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "debug/engine.hh"
#include "debug/handler.hh"
#include "serve/cache.hh"

namespace hwdbg::serve
{

struct Session
{
    int64_t id = 0;
    /** debug | cover | trace | analyze */
    std::string kind;
    std::shared_ptr<const CachedDesign> design;
    /** Whether the attach was served from the design cache. */
    bool cacheHit = false;
    /** Design description as rendered in the open payload. */
    std::string designName;

    /** Live debugger state (kind == "debug" only). */
    std::unique_ptr<debug::Engine> engine;
    std::unique_ptr<debug::ProtocolHandler> handler;

    /** One-shot result summary, pre-rendered JSON (non-debug kinds). */
    std::string summaryJson;

    /** Perfetto virtual track id; 0 when tracing was off at open. */
    uint32_t track = 0;
    /** Server-uptime stamp at open (µs), for the stats uptime field. */
    uint64_t openedUs = 0;
    /** Routed commands dispatched into this session / failures among
     *  them. Atomics: channels sharing the session race on these. */
    std::atomic<uint64_t> cmds{0};
    std::atomic<uint64_t> errs{0};

    /** Serializes routed commands; channels may share a session. */
    std::mutex mu;
};

class SessionRegistry
{
  public:
    /** Allocate the next session id and register an empty session. */
    std::shared_ptr<Session> create(const std::string &kind);
    std::shared_ptr<Session> find(int64_t id) const;
    bool close(int64_t id);
    /** Sessions sorted by id (stable listing for transcripts). */
    std::vector<std::shared_ptr<Session>> list() const;
    size_t count() const;
    /** Total sessions ever opened (monotonic). */
    uint64_t opened() const;

    /** Count one routed dispatch into @p sess. The invariant
     *  dispatched() == sum(live cmds) + retiredCmds() holds whenever
     *  the server is quiescent; the stats concurrency test asserts it. */
    void noteDispatch(Session &sess, bool ok);
    /** Routed commands dispatched into any session, ever. */
    uint64_t dispatched() const;
    /** Command/error counts accumulated from closed sessions. */
    uint64_t retiredCmds() const;
    uint64_t retiredErrs() const;

  private:
    mutable std::mutex mu_;
    std::map<int64_t, std::shared_ptr<Session>> sessions_;
    int64_t nextId_ = 1;
    uint64_t opened_ = 0;
    uint64_t retiredCmds_ = 0;
    uint64_t retiredErrs_ = 0;
    std::atomic<uint64_t> dispatched_{0};
};

} // namespace hwdbg::serve

#endif // HWDBG_SERVE_SESSION_HH
