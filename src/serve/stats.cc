#include "serve/stats.hh"

#include <cctype>

#include "common/logging.hh"
#include "obs/jsoncheck.hh"

namespace hwdbg::serve
{

namespace
{

/** Require numeric member @p key on @p obj; appends to @p error. */
bool
needNumber(const obs::JsonValue &obj, const char *where, const char *key,
           std::string *error)
{
    const auto *v = obj.get(key);
    if (!v || !v->isNumber()) {
        *error = csprintf("%s: missing numeric \"%s\"", where, key);
        return false;
    }
    return true;
}

bool
needString(const obs::JsonValue &obj, const char *where, const char *key,
           std::string *error)
{
    const auto *v = obj.get(key);
    if (!v || !v->isString()) {
        *error = csprintf("%s: missing string \"%s\"", where, key);
        return false;
    }
    return true;
}

double
num(const obs::JsonValue &obj, const char *key)
{
    return obj.get(key)->number;
}

} // namespace

std::string
checkServeStatsJson(const std::string &text)
{
    std::string error;
    obs::JsonPtr root = obs::parseJson(text, &error);
    if (!root)
        return error;
    if (!root->isObject())
        return "root is not an object";
    const auto &m = root->members;
    if (m.size() < 2 || m[0].first != "format" ||
        !m[0].second->isString() ||
        m[0].second->text != "hwdbg-serve-stats")
        return "first member must be \"format\":\"hwdbg-serve-stats\"";
    if (m[1].first != "version" || !m[1].second->isNumber() ||
        m[1].second->number != 1)
        return "second member must be \"version\":1";

    const auto *build = root->get("build");
    if (!build || !build->isObject())
        return "missing \"build\" object";

    const auto *server = root->get("server");
    if (!server || !server->isObject())
        return "missing \"server\" object";
    for (const char *key :
         {"sessions", "opened", "channels", "channels_active",
          "requests", "errors", "slow", "slow_threshold_us",
          "dispatched", "retired_cmds", "uptime_us"})
        if (!needNumber(*server, "server", key, &error))
            return error;

    const auto *cache = root->get("cache");
    if (!cache || !cache->isObject())
        return "missing \"cache\" object";
    for (const char *key :
         {"entries", "hits", "misses", "builds", "build_us"})
        if (!needNumber(*cache, "cache", key, &error))
            return error;

    const auto *snaps = root->get("snapshots");
    if (!snaps || !snaps->isObject())
        return "missing \"snapshots\" object";
    for (const char *key : {"stored", "stored_bytes", "dedup_hits",
                            "dedup_bytes", "dedup_ratio_pct"})
        if (!needNumber(*snaps, "snapshots", key, &error))
            return error;

    const auto *cmds = root->get("commands");
    if (!cmds || !cmds->isArray())
        return "missing \"commands\" array";
    std::string prevCmd;
    for (size_t i = 0; i < cmds->elems.size(); ++i) {
        const auto &entry = *cmds->elems[i];
        if (!entry.isObject())
            return csprintf("commands[%zu]: not an object", i);
        if (!needString(entry, "commands", "cmd", &error))
            return error;
        for (const char *key : {"count", "errors", "p50_us", "p95_us",
                                "p99_us", "max_us"})
            if (!needNumber(entry, "commands", key, &error))
                return error;
        if (num(entry, "p50_us") > num(entry, "p95_us") ||
            num(entry, "p95_us") > num(entry, "p99_us") ||
            num(entry, "p99_us") > num(entry, "max_us"))
            return csprintf(
                "commands[%zu] (%s): quantiles not monotone", i,
                entry.get("cmd")->text.c_str());
        if (i && entry.get("cmd")->text <= prevCmd)
            return csprintf("commands[%zu]: not sorted by cmd", i);
        prevCmd = entry.get("cmd")->text;
    }

    const auto *sessions = root->get("sessions");
    if (!sessions || !sessions->isArray())
        return "missing \"sessions\" array";
    double prevId = -1;
    for (size_t i = 0; i < sessions->elems.size(); ++i) {
        const auto &entry = *sessions->elems[i];
        if (!entry.isObject())
            return csprintf("sessions[%zu]: not an object", i);
        for (const char *key : {"session", "cmds", "errors", "uptime_us"})
            if (!needNumber(entry, "sessions", key, &error))
                return error;
        for (const char *key : {"kind", "design", "cache"})
            if (!needString(entry, "sessions", key, &error))
                return error;
        const std::string &hit = entry.get("cache")->text;
        if (hit != "hit" && hit != "miss")
            return csprintf(
                "sessions[%zu]: cache must be \"hit\" or \"miss\"", i);
        if (num(entry, "session") <= prevId)
            return csprintf("sessions[%zu]: not sorted by id", i);
        prevId = num(entry, "session");
    }

    return "";
}

std::string
scrubServeTimings(const std::string &text)
{
    // Replace the digit run in every `_us":<spaces?>NNN` with 0. A
    // hand-rolled scan (no <regex>) keeps this cheap enough to run on
    // every transcript line in the determinism tests.
    std::string out;
    out.reserve(text.size());
    size_t i = 0;
    const std::string marker = "_us\":";
    while (i < text.size()) {
        size_t at = text.find(marker, i);
        if (at == std::string::npos) {
            out.append(text, i, std::string::npos);
            break;
        }
        size_t end = at + marker.size();
        out.append(text, i, end - i);
        while (end < text.size() && text[end] == ' ') {
            out += ' ';
            ++end;
        }
        if (end < text.size() &&
            std::isdigit(static_cast<unsigned char>(text[end]))) {
            out += '0';
            while (end < text.size() &&
                   std::isdigit(static_cast<unsigned char>(text[end])))
                ++end;
        }
        i = end;
    }
    return out;
}

} // namespace hwdbg::serve
