/**
 * @file
 * Lowering of an elaborated (flat) module into simulator tables.
 *
 * Lowering builds the signal table, resolves every identifier reference to
 * a signal index, computes self-determined expression widths (stored in
 * Expr::width), and partitions module items into continuous assigns,
 * clocked processes, combinational processes, and primitive instances.
 */

#ifndef HWDBG_SIM_DESIGN_HH
#define HWDBG_SIM_DESIGN_HH

#include <string>
#include <unordered_map>
#include <vector>

#include "hdl/ast.hh"

namespace hwdbg::sim
{

struct SignalInfo
{
    std::string name;
    uint32_t width = 1;
    bool isReg = false;
    /** Number of memory elements; 0 for scalar signals. */
    uint32_t arraySize = 0;
    hdl::PortDir dir = hdl::PortDir::None;
};

class LoweredDesign
{
  public:
    /** Lower @p mod; mutates the AST (width/resolution annotations). */
    explicit LoweredDesign(hdl::ModulePtr mod);

    const hdl::Module &module() const { return *mod_; }
    hdl::ModulePtr modulePtr() const { return mod_; }

    int signalId(const std::string &name) const;
    /** signalId() that raises HdlError when the name is unknown. */
    int requireSignal(const std::string &name) const;

    const SignalInfo &info(int id) const { return signals_[id]; }
    size_t numSignals() const { return signals_.size(); }

    const std::vector<hdl::ContAssignItem *> &assigns() const
    {
        return assigns_;
    }
    const std::vector<hdl::AlwaysItem *> &clockedProcs() const
    {
        return clocked_;
    }
    const std::vector<hdl::AlwaysItem *> &combProcs() const
    {
        return comb_;
    }
    const std::vector<hdl::InstanceItem *> &prims() const { return prims_; }

    /**
     * Annotate widths and resolve identifiers in an expression created
     * after lowering (tools build such expressions for analysis).
     * @return the self-determined width.
     */
    uint32_t annotateExpr(const hdl::ExprPtr &expr) const;

  private:
    void collectSignals();
    void annotateStmt(const hdl::StmtPtr &stmt);
    void checkLValue(const hdl::ExprPtr &lhs, bool in_clocked);

    hdl::ModulePtr mod_;
    std::vector<SignalInfo> signals_;
    std::unordered_map<std::string, int> byName_;
    std::vector<hdl::ContAssignItem *> assigns_;
    std::vector<hdl::AlwaysItem *> clocked_;
    std::vector<hdl::AlwaysItem *> comb_;
    std::vector<hdl::InstanceItem *> prims_;
};

/** Constant value of an already-annotated constant expression. */
uint64_t constU64(const hdl::ExprPtr &expr);

} // namespace hwdbg::sim

#endif // HWDBG_SIM_DESIGN_HH
