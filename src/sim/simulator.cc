#include "sim/simulator.hh"

#include <algorithm>
#include <chrono>

#include "common/logging.hh"
#include "common/testhooks.hh"
#include "obs/metrics.hh"
#include "sim/coverage.hh"
#include "sim/profiler.hh"

namespace hwdbg::sim
{

using namespace hdl;

Simulator::Simulator(ModulePtr elaborated)
    : mod_(std::move(elaborated)), design_(mod_), ctx_(design_)
{
    for (const auto *inst : design_.prims()) {
        prims_.push_back(makePrimitive(inst, design_));
        Primitive *prim = prims_.back().get();
        for (const auto &port : prim->clockPorts()) {
            for (const auto &conn : inst->conns) {
                if (conn.formal == port && conn.actual) {
                    primClocks_.push_back(
                        PrimClock{prims_.size() - 1, port, conn.actual});
                }
            }
        }
    }
    prevPrimClocks_.assign(primClocks_.size(), false);

    for (const auto *proc : design_.clockedProcs())
        for (const auto &sens : proc->sens)
            prevClocks_[sens.signal] = false;

    primaryClockId_ = design_.signalId("clk");

    for (auto &prim : prims_)
        prim->reset(ctx_);
    settleComb();

    // Seed edge detection with the clock expressions' actual initial
    // values: a primitive clocked on an inverting expression (e.g.
    // ~clk, as SignalCat generates for negedge displays) starts with
    // the expression already high, and a blanket "previously low"
    // assumption would manufacture a phantom first edge.
    for (size_t i = 0; i < primClocks_.size(); ++i)
        prevPrimClocks_[i] =
            !evalExpr(primClocks_[i].expr, ctx_).isZero();
}

Simulator::~Simulator() = default;

namespace
{

/** In-memory footprint of a Bits value (words + width header). */
size_t
bitsBytes(const Bits &bits)
{
    return 8 + ((bits.width() + 63) / 64) * 8;
}

} // namespace

size_t
StimulusTape::sizeBytes() const
{
    size_t total = sizeof(*this);
    for (const auto &step : steps) {
        total += sizeof(step);
        for (const auto &[name, value] : step.pokes)
            total += name.size() + bitsBytes(value);
    }
    return total;
}

size_t
SimSnapshot::sizeBytes() const
{
    size_t total = sizeof(*this);
    for (const auto &value : values)
        total += bitsBytes(value);
    for (const auto &array : arrays)
        for (const auto &element : array)
            total += bitsBytes(element);
    for (const auto &line : log)
        total += sizeof(line) + line.text.size();
    for (const auto &[name, level] : prevClocks)
        total += name.size() + sizeof(level);
    total += prevPrimClocks.size() / 8 + 1;
    for (const auto &write : nba)
        total += sizeof(write.target) + bitsBytes(write.value);
    for (const auto &blob : primStates)
        total += blob.size();
    return total;
}

void
Simulator::recordStimulus(StimulusTape *tape)
{
    tape_ = tape;
    pendingStep_.pokes.clear();
}

void
Simulator::applyStep(const StimulusStep &step)
{
    for (const auto &[name, value] : step.pokes)
        poke(name, value);
    eval();
}

SimSnapshot
Simulator::saveState() const
{
    SimSnapshot snap;
    snap.values = ctx_.values;
    snap.arrays = ctx_.arrays;
    snap.cycle = ctx_.cycle;
    snap.finished = ctx_.finished;
    snap.log = ctx_.log;
    snap.prevClocks = prevClocks_;
    snap.prevPrimClocks = prevPrimClocks_;
    snap.primaryClockRaw = primaryClockRaw_;
    snap.nba.reserve(nba_.size());
    for (const auto &write : nba_)
        snap.nba.push_back(SimSnapshot::PendingNba{write.target,
                                                   write.value});
    snap.primStates.resize(prims_.size());
    for (size_t i = 0; i < prims_.size(); ++i)
        prims_[i]->saveState(snap.primStates[i]);
    HWDBG_STAT_INC("sim.snapshots", 1);
    return snap;
}

void
Simulator::restoreState(const SimSnapshot &snap)
{
    if (snap.values.size() != ctx_.values.size() ||
        snap.primStates.size() != prims_.size())
        fatal("restoreState: snapshot is from a different design");
    ctx_.values = snap.values;
    ctx_.arrays = snap.arrays;
    ctx_.cycle = snap.cycle;
    ctx_.finished = snap.finished;
    ctx_.log = snap.log;
    ctx_.valuesChanged = false;
    prevClocks_ = snap.prevClocks;
    prevPrimClocks_ = snap.prevPrimClocks;
    primaryClockRaw_ = snap.primaryClockRaw;
    nba_.clear();
    for (const auto &write : snap.nba)
        nba_.push_back(PendingWrite{write.target, write.value});
    for (size_t i = 0; i < prims_.size(); ++i) {
        const auto &blob = snap.primStates[i];
        const uint8_t *cursor = blob.data();
        prims_[i]->restoreState(cursor, blob.data() + blob.size());
    }
    pendingStep_.pokes.clear();
    // Coverage marks are idempotent, but FSM transition detection
    // compares against the last sampled state; re-seed it so time
    // travel cannot fabricate a restore-point transition.
    if (cover_)
        cover_->resync(ctx_);
    HWDBG_STAT_INC("sim.restores", 1);
}

void
Simulator::enableProfiling(SimCounters *counters)
{
    prof_ = counters;
    if (!prof_) {
        ctx_.toggles = nullptr;
        return;
    }
    prof_->assignEvals.assign(design_.assigns().size(), 0);
    prof_->assignNs.assign(design_.assigns().size(), 0);
    prof_->combEvals.assign(design_.combProcs().size(), 0);
    prof_->combNs.assign(design_.combProcs().size(), 0);
    prof_->clockedEvals.assign(design_.clockedProcs().size(), 0);
    prof_->clockedNs.assign(design_.clockedProcs().size(), 0);
    prof_->toggles.assign(design_.numSignals(), 0);
    if (prof_->settleHist.empty())
        prof_->settleHist.assign(65, 0);
    ctx_.toggles = &prof_->toggles;
}

void
Simulator::enableCoverage(CoverageCollector *collector)
{
    cover_ = collector;
    ctx_.cover = collector;
    // Seed FSM tracking from current values: the occupied state is
    // credited, but attaching mid-run fabricates no transition.
    if (cover_)
        cover_->resync(ctx_);
}

void
Simulator::poke(const std::string &signal, const Bits &value)
{
    int id = design_.requireSignal(signal);
    const SignalInfo &sig = design_.info(id);
    if (sig.dir != PortDir::Input)
        fatal("poke: '%s' is not a top-level input", signal.c_str());
    if (cover_) {
        Bits next = value.resized(sig.width);
        cover_->onStore(id, ctx_.values[id], next);
        ctx_.values[id] = std::move(next);
    } else {
        ctx_.values[id] = value.resized(sig.width);
    }
    if (tape_)
        pendingStep_.pokes.emplace_back(signal, ctx_.values[id]);
}

void
Simulator::poke(const std::string &signal, uint64_t value)
{
    int id = design_.requireSignal(signal);
    poke(signal, Bits(design_.info(id).width, value));
}

Bits
Simulator::peek(const std::string &signal) const
{
    int id = design_.requireSignal(signal);
    return ctx_.values[id];
}

uint64_t
Simulator::peekU64(const std::string &signal) const
{
    return peek(signal).toU64();
}

Bits
Simulator::peekArray(const std::string &signal, uint64_t index) const
{
    int id = design_.requireSignal(signal);
    const SignalInfo &sig = design_.info(id);
    if (sig.arraySize == 0)
        fatal("peekArray: '%s' is not a memory", signal.c_str());
    if (index >= sig.arraySize)
        fatal("peekArray: index %llu out of range for '%s'",
              static_cast<unsigned long long>(index), signal.c_str());
    return ctx_.arrays[id][index];
}

Primitive *
Simulator::primitive(const std::string &inst_name) const
{
    for (const auto &prim : prims_)
        if (prim->name() == inst_name)
            return prim.get();
    return nullptr;
}

void
Simulator::settleComb()
{
    // Bounded fixpoint: small designs settle in a handful of passes.
    // Store sites flag value changes as a cheap stability fast path,
    // but a pass is only UNstable when its end state differs from its
    // start state: a comb process that writes a default and then
    // overrides it ("next = 0; if (c) next = 1;") toggles values
    // transiently inside every pass, and those transient store events
    // must not count as progress or the loop never terminates.
    using ProfClock = std::chrono::steady_clock;
    const auto &assigns = design_.assigns();
    const auto &combs = design_.combProcs();
    size_t work = assigns.size() + combs.size();
    size_t max_iters = work + 4;
    size_t iters_used = 0;
    for (size_t iter = 0; iter < max_iters; ++iter) {
        iters_used = iter + 1;
        std::vector<Bits> before_values = ctx_.values;
        std::vector<std::vector<Bits>> before_arrays = ctx_.arrays;
        ctx_.valuesChanged = false;
        for (size_t i = 0; i < assigns.size(); ++i) {
            const auto *assign = assigns[i];
            ProfClock::time_point t0;
            if (prof_)
                t0 = ProfClock::now();
            uint32_t lw = assign->lhs->width;
            uint32_t cw = std::max(lw, assign->rhs->width);
            Bits value = evalExpr(assign->rhs, ctx_, cw).resized(lw);
            storeLValue(assign->lhs, value, ctx_);
            if (prof_) {
                ++prof_->assignEvals[i];
                prof_->assignNs[i] +=
                    std::chrono::duration<double, std::nano>(
                        ProfClock::now() - t0)
                        .count();
            }
        }
        for (size_t i = 0; i < combs.size(); ++i) {
            ProfClock::time_point t0;
            if (prof_)
                t0 = ProfClock::now();
            execStmt(combs[i]->body, false);
            if (prof_) {
                ++prof_->combEvals[i];
                prof_->combNs[i] +=
                    std::chrono::duration<double, std::nano>(
                        ProfClock::now() - t0)
                        .count();
            }
        }
        if (!ctx_.valuesChanged) {
            noteSettle(iters_used, work);
            return;
        }
        auto same = [](const Bits &a, const Bits &b) {
            return a.width() == b.width() && a.compare(b) == 0;
        };
        bool stable = true;
        for (size_t i = 0; stable && i < ctx_.values.size(); ++i)
            stable = same(before_values[i], ctx_.values[i]);
        for (size_t i = 0; stable && i < ctx_.arrays.size(); ++i) {
            if (before_arrays[i].size() != ctx_.arrays[i].size()) {
                stable = false;
                break;
            }
            for (size_t j = 0; stable && j < ctx_.arrays[i].size(); ++j)
                stable = same(before_arrays[i][j], ctx_.arrays[i][j]);
        }
        if (stable) {
            noteSettle(iters_used, work);
            return;
        }
    }
    fatal("combinational logic failed to settle (combinational loop?)");
}

void
Simulator::noteSettle(size_t iters, size_t work)
{
    HWDBG_STAT_INC("sim.settle_calls", 1);
    HWDBG_STAT_INC("sim.process_evals", iters * work);
    HWDBG_STAT_HIST("sim.settle_iters", iters);
    HWDBG_STAT_MAX("sim.max_settle_iters", iters);
    if (!prof_)
        return;
    ++prof_->settleCalls;
    prof_->maxSettleDepth =
        std::max<uint32_t>(prof_->maxSettleDepth,
                           static_cast<uint32_t>(iters));
    size_t slot = std::min(iters, prof_->settleHist.size() - 1);
    ++prof_->settleHist[slot];
}

void
Simulator::execStmt(const StmtPtr &stmt, bool clocked)
{
    if (!stmt)
        return;
    if (cover_)
        cover_->onStmt(stmt.get());
    switch (stmt->kind) {
      case StmtKind::Block:
        for (const auto &sub : stmt->as<BlockStmt>()->stmts)
            execStmt(sub, clocked);
        break;
      case StmtKind::If: {
        const auto *branch = stmt->as<IfStmt>();
        bool taken = evalBool(branch->cond, ctx_);
        if (cover_)
            cover_->onArm(stmt.get(), taken ? 0 : 1);
        if (taken)
            execStmt(branch->thenStmt, clocked);
        else
            execStmt(branch->elseStmt, clocked);
        break;
      }
      case StmtKind::Case: {
        const auto *sel = stmt->as<CaseStmt>();
        Bits value = evalExpr(sel->selector, ctx_);
        const CaseItem *chosen = nullptr;
        const CaseItem *dflt = nullptr;
        for (const auto &item : sel->items) {
            if (item.labels.empty()) {
                dflt = &item;
                continue;
            }
            for (const auto &label : item.labels) {
                uint32_t cmp_w =
                    std::max(sel->selector->width, label->width);
                if (mutationOn(MUT_SIM_CASE_SEL_WIDTH))
                    cmp_w = sel->selector->width;
                // evalExpr never evaluates below the label's own
                // width; resize forces the comparison width so the
                // seeded truncation bug actually truncates.
                if (evalExpr(label, ctx_, cmp_w).resized(cmp_w) ==
                    value.resized(cmp_w)) {
                    chosen = &item;
                    break;
                }
            }
            if (chosen)
                break;
        }
        if (!chosen)
            chosen = dflt;
        if (cover_) {
            // Arm index is the item's position; the trailing implicit
            // "no match" arm only exists when there is no default.
            uint32_t arm =
                chosen ? static_cast<uint32_t>(chosen -
                                               sel->items.data())
                       : static_cast<uint32_t>(sel->items.size());
            cover_->onArm(stmt.get(), arm);
        }
        if (chosen)
            execStmt(chosen->body, clocked);
        break;
      }
      case StmtKind::Assign: {
        const auto *assign = stmt->as<AssignStmt>();
        uint32_t lw = assign->lhs->width;
        uint32_t cw = std::max(lw, assign->rhs->width);
        Bits value = evalExpr(assign->rhs, ctx_, cw).resized(lw);
        if (clocked && assign->nonblocking) {
            ResolvedLValue resolved = resolveLValue(assign->lhs, ctx_);
            for (const auto &part : resolved.parts)
                nba_.push_back(PendingWrite{
                    part.target,
                    value.slice(part.rhsMsb, part.rhsLsb)});
        } else {
            storeLValue(assign->lhs, value, ctx_);
        }
        break;
      }
      case StmtKind::Display: {
        const auto *disp = stmt->as<DisplayStmt>();
        if (!clocked) {
            if (!warnedCombDisplay_) {
                warn("$display in combinational process ignored");
                warnedCombDisplay_ = true;
            }
            break;
        }
        std::vector<Bits> args;
        args.reserve(disp->args.size());
        for (const auto &arg : disp->args)
            args.push_back(evalExpr(arg, ctx_));
        ctx_.log.push_back(EvalContext::LogLine{
            ctx_.cycle, formatDisplay(disp->format, args)});
        HWDBG_STAT_INC("sim.display_records", 1);
        break;
      }
      case StmtKind::Finish:
        ctx_.finished = true;
        break;
      case StmtKind::Null:
        break;
    }
}

void
Simulator::setProcessOrder(std::vector<size_t> order)
{
    if (order.empty()) {
        procOrder_.clear();
        return;
    }
    size_t n = design_.clockedProcs().size();
    if (order.size() != n)
        fatal("setProcessOrder: %zu ranks for %zu clocked processes",
              order.size(), n);
    std::vector<uint8_t> seen(n, 0);
    for (size_t pi : order) {
        if (pi >= n || seen[pi])
            fatal("setProcessOrder: not a permutation of 0..%zu",
                  n - 1);
        seen[pi] = 1;
    }
    // Store as rank-of-process so the eval loop can stable-sort the
    // triggered subset: procOrder_[pi] = execution rank of process pi.
    procOrder_.assign(n, 0);
    for (size_t rank = 0; rank < order.size(); ++rank)
        procOrder_[order[rank]] = rank;
}

void
Simulator::commitNba()
{
    for (const auto &write : nba_)
        applyStore(write.target, write.value, ctx_);
    nba_.clear();
}

void
Simulator::eval()
{
    if (tape_) {
        tape_->steps.push_back(std::move(pendingStep_));
        pendingStep_.pokes.clear();
    }
    settleComb();

    // Detect clock edges on clocked processes.
    std::map<std::string, std::pair<bool, bool>> edges; // old -> new
    for (auto &[name, prev] : prevClocks_) {
        bool now = !ctx_.values[design_.requireSignal(name)].isZero();
        edges[name] = {prev, now};
    }

    std::vector<size_t> triggered;
    const auto &clocked = design_.clockedProcs();
    for (size_t pi = 0; pi < clocked.size(); ++pi) {
        const auto *proc = clocked[pi];
        for (const auto &sens : proc->sens) {
            auto [before, after] = edges[sens.signal];
            bool rising = !before && after;
            bool falling = before && !after;
            if ((sens.edge == EdgeKind::Posedge && rising) ||
                (sens.edge == EdgeKind::Negedge && falling)) {
                triggered.push_back(pi);
                break;
            }
        }
    }

    std::vector<std::pair<size_t, std::string>> prim_triggered;
    for (size_t i = 0; i < primClocks_.size(); ++i) {
        bool now = !evalExpr(primClocks_[i].expr, ctx_).isZero();
        bool before = prevPrimClocks_[i];
        if (!before && now)
            prim_triggered.emplace_back(primClocks_[i].prim,
                                        primClocks_[i].port);
        prevPrimClocks_[i] = now;
    }

    bool primary_rose = false;
    if (primaryClockId_ >= 0) {
        auto it = prevClocks_.find("clk");
        bool now = !ctx_.values[primaryClockId_].isZero();
        bool before =
            it != prevClocks_.end() ? it->second : primaryClockRaw_;
        primary_rose = !before && now;
        primaryClockRaw_ = now;
    }
    if (primary_rose) {
        ++ctx_.cycle;
        HWDBG_STAT_INC("sim.cycles", 1);
    }

    for (auto &[name, prev] : prevClocks_)
        prev = edges[name].second;

    if (triggered.empty() && prim_triggered.empty()) {
        if (cover_)
            cover_->sample(ctx_);
        return;
    }

    // Execute processes with pre-edge (settled) values; NBAs commit
    // together afterwards. Primitives also sample inputs pre-edge.
    if (!procOrder_.empty())
        std::stable_sort(triggered.begin(), triggered.end(),
                         [&](size_t a, size_t b) {
                             return procOrder_[a] < procOrder_[b];
                         });
    HWDBG_STAT_INC("sim.process_evals", triggered.size());
    using ProfClock = std::chrono::steady_clock;
    for (size_t pi : triggered) {
        ProfClock::time_point t0;
        if (prof_)
            t0 = ProfClock::now();
        execStmt(clocked[pi]->body, true);
        if (prof_) {
            ++prof_->clockedEvals[pi];
            prof_->clockedNs[pi] +=
                std::chrono::duration<double, std::nano>(
                    ProfClock::now() - t0)
                    .count();
        }
    }
    for (const auto &[idx, port] : prim_triggered)
        prims_[idx]->clockEdge(port, ctx_);
    commitNba();

    settleComb();

    if (cover_)
        cover_->sample(ctx_);
}

} // namespace hwdbg::sim
