#include "sim/simulator.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/testhooks.hh"

namespace hwdbg::sim
{

using namespace hdl;

Simulator::Simulator(ModulePtr elaborated)
    : mod_(std::move(elaborated)), design_(mod_), ctx_(design_)
{
    for (const auto *inst : design_.prims()) {
        prims_.push_back(makePrimitive(inst, design_));
        Primitive *prim = prims_.back().get();
        for (const auto &port : prim->clockPorts()) {
            for (const auto &conn : inst->conns) {
                if (conn.formal == port && conn.actual) {
                    primClocks_.push_back(
                        PrimClock{prims_.size() - 1, port, conn.actual});
                }
            }
        }
    }
    prevPrimClocks_.assign(primClocks_.size(), false);

    for (const auto *proc : design_.clockedProcs())
        for (const auto &sens : proc->sens)
            prevClocks_[sens.signal] = false;

    primaryClockId_ = design_.signalId("clk");

    for (auto &prim : prims_)
        prim->reset(ctx_);
    settleComb();

    // Seed edge detection with the clock expressions' actual initial
    // values: a primitive clocked on an inverting expression (e.g.
    // ~clk, as SignalCat generates for negedge displays) starts with
    // the expression already high, and a blanket "previously low"
    // assumption would manufacture a phantom first edge.
    for (size_t i = 0; i < primClocks_.size(); ++i)
        prevPrimClocks_[i] =
            !evalExpr(primClocks_[i].expr, ctx_).isZero();
}

Simulator::~Simulator() = default;

void
Simulator::poke(const std::string &signal, const Bits &value)
{
    int id = design_.requireSignal(signal);
    const SignalInfo &sig = design_.info(id);
    if (sig.dir != PortDir::Input)
        fatal("poke: '%s' is not a top-level input", signal.c_str());
    ctx_.values[id] = value.resized(sig.width);
}

void
Simulator::poke(const std::string &signal, uint64_t value)
{
    int id = design_.requireSignal(signal);
    poke(signal, Bits(design_.info(id).width, value));
}

Bits
Simulator::peek(const std::string &signal) const
{
    int id = design_.requireSignal(signal);
    return ctx_.values[id];
}

uint64_t
Simulator::peekU64(const std::string &signal) const
{
    return peek(signal).toU64();
}

Bits
Simulator::peekArray(const std::string &signal, uint64_t index) const
{
    int id = design_.requireSignal(signal);
    const SignalInfo &sig = design_.info(id);
    if (sig.arraySize == 0)
        fatal("peekArray: '%s' is not a memory", signal.c_str());
    if (index >= sig.arraySize)
        fatal("peekArray: index %llu out of range for '%s'",
              static_cast<unsigned long long>(index), signal.c_str());
    return ctx_.arrays[id][index];
}

Primitive *
Simulator::primitive(const std::string &inst_name) const
{
    for (const auto &prim : prims_)
        if (prim->name() == inst_name)
            return prim.get();
    return nullptr;
}

void
Simulator::settleComb()
{
    // Bounded fixpoint: small designs settle in a handful of passes.
    // Store sites flag value changes as a cheap stability fast path,
    // but a pass is only UNstable when its end state differs from its
    // start state: a comb process that writes a default and then
    // overrides it ("next = 0; if (c) next = 1;") toggles values
    // transiently inside every pass, and those transient store events
    // must not count as progress or the loop never terminates.
    size_t work = design_.assigns().size() + design_.combProcs().size();
    size_t max_iters = work + 4;
    for (size_t iter = 0; iter < max_iters; ++iter) {
        std::vector<Bits> before_values = ctx_.values;
        std::vector<std::vector<Bits>> before_arrays = ctx_.arrays;
        ctx_.valuesChanged = false;
        for (const auto *assign : design_.assigns()) {
            uint32_t lw = assign->lhs->width;
            uint32_t cw = std::max(lw, assign->rhs->width);
            Bits value = evalExpr(assign->rhs, ctx_, cw).resized(lw);
            storeLValue(assign->lhs, value, ctx_);
        }
        for (const auto *proc : design_.combProcs())
            execStmt(proc->body, false);
        if (!ctx_.valuesChanged)
            return;
        auto same = [](const Bits &a, const Bits &b) {
            return a.width() == b.width() && a.compare(b) == 0;
        };
        bool stable = true;
        for (size_t i = 0; stable && i < ctx_.values.size(); ++i)
            stable = same(before_values[i], ctx_.values[i]);
        for (size_t i = 0; stable && i < ctx_.arrays.size(); ++i) {
            if (before_arrays[i].size() != ctx_.arrays[i].size()) {
                stable = false;
                break;
            }
            for (size_t j = 0; stable && j < ctx_.arrays[i].size(); ++j)
                stable = same(before_arrays[i][j], ctx_.arrays[i][j]);
        }
        if (stable)
            return;
    }
    fatal("combinational logic failed to settle (combinational loop?)");
}

void
Simulator::execStmt(const StmtPtr &stmt, bool clocked)
{
    if (!stmt)
        return;
    switch (stmt->kind) {
      case StmtKind::Block:
        for (const auto &sub : stmt->as<BlockStmt>()->stmts)
            execStmt(sub, clocked);
        break;
      case StmtKind::If: {
        const auto *branch = stmt->as<IfStmt>();
        if (evalBool(branch->cond, ctx_))
            execStmt(branch->thenStmt, clocked);
        else
            execStmt(branch->elseStmt, clocked);
        break;
      }
      case StmtKind::Case: {
        const auto *sel = stmt->as<CaseStmt>();
        Bits value = evalExpr(sel->selector, ctx_);
        const CaseItem *chosen = nullptr;
        const CaseItem *dflt = nullptr;
        for (const auto &item : sel->items) {
            if (item.labels.empty()) {
                dflt = &item;
                continue;
            }
            for (const auto &label : item.labels) {
                uint32_t cmp_w =
                    std::max(sel->selector->width, label->width);
                if (mutationOn(MUT_SIM_CASE_SEL_WIDTH))
                    cmp_w = sel->selector->width;
                // evalExpr never evaluates below the label's own
                // width; resize forces the comparison width so the
                // seeded truncation bug actually truncates.
                if (evalExpr(label, ctx_, cmp_w).resized(cmp_w) ==
                    value.resized(cmp_w)) {
                    chosen = &item;
                    break;
                }
            }
            if (chosen)
                break;
        }
        if (!chosen)
            chosen = dflt;
        if (chosen)
            execStmt(chosen->body, clocked);
        break;
      }
      case StmtKind::Assign: {
        const auto *assign = stmt->as<AssignStmt>();
        uint32_t lw = assign->lhs->width;
        uint32_t cw = std::max(lw, assign->rhs->width);
        Bits value = evalExpr(assign->rhs, ctx_, cw).resized(lw);
        if (clocked && assign->nonblocking) {
            ResolvedLValue resolved = resolveLValue(assign->lhs, ctx_);
            for (const auto &part : resolved.parts)
                nba_.push_back(PendingWrite{
                    part.target,
                    value.slice(part.rhsMsb, part.rhsLsb)});
        } else {
            storeLValue(assign->lhs, value, ctx_);
        }
        break;
      }
      case StmtKind::Display: {
        const auto *disp = stmt->as<DisplayStmt>();
        if (!clocked) {
            if (!warnedCombDisplay_) {
                warn("$display in combinational process ignored");
                warnedCombDisplay_ = true;
            }
            break;
        }
        std::vector<Bits> args;
        args.reserve(disp->args.size());
        for (const auto &arg : disp->args)
            args.push_back(evalExpr(arg, ctx_));
        ctx_.log.push_back(EvalContext::LogLine{
            ctx_.cycle, formatDisplay(disp->format, args)});
        break;
      }
      case StmtKind::Finish:
        ctx_.finished = true;
        break;
      case StmtKind::Null:
        break;
    }
}

void
Simulator::commitNba()
{
    for (const auto &write : nba_)
        applyStore(write.target, write.value, ctx_);
    nba_.clear();
}

void
Simulator::eval()
{
    settleComb();

    // Detect clock edges on clocked processes.
    std::map<std::string, std::pair<bool, bool>> edges; // old -> new
    for (auto &[name, prev] : prevClocks_) {
        bool now = !ctx_.values[design_.requireSignal(name)].isZero();
        edges[name] = {prev, now};
    }

    std::vector<const AlwaysItem *> triggered;
    for (const auto *proc : design_.clockedProcs()) {
        for (const auto &sens : proc->sens) {
            auto [before, after] = edges[sens.signal];
            bool rising = !before && after;
            bool falling = before && !after;
            if ((sens.edge == EdgeKind::Posedge && rising) ||
                (sens.edge == EdgeKind::Negedge && falling)) {
                triggered.push_back(proc);
                break;
            }
        }
    }

    std::vector<std::pair<size_t, std::string>> prim_triggered;
    for (size_t i = 0; i < primClocks_.size(); ++i) {
        bool now = !evalExpr(primClocks_[i].expr, ctx_).isZero();
        bool before = prevPrimClocks_[i];
        if (!before && now)
            prim_triggered.emplace_back(primClocks_[i].prim,
                                        primClocks_[i].port);
        prevPrimClocks_[i] = now;
    }

    bool primary_rose = false;
    if (primaryClockId_ >= 0) {
        auto it = prevClocks_.find("clk");
        bool now = !ctx_.values[primaryClockId_].isZero();
        bool before =
            it != prevClocks_.end() ? it->second : primaryClockRaw_;
        primary_rose = !before && now;
        primaryClockRaw_ = now;
    }
    if (primary_rose)
        ++ctx_.cycle;

    for (auto &[name, prev] : prevClocks_)
        prev = edges[name].second;

    if (triggered.empty() && prim_triggered.empty())
        return;

    // Execute processes with pre-edge (settled) values; NBAs commit
    // together afterwards. Primitives also sample inputs pre-edge.
    for (const auto *proc : triggered)
        execStmt(proc->body, true);
    for (const auto &[idx, port] : prim_triggered)
        prims_[idx]->clockEdge(port, ctx_);
    commitNba();

    settleComb();
}

} // namespace hwdbg::sim
