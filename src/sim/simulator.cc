#include "sim/simulator.hh"

#include <algorithm>
#include <chrono>

#include "common/logging.hh"
#include "obs/metrics.hh"
#include "sim/coverage.hh"
#include "sim/profiler.hh"

namespace hwdbg::sim
{

using namespace hdl;

namespace
{

/** Collect the signal ids an expression reads (clock-expr flushing). */
void
collectSignals(const ExprPtr &expr, std::vector<int> &out)
{
    if (!expr)
        return;
    switch (expr->kind) {
      case ExprKind::Id:
        out.push_back(expr->as<IdExpr>()->resolved);
        break;
      case ExprKind::Unary:
        collectSignals(expr->as<UnaryExpr>()->arg, out);
        break;
      case ExprKind::Binary:
        collectSignals(expr->as<BinaryExpr>()->lhs, out);
        collectSignals(expr->as<BinaryExpr>()->rhs, out);
        break;
      case ExprKind::Ternary:
        collectSignals(expr->as<TernaryExpr>()->cond, out);
        collectSignals(expr->as<TernaryExpr>()->thenExpr, out);
        collectSignals(expr->as<TernaryExpr>()->elseExpr, out);
        break;
      case ExprKind::Concat:
        for (const auto &part : expr->as<ConcatExpr>()->parts)
            collectSignals(part, out);
        break;
      case ExprKind::Repeat:
        collectSignals(expr->as<RepeatExpr>()->inner, out);
        break;
      case ExprKind::Index:
        out.push_back(expr->as<IndexExpr>()->resolved);
        collectSignals(expr->as<IndexExpr>()->index, out);
        break;
      case ExprKind::Range:
        out.push_back(expr->as<RangeExpr>()->resolved);
        break;
      case ExprKind::Number:
        break;
    }
}

} // namespace

Simulator::Simulator(ModulePtr elaborated)
    : mod_(std::move(elaborated)), design_(mod_), ctx_(design_)
{
    for (const auto *inst : design_.prims()) {
        prims_.push_back(makePrimitive(inst, design_));
        Primitive *prim = prims_.back().get();
        for (const auto &port : prim->clockPorts()) {
            for (const auto &conn : inst->conns) {
                if (conn.formal == port && conn.actual) {
                    primClocks_.push_back(
                        PrimClock{prims_.size() - 1, port, conn.actual});
                }
            }
        }
    }
    prevPrimClocks_.assign(primClocks_.size(), false);
    for (const auto &pc : primClocks_)
        collectSignals(pc.expr, primClockSigs_);
    std::sort(primClockSigs_.begin(), primClockSigs_.end());
    primClockSigs_.erase(std::unique(primClockSigs_.begin(),
                                     primClockSigs_.end()),
                         primClockSigs_.end());

    for (const auto *proc : design_.clockedProcs())
        for (const auto &sens : proc->sens)
            prevClocks_[sens.signal] = false;

    primaryClockId_ = design_.signalId("clk");

    backend_ = std::make_unique<InterpBackend>(*this);

    for (auto &prim : prims_)
        prim->reset(ctx_);
    backend_->settleComb();

    // Seed edge detection with the clock expressions' actual initial
    // values: a primitive clocked on an inverting expression (e.g.
    // ~clk, as SignalCat generates for negedge displays) starts with
    // the expression already high, and a blanket "previously low"
    // assumption would manufacture a phantom first edge.
    for (size_t i = 0; i < primClocks_.size(); ++i)
        prevPrimClocks_[i] =
            !evalExpr(primClocks_[i].expr, ctx_).isZero();
}

Simulator::~Simulator() = default;

namespace
{

/** In-memory footprint of a Bits value (words + width header). */
size_t
bitsBytes(const Bits &bits)
{
    return 8 + ((bits.width() + 63) / 64) * 8;
}

} // namespace

size_t
StimulusTape::sizeBytes() const
{
    size_t total = sizeof(*this);
    for (const auto &step : steps) {
        total += sizeof(step);
        for (const auto &[name, value] : step.pokes)
            total += name.size() + bitsBytes(value);
    }
    return total;
}

size_t
SimSnapshot::sizeBytes() const
{
    size_t total = sizeof(*this);
    for (const auto &value : values)
        total += bitsBytes(value);
    for (const auto &array : arrays)
        for (const auto &element : array)
            total += bitsBytes(element);
    for (const auto &line : log)
        total += sizeof(line) + line.text.size();
    for (const auto &[name, level] : prevClocks)
        total += name.size() + sizeof(level);
    total += prevPrimClocks.size() / 8 + 1;
    for (const auto &write : nba)
        total += sizeof(write.target) + bitsBytes(write.value);
    for (const auto &blob : primStates)
        total += blob.size();
    return total;
}

namespace
{

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

void
fnvBytes(uint64_t &h, const void *data, size_t len)
{
    const auto *p = static_cast<const uint8_t *>(data);
    for (size_t i = 0; i < len; ++i) {
        h ^= p[i];
        h *= kFnvPrime;
    }
}

void
fnvU64(uint64_t &h, uint64_t v)
{
    fnvBytes(h, &v, sizeof(v));
}

void
fnvStr(uint64_t &h, const std::string &s)
{
    fnvU64(h, s.size());
    fnvBytes(h, s.data(), s.size());
}

void
fnvBits(uint64_t &h, const Bits &bits)
{
    fnvU64(h, bits.width());
    fnvBytes(h, bits.rawWords(), bits.numWords() * sizeof(uint64_t));
}

} // namespace

uint64_t
snapshotFingerprint(const SimSnapshot &snap)
{
    uint64_t h = kFnvOffset;
    fnvU64(h, snap.values.size());
    for (const auto &value : snap.values)
        fnvBits(h, value);
    fnvU64(h, snap.arrays.size());
    for (const auto &array : snap.arrays) {
        fnvU64(h, array.size());
        for (const auto &element : array)
            fnvBits(h, element);
    }
    fnvU64(h, snap.cycle);
    fnvU64(h, snap.evalSeq);
    fnvU64(h, snap.finished ? 1 : 0);
    fnvU64(h, snap.log.size());
    for (const auto &line : snap.log) {
        fnvU64(h, line.cycle);
        fnvStr(h, line.text);
    }
    fnvU64(h, snap.prevClocks.size());
    for (const auto &[name, level] : snap.prevClocks) {
        fnvStr(h, name);
        fnvU64(h, level ? 1 : 0);
    }
    fnvU64(h, snap.prevPrimClocks.size());
    for (bool level : snap.prevPrimClocks)
        fnvU64(h, level ? 1 : 0);
    fnvU64(h, snap.primaryClockRaw ? 1 : 0);
    fnvU64(h, snap.nba.size());
    for (const auto &write : snap.nba) {
        fnvU64(h, static_cast<uint64_t>(write.target.sig));
        fnvU64(h, static_cast<uint64_t>(write.target.element));
        fnvU64(h, write.target.dropped ? 1 : 0);
        fnvU64(h, write.target.msb);
        fnvU64(h, write.target.lsb);
        fnvU64(h, write.target.whole ? 1 : 0);
        fnvBits(h, write.value);
    }
    fnvU64(h, snap.primStates.size());
    for (const auto &blob : snap.primStates) {
        fnvU64(h, blob.size());
        fnvBytes(h, blob.data(), blob.size());
    }
    return h;
}

void
Simulator::setBackend(const BackendFactory &factory)
{
    backend_->flush();
    std::vector<PendingNba> nba;
    backend_->exportNba(nba);
    if (factory)
        backend_ = factory(*this);
    else
        backend_ = std::make_unique<InterpBackend>(*this);
    if (!backend_)
        fatal("setBackend: factory returned no backend");
    backend_->importNba(nba);
    backend_->load();
}

void
Simulator::recordStimulus(StimulusTape *tape)
{
    tape_ = tape;
    pendingStep_.pokes.clear();
}

void
Simulator::applyStep(const StimulusStep &step)
{
    for (const auto &[name, value] : step.pokes)
        poke(name, value);
    eval();
}

SimSnapshot
Simulator::saveState() const
{
    // Logically const: publishing backend shadow state into the shared
    // context changes no observable simulator state.
    const_cast<Simulator *>(this)->backend_->flush();
    // Pending $display entries render into the log before it is
    // copied, so snapshots stay a plain vector of formatted lines.
    const_cast<EvalContext &>(ctx_).drainLog();
    SimSnapshot snap;
    snap.values = ctx_.values;
    snap.arrays = ctx_.arrays;
    snap.cycle = ctx_.cycle;
    snap.evalSeq = ctx_.evalSeq;
    snap.finished = ctx_.finished;
    snap.log = ctx_.log;
    snap.prevClocks = prevClocks_;
    snap.prevPrimClocks = prevPrimClocks_;
    snap.primaryClockRaw = primaryClockRaw_;
    backend_->exportNba(snap.nba);
    snap.primStates.resize(prims_.size());
    for (size_t i = 0; i < prims_.size(); ++i)
        prims_[i]->saveState(snap.primStates[i]);
    HWDBG_STAT_INC("sim.snapshots", 1);
    return snap;
}

void
Simulator::restoreState(const SimSnapshot &snap)
{
    if (snap.values.size() != ctx_.values.size() ||
        snap.primStates.size() != prims_.size())
        fatal("restoreState: snapshot is from a different design");
    ctx_.values = snap.values;
    ctx_.arrays = snap.arrays;
    ctx_.cycle = snap.cycle;
    ctx_.evalSeq = snap.evalSeq;
    ctx_.finished = snap.finished;
    ctx_.log = snap.log;
    ctx_.pendingLog.clear();
    ctx_.valuesChanged = false;
    prevClocks_ = snap.prevClocks;
    prevPrimClocks_ = snap.prevPrimClocks;
    primaryClockRaw_ = snap.primaryClockRaw;
    backend_->importNba(snap.nba);
    backend_->load();
    for (size_t i = 0; i < prims_.size(); ++i) {
        const auto &blob = snap.primStates[i];
        const uint8_t *cursor = blob.data();
        prims_[i]->restoreState(cursor, blob.data() + blob.size());
    }
    pendingStep_.pokes.clear();
    // Coverage marks are idempotent, but FSM transition detection
    // compares against the last sampled state; re-seed it so time
    // travel cannot fabricate a restore-point transition.
    if (cover_)
        cover_->resync(ctx_);
    // Same contract for the per-eval hook: restored state is a new
    // baseline, never a fabricated change.
    if (hook_)
        hook_->resync(ctx_);
    HWDBG_STAT_INC("sim.restores", 1);
}

void
Simulator::enableProfiling(SimCounters *counters)
{
    prof_ = counters;
    if (!prof_) {
        ctx_.toggles = nullptr;
        return;
    }
    prof_->assignEvals.assign(design_.assigns().size(), 0);
    prof_->assignNs.assign(design_.assigns().size(), 0);
    prof_->combEvals.assign(design_.combProcs().size(), 0);
    prof_->combNs.assign(design_.combProcs().size(), 0);
    prof_->clockedEvals.assign(design_.clockedProcs().size(), 0);
    prof_->clockedNs.assign(design_.clockedProcs().size(), 0);
    prof_->toggles.assign(design_.numSignals(), 0);
    if (prof_->settleHist.empty())
        prof_->settleHist.assign(65, 0);
    ctx_.toggles = &prof_->toggles;
}

void
Simulator::enableCoverage(CoverageCollector *collector)
{
    cover_ = collector;
    ctx_.cover = collector;
    // Seed FSM tracking from current values: the occupied state is
    // credited, but attaching mid-run fabricates no transition.
    if (cover_) {
        backend_->flush();
        cover_->resync(ctx_);
    }
}

void
Simulator::setEvalHook(EvalHook *hook)
{
    hook_ = hook;
    // Seed change/edge baselines from current state: attaching mid-run
    // observes from here on and fabricates nothing retroactively.
    if (hook_) {
        backend_->flush();
        hook_->resync(ctx_);
    }
}

void
Simulator::poke(const std::string &signal, const Bits &value)
{
    int id = design_.requireSignal(signal);
    const SignalInfo &sig = design_.info(id);
    if (sig.dir != PortDir::Input)
        fatal("poke: '%s' is not a top-level input", signal.c_str());
    if (cover_) {
        Bits next = value.resized(sig.width);
        cover_->onStore(id, ctx_.values[id], next);
        ctx_.values[id] = std::move(next);
    } else {
        ctx_.values[id] = value.resized(sig.width);
    }
    backend_->onPoke(id);
    if (tape_)
        pendingStep_.pokes.emplace_back(signal, ctx_.values[id]);
}

void
Simulator::poke(const std::string &signal, uint64_t value)
{
    int id = design_.requireSignal(signal);
    poke(signal, Bits(design_.info(id).width, value));
}

Bits
Simulator::peek(const std::string &signal) const
{
    int id = design_.requireSignal(signal);
    const_cast<Simulator *>(this)->backend_->flushSignal(id);
    return ctx_.values[id];
}

uint64_t
Simulator::peekU64(const std::string &signal) const
{
    return peek(signal).toU64();
}

Bits
Simulator::peekArray(const std::string &signal, uint64_t index) const
{
    int id = design_.requireSignal(signal);
    const SignalInfo &sig = design_.info(id);
    if (sig.arraySize == 0)
        fatal("peekArray: '%s' is not a memory", signal.c_str());
    if (index >= sig.arraySize)
        fatal("peekArray: index %llu out of range for '%s'",
              static_cast<unsigned long long>(index), signal.c_str());
    const_cast<Simulator *>(this)->backend_->flushSignal(id);
    return ctx_.arrays[id][index];
}

Primitive *
Simulator::primitive(const std::string &inst_name) const
{
    for (const auto &prim : prims_)
        if (prim->name() == inst_name)
            return prim.get();
    return nullptr;
}

void
Simulator::noteSettle(size_t iters, size_t work)
{
    HWDBG_STAT_INC("sim.settle_calls", 1);
    HWDBG_STAT_INC("sim.process_evals", iters * work);
    HWDBG_STAT_HIST("sim.settle_iters", iters);
    HWDBG_STAT_MAX("sim.max_settle_iters", iters);
    if (!prof_)
        return;
    ++prof_->settleCalls;
    prof_->maxSettleDepth =
        std::max<uint32_t>(prof_->maxSettleDepth,
                           static_cast<uint32_t>(iters));
    size_t slot = std::min(iters, prof_->settleHist.size() - 1);
    ++prof_->settleHist[slot];
}

void
Simulator::setProcessOrder(std::vector<size_t> order)
{
    if (order.empty()) {
        procOrder_.clear();
        return;
    }
    size_t n = design_.clockedProcs().size();
    if (order.size() != n)
        fatal("setProcessOrder: %zu ranks for %zu clocked processes",
              order.size(), n);
    std::vector<uint8_t> seen(n, 0);
    for (size_t pi : order) {
        if (pi >= n || seen[pi])
            fatal("setProcessOrder: not a permutation of 0..%zu",
                  n - 1);
        seen[pi] = 1;
    }
    // Store as rank-of-process so the eval loop can stable-sort the
    // triggered subset: procOrder_[pi] = execution rank of process pi.
    procOrder_.assign(n, 0);
    for (size_t rank = 0; rank < order.size(); ++rank)
        procOrder_[order[rank]] = rank;
}

void
Simulator::eval()
{
    if (tape_) {
        tape_->steps.push_back(std::move(pendingStep_));
        pendingStep_.pokes.clear();
    }
    ++ctx_.evalSeq;
    backend_->settleComb();

    // Detect clock edges on clocked processes.
    std::map<std::string, std::pair<bool, bool>> edges; // old -> new
    for (auto &[name, prev] : prevClocks_) {
        bool now = backend_->signalBool(design_.requireSignal(name));
        edges[name] = {prev, now};
    }

    std::vector<size_t> triggered;
    const auto &clocked = design_.clockedProcs();
    for (size_t pi = 0; pi < clocked.size(); ++pi) {
        const auto *proc = clocked[pi];
        for (const auto &sens : proc->sens) {
            auto [before, after] = edges[sens.signal];
            bool rising = !before && after;
            bool falling = before && !after;
            if ((sens.edge == EdgeKind::Posedge && rising) ||
                (sens.edge == EdgeKind::Negedge && falling)) {
                triggered.push_back(pi);
                break;
            }
        }
    }

    // Primitive clock expressions read the shared context directly;
    // publish the signals they reference first.
    for (int sig : primClockSigs_)
        backend_->flushSignal(sig);
    std::vector<std::pair<size_t, std::string>> prim_triggered;
    for (size_t i = 0; i < primClocks_.size(); ++i) {
        bool now = !evalExpr(primClocks_[i].expr, ctx_).isZero();
        bool before = prevPrimClocks_[i];
        if (!before && now)
            prim_triggered.emplace_back(primClocks_[i].prim,
                                        primClocks_[i].port);
        prevPrimClocks_[i] = now;
    }

    bool primary_rose = false;
    if (primaryClockId_ >= 0) {
        auto it = prevClocks_.find("clk");
        bool now = backend_->signalBool(primaryClockId_);
        bool before =
            it != prevClocks_.end() ? it->second : primaryClockRaw_;
        primary_rose = !before && now;
        primaryClockRaw_ = now;
    }
    if (primary_rose) {
        ++ctx_.cycle;
        HWDBG_STAT_INC("sim.cycles", 1);
    }

    for (auto &[name, prev] : prevClocks_)
        prev = edges[name].second;

    if (triggered.empty() && prim_triggered.empty()) {
        if (cover_) {
            backend_->flush();
            cover_->sample(ctx_);
        }
        if (hook_) {
            backend_->flush();
            hook_->onEval(ctx_);
        }
        return;
    }

    // Execute processes with pre-edge (settled) values; NBAs commit
    // together afterwards. Primitives also sample inputs pre-edge.
    if (!procOrder_.empty())
        std::stable_sort(triggered.begin(), triggered.end(),
                         [&](size_t a, size_t b) {
                             return procOrder_[a] < procOrder_[b];
                         });
    HWDBG_STAT_INC("sim.process_evals", triggered.size());
    using ProfClock = std::chrono::steady_clock;
    for (size_t pi : triggered) {
        ProfClock::time_point t0;
        if (prof_)
            t0 = ProfClock::now();
        backend_->execClocked(pi);
        if (prof_) {
            ++prof_->clockedEvals[pi];
            prof_->clockedNs[pi] +=
                std::chrono::duration<double, std::nano>(
                    ProfClock::now() - t0)
                    .count();
        }
    }
    if (!prim_triggered.empty()) {
        // Primitives read and write the shared context; reconcile the
        // backend's state around them.
        backend_->flush();
        for (const auto &[idx, port] : prim_triggered)
            prims_[idx]->clockEdge(port, ctx_);
        backend_->load();
    }
    backend_->commitNba();

    backend_->settleComb();

    if (cover_) {
        backend_->flush();
        cover_->sample(ctx_);
    }
    if (hook_) {
        backend_->flush();
        hook_->onEval(ctx_);
    }
}

} // namespace hwdbg::sim
