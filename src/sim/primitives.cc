#include "sim/primitives.hh"

#include "common/logging.hh"
#include "elab/elaborate.hh"

namespace hwdbg::sim
{

using namespace hdl;

Primitive::Primitive(const InstanceItem *inst, const LoweredDesign &design)
    : inst_(inst)
{
    (void)design;
    for (const auto &[name, value] : inst->paramOverrides)
        params_[name] = elab::evalConst(value, {}).toU64();
    for (const auto &conn : inst->conns)
        if (conn.actual)
            conns_[conn.formal] = conn.actual;
}

uint64_t
Primitive::param(const std::string &name, int64_t def) const
{
    auto it = params_.find(name);
    if (it != params_.end())
        return it->second;
    if (def >= 0)
        return static_cast<uint64_t>(def);
    fatal("primitive '%s' (%s) is missing parameter %s",
          inst_->instName.c_str(), inst_->moduleName.c_str(), name.c_str());
}

// ---------------------------------------------------------------------
// Snapshot byte codec. Blobs are little-endian and self-delimiting;
// each primitive reads back exactly what it wrote.
// ---------------------------------------------------------------------

namespace
{

void
putU64(std::vector<uint8_t> &out, uint64_t value)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<uint8_t>(value >> (8 * i)));
}

uint64_t
getU64(const uint8_t *&cursor, const uint8_t *end)
{
    if (end - cursor < 8)
        fatal("primitive snapshot blob is truncated");
    uint64_t value = 0;
    for (int i = 0; i < 8; ++i)
        value |= static_cast<uint64_t>(cursor[i]) << (8 * i);
    cursor += 8;
    return value;
}

void
putBits(std::vector<uint8_t> &out, const Bits &bits)
{
    putU64(out, bits.width());
    for (uint32_t lo = 0; lo < bits.width(); lo += 64)
        putU64(out, bits.slice(lo + 63, lo).toU64());
}

Bits
getBits(const uint8_t *&cursor, const uint8_t *end)
{
    uint32_t width = static_cast<uint32_t>(getU64(cursor, end));
    Bits bits(width == 0 ? 1 : width, 0);
    for (uint32_t lo = 0; lo < width; lo += 64) {
        uint32_t hi = lo + 63 < width ? lo + 63 : width - 1;
        bits.setSlice(hi, lo, Bits(64, getU64(cursor, end)));
    }
    return bits;
}

void
putQueue(std::vector<uint8_t> &out, const std::deque<Bits> &queue)
{
    putU64(out, queue.size());
    for (const auto &entry : queue)
        putBits(out, entry);
}

std::deque<Bits>
getQueue(const uint8_t *&cursor, const uint8_t *end)
{
    size_t count = getU64(cursor, end);
    std::deque<Bits> queue;
    for (size_t i = 0; i < count; ++i)
        queue.push_back(getBits(cursor, end));
    return queue;
}

} // namespace

void
Primitive::saveState(std::vector<uint8_t> &out) const
{
    (void)out;
}

void
Primitive::restoreState(const uint8_t *&cursor, const uint8_t *end)
{
    (void)cursor;
    (void)end;
}

bool
Primitive::hasPort(const std::string &formal) const
{
    return conns_.count(formal) != 0;
}

Bits
Primitive::readPort(const std::string &formal, EvalContext &ctx,
                    uint32_t width) const
{
    auto it = conns_.find(formal);
    if (it == conns_.end())
        return Bits(width, 0);
    return evalExpr(it->second, ctx).resized(width);
}

void
Primitive::writePort(const std::string &formal, const Bits &value,
                     EvalContext &ctx) const
{
    auto it = conns_.find(formal);
    if (it == conns_.end())
        return;
    storeLValue(it->second, value, ctx);
}

// ---------------------------------------------------------------------
// Scfifo
// ---------------------------------------------------------------------

Scfifo::Scfifo(const InstanceItem *inst, const LoweredDesign &design)
    : Primitive(inst, design),
      width_(static_cast<uint32_t>(param("WIDTH"))),
      depth_(static_cast<uint32_t>(param("DEPTH"))),
      qReg_(width_, 0)
{
    if (depth_ == 0)
        fatal("scfifo '%s': DEPTH must be positive", name().c_str());
}

std::vector<std::string>
Scfifo::clockPorts() const
{
    return {"clock"};
}

void
Scfifo::reset(EvalContext &ctx)
{
    queue_.clear();
    qReg_ = Bits(width_, 0);
    driveStatus(ctx);
}

void
Scfifo::driveStatus(EvalContext &ctx)
{
    writePort("q", qReg_, ctx);
    writePort("empty", Bits(1, queue_.empty() ? 1 : 0), ctx);
    writePort("full", Bits(1, queue_.size() >= depth_ ? 1 : 0), ctx);
    writePort("usedw", Bits(32, queue_.size()), ctx);
}

void
Scfifo::clockEdge(const std::string &clock_port, EvalContext &ctx)
{
    (void)clock_port;
    // Sample all inputs pre-edge.
    bool sclr = !readPort("sclr", ctx, 1).isZero();
    bool wrreq = !readPort("wrreq", ctx, 1).isZero();
    bool rdreq = !readPort("rdreq", ctx, 1).isZero();
    Bits data = readPort("data", ctx, width_);

    if (sclr) {
        queue_.clear();
        qReg_ = Bits(width_, 0);
    } else {
        // Reads and writes both use the pre-edge occupancy, so a
        // simultaneous read+write on a full FIFO behaves like hardware.
        bool can_read = !queue_.empty();
        bool can_write =
            queue_.size() < depth_ || (rdreq && can_read);
        if (rdreq && can_read) {
            qReg_ = queue_.front();
            queue_.pop_front();
        }
        if (wrreq && can_write)
            queue_.push_back(data);
    }
    driveStatus(ctx);
}

void
Scfifo::saveState(std::vector<uint8_t> &out) const
{
    putQueue(out, queue_);
    putBits(out, qReg_);
}

void
Scfifo::restoreState(const uint8_t *&cursor, const uint8_t *end)
{
    queue_ = getQueue(cursor, end);
    qReg_ = getBits(cursor, end);
}

// ---------------------------------------------------------------------
// Dcfifo
// ---------------------------------------------------------------------

Dcfifo::Dcfifo(const InstanceItem *inst, const LoweredDesign &design)
    : Primitive(inst, design),
      width_(static_cast<uint32_t>(param("WIDTH"))),
      depth_(static_cast<uint32_t>(param("DEPTH"))),
      qReg_(width_, 0)
{
}

std::vector<std::string>
Dcfifo::clockPorts() const
{
    return {"wrclk", "rdclk"};
}

void
Dcfifo::reset(EvalContext &ctx)
{
    queue_.clear();
    qReg_ = Bits(width_, 0);
    writePort("q", qReg_, ctx);
    writePort("rdempty", Bits(1, 1), ctx);
    writePort("wrfull", Bits(1, 0), ctx);
    writePort("wrusedw", Bits(32, 0), ctx);
}

void
Dcfifo::clockEdge(const std::string &clock_port, EvalContext &ctx)
{
    if (clock_port == "wrclk") {
        bool wrreq = !readPort("wrreq", ctx, 1).isZero();
        Bits data = readPort("data", ctx, width_);
        if (wrreq && queue_.size() < depth_)
            queue_.push_back(data);
    } else if (clock_port == "rdclk") {
        bool rdreq = !readPort("rdreq", ctx, 1).isZero();
        if (rdreq && !queue_.empty()) {
            qReg_ = queue_.front();
            queue_.pop_front();
        }
        writePort("q", qReg_, ctx);
    }
    // Status flags update on both domains (the model assumes ideal,
    // zero-latency pointer synchronization across the clock crossing).
    writePort("wrfull", Bits(1, queue_.size() >= depth_ ? 1 : 0), ctx);
    writePort("wrusedw", Bits(32, queue_.size()), ctx);
    writePort("rdempty", Bits(1, queue_.empty() ? 1 : 0), ctx);
}

void
Dcfifo::saveState(std::vector<uint8_t> &out) const
{
    putQueue(out, queue_);
    putBits(out, qReg_);
}

void
Dcfifo::restoreState(const uint8_t *&cursor, const uint8_t *end)
{
    queue_ = getQueue(cursor, end);
    qReg_ = getBits(cursor, end);
}

// ---------------------------------------------------------------------
// Altsyncram
// ---------------------------------------------------------------------

Altsyncram::Altsyncram(const InstanceItem *inst,
                       const LoweredDesign &design)
    : Primitive(inst, design),
      width_(static_cast<uint32_t>(param("WIDTH"))),
      numWords_(static_cast<uint32_t>(param("NUMWORDS"))),
      qReg_(width_, 0)
{
    mem_.assign(numWords_, Bits(width_, 0));
}

std::vector<std::string>
Altsyncram::clockPorts() const
{
    return {"clock0"};
}

void
Altsyncram::reset(EvalContext &ctx)
{
    writePort("q_b", qReg_, ctx);
}

void
Altsyncram::clockEdge(const std::string &clock_port, EvalContext &ctx)
{
    (void)clock_port;
    bool wren = !readPort("wren_a", ctx, 1).isZero();
    uint64_t addr_a = readPort("address_a", ctx, 32).toU64();
    uint64_t addr_b = readPort("address_b", ctx, 32).toU64();
    Bits data = readPort("data_a", ctx, width_);

    // Read port returns pre-write contents (read-during-write: old data).
    qReg_ = addr_b < numWords_ ? mem_[addr_b] : Bits(width_, 0);
    if (wren && addr_a < numWords_)
        mem_[addr_a] = data;

    writePort("q_b", qReg_, ctx);
}

void
Altsyncram::saveState(std::vector<uint8_t> &out) const
{
    putU64(out, mem_.size());
    for (const auto &word : mem_)
        putBits(out, word);
    putBits(out, qReg_);
}

void
Altsyncram::restoreState(const uint8_t *&cursor, const uint8_t *end)
{
    size_t words = getU64(cursor, end);
    mem_.clear();
    mem_.reserve(words);
    for (size_t i = 0; i < words; ++i)
        mem_.push_back(getBits(cursor, end));
    qReg_ = getBits(cursor, end);
}

// ---------------------------------------------------------------------
// SignalRecorder
// ---------------------------------------------------------------------

SignalRecorder::SignalRecorder(const InstanceItem *inst,
                               const LoweredDesign &design)
    : Primitive(inst, design),
      width_(static_cast<uint32_t>(param("WIDTH"))),
      depth_(static_cast<uint32_t>(param("DEPTH"))),
      ring_(param("MODE", 0) == 1)
{
    buffer_.reserve(std::min<uint32_t>(depth_, 65536));
}

std::vector<std::string>
SignalRecorder::clockPorts() const
{
    return {"clk"};
}

void
SignalRecorder::reset(EvalContext &ctx)
{
    (void)ctx;
    buffer_.clear();
    next_ = 0;
    wrappedAround_ = false;
    overflowed_ = false;
    stopped_ = false;
}

void
SignalRecorder::clockEdge(const std::string &clock_port, EvalContext &ctx)
{
    (void)clock_port;
    // The stop event freezes the captured window permanently.
    if (stopped_)
        return;
    if (hasPort("stop") && !readPort("stop", ctx, 1).isZero()) {
        stopped_ = true;
        return;
    }
    bool armed = hasPort("arm") ? !readPort("arm", ctx, 1).isZero() : true;
    bool valid = !readPort("valid", ctx, 1).isZero();
    if (!armed || !valid)
        return;

    Entry entry{ctx.cycle, readPort("data", ctx, width_)};
    if (buffer_.size() < depth_) {
        buffer_.push_back(std::move(entry));
        next_ = buffer_.size() % depth_;
        return;
    }
    if (!ring_) {
        overflowed_ = true;
        return;
    }
    // Ring mode: overwrite the oldest entry.
    buffer_[next_] = std::move(entry);
    next_ = (next_ + 1) % depth_;
    wrappedAround_ = true;
}

void
SignalRecorder::saveState(std::vector<uint8_t> &out) const
{
    putU64(out, buffer_.size());
    for (const auto &entry : buffer_) {
        putU64(out, entry.cycle);
        putBits(out, entry.data);
    }
    putU64(out, next_);
    putU64(out, (wrappedAround_ ? 1u : 0u) | (overflowed_ ? 2u : 0u) |
                    (stopped_ ? 4u : 0u));
}

void
SignalRecorder::restoreState(const uint8_t *&cursor, const uint8_t *end)
{
    size_t count = getU64(cursor, end);
    buffer_.clear();
    buffer_.reserve(count);
    for (size_t i = 0; i < count; ++i) {
        uint64_t cycle = getU64(cursor, end);
        buffer_.push_back(Entry{cycle, getBits(cursor, end)});
    }
    next_ = getU64(cursor, end);
    uint64_t flags = getU64(cursor, end);
    wrappedAround_ = (flags & 1) != 0;
    overflowed_ = (flags & 2) != 0;
    stopped_ = (flags & 4) != 0;
}

std::vector<SignalRecorder::Entry>
SignalRecorder::entries() const
{
    if (!ring_ || !wrappedAround_)
        return buffer_;
    std::vector<Entry> ordered;
    ordered.reserve(buffer_.size());
    for (size_t i = 0; i < buffer_.size(); ++i)
        ordered.push_back(buffer_[(next_ + i) % buffer_.size()]);
    return ordered;
}

// ---------------------------------------------------------------------

std::unique_ptr<Primitive>
makePrimitive(const InstanceItem *inst, const LoweredDesign &design)
{
    if (inst->moduleName == "scfifo")
        return std::make_unique<Scfifo>(inst, design);
    if (inst->moduleName == "dcfifo")
        return std::make_unique<Dcfifo>(inst, design);
    if (inst->moduleName == "altsyncram")
        return std::make_unique<Altsyncram>(inst, design);
    if (inst->moduleName == "signal_recorder")
        return std::make_unique<SignalRecorder>(inst, design);
    fatal("unknown primitive '%s'", inst->moduleName.c_str());
}

} // namespace hwdbg::sim
