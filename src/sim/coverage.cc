#include "sim/coverage.hh"

#include <algorithm>

#include "hdl/printer.hh"
#include "sim/eval.hh"

namespace hwdbg::sim
{

using namespace hdl;

std::string
coverScopeOf(const std::string &name)
{
    size_t pos = name.rfind("__");
    if (pos == std::string::npos)
        return "(top)";
    return name.substr(0, pos);
}

namespace
{

/** Base signal name of the first assignment inside @p stmt. */
const std::string *
firstLhsBase(const Stmt *stmt)
{
    if (!stmt)
        return nullptr;
    switch (stmt->kind) {
      case StmtKind::Assign: {
        const Expr *lhs = stmt->as<AssignStmt>()->lhs.get();
        while (lhs) {
            switch (lhs->kind) {
              case ExprKind::Id:
                return &lhs->as<IdExpr>()->name;
              case ExprKind::Index:
                return &lhs->as<IndexExpr>()->base;
              case ExprKind::Range:
                return &lhs->as<RangeExpr>()->base;
              case ExprKind::Concat: {
                const auto *cat = lhs->as<ConcatExpr>();
                lhs = cat->parts.empty() ? nullptr
                                         : cat->parts[0].get();
                break;
              }
              default:
                return nullptr;
            }
        }
        return nullptr;
      }
      case StmtKind::Block:
        for (const auto &sub : stmt->as<BlockStmt>()->stmts)
            if (const auto *name = firstLhsBase(sub.get()))
                return name;
        return nullptr;
      case StmtKind::If: {
        const auto *branch = stmt->as<IfStmt>();
        if (const auto *name = firstLhsBase(branch->thenStmt.get()))
            return name;
        return firstLhsBase(branch->elseStmt.get());
      }
      case StmtKind::Case:
        for (const auto &item : stmt->as<CaseStmt>()->items)
            if (const auto *name = firstLhsBase(item.body.get()))
                return name;
        return nullptr;
      default:
        return nullptr;
    }
}

std::string
caseItemLabel(const CaseItem &item)
{
    if (item.labels.empty())
        return "default";
    std::string out;
    for (size_t i = 0; i < item.labels.size(); ++i) {
        if (i)
            out += ", ";
        out += printExpr(item.labels[i]);
    }
    return out;
}

void
registerStmt(const StmtPtr &stmt, const std::string &scope,
             CoverageItems &items)
{
    if (!stmt)
        return;
    auto id = static_cast<int32_t>(items.statements.size());
    stmt->coverId = id;

    CoverageItems::StmtItem entry;
    entry.stmt = stmt.get();
    entry.kind = stmt->kind;
    entry.loc = stmt->loc;
    entry.scope = scope;

    if (stmt->kind == StmtKind::If) {
        entry.armBase = static_cast<int32_t>(items.arms.size());
        entry.armCount = 2;
        items.arms.push_back({static_cast<uint32_t>(id), "then"});
        items.arms.push_back({static_cast<uint32_t>(id), "else"});
    } else if (stmt->kind == StmtKind::Case) {
        const auto *sel = stmt->as<CaseStmt>();
        entry.armBase = static_cast<int32_t>(items.arms.size());
        bool has_default = false;
        for (const auto &item : sel->items) {
            has_default |= item.labels.empty();
            items.arms.push_back(
                {static_cast<uint32_t>(id), caseItemLabel(item)});
        }
        // Without a default, falling through every item is its own
        // observable outcome.
        if (!has_default)
            items.arms.push_back(
                {static_cast<uint32_t>(id), "no match"});
        entry.armCount =
            static_cast<uint32_t>(items.arms.size()) -
            static_cast<uint32_t>(entry.armBase);
    }
    items.statements.push_back(std::move(entry));

    switch (stmt->kind) {
      case StmtKind::Block:
        for (const auto &sub : stmt->as<BlockStmt>()->stmts)
            registerStmt(sub, scope, items);
        break;
      case StmtKind::If: {
        const auto *branch = stmt->as<IfStmt>();
        registerStmt(branch->thenStmt, scope, items);
        registerStmt(branch->elseStmt, scope, items);
        break;
      }
      case StmtKind::Case:
        for (const auto &item : stmt->as<CaseStmt>()->items)
            registerStmt(item.body, scope, items);
        break;
      default:
        break;
    }
}

uint64_t
fnv1a(uint64_t hash, const void *data, size_t len)
{
    const auto *bytes = static_cast<const uint8_t *>(data);
    for (size_t i = 0; i < len; ++i) {
        hash ^= bytes[i];
        hash *= 0x100000001b3ull;
    }
    return hash;
}

uint64_t
fnvStr(uint64_t hash, const std::string &text)
{
    return fnv1a(hash, text.data(), text.size());
}

uint64_t
fnvU64(uint64_t hash, uint64_t value)
{
    return fnv1a(hash, &value, sizeof(value));
}

} // namespace

uint64_t
CoverageItems::fingerprint() const
{
    uint64_t hash = 0xcbf29ce484222325ull;
    hash = fnvU64(hash, statements.size());
    hash = fnvU64(hash, arms.size());
    hash = fnvU64(hash, signals.size());
    hash = fnvU64(hash, fsms.size());
    hash = fnvU64(hash, toggleBits);
    for (const auto &stmt : statements) {
        hash = fnvU64(hash, static_cast<uint64_t>(stmt.kind));
        hash = fnvStr(hash, stmt.loc.file);
        hash = fnvU64(hash, static_cast<uint64_t>(stmt.loc.line));
        hash = fnvU64(hash, static_cast<uint64_t>(stmt.armCount));
    }
    for (const auto &arm : arms) {
        hash = fnvU64(hash, arm.stmtId);
        hash = fnvStr(hash, arm.label);
    }
    for (const auto &sig : signals) {
        hash = fnvStr(hash, sig.name);
        hash = fnvU64(hash, sig.width);
    }
    for (const auto &fsm : fsms) {
        hash = fnvStr(hash, fsm.stateVar);
        for (uint64_t state : fsm.states)
            hash = fnvU64(hash, state);
        for (const auto &trans : fsm.transitions) {
            hash = fnvU64(hash, trans.hasFrom ? trans.from + 1 : 0);
            hash = fnvU64(hash, trans.to);
        }
    }
    return hash;
}

CoverageItems
buildCoverageItems(const LoweredDesign &design,
                   std::vector<FsmCoverSpec> fsms)
{
    CoverageItems items;

    items.sigSlot.assign(design.numSignals(), -1);
    for (size_t id = 0; id < design.numSignals(); ++id) {
        const SignalInfo &sig = design.info(static_cast<int>(id));
        CoverageItems::SignalItem entry;
        entry.sig = static_cast<int>(id);
        entry.name = sig.name;
        entry.width = sig.width;
        entry.scope = coverScopeOf(sig.name);
        entry.bitOffset = items.toggleBits;
        items.sigSlot[id] =
            static_cast<int32_t>(items.signals.size());
        items.signals.push_back(std::move(entry));
        items.toggleBits += sig.width;
    }

    auto procScope = [&](const hdl::AlwaysItem *proc) {
        const std::string *base = firstLhsBase(proc->body.get());
        return base ? coverScopeOf(*base) : std::string("(top)");
    };
    for (const auto *proc : design.clockedProcs())
        registerStmt(proc->body, procScope(proc), items);
    for (const auto *proc : design.combProcs())
        registerStmt(proc->body, procScope(proc), items);

    for (auto &fsm : fsms) {
        fsm.sig = design.signalId(fsm.stateVar);
        if (fsm.sig < 0)
            continue;
        items.fsms.push_back(std::move(fsm));
    }
    return items;
}

CoverageCollector::CoverageCollector(const CoverageItems &items)
    : items_(&items),
      stmtCount_(static_cast<uint32_t>(items.statements.size()))
{
    auto words = [](size_t bits) { return (bits + 63) / 64; };
    stmtWords_.assign(words(items.statements.size()), 0);
    armWords_.assign(words(items.arms.size()), 0);
    riseWords_.assign(words(items.toggleBits), 0);
    fallWords_.assign(words(items.toggleBits), 0);

    fsms_.resize(items.fsms.size());
    for (size_t i = 0; i < items.fsms.size(); ++i) {
        const FsmCoverSpec &spec = items.fsms[i];
        FsmRuntime &fsm = fsms_[i];
        fsm.sig = spec.sig;
        fsm.state.stateSeen.assign(spec.states.size(), false);
        fsm.state.transSeen.assign(spec.transitions.size(), false);
        for (size_t s = 0; s < spec.states.size(); ++s)
            fsm.stateIdx.emplace(spec.states[s],
                                 static_cast<uint32_t>(s));
        for (size_t t = 0; t < spec.transitions.size(); ++t) {
            const auto &trans = spec.transitions[t];
            if (trans.hasFrom)
                fsm.exactTrans.emplace(
                    std::make_pair(trans.from, trans.to),
                    static_cast<uint32_t>(t));
            else
                fsm.wildTrans.emplace(trans.to,
                                      static_cast<uint32_t>(t));
        }
    }
}

void
CoverageCollector::onStore(int sig, const Bits &oldv, const Bits &newv)
{
    ++events_;
    int32_t slot = items_->sigSlot[sig];
    if (slot < 0)
        return;
    const auto &entry = items_->signals[slot];
    uint32_t bits = std::min(entry.width,
                             std::min(oldv.width(), newv.width()));
    for (uint32_t b = 0; b < bits; ++b) {
        bool was = oldv.bit(b);
        bool now = newv.bit(b);
        if (was == now)
            continue;
        uint32_t idx = entry.bitOffset + b;
        auto &map = now ? riseWords_ : fallWords_;
        map[idx >> 6] |= uint64_t(1) << (idx & 63);
    }
}

void
CoverageCollector::observeState(FsmRuntime &fsm, uint64_t cur)
{
    auto it = fsm.stateIdx.find(cur);
    if (it != fsm.stateIdx.end())
        fsm.state.stateSeen[it->second] = true;
    else
        fsm.state.unexpectedStates.insert(cur);
}

void
CoverageCollector::sample(const EvalContext &ctx)
{
    ++events_;
    for (auto &fsm : fsms_) {
        uint64_t cur = ctx.values[fsm.sig].toU64();
        if (!fsm.hasLast) {
            observeState(fsm, cur);
            fsm.last = cur;
            fsm.hasLast = true;
            continue;
        }
        if (cur == fsm.last)
            continue;
        observeState(fsm, cur);
        auto exact = fsm.exactTrans.find({fsm.last, cur});
        if (exact != fsm.exactTrans.end()) {
            fsm.state.transSeen[exact->second] = true;
        } else {
            auto wild = fsm.wildTrans.find(cur);
            if (wild != fsm.wildTrans.end())
                fsm.state.transSeen[wild->second] = true;
            else
                fsm.state.unexpectedTransitions.insert(
                    {fsm.last, cur});
        }
        fsm.last = cur;
    }
}

void
CoverageCollector::resync(const EvalContext &ctx)
{
    for (auto &fsm : fsms_) {
        uint64_t cur = ctx.values[fsm.sig].toU64();
        // Being in a state is state coverage (idempotent when the
        // state was already visited), but no arc is recorded: the
        // jump that landed here was a restore or attach, not an
        // actual transition of the design.
        observeState(fsm, cur);
        fsm.last = cur;
        fsm.hasLast = true;
    }
}

CoverageTotals
CoverageCollector::totals() const
{
    CoverageTotals out;
    out.stmtTotal = items_->statements.size();
    out.armTotal = items_->arms.size();
    out.toggleTotal = 2 * static_cast<uint64_t>(items_->toggleBits);
    auto popAll = [](const std::vector<uint64_t> &words) {
        uint64_t n = 0;
        for (uint64_t word : words)
            n += static_cast<uint64_t>(__builtin_popcountll(word));
        return n;
    };
    out.stmtHit = popAll(stmtWords_);
    out.armTaken = popAll(armWords_);
    out.toggleHit = popAll(riseWords_) + popAll(fallWords_);
    for (size_t i = 0; i < fsms_.size(); ++i) {
        const auto &fsm = fsms_[i].state;
        out.fsmStateTotal += fsm.stateSeen.size();
        out.fsmTransTotal += fsm.transSeen.size();
        for (bool seen : fsm.stateSeen)
            out.fsmStateHit += seen;
        for (bool seen : fsm.transSeen)
            out.fsmTransHit += seen;
    }
    return out;
}

} // namespace hwdbg::sim
