#include "sim/design.hh"

#include "common/logging.hh"
#include "elab/elaborate.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace hwdbg::sim
{

using namespace hdl;

uint64_t
constU64(const ExprPtr &expr)
{
    return elab::evalConst(expr, {}).toU64();
}

LoweredDesign::LoweredDesign(ModulePtr mod) : mod_(std::move(mod))
{
    obs::ObsSpan span("lower");
    collectSignals();
    HWDBG_STAT_INC("sim.lowered_designs", 1);
    HWDBG_STAT_INC("sim.lowered_signals", signals_.size());

    for (const auto &item : mod_->items) {
        switch (item->kind) {
          case ItemKind::Param:
            break; // resolved during elaboration; nothing to lower
          case ItemKind::Net:
            break;
          case ItemKind::ContAssign: {
            auto *assign = item->as<ContAssignItem>();
            annotateExpr(assign->rhs);
            annotateExpr(assign->lhs);
            checkLValue(assign->lhs, false);
            assigns_.push_back(assign);
            break;
          }
          case ItemKind::Always: {
            auto *always = item->as<AlwaysItem>();
            annotateStmt(always->body);
            if (always->isComb) {
                comb_.push_back(always);
            } else {
                if (always->sens.empty())
                    fatal("%s: always block has no sensitivity list",
                          item->loc.str().c_str());
                for (const auto &sens : always->sens) {
                    int id = requireSignal(sens.signal);
                    if (info(id).width != 1 || info(id).arraySize != 0)
                        fatal("%s: clock '%s' must be a 1-bit scalar",
                              item->loc.str().c_str(),
                              sens.signal.c_str());
                }
                clocked_.push_back(always);
            }
            break;
          }
          case ItemKind::Instance: {
            auto *inst = item->as<InstanceItem>();
            if (!elab::isPrimitive(inst->moduleName))
                fatal("%s: instance '%s' of '%s' survived elaboration",
                      inst->loc.str().c_str(), inst->instName.c_str(),
                      inst->moduleName.c_str());
            for (const auto &conn : inst->conns)
                if (conn.actual)
                    annotateExpr(conn.actual);
            prims_.push_back(inst);
            break;
          }
        }
    }
}

void
LoweredDesign::collectSignals()
{
    for (const auto &item : mod_->items) {
        if (item->kind != ItemKind::Net)
            continue;
        const auto *net = item->as<NetItem>();
        SignalInfo sig;
        sig.name = net->name;
        sig.isReg = net->net == NetKind::Reg;
        sig.dir = net->dir;
        if (net->range) {
            uint64_t msb = constU64(net->range->msb);
            uint64_t lsb = constU64(net->range->lsb);
            if (lsb != 0)
                fatal("%s: only [N:0] vector ranges are supported "
                      "(signal '%s')", net->loc.str().c_str(),
                      net->name.c_str());
            sig.width = static_cast<uint32_t>(msb) + 1;
        }
        if (net->array) {
            uint64_t msb = constU64(net->array->msb);
            uint64_t lsb = constU64(net->array->lsb);
            if (lsb > msb)
                std::swap(msb, lsb);
            if (lsb != 0)
                fatal("%s: memory bounds must start at 0 (signal '%s')",
                      net->loc.str().c_str(), net->name.c_str());
            sig.arraySize = static_cast<uint32_t>(msb) + 1;
            if (!sig.isReg)
                fatal("%s: memories must be regs ('%s')",
                      net->loc.str().c_str(), net->name.c_str());
        }
        if (byName_.count(sig.name))
            fatal("%s: duplicate declaration of '%s'",
                  net->loc.str().c_str(), sig.name.c_str());
        byName_[sig.name] = static_cast<int>(signals_.size());
        signals_.push_back(std::move(sig));
    }
}

int
LoweredDesign::signalId(const std::string &name) const
{
    auto it = byName_.find(name);
    return it == byName_.end() ? -1 : it->second;
}

int
LoweredDesign::requireSignal(const std::string &name) const
{
    int id = signalId(name);
    if (id < 0)
        fatal("unknown signal '%s'", name.c_str());
    return id;
}

uint32_t
LoweredDesign::annotateExpr(const ExprPtr &expr) const
{
    if (!expr)
        panic("annotateExpr: null expression");
    switch (expr->kind) {
      case ExprKind::Number: {
        const auto *num = expr->as<NumberExpr>();
        expr->width =
            num->sized ? num->value.width()
                       : std::max<uint32_t>(32, num->value.width());
        break;
      }
      case ExprKind::Id: {
        auto *id = expr->as<IdExpr>();
        int sig = signalId(id->name);
        if (sig < 0)
            fatal("%s: unknown signal '%s'", expr->loc.str().c_str(),
                  id->name.c_str());
        if (info(sig).arraySize != 0)
            fatal("%s: memory '%s' referenced without an index",
                  expr->loc.str().c_str(), id->name.c_str());
        id->resolved = sig;
        expr->width = info(sig).width;
        break;
      }
      case ExprKind::Unary: {
        auto *un = expr->as<UnaryExpr>();
        uint32_t arg_width = annotateExpr(un->arg);
        switch (un->op) {
          case UnaryOp::Neg:
          case UnaryOp::BitNot:
            expr->width = arg_width;
            break;
          default:
            expr->width = 1;
            break;
        }
        break;
      }
      case ExprKind::Binary: {
        auto *bin = expr->as<BinaryExpr>();
        uint32_t lhs_width = annotateExpr(bin->lhs);
        uint32_t rhs_width = annotateExpr(bin->rhs);
        switch (bin->op) {
          case BinaryOp::Add:
          case BinaryOp::Sub:
          case BinaryOp::Mul:
          case BinaryOp::Div:
          case BinaryOp::Mod:
          case BinaryOp::BitAnd:
          case BinaryOp::BitOr:
          case BinaryOp::BitXor:
            expr->width = std::max(lhs_width, rhs_width);
            break;
          case BinaryOp::Shl:
          case BinaryOp::Shr:
            expr->width = lhs_width;
            break;
          default:
            expr->width = 1;
            break;
        }
        break;
      }
      case ExprKind::Ternary: {
        auto *tern = expr->as<TernaryExpr>();
        annotateExpr(tern->cond);
        uint32_t then_width = annotateExpr(tern->thenExpr);
        uint32_t else_width = annotateExpr(tern->elseExpr);
        expr->width = std::max(then_width, else_width);
        break;
      }
      case ExprKind::Concat: {
        auto *cat = expr->as<ConcatExpr>();
        uint32_t total = 0;
        for (const auto &part : cat->parts)
            total += annotateExpr(part);
        expr->width = total;
        break;
      }
      case ExprKind::Repeat: {
        auto *rep = expr->as<RepeatExpr>();
        uint64_t count = constU64(rep->count);
        if (count == 0)
            fatal("%s: replication count must be positive",
                  expr->loc.str().c_str());
        annotateExpr(rep->count);
        uint32_t inner = annotateExpr(rep->inner);
        expr->width = inner * static_cast<uint32_t>(count);
        break;
      }
      case ExprKind::Index: {
        auto *idx = expr->as<IndexExpr>();
        int sig = signalId(idx->base);
        if (sig < 0)
            fatal("%s: unknown signal '%s'", expr->loc.str().c_str(),
                  idx->base.c_str());
        idx->resolved = sig;
        annotateExpr(idx->index);
        expr->width = info(sig).arraySize != 0 ? info(sig).width : 1;
        break;
      }
      case ExprKind::Range: {
        auto *range = expr->as<RangeExpr>();
        int sig = signalId(range->base);
        if (sig < 0)
            fatal("%s: unknown signal '%s'", expr->loc.str().c_str(),
                  range->base.c_str());
        if (info(sig).arraySize != 0)
            fatal("%s: part select of memory '%s' is not supported",
                  expr->loc.str().c_str(), range->base.c_str());
        range->resolved = sig;
        uint64_t msb = constU64(range->msb);
        uint64_t lsb = constU64(range->lsb);
        if (msb < lsb)
            fatal("%s: reversed part select on '%s'",
                  expr->loc.str().c_str(), range->base.c_str());
        range->msbConst = static_cast<uint32_t>(msb);
        range->lsbConst = static_cast<uint32_t>(lsb);
        expr->width = range->msbConst - range->lsbConst + 1;
        break;
      }
    }
    return expr->width;
}

void
LoweredDesign::checkLValue(const ExprPtr &lhs, bool in_clocked)
{
    switch (lhs->kind) {
      case ExprKind::Id: {
        const auto *id = lhs->as<IdExpr>();
        const SignalInfo &sig = info(id->resolved);
        if (!in_clocked && sig.isReg)
            fatal("%s: continuous assignment to reg '%s'",
                  lhs->loc.str().c_str(), sig.name.c_str());
        if (in_clocked && !sig.isReg)
            fatal("%s: procedural assignment to wire '%s'",
                  lhs->loc.str().c_str(), sig.name.c_str());
        break;
      }
      case ExprKind::Index:
      case ExprKind::Range:
        break;
      case ExprKind::Concat:
        for (const auto &part : lhs->as<ConcatExpr>()->parts)
            checkLValue(part, in_clocked);
        break;
      default:
        fatal("%s: expression is not assignable",
              lhs->loc.str().c_str());
    }
}

void
LoweredDesign::annotateStmt(const StmtPtr &stmt)
{
    if (!stmt)
        return;
    switch (stmt->kind) {
      case StmtKind::Block:
        for (const auto &sub : stmt->as<BlockStmt>()->stmts)
            annotateStmt(sub);
        break;
      case StmtKind::If: {
        auto *branch = stmt->as<IfStmt>();
        annotateExpr(branch->cond);
        annotateStmt(branch->thenStmt);
        annotateStmt(branch->elseStmt);
        break;
      }
      case StmtKind::Case: {
        auto *sel = stmt->as<CaseStmt>();
        annotateExpr(sel->selector);
        for (const auto &item : sel->items) {
            for (const auto &label : item.labels)
                annotateExpr(label);
            annotateStmt(item.body);
        }
        break;
      }
      case StmtKind::Assign: {
        auto *assign = stmt->as<AssignStmt>();
        annotateExpr(assign->lhs);
        annotateExpr(assign->rhs);
        checkLValue(assign->lhs, true);
        break;
      }
      case StmtKind::Display:
        for (const auto &arg : stmt->as<DisplayStmt>()->args)
            annotateExpr(arg);
        break;
      case StmtKind::Finish:
      case StmtKind::Null:
        break;
    }
}

} // namespace hwdbg::sim
