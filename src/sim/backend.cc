#include "sim/backend.hh"

#include <algorithm>
#include <chrono>

#include "common/logging.hh"
#include "common/testhooks.hh"
#include "obs/metrics.hh"
#include "sim/coverage.hh"
#include "sim/profiler.hh"
#include "sim/simulator.hh"

namespace hwdbg::sim
{

using namespace hdl;

Backend::~Backend() = default;

EvalContext &
Backend::ctx() const
{
    return sim_.ctx_;
}

const LoweredDesign &
Backend::design() const
{
    return sim_.design_;
}

SimCounters *
Backend::prof() const
{
    return sim_.prof_;
}

CoverageCollector *
Backend::cover() const
{
    return sim_.cover_;
}

void
Backend::noteSettle(size_t iters, size_t work) const
{
    sim_.noteSettle(iters, work);
}

bool
Backend::signalBool(int sig)
{
    return !ctx().values[sig].isZero();
}

void
InterpBackend::settleComb()
{
    // Bounded fixpoint: small designs settle in a handful of passes.
    // Store sites flag value changes as a cheap stability fast path,
    // but a pass is only UNstable when its end state differs from its
    // start state: a comb process that writes a default and then
    // overrides it ("next = 0; if (c) next = 1;") toggles values
    // transiently inside every pass, and those transient store events
    // must not count as progress or the loop never terminates.
    using ProfClock = std::chrono::steady_clock;
    EvalContext &ctx_ = ctx();
    SimCounters *prof_ = prof();
    const auto &assigns = design().assigns();
    const auto &combs = design().combProcs();
    size_t work = assigns.size() + combs.size();
    size_t max_iters = work + 4;
    size_t iters_used = 0;
    for (size_t iter = 0; iter < max_iters; ++iter) {
        iters_used = iter + 1;
        std::vector<Bits> before_values = ctx_.values;
        std::vector<std::vector<Bits>> before_arrays = ctx_.arrays;
        ctx_.valuesChanged = false;
        for (size_t i = 0; i < assigns.size(); ++i) {
            const auto *assign = assigns[i];
            ProfClock::time_point t0;
            if (prof_)
                t0 = ProfClock::now();
            uint32_t lw = assign->lhs->width;
            uint32_t cw = std::max(lw, assign->rhs->width);
            Bits value = evalExpr(assign->rhs, ctx_, cw).resized(lw);
            storeLValue(assign->lhs, value, ctx_);
            if (prof_) {
                ++prof_->assignEvals[i];
                prof_->assignNs[i] +=
                    std::chrono::duration<double, std::nano>(
                        ProfClock::now() - t0)
                        .count();
            }
        }
        for (size_t i = 0; i < combs.size(); ++i) {
            ProfClock::time_point t0;
            if (prof_)
                t0 = ProfClock::now();
            execStmt(combs[i]->body, false);
            if (prof_) {
                ++prof_->combEvals[i];
                prof_->combNs[i] +=
                    std::chrono::duration<double, std::nano>(
                        ProfClock::now() - t0)
                        .count();
            }
        }
        if (!ctx_.valuesChanged) {
            noteSettle(iters_used, work);
            return;
        }
        auto same = [](const Bits &a, const Bits &b) {
            return a.width() == b.width() && a.compare(b) == 0;
        };
        bool stable = true;
        for (size_t i = 0; stable && i < ctx_.values.size(); ++i)
            stable = same(before_values[i], ctx_.values[i]);
        for (size_t i = 0; stable && i < ctx_.arrays.size(); ++i) {
            if (before_arrays[i].size() != ctx_.arrays[i].size()) {
                stable = false;
                break;
            }
            for (size_t j = 0; stable && j < ctx_.arrays[i].size(); ++j)
                stable = same(before_arrays[i][j], ctx_.arrays[i][j]);
        }
        if (stable) {
            noteSettle(iters_used, work);
            return;
        }
    }
    fatal("combinational logic failed to settle (combinational loop?)");
}

void
InterpBackend::execClocked(size_t pi)
{
    execStmt(design().clockedProcs()[pi]->body, true);
}

void
InterpBackend::execStmt(const StmtPtr &stmt, bool clocked)
{
    if (!stmt)
        return;
    EvalContext &ctx_ = ctx();
    CoverageCollector *cover_ = cover();
    if (cover_)
        cover_->onStmt(stmt.get());
    switch (stmt->kind) {
      case StmtKind::Block:
        for (const auto &sub : stmt->as<BlockStmt>()->stmts)
            execStmt(sub, clocked);
        break;
      case StmtKind::If: {
        const auto *branch = stmt->as<IfStmt>();
        bool taken = evalBool(branch->cond, ctx_);
        if (cover_)
            cover_->onArm(stmt.get(), taken ? 0 : 1);
        if (taken)
            execStmt(branch->thenStmt, clocked);
        else
            execStmt(branch->elseStmt, clocked);
        break;
      }
      case StmtKind::Case: {
        const auto *sel = stmt->as<CaseStmt>();
        Bits value = evalExpr(sel->selector, ctx_);
        const CaseItem *chosen = nullptr;
        const CaseItem *dflt = nullptr;
        for (const auto &item : sel->items) {
            if (item.labels.empty()) {
                dflt = &item;
                continue;
            }
            for (const auto &label : item.labels) {
                uint32_t cmp_w =
                    std::max(sel->selector->width, label->width);
                if (mutationOn(MUT_SIM_CASE_SEL_WIDTH))
                    cmp_w = sel->selector->width;
                // evalExpr never evaluates below the label's own
                // width; resize forces the comparison width so the
                // seeded truncation bug actually truncates.
                if (evalExpr(label, ctx_, cmp_w).resized(cmp_w) ==
                    value.resized(cmp_w)) {
                    chosen = &item;
                    break;
                }
            }
            if (chosen)
                break;
        }
        if (!chosen)
            chosen = dflt;
        if (cover_) {
            // Arm index is the item's position; the trailing implicit
            // "no match" arm only exists when there is no default.
            uint32_t arm =
                chosen ? static_cast<uint32_t>(chosen -
                                               sel->items.data())
                       : static_cast<uint32_t>(sel->items.size());
            cover_->onArm(stmt.get(), arm);
        }
        if (chosen)
            execStmt(chosen->body, clocked);
        break;
      }
      case StmtKind::Assign: {
        const auto *assign = stmt->as<AssignStmt>();
        uint32_t lw = assign->lhs->width;
        uint32_t cw = std::max(lw, assign->rhs->width);
        Bits value = evalExpr(assign->rhs, ctx_, cw).resized(lw);
        if (clocked && assign->nonblocking) {
            ResolvedLValue resolved = resolveLValue(assign->lhs, ctx_);
            for (const auto &part : resolved.parts)
                nba_.push_back(PendingNba{
                    part.target,
                    value.slice(part.rhsMsb, part.rhsLsb)});
        } else {
            storeLValue(assign->lhs, value, ctx_);
        }
        break;
      }
      case StmtKind::Display: {
        const auto *disp = stmt->as<DisplayStmt>();
        if (!clocked) {
            if (!warnedCombDisplay_) {
                warn("$display in combinational process ignored");
                warnedCombDisplay_ = true;
            }
            break;
        }
        std::vector<Bits> args;
        args.reserve(disp->args.size());
        for (const auto &arg : disp->args)
            args.push_back(evalExpr(arg, ctx_));
        // Formatting is deferred to the next log drain: the hot loop
        // only evaluates the arguments and banks the raw hit.
        ctx_.pendingLog.push_back(EvalContext::PendingDisplay{
            ctx_.cycle, &disp->format, std::move(args)});
        HWDBG_STAT_INC("sim.display_records", 1);
        break;
      }
      case StmtKind::Finish:
        ctx_.finished = true;
        break;
      case StmtKind::Null:
        break;
    }
}

void
InterpBackend::commitNba()
{
    for (const auto &write : nba_)
        applyStore(write.target, write.value, ctx());
    nba_.clear();
}

void
InterpBackend::exportNba(std::vector<PendingNba> &out) const
{
    out = nba_;
}

void
InterpBackend::importNba(const std::vector<PendingNba> &in)
{
    nba_ = in;
}

} // namespace hwdbg::sim
