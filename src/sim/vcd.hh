/**
 * @file
 * Minimal VCD (value change dump) writer.
 *
 * Captures scalar signals of a simulator each time sample() is called and
 * writes a standard VCD file that waveform viewers can open. The paper
 * contrasts its tools with "inspecting a massive waveform"; the testbed
 * uses this writer to produce those waveforms for comparison.
 */

#ifndef HWDBG_SIM_VCD_HH
#define HWDBG_SIM_VCD_HH

#include <string>
#include <vector>

#include "sim/simulator.hh"

namespace hwdbg::sim
{

class VcdWriter
{
  public:
    /** Track all scalar signals of @p sim. */
    explicit VcdWriter(Simulator &sim);

    /** Record current values at time @p time (monotonic). */
    void sample(uint64_t time);

    /** Render the accumulated dump as VCD text. */
    std::string render() const;

    /** Write the dump to @p path. */
    void writeFile(const std::string &path) const;

  private:
    struct Change
    {
        uint64_t time;
        int sig;
        Bits value;
    };

    Simulator &sim_;
    std::vector<int> tracked_;
    std::vector<Bits> last_;
    std::vector<Change> changes_;
    bool started_ = false;
};

} // namespace hwdbg::sim

#endif // HWDBG_SIM_VCD_HH
