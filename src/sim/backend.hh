/**
 * @file
 * The execution-backend seam of the cycle simulator.
 *
 * Simulator orchestrates an eval() step — stimulus tape, clock-edge
 * detection, process triggering, primitive updates, coverage sampling —
 * but delegates the actual execution of design logic to a Backend:
 * combinational settling, clocked process bodies, and the nonblocking
 * commit queue. The interpreter backend (the reference engine, and the
 * default) walks the AST exactly as the simulator always has; the
 * compiled bytecode backend (src/compile) runs the same logic over a
 * dense word slab.
 *
 * A backend may keep signal/array state in its own representation. The
 * flush()/flushSignal()/load() hooks reconcile that shadow state with
 * the shared EvalContext at the points where outside code reads or
 * writes it: peeks, snapshots, primitive port evaluation, coverage
 * sampling, and Simulator::context() itself (so tools holding the
 * context — the debugger, VCD writer, breakpoints — always observe
 * current values without knowing which backend runs underneath). For
 * the interpreter these hooks are no-ops: the EvalContext *is* its
 * state.
 */

#ifndef HWDBG_SIM_BACKEND_HH
#define HWDBG_SIM_BACKEND_HH

#include <functional>
#include <memory>
#include <vector>

#include "sim/eval.hh"

namespace hwdbg::sim
{

class Simulator;
struct SimCounters;
class CoverageCollector;

/** One pending nonblocking assignment (resolve now, commit later). */
struct PendingNba
{
    StoreTarget target;
    Bits value;
};

/**
 * Executes design logic for one Simulator. Constructed by a
 * BackendFactory after the simulator exists; the base class exposes the
 * simulator internals every backend needs (context, design tables,
 * profiler, coverage) so subclasses in other layers need no friend
 * access of their own.
 */
class Backend
{
  public:
    explicit Backend(Simulator &sim) : sim_(sim) {}
    virtual ~Backend();

    Backend(const Backend &) = delete;
    Backend &operator=(const Backend &) = delete;

    /** Stable identifier ("interp", "bytecode") for tools/reports. */
    virtual const char *name() const = 0;

    /** Run continuous assigns + combinational processes to a fixpoint
     *  (bounded; raises HdlError on a combinational loop). */
    virtual void settleComb() = 0;

    /** Execute clocked process @p pi (design().clockedProcs() index)
     *  with pre-edge values; nonblocking writes queue for commitNba. */
    virtual void execClocked(size_t pi) = 0;

    /** Apply queued nonblocking assignments in push order. */
    virtual void commitNba() = 0;

    /** ctx().values[sig] was just overwritten by a poke; mirror it. */
    virtual void onPoke(int sig) { (void)sig; }

    /** Current level of signal @p sig (clock-edge detection read). */
    virtual bool signalBool(int sig);

    /** Publish all backend-held state into ctx().values/arrays. */
    virtual void flush() {}

    /** Publish one signal (scalar and, for memories, elements). */
    virtual void flushSignal(int sig) { (void)sig; }

    /** Re-read ctx().values/arrays after outside code wrote them
     *  (snapshot restore, primitive clock edges). */
    virtual void load() {}

    /** Export the pending nonblocking queue (snapshot support). */
    virtual void exportNba(std::vector<PendingNba> &out) const = 0;

    /** Replace the pending nonblocking queue (snapshot restore). */
    virtual void importNba(const std::vector<PendingNba> &in) = 0;

  protected:
    // Simulator internals shared with every backend implementation.
    EvalContext &ctx() const;
    const LoweredDesign &design() const;
    SimCounters *prof() const;
    CoverageCollector *cover() const;
    void noteSettle(size_t iters, size_t work) const;

    Simulator &sim_;
};

/** Builds a backend over a constructed simulator (null = interpreter). */
using BackendFactory =
    std::function<std::unique_ptr<Backend>(Simulator &)>;

/**
 * The reference engine: direct AST interpretation over the EvalContext,
 * bit-identical to the pre-seam Simulator (the code moved here
 * verbatim). State lives in the context itself, so every reconcile
 * hook is a no-op.
 */
class InterpBackend final : public Backend
{
  public:
    explicit InterpBackend(Simulator &sim) : Backend(sim) {}

    const char *name() const override { return "interp"; }
    void settleComb() override;
    void execClocked(size_t pi) override;
    void commitNba() override;
    void exportNba(std::vector<PendingNba> &out) const override;
    void importNba(const std::vector<PendingNba> &in) override;

  private:
    void execStmt(const hdl::StmtPtr &stmt, bool clocked);

    std::vector<PendingNba> nba_;
    bool warnedCombDisplay_ = false;
};

} // namespace hwdbg::sim

#endif // HWDBG_SIM_BACKEND_HH
