/**
 * @file
 * Coverage instrumentation over the cycle simulator.
 *
 * Coverage is split into a static side and a dynamic side:
 *
 *  - CoverageItems enumerates everything coverable in an elaborated
 *    design: every always-block statement (statement coverage), every
 *    if/case arm (branch coverage), every signal bit (toggle
 *    coverage), and — when FSM specs are supplied — every declared FSM
 *    state and transition. Enumeration is a deterministic traversal of
 *    the module, so ids are stable across runs and across processes:
 *    the same elaborated design always yields the same tables. Ids
 *    are written into Stmt::coverId so the simulator hot path marks
 *    statements with a single array index, no lookup.
 *
 *  - CoverageCollector owns flat bitmaps over those ids and the mark
 *    methods the simulator calls. The simulator tests one pointer per
 *    potential mark (the same pattern as profiling and stimulus
 *    recording), so detached simulation pays one predictable branch
 *    per site — bench/cover_overhead keeps that honest.
 *
 * The sim layer cannot depend on analysis, so FSM enumeration arrives
 * as plain data (FsmCoverSpec) extracted by the caller, typically from
 * analysis::detectFsms().
 */

#ifndef HWDBG_SIM_COVERAGE_HH
#define HWDBG_SIM_COVERAGE_HH

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "sim/design.hh"

namespace hwdbg::sim
{

struct EvalContext;

/** One FSM to cover, as plain data (no analysis dependency). */
struct FsmCoverSpec
{
    /** Elaborated state register name. */
    std::string stateVar;
    /** Declared state encodings, in detection order. */
    std::vector<uint64_t> states;

    struct Transition
    {
        /** False = wildcard source (matches any current state). */
        bool hasFrom = false;
        uint64_t from = 0;
        uint64_t to = 0;
    };
    std::vector<Transition> transitions;

    /** Signal id of stateVar; resolved by buildCoverageItems(). */
    int sig = -1;
};

/**
 * Static coverage tables for one elaborated design. Must outlive any
 * CoverageCollector built over it; building the tables stamps
 * Stmt::coverId into the design's AST.
 */
struct CoverageItems
{
    struct StmtItem
    {
        const hdl::Stmt *stmt = nullptr;
        hdl::StmtKind kind = hdl::StmtKind::Null;
        hdl::SourceLoc loc;
        /** Instance scope ("(top)" for top-level statements). */
        std::string scope;
        /** First arm id for If/Case statements; -1 otherwise. */
        int32_t armBase = -1;
        /** Number of arms (If: 2; Case: items plus implicit no-match). */
        uint32_t armCount = 0;
    };

    struct ArmItem
    {
        uint32_t stmtId = 0;
        /** "then", "else", case labels, "default", or "no match". */
        std::string label;
    };

    struct SignalItem
    {
        int sig = -1;
        std::string name;
        uint32_t width = 1;
        std::string scope;
        /** Offset of this signal's bit 0 in the rise/fall bitmaps. */
        uint32_t bitOffset = 0;
    };

    std::vector<StmtItem> statements;
    std::vector<ArmItem> arms;
    std::vector<SignalItem> signals;
    /** Signal id -> index into signals (every signal is tracked). */
    std::vector<int32_t> sigSlot;
    std::vector<FsmCoverSpec> fsms;
    /** Total tracked bits (rise/fall bitmap length). */
    uint32_t toggleBits = 0;

    /**
     * A fingerprint of the enumeration (counts + FNV over names and
     * locs). Coverage files record it; merging across differing
     * designs is refused.
     */
    uint64_t fingerprint() const;
};

/**
 * Enumerate coverable items over @p design and stamp Stmt::coverId.
 * @p fsms entries with unknown state registers are dropped.
 */
CoverageItems buildCoverageItems(const LoweredDesign &design,
                                 std::vector<FsmCoverSpec> fsms = {});

/** Instance scope of a flattened name ("(top)" when not inside one). */
std::string coverScopeOf(const std::string &name);

/** Aggregate counts over one collector or snapshot. */
struct CoverageTotals
{
    uint64_t stmtTotal = 0, stmtHit = 0;
    uint64_t armTotal = 0, armTaken = 0;
    /** Toggle counts are per direction: 2 goals per tracked bit. */
    uint64_t toggleTotal = 0, toggleHit = 0;
    uint64_t fsmStateTotal = 0, fsmStateHit = 0;
    uint64_t fsmTransTotal = 0, fsmTransHit = 0;

    uint64_t covered() const
    {
        return stmtHit + armTaken + toggleHit + fsmStateHit + fsmTransHit;
    }
    uint64_t total() const
    {
        return stmtTotal + armTotal + toggleTotal + fsmStateTotal +
               fsmTransTotal;
    }
};

/**
 * Dynamic coverage bitmaps plus the mark methods the simulator hot
 * path calls. Marks are idempotent (bit set), so replaying stimulus
 * after a snapshot restore cannot distort coverage.
 */
class CoverageCollector
{
  public:
    explicit CoverageCollector(const CoverageItems &items);

    const CoverageItems &items() const { return *items_; }

    /** Statement executed. */
    void
    onStmt(const hdl::Stmt *stmt)
    {
        ++events_;
        int32_t id = stmt->coverId;
        if (id >= 0 && static_cast<uint32_t>(id) < stmtCount_)
        {
            stmtWords_[id >> 6] |= uint64_t(1) << (id & 63);
            if (!execCounts_.empty())
                ++execCounts_[id];
        }
    }

    /** Branch arm @p arm of statement @p stmt chosen. */
    void
    onArm(const hdl::Stmt *stmt, uint32_t arm)
    {
        ++events_;
        int32_t id = stmt->coverId;
        if (id < 0 || static_cast<uint32_t>(id) >= stmtCount_)
            return;
        const auto &item = items_->statements[id];
        if (item.armBase < 0 || arm >= item.armCount)
            return;
        uint32_t a = static_cast<uint32_t>(item.armBase) + arm;
        armWords_[a >> 6] |= uint64_t(1) << (a & 63);
    }

    /** Value-changing store of @p next over @p old on signal @p sig. */
    void onStore(int sig, const Bits &oldv, const Bits &newv);

    /** Sample FSM state registers (call after each eval settles). */
    void sample(const EvalContext &ctx);

    /**
     * Re-seed FSM last-state tracking from current values; call after
     * a snapshot restore or attach. Credits the state currently
     * occupied (idempotent) but records no transition — time travel
     * must not fabricate arcs the design never took.
     */
    void resync(const EvalContext &ctx);

    /** Mark hook executions so far (the bench overhead currency). */
    uint64_t events() const { return events_; }

    /**
     * Start per-statement execution counting (the signal virtual line
     * breakpoints poll). Idempotent; until enabled the hot path pays
     * one predictable branch per onStmt. Counts are monotonic across
     * snapshot restores — consumers compare deltas, not absolutes.
     */
    void enableStmtCounts()
    {
        if (execCounts_.empty())
            execCounts_.assign(stmtCount_, 0);
    }
    bool stmtCountsEnabled() const { return !execCounts_.empty(); }
    uint64_t stmtExecCount(uint32_t id) const
    {
        return id < execCounts_.size() ? execCounts_[id] : 0;
    }

    bool stmtHit(uint32_t id) const
    {
        return (stmtWords_[id >> 6] >> (id & 63)) & 1;
    }
    bool armTaken(uint32_t id) const
    {
        return (armWords_[id >> 6] >> (id & 63)) & 1;
    }
    bool bitRose(uint32_t bit) const
    {
        return (riseWords_[bit >> 6] >> (bit & 63)) & 1;
    }
    bool bitFell(uint32_t bit) const
    {
        return (fallWords_[bit >> 6] >> (bit & 63)) & 1;
    }

    const std::vector<uint64_t> &stmtWords() const { return stmtWords_; }
    const std::vector<uint64_t> &armWords() const { return armWords_; }
    const std::vector<uint64_t> &riseWords() const { return riseWords_; }
    const std::vector<uint64_t> &fallWords() const { return fallWords_; }

    /** Per-FSM dynamic coverage. */
    struct FsmState
    {
        std::vector<bool> stateSeen;
        std::vector<bool> transSeen;
        /** Encodings observed that no declared state matches. */
        std::set<uint64_t> unexpectedStates;
        /** (from, to) pairs observed that no declared arc matches. */
        std::set<std::pair<uint64_t, uint64_t>> unexpectedTransitions;
    };
    const FsmState &fsmState(size_t idx) const
    {
        return fsms_[idx].state;
    }

    CoverageTotals totals() const;

  private:
    const CoverageItems *items_;
    uint32_t stmtCount_ = 0;
    std::vector<uint64_t> stmtWords_, armWords_, riseWords_, fallWords_;
    /** Per-statement execution counters; empty until enableStmtCounts. */
    std::vector<uint64_t> execCounts_;

    struct FsmRuntime
    {
        int sig = -1;
        bool hasLast = false;
        uint64_t last = 0;
        /** Encoding -> state index. */
        std::map<uint64_t, uint32_t> stateIdx;
        /** (from, to) -> transition index (exact-source arcs). */
        std::map<std::pair<uint64_t, uint64_t>, uint32_t> exactTrans;
        /** to -> transition index (wildcard-source arcs). */
        std::map<uint64_t, uint32_t> wildTrans;
        FsmState state;
    };
    std::vector<FsmRuntime> fsms_;
    uint64_t events_ = 0;

    void observeState(FsmRuntime &fsm, uint64_t cur);
};

} // namespace hwdbg::sim

#endif // HWDBG_SIM_COVERAGE_HH
