/**
 * @file
 * Behavioral models of the blackbox IPs used by the testbed designs.
 *
 * The paper's designs use vendor IPs that its tools treat as blackboxes
 * with developer-provided dependency models (§5): altsyncram (block RAM),
 * scfifo (single-clock FIFO), dcfifo (dual-clock FIFO). The paper's
 * SignalCat additionally generates instances of a recording IP (Intel
 * SignalTap / Xilinx ILA); hwdbg models that as the signal_recorder
 * primitive. The simulator evaluates these models; the synthesis
 * estimator costs them analytically; the analysis framework uses their
 * port dependency models (see analysis/relations).
 */

#ifndef HWDBG_SIM_PRIMITIVES_HH
#define HWDBG_SIM_PRIMITIVES_HH

#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/eval.hh"

namespace hwdbg::sim
{

/** Base class for simulated blackbox IPs. */
class Primitive
{
  public:
    Primitive(const hdl::InstanceItem *inst, const LoweredDesign &design);
    virtual ~Primitive() = default;

    const std::string &name() const { return inst_->instName; }
    const std::string &type() const { return inst_->moduleName; }

    /** Ports that behave as clocks (edge-sampled by the simulator). */
    virtual std::vector<std::string> clockPorts() const = 0;

    /** Called once before simulation; drives initial output values. */
    virtual void reset(EvalContext &ctx) = 0;

    /**
     * Called on the rising edge of @p clock_port. Inputs must be sampled
     * before any state update; outputs are driven post-edge.
     */
    virtual void clockEdge(const std::string &clock_port,
                           EvalContext &ctx) = 0;

    /** Resolved parameter value (fatal when absent and no default). */
    uint64_t param(const std::string &name, int64_t def = -1) const;

    /**
     * Append the dynamic state (queues, memories, capture buffers) to
     * @p out as an opaque blob; the base class has none. Snapshot
     * support: Simulator::saveState() collects one blob per instance.
     */
    virtual void saveState(std::vector<uint8_t> &out) const;

    /**
     * Restore state written by saveState(); @p cursor advances past the
     * consumed bytes (fatal on a truncated blob).
     */
    virtual void restoreState(const uint8_t *&cursor, const uint8_t *end);

  protected:
    bool hasPort(const std::string &formal) const;
    Bits readPort(const std::string &formal, EvalContext &ctx,
                  uint32_t width) const;
    void writePort(const std::string &formal, const Bits &value,
                   EvalContext &ctx) const;

    const hdl::InstanceItem *inst_;
    std::map<std::string, uint64_t> params_;
    std::map<std::string, hdl::ExprPtr> conns_;
};

/** Intel-style single-clock FIFO (normal read mode: q valid after rdreq).
 *
 * Parameters: WIDTH, DEPTH. Ports: clock, sclr, data, wrreq, rdreq, q,
 * empty, full, usedw.
 */
class Scfifo : public Primitive
{
  public:
    Scfifo(const hdl::InstanceItem *inst, const LoweredDesign &design);

    std::vector<std::string> clockPorts() const override;
    void reset(EvalContext &ctx) override;
    void clockEdge(const std::string &clock_port, EvalContext &ctx)
        override;

    size_t occupancy() const { return queue_.size(); }

    void saveState(std::vector<uint8_t> &out) const override;
    void restoreState(const uint8_t *&cursor, const uint8_t *end) override;

  private:
    void driveStatus(EvalContext &ctx);

    uint32_t width_;
    uint32_t depth_;
    std::deque<Bits> queue_;
    Bits qReg_;
};

/** Dual-clock FIFO. Parameters: WIDTH, DEPTH. Ports: wrclk, rdclk, data,
 *  wrreq, rdreq, q, wrfull, rdempty, wrusedw.
 */
class Dcfifo : public Primitive
{
  public:
    Dcfifo(const hdl::InstanceItem *inst, const LoweredDesign &design);

    std::vector<std::string> clockPorts() const override;
    void reset(EvalContext &ctx) override;
    void clockEdge(const std::string &clock_port, EvalContext &ctx)
        override;

    void saveState(std::vector<uint8_t> &out) const override;
    void restoreState(const uint8_t *&cursor, const uint8_t *end) override;

  private:
    uint32_t width_;
    uint32_t depth_;
    std::deque<Bits> queue_;
    Bits qReg_;
};

/** Simple-dual-port block RAM with 1-cycle read latency.
 *
 * Parameters: WIDTH, NUMWORDS. Ports: clock0, wren_a, address_a, data_a,
 * address_b, q_b.
 */
class Altsyncram : public Primitive
{
  public:
    Altsyncram(const hdl::InstanceItem *inst, const LoweredDesign &design);

    std::vector<std::string> clockPorts() const override;
    void reset(EvalContext &ctx) override;
    void clockEdge(const std::string &clock_port, EvalContext &ctx)
        override;

    void saveState(std::vector<uint8_t> &out) const override;
    void restoreState(const uint8_t *&cursor, const uint8_t *end) override;

  private:
    uint32_t width_;
    uint32_t numWords_;
    std::vector<Bits> mem_;
    Bits qReg_;
};

/**
 * Data-recording IP (models Intel SignalTap / Xilinx ILA as used by
 * SignalCat). Captures {cycle, data} whenever valid && arm.
 *
 * Parameters:
 *  - WIDTH, DEPTH: entry width and buffer depth.
 *  - MODE: 0 = capture the first DEPTH entries then stop (post-trigger
 *    window); 1 = ring buffer holding the most recent DEPTH entries
 *    (pre-trigger window, §4.1's "capture a fixed interval before the
 *    user-provided event").
 *
 * Ports: clk, arm (start event, level), valid, data, stop (optional:
 * freezes the buffer permanently once asserted - the stop event).
 */
class SignalRecorder : public Primitive
{
  public:
    struct Entry
    {
        uint64_t cycle;
        Bits data;
    };

    SignalRecorder(const hdl::InstanceItem *inst,
                   const LoweredDesign &design);

    std::vector<std::string> clockPorts() const override;
    void reset(EvalContext &ctx) override;
    void clockEdge(const std::string &clock_port, EvalContext &ctx)
        override;

    /** Captured entries in chronological order (ring mode unrolled). */
    std::vector<Entry> entries() const;
    bool overflowed() const { return overflowed_; }
    bool stopped() const { return stopped_; }
    uint32_t dataWidth() const { return width_; }
    bool ringMode() const { return ring_; }

    void saveState(std::vector<uint8_t> &out) const override;
    void restoreState(const uint8_t *&cursor, const uint8_t *end) override;

  private:
    uint32_t width_;
    uint32_t depth_;
    bool ring_;
    std::vector<Entry> buffer_;
    size_t next_ = 0;
    bool wrappedAround_ = false;
    bool overflowed_ = false;
    bool stopped_ = false;
};

/** Instantiate the model for a primitive instance. */
std::unique_ptr<Primitive> makePrimitive(const hdl::InstanceItem *inst,
                                         const LoweredDesign &design);

} // namespace hwdbg::sim

#endif // HWDBG_SIM_PRIMITIVES_HH
