/**
 * @file
 * Expression evaluation and lvalue stores over simulator state.
 *
 * Widths follow the Verilog context-determined rules: the evaluation
 * context width (the assignment target / enclosing operator width) is
 * pushed down through arithmetic, bitwise, shift-left, and conditional
 * operands, while comparisons, concatenations, selects and reductions are
 * self-determined boundaries.
 */

#ifndef HWDBG_SIM_EVAL_HH
#define HWDBG_SIM_EVAL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/design.hh"

namespace hwdbg::sim
{

class CoverageCollector;

/** Mutable simulator state shared by processes and primitives. */
struct EvalContext
{
    explicit EvalContext(const LoweredDesign &design);

    const LoweredDesign &design;

    /** Scalar values by signal id (memories hold a dummy entry). */
    std::vector<Bits> values;
    /** Memory contents by signal id (empty vector for scalars). */
    std::vector<std::vector<Bits>> arrays;

    /** Number of primary clock cycles elapsed (posedges of "clk"). */
    uint64_t cycle = 0;

    /** Monotonic eval() sequence number (1-based; 0 = before the first
     *  eval). Snapshots carry it, so after a restore a deterministic
     *  replay walks through the same sequence numbers — observers keyed
     *  on it (the trace recorder) can tell replayed evals from new
     *  frontier evals. */
    uint64_t evalSeq = 0;

    /** Set by applyStore() whenever a store changes a value; the
     *  simulator's combinational settle loop clears and polls it. */
    bool valuesChanged = false;

    /** When non-null (profiling), applyStore() bumps the changed
     *  signal's slot on every value-changing store (toggle counting).
     *  Must be sized to numSignals(). */
    std::vector<uint64_t> *toggles = nullptr;

    /** When non-null (coverage), applyStore() reports every
     *  value-changing store for toggle coverage. One branch per
     *  changing store when detached. */
    CoverageCollector *cover = nullptr;

    /** $finish seen. */
    bool finished = false;

    /** Captured $display output. */
    struct LogLine
    {
        uint64_t cycle;
        std::string text;
    };
    std::vector<LogLine> log;

    /** A $display hit whose formatting has been deferred out of the
     *  hot loop: the format string lives in the AST (owned by the
     *  simulator's module, so the pointer outlives the context) and
     *  the arguments are already evaluated. drainLog() renders these
     *  into `log` in execution order. */
    struct PendingDisplay
    {
        uint64_t cycle;
        const std::string *format;
        std::vector<Bits> args;
    };
    std::vector<PendingDisplay> pendingLog;

    /** Render all pending $display entries into `log` (idempotent). */
    void drainLog();

    /** Total log lines, formatted plus pending (no formatting cost). */
    size_t logSize() const { return log.size() + pendingLog.size(); }
};

/**
 * Evaluate @p expr. @p ctx_width is the context width (0 = use the
 * expression's self-determined width). The result has width
 * max(ctx_width, self width) for operators and is resized for leaves.
 */
Bits evalExpr(const hdl::ExprPtr &expr, EvalContext &ctx,
              uint32_t ctx_width = 0);

/** Convenience: evaluate to bool (nonzero). */
bool evalBool(const hdl::ExprPtr &expr, EvalContext &ctx);

/**
 * A store target resolved against current state (index expressions are
 * evaluated at resolution time, which gives nonblocking assignments their
 * sample-then-commit semantics).
 */
struct StoreTarget
{
    int sig = -1;
    /** Memory element index; -1 for scalars. */
    int64_t element = -1;
    /** True when the dynamic element index fell outside the memory and
     *  (by hardware overflow semantics) the write must be dropped. */
    bool dropped = false;
    uint32_t msb = 0;
    uint32_t lsb = 0;
    /** True when the full signal/element is written. */
    bool whole = true;
};

/**
 * Resolve the targets of an lvalue. Concat lvalues produce several
 * targets ordered MSB-first together with their bit offsets into the RHS.
 */
struct ResolvedLValue
{
    struct Part
    {
        StoreTarget target;
        uint32_t rhsMsb = 0; ///< slice of the RHS feeding this part
        uint32_t rhsLsb = 0;
    };
    std::vector<Part> parts;
    uint32_t totalWidth = 0;
};

ResolvedLValue resolveLValue(const hdl::ExprPtr &lhs, EvalContext &ctx);

/** Apply @p value to a resolved target. */
void applyStore(const StoreTarget &target, const Bits &value,
                EvalContext &ctx);

/** Blocking store: resolve and apply immediately. */
void storeLValue(const hdl::ExprPtr &lhs, const Bits &value,
                 EvalContext &ctx);

/** Render a $display format string against evaluated arguments. */
std::string formatDisplay(const std::string &format,
                          const std::vector<Bits> &args);

} // namespace hwdbg::sim

#endif // HWDBG_SIM_EVAL_HH
