/**
 * @file
 * Simulator profiler: attribute simulation cost to design constructs.
 *
 * Two pieces:
 *
 *  - SimCounters: a per-construct counter block the Simulator fills in
 *    while it runs (Simulator::enableProfiling()). Eval counts and
 *    toggle counts are deterministic functions of the stimulus; wall
 *    time per construct is sampled with steady_clock around each
 *    process/assign evaluation (only while profiling — the unprofiled
 *    simulator takes a single branch per construct).
 *
 *  - profileDesign(): the `hwdbg profile` engine. Drives an elaborated
 *    design with deterministic pseudorandom stimulus (clk toggled,
 *    rst held for two cycles, every other input redrawn each cycle
 *    from a seed), then ranks processes/always-blocks/assigns by wall
 *    time or eval count and the design's signals by toggle count —
 *    turning "the simulator is slow" into a list of hot constructs
 *    with source locations.
 */

#ifndef HWDBG_SIM_PROFILER_HH
#define HWDBG_SIM_PROFILER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "hdl/ast.hh"
#include "sim/backend.hh"

namespace hwdbg::sim
{

/** Raw per-construct tallies, indexed like the LoweredDesign tables. */
struct SimCounters
{
    std::vector<uint64_t> assignEvals;
    std::vector<uint64_t> combEvals;
    std::vector<uint64_t> clockedEvals;
    std::vector<double> assignNs;
    std::vector<double> combNs;
    std::vector<double> clockedNs;
    /** Value-changing stores per signal id. */
    std::vector<uint64_t> toggles;
    /** settleHist[i] = settle calls that took exactly i iterations
     *  (capped at the vector's last slot). */
    std::vector<uint64_t> settleHist;
    uint64_t settleCalls = 0;
    uint32_t maxSettleDepth = 0;
};

struct ProfileOptions
{
    uint32_t cycles = 2000;
    uint64_t seed = 1;
    enum class Rank { Time, Evals };
    /** Ranking key; Evals is fully deterministic (golden tests). */
    Rank rank = Rank::Time;
    /** Max process rows in the report; 0 = all. */
    uint32_t limit = 20;
    /** Max signal rows in the report; 0 = all. */
    uint32_t signalLimit = 10;
    /** Execution backend (--backend); empty runs the interpreter. The
     *  per-construct counters are backend-independent, so eval/toggle
     *  ranks stay comparable across backends. */
    BackendFactory backend;
};

struct ProfileRow
{
    std::string kind;  ///< "seq", "comb", or "assign"
    std::string label; ///< e.g. "always @(posedge clk) -> state, out"
    std::string loc;   ///< "file:line:col" ("" when unknown)
    uint64_t evals = 0;
    double ms = 0;
    /** Share of the total attributed time, 0..100. */
    double pctTime = 0;
};

struct SignalToggles
{
    std::string name;
    uint64_t toggles = 0;
};

struct ProfileReport
{
    std::string top;
    uint64_t seed = 0;
    uint32_t cyclesRequested = 0;
    uint64_t cyclesRun = 0;
    bool finished = false;
    double wallMs = 0;
    uint64_t settleCalls = 0;
    uint32_t maxSettleDepth = 0;
    /** settle calls by iteration count (index = iterations). */
    std::vector<uint64_t> settleHist;
    /** Every construct, ranked per ProfileOptions::rank. */
    std::vector<ProfileRow> rows;
    /** Signals ranked by toggle count (zero-toggle signals dropped). */
    std::vector<SignalToggles> signals;
};

/** Run the profiling stimulus over @p elaborated and build the report. */
ProfileReport profileDesign(hdl::ModulePtr elaborated,
                            const ProfileOptions &opts);

std::string renderProfileText(const ProfileReport &report,
                              const ProfileOptions &opts);
std::string renderProfileJson(const ProfileReport &report,
                              const ProfileOptions &opts);

} // namespace hwdbg::sim

#endif // HWDBG_SIM_PROFILER_HH
