#include "sim/eval.hh"

#include <algorithm>
#include <cctype>

#include "common/logging.hh"
#include "common/testhooks.hh"
#include "sim/coverage.hh"

namespace hwdbg::sim
{

using namespace hdl;

EvalContext::EvalContext(const LoweredDesign &design_) : design(design_)
{
    values.reserve(design.numSignals());
    arrays.resize(design.numSignals());
    for (size_t i = 0; i < design.numSignals(); ++i) {
        const SignalInfo &sig = design.info(static_cast<int>(i));
        values.emplace_back(sig.width, 0);
        if (sig.arraySize != 0)
            arrays[i].assign(sig.arraySize, Bits(sig.width, 0));
    }
}

void
EvalContext::drainLog()
{
    if (pendingLog.empty())
        return;
    log.reserve(log.size() + pendingLog.size());
    for (const auto &entry : pendingLog)
        log.push_back(
            LogLine{entry.cycle, formatDisplay(*entry.format, entry.args)});
    pendingLog.clear();
}

namespace
{

/**
 * Hardware-overflow address mapping: indices are truncated to the
 * physical address width. The result is the effective element, or -1 if
 * the access must be dropped (effective index beyond a non-power-of-two
 * memory).
 */
int64_t
effectiveIndex(uint64_t index, uint32_t size)
{
    uint32_t addr_bits = 0;
    while ((uint64_t(1) << addr_bits) < size)
        ++addr_bits;
    uint64_t effective =
        addr_bits >= 64 ? index : index & ((uint64_t(1) << addr_bits) - 1);
    if (effective >= size)
        return -1;
    return static_cast<int64_t>(effective);
}

} // namespace

Bits
evalExpr(const ExprPtr &expr, EvalContext &ctx, uint32_t ctx_width)
{
    uint32_t self = expr->width;
    if (self == 0)
        panic("evalExpr: expression at %s was not annotated",
              expr->loc.str().c_str());
    uint32_t w = std::max(ctx_width, self);

    switch (expr->kind) {
      case ExprKind::Number:
        return expr->as<NumberExpr>()->value.resized(w);
      case ExprKind::Id:
        return ctx.values[expr->as<IdExpr>()->resolved].resized(w);
      case ExprKind::Unary: {
        const auto *un = expr->as<UnaryExpr>();
        switch (un->op) {
          case UnaryOp::Neg:
            return evalExpr(un->arg, ctx, w).negate();
          case UnaryOp::BitNot:
            return evalExpr(un->arg, ctx, w).bitNot();
          case UnaryOp::LogNot:
            return Bits(w, evalExpr(un->arg, ctx).isZero() ? 1 : 0);
          case UnaryOp::RedAnd:
            return Bits(w, evalExpr(un->arg, ctx).redAnd() ? 1 : 0);
          case UnaryOp::RedOr:
            return Bits(w, evalExpr(un->arg, ctx).redOr() ? 1 : 0);
          case UnaryOp::RedXor:
            return Bits(w, evalExpr(un->arg, ctx).redXor() ? 1 : 0);
        }
        break;
      }
      case ExprKind::Binary: {
        const auto *bin = expr->as<BinaryExpr>();
        switch (bin->op) {
          case BinaryOp::Add:
            if (mutationOn(MUT_SIM_ADD_AS_SUB))
                return evalExpr(bin->lhs, ctx, w)
                    .sub(evalExpr(bin->rhs, ctx, w))
                    .resized(w);
            return evalExpr(bin->lhs, ctx, w)
                .add(evalExpr(bin->rhs, ctx, w))
                .resized(w);
          case BinaryOp::Sub:
            return evalExpr(bin->lhs, ctx, w)
                .sub(evalExpr(bin->rhs, ctx, w))
                .resized(w);
          case BinaryOp::Mul:
            return evalExpr(bin->lhs, ctx, w)
                .mul(evalExpr(bin->rhs, ctx, w))
                .resized(w);
          case BinaryOp::Div:
            return evalExpr(bin->lhs, ctx, w)
                .divu(evalExpr(bin->rhs, ctx, w))
                .resized(w);
          case BinaryOp::Mod:
            return evalExpr(bin->lhs, ctx, w)
                .modu(evalExpr(bin->rhs, ctx, w))
                .resized(w);
          case BinaryOp::BitAnd:
            return evalExpr(bin->lhs, ctx, w)
                .bitAnd(evalExpr(bin->rhs, ctx, w));
          case BinaryOp::BitOr:
            return evalExpr(bin->lhs, ctx, w)
                .bitOr(evalExpr(bin->rhs, ctx, w));
          case BinaryOp::BitXor:
            if (mutationOn(MUT_SIM_XOR_AS_OR))
                return evalExpr(bin->lhs, ctx, w)
                    .bitOr(evalExpr(bin->rhs, ctx, w));
            return evalExpr(bin->lhs, ctx, w)
                .bitXor(evalExpr(bin->rhs, ctx, w));
          case BinaryOp::Shl:
            return evalExpr(bin->lhs, ctx, w)
                .shl(evalExpr(bin->rhs, ctx).toU64());
          case BinaryOp::Shr:
            return evalExpr(bin->lhs, ctx, w)
                .shr(evalExpr(bin->rhs, ctx).toU64() +
                     (mutationOn(MUT_SIM_SHR_OFF_BY_ONE) ? 1 : 0));
          case BinaryOp::LogAnd:
            return Bits(w, (!evalExpr(bin->lhs, ctx).isZero() &&
                            !evalExpr(bin->rhs, ctx).isZero())
                               ? 1 : 0);
          case BinaryOp::LogOr:
            return Bits(w, (!evalExpr(bin->lhs, ctx).isZero() ||
                            !evalExpr(bin->rhs, ctx).isZero())
                               ? 1 : 0);
          default: {
            // Comparisons: operands at the larger self-determined width.
            uint32_t cmp_w =
                std::max(bin->lhs->width, bin->rhs->width);
            if (mutationOn(MUT_SIM_CMP_CTX_WIDTH))
                cmp_w = std::max(cmp_w, ctx_width);
            int cmp = evalExpr(bin->lhs, ctx, cmp_w)
                          .compare(evalExpr(bin->rhs, ctx, cmp_w));
            bool result = false;
            switch (bin->op) {
              case BinaryOp::Eq: result = cmp == 0; break;
              case BinaryOp::Ne: result = cmp != 0; break;
              case BinaryOp::Lt:
                result = mutationOn(MUT_SIM_LT_AS_LE) ? cmp <= 0
                                                      : cmp < 0;
                break;
              case BinaryOp::Le: result = cmp <= 0; break;
              case BinaryOp::Gt: result = cmp > 0; break;
              case BinaryOp::Ge: result = cmp >= 0; break;
              default: panic("evalExpr: bad comparison");
            }
            return Bits(w, result ? 1 : 0);
          }
        }
        break;
      }
      case ExprKind::Ternary: {
        const auto *tern = expr->as<TernaryExpr>();
        bool cond = !evalExpr(tern->cond, ctx).isZero();
        if (mutationOn(MUT_SIM_TERNARY_SWAP))
            cond = !cond;
        return evalExpr(cond ? tern->thenExpr : tern->elseExpr, ctx, w)
            .resized(w);
      }
      case ExprKind::Concat: {
        const auto *cat = expr->as<ConcatExpr>();
        Bits out(0);
        bool first = true;
        for (const auto &part : cat->parts) {
            Bits val = evalExpr(part, ctx);
            out = first ? val : out.concat(val);
            first = false;
        }
        return out.resized(w);
      }
      case ExprKind::Repeat: {
        const auto *rep = expr->as<RepeatExpr>();
        uint32_t count = expr->width / rep->inner->width;
        return evalExpr(rep->inner, ctx).replicate(count).resized(w);
      }
      case ExprKind::Index: {
        const auto *idx = expr->as<IndexExpr>();
        const SignalInfo &sig = ctx.design.info(idx->resolved);
        uint64_t index = evalExpr(idx->index, ctx).toU64();
        if (sig.arraySize != 0) {
            int64_t elem = effectiveIndex(index, sig.arraySize);
            if (elem < 0)
                return Bits(w, 0);
            return ctx.arrays[idx->resolved][static_cast<size_t>(elem)]
                .resized(w);
        }
        return Bits(w, ctx.values[idx->resolved].bit(
                           static_cast<uint32_t>(index)) ? 1 : 0);
      }
      case ExprKind::Range: {
        const auto *range = expr->as<RangeExpr>();
        return ctx.values[range->resolved]
            .slice(range->msbConst, range->lsbConst)
            .resized(w);
      }
    }
    panic("evalExpr: unreachable");
}

bool
evalBool(const ExprPtr &expr, EvalContext &ctx)
{
    return !evalExpr(expr, ctx).isZero();
}

namespace
{

StoreTarget
resolveSimpleTarget(const ExprPtr &lhs, EvalContext &ctx)
{
    StoreTarget target;
    switch (lhs->kind) {
      case ExprKind::Id: {
        const auto *id = lhs->as<IdExpr>();
        target.sig = id->resolved;
        target.whole = true;
        break;
      }
      case ExprKind::Index: {
        const auto *idx = lhs->as<IndexExpr>();
        const SignalInfo &sig = ctx.design.info(idx->resolved);
        target.sig = idx->resolved;
        uint64_t index = evalExpr(idx->index, ctx).toU64();
        if (sig.arraySize != 0) {
            target.element = effectiveIndex(index, sig.arraySize);
            target.dropped = target.element < 0;
            target.whole = true;
        } else {
            if (index >= sig.width) {
                target.dropped = true;
            } else {
                target.whole = false;
                target.msb = target.lsb = static_cast<uint32_t>(index);
            }
        }
        break;
      }
      case ExprKind::Range: {
        const auto *range = lhs->as<RangeExpr>();
        target.sig = range->resolved;
        target.whole = false;
        target.msb = range->msbConst;
        target.lsb = range->lsbConst;
        break;
      }
      default:
        fatal("%s: expression is not assignable", lhs->loc.str().c_str());
    }
    return target;
}

} // namespace

ResolvedLValue
resolveLValue(const ExprPtr &lhs, EvalContext &ctx)
{
    ResolvedLValue out;
    if (lhs->kind == ExprKind::Concat) {
        const auto *cat = lhs->as<ConcatExpr>();
        uint32_t total = lhs->width;
        uint32_t consumed = 0;
        for (const auto &part : cat->parts) {
            ResolvedLValue::Part entry;
            entry.target = resolveSimpleTarget(part, ctx);
            uint32_t part_width = part->width;
            entry.rhsMsb = total - consumed - 1;
            entry.rhsLsb = total - consumed - part_width;
            out.parts.push_back(entry);
            consumed += part_width;
        }
        out.totalWidth = total;
        return out;
    }
    ResolvedLValue::Part entry;
    entry.target = resolveSimpleTarget(lhs, ctx);
    entry.rhsMsb = lhs->width - 1;
    entry.rhsLsb = 0;
    out.parts.push_back(entry);
    out.totalWidth = lhs->width;
    return out;
}

void
applyStore(const StoreTarget &target, const Bits &value, EvalContext &ctx)
{
    if (target.dropped)
        return;
    const SignalInfo &sig = ctx.design.info(target.sig);
    if (target.element >= 0) {
        Bits &slot =
            ctx.arrays[target.sig][static_cast<size_t>(target.element)];
        Bits next = value.resized(sig.width);
        if (slot != next) {
            if (ctx.cover)
                ctx.cover->onStore(target.sig, slot, next);
            slot = std::move(next);
            ctx.valuesChanged = true;
            if (ctx.toggles)
                ++(*ctx.toggles)[target.sig];
        }
        return;
    }
    if (target.whole) {
        Bits next = value.resized(sig.width);
        if (ctx.values[target.sig] != next) {
            if (ctx.cover)
                ctx.cover->onStore(target.sig,
                                   ctx.values[target.sig], next);
            ctx.values[target.sig] = std::move(next);
            ctx.valuesChanged = true;
            if (ctx.toggles)
                ++(*ctx.toggles)[target.sig];
        }
        return;
    }
    Bits before = ctx.values[target.sig];
    ctx.values[target.sig].setSlice(target.msb, target.lsb, value);
    if (ctx.values[target.sig] != before) {
        if (ctx.cover)
            ctx.cover->onStore(target.sig, before,
                               ctx.values[target.sig]);
        ctx.valuesChanged = true;
        if (ctx.toggles)
            ++(*ctx.toggles)[target.sig];
    }
}

void
storeLValue(const ExprPtr &lhs, const Bits &value, EvalContext &ctx)
{
    ResolvedLValue resolved = resolveLValue(lhs, ctx);
    for (const auto &part : resolved.parts)
        applyStore(part.target, value.slice(part.rhsMsb, part.rhsLsb),
                   ctx);
}

std::string
formatDisplay(const std::string &format, const std::vector<Bits> &args)
{
    std::string out;
    size_t arg_idx = 0;
    for (size_t i = 0; i < format.size(); ++i) {
        char c = format[i];
        if (c != '%') {
            out.push_back(c);
            continue;
        }
        ++i;
        if (i >= format.size())
            break;
        // Skip optional width/zero flags, e.g. %0d, %4h.
        while (i < format.size() &&
               std::isdigit(static_cast<unsigned char>(format[i])))
            ++i;
        if (i >= format.size())
            break;
        char spec = format[i];
        if (spec == '%') {
            out.push_back('%');
            continue;
        }
        if (arg_idx >= args.size()) {
            out += "<missing>";
            continue;
        }
        const Bits &arg = args[arg_idx++];
        switch (spec) {
          case 'd': out += arg.toDecString(); break;
          case 'h':
          case 'x': out += arg.toHexString(); break;
          case 'b': out += arg.toBinString(); break;
          default: out.push_back(spec); break;
        }
    }
    return out;
}

} // namespace hwdbg::sim
