/**
 * @file
 * Two-state cycle simulator for elaborated designs (Verilator substitute).
 *
 * Usage mirrors Verilator's C++ API: the testbench pokes top-level inputs
 * (including clocks), then calls eval(). eval() settles combinational
 * logic, detects clock edges against the previous eval, executes
 * triggered processes with pre-edge values, commits nonblocking
 * assignments, updates primitives, and re-settles.
 *
 * Execution of design logic is delegated to a pluggable Backend
 * (sim/backend.hh): the AST interpreter is the reference engine and the
 * default; setBackend() swaps in an alternative (e.g. the compiled
 * bytecode backend from src/compile) at any eval() boundary.
 *
 * Semantics (documented deviations from full event-driven Verilog):
 *  - Two-state logic; registers initialize to zero (Verilator default).
 *  - Combinational logic settles by bounded fixpoint iteration; failure
 *    to settle raises HdlError ("combinational loop").
 *  - Clocks must be top-level inputs driven by the testbench.
 *  - $display in combinational processes is ignored (warned once).
 */

#ifndef HWDBG_SIM_SIMULATOR_HH
#define HWDBG_SIM_SIMULATOR_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/backend.hh"
#include "sim/primitives.hh"

namespace hwdbg::sim
{

struct SimCounters;
class CoverageCollector;

/**
 * Observer invoked at the end of every eval() with backend shadow state
 * flushed into the shared context (so ctx.values/arrays are current on
 * any backend). The trace recorder is the canonical implementation; the
 * detached path costs one pointer test per eval (bench/trace_overhead
 * measures it).
 */
class EvalHook
{
  public:
    virtual ~EvalHook() = default;

    /** End of one eval(); ctx.evalSeq identifies it. Called for every
     *  eval, including ones that trigger no process. */
    virtual void onEval(EvalContext &ctx) = 0;

    /**
     * State was replaced outside eval() (attach, restoreState). ctx is
     * flushed. Implementations re-seed any change/edge baselines so
     * time travel can neither fabricate nor drop an observation.
     */
    virtual void resync(EvalContext &ctx) = 0;
};

/**
 * One eval() step of recorded stimulus: the pokes applied since the
 * previous eval, in poke order (later pokes of the same signal win,
 * exactly as they did live).
 */
struct StimulusStep
{
    std::vector<std::pair<std::string, Bits>> pokes;
};

/**
 * A replayable stimulus recording grouped by eval() call. Applying the
 * steps in order to a freshly-constructed (or snapshot-restored)
 * simulator of the same design reproduces the recorded trajectory
 * bit-for-bit: the design is deterministic and the tape captures every
 * external input.
 */
struct StimulusTape
{
    std::vector<StimulusStep> steps;
    size_t sizeBytes() const;
};

/**
 * A complete copy of simulator state at an eval() boundary: signal and
 * memory values, the cycle counter, the $display log, clock-edge
 * detection state, any pending nonblocking assignments, and the opaque
 * per-primitive state blobs (FIFO queues, RAM contents, recorder
 * buffers). restoreState() on the same-design simulator resumes
 * execution as if the intervening evals never happened. Snapshots are
 * backend-independent: a snapshot taken under one backend restores
 * under any other.
 */
struct SimSnapshot
{
    std::vector<Bits> values;
    std::vector<std::vector<Bits>> arrays;
    uint64_t cycle = 0;
    uint64_t evalSeq = 0;
    bool finished = false;
    std::vector<EvalContext::LogLine> log;
    std::map<std::string, bool> prevClocks;
    std::vector<bool> prevPrimClocks;
    bool primaryClockRaw = false;
    using PendingNba = sim::PendingNba;
    std::vector<PendingNba> nba;
    /** Serialized dynamic state, one blob per primitive instance. */
    std::vector<std::vector<uint8_t>> primStates;

    /** Approximate in-memory footprint (the bench/metrics currency). */
    size_t sizeBytes() const;
};

/**
 * FNV-1a 64 over a canonical byte serialization of every snapshot
 * field. Two snapshots hash equal iff they describe the same simulator
 * state, independent of backend, so the serve-layer snapshot store can
 * content-address checkpoints and dedup sessions replaying the same
 * stimulus prefix.
 */
uint64_t snapshotFingerprint(const SimSnapshot &snap);

class Simulator
{
  public:
    /** Build a simulator over an elaborated (flat) module. */
    explicit Simulator(hdl::ModulePtr elaborated);
    ~Simulator();

    /**
     * Attribute eval counts, per-construct wall time, and signal
     * toggles into @p counters (sized here) until detached with
     * nullptr. The unprofiled path costs one branch per construct.
     */
    void enableProfiling(SimCounters *counters);

    /**
     * Mark statement/branch/toggle/FSM coverage into @p collector
     * (built over this design's CoverageItems) until detached with
     * nullptr. The uncovered path costs one branch per site;
     * bench/cover_overhead measures it.
     */
    void enableCoverage(CoverageCollector *collector);

    /**
     * Attach a per-eval observer (trace recording) until detached with
     * nullptr. The hook fires at the end of every eval() with backend
     * state flushed; attach and restoreState() call resync() so the
     * hook can re-seed its baselines. One hook at a time — the trace
     * recorder owns the slot the way the coverage collector owns its.
     */
    void setEvalHook(EvalHook *hook);

    /** The attached per-eval observer (null when detached). */
    EvalHook *evalHook() const { return hook_; }

    /**
     * Replace the execution backend (null factory restores the
     * interpreter). Legal at any eval() boundary: pending nonblocking
     * assignments and all state carry over, so swapping backends
     * mid-run does not perturb the trajectory.
     */
    void setBackend(const BackendFactory &factory);

    /** Identifier of the active backend ("interp", "bytecode"). */
    const char *backendName() const { return backend_->name(); }

    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    const LoweredDesign &design() const { return design_; }

    /**
     * The shared evaluation context. Flushes backend-held state first,
     * so callers holding the reference across an eval() (debugger, VCD
     * writer, breakpoints) must re-call between reads — cheap for the
     * interpreter (no-op), a state publish for compiled backends.
     */
    EvalContext &context()
    {
        backend_->flush();
        return ctx_;
    }

    void poke(const std::string &signal, const Bits &value);
    void poke(const std::string &signal, uint64_t value);
    Bits peek(const std::string &signal) const;
    uint64_t peekU64(const std::string &signal) const;
    Bits peekArray(const std::string &signal, uint64_t index) const;

    /** Settle logic and process any clock edges since the last eval. */
    void eval();

    /**
     * Override the execution order of clocked processes within one
     * eval(): triggered processes run in increasing @p order rank
     * instead of declaration order. @p order must be a permutation of
     * 0..N-1 over design().clockedProcs(); an empty vector restores
     * declaration order. Blocking-write visibility and the nonblocking
     * commit order follow the execution order, so permuting it exposes
     * scheduler races (the fuzz Order oracle's probe).
     */
    void setProcessOrder(std::vector<size_t> order);

    /**
     * Record every poke()/eval() into @p tape until detached with
     * nullptr. Pokes are grouped into one StimulusStep per eval(). The
     * detached path costs one pointer test per poke/eval.
     */
    void recordStimulus(StimulusTape *tape);

    /** Replay one recorded step: apply its pokes, then eval(). */
    void applyStep(const StimulusStep &step);

    /** Copy the complete simulator state (checkpoint support). */
    SimSnapshot saveState() const;

    /**
     * Restore a snapshot taken from a simulator of the same design.
     * Deterministic replay of the original stimulus from here
     * reproduces the original trajectory bit-for-bit.
     */
    void restoreState(const SimSnapshot &snap);

    bool finished() const { return ctx_.finished; }

    /**
     * The $display log. Formatting is deferred out of the hot eval
     * loop; this accessor drains (renders) any pending entries first.
     * Logically const: draining changes no simulated state, only
     * materializes text that was already determined.
     */
    const std::vector<EvalContext::LogLine> &log() const
    {
        const_cast<EvalContext &>(ctx_).drainLog();
        return ctx_.log;
    }

    /** Log line count without formatting (pending included). */
    size_t logSize() const { return ctx_.logSize(); }

    /** Number of posedges seen on the primary clock ("clk"). */
    uint64_t cycle() const { return ctx_.cycle; }

    /** Monotonic eval() count (ctx.evalSeq; snapshots restore it). */
    uint64_t evalSeq() const { return ctx_.evalSeq; }

    /** Primitive model by flattened instance name (null if absent). */
    Primitive *primitive(const std::string &inst_name) const;
    /** All primitive models. */
    const std::vector<std::unique_ptr<Primitive>> &primitives() const
    {
        return prims_;
    }

  private:
    friend class Backend;

    void noteSettle(size_t iters, size_t work);

    hdl::ModulePtr mod_;
    LoweredDesign design_;
    EvalContext ctx_;
    SimCounters *prof_ = nullptr;
    CoverageCollector *cover_ = nullptr;
    EvalHook *hook_ = nullptr;
    StimulusTape *tape_ = nullptr;
    /** Pokes since the last eval() while recording. */
    StimulusStep pendingStep_;

    std::unique_ptr<Backend> backend_;

    std::vector<std::unique_ptr<Primitive>> prims_;

    /** Previous values of clock signals (per clocked proc sens items). */
    std::map<std::string, bool> prevClocks_;
    /** Clock port expressions of primitives: (prim index, port). */
    struct PrimClock
    {
        size_t prim;
        std::string port;
        hdl::ExprPtr expr;
    };
    std::vector<PrimClock> primClocks_;
    std::vector<bool> prevPrimClocks_;
    /** Signals read by primitive clock expressions (flushed pre-read). */
    std::vector<int> primClockSigs_;

    /** Execution rank per clocked process; empty = declaration order. */
    std::vector<size_t> procOrder_;

    int primaryClockId_ = -1;
    /** Last seen level of the primary clock when it drives no process. */
    bool primaryClockRaw_ = false;
};

} // namespace hwdbg::sim

#endif // HWDBG_SIM_SIMULATOR_HH
