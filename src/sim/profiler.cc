#include "sim/profiler.hh"

#include <algorithm>
#include <chrono>
#include <set>
#include <sstream>

#include "common/logging.hh"
#include "hdl/printer.hh"
#include "obs/json.hh"
#include "obs/trace.hh"
#include "sim/simulator.hh"

namespace hwdbg::sim
{

using namespace hdl;

namespace
{

/** splitmix64: deterministic stimulus without depending on fuzz/rng. */
uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Lvalue target names of a statement tree, in first-write order. */
void
collectTargets(const StmtPtr &stmt, std::vector<std::string> &out,
               std::set<std::string> &seen)
{
    if (!stmt)
        return;
    switch (stmt->kind) {
      case StmtKind::Block:
        for (const auto &sub : stmt->as<BlockStmt>()->stmts)
            collectTargets(sub, out, seen);
        break;
      case StmtKind::If: {
        const auto *branch = stmt->as<IfStmt>();
        collectTargets(branch->thenStmt, out, seen);
        collectTargets(branch->elseStmt, out, seen);
        break;
      }
      case StmtKind::Case:
        for (const auto &item : stmt->as<CaseStmt>()->items)
            collectTargets(item.body, out, seen);
        break;
      case StmtKind::Assign: {
        const ExprPtr &lhs = stmt->as<AssignStmt>()->lhs;
        std::vector<ExprPtr> parts;
        if (lhs->kind == ExprKind::Concat)
            parts = lhs->as<ConcatExpr>()->parts;
        else
            parts.push_back(lhs);
        for (const auto &part : parts) {
            std::string name;
            if (part->kind == ExprKind::Id)
                name = part->as<IdExpr>()->name;
            else if (part->kind == ExprKind::Index)
                name = part->as<IndexExpr>()->base;
            else if (part->kind == ExprKind::Range)
                name = part->as<RangeExpr>()->base;
            if (!name.empty() && seen.insert(name).second)
                out.push_back(name);
        }
        break;
      }
      default:
        break;
    }
}

std::string
procLabel(const AlwaysItem &proc)
{
    std::string label;
    if (proc.isComb) {
        label = "always @*";
    } else {
        label = "always @(";
        for (size_t i = 0; i < proc.sens.size(); ++i) {
            if (i)
                label += " or ";
            label += proc.sens[i].edge == EdgeKind::Posedge
                         ? "posedge "
                         : "negedge ";
            label += proc.sens[i].signal;
        }
        label += ")";
    }
    std::vector<std::string> targets;
    std::set<std::string> seen;
    collectTargets(proc.body, targets, seen);
    if (!targets.empty()) {
        label += " -> ";
        for (size_t i = 0; i < targets.size() && i < 3; ++i) {
            if (i)
                label += ", ";
            label += targets[i];
        }
        if (targets.size() > 3)
            label += ", ...";
    }
    return label;
}

std::string
locStr(const SourceLoc &loc)
{
    return loc.line == 0 ? std::string() : loc.str();
}

using obs::jsonEscape;

} // namespace

ProfileReport
profileDesign(hdl::ModulePtr elaborated, const ProfileOptions &opts)
{
    obs::ObsSpan span("profile");
    ProfileReport report;
    report.top = elaborated->name;
    report.seed = opts.seed;
    report.cyclesRequested = opts.cycles;

    Simulator sim(std::move(elaborated));
    if (opts.backend)
        sim.setBackend(opts.backend);
    SimCounters counters;
    sim.enableProfiling(&counters);

    const LoweredDesign &design = sim.design();
    bool hasClk = design.signalId("clk") >= 0 &&
                  design.info(design.signalId("clk")).dir ==
                      PortDir::Input;
    bool hasRst = design.signalId("rst") >= 0 &&
                  design.info(design.signalId("rst")).dir ==
                      PortDir::Input;
    struct DrivenInput
    {
        std::string name;
        uint32_t width;
    };
    std::vector<DrivenInput> inputs;
    for (size_t i = 0; i < design.numSignals(); ++i) {
        const SignalInfo &sig = design.info(static_cast<int>(i));
        if (sig.dir != PortDir::Input || sig.name == "clk" ||
            sig.name == "rst")
            continue;
        inputs.push_back(DrivenInput{sig.name, sig.width});
    }
    if (!hasClk)
        warn("profile: design has no 'clk' input; running %u "
             "combinational eval rounds",
             opts.cycles);

    auto begin = std::chrono::steady_clock::now();
    {
        obs::ObsSpan simSpan("simulate");
        for (uint32_t t = 0; t < opts.cycles; ++t) {
            if (hasRst)
                sim.poke("rst", Bits(1, t < 2 ? 1 : 0));
            for (size_t i = 0; i < inputs.size(); ++i) {
                uint64_t draw = mix64(opts.seed ^
                                      (static_cast<uint64_t>(t) << 20) ^
                                      i);
                sim.poke(inputs[i].name,
                         Bits(inputs[i].width, draw));
            }
            if (hasClk) {
                sim.poke("clk", Bits(1, 0));
                sim.eval();
                sim.poke("clk", Bits(1, 1));
            }
            sim.eval();
            if (sim.finished())
                break;
        }
    }
    report.wallMs = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - begin)
                        .count();
    report.cyclesRun = hasClk ? sim.cycle() : opts.cycles;
    report.finished = sim.finished();
    report.settleCalls = counters.settleCalls;
    report.maxSettleDepth = counters.maxSettleDepth;
    report.settleHist.assign(counters.settleHist.begin(),
                             counters.settleHist.begin() +
                                 std::min<size_t>(
                                     counters.settleHist.size(),
                                     counters.maxSettleDepth + 1));
    sim.enableProfiling(nullptr);

    double totalNs = 0;
    auto addRow = [&](std::string kind, std::string label,
                      std::string loc, uint64_t evals, double ns) {
        ProfileRow row;
        row.kind = std::move(kind);
        row.label = std::move(label);
        row.loc = std::move(loc);
        row.evals = evals;
        row.ms = ns / 1e6;
        report.rows.push_back(std::move(row));
        totalNs += ns;
    };
    const auto &assigns = design.assigns();
    for (size_t i = 0; i < assigns.size(); ++i)
        addRow("assign", "assign " + printExpr(assigns[i]->lhs),
               locStr(assigns[i]->loc), counters.assignEvals[i],
               counters.assignNs[i]);
    const auto &combs = design.combProcs();
    for (size_t i = 0; i < combs.size(); ++i)
        addRow("comb", procLabel(*combs[i]), locStr(combs[i]->loc),
               counters.combEvals[i], counters.combNs[i]);
    const auto &clocked = design.clockedProcs();
    for (size_t i = 0; i < clocked.size(); ++i)
        addRow("seq", procLabel(*clocked[i]), locStr(clocked[i]->loc),
               counters.clockedEvals[i], counters.clockedNs[i]);
    for (auto &row : report.rows)
        row.pctTime = totalNs > 0 ? 100.0 * row.ms * 1e6 / totalNs : 0;

    // Ranking is stable on the declaration order built above, so equal
    // keys (and the --rank evals golden tests) stay deterministic.
    if (opts.rank == ProfileOptions::Rank::Evals)
        std::stable_sort(report.rows.begin(), report.rows.end(),
                         [](const ProfileRow &a, const ProfileRow &b) {
                             return a.evals > b.evals;
                         });
    else
        std::stable_sort(report.rows.begin(), report.rows.end(),
                         [](const ProfileRow &a, const ProfileRow &b) {
                             return a.ms > b.ms;
                         });

    for (size_t i = 0; i < design.numSignals(); ++i) {
        if (!counters.toggles[i])
            continue;
        report.signals.push_back(SignalToggles{
            design.info(static_cast<int>(i)).name,
            counters.toggles[i]});
    }
    std::stable_sort(report.signals.begin(), report.signals.end(),
                     [](const SignalToggles &a, const SignalToggles &b) {
                         return a.toggles > b.toggles;
                     });
    return report;
}

std::string
renderProfileText(const ProfileReport &report,
                  const ProfileOptions &opts)
{
    std::ostringstream out;
    char line[256];
    std::snprintf(line, sizeof line,
                  "profile: top=%s cycles=%llu/%u seed=%llu "
                  "wall=%.2f ms%s\n",
                  report.top.c_str(),
                  static_cast<unsigned long long>(report.cyclesRun),
                  report.cyclesRequested,
                  static_cast<unsigned long long>(report.seed),
                  report.wallMs,
                  report.finished ? " ($finish)" : "");
    out << line;
    out << "settle: " << report.settleCalls
        << " calls, worst-case combinational depth "
        << report.maxSettleDepth << " iteration(s)\n";

    out << "hot constructs (ranked by "
        << (opts.rank == ProfileOptions::Rank::Evals ? "evals" : "time")
        << "):\n";
    std::snprintf(line, sizeof line, "  %4s %-6s %9s %6s %9s  %s\n",
                  "rank", "kind", "time_ms", "pct", "evals",
                  "location  construct");
    out << line;
    size_t rows = report.rows.size();
    if (opts.limit && rows > opts.limit)
        rows = opts.limit;
    for (size_t i = 0; i < rows; ++i) {
        const ProfileRow &row = report.rows[i];
        std::snprintf(line, sizeof line,
                      "  %4zu %-6s %9.3f %5.1f%% %9llu  %s  %s\n",
                      i + 1, row.kind.c_str(), row.ms, row.pctTime,
                      static_cast<unsigned long long>(row.evals),
                      row.loc.empty() ? "<generated>" : row.loc.c_str(),
                      row.label.c_str());
        out << line;
    }
    if (rows < report.rows.size())
        out << "  ... " << (report.rows.size() - rows)
            << " more construct(s); raise --limit to see them\n";

    out << "hot signals (by toggle count):\n";
    size_t sigs = report.signals.size();
    if (opts.signalLimit && sigs > opts.signalLimit)
        sigs = opts.signalLimit;
    for (size_t i = 0; i < sigs; ++i) {
        const SignalToggles &sig = report.signals[i];
        double perCycle =
            report.cyclesRun
                ? static_cast<double>(sig.toggles) /
                      static_cast<double>(report.cyclesRun)
                : 0;
        std::snprintf(line, sizeof line,
                      "  %4zu %-24s %9llu toggles (%.2f/cycle)\n", i + 1,
                      sig.name.c_str(),
                      static_cast<unsigned long long>(sig.toggles),
                      perCycle);
        out << line;
    }
    return out.str();
}

std::string
renderProfileJson(const ProfileReport &report,
                  const ProfileOptions &opts)
{
    std::ostringstream out;
    char buf[64];
    out << "{\n";
    out << "  \"top\": \"" << jsonEscape(report.top) << "\",\n";
    out << "  \"seed\": " << report.seed << ",\n";
    out << "  \"cycles_requested\": " << report.cyclesRequested << ",\n";
    out << "  \"cycles_run\": " << report.cyclesRun << ",\n";
    out << "  \"finished\": " << (report.finished ? "true" : "false")
        << ",\n";
    std::snprintf(buf, sizeof buf, "%.3f", report.wallMs);
    out << "  \"wall_ms\": " << buf << ",\n";
    out << "  \"rank\": \""
        << (opts.rank == ProfileOptions::Rank::Evals ? "evals" : "time")
        << "\",\n";
    out << "  \"settle\": {\"calls\": " << report.settleCalls
        << ", \"max_depth\": " << report.maxSettleDepth
        << ", \"by_depth\": [";
    for (size_t i = 0; i < report.settleHist.size(); ++i)
        out << (i ? ", " : "") << report.settleHist[i];
    out << "]},\n";
    out << "  \"constructs\": [\n";
    for (size_t i = 0; i < report.rows.size(); ++i) {
        const ProfileRow &row = report.rows[i];
        std::snprintf(buf, sizeof buf, "%.3f", row.ms);
        out << "    {\"rank\": " << i + 1 << ", \"kind\": \""
            << row.kind << "\", \"label\": \"" << jsonEscape(row.label)
            << "\", \"loc\": \"" << jsonEscape(row.loc)
            << "\", \"evals\": " << row.evals << ", \"ms\": " << buf
            << "}" << (i + 1 < report.rows.size() ? "," : "") << "\n";
    }
    out << "  ],\n";
    out << "  \"signals\": [\n";
    for (size_t i = 0; i < report.signals.size(); ++i) {
        const SignalToggles &sig = report.signals[i];
        out << "    {\"name\": \"" << jsonEscape(sig.name)
            << "\", \"toggles\": " << sig.toggles << "}"
            << (i + 1 < report.signals.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    return out.str();
}

} // namespace hwdbg::sim
