#include "sim/vcd.hh"

#include <fstream>
#include <sstream>

#include "common/logging.hh"

namespace hwdbg::sim
{

namespace
{

/** VCD identifier code for the n-th signal (printable ASCII run). */
std::string
vcdCode(size_t n)
{
    std::string code;
    do {
        code.push_back(static_cast<char>('!' + n % 94));
        n /= 94;
    } while (n != 0);
    return code;
}

} // namespace

VcdWriter::VcdWriter(Simulator &sim) : sim_(sim)
{
    const LoweredDesign &design = sim.design();
    for (size_t i = 0; i < design.numSignals(); ++i) {
        const SignalInfo &sig = design.info(static_cast<int>(i));
        if (sig.arraySize != 0)
            continue; // memories are not dumped
        tracked_.push_back(static_cast<int>(i));
        last_.emplace_back(sig.width, 0);
    }
}

void
VcdWriter::sample(uint64_t time)
{
    EvalContext &ctx = sim_.context();
    for (size_t i = 0; i < tracked_.size(); ++i) {
        const Bits &now = ctx.values[tracked_[i]];
        if (!started_ || now != last_[i]) {
            changes_.push_back(Change{time, tracked_[i], now});
            last_[i] = now;
        }
    }
    started_ = true;
}

std::string
VcdWriter::render() const
{
    const LoweredDesign &design = sim_.design();
    std::ostringstream out;
    out << "$timescale 1ns $end\n";
    out << "$scope module " << design.module().name << " $end\n";
    for (size_t i = 0; i < tracked_.size(); ++i) {
        const SignalInfo &sig = design.info(tracked_[i]);
        out << "$var wire " << sig.width << " " << vcdCode(i) << " "
            << sig.name << " $end\n";
    }
    out << "$upscope $end\n$enddefinitions $end\n";

    uint64_t current_time = ~uint64_t(0);
    // Map signal id -> code index.
    std::vector<size_t> code_of(design.numSignals(), 0);
    for (size_t i = 0; i < tracked_.size(); ++i)
        code_of[tracked_[i]] = i;

    for (const auto &change : changes_) {
        if (change.time != current_time) {
            out << "#" << change.time << "\n";
            current_time = change.time;
        }
        const SignalInfo &sig = design.info(change.sig);
        if (sig.width == 1) {
            out << (change.value.isZero() ? "0" : "1")
                << vcdCode(code_of[change.sig]) << "\n";
        } else {
            out << "b" << change.value.toBinString() << " "
                << vcdCode(code_of[change.sig]) << "\n";
        }
    }
    return out.str();
}

void
VcdWriter::writeFile(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot open '%s' for writing", path.c_str());
    out << render();
}

} // namespace hwdbg::sim
