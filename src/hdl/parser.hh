/**
 * @file
 * Recursive-descent parser for the hwdbg Verilog subset.
 */

#ifndef HWDBG_HDL_PARSER_HH
#define HWDBG_HDL_PARSER_HH

#include <map>
#include <string>

#include "hdl/ast.hh"

namespace hwdbg::hdl
{

/** Parse preprocessed Verilog text into a Design. */
Design parse(const std::string &source,
             const std::string &file = "<input>");

/**
 * Preprocess (with @p defines) and parse raw Verilog text.
 * This is the main entry point used by the testbed and tools.
 */
Design parseWithDefines(const std::string &source,
                        const std::map<std::string, std::string> &defines,
                        const std::string &file = "<input>");

/** Parse a standalone expression, e.g. "s_valid && s_ready". */
ExprPtr parseExprText(const std::string &text);

} // namespace hwdbg::hdl

#endif // HWDBG_HDL_PARSER_HH
