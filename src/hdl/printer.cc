#include "hdl/printer.hh"

#include <sstream>

#include "common/logging.hh"
#include "common/testhooks.hh"

namespace hwdbg::hdl
{

namespace
{

std::string
indentStr(int indent)
{
    return std::string(static_cast<size_t>(indent) * 4, ' ');
}

int
precedence(BinaryOp op)
{
    switch (op) {
      case BinaryOp::LogOr: return 1;
      case BinaryOp::LogAnd: return 2;
      case BinaryOp::BitOr: return 3;
      case BinaryOp::BitXor: return 4;
      case BinaryOp::BitAnd: return 5;
      case BinaryOp::Eq:
      case BinaryOp::Ne: return 6;
      case BinaryOp::Lt:
      case BinaryOp::Le:
      case BinaryOp::Gt:
      case BinaryOp::Ge: return 7;
      case BinaryOp::Shl:
      case BinaryOp::Shr: return 8;
      case BinaryOp::Add:
      case BinaryOp::Sub: return 9;
      case BinaryOp::Mul:
      case BinaryOp::Div:
      case BinaryOp::Mod: return 10;
    }
    return 0;
}

const char *
binOpText(BinaryOp op)
{
    switch (op) {
      case BinaryOp::Add: return "+";
      case BinaryOp::Sub: return "-";
      case BinaryOp::Mul: return "*";
      case BinaryOp::Div: return "/";
      case BinaryOp::Mod: return "%";
      case BinaryOp::BitAnd: return "&";
      case BinaryOp::BitOr: return "|";
      case BinaryOp::BitXor: return "^";
      case BinaryOp::LogAnd: return "&&";
      case BinaryOp::LogOr: return "||";
      case BinaryOp::Eq: return "==";
      case BinaryOp::Ne: return "!=";
      case BinaryOp::Lt: return "<";
      case BinaryOp::Le: return "<=";
      case BinaryOp::Gt: return ">";
      case BinaryOp::Ge: return ">=";
      case BinaryOp::Shl:
        return mutationOn(MUT_PRINT_SHL_AS_SHR) ? ">>" : "<<";
      case BinaryOp::Shr: return ">>";
    }
    return "?";
}

const char *
unOpText(UnaryOp op)
{
    switch (op) {
      case UnaryOp::Neg: return "-";
      case UnaryOp::LogNot: return "!";
      case UnaryOp::BitNot: return "~";
      case UnaryOp::RedAnd: return "&";
      case UnaryOp::RedOr: return "|";
      case UnaryOp::RedXor: return "^";
    }
    return "?";
}

/** Print with parentheses when the context binds tighter. */
std::string
printPrec(const ExprPtr &expr, int min_prec)
{
    std::string text = printExpr(expr);
    bool needs_parens = false;
    if (expr->kind == ExprKind::Binary)
        needs_parens = precedence(expr->as<BinaryExpr>()->op) < min_prec;
    else if (expr->kind == ExprKind::Ternary)
        needs_parens = min_prec > 0;
    return needs_parens ? "(" + text + ")" : text;
}

std::string
escapeString(const std::string &s)
{
    std::string out;
    for (char c : s) {
        switch (c) {
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\\': out += "\\\\"; break;
          case '"': out += "\\\""; break;
          default: out.push_back(c); break;
        }
    }
    return out;
}

std::string
printRange(const AstRange &range)
{
    return "[" + printExpr(range.msb) + ":" + printExpr(range.lsb) + "]";
}

} // namespace

std::string
printExpr(const ExprPtr &expr)
{
    if (!expr)
        panic("printExpr: null expression");
    switch (expr->kind) {
      case ExprKind::Number: {
        const auto *num = expr->as<NumberExpr>();
        if (!num->sized || mutationOn(MUT_PRINT_UNSIZED_NUM))
            return num->value.toDecString();
        return num->value.toVerilog();
      }
      case ExprKind::Id:
        return expr->as<IdExpr>()->name;
      case ExprKind::Unary: {
        const auto *un = expr->as<UnaryExpr>();
        std::string arg = printExpr(un->arg);
        bool simple = un->arg->kind == ExprKind::Id ||
                      un->arg->kind == ExprKind::Number ||
                      un->arg->kind == ExprKind::Index ||
                      un->arg->kind == ExprKind::Range ||
                      un->arg->kind == ExprKind::Concat;
        if (!simple)
            arg = "(" + arg + ")";
        return std::string(unOpText(un->op)) + arg;
      }
      case ExprKind::Binary: {
        const auto *bin = expr->as<BinaryExpr>();
        int prec = precedence(bin->op);
        int rhs_prec = mutationOn(MUT_PRINT_DROP_PARENS) ? prec
                                                          : prec + 1;
        return printPrec(bin->lhs, prec) + " " + binOpText(bin->op) + " " +
               printPrec(bin->rhs, rhs_prec);
      }
      case ExprKind::Ternary: {
        const auto *tern = expr->as<TernaryExpr>();
        return printPrec(tern->cond, 1) + " ? " +
               printPrec(tern->thenExpr, 1) + " : " +
               printPrec(tern->elseExpr, 0);
      }
      case ExprKind::Concat: {
        const auto *cat = expr->as<ConcatExpr>();
        std::string out = "{";
        for (size_t i = 0; i < cat->parts.size(); ++i) {
            if (i)
                out += ", ";
            out += printExpr(cat->parts[i]);
        }
        return out + "}";
      }
      case ExprKind::Repeat: {
        const auto *rep = expr->as<RepeatExpr>();
        return "{" + printExpr(rep->count) + "{" + printExpr(rep->inner) +
               "}}";
      }
      case ExprKind::Index: {
        const auto *idx = expr->as<IndexExpr>();
        return idx->base + "[" + printExpr(idx->index) + "]";
      }
      case ExprKind::Range: {
        const auto *range = expr->as<RangeExpr>();
        return range->base + "[" + printExpr(range->msb) + ":" +
               printExpr(range->lsb) + "]";
      }
    }
    return "?";
}

std::string
printStmt(const StmtPtr &stmt, int indent)
{
    std::string pad = indentStr(indent);
    if (!stmt)
        panic("printStmt: null statement");
    switch (stmt->kind) {
      case StmtKind::Block: {
        const auto *block = stmt->as<BlockStmt>();
        std::string out = pad + "begin\n";
        for (const auto &sub : block->stmts)
            out += printStmt(sub, indent + 1);
        out += pad + "end\n";
        return out;
      }
      case StmtKind::If: {
        const auto *branch = stmt->as<IfStmt>();
        std::string out =
            pad + "if (" + printExpr(branch->cond) + ")\n";
        out += printStmt(branch->thenStmt, indent + 1);
        if (branch->elseStmt) {
            out += pad + "else\n";
            out += printStmt(branch->elseStmt, indent + 1);
        }
        return out;
      }
      case StmtKind::Case: {
        const auto *sel = stmt->as<CaseStmt>();
        std::string out = pad + (sel->isCasez ? "casez (" : "case (") +
                          printExpr(sel->selector) + ")\n";
        for (const auto &item : sel->items) {
            std::string label;
            if (item.labels.empty()) {
                label = "default";
            } else {
                for (size_t i = 0; i < item.labels.size(); ++i) {
                    if (i)
                        label += ", ";
                    label += printExpr(item.labels[i]);
                }
            }
            out += indentStr(indent + 1) + label + ":\n";
            out += printStmt(item.body, indent + 2);
        }
        out += pad + "endcase\n";
        return out;
      }
      case StmtKind::Assign: {
        const auto *assign = stmt->as<AssignStmt>();
        return pad + printExpr(assign->lhs) +
               (assign->nonblocking ? " <= " : " = ") +
               printExpr(assign->rhs) + ";\n";
      }
      case StmtKind::Display: {
        const auto *disp = stmt->as<DisplayStmt>();
        std::string out =
            pad + "$display(\"" + escapeString(disp->format) + "\"";
        for (const auto &arg : disp->args)
            out += ", " + printExpr(arg);
        return out + ");\n";
      }
      case StmtKind::Finish:
        return pad + "$finish;\n";
      case StmtKind::Null:
        return pad + ";\n";
    }
    return "";
}

std::string
printItem(const ItemPtr &item, int indent)
{
    std::string pad = indentStr(indent);
    switch (item->kind) {
      case ItemKind::Param: {
        const auto *param = item->as<ParamItem>();
        if (param->inHeader)
            return ""; // printed in the module header
        return pad + (param->isLocal ? "localparam " : "parameter ") +
               param->name + " = " + printExpr(param->value) + ";\n";
      }
      case ItemKind::Net: {
        const auto *net = item->as<NetItem>();
        if (net->dir != PortDir::None)
            return ""; // printed in the module header (ANSI style)
        std::string out =
            pad + (net->net == NetKind::Reg ? "reg " : "wire ");
        if (net->range)
            out += printRange(*net->range) + " ";
        out += net->name;
        if (net->array)
            out += " " + printRange(*net->array);
        return out + ";\n";
      }
      case ItemKind::ContAssign: {
        const auto *assign = item->as<ContAssignItem>();
        return pad + "assign " + printExpr(assign->lhs) + " = " +
               printExpr(assign->rhs) + ";\n";
      }
      case ItemKind::Always: {
        const auto *always = item->as<AlwaysItem>();
        std::string out = pad + "always @";
        if (always->isComb) {
            out += "*";
        } else {
            out += "(";
            for (size_t i = 0; i < always->sens.size(); ++i) {
                if (i)
                    out += " or ";
                out += always->sens[i].edge == EdgeKind::Posedge
                           ? "posedge "
                           : "negedge ";
                out += always->sens[i].signal;
            }
            out += ")";
        }
        out += "\n" + printStmt(always->body, indent + 1);
        return out;
      }
      case ItemKind::Instance: {
        const auto *inst = item->as<InstanceItem>();
        std::string out = pad + inst->moduleName;
        if (!inst->paramOverrides.empty()) {
            out += " #(";
            for (size_t i = 0; i < inst->paramOverrides.size(); ++i) {
                if (i)
                    out += ", ";
                out += "." + inst->paramOverrides[i].first + "(" +
                       printExpr(inst->paramOverrides[i].second) + ")";
            }
            out += ")";
        }
        out += " " + inst->instName + " (\n";
        for (size_t i = 0; i < inst->conns.size(); ++i) {
            out += indentStr(indent + 1) + "." + inst->conns[i].formal +
                   "(";
            if (inst->conns[i].actual)
                out += printExpr(inst->conns[i].actual);
            out += ")";
            if (i + 1 < inst->conns.size())
                out += ",";
            out += "\n";
        }
        out += pad + ");\n";
        return out;
      }
    }
    return "";
}

std::string
printModule(const Module &mod)
{
    std::string out = "module " + mod.name;

    // Header parameters.
    std::vector<const ParamItem *> header_params;
    for (const auto &item : mod.items)
        if (item->kind == ItemKind::Param &&
            item->as<ParamItem>()->inHeader)
            header_params.push_back(item->as<ParamItem>());
    if (!header_params.empty()) {
        out += " #(\n";
        for (size_t i = 0; i < header_params.size(); ++i) {
            out += indentStr(1) + "parameter " + header_params[i]->name +
                   " = " + printExpr(header_params[i]->value);
            if (i + 1 < header_params.size())
                out += ",";
            out += "\n";
        }
        out += ")";
    }

    // ANSI port list.
    out += " (\n";
    for (size_t i = 0; i < mod.ports.size(); ++i) {
        const NetItem *net = mod.findNet(mod.ports[i]);
        if (!net)
            panic("port '%s' of module '%s' has no declaration",
                  mod.ports[i].c_str(), mod.name.c_str());
        out += indentStr(1);
        out += net->dir == PortDir::Input ? "input " : "output ";
        out += net->net == NetKind::Reg ? "reg " : "wire ";
        if (net->range)
            out += printRange(*net->range) + " ";
        out += net->name;
        if (i + 1 < mod.ports.size())
            out += ",";
        out += "\n";
    }
    out += ");\n";

    for (const auto &item : mod.items)
        out += printItem(item, 1);
    out += "endmodule\n";
    return out;
}

std::string
printDesign(const Design &design)
{
    std::string out;
    for (size_t i = 0; i < design.modules.size(); ++i) {
        if (i)
            out += "\n";
        out += printModule(*design.modules[i]);
    }
    return out;
}

int
countCodeLines(const std::string &text)
{
    int count = 0;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
        bool blank = true;
        for (char c : line)
            if (c != ' ' && c != '\t' && c != '\r') {
                blank = false;
                break;
            }
        if (!blank)
            ++count;
    }
    return count;
}

} // namespace hwdbg::hdl
