#include "hdl/token.hh"

namespace hwdbg::hdl
{

const char *
tokKindName(TokKind kind)
{
    switch (kind) {
      case TokKind::Eof: return "end of input";
      case TokKind::Ident: return "identifier";
      case TokKind::Number: return "number";
      case TokKind::String: return "string";
      case TokKind::SysName: return "system task";
      case TokKind::KwModule: return "'module'";
      case TokKind::KwEndmodule: return "'endmodule'";
      case TokKind::KwInput: return "'input'";
      case TokKind::KwOutput: return "'output'";
      case TokKind::KwInout: return "'inout'";
      case TokKind::KwWire: return "'wire'";
      case TokKind::KwReg: return "'reg'";
      case TokKind::KwInteger: return "'integer'";
      case TokKind::KwParameter: return "'parameter'";
      case TokKind::KwLocalparam: return "'localparam'";
      case TokKind::KwAssign: return "'assign'";
      case TokKind::KwAlways: return "'always'";
      case TokKind::KwPosedge: return "'posedge'";
      case TokKind::KwNegedge: return "'negedge'";
      case TokKind::KwOr: return "'or'";
      case TokKind::KwBegin: return "'begin'";
      case TokKind::KwEnd: return "'end'";
      case TokKind::KwIf: return "'if'";
      case TokKind::KwElse: return "'else'";
      case TokKind::KwCase: return "'case'";
      case TokKind::KwCasez: return "'casez'";
      case TokKind::KwEndcase: return "'endcase'";
      case TokKind::KwDefault: return "'default'";
      case TokKind::LParen: return "'('";
      case TokKind::RParen: return "')'";
      case TokKind::LBracket: return "'['";
      case TokKind::RBracket: return "']'";
      case TokKind::LBrace: return "'{'";
      case TokKind::RBrace: return "'}'";
      case TokKind::Semi: return "';'";
      case TokKind::Colon: return "':'";
      case TokKind::Comma: return "','";
      case TokKind::Dot: return "'.'";
      case TokKind::Hash: return "'#'";
      case TokKind::At: return "'@'";
      case TokKind::Question: return "'?'";
      case TokKind::Star: return "'*'";
      case TokKind::Plus: return "'+'";
      case TokKind::Minus: return "'-'";
      case TokKind::Slash: return "'/'";
      case TokKind::Percent: return "'%'";
      case TokKind::Amp: return "'&'";
      case TokKind::Pipe: return "'|'";
      case TokKind::Caret: return "'^'";
      case TokKind::Tilde: return "'~'";
      case TokKind::Bang: return "'!'";
      case TokKind::AmpAmp: return "'&&'";
      case TokKind::PipePipe: return "'||'";
      case TokKind::EqEq: return "'=='";
      case TokKind::BangEq: return "'!='";
      case TokKind::Lt: return "'<'";
      case TokKind::LtEq: return "'<='";
      case TokKind::Gt: return "'>'";
      case TokKind::GtEq: return "'>='";
      case TokKind::LtLt: return "'<<'";
      case TokKind::GtGt: return "'>>'";
      case TokKind::Assign: return "'='";
    }
    return "unknown token";
}

} // namespace hwdbg::hdl
