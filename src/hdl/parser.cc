#include "hdl/parser.hh"

#include <algorithm>

#include "common/logging.hh"
#include "hdl/lexer.hh"
#include "hdl/preproc.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace hwdbg::hdl
{

namespace
{

class Parser
{
  public:
    Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

    Design
    run()
    {
        Design design;
        while (!peek().is(TokKind::Eof))
            design.modules.push_back(parseModule());
        return design;
    }

  private:
    const Token &peek(size_t ahead = 0) const
    {
        size_t idx = pos_ + ahead;
        if (idx >= tokens_.size())
            idx = tokens_.size() - 1;
        return tokens_[idx];
    }

    Token
    advance()
    {
        Token tok = peek();
        if (pos_ + 1 < tokens_.size())
            ++pos_;
        return tok;
    }

    bool
    accept(TokKind kind)
    {
        if (peek().is(kind)) {
            advance();
            return true;
        }
        return false;
    }

    Token
    expect(TokKind kind, const char *context)
    {
        if (!peek().is(kind)) {
            const Token &tok = peek();
            fatal("%s: expected %s in %s, found %s '%s'",
                  tok.loc.str().c_str(), tokKindName(kind), context,
                  tokKindName(tok.kind), tok.text.c_str());
        }
        return advance();
    }

    [[noreturn]] void
    errorHere(const std::string &msg)
    {
        const Token &tok = peek();
        fatal("%s: %s (found %s '%s')", tok.loc.str().c_str(), msg.c_str(),
              tokKindName(tok.kind), tok.text.c_str());
    }

    // -- Modules ------------------------------------------------------

    ModulePtr
    parseModule()
    {
        Token kw = expect(TokKind::KwModule, "design");
        auto mod = std::make_shared<Module>();
        mod->loc = kw.loc;
        mod->name = expect(TokKind::Ident, "module header").text;

        if (accept(TokKind::Hash)) {
            expect(TokKind::LParen, "parameter header");
            do {
                accept(TokKind::KwParameter);
                auto param = std::make_shared<ParamItem>();
                param->loc = peek().loc;
                param->name = expect(TokKind::Ident, "parameter").text;
                expect(TokKind::Assign, "parameter");
                param->value = parseExpr();
                param->inHeader = true;
                mod->items.push_back(param);
            } while (accept(TokKind::Comma));
            expect(TokKind::RParen, "parameter header");
        }

        expect(TokKind::LParen, "module header");
        if (!peek().is(TokKind::RParen)) {
            PortDir dir = PortDir::None;
            NetKind net = NetKind::Wire;
            do {
                parseAnsiPort(*mod, dir, net);
            } while (accept(TokKind::Comma));
        }
        expect(TokKind::RParen, "module header");
        expect(TokKind::Semi, "module header");

        while (!peek().is(TokKind::KwEndmodule))
            parseItem(*mod);
        expect(TokKind::KwEndmodule, "module");
        return mod;
    }

    void
    parseAnsiPort(Module &mod, PortDir &dir, NetKind &net)
    {
        // Direction/type may be omitted to reuse the previous port's.
        if (accept(TokKind::KwInput)) {
            dir = PortDir::Input;
            net = NetKind::Wire;
        } else if (accept(TokKind::KwOutput)) {
            dir = PortDir::Output;
            net = NetKind::Wire;
        } else if (peek().is(TokKind::KwInout)) {
            errorHere("inout ports are not supported");
        }
        if (accept(TokKind::KwWire))
            net = NetKind::Wire;
        else if (accept(TokKind::KwReg))
            net = NetKind::Reg;
        if (dir == PortDir::None)
            errorHere("port is missing a direction");

        auto decl = std::make_shared<NetItem>();
        decl->loc = peek().loc;
        decl->dir = dir;
        decl->net = net;
        if (peek().is(TokKind::LBracket))
            decl->range = parseRangeSpec();
        decl->name = expect(TokKind::Ident, "port declaration").text;
        mod.ports.push_back(decl->name);
        mod.items.push_back(decl);
    }

    AstRange
    parseRangeSpec()
    {
        expect(TokKind::LBracket, "range");
        AstRange range;
        range.msb = parseExpr();
        expect(TokKind::Colon, "range");
        range.lsb = parseExpr();
        expect(TokKind::RBracket, "range");
        return range;
    }

    void
    parseItem(Module &mod)
    {
        const Token &tok = peek();
        switch (tok.kind) {
          case TokKind::KwParameter:
          case TokKind::KwLocalparam:
            parseParamItem(mod);
            return;
          case TokKind::KwInput:
          case TokKind::KwOutput:
            errorHere("non-ANSI port declarations are not supported");
          case TokKind::KwWire:
          case TokKind::KwReg:
          case TokKind::KwInteger:
            parseNetItem(mod);
            return;
          case TokKind::KwAssign:
            parseContAssign(mod);
            return;
          case TokKind::KwAlways:
            parseAlways(mod);
            return;
          case TokKind::Ident:
            parseInstance(mod);
            return;
          default:
            errorHere("unexpected token in module body");
        }
    }

    void
    parseParamItem(Module &mod)
    {
        bool local = peek().is(TokKind::KwLocalparam);
        advance();
        do {
            auto param = std::make_shared<ParamItem>();
            param->loc = peek().loc;
            param->isLocal = local;
            param->name = expect(TokKind::Ident, "parameter").text;
            expect(TokKind::Assign, "parameter");
            param->value = parseExpr();
            mod.items.push_back(param);
        } while (accept(TokKind::Comma));
        expect(TokKind::Semi, "parameter");
    }

    void
    parseNetItem(Module &mod)
    {
        NetKind net = NetKind::Wire;
        bool is_integer = false;
        if (accept(TokKind::KwReg))
            net = NetKind::Reg;
        else if (accept(TokKind::KwInteger)) {
            net = NetKind::Reg;
            is_integer = true;
        } else {
            expect(TokKind::KwWire, "net declaration");
        }

        std::optional<AstRange> range;
        if (is_integer) {
            range = AstRange{mkNum(32, 31), mkNum(32, 0)};
        } else if (peek().is(TokKind::LBracket)) {
            range = parseRangeSpec();
        }

        do {
            auto decl = std::make_shared<NetItem>();
            decl->loc = peek().loc;
            decl->net = net;
            decl->name = expect(TokKind::Ident, "net declaration").text;
            if (range)
                decl->range = AstRange{cloneExpr(range->msb),
                                       cloneExpr(range->lsb)};
            if (peek().is(TokKind::LBracket)) {
                if (net != NetKind::Reg)
                    errorHere("memories must be declared 'reg'");
                decl->array = parseRangeSpec();
            }
            mod.items.push_back(decl);
            if (peek().is(TokKind::Assign)) {
                // wire name = expr; sugar for a continuous assignment.
                if (net == NetKind::Reg)
                    errorHere("reg declarations cannot take "
                              "initializers");
                advance();
                auto assign = std::make_shared<ContAssignItem>();
                assign->loc = decl->loc;
                assign->lhs = mkId(decl->name);
                assign->rhs = parseExpr();
                mod.items.push_back(assign);
            }
        } while (accept(TokKind::Comma));
        expect(TokKind::Semi, "net declaration");
    }

    void
    parseContAssign(Module &mod)
    {
        Token kw = expect(TokKind::KwAssign, "module body");
        do {
            auto item = std::make_shared<ContAssignItem>();
            item->loc = kw.loc;
            item->lhs = parseLValue();
            expect(TokKind::Assign, "continuous assignment");
            item->rhs = parseExpr();
            mod.items.push_back(item);
        } while (accept(TokKind::Comma));
        expect(TokKind::Semi, "continuous assignment");
    }

    void
    parseAlways(Module &mod)
    {
        Token kw = expect(TokKind::KwAlways, "module body");
        auto item = std::make_shared<AlwaysItem>();
        item->loc = kw.loc;
        expect(TokKind::At, "always block");

        if (accept(TokKind::Star)) {
            item->isComb = true;
        } else {
            expect(TokKind::LParen, "sensitivity list");
            if (accept(TokKind::Star)) {
                item->isComb = true;
            } else {
                do {
                    SensItem sens;
                    if (accept(TokKind::KwPosedge))
                        sens.edge = EdgeKind::Posedge;
                    else if (accept(TokKind::KwNegedge))
                        sens.edge = EdgeKind::Negedge;
                    else
                        errorHere("expected posedge/negedge (plain "
                                  "signal sensitivity lists: use @*)");
                    sens.signal =
                        expect(TokKind::Ident, "sensitivity list").text;
                    item->sens.push_back(sens);
                } while (accept(TokKind::KwOr) || accept(TokKind::Comma));
            }
            expect(TokKind::RParen, "sensitivity list");
        }

        item->body = parseStmt();
        mod.items.push_back(item);
    }

    void
    parseInstance(Module &mod)
    {
        auto inst = std::make_shared<InstanceItem>();
        inst->loc = peek().loc;
        inst->moduleName = expect(TokKind::Ident, "instantiation").text;

        if (accept(TokKind::Hash)) {
            expect(TokKind::LParen, "parameter overrides");
            do {
                expect(TokKind::Dot, "parameter overrides");
                std::string name =
                    expect(TokKind::Ident, "parameter overrides").text;
                expect(TokKind::LParen, "parameter overrides");
                ExprPtr value = parseExpr();
                expect(TokKind::RParen, "parameter overrides");
                inst->paramOverrides.emplace_back(name, value);
            } while (accept(TokKind::Comma));
            expect(TokKind::RParen, "parameter overrides");
        }

        inst->instName = expect(TokKind::Ident, "instantiation").text;
        expect(TokKind::LParen, "port connections");
        if (!peek().is(TokKind::RParen)) {
            if (peek().is(TokKind::Dot)) {
                do {
                    expect(TokKind::Dot, "port connections");
                    PortConn conn;
                    conn.formal =
                        expect(TokKind::Ident, "port connections").text;
                    expect(TokKind::LParen, "port connections");
                    if (!peek().is(TokKind::RParen))
                        conn.actual = parseExpr();
                    expect(TokKind::RParen, "port connections");
                    inst->conns.push_back(std::move(conn));
                } while (accept(TokKind::Comma));
            } else {
                // Positional connections; formals resolved at elaboration.
                do {
                    PortConn conn;
                    conn.actual = parseExpr();
                    inst->conns.push_back(std::move(conn));
                } while (accept(TokKind::Comma));
            }
        }
        expect(TokKind::RParen, "port connections");
        expect(TokKind::Semi, "instantiation");
        mod.items.push_back(inst);
    }

    // -- Statements ---------------------------------------------------

    StmtPtr
    parseStmt()
    {
        const Token &tok = peek();
        switch (tok.kind) {
          case TokKind::KwBegin: {
            advance();
            auto block = std::make_shared<BlockStmt>();
            block->loc = tok.loc;
            while (!peek().is(TokKind::KwEnd))
                block->stmts.push_back(parseStmt());
            expect(TokKind::KwEnd, "begin/end block");
            return block;
          }
          case TokKind::KwIf: {
            advance();
            auto branch = std::make_shared<IfStmt>();
            branch->loc = tok.loc;
            expect(TokKind::LParen, "if statement");
            branch->cond = parseExpr();
            expect(TokKind::RParen, "if statement");
            branch->thenStmt = parseStmt();
            if (accept(TokKind::KwElse))
                branch->elseStmt = parseStmt();
            return branch;
          }
          case TokKind::KwCase:
          case TokKind::KwCasez: {
            advance();
            auto sel = std::make_shared<CaseStmt>();
            sel->loc = tok.loc;
            sel->isCasez = tok.kind == TokKind::KwCasez;
            expect(TokKind::LParen, "case statement");
            sel->selector = parseExpr();
            expect(TokKind::RParen, "case statement");
            while (!peek().is(TokKind::KwEndcase)) {
                CaseItem item;
                if (accept(TokKind::KwDefault)) {
                    accept(TokKind::Colon);
                } else {
                    do {
                        item.labels.push_back(parseExpr());
                    } while (accept(TokKind::Comma));
                    expect(TokKind::Colon, "case item");
                }
                item.body = parseStmt();
                sel->items.push_back(std::move(item));
            }
            expect(TokKind::KwEndcase, "case statement");
            return sel;
          }
          case TokKind::SysName:
            return parseSystemTask();
          case TokKind::Semi: {
            advance();
            auto null_stmt = std::make_shared<NullStmt>();
            null_stmt->loc = tok.loc;
            return null_stmt;
          }
          case TokKind::Ident:
          case TokKind::LBrace: {
            auto assign = std::make_shared<AssignStmt>();
            assign->loc = tok.loc;
            assign->lhs = parseLValue();
            if (accept(TokKind::LtEq))
                assign->nonblocking = true;
            else if (accept(TokKind::Assign))
                assign->nonblocking = false;
            else
                errorHere("expected '<=' or '=' in assignment");
            assign->rhs = parseExpr();
            expect(TokKind::Semi, "assignment");
            return assign;
          }
          default:
            errorHere("unexpected token in statement");
        }
    }

    StmtPtr
    parseSystemTask()
    {
        Token name = expect(TokKind::SysName, "statement");
        if (name.text == "$finish") {
            if (accept(TokKind::LParen))
                expect(TokKind::RParen, "$finish");
            expect(TokKind::Semi, "$finish");
            auto fin = std::make_shared<FinishStmt>();
            fin->loc = name.loc;
            return fin;
        }
        if (name.text == "$display" || name.text == "$write") {
            auto disp = std::make_shared<DisplayStmt>();
            disp->loc = name.loc;
            expect(TokKind::LParen, "$display");
            disp->format = expect(TokKind::String, "$display").text;
            while (accept(TokKind::Comma))
                disp->args.push_back(parseExpr());
            expect(TokKind::RParen, "$display");
            expect(TokKind::Semi, "$display");
            return disp;
        }
        fatal("%s: unsupported system task '%s'", name.loc.str().c_str(),
              name.text.c_str());
    }

    // -- Expressions --------------------------------------------------

    ExprPtr
    parseLValue()
    {
        const Token &tok = peek();
        if (tok.is(TokKind::LBrace)) {
            advance();
            auto cat = std::make_shared<ConcatExpr>();
            cat->loc = tok.loc;
            do {
                cat->parts.push_back(parseLValue());
            } while (accept(TokKind::Comma));
            expect(TokKind::RBrace, "lvalue concatenation");
            return cat;
        }
        Token name = expect(TokKind::Ident, "lvalue");
        return parsePostfix(name);
    }

    ExprPtr
    parsePostfix(const Token &name)
    {
        if (!peek().is(TokKind::LBracket)) {
            auto id = mkId(name.text);
            id->loc = name.loc;
            return id;
        }
        advance();
        ExprPtr first = parseExpr();
        if (accept(TokKind::Colon)) {
            auto range = std::make_shared<RangeExpr>();
            range->loc = name.loc;
            range->base = name.text;
            range->msb = first;
            range->lsb = parseExpr();
            expect(TokKind::RBracket, "part select");
            return range;
        }
        expect(TokKind::RBracket, "bit select");
        auto idx = std::make_shared<IndexExpr>();
        idx->loc = name.loc;
        idx->base = name.text;
        idx->index = first;
        return idx;
    }

    ExprPtr parseExpr() { return parseTernary(); }

    ExprPtr
    parseTernary()
    {
        ExprPtr cond = parseBinary(0);
        if (!accept(TokKind::Question))
            return cond;
        ExprPtr then_e = parseTernary();
        expect(TokKind::Colon, "conditional expression");
        ExprPtr else_e = parseTernary();
        auto expr = mkTernary(cond, then_e, else_e);
        expr->loc = cond->loc;
        return expr;
    }

    struct OpInfo
    {
        BinaryOp op;
        int prec;
    };

    /** Binary operator for the current token, if any. */
    std::optional<OpInfo>
    binaryOp() const
    {
        switch (peek().kind) {
          case TokKind::PipePipe: return OpInfo{BinaryOp::LogOr, 1};
          case TokKind::AmpAmp: return OpInfo{BinaryOp::LogAnd, 2};
          case TokKind::Pipe: return OpInfo{BinaryOp::BitOr, 3};
          case TokKind::Caret: return OpInfo{BinaryOp::BitXor, 4};
          case TokKind::Amp: return OpInfo{BinaryOp::BitAnd, 5};
          case TokKind::EqEq: return OpInfo{BinaryOp::Eq, 6};
          case TokKind::BangEq: return OpInfo{BinaryOp::Ne, 6};
          case TokKind::Lt: return OpInfo{BinaryOp::Lt, 7};
          case TokKind::LtEq: return OpInfo{BinaryOp::Le, 7};
          case TokKind::Gt: return OpInfo{BinaryOp::Gt, 7};
          case TokKind::GtEq: return OpInfo{BinaryOp::Ge, 7};
          case TokKind::LtLt: return OpInfo{BinaryOp::Shl, 8};
          case TokKind::GtGt: return OpInfo{BinaryOp::Shr, 8};
          case TokKind::Plus: return OpInfo{BinaryOp::Add, 9};
          case TokKind::Minus: return OpInfo{BinaryOp::Sub, 9};
          case TokKind::Star: return OpInfo{BinaryOp::Mul, 10};
          case TokKind::Slash: return OpInfo{BinaryOp::Div, 10};
          case TokKind::Percent: return OpInfo{BinaryOp::Mod, 10};
          default: return std::nullopt;
        }
    }

    ExprPtr
    parseBinary(int min_prec)
    {
        ExprPtr lhs = parseUnary();
        while (true) {
            auto info = binaryOp();
            if (!info || info->prec < min_prec)
                return lhs;
            advance();
            ExprPtr rhs = parseBinary(info->prec + 1);
            auto expr = mkBinary(info->op, lhs, rhs);
            expr->loc = lhs->loc;
            lhs = expr;
        }
    }

    ExprPtr
    parseUnary()
    {
        const Token &tok = peek();
        UnaryOp op;
        switch (tok.kind) {
          case TokKind::Minus: op = UnaryOp::Neg; break;
          case TokKind::Bang: op = UnaryOp::LogNot; break;
          case TokKind::Tilde: op = UnaryOp::BitNot; break;
          case TokKind::Amp: op = UnaryOp::RedAnd; break;
          case TokKind::Pipe: op = UnaryOp::RedOr; break;
          case TokKind::Caret: op = UnaryOp::RedXor; break;
          default:
            return parsePrimary();
        }
        advance();
        auto expr = mkUnary(op, parseUnary());
        expr->loc = tok.loc;
        return expr;
    }

    ExprPtr
    parsePrimary()
    {
        const Token &tok = peek();
        switch (tok.kind) {
          case TokKind::Number: {
            advance();
            bool sized = false;
            Bits value = Bits::parseVerilog(tok.text, &sized);
            auto num = mkNum(value, sized);
            num->loc = tok.loc;
            return num;
          }
          case TokKind::Ident: {
            advance();
            return parsePostfix(tok);
          }
          case TokKind::LParen: {
            advance();
            ExprPtr inner = parseExpr();
            expect(TokKind::RParen, "parenthesized expression");
            return inner;
          }
          case TokKind::LBrace: {
            advance();
            ExprPtr first = parseExpr();
            if (peek().is(TokKind::LBrace)) {
                // {count{expr}} replication.
                advance();
                auto rep = std::make_shared<RepeatExpr>();
                rep->loc = tok.loc;
                rep->count = first;
                rep->inner = parseExpr();
                expect(TokKind::RBrace, "replication");
                expect(TokKind::RBrace, "replication");
                return rep;
            }
            auto cat = std::make_shared<ConcatExpr>();
            cat->loc = tok.loc;
            cat->parts.push_back(first);
            while (accept(TokKind::Comma))
                cat->parts.push_back(parseExpr());
            expect(TokKind::RBrace, "concatenation");
            return cat;
          }
          default:
            errorHere("expected an expression");
        }
    }

    std::vector<Token> tokens_;
    size_t pos_ = 0;
};

} // namespace

Design
parse(const std::string &source, const std::string &file)
{
    obs::ObsSpan span("parse");
    std::vector<Token> tokens = tokenize(source, file);
    HWDBG_STAT_INC("parser.tokens", tokens.size());
    HWDBG_STAT_INC("parser.lines",
                   1 + std::count(source.begin(), source.end(), '\n'));
    HWDBG_STAT_INC("parser.runs", 1);
    return Parser(std::move(tokens)).run();
}

Design
parseWithDefines(const std::string &source,
                 const std::map<std::string, std::string> &defines,
                 const std::string &file)
{
    std::string preprocessed;
    {
        obs::ObsSpan span("preprocess");
        preprocessed = preprocess(source, defines, file);
    }
    return parse(preprocessed, file);
}

ExprPtr
parseExprText(const std::string &text)
{
    // Wrap the expression in a throwaway module and pull it back out.
    Design design =
        parse("module __expr__();\nwire __x__;\nassign __x__ = (" +
                  text + ");\nendmodule",
              "<expr>");
    for (const auto &item : design.modules[0]->items)
        if (item->kind == ItemKind::ContAssign)
            return item->as<ContAssignItem>()->rhs;
    fatal("failed to parse expression '%s'", text.c_str());
}

} // namespace hwdbg::hdl
