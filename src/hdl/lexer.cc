#include "hdl/lexer.hh"

#include <cctype>
#include <map>

#include "common/logging.hh"

namespace hwdbg::hdl
{

namespace
{

const std::map<std::string, TokKind> keywords = {
    {"module", TokKind::KwModule},
    {"endmodule", TokKind::KwEndmodule},
    {"input", TokKind::KwInput},
    {"output", TokKind::KwOutput},
    {"inout", TokKind::KwInout},
    {"wire", TokKind::KwWire},
    {"reg", TokKind::KwReg},
    {"integer", TokKind::KwInteger},
    {"parameter", TokKind::KwParameter},
    {"localparam", TokKind::KwLocalparam},
    {"assign", TokKind::KwAssign},
    {"always", TokKind::KwAlways},
    {"posedge", TokKind::KwPosedge},
    {"negedge", TokKind::KwNegedge},
    {"or", TokKind::KwOr},
    {"begin", TokKind::KwBegin},
    {"end", TokKind::KwEnd},
    {"if", TokKind::KwIf},
    {"else", TokKind::KwElse},
    {"case", TokKind::KwCase},
    {"casez", TokKind::KwCasez},
    {"endcase", TokKind::KwEndcase},
    {"default", TokKind::KwDefault},
};

class Lexer
{
  public:
    Lexer(const std::string &source, const std::string &file)
        : src_(source), file_(file)
    {}

    std::vector<Token>
    run()
    {
        std::vector<Token> tokens;
        while (true) {
            skipSpaceAndComments();
            Token tok = next();
            tokens.push_back(tok);
            if (tok.kind == TokKind::Eof)
                break;
        }
        return tokens;
    }

  private:
    char peek(size_t ahead = 0) const
    {
        return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
    }

    char
    advance()
    {
        char c = peek();
        ++pos_;
        if (c == '\n') {
            ++line_;
            col_ = 1;
        } else {
            ++col_;
        }
        return c;
    }

    SourceLoc here() const { return SourceLoc{file_, line_, col_}; }

    [[noreturn]] void
    error(const std::string &msg) const
    {
        fatal("%s:%d:%d: %s", file_.c_str(), line_, col_, msg.c_str());
    }

    void
    skipSpaceAndComments()
    {
        while (true) {
            char c = peek();
            if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
                advance();
            } else if (c == '/' && peek(1) == '/') {
                while (peek() != '\n' && peek() != '\0')
                    advance();
            } else if (c == '/' && peek(1) == '*') {
                advance();
                advance();
                while (!(peek() == '*' && peek(1) == '/')) {
                    if (peek() == '\0')
                        error("unterminated block comment");
                    advance();
                }
                advance();
                advance();
            } else {
                return;
            }
        }
    }

    Token
    make(TokKind kind, const SourceLoc &loc, std::string text = "")
    {
        Token tok;
        tok.kind = kind;
        tok.text = std::move(text);
        tok.loc = loc;
        return tok;
    }

    Token
    lexNumber(const SourceLoc &loc)
    {
        std::string text;
        auto take_digits = [&] {
            while (std::isalnum(static_cast<unsigned char>(peek())) ||
                   peek() == '_')
                text.push_back(advance());
        };
        // Leading size digits (or the whole number if no base follows).
        while (std::isdigit(static_cast<unsigned char>(peek())) ||
               peek() == '_')
            text.push_back(advance());
        if (peek() == '\'') {
            text.push_back(advance());
            char base = peek();
            if (base != 'b' && base != 'B' && base != 'd' && base != 'D' &&
                base != 'h' && base != 'H' && base != 'o' && base != 'O')
                error("bad literal base");
            text.push_back(advance());
            take_digits();
        }
        return make(TokKind::Number, loc, text);
    }

    Token
    lexString(const SourceLoc &loc)
    {
        advance(); // opening quote
        std::string body;
        while (true) {
            char c = peek();
            if (c == '\0' || c == '\n')
                error("unterminated string literal");
            advance();
            if (c == '"')
                break;
            if (c == '\\') {
                char esc = advance();
                switch (esc) {
                  case 'n': body.push_back('\n'); break;
                  case 't': body.push_back('\t'); break;
                  case '\\': body.push_back('\\'); break;
                  case '"': body.push_back('"'); break;
                  default: body.push_back(esc); break;
                }
            } else {
                body.push_back(c);
            }
        }
        return make(TokKind::String, loc, body);
    }

    Token
    next()
    {
        SourceLoc loc = here();
        char c = peek();
        if (c == '\0')
            return make(TokKind::Eof, loc);

        if (std::isdigit(static_cast<unsigned char>(c)) || c == '\'')
            return lexNumber(loc);

        if (c == '"')
            return lexString(loc);

        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            std::string text;
            while (std::isalnum(static_cast<unsigned char>(peek())) ||
                   peek() == '_' || peek() == '$')
                text.push_back(advance());
            auto kw = keywords.find(text);
            if (kw != keywords.end())
                return make(kw->second, loc, text);
            return make(TokKind::Ident, loc, text);
        }

        if (c == '$') {
            std::string text;
            text.push_back(advance());
            while (std::isalnum(static_cast<unsigned char>(peek())) ||
                   peek() == '_')
                text.push_back(advance());
            return make(TokKind::SysName, loc, text);
        }

        advance();
        switch (c) {
          case '(': return make(TokKind::LParen, loc);
          case ')': return make(TokKind::RParen, loc);
          case '[': return make(TokKind::LBracket, loc);
          case ']': return make(TokKind::RBracket, loc);
          case '{': return make(TokKind::LBrace, loc);
          case '}': return make(TokKind::RBrace, loc);
          case ';': return make(TokKind::Semi, loc);
          case ':': return make(TokKind::Colon, loc);
          case ',': return make(TokKind::Comma, loc);
          case '.': return make(TokKind::Dot, loc);
          case '#': return make(TokKind::Hash, loc);
          case '@': return make(TokKind::At, loc);
          case '?': return make(TokKind::Question, loc);
          case '*': return make(TokKind::Star, loc);
          case '+': return make(TokKind::Plus, loc);
          case '-': return make(TokKind::Minus, loc);
          case '/': return make(TokKind::Slash, loc);
          case '%': return make(TokKind::Percent, loc);
          case '~': return make(TokKind::Tilde, loc);
          case '^': return make(TokKind::Caret, loc);
          case '&':
            if (peek() == '&') {
                advance();
                return make(TokKind::AmpAmp, loc);
            }
            return make(TokKind::Amp, loc);
          case '|':
            if (peek() == '|') {
                advance();
                return make(TokKind::PipePipe, loc);
            }
            return make(TokKind::Pipe, loc);
          case '!':
            if (peek() == '=') {
                advance();
                return make(TokKind::BangEq, loc);
            }
            return make(TokKind::Bang, loc);
          case '=':
            if (peek() == '=') {
                advance();
                return make(TokKind::EqEq, loc);
            }
            return make(TokKind::Assign, loc);
          case '<':
            if (peek() == '=') {
                advance();
                return make(TokKind::LtEq, loc);
            }
            if (peek() == '<') {
                advance();
                return make(TokKind::LtLt, loc);
            }
            return make(TokKind::Lt, loc);
          case '>':
            if (peek() == '=') {
                advance();
                return make(TokKind::GtEq, loc);
            }
            if (peek() == '>') {
                advance();
                return make(TokKind::GtGt, loc);
            }
            return make(TokKind::Gt, loc);
          default:
            error(csprintf("unexpected character '%c'", c));
        }
    }

    const std::string &src_;
    const std::string file_;
    size_t pos_ = 0;
    int line_ = 1;
    int col_ = 1;
};

} // namespace

std::vector<Token>
tokenize(const std::string &source, const std::string &file)
{
    return Lexer(source, file).run();
}

} // namespace hwdbg::hdl
