#include "hdl/ast.hh"

#include "common/logging.hh"

namespace hwdbg::hdl
{

std::string
SourceLoc::str() const
{
    return file + ":" + std::to_string(line) + ":" + std::to_string(col);
}

NetItem *
Module::findNet(const std::string &net_name) const
{
    for (const auto &item : items) {
        if (item->kind != ItemKind::Net)
            continue;
        auto *net = item->as<NetItem>();
        if (net->name == net_name)
            return const_cast<NetItem *>(net);
    }
    return nullptr;
}

ModulePtr
Design::findModule(const std::string &name) const
{
    for (const auto &mod : modules)
        if (mod->name == name)
            return mod;
    return nullptr;
}

ExprPtr
mkNum(const Bits &value, bool sized)
{
    auto num = std::make_shared<NumberExpr>();
    num->value = value;
    num->sized = sized;
    return num;
}

ExprPtr
mkNum(uint32_t width, uint64_t value)
{
    return mkNum(Bits(width, value));
}

ExprPtr
mkId(const std::string &name)
{
    auto id = std::make_shared<IdExpr>();
    id->name = name;
    return id;
}

ExprPtr
mkUnary(UnaryOp op, ExprPtr arg)
{
    auto expr = std::make_shared<UnaryExpr>();
    expr->op = op;
    expr->arg = std::move(arg);
    return expr;
}

ExprPtr
mkBinary(BinaryOp op, ExprPtr lhs, ExprPtr rhs)
{
    auto expr = std::make_shared<BinaryExpr>();
    expr->op = op;
    expr->lhs = std::move(lhs);
    expr->rhs = std::move(rhs);
    return expr;
}

ExprPtr
mkTernary(ExprPtr cond, ExprPtr then_e, ExprPtr else_e)
{
    auto expr = std::make_shared<TernaryExpr>();
    expr->cond = std::move(cond);
    expr->thenExpr = std::move(then_e);
    expr->elseExpr = std::move(else_e);
    return expr;
}

ExprPtr
mkTrue()
{
    return mkNum(1, 1);
}

ExprPtr
mkFalse()
{
    return mkNum(1, 0);
}

namespace
{

/** Constant truth value of a 1-bit literal, if any. */
std::optional<bool>
constBool(const ExprPtr &expr)
{
    if (expr && expr->kind == ExprKind::Number) {
        const auto *num = expr->as<NumberExpr>();
        return !num->value.isZero();
    }
    return std::nullopt;
}

} // namespace

ExprPtr
mkNot(ExprPtr arg)
{
    if (auto truth = constBool(arg))
        return *truth ? mkFalse() : mkTrue();
    if (arg->kind == ExprKind::Unary) {
        auto *un = arg->as<UnaryExpr>();
        if (un->op == UnaryOp::LogNot)
            return un->arg;
    }
    return mkUnary(UnaryOp::LogNot, std::move(arg));
}

ExprPtr
mkAnd(ExprPtr lhs, ExprPtr rhs)
{
    if (auto truth = constBool(lhs))
        return *truth ? rhs : mkFalse();
    if (auto truth = constBool(rhs))
        return *truth ? lhs : mkFalse();
    return mkBinary(BinaryOp::LogAnd, std::move(lhs), std::move(rhs));
}

ExprPtr
mkOr(ExprPtr lhs, ExprPtr rhs)
{
    if (auto truth = constBool(lhs))
        return *truth ? mkTrue() : rhs;
    if (auto truth = constBool(rhs))
        return *truth ? mkTrue() : lhs;
    return mkBinary(BinaryOp::LogOr, std::move(lhs), std::move(rhs));
}

ExprPtr
mkEq(ExprPtr lhs, ExprPtr rhs)
{
    return mkBinary(BinaryOp::Eq, std::move(lhs), std::move(rhs));
}

ExprPtr
cloneExpr(const ExprPtr &expr)
{
    if (!expr)
        return nullptr;
    ExprPtr out;
    switch (expr->kind) {
      case ExprKind::Number: {
        auto src = expr->as<NumberExpr>();
        auto num = std::make_shared<NumberExpr>();
        num->value = src->value;
        num->sized = src->sized;
        out = num;
        break;
      }
      case ExprKind::Id: {
        out = mkId(expr->as<IdExpr>()->name);
        break;
      }
      case ExprKind::Unary: {
        auto src = expr->as<UnaryExpr>();
        out = mkUnary(src->op, cloneExpr(src->arg));
        break;
      }
      case ExprKind::Binary: {
        auto src = expr->as<BinaryExpr>();
        out = mkBinary(src->op, cloneExpr(src->lhs), cloneExpr(src->rhs));
        break;
      }
      case ExprKind::Ternary: {
        auto src = expr->as<TernaryExpr>();
        out = mkTernary(cloneExpr(src->cond), cloneExpr(src->thenExpr),
                        cloneExpr(src->elseExpr));
        break;
      }
      case ExprKind::Concat: {
        auto src = expr->as<ConcatExpr>();
        auto cat = std::make_shared<ConcatExpr>();
        for (const auto &part : src->parts)
            cat->parts.push_back(cloneExpr(part));
        out = cat;
        break;
      }
      case ExprKind::Repeat: {
        auto src = expr->as<RepeatExpr>();
        auto rep = std::make_shared<RepeatExpr>();
        rep->count = cloneExpr(src->count);
        rep->inner = cloneExpr(src->inner);
        out = rep;
        break;
      }
      case ExprKind::Index: {
        auto src = expr->as<IndexExpr>();
        auto idx = std::make_shared<IndexExpr>();
        idx->base = src->base;
        idx->index = cloneExpr(src->index);
        out = idx;
        break;
      }
      case ExprKind::Range: {
        auto src = expr->as<RangeExpr>();
        auto range = std::make_shared<RangeExpr>();
        range->base = src->base;
        range->msb = cloneExpr(src->msb);
        range->lsb = cloneExpr(src->lsb);
        out = range;
        break;
      }
    }
    out->loc = expr->loc;
    out->width = expr->width;
    return out;
}

StmtPtr
cloneStmt(const StmtPtr &stmt)
{
    if (!stmt)
        return nullptr;
    StmtPtr out;
    switch (stmt->kind) {
      case StmtKind::Block: {
        auto src = stmt->as<BlockStmt>();
        auto block = std::make_shared<BlockStmt>();
        for (const auto &sub : src->stmts)
            block->stmts.push_back(cloneStmt(sub));
        out = block;
        break;
      }
      case StmtKind::If: {
        auto src = stmt->as<IfStmt>();
        auto branch = std::make_shared<IfStmt>();
        branch->cond = cloneExpr(src->cond);
        branch->thenStmt = cloneStmt(src->thenStmt);
        branch->elseStmt = cloneStmt(src->elseStmt);
        out = branch;
        break;
      }
      case StmtKind::Case: {
        auto src = stmt->as<CaseStmt>();
        auto sel = std::make_shared<CaseStmt>();
        sel->selector = cloneExpr(src->selector);
        sel->isCasez = src->isCasez;
        for (const auto &item : src->items) {
            CaseItem copy;
            for (const auto &label : item.labels)
                copy.labels.push_back(cloneExpr(label));
            copy.body = cloneStmt(item.body);
            sel->items.push_back(std::move(copy));
        }
        out = sel;
        break;
      }
      case StmtKind::Assign: {
        auto src = stmt->as<AssignStmt>();
        auto assign = std::make_shared<AssignStmt>();
        assign->lhs = cloneExpr(src->lhs);
        assign->rhs = cloneExpr(src->rhs);
        assign->nonblocking = src->nonblocking;
        out = assign;
        break;
      }
      case StmtKind::Display: {
        auto src = stmt->as<DisplayStmt>();
        auto disp = std::make_shared<DisplayStmt>();
        disp->format = src->format;
        for (const auto &arg : src->args)
            disp->args.push_back(cloneExpr(arg));
        out = disp;
        break;
      }
      case StmtKind::Finish:
        out = std::make_shared<FinishStmt>();
        break;
      case StmtKind::Null:
        out = std::make_shared<NullStmt>();
        break;
    }
    out->loc = stmt->loc;
    return out;
}

ItemPtr
cloneItem(const ItemPtr &item)
{
    if (!item)
        return nullptr;
    ItemPtr out;
    switch (item->kind) {
      case ItemKind::Param: {
        auto src = item->as<ParamItem>();
        auto param = std::make_shared<ParamItem>();
        param->name = src->name;
        param->value = cloneExpr(src->value);
        param->isLocal = src->isLocal;
        param->inHeader = src->inHeader;
        out = param;
        break;
      }
      case ItemKind::Net: {
        auto src = item->as<NetItem>();
        auto net = std::make_shared<NetItem>();
        net->net = src->net;
        net->dir = src->dir;
        net->name = src->name;
        if (src->range)
            net->range = AstRange{cloneExpr(src->range->msb),
                                  cloneExpr(src->range->lsb)};
        if (src->array)
            net->array = AstRange{cloneExpr(src->array->msb),
                                  cloneExpr(src->array->lsb)};
        out = net;
        break;
      }
      case ItemKind::ContAssign: {
        auto src = item->as<ContAssignItem>();
        auto assign = std::make_shared<ContAssignItem>();
        assign->lhs = cloneExpr(src->lhs);
        assign->rhs = cloneExpr(src->rhs);
        out = assign;
        break;
      }
      case ItemKind::Always: {
        auto src = item->as<AlwaysItem>();
        auto always = std::make_shared<AlwaysItem>();
        always->sens = src->sens;
        always->isComb = src->isComb;
        always->body = cloneStmt(src->body);
        out = always;
        break;
      }
      case ItemKind::Instance: {
        auto src = item->as<InstanceItem>();
        auto inst = std::make_shared<InstanceItem>();
        inst->moduleName = src->moduleName;
        inst->instName = src->instName;
        for (const auto &[name, value] : src->paramOverrides)
            inst->paramOverrides.emplace_back(name, cloneExpr(value));
        for (const auto &conn : src->conns)
            inst->conns.push_back(
                PortConn{conn.formal, cloneExpr(conn.actual)});
        out = inst;
        break;
      }
    }
    out->loc = item->loc;
    return out;
}

ModulePtr
cloneModule(const Module &mod)
{
    auto out = std::make_shared<Module>();
    out->name = mod.name;
    out->loc = mod.loc;
    out->ports = mod.ports;
    for (const auto &item : mod.items)
        out->items.push_back(cloneItem(item));
    return out;
}

void
forEachIdent(const ExprPtr &expr,
             const std::function<void(const std::string &)> &fn)
{
    if (!expr)
        return;
    switch (expr->kind) {
      case ExprKind::Number:
        break;
      case ExprKind::Id:
        fn(expr->as<IdExpr>()->name);
        break;
      case ExprKind::Unary:
        forEachIdent(expr->as<UnaryExpr>()->arg, fn);
        break;
      case ExprKind::Binary:
        forEachIdent(expr->as<BinaryExpr>()->lhs, fn);
        forEachIdent(expr->as<BinaryExpr>()->rhs, fn);
        break;
      case ExprKind::Ternary:
        forEachIdent(expr->as<TernaryExpr>()->cond, fn);
        forEachIdent(expr->as<TernaryExpr>()->thenExpr, fn);
        forEachIdent(expr->as<TernaryExpr>()->elseExpr, fn);
        break;
      case ExprKind::Concat:
        for (const auto &part : expr->as<ConcatExpr>()->parts)
            forEachIdent(part, fn);
        break;
      case ExprKind::Repeat:
        forEachIdent(expr->as<RepeatExpr>()->count, fn);
        forEachIdent(expr->as<RepeatExpr>()->inner, fn);
        break;
      case ExprKind::Index:
        fn(expr->as<IndexExpr>()->base);
        forEachIdent(expr->as<IndexExpr>()->index, fn);
        break;
      case ExprKind::Range:
        fn(expr->as<RangeExpr>()->base);
        forEachIdent(expr->as<RangeExpr>()->msb, fn);
        forEachIdent(expr->as<RangeExpr>()->lsb, fn);
        break;
    }
}

void
renameIdents(const ExprPtr &expr,
             const std::function<std::string(const std::string &)> &map)
{
    if (!expr)
        return;
    switch (expr->kind) {
      case ExprKind::Number:
        break;
      case ExprKind::Id: {
        auto *id = expr->as<IdExpr>();
        id->name = map(id->name);
        break;
      }
      case ExprKind::Unary:
        renameIdents(expr->as<UnaryExpr>()->arg, map);
        break;
      case ExprKind::Binary:
        renameIdents(expr->as<BinaryExpr>()->lhs, map);
        renameIdents(expr->as<BinaryExpr>()->rhs, map);
        break;
      case ExprKind::Ternary:
        renameIdents(expr->as<TernaryExpr>()->cond, map);
        renameIdents(expr->as<TernaryExpr>()->thenExpr, map);
        renameIdents(expr->as<TernaryExpr>()->elseExpr, map);
        break;
      case ExprKind::Concat:
        for (const auto &part : expr->as<ConcatExpr>()->parts)
            renameIdents(part, map);
        break;
      case ExprKind::Repeat:
        renameIdents(expr->as<RepeatExpr>()->count, map);
        renameIdents(expr->as<RepeatExpr>()->inner, map);
        break;
      case ExprKind::Index: {
        auto *idx = expr->as<IndexExpr>();
        idx->base = map(idx->base);
        renameIdents(idx->index, map);
        break;
      }
      case ExprKind::Range: {
        auto *range = expr->as<RangeExpr>();
        range->base = map(range->base);
        renameIdents(range->msb, map);
        renameIdents(range->lsb, map);
        break;
      }
    }
}

void
renameIdents(const StmtPtr &stmt,
             const std::function<std::string(const std::string &)> &map)
{
    if (!stmt)
        return;
    switch (stmt->kind) {
      case StmtKind::Block:
        for (const auto &sub : stmt->as<BlockStmt>()->stmts)
            renameIdents(sub, map);
        break;
      case StmtKind::If: {
        auto *branch = stmt->as<IfStmt>();
        renameIdents(branch->cond, map);
        renameIdents(branch->thenStmt, map);
        renameIdents(branch->elseStmt, map);
        break;
      }
      case StmtKind::Case: {
        auto *sel = stmt->as<CaseStmt>();
        renameIdents(sel->selector, map);
        for (const auto &item : sel->items) {
            for (const auto &label : item.labels)
                renameIdents(label, map);
            renameIdents(item.body, map);
        }
        break;
      }
      case StmtKind::Assign:
        renameIdents(stmt->as<AssignStmt>()->lhs, map);
        renameIdents(stmt->as<AssignStmt>()->rhs, map);
        break;
      case StmtKind::Display:
        for (const auto &arg : stmt->as<DisplayStmt>()->args)
            renameIdents(arg, map);
        break;
      case StmtKind::Finish:
      case StmtKind::Null:
        break;
    }
}

bool
exprEquals(const ExprPtr &a, const ExprPtr &b)
{
    if (!a || !b)
        return a == b;
    if (a->kind != b->kind)
        return false;
    switch (a->kind) {
      case ExprKind::Number:
        return a->as<NumberExpr>()->value == b->as<NumberExpr>()->value &&
               a->as<NumberExpr>()->value.width() ==
                   b->as<NumberExpr>()->value.width();
      case ExprKind::Id:
        return a->as<IdExpr>()->name == b->as<IdExpr>()->name;
      case ExprKind::Unary:
        return a->as<UnaryExpr>()->op == b->as<UnaryExpr>()->op &&
               exprEquals(a->as<UnaryExpr>()->arg, b->as<UnaryExpr>()->arg);
      case ExprKind::Binary:
        return a->as<BinaryExpr>()->op == b->as<BinaryExpr>()->op &&
               exprEquals(a->as<BinaryExpr>()->lhs,
                          b->as<BinaryExpr>()->lhs) &&
               exprEquals(a->as<BinaryExpr>()->rhs,
                          b->as<BinaryExpr>()->rhs);
      case ExprKind::Ternary:
        return exprEquals(a->as<TernaryExpr>()->cond,
                          b->as<TernaryExpr>()->cond) &&
               exprEquals(a->as<TernaryExpr>()->thenExpr,
                          b->as<TernaryExpr>()->thenExpr) &&
               exprEquals(a->as<TernaryExpr>()->elseExpr,
                          b->as<TernaryExpr>()->elseExpr);
      case ExprKind::Concat: {
        const auto &pa = a->as<ConcatExpr>()->parts;
        const auto &pb = b->as<ConcatExpr>()->parts;
        if (pa.size() != pb.size())
            return false;
        for (size_t i = 0; i < pa.size(); ++i)
            if (!exprEquals(pa[i], pb[i]))
                return false;
        return true;
      }
      case ExprKind::Repeat:
        return exprEquals(a->as<RepeatExpr>()->count,
                          b->as<RepeatExpr>()->count) &&
               exprEquals(a->as<RepeatExpr>()->inner,
                          b->as<RepeatExpr>()->inner);
      case ExprKind::Index:
        return a->as<IndexExpr>()->base == b->as<IndexExpr>()->base &&
               exprEquals(a->as<IndexExpr>()->index,
                          b->as<IndexExpr>()->index);
      case ExprKind::Range:
        return a->as<RangeExpr>()->base == b->as<RangeExpr>()->base &&
               exprEquals(a->as<RangeExpr>()->msb, b->as<RangeExpr>()->msb) &&
               exprEquals(a->as<RangeExpr>()->lsb, b->as<RangeExpr>()->lsb);
    }
    return false;
}

bool
stmtEquals(const StmtPtr &a, const StmtPtr &b)
{
    if (!a || !b)
        return a == b;
    if (a->kind != b->kind)
        return false;
    switch (a->kind) {
      case StmtKind::Block: {
        const auto &sa = a->as<BlockStmt>()->stmts;
        const auto &sb = b->as<BlockStmt>()->stmts;
        if (sa.size() != sb.size())
            return false;
        for (size_t i = 0; i < sa.size(); ++i)
            if (!stmtEquals(sa[i], sb[i]))
                return false;
        return true;
      }
      case StmtKind::If:
        return exprEquals(a->as<IfStmt>()->cond, b->as<IfStmt>()->cond) &&
               stmtEquals(a->as<IfStmt>()->thenStmt,
                          b->as<IfStmt>()->thenStmt) &&
               stmtEquals(a->as<IfStmt>()->elseStmt,
                          b->as<IfStmt>()->elseStmt);
      case StmtKind::Case: {
        const auto *ca = a->as<CaseStmt>();
        const auto *cb = b->as<CaseStmt>();
        if (ca->isCasez != cb->isCasez ||
            !exprEquals(ca->selector, cb->selector) ||
            ca->items.size() != cb->items.size())
            return false;
        for (size_t i = 0; i < ca->items.size(); ++i) {
            const auto &ia = ca->items[i];
            const auto &ib = cb->items[i];
            if (ia.labels.size() != ib.labels.size())
                return false;
            for (size_t j = 0; j < ia.labels.size(); ++j)
                if (!exprEquals(ia.labels[j], ib.labels[j]))
                    return false;
            if (!stmtEquals(ia.body, ib.body))
                return false;
        }
        return true;
      }
      case StmtKind::Assign:
        return a->as<AssignStmt>()->nonblocking ==
                   b->as<AssignStmt>()->nonblocking &&
               exprEquals(a->as<AssignStmt>()->lhs,
                          b->as<AssignStmt>()->lhs) &&
               exprEquals(a->as<AssignStmt>()->rhs,
                          b->as<AssignStmt>()->rhs);
      case StmtKind::Display: {
        const auto *da = a->as<DisplayStmt>();
        const auto *db = b->as<DisplayStmt>();
        if (da->format != db->format || da->args.size() != db->args.size())
            return false;
        for (size_t i = 0; i < da->args.size(); ++i)
            if (!exprEquals(da->args[i], db->args[i]))
                return false;
        return true;
      }
      case StmtKind::Finish:
      case StmtKind::Null:
        return true;
    }
    return false;
}

namespace
{

bool
rangeEquals(const std::optional<AstRange> &a,
            const std::optional<AstRange> &b)
{
    if (a.has_value() != b.has_value())
        return false;
    if (!a)
        return true;
    return exprEquals(a->msb, b->msb) && exprEquals(a->lsb, b->lsb);
}

} // namespace

bool
itemEquals(const ItemPtr &a, const ItemPtr &b)
{
    if (!a || !b)
        return a == b;
    if (a->kind != b->kind)
        return false;
    switch (a->kind) {
      case ItemKind::Param: {
        const auto *pa = a->as<ParamItem>();
        const auto *pb = b->as<ParamItem>();
        return pa->name == pb->name && pa->isLocal == pb->isLocal &&
               pa->inHeader == pb->inHeader &&
               exprEquals(pa->value, pb->value);
      }
      case ItemKind::Net: {
        const auto *na = a->as<NetItem>();
        const auto *nb = b->as<NetItem>();
        return na->net == nb->net && na->dir == nb->dir &&
               na->name == nb->name && rangeEquals(na->range, nb->range) &&
               rangeEquals(na->array, nb->array);
      }
      case ItemKind::ContAssign:
        return exprEquals(a->as<ContAssignItem>()->lhs,
                          b->as<ContAssignItem>()->lhs) &&
               exprEquals(a->as<ContAssignItem>()->rhs,
                          b->as<ContAssignItem>()->rhs);
      case ItemKind::Always: {
        const auto *aa = a->as<AlwaysItem>();
        const auto *ab = b->as<AlwaysItem>();
        if (aa->isComb != ab->isComb || aa->sens.size() != ab->sens.size())
            return false;
        for (size_t i = 0; i < aa->sens.size(); ++i)
            if (aa->sens[i].edge != ab->sens[i].edge ||
                aa->sens[i].signal != ab->sens[i].signal)
                return false;
        return stmtEquals(aa->body, ab->body);
      }
      case ItemKind::Instance: {
        const auto *ia = a->as<InstanceItem>();
        const auto *ib = b->as<InstanceItem>();
        if (ia->moduleName != ib->moduleName ||
            ia->instName != ib->instName ||
            ia->paramOverrides.size() != ib->paramOverrides.size() ||
            ia->conns.size() != ib->conns.size())
            return false;
        for (size_t i = 0; i < ia->paramOverrides.size(); ++i)
            if (ia->paramOverrides[i].first !=
                    ib->paramOverrides[i].first ||
                !exprEquals(ia->paramOverrides[i].second,
                            ib->paramOverrides[i].second))
                return false;
        for (size_t i = 0; i < ia->conns.size(); ++i)
            if (ia->conns[i].formal != ib->conns[i].formal ||
                !exprEquals(ia->conns[i].actual, ib->conns[i].actual))
                return false;
        return true;
      }
    }
    return false;
}

bool
moduleEquals(const Module &a, const Module &b)
{
    if (a.name != b.name || a.ports != b.ports ||
        a.items.size() != b.items.size())
        return false;
    for (size_t i = 0; i < a.items.size(); ++i)
        if (!itemEquals(a.items[i], b.items[i]))
            return false;
    return true;
}

bool
designEquals(const Design &a, const Design &b)
{
    if (a.modules.size() != b.modules.size())
        return false;
    for (size_t i = 0; i < a.modules.size(); ++i)
        if (!moduleEquals(*a.modules[i], *b.modules[i]))
            return false;
    return true;
}

} // namespace hwdbg::hdl
