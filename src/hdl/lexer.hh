/**
 * @file
 * Lexer for the hwdbg Verilog subset.
 */

#ifndef HWDBG_HDL_LEXER_HH
#define HWDBG_HDL_LEXER_HH

#include <string>
#include <vector>

#include "hdl/token.hh"

namespace hwdbg::hdl
{

/**
 * Tokenize preprocessed Verilog text.
 *
 * Comments (// and block comments) are skipped. The final token is always
 * TokKind::Eof. Errors raise HdlError with file:line:col positions.
 */
std::vector<Token> tokenize(const std::string &source,
                            const std::string &file = "<input>");

} // namespace hwdbg::hdl

#endif // HWDBG_HDL_LEXER_HH
