#include "hdl/preproc.hh"

#include <cctype>
#include <sstream>
#include <vector>

#include "common/logging.hh"

namespace hwdbg::hdl
{

namespace
{

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '$';
}

/** Extract the identifier starting at @p pos; advances @p pos past it. */
std::string
readIdent(const std::string &line, size_t &pos)
{
    size_t start = pos;
    while (pos < line.size() && isIdentChar(line[pos]))
        ++pos;
    return line.substr(start, pos - start);
}

std::string
trim(const std::string &s)
{
    size_t begin = s.find_first_not_of(" \t\r");
    if (begin == std::string::npos)
        return "";
    size_t end = s.find_last_not_of(" \t\r");
    return s.substr(begin, end - begin + 1);
}

} // namespace

std::string
preprocess(const std::string &source,
           const std::map<std::string, std::string> &defines,
           const std::string &file)
{
    std::map<std::string, std::string> macros = defines;

    // Condition stack: each entry is (currently-active, any-branch-taken).
    std::vector<std::pair<bool, bool>> stack;
    auto active = [&] {
        for (const auto &[on, taken] : stack)
            if (!on)
                return false;
        return true;
    };

    std::ostringstream out;
    std::istringstream in(source);
    std::string line;
    int line_no = 0;
    bool first = true;

    while (std::getline(in, line)) {
        ++line_no;
        if (!first)
            out << "\n";
        first = false;

        std::string stripped = trim(line);
        if (!stripped.empty() && stripped[0] == '`') {
            size_t pos = 1;
            std::string directive = readIdent(stripped, pos);
            std::string rest = trim(stripped.substr(pos));

            if (directive == "define") {
                if (active()) {
                    size_t rpos = 0;
                    while (rpos < rest.size() && !isIdentChar(rest[rpos]))
                        ++rpos;
                    std::string name = readIdent(rest, rpos);
                    if (name.empty())
                        fatal("%s:%d: `define without a name",
                              file.c_str(), line_no);
                    macros[name] = trim(rest.substr(rpos));
                }
                continue;
            }
            if (directive == "undef") {
                if (active())
                    macros.erase(rest);
                continue;
            }
            if (directive == "ifdef" || directive == "ifndef") {
                bool defined = macros.count(rest) > 0;
                bool on = directive == "ifdef" ? defined : !defined;
                stack.emplace_back(on, on);
                continue;
            }
            if (directive == "else") {
                if (stack.empty())
                    fatal("%s:%d: `else without `ifdef",
                          file.c_str(), line_no);
                auto &[on, taken] = stack.back();
                on = !taken;
                taken = true;
                continue;
            }
            if (directive == "endif") {
                if (stack.empty())
                    fatal("%s:%d: `endif without `ifdef",
                          file.c_str(), line_no);
                stack.pop_back();
                continue;
            }
            if (directive == "timescale" || directive == "default_nettype")
                continue;
            // Fall through: a line starting with a macro use.
        }

        if (!active())
            continue;

        // Substitute `NAME macro uses (not inside string literals).
        std::string expanded;
        bool in_string = false;
        for (size_t i = 0; i < line.size(); ++i) {
            char c = line[i];
            if (c == '"' && (i == 0 || line[i - 1] != '\\'))
                in_string = !in_string;
            if (c == '`' && !in_string) {
                size_t pos = i + 1;
                std::string name = readIdent(line, pos);
                auto it = macros.find(name);
                if (it == macros.end())
                    fatal("%s:%d: undefined macro `%s",
                          file.c_str(), line_no, name.c_str());
                expanded += it->second;
                i = pos - 1;
                continue;
            }
            expanded.push_back(c);
        }
        out << expanded;
    }

    if (!stack.empty())
        fatal("%s: unterminated `ifdef", file.c_str());
    std::string result = out.str();
    if (!source.empty() && source.back() == '\n')
        result.push_back('\n');
    return result;
}

} // namespace hwdbg::hdl
